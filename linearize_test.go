package repro

// Recorded-history linearizability checks over every structure in the
// benchmark registry (internal/linearize). Real goroutines run a mixed
// workload through a linearize.Recorder and the Wing&Gong checker then
// searches the recorded history for a linearization against the sequential
// map specification.
//
// Two workload shapes:
//
//   - Disjoint-writer histories: each goroutine updates its own key range
//     while every goroutine reads and scans the whole space. Every structure
//     must produce strictly linearizable histories here — this is the
//     acceptance bar, for int64 and string keys alike.
//
//   - Hot-key overwrite/delete contention: all goroutines hammer one key
//     with in-place overwrites, deletes and reads. The SCX-free overwrite
//     protocol's publish bracket (see internal/vcell and DESIGN.md) makes
//     this strictly linearizable too — an earlier revision of the protocol
//     had a documented overwrite-vs-delete anomaly here — so the test
//     demands a clean history plus the published-values guarantee (every
//     observed value was published by some writer).

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/linearize"
)

func int64Less(a, b int64) bool { return a < b }

// lcg advances a deterministic pseudo-random stream (same generator as the
// dicttest suite).
func lcg(state *uint64) uint64 {
	*state = *state*2862933555777941757 + 3037000493
	return *state >> 11
}

// TestRecordedHistoriesLinearizable runs the disjoint-writer workload over
// every concurrency-safe int64 structure in the registry and requires a
// strictly linearizable history from each.
func TestRecordedHistoriesLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, target := range allConcurrentTargets(t) {
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			rec := linearize.NewRecorder(target.New())

			const procs = 4
			const opsPerProc = 400
			const keysPerProc = 32
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				p := rec.Proc()
				base := int64(g) * 100
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					state := uint64(g)*0x9e3779b97f4a7c15 + 1
					for i := 0; i < opsPerProc; i++ {
						r := lcg(&state)
						own := base + int64(r%keysPerProc)
						any := int64(lcg(&state)%(procs*100)) // any proc's range
						switch {
						case r%100 < 40:
							p.Insert(own, int64(g*opsPerProc+i))
						case r%100 < 60:
							p.Delete(own)
						case r%100 < 90:
							p.Get(any)
						default:
							lo := any - 10
							p.Scan(lo, lo+20, int64Less)
						}
					}
				}(g)
			}
			wg.Wait()

			h := rec.History()
			if len(h.Ops) < procs*opsPerProc {
				t.Fatalf("recorded %d ops, want at least %d", len(h.Ops), procs*opsPerProc)
			}
			if res := linearize.Check(h); !res.OK() {
				t.Fatalf("history not linearizable:\n%s", res.Report())
			}
		})
	}
}

// TestRecordedStringHistoriesLinearizable is the same acceptance bar for the
// string-keyed instantiations: the checker and recorder are generic, and no
// part of the stack may assume integer keys.
func TestRecordedStringHistoriesLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	targets := append(stringTreeTargets(), stringBaselineTargets()...)
	for _, target := range targets {
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			rec := linearize.NewRecorder(target.New())
			less := target.Less

			const procs = 4
			const opsPerProc = 300
			const keysPerProc = 24
			key := func(g, i int) string { return fmt.Sprintf("p%d-k%02d", g, i) }
			var wg sync.WaitGroup
			for g := 0; g < procs; g++ {
				p := rec.Proc()
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					state := uint64(g)*0x9e3779b97f4a7c15 + 7
					for i := 0; i < opsPerProc; i++ {
						r := lcg(&state)
						own := key(g, int(r%keysPerProc))
						other := key(int(lcg(&state))%procs, int(lcg(&state)%keysPerProc))
						switch {
						case r%100 < 40:
							p.Insert(own, fmt.Sprintf("v%d-%d", g, i))
						case r%100 < 60:
							p.Delete(own)
						case r%100 < 90:
							p.Get(other)
						default:
							// Scan one proc's whole prefix range.
							gp := int(lcg(&state)) % procs
							p.Scan(key(gp, 0), key(gp, keysPerProc-1), less)
						}
					}
				}(g)
			}
			wg.Wait()

			if res := linearize.Check(rec.History()); !res.OK() {
				t.Fatalf("history not linearizable:\n%s", res.Report())
			}
		})
	}
}

// TestHotKeyOverwriteDeleteHistory hammers one key with overwrites, deletes
// and reads on every structure. This workload used to tolerate a documented
// overwrite-vs-delete anomaly in the vcell-overwrite structures; the publish
// bracket (internal/vcell) closed that window, so strict linearizability is
// now demanded unconditionally, alongside the published-values guarantee.
func TestHotKeyOverwriteDeleteHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const hot = int64(100)
	for _, target := range allConcurrentTargets(t) {
		t.Run(target.Name, func(t *testing.T) {
			t.Parallel()
			rec := linearize.NewRecorder(target.New())

			setup := rec.Proc()
			setup.Insert(hot, 1)

			const opsPerProc = 200
			published := map[int64]bool{1: true}
			var wg sync.WaitGroup
			// Two overwriters with globally unique values.
			for g := 0; g < 2; g++ {
				p := rec.Proc()
				for i := 0; i < opsPerProc; i++ {
					published[int64((g+1)*1_000_000+i)] = true
				}
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < opsPerProc; i++ {
						p.Insert(hot, int64((g+1)*1_000_000+i))
					}
				}(g)
			}
			// One deleter alternating remove/reinstate.
			del := rec.Proc()
			for i := 0; i < opsPerProc/2; i++ {
				published[int64(9_000_000+i)] = true
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerProc/2; i++ {
					del.Delete(hot)
					del.Insert(hot, int64(9_000_000+i))
				}
			}()
			// One reader.
			rd := rec.Proc()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsPerProc; i++ {
					rd.Get(hot)
				}
			}()
			wg.Wait()

			h := rec.History()
			// Unconditional guarantee: every observed value was published by
			// some writer (values are never invented or corrupted).
			for _, op := range h.Ops {
				if op.OutOK && !published[op.Out] {
					t.Fatalf("%v observed value %d that no writer ever published", op.Kind, op.Out)
				}
			}

			if res := linearize.Check(h); !res.OK() {
				t.Fatalf("hot-key history not linearizable:\n%s", res.Report())
			}
		})
	}
}
