package repro

// Allocation microbenchmarks for the LLX/SCX hot path. The paper's Java
// implementation keeps SCX records compact and avoids per-attempt garbage;
// these benchmarks pin down what the Go port allocates per dictionary
// operation on each template-based tree so regressions are caught in CI
// (see TestChromaticAllocBudget and the bench-smoke workflow job).
//
// Keys are visited in a pseudo-random but deterministic order: multiplying
// the iteration index by an odd constant modulo a power-of-two key range is a
// bijection, so every Insert in a block hits a fresh key, every Delete hits a
// present key, and runs are exactly reproducible.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/dict"
	"repro/internal/epoch"
)

// allocKeyRange is a power of two so that (i * allocKeyMult) & allocKeyMask
// permutes the key space block by block.
const (
	allocKeyRange = 1 << 16
	allocKeyMask  = allocKeyRange - 1
	allocKeyMult  = 2654435761 // Knuth's multiplicative-hash constant (odd)
)

func allocKey(i int) int64 { return int64((uint64(i) * allocKeyMult) & allocKeyMask) }

// allocBenchStructures are the template-based trees whose allocation profile
// this PR's hot-path work targets.
var allocBenchStructures = []string{"Chromatic", "RAVL", "EBST"}

// allocOverwriteStructures additionally cover the two rewritten baselines:
// with the unboxed value cells, Insert on a present key must allocate
// nothing anywhere in the registry's int64 instantiations.
var allocOverwriteStructures = []string{"Chromatic", "RAVL", "EBST", "SkipList", "LockAVL"}

// BenchmarkAlloc reports ns/op and allocs/op for Get, Insert, Overwrite
// (Insert on a present key) and Delete on each template-based tree, plus the
// Overwrite case for the skip list and the lock-based AVL tree. Run with
// -benchmem (ReportAllocs is set anyway) and compare allocs/op across
// commits; BENCH_pr3.json records the snapshot committed with the PR that
// introduced these benchmarks.
func BenchmarkAlloc(b *testing.B) {
	for _, name := range allocBenchStructures {
		factory, ok := bench.Lookup(name)
		if !ok {
			b.Fatalf("unknown structure %q", name)
		}
		b.Run(name+"/Get", func(b *testing.B) { benchmarkAllocGet(b, factory) })
		b.Run(name+"/Insert", func(b *testing.B) { benchmarkAllocInsert(b, factory) })
		b.Run(name+"/Delete", func(b *testing.B) { benchmarkAllocDelete(b, factory) })
		b.Run(name+"/Churn", func(b *testing.B) { benchmarkAllocChurn(b, factory) })
	}
	for _, name := range allocOverwriteStructures {
		factory, ok := bench.Lookup(name)
		if !ok {
			b.Fatalf("unknown structure %q", name)
		}
		b.Run(name+"/Overwrite", func(b *testing.B) { benchmarkAllocOverwrite(b, factory) })
	}
}

// benchmarkAllocOverwrite measures Insert on a present key: the structure is
// filled once and every timed Insert hits an existing key in the permuted
// order, so the whole run goes through the in-place overwrite path.
func benchmarkAllocOverwrite(b *testing.B, factory dict.IntFactory) {
	d := factory.New()
	for i := int64(0); i < allocKeyRange; i++ {
		d.Insert(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := allocKey(i)
		d.Insert(k, int64(i))
	}
}

// allocChurnWindow is the slice of the key space the churn cells cycle keys
// through. Small enough that the whole window turns over many times per
// benchmark run, so the node and descriptor pools reach steady state.
const allocChurnWindow = 1 << 10

// benchmarkAllocChurn measures the steady-state insert/delete cycle the
// epoch pools target: the tree is filled once, then each timed pair of
// operations deletes a present key and re-inserts it. At steady state every
// node and SCX descriptor an update needs was retired by an earlier update
// and recycled through the pools, so allocs/op should sit near zero (the
// growth-phase Insert cells above necessarily allocate: a growing tree keeps
// its nodes).
func benchmarkAllocChurn(b *testing.B, factory dict.IntFactory) {
	d := factory.New()
	for i := int64(0); i < allocKeyRange; i++ {
		d.Insert(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := allocKey(i>>1) & (allocChurnWindow - 1)
		if i&1 == 0 {
			d.Delete(k)
		} else {
			d.Insert(k, int64(i))
		}
	}
}

func benchmarkAllocGet(b *testing.B, factory dict.IntFactory) {
	d := factory.New()
	for i := 0; i < allocKeyRange; i += 2 {
		d.Insert(int64(i), int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Get(allocKey(i))
	}
}

func benchmarkAllocInsert(b *testing.B, factory dict.IntFactory) {
	d := factory.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i&allocKeyMask == 0 {
			// The key space is exhausted: start over on a fresh tree with the
			// timer (and the allocation accounting) stopped.
			b.StopTimer()
			d = factory.New()
			b.StartTimer()
		}
		k := allocKey(i)
		d.Insert(k, k)
	}
}

// chromaticAllocBudget is the committed allocs/op ceiling for Chromatic
// Insert and Delete, enforced by TestChromaticAllocBudget (run in CI's
// bench-smoke job). With epoch reclamation and the node/descriptor pools the
// measured growth-phase profile is 2.0 (Insert) and 0.0 (Delete): a growing
// tree keeps its fresh nodes, so Insert still pays for the key leaf and the
// replacement internal, while Delete's replacement node and every SCX
// descriptor come out of the pools. (The budget was 8 before pooling, when
// every update also burned its retired nodes and its descriptors.) The
// budget of 3 leaves one alloc of headroom for rebalancing drift while
// catching any reintroduction of per-attempt garbage. Under -tags noepoch
// the pools are compiled away and the pre-pooling ceiling applies.
var chromaticAllocBudget = 8.0

func init() {
	if epoch.Enabled {
		chromaticAllocBudget = 3.0
	}
}

// chromaticChurnAllocBudget is the committed allocs/op ceiling for the
// steady-state insert/delete cycle (TestChromaticChurnAllocBudget): once the
// pools are primed, a delete retires more nodes than the matching re-insert
// consumes, so updates should run allocation-free on average. The budget of
// 1 tolerates retire-list growth and epoch-lag refill stalls without letting
// per-operation garbage back in.
const chromaticChurnAllocBudget = 1.0

// TestChromaticAllocBudget fails if the Chromatic tree's Insert or Delete
// paths exceed the committed allocation budget. It uses the same
// deterministic permuted key order as BenchmarkAlloc, so the rebalancing
// work (and therefore the allocation profile) is reproducible.
func TestChromaticAllocBudget(t *testing.T) {
	factory, ok := bench.Lookup("Chromatic")
	if !ok {
		t.Fatal("Chromatic not registered")
	}
	d := factory.New()
	const runs = 20000

	i := 0
	insAllocs := testing.AllocsPerRun(runs, func() {
		k := allocKey(i)
		d.Insert(k, k)
		i++
	})
	if insAllocs > chromaticAllocBudget {
		t.Errorf("Chromatic Insert allocates %.2f allocs/op, budget is %.1f", insAllocs, chromaticAllocBudget)
	}

	// Delete the keys just inserted, in the same permuted order.
	i = 0
	delAllocs := testing.AllocsPerRun(runs, func() {
		d.Delete(allocKey(i))
		i++
	})
	if delAllocs > chromaticAllocBudget {
		t.Errorf("Chromatic Delete allocates %.2f allocs/op, budget is %.1f", delAllocs, chromaticAllocBudget)
	}
	t.Logf("Chromatic allocs/op: Insert %.2f, Delete %.2f (budget %.1f)", insAllocs, delAllocs, chromaticAllocBudget)
}

// TestChromaticChurnAllocBudget pins the headline number of the epoch
// reclamation work: a steady-state delete/re-insert cycle on the Chromatic
// tree must average at most one allocation per operation, because retired
// nodes and descriptors flow back through the pools. Skipped under -tags
// noepoch, where retired memory is left to the garbage collector.
func TestChromaticChurnAllocBudget(t *testing.T) {
	if !epoch.Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	factory, ok := bench.Lookup("Chromatic")
	if !ok {
		t.Fatal("Chromatic not registered")
	}
	d := factory.New()
	for i := int64(0); i < allocKeyRange; i++ {
		d.Insert(i, i)
	}
	// Prime the pools: cycle the churn window a few times untimed so the
	// first timed deletes do not pay the initial retire-list growth.
	for i := 0; i < 4*allocChurnWindow; i++ {
		k := allocKey(i>>1) & (allocChurnWindow - 1)
		if i&1 == 0 {
			d.Delete(k)
		} else {
			d.Insert(k, int64(i))
		}
	}
	i := 0
	churnAllocs := testing.AllocsPerRun(20000, func() {
		k := allocKey(i>>1) & (allocChurnWindow - 1)
		if i&1 == 0 {
			d.Delete(k)
		} else {
			d.Insert(k, int64(i))
		}
		i++
	})
	if churnAllocs > chromaticChurnAllocBudget {
		t.Errorf("Chromatic churn allocates %.2f allocs/op, budget is %.1f", churnAllocs, chromaticChurnAllocBudget)
	}
	t.Logf("Chromatic churn: %.2f allocs/op (budget %.1f)", churnAllocs, chromaticChurnAllocBudget)
}

// TestReclaimNoLeak checks that retired memory does not accumulate: after a
// burst of updates reaches quiescence, draining the epoch retire lists frees
// everything except the bounded residue the two-epoch grace period is
// allowed to hold back (at most the last two epochs' worth of retirees plus
// parked descriptors, all of which drain on the next call).
func TestReclaimNoLeak(t *testing.T) {
	if !epoch.Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	for _, name := range allocBenchStructures {
		factory, ok := bench.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		d := factory.New()
		const n = 1 << 12
		for i := int64(0); i < n; i++ {
			d.Insert(i, i)
		}
		for i := int64(0); i < n; i++ {
			d.Delete(i)
		}
		dr, ok := d.(interface{ DrainReclaim() int64 })
		if !ok {
			t.Fatalf("%s does not expose DrainReclaim", name)
		}
		// Two passes: the first flushes deferred descriptors into the retire
		// lists and frees everything already past the grace period, the
		// second reaps what the first pass retired.
		dr.DrainReclaim()
		dr.DrainReclaim()
		if pending := epoch.Pending(); pending > 64 {
			t.Errorf("%s: %d retired objects still pending after drain at quiescence", name, pending)
		} else {
			t.Logf("%s: %d retired objects pending after drain", name, pending)
		}
	}
}

// overwriteAllocBudget is the committed allocs/op ceiling for Insert on a
// present key with int64 values: zero, for every structure the in-place
// overwrite work covers. The trees publish into the leaf's unboxed value
// cell without an SCX (previously >= 2 allocs: a replacement leaf plus a
// descriptor), and the skip list and lock-based AVL tree publish into their
// nodes' unboxed cells (previously 1 alloc: the atomic.Pointer box).
const overwriteAllocBudget = 0.0

// TestOverwriteAllocBudget fails if Insert on a present key allocates on any
// covered structure. Single-threaded and deterministic: overwrites trigger
// no structural change, so there is no rebalancing noise to average out.
func TestOverwriteAllocBudget(t *testing.T) {
	for _, name := range allocOverwriteStructures {
		factory, ok := bench.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		d := factory.New()
		const keys = 1 << 10
		for i := int64(0); i < keys; i++ {
			d.Insert(i, i)
		}
		i := 0
		allocs := testing.AllocsPerRun(20000, func() {
			d.Insert(allocKey(i)&(keys-1), int64(i))
			i++
		})
		if allocs > overwriteAllocBudget {
			t.Errorf("%s overwrite allocates %.2f allocs/op, budget is %.1f", name, allocs, overwriteAllocBudget)
		} else {
			t.Logf("%s overwrite: %.2f allocs/op", name, allocs)
		}
	}
}

// snapshotAllocBudget is the committed allocs/op ceiling for Snapshot() on
// the template trees: the capture is O(1) and allocation-lean regardless of
// the dictionary's size - one allocation for the view handle; the epoch pin
// comes from a fixed slot array and the version read is a single atomic
// load. The budget of 2 leaves room for a pin-slot overflow fallback.
const snapshotAllocBudget = 2.0

// TestSnapshotAllocBudget fails if capturing and releasing a snapshot
// allocates more than the committed budget on any snapshot-capable
// structure, at two very different tree sizes - the point of the O(1)
// capture is precisely that size must not matter.
func TestSnapshotAllocBudget(t *testing.T) {
	for _, name := range allocBenchStructures {
		factory, ok := bench.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		for _, size := range []int64{1 << 6, 1 << 15} {
			d := factory.New()
			for i := int64(0); i < size; i++ {
				d.Insert(i, i)
			}
			sn, ok := d.(dict.IntSnapshotter)
			if !ok {
				t.Fatalf("%s does not implement dict.Snapshotter", name)
			}
			allocs := testing.AllocsPerRun(2000, func() {
				s := sn.Snapshot()
				s.Release()
			})
			if allocs > snapshotAllocBudget {
				t.Errorf("%s Snapshot at %d keys allocates %.2f allocs/op, budget is %.1f", name, size, allocs, snapshotAllocBudget)
			} else {
				t.Logf("%s Snapshot at %d keys: %.2f allocs/op", name, size, allocs)
			}
		}
	}
}

// BenchmarkSnapshotCapture reports ns/op and allocs/op for a capture/release
// pair on a filled tree: the O(1) claim in wall-clock form.
func BenchmarkSnapshotCapture(b *testing.B) {
	for _, name := range allocBenchStructures {
		factory, ok := bench.Lookup(name)
		if !ok {
			b.Fatalf("unknown structure %q", name)
		}
		b.Run(name, func(b *testing.B) {
			d := factory.New()
			for i := int64(0); i < allocKeyRange; i++ {
				d.Insert(i, i)
			}
			sn := d.(dict.IntSnapshotter)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := sn.Snapshot()
				s.Release()
			}
		})
	}
}

// benchmarkAllocDelete measures steady-state deletion: the tree starts
// full and oscillates between allocKeyRange and allocKeyRange/2 keys (the
// deleted half is re-inserted with the timer stopped), so every timed
// Delete removes a present key from a large tree rather than draining the
// structure into the degenerate near-empty regime.
func benchmarkAllocDelete(b *testing.B, factory dict.IntFactory) {
	const half = allocKeyRange / 2
	d := factory.New()
	for i := 0; i < allocKeyRange; i++ {
		d.Insert(int64(i), int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	j := 0
	for i := 0; i < b.N; i++ {
		if j == half {
			b.StopTimer()
			for k := 0; k < half; k++ {
				key := allocKey(k)
				d.Insert(key, key)
			}
			j = 0
			b.StartTimer()
		}
		d.Delete(allocKey(j))
		j++
	}
}
