package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/dict"
	"repro/internal/workload"
)

// TestAllStructuresAgreeSequentially runs one deterministic operation
// sequence against every registered dictionary and a plain Go map and checks
// that every implementation returns exactly the same results. This is the
// cross-implementation differential test tying the whole repository
// together.
func TestAllStructuresAgreeSequentially(t *testing.T) {
	const ops = 8000
	const keyRange = 300
	for _, factory := range bench.Registry() {
		factory := factory
		t.Run(factory.Name, func(t *testing.T) {
			t.Parallel()
			d := factory.New()
			model := map[int64]int64{}
			rng := rand.New(rand.NewSource(2024))
			for i := 0; i < ops; i++ {
				key := rng.Int63n(keyRange)
				switch rng.Intn(3) {
				case 0:
					val := rng.Int63n(1 << 30)
					old, existed := d.Insert(key, val)
					mOld, mExisted := model[key]
					if existed != mExisted || (existed && old != mOld) {
						t.Fatalf("op %d: %s.Insert(%d) = (%d,%v), model (%d,%v)",
							i, factory.Name, key, old, existed, mOld, mExisted)
					}
					model[key] = val
				case 1:
					old, existed := d.Delete(key)
					mOld, mExisted := model[key]
					if existed != mExisted || (existed && old != mOld) {
						t.Fatalf("op %d: %s.Delete(%d) = (%d,%v), model (%d,%v)",
							i, factory.Name, key, old, existed, mOld, mExisted)
					}
					delete(model, key)
				default:
					v, ok := d.Get(key)
					mV, mOk := model[key]
					if ok != mOk || (ok && v != mV) {
						t.Fatalf("op %d: %s.Get(%d) = (%d,%v), model (%d,%v)",
							i, factory.Name, key, v, ok, mV, mOk)
					}
				}
			}
			for k, v := range model {
				if got, ok := d.Get(k); !ok || got != v {
					t.Fatalf("%s: final Get(%d) = (%d,%v), want (%d,true)", factory.Name, k, got, ok, v)
				}
			}
		})
	}
}

// TestAllStructuresSurviveConcurrentMixedWorkload applies a concurrent
// workload with per-goroutine disjoint key ranges to every registered
// dictionary and checks the per-key final states, which every linearizable
// map must satisfy regardless of interleaving.
func TestAllStructuresSurviveConcurrentMixedWorkload(t *testing.T) {
	const goroutines = 4
	const keysPerG = 200
	const opsPerG = 3000
	for _, factory := range bench.Registry() {
		factory := factory
		t.Run(factory.Name, func(t *testing.T) {
			d := factory.New()
			finals := make([]map[int64]int64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g)))
					final := map[int64]int64{}
					base := int64(g * keysPerG)
					for i := 0; i < opsPerG; i++ {
						key := base + rng.Int63n(keysPerG)
						if rng.Intn(2) == 0 {
							val := rng.Int63n(1 << 20)
							d.Insert(key, val)
							final[key] = val
						} else {
							d.Delete(key)
							final[key] = -1
						}
					}
					finals[g] = final
				}(g)
			}
			wg.Wait()
			for g, final := range finals {
				for key, want := range final {
					v, ok := d.Get(key)
					if want == -1 {
						if ok {
							t.Fatalf("%s: goroutine %d key %d present, want deleted", factory.Name, g, key)
						}
					} else if !ok || v != want {
						t.Fatalf("%s: goroutine %d key %d = (%d,%v), want (%d,true)", factory.Name, g, key, v, ok, want)
					}
				}
			}
		})
	}
}

// TestPrefillMatchesExpectedSizeForAllStructures checks the Section 6
// prefilling methodology against every implementation that can report its
// size.
func TestPrefillMatchesExpectedSizeForAllStructures(t *testing.T) {
	const keyRange = 1000
	for _, factory := range bench.Registry() {
		factory := factory
		t.Run(factory.Name, func(t *testing.T) {
			t.Parallel()
			d := factory.New()
			got := workload.Prefill(d, workload.Mix20i10d, keyRange, 0.05, 5)
			want := workload.Mix20i10d.ExpectedSize(keyRange)
			if got < want*9/10 || got > want*11/10 {
				t.Fatalf("%s: prefilled to %d, want about %d", factory.Name, got, want)
			}
			if s, ok := d.(dict.Sized); ok {
				if s.Size() != got {
					t.Fatalf("%s: Size() = %d, prefill reported %d", factory.Name, s.Size(), got)
				}
			}
		})
	}
}

// TestOrderedQueriesAgreeAcrossStructures compares Successor/Predecessor
// across every implementation that supports them, on an identical key set.
func TestOrderedQueriesAgreeAcrossStructures(t *testing.T) {
	keys := []int64{5, 10, 17, 23, 42, 77, 100, 151, 200}
	probes := []int64{0, 5, 6, 22, 23, 24, 150, 151, 199, 200, 201}
	for _, factory := range bench.Registry() {
		factory := factory
		d := factory.New()
		om, ok := d.(dict.IntOrderedMap)
		if !ok {
			continue
		}
		t.Run(factory.Name, func(t *testing.T) {
			for _, k := range keys {
				om.Insert(k, k*3)
			}
			for _, p := range probes {
				wantSucc, haveSucc := modelSuccessor(keys, p)
				gotK, gotV, gotOK := om.Successor(p)
				if gotOK != haveSucc || (haveSucc && (gotK != wantSucc || gotV != wantSucc*3)) {
					t.Errorf("%s: Successor(%d) = (%d,%d,%v), want (%d,_,%v)",
						factory.Name, p, gotK, gotV, gotOK, wantSucc, haveSucc)
				}
				wantPred, havePred := modelPredecessor(keys, p)
				gotK, gotV, gotOK = om.Predecessor(p)
				if gotOK != havePred || (havePred && (gotK != wantPred || gotV != wantPred*3)) {
					t.Errorf("%s: Predecessor(%d) = (%d,%d,%v), want (%d,_,%v)",
						factory.Name, p, gotK, gotV, gotOK, wantPred, havePred)
				}
			}
		})
	}
}

func modelSuccessor(keys []int64, p int64) (int64, bool) {
	var best int64
	found := false
	for _, k := range keys {
		if k > p && (!found || k < best) {
			best, found = k, true
		}
	}
	return best, found
}

func modelPredecessor(keys []int64, p int64) (int64, bool) {
	var best int64
	found := false
	for _, k := range keys {
		if k < p && (!found || k > best) {
			best, found = k, true
		}
	}
	return best, found
}
