package ravl

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tr.Size())
	}
	if _, _, ok := tr.Successor(0); ok {
		t.Fatal("Successor on empty tree returned ok")
	}
	if _, _, ok := tr.Predecessor(0); ok {
		t.Fatal("Predecessor on empty tree returned ok")
	}
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("CheckAVL on empty tree: %v", err)
	}
}

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, existed := tr.Insert(5, 50); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if old, existed := tr.Insert(5, 55); !existed || old != 50 {
		t.Fatalf("update insert = %d,%v", old, existed)
	}
	if old, existed := tr.Delete(5); !existed || old != 55 {
		t.Fatalf("Delete(5) = %d,%v", old, existed)
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("key still present after delete")
	}
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("CheckAVL: %v", err)
	}
}

// TestSequentialKeepsExactAVL verifies the heart of the relaxed scheme:
// with no concurrency, every update's cleanup pass restores an exact AVL
// tree (correct stored heights everywhere, all balance factors within one),
// while the dictionary behaviour matches a model map.
func TestSequentialKeepsExactAVL(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		key := rng.Int63n(400)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("op %d: Insert(%d) = (%d,%v), model (%d,%v)", i, key, old, existed, mOld, mExisted)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("op %d: Delete(%d) = (%d,%v), model (%d,%v)", i, key, old, existed, mOld, mExisted)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, key, v, ok, mV, mOk)
			}
		}
		if i%997 == 0 {
			if err := tr.CheckAVL(); err != nil {
				t.Fatalf("op %d: CheckAVL: %v", i, err)
			}
		}
	}
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("final CheckAVL: %v", err)
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	keys := tr.Keys()
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

// TestHeightWithinAVLBound inserts an adversarial (sorted) key sequence and
// checks the height stays within the AVL bound ~1.44*log2(n), which an
// unbalanced leaf-oriented BST would fail spectacularly (height n).
func TestHeightWithinAVLBound(t *testing.T) {
	tr := New()
	const n = 1 << 12
	for i := int64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("CheckAVL after sorted inserts: %v", err)
	}
	bound := HeightBound(n)
	if h := tr.Height(); h > bound {
		t.Fatalf("height %d exceeds AVL bound %d for %d keys", h, bound, n)
	}
	if s := tr.Stats(); s.RebalanceTotal() == 0 {
		t.Fatal("no rebalancing steps were performed on a sorted insert sequence")
	}
}

func TestOrderedQueries(t *testing.T) {
	tr := New()
	keys := []int64{5, 10, 17, 23, 42, 77, 100}
	for _, k := range keys {
		tr.Insert(k, k*2)
	}
	if k, v, ok := tr.Successor(17); !ok || k != 23 || v != 46 {
		t.Fatalf("Successor(17) = (%d,%d,%v), want (23,46,true)", k, v, ok)
	}
	if k, _, ok := tr.Successor(100); ok {
		t.Fatalf("Successor(100) = (%d,_,%v), want none", k, ok)
	}
	if k, v, ok := tr.Predecessor(23); !ok || k != 17 || v != 34 {
		t.Fatalf("Predecessor(23) = (%d,%d,%v), want (17,34,true)", k, v, ok)
	}
	if k, _, ok := tr.Predecessor(5); ok {
		t.Fatalf("Predecessor(5) = (%d,_,%v), want none", k, ok)
	}
	if k, _, ok := tr.Min(); !ok || k != 5 {
		t.Fatalf("Min = %d,%v, want 5", k, ok)
	}
	if k, _, ok := tr.Max(); !ok || k != 100 {
		t.Fatalf("Max = %d,%v, want 100", k, ok)
	}
	var got []int64
	tr.RangeScan(10, 77, func(k, v int64) bool { got = append(got, k); return true })
	want := []int64{10, 17, 23, 42, 77}
	if len(got) != len(want) {
		t.Fatalf("RangeScan visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeScan visited %v, want %v", got, want)
		}
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				tr.Insert(base+i, base+i)
			}
			for i := int64(0); i < perG; i += 2 {
				tr.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	if got, want := tr.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for g := 0; g < goroutines; g++ {
		base := int64(g * perG)
		for i := int64(0); i < perG; i++ {
			_, ok := tr.Get(base + i)
			if want := i%2 == 1; ok != want {
				t.Fatalf("Get(%d) = %v, want %v", base+i, ok, want)
			}
		}
	}
	steps, err := tr.RebalanceAll(DrainCap(tr.Size()))
	if err != nil {
		t.Fatalf("RebalanceAll: %v", err)
	}
	t.Logf("quiescent rebalancing: %d steps, stats %d fixes / %d single / %d double",
		steps, tr.Stats().HeightFixes.Load(), tr.Stats().SingleRotations.Load(), tr.Stats().DoubleRotations.Load())
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("CheckAVL after RebalanceAll: %v", err)
	}
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				key := rng.Int63n(64)
				switch rng.Intn(4) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				case 2:
					tr.Successor(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) returned wrong value %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatalf("CheckStructure at quiescence: %v", err)
	}
	if _, err := tr.RebalanceAll(DrainCap(tr.Size())); err != nil {
		t.Fatalf("RebalanceAll: %v", err)
	}
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("CheckAVL after RebalanceAll: %v", err)
	}
}

// TestRelaxationStaysBounded runs an update-heavy concurrent workload and
// checks that, at quiescence, the number of leftover violations (the debt
// the relaxed scheme defers) is a small fraction of the tree, and that the
// height never strays far from the AVL bound once that debt is drained.
func TestRelaxationStaysBounded(t *testing.T) {
	tr := New()
	const goroutines = 8
	const keyRange = 1 << 14
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(keyRange)
				if rng.Intn(2) == 0 {
					tr.Insert(key, key)
				} else {
					tr.Delete(key)
				}
			}
		}(g)
	}
	wg.Wait()
	n := tr.Size()
	leftover := tr.CountViolations()
	t.Logf("n=%d height=%d leftover violations=%d", n, tr.Height(), leftover)
	if n > 0 && leftover > n/2 {
		t.Fatalf("excessive leftover violations at quiescence: %d for %d keys", leftover, n)
	}
	steps, err := tr.RebalanceAll(DrainCap(tr.Size()))
	if err != nil {
		t.Fatalf("RebalanceAll: %v", err)
	}
	if err := tr.CheckAVL(); err != nil {
		t.Fatalf("CheckAVL after %d drain steps: %v", steps, err)
	}
	bound := HeightBound(n)
	if h := tr.Height(); h > bound {
		t.Fatalf("height %d exceeds AVL bound %d for %d keys", h, bound, n)
	}
}
