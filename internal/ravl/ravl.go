// Package ravl implements the non-blocking relaxed AVL tree discussed in
// Section 5 of Brown, Ellen and Ruppert, "A General Technique for
// Non-blocking Trees" (PPoPP 2014): the height-relaxed AVL rebalancing of
// Bougé, Gabarró, Messeguer and Schabanel expressed as localized updates of
// the tree update template.
//
// The tree is built entirely on the shared leaf-oriented BST engine
// (internal/lbst); this package supplies only the balancing policy, and like
// the engine it is generic over the key and value types (NewOrdered for
// cmp.Ordered keys, NewLess for an arbitrary comparator, New for the
// historical int64 instantiation). Every node's decoration is its relaxed
// height: 0 for leaves, and for internal nodes a value that would be 1 + max
// of the children's heights if the tree were quiescent and fully rebalanced.
// Insertions and deletions are the engine's ordinary template updates and do
// not touch ancestors' heights; instead, a node whose stored height no
// longer matches its children's (a height violation), or whose children's
// heights differ by two or more (a balance violation), is repaired later by
// one of three localized rebalancing steps, each a template update of its
// own:
//
//	height fix       replace a node with a copy carrying the corrected
//	                 height (may create a height violation at its parent,
//	                 which migrates the violation one level up);
//	single rotation  the classical AVL rotation, applied when the taller
//	                 child leans outward (or evenly);
//	double rotation  the classical AVL double rotation, applied when the
//	                 taller child leans inward.
//
// Rotations are only applied between nodes whose stored heights are locally
// correct, as in Bougé et al.; otherwise the child's height is fixed first.
// Because updates are decoupled from rebalancing, the AVL balance condition
// may be violated transiently (that is the "relaxed"): each operation's
// cleanup restores balance along its own search path, and a rotation can
// push a balance violation onto a path that no operation is currently
// repairing. RebalanceAll drains every remaining violation at quiescence,
// after which the tree is an exact AVL tree (CheckAVL).
package ravl

import (
	"cmp"
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/lbst"
	"repro/internal/llxscx"
)

// Stats counts the rebalancing steps performed on a tree. Counts are
// monotone and only approximately ordered with respect to concurrent
// operations.
type Stats struct {
	Cleanups        atomic.Int64 // cleanup passes triggered by updates
	HeightFixes     atomic.Int64
	SingleRotations atomic.Int64
	DoubleRotations atomic.Int64
}

// RebalanceTotal returns the total number of successful rebalancing steps.
func (s *Stats) RebalanceTotal() int64 {
	return s.HeightFixes.Load() + s.SingleRotations.Load() + s.DoubleRotations.Load()
}

// policy is the relaxed AVL balancing policy for the lbst engine. eng is the
// engine tree it balances, wired after construction; the rebalancing steps
// draw their fresh nodes and SCX descriptors from its pools.
type policy[K, V any] struct {
	stats *Stats
	eng   *lbst.Tree[K, V]
}

// Name implements lbst.Policy.
func (p *policy[K, V]) Name() string { return "RAVL" }

// InternalDeco implements lbst.Policy: the internal node created by an
// insertion sits above two leaves (height 0), so its locally correct height
// is 1.
func (p *policy[K, V]) InternalDeco() int64 { return 1 }

// CreatesViolation implements lbst.Policy. Replacing oldChild by newChild
// below parent can only create a violation at parent, and only if the
// replacement's stored height differs from what parent's bookkeeping
// expects - that is, from oldChild's stored height. (An insertion replaces
// a height-0 leaf with a height-1 internal node; a deletion replaces a
// parent with the promoted sibling, whose height is typically one less.)
// Sentinels carry no height bookkeeping, so changes directly below them
// never violate anything.
func (p *policy[K, V]) CreatesViolation(parent, oldChild, newChild *lbst.Node[K, V]) bool {
	if parent.Inf || newChild == nil {
		return false
	}
	if oldChild.Deco == newChild.Deco {
		return false
	}
	p.stats.Cleanups.Add(1)
	return true
}

// Violation implements lbst.Policy: using plain reads, an internal node is
// in violation if its stored height is not one more than its children's
// maximum, or if the children's stored heights differ by two or more.
func (p *policy[K, V]) Violation(n *lbst.Node[K, V]) bool {
	l, r := n.Left(), n.Right()
	if l == nil || r == nil {
		return false
	}
	hl, hr := l.Deco, r.Deco
	return n.Deco != 1+max(hl, hr) || hl-hr >= 2 || hr-hl >= 2
}

// Rebalance implements lbst.Policy: one localized rebalancing step at n,
// whose parent on the search path is u, expressed as LLXs followed by a
// single SCX exactly like the engine's insertions and deletions (the V
// sequences are ordered root-to-leaf, satisfying PC8, and every removed
// node reappears only as a copy, satisfying PC9). Fresh nodes come from the
// engine's node pool and are released back immediately when the SCX fails;
// removed nodes are retired by the engine's RebalanceSCX.
func (p *policy[K, V]) Rebalance(g *epoch.Guard, u, n *lbst.Node[K, V]) bool {
	lkU, st := llxscx.LLX(u)
	if st != llxscx.Snapshot {
		return false
	}
	fld := lbst.FieldOf(lkU, n)
	if fld == nil {
		return false // n is no longer u's child; caller re-searches
	}
	lkN, st := llxscx.LLX(n)
	if st != llxscx.Snapshot {
		return false
	}
	l, r := lkN.Child(0), lkN.Child(1)
	if l == nil || r == nil {
		return false
	}
	hl, hr := l.Deco, r.Deco
	switch {
	case hl >= hr+2:
		return p.fixLeft(g, lkU, lkN, fld)
	case hr >= hl+2:
		return p.fixRight(g, lkU, lkN, fld)
	case n.Deco != 1+max(hl, hr):
		repl := p.eng.CopyNode(lkN, 1+max(hl, hr))
		v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN}
		fin := [llxscx.MaxV]*lbst.Node[K, V]{n}
		if !p.eng.RebalanceSCX(g, &v, 2, &fin, 1, fld, n, repl) {
			p.eng.ReleaseFresh(repl)
			return false
		}
		p.stats.HeightFixes.Add(1)
		return true
	}
	// The violation vanished between the plain-read check and the LLXs.
	return false
}

// fixLeft repairs a balance violation where n's left child l is at least
// two taller than its right child r. The linked LLX evidence for u and n is
// supplied by the caller; fld is u's child field holding n.
func (p *policy[K, V]) fixLeft(g *epoch.Guard, lkU, lkN llxscx.Linked[lbst.Node[K, V]], fld *atomic.Pointer[lbst.Node[K, V]]) bool {
	n := lkN.Node()
	l, r := lkN.Child(0), lkN.Child(1)
	if l.Leaf {
		// Leaves store height 0, so a leaf can never be the taller side by
		// two; the tree changed under us.
		return false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return false
	}
	ll, lr := lkL.Child(0), lkL.Child(1)
	if ll == nil || lr == nil {
		return false
	}
	hll, hlr := ll.Deco, lr.Deco
	if l.Deco != 1+max(hll, hlr) {
		// Rotations are only applied between nodes whose stored heights are
		// locally correct; fix the child's height first (the balance
		// violation at n is then re-evaluated against the corrected height).
		lfld := lbst.FieldOf(lkN, l)
		repl := p.eng.CopyNode(lkL, 1+max(hll, hlr))
		v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN, lkL}
		fin := [llxscx.MaxV]*lbst.Node[K, V]{l}
		if !p.eng.RebalanceSCX(g, &v, 3, &fin, 1, lfld, l, repl) {
			p.eng.ReleaseFresh(repl)
			return false
		}
		p.stats.HeightFixes.Add(1)
		return true
	}
	if hll >= hlr {
		// Single right rotation: l becomes the subtree root, n drops to its
		// right with the inner subtree lr attached.
		inner := p.eng.InternalNode(n.K, 1+max(hlr, r.Deco), false, lr, r)
		repl := p.eng.InternalNode(l.K, 1+max(hll, inner.Deco), false, ll, inner)
		v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN, lkL}
		fin := [llxscx.MaxV]*lbst.Node[K, V]{n, l}
		if !p.eng.RebalanceSCX(g, &v, 3, &fin, 2, fld, n, repl) {
			p.eng.ReleaseFresh(inner)
			p.eng.ReleaseFresh(repl)
			return false
		}
		p.stats.SingleRotations.Add(1)
		return true
	}
	// Double rotation: the taller child leans inward, so lr (which must be
	// internal, since its stored height is at least 1) becomes the root.
	if lr.Leaf {
		return false
	}
	lkLR, st := llxscx.LLX(lr)
	if st != llxscx.Snapshot {
		return false
	}
	lrl, lrr := lkLR.Child(0), lkLR.Child(1)
	if lrl == nil || lrr == nil {
		return false
	}
	nl := p.eng.InternalNode(l.K, 1+max(hll, lrl.Deco), false, ll, lrl)
	nr := p.eng.InternalNode(n.K, 1+max(lrr.Deco, r.Deco), false, lrr, r)
	repl := p.eng.InternalNode(lr.K, 1+max(nl.Deco, nr.Deco), false, nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN, lkL, lkLR}
	fin := [llxscx.MaxV]*lbst.Node[K, V]{n, l, lr}
	if !p.eng.RebalanceSCX(g, &v, 4, &fin, 3, fld, n, repl) {
		p.eng.ReleaseFresh(nl)
		p.eng.ReleaseFresh(nr)
		p.eng.ReleaseFresh(repl)
		return false
	}
	p.stats.DoubleRotations.Add(1)
	return true
}

// fixRight is the mirror image of fixLeft: n's right child r is at least
// two taller than its left child l.
func (p *policy[K, V]) fixRight(g *epoch.Guard, lkU, lkN llxscx.Linked[lbst.Node[K, V]], fld *atomic.Pointer[lbst.Node[K, V]]) bool {
	n := lkN.Node()
	l, r := lkN.Child(0), lkN.Child(1)
	if r.Leaf {
		return false
	}
	lkR, st := llxscx.LLX(r)
	if st != llxscx.Snapshot {
		return false
	}
	rl, rr := lkR.Child(0), lkR.Child(1)
	if rl == nil || rr == nil {
		return false
	}
	hrl, hrr := rl.Deco, rr.Deco
	if r.Deco != 1+max(hrl, hrr) {
		rfld := lbst.FieldOf(lkN, r)
		repl := p.eng.CopyNode(lkR, 1+max(hrl, hrr))
		v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN, lkR}
		fin := [llxscx.MaxV]*lbst.Node[K, V]{r}
		if !p.eng.RebalanceSCX(g, &v, 3, &fin, 1, rfld, r, repl) {
			p.eng.ReleaseFresh(repl)
			return false
		}
		p.stats.HeightFixes.Add(1)
		return true
	}
	if hrr >= hrl {
		// Single left rotation.
		inner := p.eng.InternalNode(n.K, 1+max(l.Deco, hrl), false, l, rl)
		repl := p.eng.InternalNode(r.K, 1+max(inner.Deco, hrr), false, inner, rr)
		v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN, lkR}
		fin := [llxscx.MaxV]*lbst.Node[K, V]{n, r}
		if !p.eng.RebalanceSCX(g, &v, 3, &fin, 2, fld, n, repl) {
			p.eng.ReleaseFresh(inner)
			p.eng.ReleaseFresh(repl)
			return false
		}
		p.stats.SingleRotations.Add(1)
		return true
	}
	// Double rotation through rl.
	if rl.Leaf {
		return false
	}
	lkRL, st := llxscx.LLX(rl)
	if st != llxscx.Snapshot {
		return false
	}
	rll, rlr := lkRL.Child(0), lkRL.Child(1)
	if rll == nil || rlr == nil {
		return false
	}
	nl := p.eng.InternalNode(n.K, 1+max(l.Deco, rll.Deco), false, l, rll)
	nr := p.eng.InternalNode(r.K, 1+max(rlr.Deco, hrr), false, rlr, rr)
	repl := p.eng.InternalNode(rl.K, 1+max(nl.Deco, nr.Deco), false, nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]{lkU, lkN, lkR, lkRL}
	fin := [llxscx.MaxV]*lbst.Node[K, V]{n, r, rl}
	if !p.eng.RebalanceSCX(g, &v, 4, &fin, 3, fld, n, repl) {
		p.eng.ReleaseFresh(nl)
		p.eng.ReleaseFresh(nr)
		p.eng.ReleaseFresh(repl)
		return false
	}
	p.stats.DoubleRotations.Add(1)
	return true
}

// Tree is a non-blocking relaxed AVL tree implementing an ordered
// dictionary. It is safe for concurrent use by any number of goroutines.
// Use New, NewOrdered or NewLess. All dictionary and ordered-query
// operations come from the embedded engine; this type adds the AVL-specific
// inspection and quiescent rebalancing helpers.
type Tree[K, V any] struct {
	*lbst.Tree[K, V]
	pol   *policy[K, V]
	stats Stats
}

// NewLess returns an empty relaxed AVL tree whose keys are ordered by less.
func NewLess[K, V any](less func(a, b K) bool) *Tree[K, V] {
	t := &Tree[K, V]{}
	t.pol = &policy[K, V]{stats: &t.stats}
	t.Tree = lbst.New(less, t.pol)
	t.pol.eng = t.Tree
	return t
}

// NewOrdered returns an empty relaxed AVL tree over a naturally ordered key
// type. The engine installs a search routine specialized to the native `<`
// operator, so searches avoid the indirect comparator call per node.
func NewOrdered[K cmp.Ordered, V any]() *Tree[K, V] {
	t := &Tree[K, V]{}
	t.pol = &policy[K, V]{stats: &t.stats}
	t.Tree = lbst.NewOrdered[K, V](t.pol)
	t.pol.eng = t.Tree
	return t
}

// New returns an empty relaxed AVL tree with int64 keys and values, the
// instantiation the benchmark registry and the paper's figures use.
func New() *Tree[int64, int64] {
	return NewOrdered[int64, int64]()
}

// Stats returns the tree's rebalancing counters.
func (t *Tree[K, V]) Stats() *Stats { return &t.stats }

// DrainCap returns a generous bound on the quiescent rebalancing work for a
// tree of n keys: far more steps than any converging drain needs, small
// enough that RebalanceAll fails fast if step selection ever diverged.
func DrainCap(n int) int { return 30*n + 10000 }

// HeightBound returns the exact-AVL height bound for a leaf-oriented tree
// of n keys (~1.44*log2(n), plus slack for the leaf level and rounding).
// After RebalanceAll the tree's Height must not exceed it.
func HeightBound(n int) int {
	return int(1.4405*math.Log2(float64(n)+2)) + 3
}

// RebalanceAll repeatedly applies rebalancing steps, deepest violation
// first, until the tree contains none, and returns the number of steps
// performed. It must only be called at quiescence (concurrent updates can
// create violations faster than they are drained). maxSteps bounds the work
// as a safety net; an error reports a stuck or diverging rebalancing, which
// would indicate a bug in the step selection.
func (t *Tree[K, V]) RebalanceAll(maxSteps int) (int, error) {
	steps := 0
	for {
		u, n := t.findViolation()
		if n == nil {
			return steps, nil
		}
		if steps >= maxSteps {
			return steps, fmt.Errorf("rebalancing did not converge after %d steps (violation at key %v)", steps, n.K)
		}
		if !t.RebalanceStep(u, n) {
			return steps, fmt.Errorf("rebalancing step failed at quiescence (key %v)", n.K)
		}
		steps++
	}
}

// findViolation returns the parent and node of a deepest violation
// (postorder: children are repaired before their ancestors, so rotations
// always see locally correct heights below them), or nil if none exists.
// Quiescence only.
func (t *Tree[K, V]) findViolation() (u, n *lbst.Node[K, V]) {
	var rec func(parent, nd *lbst.Node[K, V]) (*lbst.Node[K, V], *lbst.Node[K, V])
	rec = func(parent, nd *lbst.Node[K, V]) (*lbst.Node[K, V], *lbst.Node[K, V]) {
		if nd == nil || nd.Leaf {
			return nil, nil
		}
		if pu, pn := rec(nd, nd.Left()); pn != nil {
			return pu, pn
		}
		if pu, pn := rec(nd, nd.Right()); pn != nil {
			return pu, pn
		}
		if !nd.Inf && t.pol.Violation(nd) {
			return parent, nd
		}
		return nil, nil
	}
	return rec(t.Entry(), t.Entry().Left())
}

// CountViolations returns the number of height and balance violations
// currently present. Quiescence only.
func (t *Tree[K, V]) CountViolations() int {
	count := 0
	var rec func(nd *lbst.Node[K, V])
	rec = func(nd *lbst.Node[K, V]) {
		if nd == nil || nd.Leaf {
			return
		}
		if !nd.Inf && t.pol.Violation(nd) {
			count++
		}
		rec(nd.Left())
		rec(nd.Right())
	}
	rec(t.Entry().Left())
	return count
}

// CheckAVL verifies that the tree is an exact AVL tree: the shared
// structural invariants hold (CheckStructure), every stored height equals
// the node's true height, and every internal node's subtree heights differ
// by at most one. After sequential operation - or after RebalanceAll at
// quiescence - this must hold. It returns nil on success.
func (t *Tree[K, V]) CheckAVL() error {
	if err := t.CheckStructure(); err != nil {
		return err
	}
	root := t.Root()
	if root == nil {
		return nil
	}
	var walk func(nd *lbst.Node[K, V]) (int64, error)
	walk = func(nd *lbst.Node[K, V]) (int64, error) {
		if nd.Leaf {
			return 0, nil // CheckStructure already verified leaf decorations
		}
		hl, err := walk(nd.Left())
		if err != nil {
			return 0, err
		}
		hr, err := walk(nd.Right())
		if err != nil {
			return 0, err
		}
		if nd.Deco != 1+max(hl, hr) {
			return 0, fmt.Errorf("node %v stores height %d, true height is %d", nd.K, nd.Deco, 1+max(hl, hr))
		}
		if hl-hr > 1 || hr-hl > 1 {
			return 0, fmt.Errorf("AVL balance violated at node %v: subtree heights %d and %d", nd.K, hl, hr)
		}
		return nd.Deco, nil
	}
	_, err := walk(root)
	return err
}
