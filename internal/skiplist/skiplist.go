// Package skiplist implements a lock-free (non-blocking) skip list, the
// analogue of java.util.concurrent.ConcurrentSkipListMap that the paper uses
// as its "SkipList" baseline. The algorithm is the classic lock-free skip
// list of Herlihy and Shavit (itself derived from Fraser's and Lea's
// designs): every next pointer is an atomically replaceable (successor,
// marked) pair, deletions first mark a node's next pointers and then rely on
// concurrent traversals to physically unlink marked nodes.
//
// The list is generic over the key and value types and implements
// dict.OrderedMap[K, V]: NewOrdered builds a list over any cmp.Ordered key
// type (installing search routines devirtualized to the native `<` operator,
// so the per-node comparisons of the tower walk cost no indirect call),
// NewLess accepts an arbitrary comparator (see dict.Less for the contract),
// and New keeps the historical int64 instantiation used by the benchmark
// registry.
package skiplist

import (
	"cmp"
	"math/rand/v2"
	"sync/atomic"

	"repro/internal/sched"
	"repro/internal/vcell"
)

// maxLevel is the maximum number of levels. 2^24 expected keys is far more
// than the benchmarks use; the paper's largest key range is 10^6.
const maxLevel = 24

// succRef is an immutable (successor, marked) pair; next pointers swing
// between freshly allocated succRef values, which emulates the
// AtomicMarkableReference used by the Java original and avoids ABA problems
// thanks to garbage collection.
type succRef[K, V any] struct {
	succ   *node[K, V]
	marked bool
}

type node[K, V any] struct {
	k K
	// v is the node's value cell, embedded so that overwriting a present
	// key's value stores no per-store box: the cell's representation is
	// selected once per list at construction (word storage for word-sized
	// value types, a boxed pointer otherwise), mirroring how the
	// constructors select the devirtualized search walks.
	v        vcell.Cell[V]
	next     []atomic.Pointer[succRef[K, V]]
	level    int
	sentinel int8 // -1 head, +1 tail, 0 ordinary
}

func newNode[K, V any](k K, v V, unboxed bool, level int, sentinel int8) *node[K, V] {
	n := &node[K, V]{k: k, level: level, sentinel: sentinel}
	n.v.Init(unboxed, v)
	n.next = make([]atomic.Pointer[succRef[K, V]], level+1)
	return n
}

func (n *node[K, V]) value() V { return n.v.Load() }

// tryPublish overwrites n's value inside a publish bracket, returning the
// displaced value. It fails - publishing NOTHING - if n is logically
// deleted (bottom-level successor marked), so a failed overwrite is always
// effect-free and the caller can fall back to a fresh insert without risking
// a double effect. A deleter that wins the bottom-level mark drains the
// bracket before loading the displaced value, which totally orders every
// successful publish before that load; see the overwrite protocol in
// internal/lbst for the full argument (the skip list's instance is simpler:
// cells are never aliased between nodes).
func (n *node[K, V]) tryPublish(value V) (V, bool) {
	n.v.BeginPublish()
	sched.Point(sched.PointVCellRecheck)
	if ref := n.next[0].Load(); ref != nil && ref.marked {
		n.v.EndPublish()
		var zero V
		return zero, false
	}
	old := n.v.Swap(value)
	n.v.EndPublish()
	return old, true
}

// List is a lock-free skip list implementing an ordered dictionary. It is
// safe for concurrent use. Use New, NewOrdered or NewLess to create one.
type List[K, V any] struct {
	head *node[K, V]
	tail *node[K, V]
	less func(a, b K) bool

	// unboxed is the value-cell representation every node of this list uses,
	// computed once at construction (see vcell.Unboxed): word storage for
	// word-sized value types, so an overwrite of a present key allocates
	// nothing, with the boxed atomic.Pointer fallback otherwise.
	unboxed bool

	// findFn and findPresentFn are the structure's search walks, selected at
	// construction: NewLess installs the comparator-based loops, NewOrdered
	// specializations comparing with the native `<`, so ordered-key lists pay
	// one indirect call per operation instead of one per node visited.
	// findPresentFn is the wait-free read-only walk (no preds/succs
	// bookkeeping, so nothing it touches escapes to the heap) returning the
	// unmarked node holding key, or nil; Get and Insert's overwrite fast
	// path are built on it.
	findFn        func(l *List[K, V], key K, preds, succs *[maxLevel + 1]*node[K, V]) bool
	findPresentFn func(l *List[K, V], key K) *node[K, V]
}

// NewLess returns an empty skip list whose keys are ordered by less.
func NewLess[K, V any](less func(a, b K) bool) *List[K, V] {
	var zk K
	var zv V
	unboxed := vcell.Unboxed[V]()
	head := newNode[K, V](zk, zv, unboxed, maxLevel, -1)
	tail := newNode[K, V](zk, zv, unboxed, maxLevel, 1)
	for i := 0; i <= maxLevel; i++ {
		head.next[i].Store(&succRef[K, V]{succ: tail})
	}
	return &List[K, V]{head: head, tail: tail, less: less, unboxed: unboxed,
		findFn: findLess[K, V], findPresentFn: findPresentLess[K, V]}
}

// NewOrdered returns an empty skip list over a naturally ordered key type.
// It behaves exactly like NewLess with cmp.Less, but installs search walks
// specialized to the native `<` operator, removing the indirect comparator
// call per node on the hot paths (find and Get).
func NewOrdered[K cmp.Ordered, V any]() *List[K, V] {
	l := NewLess[K, V](cmp.Less[K])
	l.findFn = findOrdered[K, V]
	l.findPresentFn = findPresentOrdered[K, V]
	return l
}

// New returns an empty skip list with int64 keys and values, the
// instantiation the benchmark registry and the paper's figures use.
func New() *List[int64, int64] { return NewOrdered[int64, int64]() }

// IntList is the historical int64 instantiation used by the benchmark
// registry.
type IntList = List[int64, int64]

// Name identifies the data structure in benchmark reports.
func (l *List[K, V]) Name() string { return "SkipList" }

// randomLevel chooses a tower height with geometric distribution (p = 1/2).
func randomLevel() int {
	lvl := 0
	for rand.Uint64()&1 == 1 && lvl < maxLevel-1 {
		lvl++
	}
	return lvl
}

// nodeLess reports whether n's key is strictly smaller than key, treating
// the head sentinel as -infinity and the tail sentinel as +infinity.
func (l *List[K, V]) nodeLess(n *node[K, V], key K) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return l.less(n.k, key)
	}
}

// isKey reports whether n holds exactly key (two comparator calls; keys are
// equal exactly when neither orders before the other).
func (l *List[K, V]) isKey(n *node[K, V], key K) bool {
	return n.sentinel == 0 && !l.less(n.k, key) && !l.less(key, n.k)
}

// nodeLessEq reports whether n's key is smaller than or equal to key (one
// comparator call), treating the sentinels as ±infinity.
func (l *List[K, V]) nodeLessEq(n *node[K, V], key K) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return !l.less(key, n.k)
	}
}

// find locates the position of key at every level, snipping out any marked
// (logically deleted) nodes it encounters along the way. It fills preds and
// succs and reports whether an unmarked node with the key was found at the
// bottom level.
func (l *List[K, V]) find(key K, preds, succs *[maxLevel + 1]*node[K, V]) bool {
	return l.findFn(l, key, preds, succs)
}

// findLess is the comparator-based find walk installed by NewLess.
func findLess[K, V any](l *List[K, V], key K, preds, succs *[maxLevel + 1]*node[K, V]) bool {
retry:
	for {
		pred := l.head
		for level := maxLevel; level >= 0; level-- {
			curr := pred.next[level].Load().succ
			for {
				ref := curr.next[level].Load()
				// Physically remove marked nodes encountered at this level.
				for ref != nil && ref.marked {
					expected := pred.next[level].Load()
					if expected.marked || expected.succ != curr {
						// pred itself changed (or was deleted); start over.
						continue retry
					}
					if !pred.next[level].CompareAndSwap(expected, &succRef[K, V]{succ: ref.succ}) {
						continue retry
					}
					curr = ref.succ
					ref = curr.next[level].Load()
				}
				if l.nodeLess(curr, key) {
					pred = curr
					curr = ref.succ
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return l.isKey(succs[0], key)
	}
}

// findOrdered is the devirtualized find walk installed by NewOrdered:
// identical to findLess, but the per-node comparison is the native `<` of a
// cmp.Ordered key type instead of an indirect call through l.less.
func findOrdered[K cmp.Ordered, V any](l *List[K, V], key K, preds, succs *[maxLevel + 1]*node[K, V]) bool {
retry:
	for {
		pred := l.head
		for level := maxLevel; level >= 0; level-- {
			curr := pred.next[level].Load().succ
			for {
				ref := curr.next[level].Load()
				for ref != nil && ref.marked {
					expected := pred.next[level].Load()
					if expected.marked || expected.succ != curr {
						continue retry
					}
					if !pred.next[level].CompareAndSwap(expected, &succRef[K, V]{succ: ref.succ}) {
						continue retry
					}
					curr = ref.succ
					ref = curr.next[level].Load()
				}
				if curr.sentinel == -1 || (curr.sentinel == 0 && curr.k < key) {
					pred = curr
					curr = ref.succ
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		s := succs[0]
		return s.sentinel == 0 && s.k == key
	}
}

// Get returns the value associated with key, or the zero value and false if
// absent. It is wait-free: it never helps, retries or modifies the
// structure.
func (l *List[K, V]) Get(key K) (V, bool) {
	if n := l.findPresentFn(l, key); n != nil {
		return n.value(), true
	}
	var zero V
	return zero, false
}

// findPresentLess is the comparator-based read-only walk installed by
// NewLess: it returns the unmarked node holding key, or nil if key is absent
// or logically deleted.
func findPresentLess[K, V any](l *List[K, V], key K) *node[K, V] {
	pred := l.head
	var curr *node[K, V]
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().succ
		for l.nodeLess(curr, key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	if l.isKey(curr, key) {
		if ref := curr.next[0].Load(); ref != nil && ref.marked {
			return nil
		}
		return curr
	}
	return nil
}

// findPresentOrdered is the devirtualized read-only walk installed by
// NewOrdered.
func findPresentOrdered[K cmp.Ordered, V any](l *List[K, V], key K) *node[K, V] {
	pred := l.head
	var curr *node[K, V]
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().succ
		for curr.sentinel == -1 || (curr.sentinel == 0 && curr.k < key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	if curr.sentinel == 0 && curr.k == key {
		if ref := curr.next[0].Load(); ref != nil && ref.marked {
			return nil
		}
		return curr
	}
	return nil
}

// Insert associates value with key. It returns the previous value and true
// if key was already present (in which case only the value is updated).
func (l *List[K, V]) Insert(key K, value V) (V, bool) {
	// Overwrite fast path: a read-only walk (no preds/succs bookkeeping, so
	// the walk keeps everything on the stack) locates a present node and
	// publishes the value into its embedded cell - zero allocations for
	// word-sized value types. The publish runs inside a bracket that checks
	// the node's deletion mark first, mirroring the template trees'
	// overwrite protocol: if the node was logically deleted, nothing is
	// published and the operation falls through to the full find loop below.
	// An insert of an absent key pays this extra descent before the full
	// find; the trade measured as a net win on update-heavy mixes, where
	// roughly half the inserts hit present keys and skip find's
	// heap-escaping preds/succs staging entirely.
	if n := l.findPresentFn(l, key); n != nil {
		if old, ok := n.tryPublish(value); ok {
			return old, true
		}
	}
	var preds, succs [maxLevel + 1]*node[K, V]
	topLevel := randomLevel()
	var zero V
	for {
		if l.find(key, &preds, &succs) {
			found := succs[0]
			// If the node is not logically deleted, overwrite its value: one
			// atomic publish into the embedded cell (no box for word-sized
			// value types), under the same bracket as the fast path above.
			if ref := found.next[0].Load(); ref != nil && !ref.marked {
				if old, ok := found.tryPublish(value); ok {
					return old, true
				}
			}
			// The node is being removed; retry until it is unlinked.
			continue
		}
		fresh := newNode(key, value, l.unboxed, topLevel, 0)
		for level := 0; level <= topLevel; level++ {
			fresh.next[level].Store(&succRef[K, V]{succ: succs[level]})
		}
		// Link at the bottom level first; this is the linearization point.
		if !casLink(preds[0], 0, succs[0], fresh) {
			continue
		}
		// Link the remaining levels, re-finding on interference.
		for level := 1; level <= topLevel; level++ {
			for {
				if casLink(preds[level], level, succs[level], fresh) {
					break
				}
				l.find(key, &preds, &succs)
				if succs[0] != fresh {
					// The new node was deleted before we finished building
					// its tower; stop linking upper levels.
					return zero, false
				}
				// Refresh the expected successor of the new node at this
				// level so the link preserves the list order.
				ref := fresh.next[level].Load()
				if ref.marked {
					return zero, false
				}
				if ref.succ != succs[level] {
					if !fresh.next[level].CompareAndSwap(ref, &succRef[K, V]{succ: succs[level]}) {
						return zero, false
					}
				}
			}
		}
		return zero, false
	}
}

// casLink links fresh between pred and succ at the given level, provided
// pred still points, unmarked, at succ.
func casLink[K, V any](pred *node[K, V], level int, succ, fresh *node[K, V]) bool {
	expected := pred.next[level].Load()
	if expected == nil || expected.marked || expected.succ != succ {
		return false
	}
	return pred.next[level].CompareAndSwap(expected, &succRef[K, V]{succ: fresh})
}

// Delete removes key, returning its value and true if it was present. The
// node is first marked level by level (logical deletion) and then unlinked
// by a final find.
func (l *List[K, V]) Delete(key K) (V, bool) {
	var preds, succs [maxLevel + 1]*node[K, V]
	var zero V
	if !l.find(key, &preds, &succs) {
		return zero, false
	}
	victim := succs[0]
	// Mark the upper levels.
	for level := victim.level; level >= 1; level-- {
		for {
			ref := victim.next[level].Load()
			if ref.marked {
				break
			}
			if victim.next[level].CompareAndSwap(ref, &succRef[K, V]{succ: ref.succ, marked: true}) {
				break
			}
		}
	}
	// Mark the bottom level: whoever succeeds owns the deletion.
	for {
		ref := victim.next[0].Load()
		if ref.marked {
			return zero, false // someone else deleted it first
		}
		if victim.next[0].CompareAndSwap(ref, &succRef[K, V]{succ: ref.succ, marked: true}) {
			// The winning mark is the node's finalization: drain in-flight
			// publish brackets so every overwrite that will ever be visible
			// is ordered before the displaced-value load below.
			victim.v.DrainPublishers()
			old := victim.value()
			l.find(key, &preds, &succs) // physically unlink
			return old, true
		}
	}
}

// Successor returns the smallest key strictly greater than key.
func (l *List[K, V]) Successor(key K) (K, V, bool) {
	pred := l.head
	var curr *node[K, V]
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().succ
		for l.nodeLessEq(curr, key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	for curr.sentinel != 1 {
		if ref := curr.next[0].Load(); ref == nil || !ref.marked {
			return curr.k, curr.value(), true
		}
		curr = curr.next[0].Load().succ
	}
	var zk K
	var zv V
	return zk, zv, false
}

// Predecessor returns the largest key strictly smaller than key.
func (l *List[K, V]) Predecessor(key K) (K, V, bool) {
	pred := l.head
	for level := maxLevel; level >= 0; level-- {
		curr := pred.next[level].Load().succ
		for l.nodeLess(curr, key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	if pred.sentinel == -1 {
		var zk K
		var zv V
		return zk, zv, false
	}
	return pred.k, pred.value(), true
}

// RangeScan calls fn for every key in [lo, hi] in ascending order and
// returns the number of keys visited; if fn returns false the scan stops
// early. It descends the towers to the first key >= lo and then walks the
// bottom level, skipping logically deleted nodes, so each step is one
// pointer chase rather than a fresh search from the head. The scan is not
// atomic as a whole: each visited key was present at some point during the
// scan.
func (l *List[K, V]) RangeScan(lo, hi K, fn func(k K, v V) bool) int {
	pred := l.head
	var curr *node[K, V]
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().succ
		for l.nodeLess(curr, lo) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	count := 0
	for curr.sentinel != 1 && !l.less(hi, curr.k) {
		ref := curr.next[0].Load()
		if ref == nil {
			break
		}
		if !ref.marked {
			count++
			if !fn(curr.k, curr.value()) {
				return count
			}
		}
		curr = ref.succ
	}
	return count
}

// Size returns the number of (unmarked) keys stored. It runs in linear time
// and is intended for tests and prefilling at quiescence.
func (l *List[K, V]) Size() int {
	count := 0
	for n := l.head.next[0].Load().succ; n.sentinel != 1; n = n.next[0].Load().succ {
		if ref := n.next[0].Load(); ref == nil || !ref.marked {
			count++
		}
	}
	return count
}

// Keys returns all keys in ascending order. Quiescence only.
func (l *List[K, V]) Keys() []K {
	var keys []K
	for n := l.head.next[0].Load().succ; n.sentinel != 1; n = n.next[0].Load().succ {
		if ref := n.next[0].Load(); ref == nil || !ref.marked {
			keys = append(keys, n.k)
		}
	}
	return keys
}

// CheckInvariants verifies, at quiescence, that the bottom level is strictly
// ordered and that every level is a sublist of the level below it.
func (l *List[K, V]) CheckInvariants() error {
	// Bottom level strictly ordered.
	prev := l.head
	for n := l.head.next[0].Load().succ; n.sentinel != 1; n = n.next[0].Load().succ {
		if prev.sentinel == 0 && !l.less(prev.k, n.k) {
			return errOrder
		}
		prev = n
	}
	// Every node reachable at level i must be reachable at level i-1.
	for level := 1; level <= maxLevel; level++ {
		lower := map[*node[K, V]]bool{}
		for n := l.head.next[level-1].Load().succ; n.sentinel != 1; n = n.next[level-1].Load().succ {
			lower[n] = true
		}
		for n := l.head.next[level].Load().succ; n.sentinel != 1; n = n.next[level].Load().succ {
			if ref := n.next[0].Load(); ref != nil && ref.marked {
				continue // logically deleted; may be partially unlinked
			}
			if !lower[n] {
				return errTower
			}
		}
	}
	return nil
}

type listError string

func (e listError) Error() string { return string(e) }

const (
	errOrder = listError("skiplist: bottom level out of order")
	errTower = listError("skiplist: tower node missing from lower level")
)
