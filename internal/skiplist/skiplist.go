// Package skiplist implements a lock-free (non-blocking) skip list, the
// analogue of java.util.concurrent.ConcurrentSkipListMap that the paper uses
// as its "SkipList" baseline. The algorithm is the classic lock-free skip
// list of Herlihy and Shavit (itself derived from Fraser's and Lea's
// designs): every next pointer is an atomically replaceable (successor,
// marked) pair, deletions first mark a node's next pointers and then rely on
// concurrent traversals to physically unlink marked nodes.
package skiplist

import (
	"math/rand/v2"
	"sync/atomic"
)

// maxLevel is the maximum number of levels. 2^24 expected keys is far more
// than the benchmarks use; the paper's largest key range is 10^6.
const maxLevel = 24

// succRef is an immutable (successor, marked) pair; next pointers swing
// between freshly allocated succRef values, which emulates the
// AtomicMarkableReference used by the Java original and avoids ABA problems
// thanks to garbage collection.
type succRef struct {
	succ   *node
	marked bool
}

type node struct {
	k        int64
	v        atomic.Int64
	next     []atomic.Pointer[succRef]
	level    int
	sentinel int8 // -1 head, +1 tail, 0 ordinary
}

func newNode(k, v int64, level int, sentinel int8) *node {
	n := &node{k: k, level: level, sentinel: sentinel}
	n.v.Store(v)
	n.next = make([]atomic.Pointer[succRef], level+1)
	return n
}

// less reports whether a node's key is strictly smaller than key, treating
// the head sentinel as -infinity and the tail sentinel as +infinity.
func (n *node) less(key int64) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return n.k < key
	}
}

func (n *node) equals(key int64) bool { return n.sentinel == 0 && n.k == key }

// List is a lock-free skip list implementing an ordered dictionary with
// int64 keys and values. It is safe for concurrent use. Use New to create
// one.
type List struct {
	head *node
	tail *node
}

// New returns an empty skip list.
func New() *List {
	head := newNode(0, 0, maxLevel, -1)
	tail := newNode(0, 0, maxLevel, 1)
	for i := 0; i <= maxLevel; i++ {
		head.next[i].Store(&succRef{succ: tail})
	}
	return &List{head: head, tail: tail}
}

// Name identifies the data structure in benchmark reports.
func (l *List) Name() string { return "SkipList" }

// randomLevel chooses a tower height with geometric distribution (p = 1/2).
func randomLevel() int {
	lvl := 0
	for rand.Uint64()&1 == 1 && lvl < maxLevel-1 {
		lvl++
	}
	return lvl
}

// find locates the position of key at every level, snipping out any marked
// (logically deleted) nodes it encounters along the way. It fills preds and
// succs and reports whether an unmarked node with the key was found at the
// bottom level.
func (l *List) find(key int64, preds, succs *[maxLevel + 1]*node) bool {
retry:
	for {
		pred := l.head
		for level := maxLevel; level >= 0; level-- {
			curr := pred.next[level].Load().succ
			for {
				ref := curr.next[level].Load()
				// Physically remove marked nodes encountered at this level.
				for ref != nil && ref.marked {
					expected := pred.next[level].Load()
					if expected.marked || expected.succ != curr {
						// pred itself changed (or was deleted); start over.
						continue retry
					}
					if !pred.next[level].CompareAndSwap(expected, &succRef{succ: ref.succ}) {
						continue retry
					}
					curr = ref.succ
					ref = curr.next[level].Load()
				}
				if curr.less(key) {
					pred = curr
					curr = ref.succ
				} else {
					break
				}
			}
			preds[level] = pred
			succs[level] = curr
		}
		return succs[0].equals(key)
	}
}

// Get returns the value associated with key, or (0, false) if absent. It is
// wait-free: it never helps, retries or modifies the structure.
func (l *List) Get(key int64) (int64, bool) {
	pred := l.head
	var curr *node
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().succ
		for curr.less(key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	if curr.equals(key) {
		if ref := curr.next[0].Load(); ref != nil && ref.marked {
			return 0, false
		}
		return curr.v.Load(), true
	}
	return 0, false
}

// Insert associates value with key. It returns the previous value and true
// if key was already present (in which case only the value is updated).
func (l *List) Insert(key, value int64) (int64, bool) {
	var preds, succs [maxLevel + 1]*node
	topLevel := randomLevel()
	for {
		if l.find(key, &preds, &succs) {
			found := succs[0]
			// If the node is not logically deleted, overwrite its value.
			if ref := found.next[0].Load(); ref != nil && !ref.marked {
				old := found.v.Swap(value)
				return old, true
			}
			// The node is being removed; retry until it is unlinked.
			continue
		}
		fresh := newNode(key, value, topLevel, 0)
		for level := 0; level <= topLevel; level++ {
			fresh.next[level].Store(&succRef{succ: succs[level]})
		}
		// Link at the bottom level first; this is the linearization point.
		if !casLink(preds[0], 0, succs[0], fresh) {
			continue
		}
		// Link the remaining levels, re-finding on interference.
		for level := 1; level <= topLevel; level++ {
			for {
				if casLink(preds[level], level, succs[level], fresh) {
					break
				}
				l.find(key, &preds, &succs)
				if succs[0] != fresh {
					// The new node was deleted before we finished building
					// its tower; stop linking upper levels.
					return 0, false
				}
				// Refresh the expected successor of the new node at this
				// level so the link preserves the list order.
				ref := fresh.next[level].Load()
				if ref.marked {
					return 0, false
				}
				if ref.succ != succs[level] {
					if !fresh.next[level].CompareAndSwap(ref, &succRef{succ: succs[level]}) {
						return 0, false
					}
				}
			}
		}
		return 0, false
	}
}

// casLink links fresh between pred and succ at the given level, provided
// pred still points, unmarked, at succ.
func casLink(pred *node, level int, succ, fresh *node) bool {
	expected := pred.next[level].Load()
	if expected == nil || expected.marked || expected.succ != succ {
		return false
	}
	return pred.next[level].CompareAndSwap(expected, &succRef{succ: fresh})
}

// Delete removes key, returning its value and true if it was present. The
// node is first marked level by level (logical deletion) and then unlinked
// by a final find.
func (l *List) Delete(key int64) (int64, bool) {
	var preds, succs [maxLevel + 1]*node
	if !l.find(key, &preds, &succs) {
		return 0, false
	}
	victim := succs[0]
	// Mark the upper levels.
	for level := victim.level; level >= 1; level-- {
		for {
			ref := victim.next[level].Load()
			if ref.marked {
				break
			}
			if victim.next[level].CompareAndSwap(ref, &succRef{succ: ref.succ, marked: true}) {
				break
			}
		}
	}
	// Mark the bottom level: whoever succeeds owns the deletion.
	for {
		ref := victim.next[0].Load()
		if ref.marked {
			return 0, false // someone else deleted it first
		}
		if victim.next[0].CompareAndSwap(ref, &succRef{succ: ref.succ, marked: true}) {
			old := victim.v.Load()
			l.find(key, &preds, &succs) // physically unlink
			return old, true
		}
	}
}

// Successor returns the smallest key strictly greater than key.
func (l *List) Successor(key int64) (int64, int64, bool) {
	pred := l.head
	var curr *node
	for level := maxLevel; level >= 0; level-- {
		curr = pred.next[level].Load().succ
		for curr.less(key) || curr.equals(key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	for curr.sentinel != 1 {
		if ref := curr.next[0].Load(); ref == nil || !ref.marked {
			return curr.k, curr.v.Load(), true
		}
		curr = curr.next[0].Load().succ
	}
	return 0, 0, false
}

// Predecessor returns the largest key strictly smaller than key.
func (l *List) Predecessor(key int64) (int64, int64, bool) {
	pred := l.head
	for level := maxLevel; level >= 0; level-- {
		curr := pred.next[level].Load().succ
		for curr.less(key) {
			pred = curr
			curr = curr.next[level].Load().succ
		}
	}
	if pred.sentinel == -1 {
		return 0, 0, false
	}
	return pred.k, pred.v.Load(), true
}

// Size returns the number of (unmarked) keys stored. It runs in linear time
// and is intended for tests and prefilling at quiescence.
func (l *List) Size() int {
	count := 0
	for n := l.head.next[0].Load().succ; n.sentinel != 1; n = n.next[0].Load().succ {
		if ref := n.next[0].Load(); ref == nil || !ref.marked {
			count++
		}
	}
	return count
}

// Keys returns all keys in ascending order. Quiescence only.
func (l *List) Keys() []int64 {
	var keys []int64
	for n := l.head.next[0].Load().succ; n.sentinel != 1; n = n.next[0].Load().succ {
		if ref := n.next[0].Load(); ref == nil || !ref.marked {
			keys = append(keys, n.k)
		}
	}
	return keys
}
