package skiplist

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	l := New()
	if _, ok := l.Get(5); ok {
		t.Fatal("Get on empty list returned ok")
	}
	if _, ok := l.Delete(5); ok {
		t.Fatal("Delete on empty list returned ok")
	}
	if l.Size() != 0 {
		t.Fatalf("Size = %d, want 0", l.Size())
	}
	if _, _, ok := l.Successor(0); ok {
		t.Fatal("Successor on empty list returned ok")
	}
	if _, _, ok := l.Predecessor(0); ok {
		t.Fatal("Predecessor on empty list returned ok")
	}
}

func TestBasicOperations(t *testing.T) {
	l := New()
	if _, existed := l.Insert(7, 70); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := l.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = (%d,%v)", v, ok)
	}
	if old, existed := l.Insert(7, 71); !existed || old != 70 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := l.Delete(7); !existed || old != 71 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := l.Get(7); ok {
		t.Fatal("key present after delete")
	}
	if _, existed := l.Delete(7); existed {
		t.Fatal("double delete reported existed")
	}
}

func TestAgainstModel(t *testing.T) {
	l := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30000; i++ {
		key := rng.Int63n(800)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := l.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch at op %d", key, i)
			}
			model[key] = val
		case 1:
			old, existed := l.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch at op %d", key, i)
			}
			delete(model, key)
		default:
			v, ok := l.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch at op %d", key, i)
			}
		}
	}
	if l.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", l.Size(), len(model))
	}
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	l := New()
	for k := int64(0); k < 100; k += 10 {
		l.Insert(k, k*2)
	}
	if k, v, ok := l.Successor(45); !ok || k != 50 || v != 100 {
		t.Fatalf("Successor(45) = (%d,%d,%v)", k, v, ok)
	}
	if k, _, ok := l.Successor(90); ok {
		t.Fatalf("Successor(90) = (%d,%v), want none", k, ok)
	}
	if k, _, ok := l.Successor(40); !ok || k != 50 {
		t.Fatalf("Successor(40) = (%d,%v), want 50", k, ok)
	}
	if k, v, ok := l.Predecessor(45); !ok || k != 40 || v != 80 {
		t.Fatalf("Predecessor(45) = (%d,%d,%v)", k, v, ok)
	}
	if k, _, ok := l.Predecessor(0); ok {
		t.Fatalf("Predecessor(0) = (%d,%v), want none", k, ok)
	}
}

func TestPropertyInsertDeleteRoundTrip(t *testing.T) {
	prop := func(keys []int16, deleteMask []bool) bool {
		l := New()
		present := map[int64]bool{}
		for _, k := range keys {
			l.Insert(int64(k), int64(k))
			present[int64(k)] = true
		}
		for i, k := range keys {
			if i < len(deleteMask) && deleteMask[i] {
				l.Delete(int64(k))
				delete(present, int64(k))
			}
		}
		if l.Size() != len(present) {
			return false
		}
		for k := range present {
			if _, ok := l.Get(k); !ok {
				return false
			}
		}
		keys2 := l.Keys()
		return sort.SliceIsSorted(keys2, func(i, j int) bool { return keys2[i] < keys2[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	l := New()
	const goroutines = 8
	const perG = 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				l.Insert(base+i, base+i)
			}
			for i := int64(0); i < perG; i += 2 {
				l.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	if got, want := l.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for g := 0; g < goroutines; g++ {
		base := int64(g * perG)
		for i := int64(0); i < perG; i++ {
			_, ok := l.Get(base + i)
			if want := i%2 == 1; ok != want {
				t.Fatalf("Get(%d) = %v, want %v", base+i, ok, want)
			}
		}
	}
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted after concurrent updates")
	}
}

func TestConcurrentContention(t *testing.T) {
	l := New()
	const goroutines = 16
	const opsPerG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				key := rng.Int63n(32)
				switch rng.Intn(3) {
				case 0:
					l.Insert(key, key)
				case 1:
					l.Delete(key)
				default:
					if v, ok := l.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	keys := l.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order after contention: %d >= %d", keys[i-1], keys[i])
		}
	}
	if l.Size() > 32 {
		t.Fatalf("Size = %d exceeds key range", l.Size())
	}
}

func TestConcurrentReadersSeeStableEvenKeys(t *testing.T) {
	l := New()
	const keyRange = 1 << 10
	for k := int64(0); k < keyRange; k += 2 {
		l.Insert(k, k)
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(keyRange/2)*2 + 1
				if rng.Intn(2) == 0 {
					l.Insert(key, key)
				} else {
					l.Delete(key)
				}
			}
		}(w)
	}
	errs := make(chan error, 4)
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(keyRange/2) * 2
				if v, ok := l.Get(key); !ok || v != key {
					errs <- errMismatch
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	select {
	case <-errs:
		t.Fatal("reader observed a missing or corrupted even key")
	default:
	}
}

type constError string

func (e constError) Error() string { return string(e) }

const errMismatch = constError("mismatch")

func TestRandomLevelDistribution(t *testing.T) {
	counts := make([]int, maxLevel+1)
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[randomLevel()]++
	}
	if counts[0] < samples/3 {
		t.Fatalf("level 0 frequency %d suspiciously low", counts[0])
	}
	for lvl := 0; lvl < 4; lvl++ {
		if counts[lvl] == 0 {
			t.Fatalf("level %d never chosen in %d samples", lvl, samples)
		}
		if lvl > 0 && counts[lvl] > counts[lvl-1] {
			t.Fatalf("level %d chosen more often than level %d", lvl, lvl-1)
		}
	}
}
