package skiplist

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dict"
	"repro/internal/dict/dicttest"
)

// target is the shared-suite target for the int64 instantiation: the
// model-based conformance, fuzz and stress logic lives in
// internal/dict/dicttest; this package only supplies the constructor and the
// quiescent invariant check.
func target() dicttest.Target {
	return dicttest.Target{
		Name: "SkipList",
		New:  func() dict.IntMap { return New() },
		Check: func(d dict.IntMap) error {
			return d.(*List[int64, int64]).CheckInvariants()
		},
	}
}

func TestEmpty(t *testing.T) {
	l := New()
	if _, ok := l.Get(5); ok {
		t.Fatal("Get on empty list returned ok")
	}
	if _, ok := l.Delete(5); ok {
		t.Fatal("Delete on empty list returned ok")
	}
	if l.Size() != 0 {
		t.Fatalf("Size = %d, want 0", l.Size())
	}
	if _, _, ok := l.Successor(0); ok {
		t.Fatal("Successor on empty list returned ok")
	}
	if _, _, ok := l.Predecessor(0); ok {
		t.Fatal("Predecessor on empty list returned ok")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBasicOperations(t *testing.T) {
	l := New()
	if _, existed := l.Insert(7, 70); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := l.Get(7); !ok || v != 70 {
		t.Fatalf("Get(7) = (%d,%v)", v, ok)
	}
	if old, existed := l.Insert(7, 71); !existed || old != 70 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := l.Delete(7); !existed || old != 71 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := l.Get(7); ok {
		t.Fatal("key present after delete")
	}
	if _, existed := l.Delete(7); existed {
		t.Fatal("double delete reported existed")
	}
}

func TestSequentialConformance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dicttest.SequentialConformance(t, target(), 8000, 800, seed)
	}
	// A tiny key range maximizes tower churn per key.
	dicttest.SequentialConformance(t, target(), 4000, 8, 99)
}

// TestComparatorPath runs the same conformance suite against a NewLess list
// with a reversed ordering, so the comparator-based walks (findLess/getLess)
// are exercised rather than the devirtualized ones New installs.
func TestComparatorPath(t *testing.T) {
	desc := func(a, b int64) bool { return a > b }
	tgt := dicttest.TargetOf[int64, int64]{
		Name: "SkipList/desc",
		New:  func() dict.Map[int64, int64] { return NewLess[int64, int64](desc) },
		Less: desc,
		Check: func(d dict.Map[int64, int64]) error {
			return d.(*List[int64, int64]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 6000,
		func(u uint64) int64 { return int64(u % 300) },
		func(u uint64) int64 { return int64(u % (1 << 30)) },
		7)
}

// TestStringKeys runs the conformance suite over the string-keyed
// instantiation, exercising NewOrdered's generic construction path.
func TestStringKeys(t *testing.T) {
	tgt := dicttest.TargetOf[string, string]{
		Name: "SkipList/string",
		New:  func() dict.Map[string, string] { return NewOrdered[string, string]() },
		Less: func(a, b string) bool { return a < b },
		Check: func(d dict.Map[string, string]) error {
			return d.(*List[string, string]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 6000,
		func(u uint64) string { return fmt.Sprintf("k%03d", u%200) },
		func(u uint64) string { return fmt.Sprintf("v%d", u%1024) },
		5)
}

func TestSuccessorPredecessor(t *testing.T) {
	l := New()
	for k := int64(0); k < 100; k += 10 {
		l.Insert(k, k*2)
	}
	if k, v, ok := l.Successor(45); !ok || k != 50 || v != 100 {
		t.Fatalf("Successor(45) = (%d,%d,%v)", k, v, ok)
	}
	if k, _, ok := l.Successor(90); ok {
		t.Fatalf("Successor(90) = (%d,%v), want none", k, ok)
	}
	if k, _, ok := l.Successor(40); !ok || k != 50 {
		t.Fatalf("Successor(40) = (%d,%v), want 50", k, ok)
	}
	if k, v, ok := l.Predecessor(45); !ok || k != 40 || v != 80 {
		t.Fatalf("Predecessor(45) = (%d,%d,%v)", k, v, ok)
	}
	if k, _, ok := l.Predecessor(0); ok {
		t.Fatalf("Predecessor(0) = (%d,%v), want none", k, ok)
	}
}

func TestConcurrentStress(t *testing.T) {
	dicttest.ConcurrentStress(t, target(), 8, 4000, 400)
}

func TestConcurrentContention(t *testing.T) {
	l := New()
	const goroutines = 16
	const opsPerG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				key := rng.Int63n(32)
				switch rng.Intn(3) {
				case 0:
					l.Insert(key, key)
				case 1:
					l.Delete(key)
				default:
					if v, ok := l.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	if l.Size() > 32 {
		t.Fatalf("Size = %d exceeds key range", l.Size())
	}
}

func TestConcurrentReadersSeeStableEvenKeys(t *testing.T) {
	l := New()
	const keyRange = 1 << 10
	for k := int64(0); k < keyRange; k += 2 {
		l.Insert(k, k)
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(keyRange/2)*2 + 1
				if rng.Intn(2) == 0 {
					l.Insert(key, key)
				} else {
					l.Delete(key)
				}
			}
		}(w)
	}
	errs := make(chan error, 4)
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(keyRange/2) * 2
				if v, ok := l.Get(key); !ok || v != key {
					errs <- errMismatch
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	select {
	case <-errs:
		t.Fatal("reader observed a missing or corrupted even key")
	default:
	}
}

type constError string

func (e constError) Error() string { return string(e) }

const errMismatch = constError("mismatch")

func TestRandomLevelDistribution(t *testing.T) {
	counts := make([]int, maxLevel+1)
	const samples = 200000
	for i := 0; i < samples; i++ {
		counts[randomLevel()]++
	}
	if counts[0] < samples/3 {
		t.Fatalf("level 0 frequency %d suspiciously low", counts[0])
	}
	for lvl := 0; lvl < 4; lvl++ {
		if counts[lvl] == 0 {
			t.Fatalf("level %d never chosen in %d samples", lvl, samples)
		}
		if lvl > 0 && counts[lvl] > counts[lvl-1] {
			t.Fatalf("level %d chosen more often than level %d", lvl, lvl-1)
		}
	}
}
