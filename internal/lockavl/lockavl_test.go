package lockavl

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dict"
	"repro/internal/dict/dicttest"
)

// target is the shared-suite target for the int64 instantiation: the
// model-based conformance, fuzz and stress logic lives in
// internal/dict/dicttest; this package only supplies the constructor and the
// quiescent invariant check.
func target() dicttest.Target {
	return dicttest.Target{
		Name: "LockAVL",
		New:  func() dict.IntMap { return New() },
		Check: func(d dict.IntMap) error {
			return d.(*Tree[int64, int64]).CheckInvariants()
		},
	}
}

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(9); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, existed := tr.Insert(9, 90); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(9); !ok || v != 90 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := tr.Insert(9, 91); !existed || old != 90 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := tr.Delete(9); !existed || old != 91 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(9); ok {
		t.Fatal("present after delete")
	}
	if _, existed := tr.Delete(9); existed {
		t.Fatal("double delete reported existed")
	}
}

func TestLogicalDeleteAndReinsert(t *testing.T) {
	tr := New()
	// Build a node with two children, delete it (logically), then reinsert
	// the same key: the routing node must be reactivated.
	tr.Insert(50, 1)
	tr.Insert(25, 2)
	tr.Insert(75, 3)
	if old, existed := tr.Delete(50); !existed || old != 1 {
		t.Fatalf("Delete(50) = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(50); ok {
		t.Fatal("logically deleted key still visible")
	}
	if tr.Size() != 2 {
		t.Fatalf("Size = %d, want 2", tr.Size())
	}
	if _, existed := tr.Insert(50, 9); existed {
		t.Fatal("reinsert of routing node reported existed")
	}
	if v, ok := tr.Get(50); !ok || v != 9 {
		t.Fatalf("Get(50) after reinsert = (%d,%v)", v, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialConformance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dicttest.SequentialConformance(t, target(), 8000, 600, seed)
	}
	// A tiny key range maximizes routing-node churn per key.
	dicttest.SequentialConformance(t, target(), 4000, 8, 99)
}

// TestComparatorPath runs the same conformance suite against a NewLess tree
// with a reversed ordering, so the comparator-based walks (getLess/
// locateLess) are exercised rather than the devirtualized ones New installs.
func TestComparatorPath(t *testing.T) {
	desc := func(a, b int64) bool { return a > b }
	tgt := dicttest.TargetOf[int64, int64]{
		Name: "LockAVL/desc",
		New:  func() dict.Map[int64, int64] { return NewLess[int64, int64](desc) },
		Less: desc,
		Check: func(d dict.Map[int64, int64]) error {
			return d.(*Tree[int64, int64]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 6000,
		func(u uint64) int64 { return int64(u % 300) },
		func(u uint64) int64 { return int64(u % (1 << 30)) },
		7)
}

// TestStringKeys runs the conformance suite over the string-keyed
// instantiation, exercising NewOrdered's generic construction path.
func TestStringKeys(t *testing.T) {
	tgt := dicttest.TargetOf[string, string]{
		Name: "LockAVL/string",
		New:  func() dict.Map[string, string] { return NewOrdered[string, string]() },
		Less: func(a, b string) bool { return a < b },
		Check: func(d dict.Map[string, string]) error {
			return d.(*Tree[string, string]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 6000,
		func(u uint64) string { return fmt.Sprintf("k%03d", u%200) },
		func(u uint64) string { return fmt.Sprintf("v%d", u%1024) },
		5)
}

func TestBalanceUnderSequentialInsertions(t *testing.T) {
	tr := New()
	const n = 1 << 13
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	log2 := 0
	for v := 1; v < n; v *= 2 {
		log2++
	}
	// Relaxed AVL: allow a generous constant factor over the ideal height.
	if h := tr.Height(); h > 3*log2 {
		t.Fatalf("height %d too large for %d sequentially inserted keys (log2=%d)", h, n, log2)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for k := int64(0); k < 100; k += 10 {
		tr.Insert(k, k)
	}
	tr.Delete(50) // logical or physical, must be skipped by queries
	if k, _, ok := tr.Successor(40); !ok || k != 60 {
		t.Fatalf("Successor(40) = (%d,%v), want 60", k, ok)
	}
	if k, _, ok := tr.Predecessor(60); !ok || k != 40 {
		t.Fatalf("Predecessor(60) = (%d,%v), want 40", k, ok)
	}
	if _, _, ok := tr.Successor(90); ok {
		t.Fatal("Successor(90) should not exist")
	}
	if _, _, ok := tr.Predecessor(0); ok {
		t.Fatal("Predecessor(0) should not exist")
	}
}

func TestConcurrentStress(t *testing.T) {
	dicttest.ConcurrentStress(t, target(), 8, 3000, 250)
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				key := rng.Int63n(48)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}

func TestConcurrentReadersSeeStableEvenKeys(t *testing.T) {
	tr := New()
	const keyRange = 1 << 10
	for k := int64(0); k < keyRange; k += 2 {
		tr.Insert(k, k)
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(keyRange/2)*2 + 1
				if rng.Intn(2) == 0 {
					tr.Insert(key, key)
				} else {
					tr.Delete(key)
				}
			}
		}(w)
	}
	failures := make(chan int64, 4)
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(keyRange/2) * 2
				if v, ok := tr.Get(key); !ok || v != key {
					failures <- key
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	select {
	case key := <-failures:
		t.Fatalf("reader failed to find stable even key %d", key)
	default:
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
