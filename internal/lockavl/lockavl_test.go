package lockavl

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(9); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, existed := tr.Insert(9, 90); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(9); !ok || v != 90 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := tr.Insert(9, 91); !existed || old != 90 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := tr.Delete(9); !existed || old != 91 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(9); ok {
		t.Fatal("present after delete")
	}
	if _, existed := tr.Delete(9); existed {
		t.Fatal("double delete reported existed")
	}
}

func TestLogicalDeleteAndReinsert(t *testing.T) {
	tr := New()
	// Build a node with two children, delete it (logically), then reinsert
	// the same key: the routing node must be reactivated.
	tr.Insert(50, 1)
	tr.Insert(25, 2)
	tr.Insert(75, 3)
	if old, existed := tr.Delete(50); !existed || old != 1 {
		t.Fatalf("Delete(50) = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(50); ok {
		t.Fatal("logically deleted key still visible")
	}
	if tr.Size() != 2 {
		t.Fatalf("Size = %d, want 2", tr.Size())
	}
	if _, existed := tr.Insert(50, 9); existed {
		t.Fatal("reinsert of routing node reported existed")
	}
	if v, ok := tr.Get(50); !ok || v != 9 {
		t.Fatalf("Get(50) after reinsert = (%d,%v)", v, ok)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30000; i++ {
		key := rng.Int63n(600)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch at op %d", key, i)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch at op %d", key, i)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch at op %d", key, i)
			}
		}
		if i%10000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants at op %d: %v", i, err)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	keys := tr.Keys()
	if len(keys) != len(model) {
		t.Fatalf("Keys() returned %d entries, want %d", len(keys), len(model))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBalanceUnderSequentialInsertions(t *testing.T) {
	tr := New()
	const n = 1 << 13
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	log2 := 0
	for v := 1; v < n; v *= 2 {
		log2++
	}
	// Relaxed AVL: allow a generous constant factor over the ideal height.
	if h := tr.Height(); h > 3*log2 {
		t.Fatalf("height %d too large for %d sequentially inserted keys (log2=%d)", h, n, log2)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for k := int64(0); k < 100; k += 10 {
		tr.Insert(k, k)
	}
	tr.Delete(50) // logical or physical, must be skipped by queries
	if k, _, ok := tr.Successor(40); !ok || k != 60 {
		t.Fatalf("Successor(40) = (%d,%v), want 60", k, ok)
	}
	if k, _, ok := tr.Predecessor(60); !ok || k != 40 {
		t.Fatalf("Predecessor(60) = (%d,%v), want 40", k, ok)
	}
	if _, _, ok := tr.Successor(90); ok {
		t.Fatal("Successor(90) should not exist")
	}
	if _, _, ok := tr.Predecessor(0); ok {
		t.Fatal("Predecessor(0) should not exist")
	}
}

func TestPropertyMatchesMapSemantics(t *testing.T) {
	prop := func(ins []int16, del []int16) bool {
		tr := New()
		model := map[int64]bool{}
		for _, k := range ins {
			tr.Insert(int64(k), int64(k))
			model[int64(k)] = true
		}
		for _, k := range del {
			tr.Delete(int64(k))
			delete(model, int64(k))
		}
		if tr.Size() != len(model) {
			return false
		}
		for k := range model {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				tr.Insert(base+i, base+i)
			}
			for i := int64(0); i < perG; i += 2 {
				tr.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		base := int64(g * perG)
		for i := int64(0); i < perG; i++ {
			_, ok := tr.Get(base + i)
			if want := i%2 == 1; ok != want {
				t.Fatalf("Get(%d) = %v, want %v", base+i, ok, want)
			}
		}
	}
	if got, want := tr.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				key := rng.Int63n(48)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}

func TestConcurrentReadersSeeStableEvenKeys(t *testing.T) {
	tr := New()
	const keyRange = 1 << 10
	for k := int64(0); k < keyRange; k += 2 {
		tr.Insert(k, k)
	}
	stop := make(chan struct{})
	var writers, readers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(keyRange/2)*2 + 1
				if rng.Intn(2) == 0 {
					tr.Insert(key, key)
				} else {
					tr.Delete(key)
				}
			}
		}(w)
	}
	failures := make(chan int64, 4)
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(keyRange/2) * 2
				if v, ok := tr.Get(key); !ok || v != key {
					failures <- key
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	select {
	case key := <-failures:
		t.Fatalf("reader failed to find stable even key %d", key)
	default:
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
