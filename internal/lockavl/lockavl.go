// Package lockavl implements a fine-grained lock-based relaxed-balance AVL
// tree with optimistic, lock-free reads. It stands in for the lock-based
// relaxed AVL trees the paper compares against (Bronson et al.'s "AVL-B" and
// Drachsler et al.'s "AVL-D"): updates take a small number of per-node
// locks, deletions of nodes with two children are logical (the node becomes
// a routing node, as in a partially external tree), and rebalancing is
// relaxed — heights are brought back towards AVL shape by localized
// rotations after each update rather than being enforced globally.
//
// Reads traverse the tree without locks and validate against a global
// structure-modification stamp, so searches never block, but they may have
// to retry while rotations are in flight; under update-heavy workloads this
// is exactly the behaviour that lets the non-blocking chromatic tree pull
// ahead in the paper's Figure 8.
//
// The tree is generic over the key and value types and implements
// dict.OrderedMap[K, V]: NewOrdered builds a tree over any cmp.Ordered key
// type (installing search walks devirtualized to the native `<` operator),
// NewLess accepts an arbitrary comparator (see dict.Less for the contract),
// and New keeps the historical int64 instantiation used by the benchmark
// registry.
package lockavl

import (
	"cmp"
	"sync"
	"sync/atomic"

	"repro/internal/vcell"
)

type node[K, V any] struct {
	key K

	mu sync.Mutex
	// value is the node's value cell, embedded so that overwriting a
	// present key's value stores no per-store box: the cell's
	// representation is selected once per tree at construction (word
	// storage for word-sized value types, a boxed pointer otherwise),
	// mirroring how the constructors select the devirtualized search walks.
	value   vcell.Cell[V]
	present atomic.Bool // false for routing nodes (logically deleted)
	removed atomic.Bool // true once physically unlinked

	left, right atomic.Pointer[node[K, V]]
	parent      atomic.Pointer[node[K, V]]
	height      atomic.Int32
}

func (n *node[K, V]) child(right bool) *atomic.Pointer[node[K, V]] {
	if right {
		return &n.right
	}
	return &n.left
}

func (n *node[K, V]) val() V { return n.value.Load() }

func (n *node[K, V]) setVal(v V) { n.value.Store(v) }

func heightOf[K, V any](n *node[K, V]) int32 {
	if n == nil {
		return 0
	}
	return n.height.Load()
}

func (n *node[K, V]) fixHeight() {
	lh, rh := heightOf(n.left.Load()), heightOf(n.right.Load())
	if lh > rh {
		n.height.Store(lh + 1)
	} else {
		n.height.Store(rh + 1)
	}
}

func balanceOf[K, V any](n *node[K, V]) int32 {
	return heightOf(n.left.Load()) - heightOf(n.right.Load())
}

// Tree is a concurrent ordered dictionary backed by a lock-based relaxed
// AVL tree. It is safe for concurrent use. Use New, NewOrdered or NewLess
// to create one.
type Tree[K, V any] struct {
	// rootHolder is a sentinel whose right child is the root of the tree; it
	// is never removed, which removes special cases for an empty tree and
	// for rotations at the root.
	rootHolder *node[K, V]
	less       func(a, b K) bool
	// structMods counts completed structural modifications (rotations and
	// unlinks) and inFlight counts the ones currently in progress; together
	// they let optimistic readers detect that their traversal overlapped a
	// structural change and must retry (a seqlock that tolerates multiple
	// concurrent writers).
	structMods atomic.Uint64
	inFlight   atomic.Int64
	size       atomic.Int64

	// unboxed is the value-cell representation every node of this tree uses,
	// computed once at construction (see vcell.Unboxed): word storage for
	// word-sized value types, so an overwrite of a present key allocates
	// nothing, with the boxed atomic.Pointer fallback otherwise.
	unboxed bool

	// getFn and locateFn are the structure's per-node search walks, selected
	// at construction: NewLess installs the comparator-based loops,
	// NewOrdered specializations comparing with the native `<` (one indirect
	// call per operation instead of one per node).
	getFn    func(t *Tree[K, V], key K) (V, bool)
	locateFn func(t *Tree[K, V], key K) (parent, found *node[K, V])
}

// beginStructMod marks the start of a structural modification (a rotation or
// an unlink). It must be paired with endStructMod.
func (t *Tree[K, V]) beginStructMod() { t.inFlight.Add(1) }

// endStructMod marks the end of a structural modification.
func (t *Tree[K, V]) endStructMod() {
	t.structMods.Add(1)
	t.inFlight.Add(-1)
}

// structuresStable reports whether no structural modification completed since
// stamp was taken and none is currently in flight; only then may the result
// of an optimistic traversal be trusted.
func (t *Tree[K, V]) structuresStable(stamp uint64) bool {
	return t.structMods.Load() == stamp && t.inFlight.Load() == 0
}

// NewLess returns an empty tree whose keys are ordered by less.
func NewLess[K, V any](less func(a, b K) bool) *Tree[K, V] {
	unboxed := vcell.Unboxed[V]()
	holder := &node[K, V]{}
	var zv V
	holder.value.Init(unboxed, zv)
	holder.present.Store(false)
	return &Tree[K, V]{rootHolder: holder, less: less, unboxed: unboxed,
		getFn: getLess[K, V], locateFn: locateLess[K, V]}
}

// NewOrdered returns an empty tree over a naturally ordered key type. It
// behaves exactly like NewLess with cmp.Less, but installs search walks
// specialized to the native `<` operator, removing the indirect comparator
// call per node on the hot paths (Get and the update locate).
func NewOrdered[K cmp.Ordered, V any]() *Tree[K, V] {
	t := NewLess[K, V](cmp.Less[K])
	t.getFn = getOrdered[K, V]
	t.locateFn = locateOrdered[K, V]
	return t
}

// New returns an empty tree with int64 keys and values, the instantiation
// the benchmark registry and the paper's figures use.
func New() *Tree[int64, int64] { return NewOrdered[int64, int64]() }

// IntTree is the historical int64 instantiation used by the benchmark
// registry.
type IntTree = Tree[int64, int64]

// Name identifies the data structure in benchmark reports.
func (t *Tree[K, V]) Name() string { return "LockAVL" }

// Size returns the number of keys stored. It is maintained with atomic
// counters and is exact at quiescence.
func (t *Tree[K, V]) Size() int { return int(t.size.Load()) }

// Get returns the value associated with key, or the zero value and false if
// absent. It never blocks: it traverses optimistically and retries only if a
// concurrent structural modification could have hidden the key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	return t.getFn(t, key)
}

// getLess is the comparator-based Get walk installed by NewLess.
func getLess[K, V any](t *Tree[K, V], key K) (V, bool) {
	for {
		stamp := t.structMods.Load()
		n := t.rootHolder.right.Load()
		for n != nil {
			switch {
			case t.less(key, n.key):
				n = n.left.Load()
			case t.less(n.key, key):
				n = n.right.Load()
			default:
				if n.present.Load() {
					return n.val(), true
				}
				n = nil
			}
		}
		// Key not found (or only a routing node found): the answer is
		// trustworthy only if no rotation or unlink overlapped the search.
		if t.structuresStable(stamp) {
			var zero V
			return zero, false
		}
	}
}

// getOrdered is the devirtualized Get walk installed by NewOrdered:
// identical to getLess, but the per-node comparison is the native `<` of a
// cmp.Ordered key type instead of an indirect call through t.less.
func getOrdered[K cmp.Ordered, V any](t *Tree[K, V], key K) (V, bool) {
	for {
		stamp := t.structMods.Load()
		n := t.rootHolder.right.Load()
		for n != nil {
			switch {
			case key < n.key:
				n = n.left.Load()
			case n.key < key:
				n = n.right.Load()
			default:
				if n.present.Load() {
					return n.val(), true
				}
				n = nil
			}
		}
		if t.structuresStable(stamp) {
			var zero V
			return zero, false
		}
	}
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (t *Tree[K, V]) Insert(key K, value V) (V, bool) {
	var zero V
	for {
		stamp := t.structMods.Load()
		parent, found := t.locate(key)
		if found != nil {
			found.mu.Lock()
			if found.removed.Load() {
				found.mu.Unlock()
				continue
			}
			if found.present.Load() {
				old := found.val()
				found.setVal(value)
				found.mu.Unlock()
				return old, true
			}
			// Reactivate a routing node left behind by a logical deletion.
			found.setVal(value)
			found.present.Store(true)
			found.mu.Unlock()
			t.size.Add(1)
			return zero, false
		}
		// Attach a fresh leaf under parent.
		parent.mu.Lock()
		if parent.removed.Load() {
			parent.mu.Unlock()
			continue
		}
		right := !t.less(key, parent.key)
		if parent == t.rootHolder {
			right = true
		}
		slot := parent.child(right)
		if slot.Load() != nil {
			// Someone else attached a node here first; retry from the top.
			parent.mu.Unlock()
			continue
		}
		if !t.structuresStable(stamp) {
			// A rotation or unlink overlapped the optimistic search, so
			// parent may no longer be the correct attachment point for key.
			parent.mu.Unlock()
			continue
		}
		fresh := &node[K, V]{key: key}
		fresh.value.Init(t.unboxed, value)
		fresh.present.Store(true)
		fresh.height.Store(1)
		fresh.parent.Store(parent)
		slot.Store(fresh)
		parent.mu.Unlock()
		t.size.Add(1)
		t.rebalanceFrom(parent)
		return zero, false
	}
}

// Delete removes key, returning its value and true if it was present. Nodes
// with two children are deleted logically (they remain as routing nodes);
// nodes with at most one child are unlinked.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	var zero V
	for {
		_, found := t.locate(key)
		if found == nil {
			return zero, false
		}
		found.mu.Lock()
		if found.removed.Load() {
			found.mu.Unlock()
			continue
		}
		if !found.present.Load() {
			found.mu.Unlock()
			return zero, false
		}
		left, right := found.left.Load(), found.right.Load()
		if left != nil && right != nil {
			// Two children: logical deletion only.
			old := found.val()
			found.present.Store(false)
			found.mu.Unlock()
			t.size.Add(-1)
			return old, true
		}
		found.mu.Unlock()
		// At most one child: unlink under the parent's and node's locks.
		if old, ok, done := t.unlink(found); done {
			if ok {
				t.size.Add(-1)
			}
			return old, ok
		}
		// Unlinking raced with another structural change; retry.
	}
}

// locate performs an optimistic traversal and returns the node with the key
// (if any reachable node carries it) and otherwise the last node visited,
// which is the attachment point for an insertion.
func (t *Tree[K, V]) locate(key K) (parent *node[K, V], found *node[K, V]) {
	return t.locateFn(t, key)
}

// locateLess is the comparator-based locate walk installed by NewLess.
func locateLess[K, V any](t *Tree[K, V], key K) (parent, found *node[K, V]) {
	parent = t.rootHolder
	n := t.rootHolder.right.Load()
	for n != nil {
		switch {
		case t.less(key, n.key):
			parent = n
			n = n.left.Load()
		case t.less(n.key, key):
			parent = n
			n = n.right.Load()
		default:
			return parent, n
		}
	}
	return parent, nil
}

// locateOrdered is the devirtualized locate walk installed by NewOrdered.
func locateOrdered[K cmp.Ordered, V any](t *Tree[K, V], key K) (parent, found *node[K, V]) {
	parent = t.rootHolder
	n := t.rootHolder.right.Load()
	for n != nil {
		switch {
		case key < n.key:
			parent = n
			n = n.left.Load()
		case n.key < key:
			parent = n
			n = n.right.Load()
		default:
			return parent, n
		}
	}
	return parent, nil
}

// unlink physically removes a node that has at most one child. It returns
// (value, present, done): done is false if validation failed and the caller
// must retry.
func (t *Tree[K, V]) unlink(n *node[K, V]) (V, bool, bool) {
	var zero V
	parent := n.parent.Load()
	if parent == nil {
		return zero, false, false
	}
	parent.mu.Lock()
	// The parent was read optimistically, so a concurrent rotation may have
	// inverted the parent/child relationship; acquiring the second lock with
	// TryLock (and retrying from scratch on failure) keeps the lock order
	// free of cycles.
	if !n.mu.TryLock() {
		parent.mu.Unlock()
		return zero, false, false
	}
	defer n.mu.Unlock()
	defer parent.mu.Unlock()

	if parent.removed.Load() || n.removed.Load() || n.parent.Load() != parent {
		return zero, false, false
	}
	if !n.present.Load() {
		return zero, false, true
	}
	left, right := n.left.Load(), n.right.Load()
	if left != nil && right != nil {
		// Gained a second child since we last looked: fall back to logical
		// deletion.
		old := n.val()
		n.present.Store(false)
		return old, true, true
	}
	child := left
	if child == nil {
		child = right
	}
	var slot *atomic.Pointer[node[K, V]]
	switch {
	case parent.left.Load() == n:
		slot = &parent.left
	case parent.right.Load() == n:
		slot = &parent.right
	default:
		return zero, false, false
	}
	old := n.val()
	t.beginStructMod()
	if child != nil {
		child.parent.Store(parent)
	}
	slot.Store(child)
	n.present.Store(false)
	n.removed.Store(true)
	t.endStructMod()
	t.rebalanceFromLocked(parent)
	return old, true, true
}

// rebalanceFrom walks from n towards the root, refreshing heights and
// applying single or double rotations wherever the relaxed AVL condition is
// violated by two or more.
func (t *Tree[K, V]) rebalanceFrom(n *node[K, V]) {
	for n != nil && n != t.rootHolder {
		t.rebalanceNode(n)
		n = n.parent.Load()
	}
}

// rebalanceFromLocked is like rebalanceFrom but must be called while the
// caller already holds locks on nodes at or below n's parent; it therefore
// defers the walk to after those locks are released by only fixing heights
// here. (The next update passing through will complete any remaining
// rotations — this laziness is precisely the "relaxed" in relaxed balance.)
func (t *Tree[K, V]) rebalanceFromLocked(n *node[K, V]) {
	for m := n; m != nil && m != t.rootHolder; m = m.parent.Load() {
		m.fixHeight()
	}
}

// rebalanceNode locks n's parent, n and the relevant child, re-validates the
// links and performs a rotation if n is unbalanced.
func (t *Tree[K, V]) rebalanceNode(n *node[K, V]) {
	parent := n.parent.Load()
	if parent == nil {
		return
	}
	parent.mu.Lock()
	if !n.mu.TryLock() {
		// Rebalancing is best-effort: if the locks cannot be acquired
		// without risking a cycle, skip this node; a later update passing
		// through will fix any remaining imbalance.
		parent.mu.Unlock()
		return
	}
	if parent.removed.Load() || n.removed.Load() || n.parent.Load() != parent ||
		(parent.left.Load() != n && parent.right.Load() != n) {
		n.mu.Unlock()
		parent.mu.Unlock()
		return
	}
	n.fixHeight()
	balance := balanceOf(n)
	switch {
	case balance > 1:
		l := n.left.Load()
		if l != nil && l.mu.TryLock() {
			if balanceOf(l) < 0 {
				// Left-right case: rotate the child left first.
				t.rotate(l, false)
			}
			l.mu.Unlock()
			t.rotate(n, true)
		}
	case balance < -1:
		r := n.right.Load()
		if r != nil && r.mu.TryLock() {
			if balanceOf(r) > 0 {
				// Right-left case: rotate the child right first.
				t.rotate(r, true)
			}
			r.mu.Unlock()
			t.rotate(n, false)
		}
	}
	n.mu.Unlock()
	parent.mu.Unlock()
}

// rotate performs a right rotation (rotateRight == true) or left rotation at
// n. The caller must hold the locks of n's parent and of n.
func (t *Tree[K, V]) rotate(n *node[K, V], rotateRight bool) {
	parent := n.parent.Load()
	if parent == nil {
		return
	}
	var pivot *node[K, V]
	if rotateRight {
		pivot = n.left.Load()
	} else {
		pivot = n.right.Load()
	}
	if pivot == nil {
		return
	}
	if !pivot.mu.TryLock() {
		return
	}
	defer pivot.mu.Unlock()
	if pivot.removed.Load() || pivot.parent.Load() != n {
		return
	}
	// Identify the parent's slot before touching anything, so a mismatch
	// (which cannot occur while the caller holds the parent's lock, but is
	// checked defensively) leaves the tree untouched.
	var slot *atomic.Pointer[node[K, V]]
	switch {
	case parent.left.Load() == n:
		slot = &parent.left
	case parent.right.Load() == n:
		slot = &parent.right
	default:
		return
	}
	t.beginStructMod()
	var moved *node[K, V]
	if rotateRight {
		moved = pivot.right.Load()
		n.left.Store(moved)
		pivot.right.Store(n)
	} else {
		moved = pivot.left.Load()
		n.right.Store(moved)
		pivot.left.Store(n)
	}
	if moved != nil {
		moved.parent.Store(n)
	}
	slot.Store(pivot)
	pivot.parent.Store(parent)
	n.parent.Store(pivot)
	n.fixHeight()
	pivot.fixHeight()
	t.endStructMod()
}

// Successor returns the smallest key strictly greater than key (only
// considering present nodes). Routing nodes (logically deleted keys) are
// stepped over by repeating the structural search from their key.
func (t *Tree[K, V]) Successor(key K) (K, V, bool) {
	probe := key
	for {
		node, ok := t.structuralSuccessor(probe)
		if !ok {
			var zk K
			var zv V
			return zk, zv, false
		}
		if node.present.Load() {
			return node.key, node.val(), true
		}
		probe = node.key
	}
}

// structuralSuccessor finds the node (present or routing) with the smallest
// key strictly greater than key, validating against the structure stamp.
func (t *Tree[K, V]) structuralSuccessor(key K) (*node[K, V], bool) {
	for {
		stamp := t.structMods.Load()
		var best *node[K, V]
		n := t.rootHolder.right.Load()
		for n != nil {
			if t.less(key, n.key) {
				best = n
				n = n.left.Load()
			} else {
				n = n.right.Load()
			}
		}
		if t.structuresStable(stamp) {
			return best, best != nil
		}
	}
}

// Predecessor returns the largest key strictly smaller than key (only
// considering present nodes).
func (t *Tree[K, V]) Predecessor(key K) (K, V, bool) {
	probe := key
	for {
		node, ok := t.structuralPredecessor(probe)
		if !ok {
			var zk K
			var zv V
			return zk, zv, false
		}
		if node.present.Load() {
			return node.key, node.val(), true
		}
		probe = node.key
	}
}

// structuralPredecessor finds the node (present or routing) with the largest
// key strictly smaller than key, validating against the structure stamp.
func (t *Tree[K, V]) structuralPredecessor(key K) (*node[K, V], bool) {
	for {
		stamp := t.structMods.Load()
		var best *node[K, V]
		n := t.rootHolder.right.Load()
		for n != nil {
			if t.less(n.key, key) {
				best = n
				n = n.right.Load()
			} else {
				n = n.left.Load()
			}
		}
		if t.structuresStable(stamp) {
			return best, best != nil
		}
	}
}

// Keys returns all present keys in ascending order. Quiescence only.
func (t *Tree[K, V]) Keys() []K {
	var keys []K
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		walk(n.left.Load())
		if n.present.Load() {
			keys = append(keys, n.key)
		}
		walk(n.right.Load())
	}
	walk(t.rootHolder.right.Load())
	return keys
}

// Height returns the height of the tree (including routing nodes).
// Quiescence only.
func (t *Tree[K, V]) Height() int {
	var h func(n *node[K, V]) int
	h = func(n *node[K, V]) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left.Load()), h(n.right.Load())
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.rootHolder.right.Load())
}

// CheckInvariants verifies the BST order over all reachable nodes and the
// parent-pointer consistency. Quiescence only.
func (t *Tree[K, V]) CheckInvariants() error {
	root := t.rootHolder.right.Load()
	if root == nil {
		return nil
	}
	var check func(n *node[K, V], lo, hi *K) error
	check = func(n *node[K, V], lo, hi *K) error {
		if n == nil {
			return nil
		}
		if lo != nil && !t.less(*lo, n.key) {
			return errOrder
		}
		if hi != nil && !t.less(n.key, *hi) {
			return errOrder
		}
		if n.removed.Load() {
			return errRemovedReachable
		}
		if l := n.left.Load(); l != nil {
			if l.parent.Load() != n {
				return errParent
			}
			if err := check(l, lo, &n.key); err != nil {
				return err
			}
		}
		if r := n.right.Load(); r != nil {
			if r.parent.Load() != n {
				return errParent
			}
			if err := check(r, &n.key, hi); err != nil {
				return err
			}
		}
		return nil
	}
	return check(root, nil, nil)
}

type avlError string

func (e avlError) Error() string { return string(e) }

const (
	errOrder            = avlError("lockavl: keys out of order")
	errParent           = avlError("lockavl: inconsistent parent pointer")
	errRemovedReachable = avlError("lockavl: removed node still reachable")
)
