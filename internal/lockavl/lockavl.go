// Package lockavl implements a fine-grained lock-based relaxed-balance AVL
// tree with optimistic, lock-free reads. It stands in for the lock-based
// relaxed AVL trees the paper compares against (Bronson et al.'s "AVL-B" and
// Drachsler et al.'s "AVL-D"): updates take a small number of per-node
// locks, deletions of nodes with two children are logical (the node becomes
// a routing node, as in a partially external tree), and rebalancing is
// relaxed — heights are brought back towards AVL shape by localized
// rotations after each update rather than being enforced globally.
//
// Reads traverse the tree without locks and validate against a global
// structure-modification stamp, so searches never block, but they may have
// to retry while rotations are in flight; under update-heavy workloads this
// is exactly the behaviour that lets the non-blocking chromatic tree pull
// ahead in the paper's Figure 8.
package lockavl

import (
	"sync"
	"sync/atomic"
)

type node struct {
	key int64

	mu      sync.Mutex
	value   atomic.Int64
	present atomic.Bool // false for routing nodes (logically deleted)
	removed atomic.Bool // true once physically unlinked

	left, right atomic.Pointer[node]
	parent      atomic.Pointer[node]
	height      atomic.Int32
}

func (n *node) child(right bool) *atomic.Pointer[node] {
	if right {
		return &n.right
	}
	return &n.left
}

func heightOf(n *node) int32 {
	if n == nil {
		return 0
	}
	return n.height.Load()
}

func (n *node) fixHeight() {
	lh, rh := heightOf(n.left.Load()), heightOf(n.right.Load())
	if lh > rh {
		n.height.Store(lh + 1)
	} else {
		n.height.Store(rh + 1)
	}
}

func balanceOf(n *node) int32 {
	return heightOf(n.left.Load()) - heightOf(n.right.Load())
}

// Tree is a concurrent ordered dictionary backed by a lock-based relaxed
// AVL tree. It is safe for concurrent use. Use New to create one.
type Tree struct {
	// rootHolder is a sentinel whose right child is the root of the tree; it
	// is never removed, which removes special cases for an empty tree and
	// for rotations at the root.
	rootHolder *node
	// structMods counts completed structural modifications (rotations and
	// unlinks) and inFlight counts the ones currently in progress; together
	// they let optimistic readers detect that their traversal overlapped a
	// structural change and must retry (a seqlock that tolerates multiple
	// concurrent writers).
	structMods atomic.Uint64
	inFlight   atomic.Int64
	size       atomic.Int64
}

// beginStructMod marks the start of a structural modification (a rotation or
// an unlink). It must be paired with endStructMod.
func (t *Tree) beginStructMod() { t.inFlight.Add(1) }

// endStructMod marks the end of a structural modification.
func (t *Tree) endStructMod() {
	t.structMods.Add(1)
	t.inFlight.Add(-1)
}

// structuresStable reports whether no structural modification completed since
// stamp was taken and none is currently in flight; only then may the result
// of an optimistic traversal be trusted.
func (t *Tree) structuresStable(stamp uint64) bool {
	return t.structMods.Load() == stamp && t.inFlight.Load() == 0
}

// New returns an empty tree.
func New() *Tree {
	holder := &node{key: 0}
	holder.present.Store(false)
	return &Tree{rootHolder: holder}
}

// Name identifies the data structure in benchmark reports.
func (t *Tree) Name() string { return "LockAVL" }

// Size returns the number of keys stored. It is maintained with atomic
// counters and is exact at quiescence.
func (t *Tree) Size() int { return int(t.size.Load()) }

// Get returns the value associated with key, or (0, false) if absent. It
// never blocks: it traverses optimistically and retries only if a concurrent
// structural modification could have hidden the key.
func (t *Tree) Get(key int64) (int64, bool) {
	for {
		stamp := t.structMods.Load()
		n := t.rootHolder.right.Load()
		for n != nil {
			if key == n.key {
				if n.present.Load() {
					return n.value.Load(), true
				}
				break
			}
			if key < n.key {
				n = n.left.Load()
			} else {
				n = n.right.Load()
			}
		}
		// Key not found (or only a routing node found): the answer is
		// trustworthy only if no rotation or unlink overlapped the search.
		if t.structuresStable(stamp) {
			return 0, false
		}
	}
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (t *Tree) Insert(key, value int64) (int64, bool) {
	for {
		stamp := t.structMods.Load()
		parent, found := t.locate(key)
		if found != nil {
			found.mu.Lock()
			if found.removed.Load() {
				found.mu.Unlock()
				continue
			}
			if found.present.Load() {
				old := found.value.Load()
				found.value.Store(value)
				found.mu.Unlock()
				return old, true
			}
			// Reactivate a routing node left behind by a logical deletion.
			found.value.Store(value)
			found.present.Store(true)
			found.mu.Unlock()
			t.size.Add(1)
			return 0, false
		}
		// Attach a fresh leaf under parent.
		parent.mu.Lock()
		if parent.removed.Load() {
			parent.mu.Unlock()
			continue
		}
		right := key >= parent.key
		if parent == t.rootHolder {
			right = true
		}
		slot := parent.child(right)
		if slot.Load() != nil {
			// Someone else attached a node here first; retry from the top.
			parent.mu.Unlock()
			continue
		}
		if !t.structuresStable(stamp) {
			// A rotation or unlink overlapped the optimistic search, so
			// parent may no longer be the correct attachment point for key.
			parent.mu.Unlock()
			continue
		}
		fresh := &node{key: key}
		fresh.value.Store(value)
		fresh.present.Store(true)
		fresh.height.Store(1)
		fresh.parent.Store(parent)
		slot.Store(fresh)
		parent.mu.Unlock()
		t.size.Add(1)
		t.rebalanceFrom(parent)
		return 0, false
	}
}

// Delete removes key, returning its value and true if it was present. Nodes
// with two children are deleted logically (they remain as routing nodes);
// nodes with at most one child are unlinked.
func (t *Tree) Delete(key int64) (int64, bool) {
	for {
		_, found := t.locate(key)
		if found == nil {
			return 0, false
		}
		found.mu.Lock()
		if found.removed.Load() {
			found.mu.Unlock()
			continue
		}
		if !found.present.Load() {
			found.mu.Unlock()
			return 0, false
		}
		left, right := found.left.Load(), found.right.Load()
		if left != nil && right != nil {
			// Two children: logical deletion only.
			old := found.value.Load()
			found.present.Store(false)
			found.mu.Unlock()
			t.size.Add(-1)
			return old, true
		}
		found.mu.Unlock()
		// At most one child: unlink under the parent's and node's locks.
		if old, ok, done := t.unlink(found); done {
			if ok {
				t.size.Add(-1)
			}
			return old, ok
		}
		// Unlinking raced with another structural change; retry.
	}
}

// locate performs an optimistic traversal and returns the node with the key
// (if any reachable node carries it) and otherwise the last node visited,
// which is the attachment point for an insertion.
func (t *Tree) locate(key int64) (parent *node, found *node) {
	parent = t.rootHolder
	n := t.rootHolder.right.Load()
	for n != nil {
		if key == n.key {
			return parent, n
		}
		parent = n
		if key < n.key {
			n = n.left.Load()
		} else {
			n = n.right.Load()
		}
	}
	return parent, nil
}

// unlink physically removes a node that has at most one child. It returns
// (value, present, done): done is false if validation failed and the caller
// must retry.
func (t *Tree) unlink(n *node) (int64, bool, bool) {
	parent := n.parent.Load()
	if parent == nil {
		return 0, false, false
	}
	parent.mu.Lock()
	// The parent was read optimistically, so a concurrent rotation may have
	// inverted the parent/child relationship; acquiring the second lock with
	// TryLock (and retrying from scratch on failure) keeps the lock order
	// free of cycles.
	if !n.mu.TryLock() {
		parent.mu.Unlock()
		return 0, false, false
	}
	defer n.mu.Unlock()
	defer parent.mu.Unlock()

	if parent.removed.Load() || n.removed.Load() || n.parent.Load() != parent {
		return 0, false, false
	}
	if !n.present.Load() {
		return 0, false, true
	}
	left, right := n.left.Load(), n.right.Load()
	if left != nil && right != nil {
		// Gained a second child since we last looked: fall back to logical
		// deletion.
		old := n.value.Load()
		n.present.Store(false)
		return old, true, true
	}
	child := left
	if child == nil {
		child = right
	}
	var slot *atomic.Pointer[node]
	switch {
	case parent.left.Load() == n:
		slot = &parent.left
	case parent.right.Load() == n:
		slot = &parent.right
	default:
		return 0, false, false
	}
	old := n.value.Load()
	t.beginStructMod()
	if child != nil {
		child.parent.Store(parent)
	}
	slot.Store(child)
	n.present.Store(false)
	n.removed.Store(true)
	t.endStructMod()
	t.rebalanceFromLocked(parent)
	return old, true, true
}

// rebalanceFrom walks from n towards the root, refreshing heights and
// applying single or double rotations wherever the relaxed AVL condition is
// violated by two or more.
func (t *Tree) rebalanceFrom(n *node) {
	for n != nil && n != t.rootHolder {
		t.rebalanceNode(n)
		n = n.parent.Load()
	}
}

// rebalanceFromLocked is like rebalanceFrom but must be called while the
// caller already holds locks on nodes at or below n's parent; it therefore
// defers the walk to after those locks are released by only fixing heights
// here. (The next update passing through will complete any remaining
// rotations — this laziness is precisely the "relaxed" in relaxed balance.)
func (t *Tree) rebalanceFromLocked(n *node) {
	for m := n; m != nil && m != t.rootHolder; m = m.parent.Load() {
		m.fixHeight()
	}
}

// rebalanceNode locks n's parent, n and the relevant child, re-validates the
// links and performs a rotation if n is unbalanced.
func (t *Tree) rebalanceNode(n *node) {
	parent := n.parent.Load()
	if parent == nil {
		return
	}
	parent.mu.Lock()
	if !n.mu.TryLock() {
		// Rebalancing is best-effort: if the locks cannot be acquired
		// without risking a cycle, skip this node; a later update passing
		// through will fix any remaining imbalance.
		parent.mu.Unlock()
		return
	}
	if parent.removed.Load() || n.removed.Load() || n.parent.Load() != parent ||
		(parent.left.Load() != n && parent.right.Load() != n) {
		n.mu.Unlock()
		parent.mu.Unlock()
		return
	}
	n.fixHeight()
	balance := balanceOf(n)
	switch {
	case balance > 1:
		l := n.left.Load()
		if l != nil && l.mu.TryLock() {
			if balanceOf(l) < 0 {
				// Left-right case: rotate the child left first.
				t.rotate(l, false)
			}
			l.mu.Unlock()
			t.rotate(n, true)
		}
	case balance < -1:
		r := n.right.Load()
		if r != nil && r.mu.TryLock() {
			if balanceOf(r) > 0 {
				// Right-left case: rotate the child right first.
				t.rotate(r, true)
			}
			r.mu.Unlock()
			t.rotate(n, false)
		}
	}
	n.mu.Unlock()
	parent.mu.Unlock()
}

// rotate performs a right rotation (rotateRight == true) or left rotation at
// n. The caller must hold the locks of n's parent and of n.
func (t *Tree) rotate(n *node, rotateRight bool) {
	parent := n.parent.Load()
	if parent == nil {
		return
	}
	var pivot *node
	if rotateRight {
		pivot = n.left.Load()
	} else {
		pivot = n.right.Load()
	}
	if pivot == nil {
		return
	}
	if !pivot.mu.TryLock() {
		return
	}
	defer pivot.mu.Unlock()
	if pivot.removed.Load() || pivot.parent.Load() != n {
		return
	}
	// Identify the parent's slot before touching anything, so a mismatch
	// (which cannot occur while the caller holds the parent's lock, but is
	// checked defensively) leaves the tree untouched.
	var slot *atomic.Pointer[node]
	switch {
	case parent.left.Load() == n:
		slot = &parent.left
	case parent.right.Load() == n:
		slot = &parent.right
	default:
		return
	}
	t.beginStructMod()
	var moved *node
	if rotateRight {
		moved = pivot.right.Load()
		n.left.Store(moved)
		pivot.right.Store(n)
	} else {
		moved = pivot.left.Load()
		n.right.Store(moved)
		pivot.left.Store(n)
	}
	if moved != nil {
		moved.parent.Store(n)
	}
	slot.Store(pivot)
	pivot.parent.Store(parent)
	n.parent.Store(pivot)
	n.fixHeight()
	pivot.fixHeight()
	t.endStructMod()
}

// Successor returns the smallest key strictly greater than key (only
// considering present nodes). Routing nodes (logically deleted keys) are
// stepped over by repeating the structural search from their key.
func (t *Tree) Successor(key int64) (int64, int64, bool) {
	probe := key
	for {
		node, ok := t.structuralSuccessor(probe)
		if !ok {
			return 0, 0, false
		}
		if node.present.Load() {
			return node.key, node.value.Load(), true
		}
		probe = node.key
	}
}

// structuralSuccessor finds the node (present or routing) with the smallest
// key strictly greater than key, validating against the structure stamp.
func (t *Tree) structuralSuccessor(key int64) (*node, bool) {
	for {
		stamp := t.structMods.Load()
		var best *node
		n := t.rootHolder.right.Load()
		for n != nil {
			if n.key > key {
				best = n
				n = n.left.Load()
			} else {
				n = n.right.Load()
			}
		}
		if t.structuresStable(stamp) {
			return best, best != nil
		}
	}
}

// Predecessor returns the largest key strictly smaller than key (only
// considering present nodes).
func (t *Tree) Predecessor(key int64) (int64, int64, bool) {
	probe := key
	for {
		node, ok := t.structuralPredecessor(probe)
		if !ok {
			return 0, 0, false
		}
		if node.present.Load() {
			return node.key, node.value.Load(), true
		}
		probe = node.key
	}
}

// structuralPredecessor finds the node (present or routing) with the largest
// key strictly smaller than key, validating against the structure stamp.
func (t *Tree) structuralPredecessor(key int64) (*node, bool) {
	for {
		stamp := t.structMods.Load()
		var best *node
		n := t.rootHolder.right.Load()
		for n != nil {
			if n.key < key {
				best = n
				n = n.right.Load()
			} else {
				n = n.left.Load()
			}
		}
		if t.structuresStable(stamp) {
			return best, best != nil
		}
	}
}

// Keys returns all present keys in ascending order. Quiescence only.
func (t *Tree) Keys() []int64 {
	var keys []int64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left.Load())
		if n.present.Load() {
			keys = append(keys, n.key)
		}
		walk(n.right.Load())
	}
	walk(t.rootHolder.right.Load())
	return keys
}

// Height returns the height of the tree (including routing nodes).
// Quiescence only.
func (t *Tree) Height() int {
	var h func(n *node) int
	h = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left.Load()), h(n.right.Load())
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.rootHolder.right.Load())
}

// CheckInvariants verifies the BST order over all reachable nodes and the
// parent-pointer consistency. Quiescence only.
func (t *Tree) CheckInvariants() error {
	root := t.rootHolder.right.Load()
	if root == nil {
		return nil
	}
	var check func(n *node, lo, hi *int64) error
	check = func(n *node, lo, hi *int64) error {
		if n == nil {
			return nil
		}
		if lo != nil && n.key <= *lo {
			return errOrder
		}
		if hi != nil && n.key >= *hi {
			return errOrder
		}
		if n.removed.Load() {
			return errRemovedReachable
		}
		if l := n.left.Load(); l != nil {
			if l.parent.Load() != n {
				return errParent
			}
			if err := check(l, lo, &n.key); err != nil {
				return err
			}
		}
		if r := n.right.Load(); r != nil {
			if r.parent.Load() != n {
				return errParent
			}
			if err := check(r, &n.key, hi); err != nil {
				return err
			}
		}
		return nil
	}
	return check(root, nil, nil)
}

type avlError string

func (e avlError) Error() string { return string(e) }

const (
	errOrder            = avlError("lockavl: keys out of order")
	errParent           = avlError("lockavl: inconsistent parent pointer")
	errRemovedReachable = avlError("lockavl: removed node still reachable")
)
