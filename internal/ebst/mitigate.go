package ebst

import (
	"repro/internal/epoch"
	"repro/internal/lbst"
	"repro/internal/llxscx"
)

// Degenerate-spine mitigation. The unbalanced tree never rebalances, so a
// pathological (for example sequential) insertion order builds a linear
// spine; the engine's SpineStats diagnostic detects it when a probe walks at
// least the spine cap. Rather than leaving the caller to rebuild the tree,
// the policy implements lbst.SpineMitigator: when a probe reports a deep
// walk, one throttled pass re-walks the key's path and compresses it segment
// by segment, each compression a single ordinary template update (LLX the
// segment's parent and four consecutive internal nodes, then one SCX that
// replaces the four-node path segment with a balanced block over the same
// five hanging subtrees and the same four routing keys). In-order contents
// and search correctness are untouched — the block is a permutation of the
// segment's shape — and concurrent operations see each compression as one
// atomic localized update, exactly like any rebalancing step. A pass walks
// the path once, so each deep probe shortens the spine by roughly a quarter;
// repeated probes converge the path toward balance without ever blocking.

const (
	// segLen is the number of consecutive internal nodes compressed per SCX.
	// With the segment's parent it fills five of the six LLX evidence slots.
	segLen = 4
	// maxCompressions bounds the SCXs of one mitigation pass, so a single
	// deep probe never turns into an unbounded stall for its caller.
	maxCompressions = 64
)

// MitigateSpine implements lbst.SpineMitigator: one bounded compression pass
// along key's search path. It pins its own guard (the engine may invoke it
// from inside a pinned operation; nested pins claim separate slots).
func (policy[K, V]) MitigateSpine(t *lbst.Tree[K, V], key K) {
	g := epoch.Pin()
	defer epoch.Unpin(g)
	less := t.Less()
	goesLeft := func(n *lbst.Node[K, V], k K) bool { return n.Inf || less(k, n.K) }
	u := t.Entry()
	n := u.Left()
	for scxs := 0; n != nil && !n.Leaf && scxs < maxCompressions; {
		if block, tail, ok := compressSegment(g, t, key, u, n); ok {
			scxs++
			// Resume BELOW the freshly built block, never inside it:
			// re-compressing a just-balanced block would keep succeeding
			// while pushing its hanging subtrees one level deeper per SCX,
			// turning mitigation into a height amplifier. Walk the block's
			// short through-path down to the segment's tail instead.
			u = block
			for {
				var next *lbst.Node[K, V]
				if goesLeft(u, key) {
					next = u.Left()
				} else {
					next = u.Right()
				}
				if next == tail || next == nil {
					break
				}
				u = next
			}
			n = tail
			continue
		}
		u = n
		if goesLeft(n, key) {
			n = n.Left()
		} else {
			n = n.Right()
		}
	}
}

// compressSegment attempts one compression of the path segment starting at
// s1 (a child of u) along key's search path. On success it returns the
// replacement block's root and the segment's tail (the path's continuation
// below the compressed segment, now hanging inside the block); ok=false
// means the segment was too short (a leaf or sentinel within reach) or a
// concurrent update invalidated the evidence, in which case the caller
// simply steps one node down.
func compressSegment[K, V any](g *epoch.Guard, t *lbst.Tree[K, V], key K, u, s1 *lbst.Node[K, V]) (block, tail *lbst.Node[K, V], ok bool) {
	if s1.Leaf || s1.Inf {
		return nil, nil, false
	}
	less := t.Less()
	lkU, st := llxscx.LLX(u)
	if st != llxscx.Snapshot {
		return nil, nil, false
	}
	fld := lbst.FieldOf(lkU, s1)
	if fld == nil {
		return nil, nil, false
	}

	// Walk the segment through LLX evidence, accumulating the in-order
	// sequence of hanging subtrees and separator keys: a left turn at s means
	// s's key and right child follow the expansion (collected in suffix, to
	// be reversed), a right turn means s's left child and key precede it.
	var v [llxscx.MaxV]llxscx.Linked[lbst.Node[K, V]]
	var fin [llxscx.MaxV]*lbst.Node[K, V]
	v[0] = lkU
	var subs [segLen + 1]*lbst.Node[K, V]
	var keys [segLen]K
	var sufSubs [segLen]*lbst.Node[K, V]
	var sufKeys [segLen]K
	nPre, nSuf := 0, 0
	s := s1
	for i := 0; i < segLen; i++ {
		if s.Leaf || s.Inf {
			return nil, nil, false
		}
		lk, st := llxscx.LLX(s)
		if st != llxscx.Snapshot {
			return nil, nil, false
		}
		v[i+1] = lk
		fin[i] = s
		if less(key, s.K) {
			sufKeys[nSuf] = s.K
			sufSubs[nSuf] = lk.Child(1)
			nSuf++
			s = lk.Child(0)
		} else {
			subs[nPre] = lk.Child(0)
			keys[nPre] = s.K
			nPre++
			s = lk.Child(1)
		}
		if s == nil {
			return nil, nil, false
		}
	}
	// s is now the tail: the path's continuation below the segment. Assemble
	// the full in-order sequence subs[0] keys[0] ... keys[3] subs[4].
	tail = s
	subs[nPre] = s
	for i := nSuf - 1; i >= 0; i-- {
		keys[nPre] = sufKeys[i]
		nPre++
		subs[nPre] = sufSubs[i]
	}

	// Build the balanced replacement block from the pool. The hanging
	// subtrees are reused as children of fresh nodes (allowed, as in the
	// insertion template); only the four spine nodes are finalized and
	// retired, and their keys reappear solely in fresh internal nodes (PC9).
	var fresh [segLen]*lbst.Node[K, V]
	nFresh := 0
	var build func(sl, sr, kl, kr int) *lbst.Node[K, V]
	build = func(sl, sr, kl, kr int) *lbst.Node[K, V] {
		if sl == sr {
			return subs[sl]
		}
		mid := kl + (kr-kl)/2
		left := build(sl, sl+(mid-kl), kl, mid)
		right := build(sl+(mid-kl)+1, sr, mid+1, kr)
		n := t.InternalNode(keys[mid], 0, false, left, right)
		fresh[nFresh] = n
		nFresh++
		return n
	}
	block = build(0, segLen, 0, segLen)
	if !t.RebalanceSCX(g, &v, segLen+1, &fin, segLen, fld, s1, block) {
		for i := 0; i < nFresh; i++ {
			t.ReleaseFresh(fresh[i])
		}
		return nil, nil, false
	}
	return block, tail, true
}
