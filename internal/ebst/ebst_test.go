package ebst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tr.Size())
	}
}

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, existed := tr.Insert(5, 50); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if old, existed := tr.Insert(5, 55); !existed || old != 50 {
		t.Fatalf("update insert = %d,%v", old, existed)
	}
	if v, ok := tr.Get(5); !ok || v != 55 {
		t.Fatalf("Get(5) after update = %d,%v", v, ok)
	}
	if old, existed := tr.Delete(5); !existed || old != 55 {
		t.Fatalf("Delete(5) = %d,%v", old, existed)
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("key still present after delete")
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		key := rng.Int63n(300)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch", key)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch", key)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch", key)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	keys := tr.Keys()
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestPropertyMatchesMapSemantics(t *testing.T) {
	type op struct {
		Key    int8
		Val    int16
		Delete bool
	}
	prop := func(ops []op) bool {
		tr := New()
		model := map[int64]int64{}
		for _, o := range ops {
			k := int64(o.Key)
			if o.Delete {
				old, existed := tr.Delete(k)
				mOld, mExisted := model[k]
				if existed != mExisted || (existed && old != mOld) {
					return false
				}
				delete(model, k)
			} else {
				old, existed := tr.Insert(k, int64(o.Val))
				mOld, mExisted := model[k]
				if existed != mExisted || (existed && old != mOld) {
					return false
				}
				model[k] = int64(o.Val)
			}
		}
		return tr.Size() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				tr.Insert(base+i, base+i)
			}
			for i := int64(0); i < perG; i += 2 {
				tr.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	if got, want := tr.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for g := 0; g < goroutines; g++ {
		base := int64(g * perG)
		for i := int64(0); i < perG; i++ {
			_, ok := tr.Get(base + i)
			if want := i%2 == 1; ok != want {
				t.Fatalf("Get(%d) = %v, want %v", base+i, ok, want)
			}
		}
	}
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				key := rng.Int63n(64)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) returned wrong value %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}

// TestSpineDiagnosticFiresOnSequentialFill checks the degenerate-spine
// diagnostic the engine provides for unbalanced instantiations: a sequential
// insertion order degrades the EBST to a linear spine, so searches past the
// spine cap must be counted and the recorded maximum depth must reflect the
// spine's height - observable through SpineStats without any operation
// failing. A random insertion order of the same size must not trip the
// diagnostic at all.
func TestSpineDiagnosticFiresOnSequentialFill(t *testing.T) {
	const n = 1024 // far past the 128-node spine cap
	tr := New()
	for i := int64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	// The fill itself walks ever-deeper spines; a Get for the deepest key
	// makes the final probe deterministic.
	if _, ok := tr.Get(n - 1); !ok {
		t.Fatal("deepest key missing after sequential fill")
	}
	deep, maxDepth := tr.SpineStats()
	if deep == 0 {
		t.Fatal("sequential fill of 1024 keys tripped no deep-spine searches")
	}
	if maxDepth < n/2 {
		t.Fatalf("max recorded spine depth %d does not reflect a %d-key spine", maxDepth, n)
	}
	t.Logf("sequential fill: %d deep searches, max depth %d", deep, maxDepth)

	rnd := New()
	for _, k := range rand.New(rand.NewSource(1)).Perm(n) {
		rnd.Insert(int64(k), int64(k))
	}
	if deep, _ := rnd.SpineStats(); deep != 0 {
		t.Fatalf("random fill of %d keys tripped %d deep-spine searches", n, deep)
	}
}
