package ebst

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
	"repro/internal/lbst"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tr.Size())
	}
}

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, existed := tr.Insert(5, 50); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v", v, ok)
	}
	if old, existed := tr.Insert(5, 55); !existed || old != 50 {
		t.Fatalf("update insert = %d,%v", old, existed)
	}
	if v, ok := tr.Get(5); !ok || v != 55 {
		t.Fatalf("Get(5) after update = %d,%v", v, ok)
	}
	if old, existed := tr.Delete(5); !existed || old != 55 {
		t.Fatalf("Delete(5) = %d,%v", old, existed)
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("key still present after delete")
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		key := rng.Int63n(300)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch", key)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch", key)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch", key)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	keys := tr.Keys()
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, keys[i], want[i])
		}
	}
}

func TestPropertyMatchesMapSemantics(t *testing.T) {
	type op struct {
		Key    int8
		Val    int16
		Delete bool
	}
	prop := func(ops []op) bool {
		tr := New()
		model := map[int64]int64{}
		for _, o := range ops {
			k := int64(o.Key)
			if o.Delete {
				old, existed := tr.Delete(k)
				mOld, mExisted := model[k]
				if existed != mExisted || (existed && old != mOld) {
					return false
				}
				delete(model, k)
			} else {
				old, existed := tr.Insert(k, int64(o.Val))
				mOld, mExisted := model[k]
				if existed != mExisted || (existed && old != mOld) {
					return false
				}
				model[k] = int64(o.Val)
			}
		}
		return tr.Size() == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				tr.Insert(base+i, base+i)
			}
			for i := int64(0); i < perG; i += 2 {
				tr.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	if got, want := tr.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for g := 0; g < goroutines; g++ {
		base := int64(g * perG)
		for i := int64(0); i < perG; i++ {
			_, ok := tr.Get(base + i)
			if want := i%2 == 1; ok != want {
				t.Fatalf("Get(%d) = %v, want %v", base+i, ok, want)
			}
		}
	}
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				key := rng.Int63n(64)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) returned wrong value %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}

// TestSpineDiagnosticFiresOnSequentialFill checks the degenerate-spine
// diagnostic the engine provides for unbalanced instantiations: a sequential
// insertion order keeps driving probes past the spine cap, so deep searches
// must be counted - observable through SpineStats without any operation
// failing. Since the policy now mitigates on every deep probe, the recorded
// maximum depth must stay far below the linear height the fill would
// otherwise build. A random insertion order of the same size must not trip
// the diagnostic at all.
func TestSpineDiagnosticFiresOnSequentialFill(t *testing.T) {
	const n = 1024 // far past the 128-node spine cap
	tr := New()
	for i := int64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	if _, ok := tr.Get(n - 1); !ok {
		t.Fatal("deepest key missing after sequential fill")
	}
	deep, maxDepth := tr.SpineStats()
	if deep == 0 {
		t.Fatal("sequential fill of 1024 keys tripped no deep-spine searches")
	}
	if maxDepth >= n/2 {
		t.Fatalf("max recorded depth %d: mitigation left the %d-key spine linear", maxDepth, n)
	}
	t.Logf("sequential fill: %d deep searches, max depth %d", deep, maxDepth)

	rnd := New()
	for _, k := range rand.New(rand.NewSource(1)).Perm(n) {
		rnd.Insert(int64(k), int64(k))
	}
	if deep, _ := rnd.SpineStats(); deep != 0 {
		t.Fatalf("random fill of %d keys tripped %d deep-spine searches", n, deep)
	}
}

// rawPolicy is the no-op policy without the SpineMitigator extension: a tree
// instantiated with it keeps whatever degenerate spine the insertion order
// builds. It serves as the "before" side of the mitigation test.
type rawPolicy[K, V any] struct{}

func (rawPolicy[K, V]) Name() string                                   { return "EBST-raw" }
func (rawPolicy[K, V]) InternalDeco() int64                            { return 0 }
func (rawPolicy[K, V]) CreatesViolation(_, _, _ *lbst.Node[K, V]) bool { return false }
func (rawPolicy[K, V]) Violation(*lbst.Node[K, V]) bool                { return false }
func (rawPolicy[K, V]) Rebalance(_ *epoch.Guard, _, _ *lbst.Node[K, V]) bool {
	return false
}

// TestSpineMitigationCompressesSequentialFill is the before/after SpineStats
// check for the segment-compression mitigation: the same sequential fill is
// run once without the mitigator (linear spine, the "before" baseline) and
// once with it (the shipped policy), and the mitigated tree must end up with
// a height and recorded probe depth far below the baseline while holding
// exactly the same contents.
func TestSpineMitigationCompressesSequentialFill(t *testing.T) {
	const n = 2048

	raw := lbst.NewOrdered[int64, int64](rawPolicy[int64, int64]{})
	for i := int64(0); i < n; i++ {
		raw.Insert(i, i)
	}
	raw.Get(n - 1)
	_, rawMax := raw.SpineStats()
	rawH := raw.Height()
	if rawH < n/2 {
		t.Fatalf("unmitigated baseline height %d is not a linear spine", rawH)
	}

	tr := New()
	for i := int64(0); i < n; i++ {
		tr.Insert(i, i)
	}
	// Deep probes trigger throttled mitigation passes; spread them across the
	// key space so every residual deep path gets compressed.
	for round := 0; round < 64; round++ {
		for k := int64(0); k < n; k += 97 {
			tr.Get(k)
		}
	}
	deep, maxDepth := tr.SpineStats()
	if deep == 0 {
		t.Fatal("mitigated fill tripped no deep-spine searches (mitigation never ran)")
	}
	h := tr.Height()
	if h*4 > rawH {
		t.Fatalf("mitigated height %d not clearly below unmitigated %d", h, rawH)
	}
	if maxDepth >= rawMax {
		t.Fatalf("mitigated max probe depth %d did not improve on baseline %d", maxDepth, rawMax)
	}
	t.Logf("height %d -> %d, max probe depth %d -> %d, %d deep searches",
		rawH, h, rawMax, maxDepth, deep)

	if got := tr.Size(); got != n {
		t.Fatalf("Size = %d after mitigation, want %d", got, n)
	}
	keys := tr.Keys()
	for i := range keys {
		if keys[i] != int64(i) {
			t.Fatalf("Keys()[%d] = %d after mitigation, want %d", i, keys[i], i)
		}
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatalf("structure check after mitigation: %v", err)
	}
}

// TestSpineMitigationUnderConcurrentChurn runs the mitigation concurrently
// with updates over an initially degenerate key range: compressions are
// ordinary template updates, so nothing may be lost or duplicated.
func TestSpineMitigationUnderConcurrentChurn(t *testing.T) {
	const n = 1024
	tr := New()
	for i := int64(0); i < n; i++ {
		tr.Insert(i*2, i*2) // even keys, sequential: deep spine + gaps to churn
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4000; i++ {
				k := rng.Int63n(n) * 2
				switch rng.Intn(3) {
				case 0:
					tr.Insert(k+1, k+1) // odd keys come and go
				case 1:
					tr.Delete(k + 1)
				default:
					if v, ok := tr.Get(k); !ok || v != k {
						t.Errorf("Get(%d) = %d,%v during churn", k, v, ok)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for i := int64(0); i < n; i++ {
		if v, ok := tr.Get(i * 2); !ok || v != i*2 {
			t.Fatalf("even key %d lost or corrupted after churn: %d,%v", i*2, v, ok)
		}
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatalf("structure check after churn: %v", err)
	}
}
