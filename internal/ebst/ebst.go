// Package ebst implements a non-blocking, leaf-oriented, unbalanced binary
// search tree as the trivial instantiation of the shared engine in
// internal/lbst.
//
// This is the style of data structure for which the tree update template was
// originally motivated (Ellen, Fatourou, Ruppert and van Breugel's
// non-blocking BST). The engine owns the search loop, the insertion and
// deletion template updates and the ordered queries; all this package adds
// is the no-op balancing policy - no decoration, no violations, no
// rebalancing steps - which demonstrates how little code a new
// template-based data structure needs. Because there is no rebalancing, the
// height can be linear in the number of keys; the benchmark harness uses it
// as the "unbalanced non-blocking" reference point.
package ebst

import "repro/internal/lbst"

// policy is the no-op balancing policy: an unbalanced tree never considers
// itself in violation.
type policy struct{}

func (policy) Name() string                             { return "EBST" }
func (policy) InternalDeco() int64                      { return 0 }
func (policy) CreatesViolation(_, _, _ *lbst.Node) bool { return false }
func (policy) Violation(*lbst.Node) bool                { return false }
func (policy) Rebalance(_, _ *lbst.Node) bool           { return false }

// Tree is a non-blocking unbalanced leaf-oriented BST. It is safe for
// concurrent use. Use New to create one. All dictionary and ordered-query
// operations (Get, Insert, Delete, Successor, Predecessor, RangeScan, Min,
// Max) and the quiescent helpers (Size, Height, Keys, CheckStructure) are
// provided by the embedded engine.
type Tree struct {
	*lbst.Tree
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{lbst.New(policy{})}
}
