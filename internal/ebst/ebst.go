// Package ebst implements a non-blocking, leaf-oriented, unbalanced binary
// search tree using the tree update template of internal/core directly.
//
// This is the style of data structure for which the template was originally
// motivated (Ellen, Fatourou, Ruppert and van Breugel's non-blocking BST):
// every Insert and Delete is a single localized update, expressed literally
// with the template's Condition / NextNode / Args / Result callbacks, which
// demonstrates how little code a new template-based data structure needs.
// Because there is no rebalancing, the height can be linear in the number of
// keys; the benchmark harness uses it as the "unbalanced non-blocking"
// reference point.
package ebst

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/llxscx"
)

// node is a Data-record of the tree: leaf-oriented, two mutable child
// pointers, immutable key and value. Sentinel nodes have inf == true and act
// as +infinity keys.
type node struct {
	rec  llxscx.Record[node]
	k, v int64
	leaf bool
	inf  bool

	left, right atomic.Pointer[node]
}

func (n *node) LLXRecord() *llxscx.Record[node] { return &n.rec }
func (n *node) NumMutable() int                 { return 2 }
func (n *node) Mutable(i int) *atomic.Pointer[node] {
	if i == 0 {
		return &n.left
	}
	return &n.right
}

func keyLess(key int64, n *node) bool { return n.inf || key < n.k }

func newLeaf(k, v int64) *node { return &node{k: k, v: v, leaf: true} }

func newInternal(k int64, inf bool, left, right *node) *node {
	n := &node{k: k, inf: inf}
	n.left.Store(left)
	n.right.Store(right)
	return n
}

// Tree is a non-blocking unbalanced leaf-oriented BST. It is safe for
// concurrent use. Use New to create one.
type Tree struct {
	entry *node
}

// New returns an empty tree. The entry structure mirrors the chromatic
// tree's sentinels (Figure 10 of the paper) so that every leaf always has a
// parent and, when the tree is non-empty, a grandparent.
func New() *Tree {
	return &Tree{entry: newInternal(0, true, &node{leaf: true, inf: true}, nil)}
}

// Name identifies the data structure in benchmark reports.
func (t *Tree) Name() string { return "EBST" }

// search returns the grandparent, parent and leaf on the search path for
// key, using plain reads. gp is nil when the tree below the sentinels is a
// single leaf.
func (t *Tree) search(key int64) (gp, p, l *node) {
	p = t.entry
	l = t.entry.left.Load()
	for !l.leaf {
		gp, p = p, l
		if keyLess(key, l) {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
	}
	return gp, p, l
}

// Get returns the value associated with key, or (0, false) if absent.
func (t *Tree) Get(key int64) (int64, bool) {
	_, _, l := t.search(key)
	if !l.inf && l.k == key {
		return l.v, true
	}
	return 0, false
}

// insertResult is the Result type of the insertion template.
type insertResult struct {
	old     int64
	existed bool
}

// Insert associates value with key, returning the previous value and true if
// key was present. The update is expressed directly with the tree update
// template: one LLX on the leaf's parent, one on the leaf, and one SCX that
// replaces the leaf.
func (t *Tree) Insert(key, value int64) (int64, bool) {
	for {
		_, p, l := t.search(key)
		tmpl := core.Template[*node, node, insertResult]{
			// Two LLXs are always enough: the parent and the leaf.
			Condition: func(seq []llxscx.Linked[node]) bool { return len(seq) == 2 },
			NextNode:  func(seq []llxscx.Linked[node]) *node { return l },
			Args: func(seq []llxscx.Linked[node]) core.Args[node, *node] {
				lkP, lkL := seq[0], seq[1]
				fld := fieldOf(lkP, l)
				var repl *node
				if !l.inf && l.k == key {
					repl = newLeaf(key, value)
				} else {
					keyLeaf := newLeaf(key, value)
					oldCopy := &node{k: l.k, v: l.v, leaf: true, inf: l.inf}
					if keyLess(key, l) {
						repl = newInternal(l.k, l.inf, keyLeaf, oldCopy)
					} else {
						repl = newInternal(key, false, oldCopy, keyLeaf)
					}
				}
				return core.Args[node, *node]{
					V:   []llxscx.Linked[node]{lkP, lkL},
					R:   []*node{l},
					Fld: fld,
					Old: l,
					New: repl,
				}
			},
			Result: func(seq []llxscx.Linked[node]) insertResult {
				if !l.inf && l.k == key {
					return insertResult{old: l.v, existed: true}
				}
				return insertResult{}
			},
		}
		if res, ok := tmpl.Run(p); ok {
			return res.old, res.existed
		}
	}
}

// Delete removes key, returning its value and true if it was present.
func (t *Tree) Delete(key int64) (int64, bool) {
	for {
		gp, p, l := t.search(key)
		if gp == nil || l.inf || l.k != key {
			return 0, false
		}
		tmpl := core.Template[*node, node, int64]{
			Condition: func(seq []llxscx.Linked[node]) bool { return len(seq) == 4 },
			NextNode: func(seq []llxscx.Linked[node]) *node {
				switch len(seq) {
				case 1:
					return p
				case 2:
					return l
				default:
					// The sibling, from the parent's snapshot.
					return siblingOf(seq[1], l)
				}
			},
			Args: func(seq []llxscx.Linked[node]) core.Args[node, *node] {
				lkGP, lkP, lkL, lkS := seq[0], seq[1], seq[2], seq[3]
				s := lkS.Node()
				repl := &node{k: s.k, v: s.v, leaf: s.leaf, inf: s.inf}
				repl.left.Store(lkS.Child(0))
				repl.right.Store(lkS.Child(1))
				var v []llxscx.Linked[node]
				var r []*node
				if lkP.Child(0) == l {
					v = []llxscx.Linked[node]{lkGP, lkP, lkL, lkS}
					r = []*node{p, l, s}
				} else {
					v = []llxscx.Linked[node]{lkGP, lkP, lkS, lkL}
					r = []*node{p, s, l}
				}
				return core.Args[node, *node]{
					V:   v,
					R:   r,
					Fld: fieldOf(lkGP, p),
					Old: p,
					New: repl,
				}
			},
			Result: func(seq []llxscx.Linked[node]) int64 { return l.v },
		}
		if v, ok := tmpl.Run(gp); ok {
			return v, true
		}
	}
}

// fieldOf returns the mutable field of the node captured by lk that pointed
// to child in its snapshot, or nil.
func fieldOf(lk llxscx.Linked[node], child *node) *atomic.Pointer[node] {
	n := lk.Node()
	if lk.Child(0) == child {
		return &n.left
	}
	if lk.Child(1) == child {
		return &n.right
	}
	return nil
}

// siblingOf returns the other child of the node captured by lk, or nil if
// child is not one of its children.
func siblingOf(lk llxscx.Linked[node], child *node) *node {
	if lk.Child(0) == child {
		return lk.Child(1)
	}
	if lk.Child(1) == child {
		return lk.Child(0)
	}
	return nil
}

// Size returns the number of keys stored. Quiescence only.
func (t *Tree) Size() int {
	var count func(n *node) int
	count = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			if n.inf {
				return 0
			}
			return 1
		}
		return count(n.left.Load()) + count(n.right.Load())
	}
	return count(t.entry.left.Load())
}

// Height returns the height of the tree below the sentinels. Quiescence only.
func (t *Tree) Height() int {
	var h func(n *node) int
	h = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left.Load()), h(n.right.Load())
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.entry.left.Load())
}

// Keys returns all keys in ascending order. Quiescence only.
func (t *Tree) Keys() []int64 {
	var keys []int64
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			if !n.inf {
				keys = append(keys, n.k)
			}
			return
		}
		walk(n.left.Load())
		walk(n.right.Load())
	}
	walk(t.entry.left.Load())
	return keys
}
