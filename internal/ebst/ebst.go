// Package ebst implements a non-blocking, leaf-oriented, unbalanced binary
// search tree as the trivial instantiation of the shared engine in
// internal/lbst.
//
// This is the style of data structure for which the tree update template was
// originally motivated (Ellen, Fatourou, Ruppert and van Breugel's
// non-blocking BST). The engine owns the search loop, the insertion and
// deletion template updates and the ordered queries; all this package adds
// is the no-op balancing policy - no decoration, no violations, no
// rebalancing steps - which demonstrates how little code a new
// template-based data structure needs. Because there is no rebalancing, the
// height can be linear in the number of keys; the benchmark harness uses it
// as the "unbalanced non-blocking" reference point.
//
// Degenerate spines are observable and self-correcting: the engine counts
// every search that walks past a fixed spine cap and folds the walk's final
// depth into a running maximum (Tree.SpineStats), and each such probe
// triggers one throttled mitigation pass (mitigate.go) that compresses the
// offending path segment by segment with ordinary template updates. The
// operations themselves never fail; pathological (for example sequential)
// insertion orders converge toward locally balanced paths instead of
// degrading to linear ones.
//
// The tree is generic over the key and value types: NewOrdered builds a tree
// over any cmp.Ordered key type, NewLess accepts an arbitrary comparator
// (see dict.Less for the contract), and New keeps the historical int64
// instantiation used by the benchmark registry.
package ebst

import (
	"cmp"

	"repro/internal/epoch"
	"repro/internal/lbst"
)

// policy is the no-op balancing policy: an unbalanced tree never considers
// itself in violation.
type policy[K, V any] struct{}

func (policy[K, V]) Name() string                                   { return "EBST" }
func (policy[K, V]) InternalDeco() int64                            { return 0 }
func (policy[K, V]) CreatesViolation(_, _, _ *lbst.Node[K, V]) bool { return false }
func (policy[K, V]) Violation(*lbst.Node[K, V]) bool                { return false }
func (policy[K, V]) Rebalance(_ *epoch.Guard, _, _ *lbst.Node[K, V]) bool {
	return false
}

// Tree is a non-blocking unbalanced leaf-oriented BST. It is safe for
// concurrent use. Use New, NewOrdered or NewLess to create one. All
// dictionary and ordered-query operations (Get, Insert, Delete, Successor,
// Predecessor, RangeScan, Ascend, Min, Max) and the quiescent helpers
// (Size, Height, Keys, CheckStructure) are provided by the embedded engine.
type Tree[K, V any] struct {
	*lbst.Tree[K, V]
}

// NewLess returns an empty tree whose keys are ordered by less.
func NewLess[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{lbst.New(less, policy[K, V]{})}
}

// NewOrdered returns an empty tree over a naturally ordered key type. The
// engine installs a search routine specialized to the native `<` operator,
// so searches avoid the indirect comparator call per node.
func NewOrdered[K cmp.Ordered, V any]() *Tree[K, V] {
	return &Tree[K, V]{lbst.NewOrdered[K, V](policy[K, V]{})}
}

// New returns an empty tree with int64 keys and values, the instantiation
// the benchmark registry and the paper's figures use.
func New() *Tree[int64, int64] {
	return NewOrdered[int64, int64]()
}
