package chaos

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/sched"
)

// skipUnderSched skips chaos tests in the `-tags sched` build, where arming
// is deliberately inert (the deterministic controller owns the points).
func skipUnderSched(t *testing.T) {
	t.Helper()
	if sched.Enabled {
		t.Skip("chaos injection is disabled under -tags sched")
	}
}

// crossAll drives every instrumentation point n times through the armed
// hook on the calling goroutine.
func crossAll(n int) {
	for i := 0; i < n; i++ {
		for p := 0; p < sched.NumPoints; p++ {
			sched.Point(sched.PointID(p))
		}
	}
}

// TestSeededDeterminism pins the replay contract: the same (seed, worker
// id, point sequence) produces the same injection counts.
func TestSeededDeterminism(t *testing.T) {
	skipUnderSched(t)
	run := func() Stats {
		if err := Enable(Config{Seed: 42, Default: PointPolicy{Delay: 40_000, Preempt: 40_000}, DelaySpins: 1}); err != nil {
			t.Fatal(err)
		}
		defer Disable()
		w := Register(7)
		defer w.Close()
		crossAll(2_000)
		return ReadStats()
	}
	a := run()
	b := run()
	if a == (Stats{}) {
		t.Fatal("no injections at 4% rates over 24k crossings")
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if err := Enable(Config{Seed: 43, Default: PointPolicy{Delay: 40_000, Preempt: 40_000}, DelaySpins: 1}); err != nil {
		t.Fatal(err)
	}
	w := Register(7)
	crossAll(2_000)
	c := ReadStats()
	w.Close()
	Disable()
	if a == c {
		t.Fatalf("different seeds produced identical stats %+v (suspicious RNG wiring)", a)
	}
}

// TestUnregisteredGoroutineUntouched: arming chaos must not perturb
// goroutines that never registered.
func TestUnregisteredGoroutineUntouched(t *testing.T) {
	skipUnderSched(t)
	if err := Enable(Config{Seed: 1, Default: PointPolicy{Panic: 1_000_000}}); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	crossAll(50) // would panic on the first crossing if the roll applied
	if s := ReadStats(); s.Panics != 0 {
		t.Fatalf("unregistered goroutine drew %d panics", s.Panics)
	}
}

// TestPanicInjectionAndExclusion: a certain-panic policy fires at an
// allowed point with the typed value, and never fires at the excluded
// bracket-interior points even when explicitly requested.
func TestPanicInjectionAndExclusion(t *testing.T) {
	skipUnderSched(t)
	if err := Enable(Config{
		Seed:    9,
		Default: PointPolicy{Panic: 1_000_000},
	}); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	w := Register(0)
	defer w.Close()

	for p := 0; p < sched.NumPoints; p++ {
		id := sched.PointID(p)
		func() {
			defer func() {
				r := recover()
				if excluded[p] {
					if r != nil {
						t.Fatalf("panic injected at excluded point %v: %v", id, r)
					}
					return
				}
				pv, ok := r.(Panic)
				if !ok {
					t.Fatalf("point %v: recovered %#v, want chaos.Panic", id, r)
				}
				if pv.Point != id {
					t.Fatalf("panic value names point %v, fired at %v", pv.Point, id)
				}
			}()
			sched.Point(id)
		}()
	}
}

// TestAbandonReleaseAndCap: abandoned workers park until released, and the
// MaxAbandoned cap keeps survivors running.
func TestAbandonReleaseAndCap(t *testing.T) {
	skipUnderSched(t)
	if err := Enable(Config{
		Seed:         5,
		Default:      PointPolicy{Abandon: 1_000_000},
		MaxAbandoned: 2,
	}); err != nil {
		t.Fatal(err)
	}
	defer Disable()

	const workers = 5
	parked := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := Register(i)
			defer w.Close()
			parked <- struct{}{}
			// With Abandon at 100% and a cap of 2, exactly two of these
			// crossings park; the other three fall through the cap check
			// and return immediately.
			sched.Point(sched.PointLLX)
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-parked
	}
	for AbandonedCount() != 2 {
		// The two winners park shortly after signalling; yield until both
		// are counted, then verify the cap holds.
		runtime.Gosched()
	}
	if n := AbandonedCount(); n != 2 {
		t.Fatalf("AbandonedCount() = %d, want cap 2", n)
	}
	ReleaseAbandoned()
	wg.Wait()
	if n := AbandonedCount(); n != 0 {
		t.Fatalf("AbandonedCount() = %d after release", n)
	}
	if s := ReadStats(); s.Abandons != 2 {
		t.Fatalf("Abandons = %d, want 2", s.Abandons)
	}
}

// TestDisableReleasesParked: Disable must wake parked workers itself so a
// run cannot leak goroutines.
func TestDisableReleasesParked(t *testing.T) {
	skipUnderSched(t)
	if err := Enable(Config{Seed: 5, Default: PointPolicy{Abandon: 1_000_000}, MaxAbandoned: 1}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := Register(0)
		defer w.Close()
		sched.Point(sched.PointSCXFreeze)
	}()
	for AbandonedCount() != 1 {
		runtime.Gosched()
	}
	Disable()
	wg.Wait() // would hang if Disable left the worker parked
	if Armed() {
		t.Fatal("Armed() after Disable")
	}
}

// TestDropHelp: the drop-help roll honours its rate and counts drops.
func TestDropHelp(t *testing.T) {
	skipUnderSched(t)
	if err := Enable(Config{Seed: 3, DropHelp: 500_000}); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	w := Register(0)
	defer w.Close()
	drops := 0
	const n = 4_000
	for i := 0; i < n; i++ {
		if sched.ChaosDropHelp() {
			drops++
		}
	}
	if drops < n/3 || drops > 2*n/3 {
		t.Fatalf("drop-help fired %d/%d times at a 50%% rate", drops, n)
	}
	if s := ReadStats(); int(s.DropHelps) != drops {
		t.Fatalf("DropHelps stat %d != observed %d", s.DropHelps, drops)
	}
}

// TestDoubleEnable: a second Enable while a run is active errors instead of
// clobbering the active policy table.
func TestDoubleEnable(t *testing.T) {
	skipUnderSched(t)
	if err := Enable(Config{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	if err := Enable(Config{Seed: 2}); err == nil {
		t.Fatal("second Enable succeeded")
	}
}
