// Package chaos is a probabilistic runtime fault-injection layer for the
// LLX/SCX stack. It reuses the instrumentation points that internal/sched
// compiles into the protocol layers (LLX reads, the SCX freeze/mark/update/
// commit sequence, vcell publishes, epoch retire/advance) but, unlike the
// deterministic controller, it works in the default build: arming chaos
// flips one atomic flag, and every sched.Point call becomes a chance to
// perturb the calling goroutine.
//
// Where `-tags sched` exhaustively enumerates tiny bounded windows, chaos
// samples the unbounded space: long runs with many goroutines, each point
// independently rolling (with a seeded, per-worker deterministic RNG)
// whether to inject a delay, a forced preemption (runtime.Gosched), a
// dropped optional helping step, an injected panic, or an "abandoned
// worker" — the goroutine parks indefinitely mid-protocol, possibly while
// epoch-pinned, simulating a stuck or leaked thread. Lock-freedom says the
// rest of the system must keep making progress past all of these (helping
// completes a parked SCX; the epoch watchdog degrades around a parked pin),
// and the dicttest chaos suites assert exactly that.
//
// Only goroutines that opt in via Register are ever perturbed: the test
// harness, runtime goroutines, and the watchdog itself pass through armed
// points untouched. Panic and abandonment are statically excluded at the
// points inside the snapshot machinery's fastWriters brackets and the
// Snapshot() capture window (see excluded), because a goroutine that dies
// or parks forever inside one of those brackets wedges every later
// Snapshot() — a failure mode the real runtime cannot produce (the bracket
// body performs no call that can panic, and the runtime never abandons a
// goroutine that is not blocked) and whose injection would therefore test
// nothing real.
package chaos

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sched"
)

// PointPolicy sets the injection rates at one instrumentation point. Rates
// are in parts per million of point crossings; at most one fault fires per
// crossing (a single roll is compared against the cumulative bands in the
// order panic, abandon, delay, preempt).
type PointPolicy struct {
	Delay   uint32 // ppm: busy-wait for Config.DelaySpins iterations
	Preempt uint32 // ppm: runtime.Gosched
	Abandon uint32 // ppm: park until ReleaseAbandoned (capped by MaxAbandoned)
	Panic   uint32 // ppm: panic with a chaos.Panic value
}

// Config seeds and shapes one chaos run.
type Config struct {
	// Seed makes the run deterministic: worker i's roll sequence is a pure
	// function of (Seed, i) and the points it crosses.
	Seed int64

	// Default applies at every point without an explicit Points entry.
	Default PointPolicy

	// Points overrides the default policy per instrumentation point.
	Points map[sched.PointID]PointPolicy

	// DropHelp is the ppm rate at which an optional helping step (LLX's
	// help-on-failure) is skipped.
	DropHelp uint32

	// MaxAbandoned caps the number of simultaneously parked workers so a
	// high Abandon rate cannot park the whole workload (progress assertions
	// need survivors). 0 disables abandonment.
	MaxAbandoned int

	// DelaySpins is the length of one injected delay, in spin iterations.
	// 0 means the default (256).
	DelaySpins int
}

// Panic is the value thrown by injected panics; tests recover it and assert
// on the injection site.
type Panic struct {
	Point sched.PointID
}

func (p Panic) Error() string { return fmt.Sprintf("chaos: injected panic at %v", p.Point) }

// excluded marks the points where panic and abandonment must not fire: the
// interior of a fastWriters publish bracket (vcell publish + mark re-check,
// version stamp, the stamped SCX's update CAS) and Snapshot()'s capture
// window. A worker lost there holds a counter or a live-snapshot
// registration that nothing else can release, wedging every later capture —
// see the package comment. Delays and preemption remain allowed everywhere;
// they are exactly the perturbations the sched enumerations explore at
// these points.
var excluded = [sched.NumPoints]bool{
	sched.PointVCellPublish: true,
	sched.PointVCellRecheck: true,
	sched.PointVerStamp:     true,
	sched.PointSCXUpdate:    true,
	sched.PointSnapPublish:  true,
	sched.PointSnapDrain:    true,
}

// Stats are cumulative injection counts for one chaos run.
type Stats struct {
	Delays    int64
	Preempts  int64
	Abandons  int64
	Panics    int64
	DropHelps int64
}

// controller is the state of the active chaos run. One run at a time:
// Enable/Disable serialize on runMu.
type controller struct {
	cfg      Config
	policies [sched.NumPoints]PointPolicy

	// releaseCh is closed by ReleaseAbandoned to wake every parked worker;
	// a fresh channel replaces it so later abandons park again.
	releaseMu sync.Mutex
	releaseCh chan struct{}

	abandoned atomic.Int64 // currently parked workers

	delays    atomic.Int64
	preempts  atomic.Int64
	abandons  atomic.Int64
	panics    atomic.Int64
	dropHelps atomic.Int64
}

var (
	runMu    sync.Mutex
	active   atomic.Pointer[controller]
	hookOnce sync.Once

	// workers maps goroutine ids of registered workers to their records.
	workers sync.Map // goid int64 -> *Worker

	// registered counts live registrations. The point hooks return before
	// the (expensive) goroutine-id resolution when it is zero, so phases
	// that run with no registered workers - benchmark prefill and drain,
	// the stress harnesses' verification passes - cross armed points at
	// full speed.
	registered atomic.Int64
)

// Enable installs the chaos hooks (once per process) and arms injection
// with cfg. It returns an error if a run is already active. Under
// `-tags sched` arming is a no-op — the deterministic controller owns the
// points there — so chaos tests skip themselves when sched.Enabled.
func Enable(cfg Config) error {
	runMu.Lock()
	defer runMu.Unlock()
	if active.Load() != nil {
		return fmt.Errorf("chaos: already enabled")
	}
	if cfg.DelaySpins == 0 {
		cfg.DelaySpins = 256
	}
	ctl := &controller{cfg: cfg, releaseCh: make(chan struct{})}
	for p := 0; p < sched.NumPoints; p++ {
		pol := cfg.Default
		if over, ok := cfg.Points[sched.PointID(p)]; ok {
			pol = over
		}
		if excluded[p] {
			pol.Panic = 0
			pol.Abandon = 0
		}
		ctl.policies[p] = pol
	}
	hookOnce.Do(func() { sched.SetChaosHooks(pointHook, dropHelpHook) })
	active.Store(ctl)
	sched.ArmChaos(true)
	return nil
}

// Disable disarms injection, wakes every abandoned worker, and waits for
// them to unpark before returning, so no chaos-parked goroutine outlives
// the run that parked it.
func Disable() {
	runMu.Lock()
	defer runMu.Unlock()
	ctl := active.Load()
	if ctl == nil {
		return
	}
	sched.ArmChaos(false)
	ctl.release()
	for ctl.abandoned.Load() != 0 {
		runtime.Gosched()
	}
	active.Store(nil)
}

// Armed reports whether a chaos run is active and armed.
func Armed() bool { return sched.ChaosArmed() }

// ReleaseAbandoned wakes every currently parked ("abandoned") worker. The
// stress suites call it before joining their workers and before checking
// linearizability, so parked operations complete and their histories close.
func ReleaseAbandoned() {
	if ctl := active.Load(); ctl != nil {
		ctl.release()
	}
}

// AbandonedCount returns the number of workers currently parked by
// abandonment injection.
func AbandonedCount() int64 {
	if ctl := active.Load(); ctl != nil {
		return ctl.abandoned.Load()
	}
	return 0
}

// ReadStats returns the active run's cumulative injection counts (zero when
// no run is active).
func ReadStats() Stats {
	ctl := active.Load()
	if ctl == nil {
		return Stats{}
	}
	return Stats{
		Delays:    ctl.delays.Load(),
		Preempts:  ctl.preempts.Load(),
		Abandons:  ctl.abandons.Load(),
		Panics:    ctl.panics.Load(),
		DropHelps: ctl.dropHelps.Load(),
	}
}

func (ctl *controller) release() {
	ctl.releaseMu.Lock()
	close(ctl.releaseCh)
	ctl.releaseCh = make(chan struct{})
	ctl.releaseMu.Unlock()
}

func (ctl *controller) currentRelease() chan struct{} {
	ctl.releaseMu.Lock()
	ch := ctl.releaseCh
	ctl.releaseMu.Unlock()
	return ch
}

// Worker is one registered goroutine's injection state. All fields after
// registration are touched only by the owning goroutine.
type Worker struct {
	goid int64
	rng  uint64
}

// Register opts the calling goroutine into chaos injection. id
// disambiguates the worker's RNG stream: rolls are a pure function of
// (Config.Seed, id), so a fixed seed replays the same faults regardless of
// how goroutine startup interleaves. The caller must Close the worker
// before the goroutine exits. Registering with no active run returns an
// inert worker.
func Register(id int) *Worker {
	ctl := active.Load()
	if ctl == nil {
		return &Worker{}
	}
	w := &Worker{goid: goid(), rng: mix64(uint64(ctl.cfg.Seed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15)}
	workers.Store(w.goid, w)
	registered.Add(1)
	return w
}

// Close unregisters the worker from injection.
func (w *Worker) Close() {
	if w.goid != 0 {
		workers.Delete(w.goid)
		w.goid = 0
		registered.Add(-1)
	}
}

// next advances the worker's splitmix64 stream.
func (w *Worker) next() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	return mix64(w.rng)
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// pointHook is installed as sched's chaos hook: it runs at every armed
// instrumentation point, on every goroutine, so the non-worker fast paths
// (a zero registration count, a zero policy, a map miss) must come before
// the goroutine-id resolution, which costs a runtime.Stack call.
func pointHook(id sched.PointID) {
	ctl := active.Load()
	if ctl == nil || registered.Load() == 0 {
		return
	}
	pol := &ctl.policies[id]
	total := uint64(pol.Panic) + uint64(pol.Abandon) + uint64(pol.Delay) + uint64(pol.Preempt)
	if total == 0 {
		return
	}
	v, ok := workers.Load(goid())
	if !ok {
		return
	}
	w := v.(*Worker)
	r := w.next() % 1_000_000
	switch {
	case r < uint64(pol.Panic):
		ctl.panics.Add(1)
		panic(Panic{Point: id})
	case r < uint64(pol.Panic)+uint64(pol.Abandon):
		ctl.abandon(id)
	case r < uint64(pol.Panic)+uint64(pol.Abandon)+uint64(pol.Delay):
		ctl.delays.Add(1)
		spin(ctl.cfg.DelaySpins)
	case r < total:
		ctl.preempts.Add(1)
		runtime.Gosched()
	}
}

// abandon parks the calling worker until the next ReleaseAbandoned, unless
// the cap of simultaneously parked workers is already reached.
func (ctl *controller) abandon(sched.PointID) {
	for {
		n := ctl.abandoned.Load()
		if n >= int64(ctl.cfg.MaxAbandoned) {
			return
		}
		if ctl.abandoned.CompareAndSwap(n, n+1) {
			break
		}
	}
	ctl.abandons.Add(1)
	// Snapshot the release channel before parking: a release that raced in
	// after the CAS closed the channel we are about to read, so the park is
	// never missed-wakeup-prone.
	ch := ctl.currentRelease()
	<-ch
	ctl.abandoned.Add(-1)
}

// dropHelpHook rolls whether the calling worker skips an optional helping
// step.
func dropHelpHook() bool {
	ctl := active.Load()
	if ctl == nil || ctl.cfg.DropHelp == 0 || registered.Load() == 0 {
		return false
	}
	v, ok := workers.Load(goid())
	if !ok {
		return false
	}
	w := v.(*Worker)
	if w.next()%1_000_000 < uint64(ctl.cfg.DropHelp) {
		ctl.dropHelps.Add(1)
		return true
	}
	return false
}

// spinSink defeats dead-code elimination of the delay loop without sharing
// a cache line with anything the protocols touch.
var spinSink struct {
	_ [64]byte
	v atomic.Uint64
	_ [64]byte
}

func spin(n int) {
	var x uint64
	for i := 0; i < n; i++ {
		x += uint64(i) ^ x<<7
	}
	spinSink.v.Store(x)
}

// goid returns the calling goroutine's id, parsed from the first line of
// its stack trace. Same technique as internal/sched's controller registry;
// the cost is paid only while chaos is armed.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) > len(prefix) {
		s = s[len(prefix):]
	}
	var id int64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
