// Package stm is a small word-based software transactional memory in the
// style of TL2 (Dice, Shalev, Shavit), used as the substitute for DeuceSTM
// in the paper's STM baselines (RBSTM and SkipListSTM).
//
// The design follows TL2: a global version clock, a versioned lock per
// transactional variable, invisible reads validated against the
// transaction's read version, lazy (buffered) writes, and commit-time
// locking of the write set followed by read-set validation. Conflicts abort
// the transaction, which is retried with randomized exponential backoff, so
// transactions are obstruction-free rather than lock-free — matching the
// progress guarantee of the STM trees the paper compares against.
package stm

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// clock is the global version clock shared by all transactions.
var clock atomic.Uint64

// lockedBit marks a versioned lock as held; the remaining bits hold the
// version number (shifted left by one).
const lockedBit uint64 = 1

// Var is a transactional variable of type T. It must only be accessed
// through Read and Write inside a transaction (or through NewVar / Load at
// times when no transactions are running, e.g. during construction).
//
// The current value is kept behind an atomic pointer to a freshly allocated
// box, so concurrent speculative readers can never observe a torn value;
// version validation then decides whether the read is used or the
// transaction retries.
type Var[T any] struct {
	lock atomic.Uint64 // version<<1 | lockedBit
	val  atomic.Pointer[T]
}

// NewVar returns a transactional variable initialized to v.
func NewVar[T any](v T) *Var[T] {
	tv := &Var[T]{}
	tv.val.Store(&v)
	return tv
}

// Load reads the variable outside of any transaction. It must only be used
// when no concurrent transactions can write the variable (for example after
// all workers have finished); use Read inside transactions.
func (v *Var[T]) Load() T { return *v.val.Load() }

// handle is the type-erased view of a Var used by the commit machinery.
type handle interface {
	tryLock() (uint64, bool)
	unlock(version uint64)
	releaseTo(newVersion uint64)
	sampleVersion() (version uint64, locked bool)
	store(val any)
}

func (v *Var[T]) tryLock() (uint64, bool) {
	cur := v.lock.Load()
	if cur&lockedBit != 0 {
		return 0, false
	}
	if v.lock.CompareAndSwap(cur, cur|lockedBit) {
		return cur >> 1, true
	}
	return 0, false
}

func (v *Var[T]) unlock(version uint64) { v.lock.Store(version << 1) }

func (v *Var[T]) releaseTo(newVersion uint64) { v.lock.Store(newVersion << 1) }

func (v *Var[T]) sampleVersion() (uint64, bool) {
	cur := v.lock.Load()
	return cur >> 1, cur&lockedBit != 0
}

func (v *Var[T]) store(val any) {
	t := val.(T)
	v.val.Store(&t)
}

// retrySignal is panicked by Read/Write when a conflict is detected and
// recovered by Atomically, which then retries the transaction.
type retrySignal struct{}

// Txn is the per-attempt transaction descriptor passed to the function run
// by Atomically.
type Txn struct {
	readVersion uint64
	reads       []readEntry
	writes      []writeEntry
	attempts    int
}

type readEntry struct {
	h       handle
	version uint64
}

type writeEntry struct {
	h   handle
	val any
}

// abort abandons the current attempt.
func (tx *Txn) abort() {
	panic(retrySignal{})
}

// Read returns the value of v as observed by the transaction. It validates
// that the variable has not been written since the transaction began and
// honours the transaction's own buffered writes.
func Read[T any](tx *Txn, v *Var[T]) T {
	// Read-your-writes: the write set is usually tiny, linear scan is fine.
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].h == handle(v) {
			return tx.writes[i].val.(T)
		}
	}
	ver1, locked := v.sampleVersion()
	if locked || ver1 > tx.readVersion {
		tx.abort()
	}
	val := *v.val.Load()
	ver2, locked := v.sampleVersion()
	if locked || ver2 != ver1 {
		tx.abort()
	}
	tx.reads = append(tx.reads, readEntry{h: v, version: ver1})
	return val
}

// Write buffers a write of val to v; it takes effect only if the
// transaction commits.
func Write[T any](tx *Txn, v *Var[T], val T) {
	for i := range tx.writes {
		if tx.writes[i].h == handle(v) {
			tx.writes[i].val = val
			return
		}
	}
	tx.writes = append(tx.writes, writeEntry{h: v, val: val})
}

// Attempts reports how many times the current transaction has been retried.
// STM data structures may use it for diagnostics.
func (tx *Txn) Attempts() int { return tx.attempts }

// Atomically runs fn as a transaction, retrying it until it commits, and
// returns fn's result. fn must perform all shared accesses through Read and
// Write, must be free of side effects other than through the transaction,
// and may be executed multiple times.
func Atomically[R any](fn func(tx *Txn) R) R {
	backoff := 1
	tx := &Txn{}
	for attempt := 0; ; attempt++ {
		tx.readVersion = clock.Load()
		tx.reads = tx.reads[:0]
		tx.writes = tx.writes[:0]
		tx.attempts = attempt

		result, aborted := runAttempt(fn, tx)
		if !aborted && tx.commit() {
			return result
		}
		// Conflict: back off for a randomized, exponentially growing number
		// of spins to avoid convoying, then retry.
		spins := rand.IntN(backoff) + 1
		for i := 0; i < spins; i++ {
			runtime.Gosched()
		}
		if backoff < 1<<10 {
			backoff <<= 1
		}
	}
}

// runAttempt executes one attempt of fn, converting a retry panic into an
// aborted flag.
func runAttempt[R any](fn func(tx *Txn) R, tx *Txn) (result R, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(retrySignal); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	result = fn(tx)
	return result, false
}

// commit performs TL2 commit: lock the write set, validate the read set,
// advance the clock, publish the writes and release the locks.
func (tx *Txn) commit() bool {
	if len(tx.writes) == 0 {
		// Read-only transactions commit immediately: all reads were
		// individually validated against readVersion.
		return true
	}
	// Acquire the write-set locks; abort on any conflict.
	locked := 0
	versions := make([]uint64, len(tx.writes))
	for i, w := range tx.writes {
		ver, ok := w.h.tryLock()
		if !ok {
			for j := 0; j < locked; j++ {
				tx.writes[j].h.unlock(versions[j])
			}
			return false
		}
		versions[i] = ver
		locked++
		if ver > tx.readVersion {
			for j := 0; j <= i; j++ {
				tx.writes[j].h.unlock(versions[j])
			}
			return false
		}
	}
	writeVersion := clock.Add(1)
	// Validate the read set: every variable read must still be at a version
	// no newer than readVersion and not locked by another transaction.
	for _, r := range tx.reads {
		ver, isLocked := r.h.sampleVersion()
		if isLocked {
			if !tx.inWriteSet(r.h) {
				tx.releaseAll(versions)
				return false
			}
			continue
		}
		if ver != r.version {
			tx.releaseAll(versions)
			return false
		}
	}
	// Publish the writes and release the locks with the new version.
	for _, w := range tx.writes {
		w.h.store(w.val)
		w.h.releaseTo(writeVersion)
	}
	return true
}

func (tx *Txn) inWriteSet(h handle) bool {
	for _, w := range tx.writes {
		if w.h == h {
			return true
		}
	}
	return false
}

func (tx *Txn) releaseAll(versions []uint64) {
	for i, w := range tx.writes {
		w.h.unlock(versions[i])
	}
}
