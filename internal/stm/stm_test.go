package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestVarLoadOutsideTransaction(t *testing.T) {
	v := NewVar(42)
	if got := v.Load(); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
}

func TestReadYourWrites(t *testing.T) {
	v := NewVar(1)
	got := Atomically(func(tx *Txn) int {
		Write(tx, v, 7)
		return Read(tx, v)
	})
	if got != 7 {
		t.Fatalf("read-your-writes = %d, want 7", got)
	}
	if v.Load() != 7 {
		t.Fatalf("committed value = %d, want 7", v.Load())
	}
}

func TestReadOnlyTransaction(t *testing.T) {
	a, b := NewVar(10), NewVar(20)
	sum := Atomically(func(tx *Txn) int {
		return Read(tx, a) + Read(tx, b)
	})
	if sum != 30 {
		t.Fatalf("sum = %d, want 30", sum)
	}
}

func TestWriteSkew(t *testing.T) {
	// Classic write-skew scenario: two transactions each read both variables
	// and write one of them; serializability requires the final state to be
	// reachable by running them in some order. With the invariant
	// a + b >= 0 maintained by each transaction individually, a correct STM
	// never lets both decrements through when they start from a+b == 1.
	for iter := 0; iter < 200; iter++ {
		a, b := NewVar(1), NewVar(0)
		var wg sync.WaitGroup
		dec := func(x, y *Var[int]) {
			defer wg.Done()
			Atomically(func(tx *Txn) struct{} {
				if Read(tx, x)+Read(tx, y) >= 1 {
					Write(tx, x, Read(tx, x)-1)
				}
				return struct{}{}
			})
		}
		wg.Add(2)
		go dec(a, b)
		go dec(b, a)
		wg.Wait()
		if a.Load()+b.Load() < 0 {
			t.Fatalf("write skew admitted: a=%d b=%d", a.Load(), b.Load())
		}
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	counter := NewVar(int64(0))
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				Atomically(func(tx *Txn) struct{} {
					Write(tx, counter, Read(tx, counter)+1)
					return struct{}{}
				})
			}
		}()
	}
	wg.Wait()
	if got := counter.Load(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentTransfersPreserveTotal(t *testing.T) {
	// Bank-transfer style invariant: the sum over all accounts is constant.
	const accounts = 16
	const total = int64(1000 * accounts)
	vars := make([]*Var[int64], accounts)
	for i := range vars {
		vars[i] = NewVar(int64(1000))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			x := uint64(seed)*2654435761 + 1
			next := func(n int) int {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return int(x % uint64(n))
			}
			for i := 0; i < 3000; i++ {
				from, to := next(accounts), next(accounts)
				amount := int64(next(10))
				Atomically(func(tx *Txn) struct{} {
					f := Read(tx, vars[from])
					if f >= amount {
						Write(tx, vars[from], f-amount)
						Write(tx, vars[to], Read(tx, vars[to])+amount)
					}
					return struct{}{}
				})
			}
		}(int64(g + 1))
	}
	wg.Wait()
	var sum int64
	for _, v := range vars {
		sum += v.Load()
	}
	if sum != total {
		t.Fatalf("total = %d, want %d (money created or destroyed)", sum, total)
	}
}

func TestSnapshotConsistency(t *testing.T) {
	// Two variables are always updated together to equal values; readers
	// must never observe them differing within one transaction.
	a, b := NewVar(int64(0)), NewVar(int64(0))
	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		for i := int64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			Atomically(func(tx *Txn) struct{} {
				Write(tx, a, i)
				Write(tx, b, i)
				return struct{}{}
			})
		}
	}()
	for i := 0; i < 20000; i++ {
		av, bv := Atomically(func(tx *Txn) [2]int64 {
			return [2]int64{Read(tx, a), Read(tx, b)}
		})[0], int64(0)
		_ = bv
		pair := Atomically(func(tx *Txn) [2]int64 {
			return [2]int64{Read(tx, a), Read(tx, b)}
		})
		if pair[0] != pair[1] {
			close(stop)
			writers.Wait()
			t.Fatalf("inconsistent snapshot: a=%d b=%d", pair[0], pair[1])
		}
		_ = av
	}
	close(stop)
	writers.Wait()
}

func TestPropertySequentialTransactionsActLikeAssignments(t *testing.T) {
	prop := func(vals []int64) bool {
		v := NewVar(int64(0))
		for _, x := range vals {
			x := x
			Atomically(func(tx *Txn) struct{} {
				Write(tx, v, x)
				return struct{}{}
			})
			if got := Atomically(func(tx *Txn) int64 { return Read(tx, v) }); got != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPointerVars(t *testing.T) {
	type box struct{ n int }
	v := NewVar[*box](nil)
	Atomically(func(tx *Txn) struct{} {
		Write(tx, v, &box{n: 5})
		return struct{}{}
	})
	got := Atomically(func(tx *Txn) *box { return Read(tx, v) })
	if got == nil || got.n != 5 {
		t.Fatalf("pointer round trip failed: %+v", got)
	}
}
