package core

import (
	"math/rand/v2"
	"runtime"
)

// maxBackoffSpins bounds the exponential growth of BackoffWait. The cap
// keeps the worst-case wait small (a few hundred scheduler yields) so a
// backed-off operation still reacts quickly once contention drains; the
// randomization below breaks the convoys that a deterministic wait would
// re-form.
const maxBackoffSpins = 1 << 8

// BackoffWait is the bounded randomized exponential backoff for optimistic
// retry loops: template-update (SCX) retries and ordered-query (VLX)
// validation retries. It waits for a randomized number of scheduler yields
// bounded by min(2^(failures-1), maxBackoffSpins), where failures is the
// operation's count of consecutive failed attempts; failures <= 0 waits
// nothing, so callers can invoke it unconditionally at the top of a retry
// loop with the attempt number.
//
// Failed SCX and VLX attempts mean another operation succeeded in the same
// neighbourhood, so the system as a whole made progress (the non-blocking
// guarantee is untouched); backing off before re-searching trades a little
// latency on the contended path for far fewer wasted re-searches and failed
// CASes when many updaters hammer a small key range — the regime where the
// paper's 50i-50d cells scale worst.
//
// The failure count is deliberately a plain int owned by the caller rather
// than a struct with a Wait method: an addressable backoff local inside a
// hot retry loop measurably degrades the surrounding codegen even on the
// uncontended path where Wait is never called.
func BackoffWait(failures int) {
	if failures <= 0 {
		return
	}
	limit := maxBackoffSpins
	if shift := failures - 1; shift < 8 {
		limit = 1 << shift
	}
	spins := rand.IntN(limit) + 1
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
}
