package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/llxscx"
)

// listNode is a minimal Data-record used to exercise the template directly:
// a singly linked list viewed as a degenerate down-tree (each node has one
// mutable child field).
type listNode struct {
	rec  llxscx.Record[listNode]
	val  int64
	next atomic.Pointer[listNode]
}

func (n *listNode) LLXRecord() *llxscx.Record[listNode] { return &n.rec }
func (n *listNode) NumMutable() int                     { return 1 }
func (n *listNode) Mutable(i int) *atomic.Pointer[listNode] {
	return &n.next
}

// pushTemplate returns a template that replaces head.next with a fresh node
// holding val and pointing at the previous first element (a stack push
// following the tree update template: LLX on the entry node, SCX swinging
// its child pointer to a new subtree whose fringe is the old child).
func pushTemplate(head *listNode, val int64) *Template[*listNode, listNode, int64] {
	return &Template[*listNode, listNode, int64]{
		Condition: func(seq []llxscx.Linked[listNode]) bool { return len(seq) == 1 },
		NextNode:  func(seq []llxscx.Linked[listNode]) *listNode { return nil },
		Args: func(seq []llxscx.Linked[listNode]) Args[listNode, *listNode] {
			old := seq[0].Child(0)
			fresh := &listNode{val: val}
			fresh.next.Store(old)
			a := Args[listNode, *listNode]{
				Fld: &head.next,
				Old: old,
				New: fresh,
			}
			a.SetV(seq)
			return a
		},
		Result: func(seq []llxscx.Linked[listNode]) int64 { return val },
	}
}

func TestTemplateRunPerformsUpdate(t *testing.T) {
	head := &listNode{}
	got, ok := pushTemplate(head, 7).Run(head)
	if !ok || got != 7 {
		t.Fatalf("Run = (%d,%v), want (7,true)", got, ok)
	}
	first := head.next.Load()
	if first == nil || first.val != 7 {
		t.Fatalf("head.next = %+v, want node with val 7", first)
	}
}

func TestTemplateRunFailsWhenConflicting(t *testing.T) {
	head := &listNode{}
	// Take the LLX evidence for a first attempt, then let a competing update
	// modify head before the first attempt's SCX: the template must fail and
	// leave the competitor's update in place.
	tmpl := pushTemplate(head, 1)
	lk, st := llxscx.LLX(head)
	if st != llxscx.Snapshot {
		t.Fatal("LLX failed on quiescent node")
	}
	if _, ok := pushTemplate(head, 2).Run(head); !ok {
		t.Fatal("competing update failed")
	}
	// Replay the stale evidence directly through SCX to emulate the tail end
	// of a slow template attempt.
	a := tmpl.Args([]llxscx.Linked[listNode]{lk})
	if llxscx.SCX(a.V[:a.NV], nil, a.Fld, a.Old, a.New) {
		t.Fatal("stale SCX succeeded after a conflicting update")
	}
	if head.next.Load().val != 2 {
		t.Fatalf("head.next.val = %d, want 2", head.next.Load().val)
	}
}

func TestTemplateAbortsOnNilNextNode(t *testing.T) {
	head := &listNode{}
	tmpl := &Template[*listNode, listNode, int64]{
		Condition: func(seq []llxscx.Linked[listNode]) bool { return len(seq) == 2 },
		NextNode:  func(seq []llxscx.Linked[listNode]) *listNode { return nil },
		Args:      func(seq []llxscx.Linked[listNode]) Args[listNode, *listNode] { return Args[listNode, *listNode]{} },
		Result:    func(seq []llxscx.Linked[listNode]) int64 { return 0 },
	}
	if _, ok := tmpl.Run(head); ok {
		t.Fatal("Run succeeded although NextNode returned nil")
	}
}

func TestTemplateAbortsOnNilField(t *testing.T) {
	head := &listNode{}
	tmpl := &Template[*listNode, listNode, int64]{
		Condition: func(seq []llxscx.Linked[listNode]) bool { return true },
		NextNode:  func(seq []llxscx.Linked[listNode]) *listNode { return nil },
		Args: func(seq []llxscx.Linked[listNode]) Args[listNode, *listNode] {
			var a Args[listNode, *listNode]
			a.SetV(seq) // no Fld: abort
			return a
		},
		Result: func(seq []llxscx.Linked[listNode]) int64 { return 0 },
	}
	if _, ok := tmpl.Run(head); ok {
		t.Fatal("Run succeeded although Args returned no field")
	}
}

func TestRunToSuccessRetriesUntilCommitted(t *testing.T) {
	head := &listNode{}
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				val := int64(g*perG + i)
				pushTemplate(head, val).RunToSuccess(func() *listNode { return head })
			}
		}(g)
	}
	wg.Wait()
	// Every push must be present exactly once: the SCX-based push loses no
	// updates even under contention.
	seen := map[int64]bool{}
	count := 0
	for n := head.next.Load(); n != nil; n = n.next.Load() {
		if seen[n.val] {
			t.Fatalf("value %d pushed twice", n.val)
		}
		seen[n.val] = true
		count++
	}
	if count != goroutines*perG {
		t.Fatalf("list has %d nodes, want %d", count, goroutines*perG)
	}
}
