package core

import "testing"

func TestBackoffWaitBounds(t *testing.T) {
	// Non-positive failure counts must wait nothing (and not panic on the
	// rand.IntN argument); large counts must stay at the cap. The wait
	// itself is scheduler yields, so the only observable contract here is
	// "returns promptly for any input".
	BackoffWait(0)
	BackoffWait(-3)
	for fails := 1; fails < 70; fails++ {
		BackoffWait(fails)
	}
}

func TestBackoffLimitComputation(t *testing.T) {
	// The spin bound doubles per failure and caps at maxBackoffSpins.
	limitFor := func(failures int) int {
		limit := maxBackoffSpins
		if shift := failures - 1; shift < 8 {
			limit = 1 << shift
		}
		return limit
	}
	for failures, want := range map[int]int{1: 1, 2: 2, 3: 4, 8: 128, 9: 256, 50: 256} {
		if got := limitFor(failures); got != want {
			t.Errorf("limit for %d failures = %d, want %d", failures, got, want)
		}
	}
}
