// Package core implements the tree update template of Brown, Ellen and
// Ruppert, "A General Technique for Non-blocking Trees" (PPoPP 2014),
// Section 4.
//
// The template turns any update to a down-tree (a tree with pointers from
// parents to children) into a non-blocking, linearizable operation: the
// update performs LLXs on a contiguous portion of the tree that includes the
// parent node whose child pointer will change and every node to be removed,
// then performs a single SCX that swings that child pointer to a freshly
// allocated subtree and finalizes the removed nodes. Provided the supplied
// callbacks satisfy postconditions PC1-PC9 of the paper, every data structure
// whose updates follow the template is automatically linearizable and
// non-blocking.
//
// Postconditions the Args callback must satisfy (Section 4 of the paper):
//
//	PC1  V is a subsequence of the sequence of nodes on which LLX was
//	     performed (the seq argument passed to the callbacks).
//	PC2  R is a subsequence of V.
//	PC3  The node containing the field Fld is in V.
//	PC4  The new nodes form a non-empty down-tree rooted at New.
//	PC5  If Old is nil then R and the fringe of the new subtree are empty.
//	PC6  If R is empty and Old is non-nil, the fringe of the new subtree is
//	     exactly {Old}.
//	PC7  Every node in the new subtree except its fringe is newly allocated.
//	PC8  The V sequences of all updates are ordered consistently with a fixed
//	     tree traversal (for example breadth-first order).
//	PC9  If R is non-empty, the removed nodes form a down-tree rooted at Old
//	     and the fringe of the new subtree equals the fringe of the removed
//	     subtree.
//
// The chromatic tree (internal/chromatic) follows the template with the loop
// unrolled, exactly as the paper's pseudocode does. The leaf-oriented BST
// engine (internal/lbst) uses this package's Template type directly and
// discharges PC1-PC9 once for the shared insertion and deletion updates; the
// unbalanced BST (internal/ebst) and the relaxed AVL tree (internal/ravl)
// are instantiations of that engine, adding only their balancing policies.
package core

import (
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/llxscx"
)

// Args holds the arguments of the single SCX performed by a template update,
// as computed by the SCX-Arguments function of Figure 3 in the paper.
//
// The V and R sequences are staged in inline fixed-capacity arrays (bounded
// by llxscx.MaxV, which is sized for the largest update in the repository)
// rather than slices, so an Args value lives entirely on the stack of the
// attempt that computes it and the SCX itself allocates nothing beyond its
// descriptor. Callbacks either fill the arrays and counts directly with
// composite literals, or use SetV/SetR to copy from a slice.
type Args[N any, P llxscx.DataRecord[N]] struct {
	// V[:NV] is the sequence of linked LLX results whose records must be
	// unchanged for the SCX to succeed. It must satisfy PC1-PC3 and PC8.
	V  [llxscx.MaxV]llxscx.Linked[N]
	NV int
	// R[:NR] identifies the records removed from the tree and finalized by
	// the SCX. It must be a subsequence of the records in V.
	R  [llxscx.MaxV]P
	NR int
	// Fld is the mutable child field to be changed; it must belong to a node
	// in V.
	Fld *atomic.Pointer[N]
	// Old is the value read from Fld by the linked LLX on the node that
	// contains it.
	Old *N
	// New is the root of the freshly allocated replacement subtree.
	New *N
}

// SetV stages seq as the V sequence. It panics if seq exceeds llxscx.MaxV
// entries, which indicates an update too large for the inline descriptor
// storage.
func (a *Args[N, P]) SetV(seq []llxscx.Linked[N]) {
	if len(seq) > llxscx.MaxV {
		panic("core: V sequence exceeds llxscx.MaxV")
	}
	a.NV = copy(a.V[:], seq)
}

// SetR stages rs as the R sequence. It panics if rs exceeds llxscx.MaxV
// entries.
func (a *Args[N, P]) SetR(rs []P) {
	if len(rs) > llxscx.MaxV {
		panic("core: R sequence exceeds llxscx.MaxV")
	}
	a.NR = copy(a.R[:], rs)
}

// Template describes one kind of update in terms of the four locally
// computable functions of Figure 3. Each callback receives the sequence of
// linked LLX results obtained so far (seq[0] is the LLX on the starting node
// n0). The callbacks must be deterministic functions of that sequence and of
// any state captured when the Template value was built.
type Template[P llxscx.DataRecord[N], N, Res any] struct {
	// Pool, when non-nil, makes Run draw its SCX descriptor from this pool
	// (llxscx.SCXP) under Guard's pinned epoch instead of allocating a
	// GC-reclaimed one. Structures that enable pooled reclamation MUST set
	// it: a GC-reclaimed descriptor racing with pooled descriptors on the
	// same records holds no listing references on its freezing-CAS expected
	// values, reintroducing the ABA the pool's reference chain rules out
	// (see DESIGN.md). Run with a nil Pool does not retire the R nodes
	// either way; callers that want node recycling retire them after a
	// successful Run.
	Pool *llxscx.Pool[N]
	// Guard is the caller's pinned epoch guard; required when Pool is set.
	Guard *epoch.Guard

	// Condition reports whether enough LLXs have been performed. It must
	// eventually return true in any execution.
	Condition func(seq []llxscx.Linked[N]) bool
	// NextNode returns the next node on which to perform an LLX. It must be
	// a non-nil child pointer read from one of the snapshots in seq.
	NextNode func(seq []llxscx.Linked[N]) P
	// Args computes the SCX arguments; it must satisfy PC1-PC9.
	Args func(seq []llxscx.Linked[N]) Args[N, P]
	// Result computes the value returned by a successful update.
	Result func(seq []llxscx.Linked[N]) Res
}

// Run executes one attempt of the update starting from node n0 (which the
// caller must have reached by following child pointers from the entry point).
// It returns the computed result and true if the SCX succeeded. It returns
// the zero Res and false if any LLX failed, found a finalized node, or the
// SCX failed; in that case the caller should retry the operation from the
// entry point, exactly as the paper's Fail return does.
//
// Two conveniences extend the literal template of Figure 3: NextNode may
// return the zero (nil) node and Args may return a nil Fld; both mean the
// update discovered, from its snapshots, that the tree has changed under it
// (for example a node is no longer the child it was during the caller's
// search) and the attempt is abandoned exactly as if an LLX had failed.
func (t *Template[P, N, Res]) Run(n0 P) (Res, bool) {
	var zero Res
	var nilNode P
	// The evidence buffer is a fixed-capacity array: template updates link at
	// most MaxV LLXs (plus headroom for LLXs on nodes that end up outside V).
	// If an exotic template ever exceeds it, append falls back to the heap.
	var buf [llxscx.MaxV + 2]llxscx.Linked[N]
	seq := buf[:0]
	node := n0
	for {
		if node == nilNode {
			return zero, false
		}
		lk, st := llxscx.LLX(node)
		if st != llxscx.Snapshot {
			return zero, false
		}
		seq = append(seq, lk)
		if t.Condition(seq) {
			break
		}
		node = t.NextNode(seq)
	}
	a := t.Args(seq)
	if a.Fld == nil {
		return zero, false
	}
	var ok bool
	if t.Pool != nil {
		ok = llxscx.SCXP(t.Guard, t.Pool, &a.V, a.NV, &a.R, a.NR, a.Fld, a.Old, a.New)
	} else {
		ok = llxscx.SCXFixed(&a.V, a.NV, &a.R, a.NR, a.Fld, a.Old, a.New)
	}
	if !ok {
		return zero, false
	}
	return t.Result(seq), true
}

// RunToSuccess repeatedly restarts the update until an attempt succeeds.
// restart must return the starting node for a fresh attempt (typically by
// re-traversing from the entry point); it is called before every attempt,
// including the first.
func (t *Template[P, N, Res]) RunToSuccess(restart func() P) Res {
	for {
		if res, ok := t.Run(restart()); ok {
			return res
		}
	}
}
