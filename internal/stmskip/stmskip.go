// Package stmskip implements a skip list on top of the software
// transactional memory of internal/stm, reproducing the "SkipListSTM"
// baseline of the paper's evaluation: every operation is a single coarse
// transaction over the nodes it traverses.
package stmskip

import (
	"math/rand/v2"

	"repro/internal/stm"
)

const maxLevel = 24

type node struct {
	k     int64
	v     *stm.Var[int64]
	next  []*stm.Var[*node]
	level int
	// sentinel: -1 head, +1 tail, 0 ordinary
	sentinel int8
}

func newNode(k, v int64, level int, sentinel int8) *node {
	n := &node{k: k, v: stm.NewVar(v), level: level, sentinel: sentinel}
	n.next = make([]*stm.Var[*node], level+1)
	for i := range n.next {
		n.next[i] = stm.NewVar[*node](nil)
	}
	return n
}

func (n *node) less(key int64) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return n.k < key
	}
}

func (n *node) equals(key int64) bool { return n.sentinel == 0 && n.k == key }

// List is a transactional skip list implementing an ordered dictionary with
// int64 keys and values. It is safe for concurrent use.
type List struct {
	head *node
	size *stm.Var[int64]
}

// New returns an empty transactional skip list.
func New() *List {
	head := newNode(0, 0, maxLevel, -1)
	tail := newNode(0, 0, maxLevel, 1)
	for i := 0; i <= maxLevel; i++ {
		head.next[i] = stm.NewVar(tail)
	}
	return &List{head: head, size: stm.NewVar[int64](0)}
}

// Name identifies the data structure in benchmark reports.
func (l *List) Name() string { return "SkipListSTM" }

func randomLevel() int {
	lvl := 0
	for rand.Uint64()&1 == 1 && lvl < maxLevel-1 {
		lvl++
	}
	return lvl
}

// findPreds fills preds with the rightmost node strictly smaller than key at
// every level and returns the node following preds[0], all read within tx.
func (l *List) findPreds(tx *stm.Txn, key int64, preds *[maxLevel + 1]*node) *node {
	pred := l.head
	for level := maxLevel; level >= 0; level-- {
		curr := stm.Read(tx, pred.next[level])
		for curr.less(key) {
			pred = curr
			curr = stm.Read(tx, pred.next[level])
		}
		preds[level] = pred
	}
	return stm.Read(tx, preds[0].next[0])
}

// Get returns the value associated with key, or (0, false) if absent.
func (l *List) Get(key int64) (int64, bool) {
	type result struct {
		v  int64
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node
		curr := l.findPreds(tx, key, &preds)
		if curr.equals(key) {
			return result{stm.Read(tx, curr.v), true}
		}
		return result{}
	})
	return r.v, r.ok
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (l *List) Insert(key, value int64) (int64, bool) {
	type result struct {
		old     int64
		existed bool
	}
	topLevel := randomLevel()
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node
		curr := l.findPreds(tx, key, &preds)
		if curr.equals(key) {
			old := stm.Read(tx, curr.v)
			stm.Write(tx, curr.v, value)
			return result{old, true}
		}
		fresh := newNode(key, value, topLevel, 0)
		for level := 0; level <= topLevel; level++ {
			stm.Write(tx, fresh.next[level], stm.Read(tx, preds[level].next[level]))
			stm.Write(tx, preds[level].next[level], fresh)
		}
		stm.Write(tx, l.size, stm.Read(tx, l.size)+1)
		return result{}
	})
	return r.old, r.existed
}

// Delete removes key, returning its value and true if it was present.
func (l *List) Delete(key int64) (int64, bool) {
	type result struct {
		old     int64
		existed bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node
		curr := l.findPreds(tx, key, &preds)
		if !curr.equals(key) {
			return result{}
		}
		for level := 0; level <= curr.level; level++ {
			if stm.Read(tx, preds[level].next[level]) == curr {
				stm.Write(tx, preds[level].next[level], stm.Read(tx, curr.next[level]))
			}
		}
		stm.Write(tx, l.size, stm.Read(tx, l.size)-1)
		return result{stm.Read(tx, curr.v), true}
	})
	return r.old, r.existed
}

// Successor returns the smallest key strictly greater than key.
func (l *List) Successor(key int64) (int64, int64, bool) {
	type result struct {
		k, v int64
		ok   bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node
		curr := l.findPreds(tx, key, &preds)
		if curr.equals(key) {
			curr = stm.Read(tx, curr.next[0])
		}
		if curr.sentinel == 1 {
			return result{}
		}
		return result{curr.k, stm.Read(tx, curr.v), true}
	})
	return r.k, r.v, r.ok
}

// Predecessor returns the largest key strictly smaller than key.
func (l *List) Predecessor(key int64) (int64, int64, bool) {
	type result struct {
		k, v int64
		ok   bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node
		l.findPreds(tx, key, &preds)
		pred := preds[0]
		if pred.sentinel == -1 {
			return result{}
		}
		return result{pred.k, stm.Read(tx, pred.v), true}
	})
	return r.k, r.v, r.ok
}

// Size returns the number of keys stored.
func (l *List) Size() int {
	return int(stm.Atomically(func(tx *stm.Txn) int64 { return stm.Read(tx, l.size) }))
}

// Keys returns all keys in ascending order, read in one transaction.
func (l *List) Keys() []int64 {
	return stm.Atomically(func(tx *stm.Txn) []int64 {
		var keys []int64
		for n := stm.Read(tx, l.head.next[0]); n.sentinel != 1; n = stm.Read(tx, n.next[0]) {
			keys = append(keys, n.k)
		}
		return keys
	})
}
