// Package stmskip implements a skip list on top of the software
// transactional memory of internal/stm, reproducing the "SkipListSTM"
// baseline of the paper's evaluation: every operation is a single coarse
// transaction over the nodes it traverses.
//
// The list is generic over the key and value types and implements
// dict.OrderedMap[K, V]: NewOrdered builds a list over any cmp.Ordered key
// type, NewLess accepts an arbitrary comparator (see dict.Less for the
// contract), and New keeps the historical int64 instantiation used by the
// benchmark registry. Unlike the structures that walk raw pointers, every
// step of the skip list's search already pays an stm.Read, so there is no
// devirtualized fast path: the comparator cost is noise next to the STM
// bookkeeping.
package stmskip

import (
	"cmp"
	"math/rand/v2"

	"repro/internal/stm"
)

const maxLevel = 24

type node[K, V any] struct {
	k     K
	v     *stm.Var[V]
	next  []*stm.Var[*node[K, V]]
	level int
	// sentinel: -1 head, +1 tail, 0 ordinary
	sentinel int8
}

func newNode[K, V any](k K, v V, level int, sentinel int8) *node[K, V] {
	n := &node[K, V]{k: k, v: stm.NewVar(v), level: level, sentinel: sentinel}
	n.next = make([]*stm.Var[*node[K, V]], level+1)
	for i := range n.next {
		n.next[i] = stm.NewVar[*node[K, V]](nil)
	}
	return n
}

// List is a transactional skip list implementing an ordered dictionary. It
// is safe for concurrent use. Use New, NewOrdered or NewLess to create one.
type List[K, V any] struct {
	head *node[K, V]
	size *stm.Var[int64]
	less func(a, b K) bool
}

// NewLess returns an empty transactional skip list whose keys are ordered by
// less.
func NewLess[K, V any](less func(a, b K) bool) *List[K, V] {
	var zk K
	var zv V
	head := newNode(zk, zv, maxLevel, -1)
	tail := newNode(zk, zv, maxLevel, 1)
	for i := 0; i <= maxLevel; i++ {
		head.next[i] = stm.NewVar(tail)
	}
	return &List[K, V]{head: head, size: stm.NewVar[int64](0), less: less}
}

// NewOrdered returns an empty transactional skip list over a naturally
// ordered key type.
func NewOrdered[K cmp.Ordered, V any]() *List[K, V] {
	return NewLess[K, V](cmp.Less[K])
}

// New returns an empty transactional skip list with int64 keys and values,
// the instantiation the benchmark registry and the paper's figures use.
func New() *List[int64, int64] { return NewOrdered[int64, int64]() }

// IntList is the historical int64 instantiation used by the benchmark
// registry.
type IntList = List[int64, int64]

// Name identifies the data structure in benchmark reports.
func (l *List[K, V]) Name() string { return "SkipListSTM" }

func randomLevel() int {
	lvl := 0
	for rand.Uint64()&1 == 1 && lvl < maxLevel-1 {
		lvl++
	}
	return lvl
}

// nodeLess reports whether n's key is strictly smaller than key, treating
// the head sentinel as -infinity and the tail sentinel as +infinity.
func (l *List[K, V]) nodeLess(n *node[K, V], key K) bool {
	switch n.sentinel {
	case -1:
		return true
	case 1:
		return false
	default:
		return l.less(n.k, key)
	}
}

// isKey reports whether n holds exactly key.
func (l *List[K, V]) isKey(n *node[K, V], key K) bool {
	return n.sentinel == 0 && !l.less(n.k, key) && !l.less(key, n.k)
}

// findPreds fills preds with the rightmost node strictly smaller than key at
// every level and returns the node following preds[0], all read within tx.
func (l *List[K, V]) findPreds(tx *stm.Txn, key K, preds *[maxLevel + 1]*node[K, V]) *node[K, V] {
	pred := l.head
	for level := maxLevel; level >= 0; level-- {
		curr := stm.Read(tx, pred.next[level])
		for l.nodeLess(curr, key) {
			pred = curr
			curr = stm.Read(tx, pred.next[level])
		}
		preds[level] = pred
	}
	return stm.Read(tx, preds[0].next[0])
}

// Get returns the value associated with key, or the zero value and false if
// absent.
func (l *List[K, V]) Get(key K) (V, bool) {
	type result struct {
		v  V
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node[K, V]
		curr := l.findPreds(tx, key, &preds)
		if l.isKey(curr, key) {
			return result{stm.Read(tx, curr.v), true}
		}
		return result{}
	})
	return r.v, r.ok
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (l *List[K, V]) Insert(key K, value V) (V, bool) {
	type result struct {
		old     V
		existed bool
	}
	topLevel := randomLevel()
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node[K, V]
		curr := l.findPreds(tx, key, &preds)
		if l.isKey(curr, key) {
			old := stm.Read(tx, curr.v)
			stm.Write(tx, curr.v, value)
			return result{old, true}
		}
		fresh := newNode(key, value, topLevel, 0)
		for level := 0; level <= topLevel; level++ {
			stm.Write(tx, fresh.next[level], stm.Read(tx, preds[level].next[level]))
			stm.Write(tx, preds[level].next[level], fresh)
		}
		stm.Write(tx, l.size, stm.Read(tx, l.size)+1)
		return result{}
	})
	return r.old, r.existed
}

// Delete removes key, returning its value and true if it was present.
func (l *List[K, V]) Delete(key K) (V, bool) {
	type result struct {
		old     V
		existed bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node[K, V]
		curr := l.findPreds(tx, key, &preds)
		if !l.isKey(curr, key) {
			return result{}
		}
		for level := 0; level <= curr.level; level++ {
			if stm.Read(tx, preds[level].next[level]) == curr {
				stm.Write(tx, preds[level].next[level], stm.Read(tx, curr.next[level]))
			}
		}
		stm.Write(tx, l.size, stm.Read(tx, l.size)-1)
		return result{stm.Read(tx, curr.v), true}
	})
	return r.old, r.existed
}

// Successor returns the smallest key strictly greater than key.
func (l *List[K, V]) Successor(key K) (K, V, bool) {
	type result struct {
		k  K
		v  V
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node[K, V]
		curr := l.findPreds(tx, key, &preds)
		if l.isKey(curr, key) {
			curr = stm.Read(tx, curr.next[0])
		}
		if curr.sentinel == 1 {
			return result{}
		}
		return result{curr.k, stm.Read(tx, curr.v), true}
	})
	return r.k, r.v, r.ok
}

// Predecessor returns the largest key strictly smaller than key.
func (l *List[K, V]) Predecessor(key K) (K, V, bool) {
	type result struct {
		k  K
		v  V
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var preds [maxLevel + 1]*node[K, V]
		l.findPreds(tx, key, &preds)
		pred := preds[0]
		if pred.sentinel == -1 {
			return result{}
		}
		return result{pred.k, stm.Read(tx, pred.v), true}
	})
	return r.k, r.v, r.ok
}

// Size returns the number of keys stored.
func (l *List[K, V]) Size() int {
	return int(stm.Atomically(func(tx *stm.Txn) int64 { return stm.Read(tx, l.size) }))
}

// Keys returns all keys in ascending order, read in one transaction.
func (l *List[K, V]) Keys() []K {
	return stm.Atomically(func(tx *stm.Txn) []K {
		var keys []K
		for n := stm.Read(tx, l.head.next[0]); n.sentinel != 1; n = stm.Read(tx, n.next[0]) {
			keys = append(keys, n.k)
		}
		return keys
	})
}

// CheckInvariants verifies, in one transaction, that every level is
// strictly ordered and that every level is a sublist of the level below it
// (every node linked at level i is also reachable at level i-1).
func (l *List[K, V]) CheckInvariants() error {
	bad := stm.Atomically(func(tx *stm.Txn) error {
		for level := 0; level <= maxLevel; level++ {
			var prev *node[K, V]
			for n := stm.Read(tx, l.head.next[level]); n.sentinel != 1; n = stm.Read(tx, n.next[level]) {
				if prev != nil && !l.less(prev.k, n.k) {
					return errOrder
				}
				prev = n
			}
		}
		for level := 1; level <= maxLevel; level++ {
			lower := map[*node[K, V]]bool{}
			for n := stm.Read(tx, l.head.next[level-1]); n.sentinel != 1; n = stm.Read(tx, n.next[level-1]) {
				lower[n] = true
			}
			for n := stm.Read(tx, l.head.next[level]); n.sentinel != 1; n = stm.Read(tx, n.next[level]) {
				if !lower[n] {
					return errTower
				}
			}
		}
		return nil
	})
	return bad
}

type listError string

func (e listError) Error() string { return string(e) }

const (
	errOrder = listError("stmskip: level out of order")
	errTower = listError("stmskip: tower node missing from lower level")
)
