package stmskip

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dict"
	"repro/internal/dict/dicttest"
)

// target is the shared-suite target for the int64 instantiation: the
// model-based conformance, fuzz and stress logic lives in
// internal/dict/dicttest; this package only supplies the constructor and the
// quiescent invariant check.
func target() dicttest.Target {
	return dicttest.Target{
		Name: "SkipListSTM",
		New:  func() dict.IntMap { return New() },
		Check: func(d dict.IntMap) error {
			return d.(*List[int64, int64]).CheckInvariants()
		},
	}
}

func TestBasicOperations(t *testing.T) {
	l := New()
	if _, ok := l.Get(3); ok {
		t.Fatal("Get on empty list returned ok")
	}
	if _, existed := l.Insert(3, 30); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := l.Get(3); !ok || v != 30 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := l.Insert(3, 31); !existed || old != 30 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := l.Delete(3); !existed || old != 31 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, existed := l.Delete(3); existed {
		t.Fatal("double delete reported existed")
	}
	if l.Size() != 0 {
		t.Fatalf("Size = %d, want 0", l.Size())
	}
}

func TestSequentialConformance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dicttest.SequentialConformance(t, target(), 6000, 600, seed)
	}
	// A tiny key range maximizes tower churn per key.
	dicttest.SequentialConformance(t, target(), 3000, 8, 99)
}

// TestComparatorPath runs the same conformance suite against a NewLess list
// with a reversed ordering, so the comparator contract (not the natural
// int64 order) is what the structure must honour.
func TestComparatorPath(t *testing.T) {
	desc := func(a, b int64) bool { return a > b }
	tgt := dicttest.TargetOf[int64, int64]{
		Name: "SkipListSTM/desc",
		New:  func() dict.Map[int64, int64] { return NewLess[int64, int64](desc) },
		Less: desc,
		Check: func(d dict.Map[int64, int64]) error {
			return d.(*List[int64, int64]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 5000,
		func(u uint64) int64 { return int64(u % 300) },
		func(u uint64) int64 { return int64(u % (1 << 30)) },
		7)
}

// TestStringKeys runs the conformance suite over the string-keyed
// instantiation, exercising NewOrdered's generic construction path.
func TestStringKeys(t *testing.T) {
	tgt := dicttest.TargetOf[string, string]{
		Name: "SkipListSTM/string",
		New:  func() dict.Map[string, string] { return NewOrdered[string, string]() },
		Less: func(a, b string) bool { return a < b },
		Check: func(d dict.Map[string, string]) error {
			return d.(*List[string, string]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 5000,
		func(u uint64) string { return fmt.Sprintf("k%03d", u%200) },
		func(u uint64) string { return fmt.Sprintf("v%d", u%1024) },
		5)
}

func TestSuccessorPredecessor(t *testing.T) {
	l := New()
	for k := int64(0); k < 100; k += 10 {
		l.Insert(k, k*2)
	}
	if k, v, ok := l.Successor(45); !ok || k != 50 || v != 100 {
		t.Fatalf("Successor(45) = (%d,%d,%v)", k, v, ok)
	}
	if k, _, ok := l.Successor(90); ok {
		t.Fatalf("Successor(90) = (%d,%v), want none", k, ok)
	}
	if k, v, ok := l.Predecessor(45); !ok || k != 40 || v != 80 {
		t.Fatalf("Predecessor(45) = (%d,%d,%v)", k, v, ok)
	}
	if k, _, ok := l.Predecessor(0); ok {
		t.Fatalf("Predecessor(0) = (%d,%v), want none", k, ok)
	}
}

func TestConcurrentStress(t *testing.T) {
	dicttest.ConcurrentStress(t, target(), 8, 1500, 150)
}

func TestConcurrentContention(t *testing.T) {
	l := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				key := rng.Int63n(48)
				switch rng.Intn(3) {
				case 0:
					l.Insert(key, key)
				case 1:
					l.Delete(key)
				default:
					if v, ok := l.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	keys := l.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}
