package stmskip

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	l := New()
	if _, ok := l.Get(3); ok {
		t.Fatal("Get on empty list returned ok")
	}
	if _, existed := l.Insert(3, 30); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := l.Get(3); !ok || v != 30 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := l.Insert(3, 33); !existed || old != 30 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := l.Delete(3); !existed || old != 33 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := l.Get(3); ok {
		t.Fatal("present after delete")
	}
	if l.Size() != 0 {
		t.Fatalf("Size = %d, want 0", l.Size())
	}
}

func TestAgainstModel(t *testing.T) {
	l := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 15000; i++ {
		key := rng.Int63n(400)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := l.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch at op %d", key, i)
			}
			model[key] = val
		case 1:
			old, existed := l.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch at op %d", key, i)
			}
			delete(model, key)
		default:
			v, ok := l.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch at op %d", key, i)
			}
		}
	}
	if l.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", l.Size(), len(model))
	}
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	l := New()
	for k := int64(0); k < 60; k += 6 {
		l.Insert(k, k)
	}
	if k, _, ok := l.Successor(13); !ok || k != 18 {
		t.Fatalf("Successor(13) = (%d,%v)", k, ok)
	}
	if k, _, ok := l.Successor(12); !ok || k != 18 {
		t.Fatalf("Successor(12) = (%d,%v)", k, ok)
	}
	if _, _, ok := l.Successor(54); ok {
		t.Fatal("Successor(54) should not exist")
	}
	if k, _, ok := l.Predecessor(13); !ok || k != 12 {
		t.Fatalf("Predecessor(13) = (%d,%v)", k, ok)
	}
	if _, _, ok := l.Predecessor(0); ok {
		t.Fatal("Predecessor(0) should not exist")
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	prop := func(ins []int16, del []int16) bool {
		l := New()
		model := map[int64]bool{}
		for _, k := range ins {
			l.Insert(int64(k), int64(k))
			model[int64(k)] = true
		}
		for _, k := range del {
			l.Delete(int64(k))
			delete(model, int64(k))
		}
		if l.Size() != len(model) {
			return false
		}
		for k := range model {
			if _, ok := l.Get(k); !ok {
				return false
			}
		}
		keys := l.Keys()
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDisjointKeys(t *testing.T) {
	l := New()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g * perG)
			for i := int64(0); i < perG; i++ {
				l.Insert(base+i, base+i)
			}
			for i := int64(0); i < perG; i += 2 {
				l.Delete(base + i)
			}
		}(g)
	}
	wg.Wait()
	if got, want := l.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	keys := l.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
}

func TestConcurrentContention(t *testing.T) {
	l := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 1000; i++ {
				key := rng.Int63n(32)
				switch rng.Intn(3) {
				case 0:
					l.Insert(key, key)
				case 1:
					l.Delete(key)
				default:
					if v, ok := l.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	keys := l.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}
