package llxscx

import (
	"sync"
	"sync/atomic"
	"testing"
)

// tnode is a minimal binary Data-record used to exercise the primitives
// directly, independent of any particular tree algorithm.
type tnode struct {
	rec   Record[tnode]
	key   int64
	left  atomic.Pointer[tnode]
	right atomic.Pointer[tnode]
}

func (n *tnode) LLXRecord() *Record[tnode] { return &n.rec }
func (n *tnode) NumMutable() int           { return 2 }
func (n *tnode) Mutable(i int) *atomic.Pointer[tnode] {
	if i == 0 {
		return &n.left
	}
	return &n.right
}

func newTNode(key int64, left, right *tnode) *tnode {
	n := &tnode{key: key}
	n.left.Store(left)
	n.right.Store(right)
	return n
}

func TestLLXSnapshotOfQuiescentRecord(t *testing.T) {
	l, r := newTNode(1, nil, nil), newTNode(3, nil, nil)
	root := newTNode(2, l, r)
	lk, st := LLX(root)
	if st != Snapshot {
		t.Fatalf("LLX status = %v, want Snapshot", st)
	}
	if lk.Node() != root {
		t.Fatalf("Linked.Node = %p, want %p", lk.Node(), root)
	}
	if lk.NumChildren() != 2 {
		t.Fatalf("NumChildren = %d, want 2", lk.NumChildren())
	}
	if lk.Child(0) != l || lk.Child(1) != r {
		t.Fatalf("snapshot children = %p,%p want %p,%p", lk.Child(0), lk.Child(1), l, r)
	}
	if !lk.Valid() {
		t.Fatal("Linked.Valid() = false, want true")
	}
}

func TestZeroLinkedIsInvalid(t *testing.T) {
	var lk Linked[tnode]
	if lk.Valid() {
		t.Fatal("zero Linked should not be valid")
	}
}

func TestSCXSwingsChildPointerAndFinalizes(t *testing.T) {
	oldLeaf := newTNode(1, nil, nil)
	sibling := newTNode(3, nil, nil)
	root := newTNode(2, oldLeaf, sibling)

	lkRoot, st := LLX(root)
	if st != Snapshot {
		t.Fatalf("LLX(root) = %v", st)
	}
	lkLeaf, st := LLX(oldLeaf)
	if st != Snapshot {
		t.Fatalf("LLX(oldLeaf) = %v", st)
	}

	repl := newTNode(10, nil, nil)
	ok := SCX([]Linked[tnode]{lkRoot, lkLeaf}, []*tnode{oldLeaf}, &root.left, oldLeaf, repl)
	if !ok {
		t.Fatal("SCX failed on uncontended update")
	}
	if got := root.left.Load(); got != repl {
		t.Fatalf("root.left = %p, want %p", got, repl)
	}
	if !oldLeaf.rec.Marked() {
		t.Fatal("finalized record not marked")
	}
	if _, st := LLX(oldLeaf); st != Finalized {
		t.Fatalf("LLX on finalized record = %v, want Finalized", st)
	}
	// The replacement and untouched sibling remain usable.
	if _, st := LLX(repl); st != Snapshot {
		t.Fatalf("LLX(repl) = %v, want Snapshot", st)
	}
	if _, st := LLX(sibling); st != Snapshot {
		t.Fatalf("LLX(sibling) = %v, want Snapshot", st)
	}
}

func TestSCXFailsIfRecordChangedSinceLinkedLLX(t *testing.T) {
	a := newTNode(1, nil, nil)
	b := newTNode(3, nil, nil)
	root := newTNode(2, a, b)

	lkRoot, _ := LLX(root)
	lkA, _ := LLX(a)

	// A competing update changes root.left first.
	lkRoot2, _ := LLX(root)
	lkA2, _ := LLX(a)
	winner := newTNode(7, nil, nil)
	if !SCX([]Linked[tnode]{lkRoot2, lkA2}, []*tnode{a}, &root.left, a, winner) {
		t.Fatal("first SCX should succeed")
	}

	loser := newTNode(8, nil, nil)
	if SCX([]Linked[tnode]{lkRoot, lkA}, []*tnode{a}, &root.left, a, loser) {
		t.Fatal("second SCX should fail: root changed since its linked LLX")
	}
	if got := root.left.Load(); got != winner {
		t.Fatalf("root.left = %p, want winner %p", got, winner)
	}
}

func TestVLXDetectsChange(t *testing.T) {
	a := newTNode(1, nil, nil)
	b := newTNode(3, nil, nil)
	root := newTNode(2, a, b)

	lkRoot, _ := LLX(root)
	lkA, _ := LLX(a)
	if !VLX([]Linked[tnode]{lkRoot, lkA}) {
		t.Fatal("VLX on unchanged records should succeed")
	}

	// Change root via an SCX, then the old evidence must fail to validate.
	lkRoot2, _ := LLX(root)
	lkA2, _ := LLX(a)
	if !SCX([]Linked[tnode]{lkRoot2, lkA2}, []*tnode{a}, &root.left, a, newTNode(9, nil, nil)) {
		t.Fatal("SCX should succeed")
	}
	if VLX([]Linked[tnode]{lkRoot, lkA}) {
		t.Fatal("VLX should fail after root was modified")
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{Snapshot: "Snapshot", Fail: "Fail", Finalized: "Finalized", Status(42): "Unknown"}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", int(st), st.String(), want)
		}
	}
}

// TestConcurrentSCXOnSharedParent hammers a single parent node with many
// goroutines each trying to replace the same child. Exactly the successful
// SCXs must be reflected in the final chain, and every replaced node must be
// finalized.
func TestConcurrentSCXOnSharedParent(t *testing.T) {
	root := newTNode(0, newTNode(1, nil, nil), nil)
	const goroutines = 8
	const attempts = 2000

	var successes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				lkRoot, st := LLX(root)
				if st != Snapshot {
					continue
				}
				child := lkRoot.Child(0)
				if child == nil {
					t.Errorf("child unexpectedly nil")
					return
				}
				lkChild, st := LLX(child)
				if st != Snapshot {
					continue
				}
				repl := newTNode(int64(id*attempts+i+1000), nil, nil)
				if SCX([]Linked[tnode]{lkRoot, lkChild}, []*tnode{child}, &root.left, child, repl) {
					successes.Add(1)
					if !child.rec.Marked() {
						t.Errorf("replaced child not finalized")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if successes.Load() == 0 {
		t.Fatal("no SCX succeeded under contention; progress property violated")
	}
	// The surviving child must not be finalized.
	if cur := root.left.Load(); cur.rec.Marked() {
		t.Fatal("current child of root is finalized but still in the structure")
	}
}

// TestLLXFailOrFinalizedUnderConcurrentFreeze checks that LLX never returns a
// stale snapshot of a record that a committed SCX has already replaced: after
// the SCX commits, LLX on the removed record must return Finalized.
func TestLLXFinalizedAfterRemoval(t *testing.T) {
	child := newTNode(1, nil, nil)
	root := newTNode(2, child, nil)
	lkRoot, _ := LLX(root)
	lkChild, _ := LLX(child)
	if !SCX([]Linked[tnode]{lkRoot, lkChild}, []*tnode{child}, &root.left, child, newTNode(5, nil, nil)) {
		t.Fatal("SCX failed")
	}
	for i := 0; i < 10; i++ {
		if _, st := LLX(child); st != Finalized {
			t.Fatalf("LLX on removed record = %v, want Finalized", st)
		}
	}
}

func BenchmarkLLX(b *testing.B) {
	root := newTNode(2, newTNode(1, nil, nil), newTNode(3, nil, nil))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, st := LLX(root); st != Snapshot {
			b.Fatal("unexpected LLX failure")
		}
	}
}

func BenchmarkSCXUncontended(b *testing.B) {
	root := newTNode(2, newTNode(1, nil, nil), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lkRoot, _ := LLX(root)
		child := lkRoot.Child(0)
		lkChild, _ := LLX(child)
		repl := newTNode(int64(i), nil, nil)
		if !SCX([]Linked[tnode]{lkRoot, lkChild}, []*tnode{child}, &root.left, child, repl) {
			b.Fatal("uncontended SCX failed")
		}
	}
}
