package llxscx

// Tests for the slice-free SCXFixed/VLXFixed entry points. They mirror the
// slice-based tests in llxscx_test.go and additionally assert that the two
// entry points are behaviourally identical: the slice API is a thin copy-in
// wrapper over the inline-array API, so any scenario must commit or abort
// the same way through either.

import (
	"sync"
	"sync/atomic"
	"testing"
)

// fixedV stages linked LLX evidence the way hot paths do: in a stack array.
func fixedV(lks ...Linked[tnode]) ([MaxV]Linked[tnode], int) {
	var v [MaxV]Linked[tnode]
	return v, copy(v[:], lks)
}

func fixedR(rs ...*tnode) ([MaxV]*tnode, int) {
	var r [MaxV]*tnode
	return r, copy(r[:], rs)
}

func TestSCXFixedSwingsChildPointerAndFinalizes(t *testing.T) {
	oldLeaf := newTNode(1, nil, nil)
	sibling := newTNode(3, nil, nil)
	root := newTNode(2, oldLeaf, sibling)

	lkRoot, st := LLX(root)
	if st != Snapshot {
		t.Fatalf("LLX(root) = %v", st)
	}
	lkLeaf, st := LLX(oldLeaf)
	if st != Snapshot {
		t.Fatalf("LLX(oldLeaf) = %v", st)
	}

	repl := newTNode(10, nil, nil)
	v, nv := fixedV(lkRoot, lkLeaf)
	r, nr := fixedR(oldLeaf)
	if !SCXFixed(&v, nv, &r, nr, &root.left, oldLeaf, repl) {
		t.Fatal("SCXFixed failed on uncontended update")
	}
	if got := root.left.Load(); got != repl {
		t.Fatalf("root.left = %p, want %p", got, repl)
	}
	if !oldLeaf.rec.Marked() {
		t.Fatal("finalized record not marked")
	}
	if _, st := LLX(oldLeaf); st != Finalized {
		t.Fatalf("LLX on finalized record = %v, want Finalized", st)
	}
	if _, st := LLX(repl); st != Snapshot {
		t.Fatalf("LLX(repl) = %v, want Snapshot", st)
	}
	if _, st := LLX(sibling); st != Snapshot {
		t.Fatalf("LLX(sibling) = %v, want Snapshot", st)
	}
}

func TestSCXFixedFailsIfRecordChangedSinceLinkedLLX(t *testing.T) {
	a := newTNode(1, nil, nil)
	b := newTNode(3, nil, nil)
	root := newTNode(2, a, b)

	lkRoot, _ := LLX(root)
	lkA, _ := LLX(a)

	// A competing update changes root.left first, through the fixed path.
	lkRoot2, _ := LLX(root)
	lkA2, _ := LLX(a)
	winner := newTNode(7, nil, nil)
	v2, nv2 := fixedV(lkRoot2, lkA2)
	r2, nr2 := fixedR(a)
	if !SCXFixed(&v2, nv2, &r2, nr2, &root.left, a, winner) {
		t.Fatal("first SCXFixed should succeed")
	}

	loser := newTNode(8, nil, nil)
	v1, nv1 := fixedV(lkRoot, lkA)
	r1, nr1 := fixedR(a)
	if SCXFixed(&v1, nv1, &r1, nr1, &root.left, a, loser) {
		t.Fatal("second SCXFixed should fail: root changed since its linked LLX")
	}
	if got := root.left.Load(); got != winner {
		t.Fatalf("root.left = %p, want winner %p", got, winner)
	}
}

func TestVLXFixedDetectsChange(t *testing.T) {
	a := newTNode(1, nil, nil)
	b := newTNode(3, nil, nil)
	root := newTNode(2, a, b)

	lkRoot, _ := LLX(root)
	lkA, _ := LLX(a)
	v, nv := fixedV(lkRoot, lkA)
	if !VLXFixed(&v, nv) {
		t.Fatal("VLXFixed on unchanged records should succeed")
	}

	lkRoot2, _ := LLX(root)
	lkA2, _ := LLX(a)
	v2, nv2 := fixedV(lkRoot2, lkA2)
	r2, nr2 := fixedR(a)
	if !SCXFixed(&v2, nv2, &r2, nr2, &root.left, a, newTNode(9, nil, nil)) {
		t.Fatal("SCXFixed should succeed")
	}
	if VLXFixed(&v, nv) {
		t.Fatal("VLXFixed should fail after root was modified")
	}
	// The empty sequence validates trivially, as with VLX(nil).
	if !VLXFixed(&v, 0) {
		t.Fatal("VLXFixed over zero records should succeed")
	}
}

// TestSliceWrappersAgreeWithFixed pins the wrapper relationship: the same
// stale-evidence scenario must abort, and the same fresh-evidence scenario
// must commit, through both entry points.
func TestSliceWrappersAgreeWithFixed(t *testing.T) {
	for _, useFixed := range []bool{false, true} {
		child := newTNode(1, nil, nil)
		root := newTNode(2, child, nil)

		stale, _ := LLX(root)
		staleChild, _ := LLX(child)

		// Competing update through the other entry point.
		lkRoot, _ := LLX(root)
		lkChild, _ := LLX(child)
		winner := newTNode(7, nil, nil)
		var okWin bool
		if useFixed {
			v, nv := fixedV(lkRoot, lkChild)
			r, nr := fixedR(child)
			okWin = SCXFixed(&v, nv, &r, nr, &root.left, child, winner)
		} else {
			okWin = SCX([]Linked[tnode]{lkRoot, lkChild}, []*tnode{child}, &root.left, child, winner)
		}
		if !okWin {
			t.Fatalf("useFixed=%v: fresh SCX should commit", useFixed)
		}

		// The stale evidence must abort through the opposite entry point.
		loser := newTNode(8, nil, nil)
		var okLose bool
		if useFixed {
			okLose = SCX([]Linked[tnode]{stale, staleChild}, []*tnode{child}, &root.left, child, loser)
		} else {
			v, nv := fixedV(stale, staleChild)
			r, nr := fixedR(child)
			okLose = SCXFixed(&v, nv, &r, nr, &root.left, child, loser)
		}
		if okLose {
			t.Fatalf("useFixed=%v: stale SCX should abort", useFixed)
		}
		if got := root.left.Load(); got != winner {
			t.Fatalf("useFixed=%v: root.left = %p, want winner %p", useFixed, got, winner)
		}
		if !child.rec.Marked() {
			t.Fatalf("useFixed=%v: replaced child not finalized", useFixed)
		}
	}
}

func TestSCXFixedPanicsOnBadLengths(t *testing.T) {
	child := newTNode(1, nil, nil)
	root := newTNode(2, child, nil)
	lkRoot, _ := LLX(root)
	lkChild, _ := LLX(child)
	v, _ := fixedV(lkRoot, lkChild)
	r, _ := fixedR(child)

	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("nv=0", func() { SCXFixed(&v, 0, &r, 0, &root.left, child, newTNode(9, nil, nil)) })
	expectPanic("nv>MaxV", func() { SCXFixed(&v, MaxV+1, &r, 0, &root.left, child, newTNode(9, nil, nil)) })
	expectPanic("nf>nv", func() { SCXFixed(&v, 2, &r, 3, &root.left, child, newTNode(9, nil, nil)) })
	expectPanic("nf<0", func() { SCXFixed(&v, 2, &r, -1, &root.left, child, newTNode(9, nil, nil)) })
	expectPanic("vlx n>MaxV", func() { VLXFixed(&v, MaxV+1) })
}

// TestConcurrentFixedAndSliceSCXStress interleaves the two entry points on a
// shared parent under contention. The committed updates must form a single
// consistent chain whichever path performed them: every replaced node is
// finalized, the surviving node is not, and at least one SCX from each entry
// point commits (progress through both paths).
func TestConcurrentFixedAndSliceSCXStress(t *testing.T) {
	root := newTNode(0, newTNode(1, nil, nil), nil)
	const goroutines = 8
	const attempts = 2000

	var fixedSuccesses, sliceSuccesses atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			useFixed := id%2 == 0
			for i := 0; i < attempts; i++ {
				lkRoot, st := LLX(root)
				if st != Snapshot {
					continue
				}
				child := lkRoot.Child(0)
				if child == nil {
					t.Errorf("child unexpectedly nil")
					return
				}
				lkChild, st := LLX(child)
				if st != Snapshot {
					continue
				}
				repl := newTNode(int64(id*attempts+i+1000), nil, nil)
				var ok bool
				if useFixed {
					v, nv := fixedV(lkRoot, lkChild)
					r, nr := fixedR(child)
					ok = SCXFixed(&v, nv, &r, nr, &root.left, child, repl)
				} else {
					ok = SCX([]Linked[tnode]{lkRoot, lkChild}, []*tnode{child}, &root.left, child, repl)
				}
				if ok {
					if useFixed {
						fixedSuccesses.Add(1)
					} else {
						sliceSuccesses.Add(1)
					}
					if !child.rec.Marked() {
						t.Errorf("replaced child not finalized")
						return
					}
					if root.left.Load() == child {
						t.Errorf("committed SCX left the replaced child in place")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if fixedSuccesses.Load() == 0 {
		t.Fatal("no SCXFixed succeeded under contention")
	}
	if sliceSuccesses.Load() == 0 {
		t.Fatal("no slice SCX succeeded under contention")
	}
	if cur := root.left.Load(); cur.rec.Marked() {
		t.Fatal("current child of root is finalized but still in the structure")
	}
}

// BenchmarkSCXFixedUncontended is the inline-array counterpart of
// BenchmarkSCXUncontended; the delta between the two is the wrapper's
// copy-in cost plus the slice allocations at the call site.
func BenchmarkSCXFixedUncontended(b *testing.B) {
	root := newTNode(2, newTNode(1, nil, nil), nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lkRoot, _ := LLX(root)
		child := lkRoot.Child(0)
		lkChild, _ := LLX(child)
		repl := newTNode(int64(i), nil, nil)
		v, nv := fixedV(lkRoot, lkChild)
		r, nr := fixedR(child)
		if !SCXFixed(&v, nv, &r, nr, &root.left, child, repl) {
			b.Fatal("uncontended SCXFixed failed")
		}
	}
}
