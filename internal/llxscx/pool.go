package llxscx

import (
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
)

// Pool recycles SCX descriptors for one data structure. Descriptors are
// handed back through the epoch layer only when their reference count
// drains to zero — no record's info field points at them, no in-flight SCXP
// lists them as freezing-CAS evidence, and the initiating SCXP has returned
// — so a descriptor can never be recycled while a helper might still read
// it, install it, or CAS with its address as the expected value.
//
// A descriptor whose count does not drain simply parks where it is: a
// record that is never frozen again keeps its last descriptor alive, which
// is exactly the footprint the GC-based port had. The steady-state churn
// the pool targets refreezes records constantly, so descriptors recycle at
// the rate SCXs consume them.
type Pool[N any] struct {
	p sync.Pool

	// OnCommit, when non-nil, is invoked by help() for every SCXP descriptor
	// after all records are frozen and finalized, immediately BEFORE the
	// update CAS, with the descriptor's mutable field, expected old value and
	// new value. EVERY helper that reaches the update CAS calls it (not only
	// the one whose CAS lands), so the callback must be idempotent; in
	// exchange it is guaranteed to have run to completion at least once
	// before new can be read out of any mutable field. The trees use this to
	// stamp the freshly installed subtree root with a version tick and its
	// previous-version link, ordering the commit against snapshot capture
	// (DESIGN.md, "Versioned snapshots"). Set once at construction, before
	// the pool's first SCXP.
	OnCommit func(fld *atomic.Pointer[N], old, new *N)

	// OnInstalled, when non-nil alongside OnCommit, is invoked immediately
	// AFTER the update CAS by every helper that invoked OnCommit, pairing
	// one-to-one with those calls. The trees use the pair as a bracket
	// around the stamp→install window: OnCommit opens a counter before it
	// assigns the version tick, OnInstalled closes it once the new subtree
	// is (or is guaranteed to already be) reachable, and Snapshot drains the
	// counter after reading the version counter — which is what makes "tick
	// at or below a captured version" imply "installed before the capture's
	// first read" (DESIGN.md, "Versioned snapshots").
	OnInstalled func()

	// deferred heads the intrusive stack of descriptors whose count hit
	// zero outside an SCXP call (a helper displaced them, or a freed node
	// released its record's reference). The next SCXP on this structure —
	// or an explicit Flush — hands them to the epoch layer.
	deferred atomic.Pointer[descriptor[N]]

	// freeFn is the epoch callback, built once so Retire never allocates a
	// closure.
	freeFn epoch.Func
}

// NewPool returns a descriptor pool for one data structure. All SCXP calls
// on records of the same structure must share one pool.
func NewPool[N any]() *Pool[N] {
	pl := &Pool[N]{}
	pl.p.New = func() any { return new(descriptor[N]) }
	pl.freeFn = func(g *epoch.Guard, obj any) bool {
		return pl.freeOne(obj.(*descriptor[N]))
	}
	return pl
}

// release drops one reference; the dropper that reaches zero pushes the
// descriptor onto its pool's deferred-retire stack (exactly once — a late
// helper can transiently resurrect the count, which freeOne re-checks).
func (d *descriptor[N]) release() {
	if d.refs.Add(-1) == 0 && d.retired.CompareAndSwap(false, true) {
		d.pool.deferRetire(d)
	}
}

// deferRetire pushes d onto the deferred stack (Treiber push; the pop in
// Flush swaps the whole list out, so there is no ABA window).
func (pl *Pool[N]) deferRetire(d *descriptor[N]) {
	for {
		head := pl.deferred.Load()
		d.dnext = head
		if pl.deferred.CompareAndSwap(head, d) {
			return
		}
	}
}

// Flush hands every deferred descriptor to the epoch layer under the
// caller's pinned guard. SCXP flushes on every call; trees call it from
// their quiescent drain helpers so the last few descriptors of a run do
// not wait for a further SCX.
func (pl *Pool[N]) Flush(g *epoch.Guard) {
	d := pl.deferred.Swap(nil)
	for d != nil {
		next := d.dnext
		d.dnext = nil
		epoch.Retire(g, d, pl.freeFn)
		d = next
	}
}

// freeOne is the epoch callback: by now every operation pinned when the
// descriptor's count hit zero has finished, so nobody can still name it.
// If a late helper resurrected the count in the meantime (it re-installed
// the descriptor into a record after a displacement briefly zeroed the
// count), the descriptor is parked instead of freed: the retired flag is
// re-armed and the entry leaves the retire list, so the release() that
// eventually drops the count back to zero re-queues it for a fresh grace
// period. Parked descriptors are reachable through the records that hold
// them, so nothing leaks while they wait.
func (pl *Pool[N]) freeOne(d *descriptor[N]) bool {
	if d.refs.Load() != 0 {
		// Park: re-arm first, then re-check, so a final release racing
		// between the two loads cannot fall through the already-set retired
		// flag and strand the descriptor.
		d.retired.Store(false)
		if d.refs.Load() == 0 && d.retired.CompareAndSwap(false, true) {
			return false // count drained while parking; take another grace period
		}
		return true
	}
	for i := range d.recs {
		d.recs[i] = nil
		d.infos[i] = nil
		d.toMark[i] = nil
	}
	d.nV = 0
	d.nMark = 0
	d.fld = nil
	d.old = nil
	d.new = nil
	d.pool = nil
	d.allFrozen.Store(false)
	d.retired.Store(false)
	pl.p.Put(d)
	return true
}

// SCXP is SCX with pooled-descriptor reclamation: semantically identical to
// SCXFixed, but the descriptor comes from pl and is recycled once its
// reference count drains. g must be the caller's pinned epoch guard. When
// epoch reclamation is compiled out (-tags noepoch) it falls back to
// SCXFixed.
func SCXP[P DataRecord[N], N any](g *epoch.Guard, pl *Pool[N], v *[MaxV]Linked[N], nv int, finalize *[MaxV]P, nf int, fld *atomic.Pointer[N], old, new *N) bool {
	if !epoch.Enabled {
		return SCXFixed(v, nv, finalize, nf, fld, old, new)
	}
	if nv < 1 || nv > MaxV || nf < 0 || nf > nv {
		panic("llxscx: SCXP sequence lengths out of range")
	}
	d := pl.p.Get().(*descriptor[N])
	d.pool = pl
	d.refs.Store(1) // initiator bias
	d.nV = nv
	d.nMark = nf
	d.fld = fld
	d.old = old
	d.new = new
	for i := 0; i < nv; i++ {
		d.recs[i] = v[i].rec
		d.infos[i] = v[i].info
		// List the expected value: it must stay unrecycled while d (and
		// therefore possibly a helper of d) is alive.
		if old := v[i].info; old != nil && old.pool != nil {
			old.refs.Add(1)
		}
	}
	for i := 0; i < nf; i++ {
		d.toMark[i] = finalize[i].LLXRecord()
	}
	d.state.Store(stateInProgress)
	committed := help(d)
	// d's state is now terminal (committed or aborted), so no NEW helper of
	// d can ever start: validateOne and LLX only help in-progress
	// descriptors. Release the listings on d's freezing-CAS expected values
	// here, not when d is freed. Helpers of d that are still stalled inside
	// the freeze loop were pinned before this point, and a listed descriptor
	// whose count drains now still takes a full grace period before reuse,
	// so their CASes never see a recycled address. Releasing eagerly is what
	// makes the pool live: if the listing persisted until d was freed, every
	// descriptor would be kept by its successor's listing on a shared record
	// and the whole history chain would park forever.
	for i := 0; i < d.nV; i++ {
		if old := d.infos[i]; old != nil && old.pool != nil {
			old.release()
		}
	}
	d.release() // drop the initiator bias
	pl.Flush(g)
	return committed
}

// ReleaseRecord severs a freed Data-record's reference to its last
// descriptor and resets the record for reuse. Trees must call it exactly
// once, when a node's grace period has completed and the node is about to
// enter a pool — at that point no operation can reach the record, so the
// plain reset cannot race.
func ReleaseRecord[N any](rec *Record[N]) {
	if d := rec.info.Load(); d != nil && d.pool != nil {
		rec.info.Store(nil)
		d.release()
	} else if d != nil {
		rec.info.Store(nil)
	}
	rec.marked.Store(false)
}
