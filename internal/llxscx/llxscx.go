// Package llxscx implements the LLX, SCX and VLX synchronization primitives
// of Brown, Ellen and Ruppert ("Pragmatic primitives for non-blocking data
// structures", PODC 2013) from single-word compare-and-swap, as required by
// the tree update template of their PPoPP 2014 paper.
//
// LLX, SCX and VLX are multi-word generalizations of load-link,
// store-conditional and validate. They operate on Data-records: fixed-size
// records with a set of mutable fields (child pointers) and any number of
// immutable fields. LLX(r) takes a snapshot of r's mutable fields.
// SCX(V, R, fld, new) atomically verifies that no record in V changed since
// the caller's linked LLXs, stores new into the single mutable field fld,
// and finalizes every record in R. VLX(V) verifies that no record in V has
// changed since the caller's linked LLXs.
//
// A Data-record of concrete node type N embeds a Record[N] and implements
// the DataRecord[N] interface so the primitives can reach its
// synchronization state and mutable fields. Instead of the per-process
// tables used in the original pseudocode, a successful LLX returns a Linked
// value carrying the evidence (observed descriptor and snapshot); the caller
// passes these Linked values to SCX or VLX, which expresses exactly the same
// "linked LLX" relationship explicitly.
//
// Reclamation: the protocol's ABA-freedom requires that descriptors and
// nodes are never recycled while any process can still reach them. The
// original port delegated that wholesale to the garbage collector (as the
// paper's Java implementation does); descriptors are now recycled through a
// per-structure Pool instead. A descriptor carries a reference count — one
// per record it is currently installed in, one per live descriptor that
// lists it as freezing-CAS evidence, plus the initiator's bias — and is
// handed to internal/epoch for a grace period only when the count reaches
// zero, after which no helper or snapshot holder can still name it. SCXP is
// the pooled entry point; SCXFixed keeps the allocate-fresh behaviour (and
// is the fallback when epoch reclamation is compiled out). The full safety
// argument is re-derived in DESIGN.md ("Epoch reclamation and the ABA
// re-derivation").
package llxscx

import (
	"sync/atomic"

	"repro/internal/sched"
)

// MaxMutable is the maximum number of mutable fields a Data-record may
// expose to LLX. Binary trees use 2; k-ary structures may use up to this
// limit.
const MaxMutable = 4

// MaxV is the maximum length of the V sequence (and therefore of the R
// subsequence) accepted by SCXFixed and VLXFixed, and the capacity of the
// inline evidence arrays embedded in every SCX-record. It is sized for the
// largest update any tree in this repository performs: the chromatic tree's
// W3/W4 rebalancing steps (and their mirrors) link six LLXs and finalize
// five records. Keeping the bound tight keeps descriptors compact - one
// heap object per SCX, no side slices - which is the property the paper's
// Java implementation relies on for its update throughput.
const MaxV = 6

// Status is the outcome of an LLX.
type Status int

const (
	// Snapshot means the LLX obtained a consistent snapshot of the record's
	// mutable fields and may be linked to a subsequent SCX or VLX.
	Snapshot Status = iota
	// Fail means the LLX was concurrent with an SCX on the record and must
	// be retried (or the enclosing update aborted).
	Fail
	// Finalized means the record has been finalized (removed from the data
	// structure) by a committed SCX.
	Finalized
)

// String returns a readable name for the status.
func (s Status) String() string {
	switch s {
	case Snapshot:
		return "Snapshot"
	case Fail:
		return "Fail"
	case Finalized:
		return "Finalized"
	default:
		return "Unknown"
	}
}

// descriptor states.
const (
	stateInProgress int32 = iota
	stateCommitted
	stateAborted
)

// descriptor is an SCX-record: it describes one SCX so that any process can
// help complete it. All evidence is stored inline in fixed-capacity arrays
// (bounded by MaxV), so initiating an SCX allocates at most one object: the
// descriptor itself, which must stay heap-allocated while helpers retain
// pointers to it. Descriptors created through SCXP are recycled via their
// Pool once their reference count drains (see the package comment);
// descriptors created through SCXFixed have a nil pool and are left to the
// garbage collector.
type descriptor[N any] struct {
	state     atomic.Int32
	allFrozen atomic.Bool

	// refs counts the reasons this descriptor must stay alive: +1 while the
	// initiating SCXP runs (the bias), +1 per record whose info field it is
	// installed in, and +1 per live pooled descriptor listing it in infos
	// (the freezing-CAS expected value must not be recycled while a helper
	// of that descriptor might still CAS with it). Only used when pool is
	// non-nil.
	refs atomic.Int32

	// retired flips once, when refs first reaches zero, so the descriptor
	// is pushed onto its pool's deferred-retire stack exactly once even if
	// a late helper transiently resurrects the count.
	retired atomic.Bool

	// pool is the owning Pool for SCXP-created descriptors, nil for
	// SCXFixed ones (which also disables all reference accounting).
	pool *Pool[N]

	// dnext links the pool's deferred-retire stack.
	dnext *descriptor[N]

	// recs[i] is the synchronization record of the i'th element of V and
	// infos[i] is the descriptor observed by the linked LLX of that element
	// (the expected value of the freezing CAS). nV is the length of V.
	recs  [MaxV]*Record[N]
	infos [MaxV]*descriptor[N]
	nV    int

	// toMark[:nMark] are the synchronization records of the elements of R,
	// which are finalized when the SCX commits.
	toMark [MaxV]*Record[N]
	nMark  int

	// fld is the single mutable field changed from old to new.
	fld      *atomic.Pointer[N]
	old, new *N
}

// Record is the per-Data-record synchronization state used by LLX and SCX.
// Embed one Record in every node type. The zero value is ready to use.
type Record[N any] struct {
	info   atomic.Pointer[descriptor[N]]
	marked atomic.Bool
}

// Marked reports whether the record has been finalized by a committed SCX.
// A finalized record has been removed from the data structure and its
// mutable fields will never change again.
func (r *Record[N]) Marked() bool { return r.marked.Load() }

// DataRecord is the constraint a node type must satisfy so that the
// primitives can manipulate it. A node exposes its embedded Record and its
// mutable fields (child pointers) by index.
type DataRecord[N any] interface {
	*N
	// LLXRecord returns the node's embedded synchronization Record.
	LLXRecord() *Record[N]
	// NumMutable returns the number of mutable fields (at most MaxMutable).
	NumMutable() int
	// Mutable returns the i'th mutable field, 0 <= i < NumMutable().
	Mutable(i int) *atomic.Pointer[N]
}

// Linked is the evidence returned by a successful LLX. It captures the
// snapshot of the record's mutable fields together with the synchronization
// state observed, and is passed to SCX or VLX to establish the "linked LLX"
// relationship of the original specification.
type Linked[N any] struct {
	node *N
	rec  *Record[N]
	info *descriptor[N]
	vals [MaxMutable]*N
	n    int
}

// Node returns the Data-record this evidence refers to.
func (l Linked[N]) Node() *N { return l.node }

// NumChildren returns the number of mutable fields captured in the snapshot.
func (l Linked[N]) NumChildren() int { return l.n }

// Child returns the value of the i'th mutable field at the time of the LLX.
func (l Linked[N]) Child(i int) *N { return l.vals[i] }

// Valid reports whether the Linked value was produced by a successful LLX.
func (l Linked[N]) Valid() bool { return l.rec != nil }

// LLX attempts to take a snapshot of the mutable fields of r. It returns the
// snapshot evidence and Snapshot on success, a zero Linked and Fail if it was
// concurrent with an SCX involving r, or a zero Linked and Finalized if r has
// been finalized.
func LLX[P DataRecord[N], N any](r P) (Linked[N], Status) {
	sched.Point(sched.PointLLX)
	rec := r.LLXRecord()
	rinfo := rec.info.Load()
	state := stateAborted
	if rinfo != nil {
		state = rinfo.state.Load()
	}
	// The marked flag must be read after the descriptor state: help() marks
	// the finalized records before it publishes the Committed state, so a
	// record finalized by rinfo's SCX is guaranteed to be seen as marked
	// here. Reading it earlier admits a race in which LLX hands out a
	// snapshot of a record that has already been removed from the tree,
	// allowing a later SCX to resurrect it.
	marked1 := rec.marked.Load()
	if state == stateAborted || (state == stateCommitted && !marked1) {
		// The record is not being changed by an in-progress SCX: read the
		// mutable fields and confirm nothing froze the record meanwhile.
		var lk Linked[N]
		lk.node = (*N)(r)
		lk.rec = rec
		lk.info = rinfo
		lk.n = r.NumMutable()
		for i := 0; i < lk.n; i++ {
			lk.vals[i] = r.Mutable(i).Load()
		}
		if rec.info.Load() == rinfo {
			return lk, Snapshot
		}
	}
	// The record is (or was) frozen by an SCX. Help it complete, then report
	// Finalized or Fail as appropriate.
	curState := stateAborted
	if rinfo != nil {
		curState = rinfo.state.Load()
	}
	if (curState == stateCommitted || (curState == stateInProgress && help(rinfo))) && marked1 {
		return Linked[N]{}, Finalized
	}
	// Helping the blocker before reporting Fail is an optimization, not an
	// obligation: the caller's retry re-encounters any still-frozen record
	// and helps then. That makes it a legal target for chaos's dropped-help
	// injection (a probabilistic skip can delay completion but never
	// prevent it, because help-on-encounter sites are still reached on
	// every retry).
	if cur := rec.info.Load(); cur != nil && cur.state.Load() == stateInProgress && !sched.ChaosDropHelp() {
		help(cur)
	}
	return Linked[N]{}, Fail
}

// SCX attempts to atomically store new into *fld and finalize every record in
// finalize, provided that no record in v has changed since the linked LLX
// that produced its evidence. v must be ordered as required by the tree
// update template (Constraint 2 / postcondition PC8); finalize must identify
// a subset of the records in v; the record containing fld must be in v; and
// old must be the value of *fld observed by that record's linked LLX.
//
// SCX returns true if it modified the data structure and false if it failed
// because some record in v changed since its linked LLX.
//
// new must be freshly obtained - never a value that fld (or any mutable
// field) has held while any current operation could have observed it.
// Helpers of a committed SCX retry the update CAS unconditionally, so the
// protocol's ABA-freedom rests on stored values never recurring; reusing an
// existing node is only sound as a child of a freshly obtained subtree
// root, never as new itself. A node recycled through an epoch-guarded pool
// counts as freshly obtained: the grace period guarantees no helper or
// snapshot holder can still name its previous incarnation (DESIGN.md
// re-derives this).
//
// SCX is the slice-based convenience wrapper; v must not exceed MaxV
// entries. Hot paths that stage their evidence in stack arrays should call
// SCXFixed directly, which performs exactly one allocation (the descriptor).
func SCX[P DataRecord[N], N any](v []Linked[N], finalize []P, fld *atomic.Pointer[N], old, new *N) bool {
	var va [MaxV]Linked[N]
	var ra [MaxV]P
	copy(va[:], v)
	copy(ra[:], finalize)
	return SCXFixed(&va, len(v), &ra, len(finalize), fld, old, new)
}

// SCXFixed is the slice-free SCX entry point: v holds the first nv linked
// LLX results and finalize the first nf records to finalize, both staged in
// caller-owned fixed-capacity arrays (typically on the caller's stack). The
// contract is exactly SCX's. nv must be in [1, MaxV] and nf in [0, nv];
// out-of-range lengths panic, since they indicate an update whose V sequence
// does not fit the inline descriptor storage (raise MaxV if a new data
// structure legitimately needs a larger update).
func SCXFixed[P DataRecord[N], N any](v *[MaxV]Linked[N], nv int, finalize *[MaxV]P, nf int, fld *atomic.Pointer[N], old, new *N) bool {
	if nv < 1 || nv > MaxV || nf < 0 || nf > nv {
		panic("llxscx: SCXFixed sequence lengths out of range")
	}
	d := &descriptor[N]{
		nV:    nv,
		nMark: nf,
		fld:   fld,
		old:   old,
		new:   new,
	}
	for i := 0; i < nv; i++ {
		d.recs[i] = v[i].rec
		d.infos[i] = v[i].info
	}
	for i := 0; i < nf; i++ {
		d.toMark[i] = finalize[i].LLXRecord()
	}
	d.state.Store(stateInProgress)
	return help(d)
}

// VLX returns true if none of the records in v have changed since the linked
// LLXs that produced their evidence. It can be used to obtain an atomic
// snapshot of a set of Data-records. Unlike SCX, VLX accepts sequences of
// any length (ordered-query spine validations can be as long as the tree is
// tall); VLXFixed is the bounded-array variant for update-sized sequences.
func VLX[N any](v []Linked[N]) bool {
	for i := range v {
		if !validateOne(&v[i]) {
			return false
		}
	}
	return true
}

// VLXFixed is the slice-free VLX entry point over the first n elements of a
// caller-owned fixed-capacity array. n must be in [0, MaxV].
func VLXFixed[N any](v *[MaxV]Linked[N], n int) bool {
	if n < 0 || n > MaxV {
		panic("llxscx: VLXFixed sequence length out of range")
	}
	for i := 0; i < n; i++ {
		if !validateOne(&v[i]) {
			return false
		}
	}
	return true
}

// validateOne checks a single linked LLX: the record's descriptor must be
// the one the LLX observed. On mismatch it helps any in-progress SCX along
// (to preserve progress) and reports failure.
func validateOne[N any](lk *Linked[N]) bool {
	cur := lk.rec.info.Load()
	if cur != lk.info {
		// Optional help (see the matching site in LLX): chaos may skip it.
		if cur != nil && cur.state.Load() == stateInProgress && !sched.ChaosDropHelp() {
			help(cur)
		}
		return false
	}
	return true
}

// help completes (or aborts) the SCX described by d. It may be called by the
// initiating process or by any process that encounters the descriptor. It
// returns true if the SCX committed.
//
// For pooled descriptors the freezing loop also maintains the reference
// counts: the helper whose CAS installs d into a record accounts one
// reference on d (taken before the CAS, undone if the CAS fails, so the
// count never under-shoots) and drops the reference held by the displaced
// descriptor, which was installed in that record until this very CAS.
func help[N any](d *descriptor[N]) bool {
	// Freeze every record in V by installing d in its info field.
	pooled := d.pool != nil
	for i := 0; i < d.nV; i++ {
		rec := d.recs[i]
		if sched.DropFreeze() && i == 0 {
			// Seeded protocol mutation (armed only under -tags sched by the
			// checker self-tests): skip the freezing CAS on the first record
			// of V, exactly the bug the freeze-everything-before-committing
			// step of the protocol exists to prevent.
			continue
		}
		sched.Point(sched.PointSCXFreeze)
		if pooled {
			d.refs.Add(1)
		}
		if rec.info.CompareAndSwap(d.infos[i], d) {
			// This helper won the install: release the displaced
			// descriptor's install reference (exactly once per record).
			if old := d.infos[i]; old != nil && old.pool != nil {
				old.release()
			}
		} else {
			if pooled {
				d.refs.Add(-1)
			}
			if rec.info.Load() != d {
				// Could not freeze rec because another SCX owns it. If all
				// records were already frozen by some helper, the SCX has
				// committed; otherwise it must abort.
				if d.allFrozen.Load() {
					return true
				}
				d.state.Store(stateAborted)
				return false
			}
		}
	}
	// All records in V are frozen for d.
	d.allFrozen.Store(true)
	sched.Point(sched.PointSCXMark)
	for i := 0; i < d.nMark; i++ {
		d.toMark[i].marked.Store(true)
	}
	if pooled && d.pool.OnCommit != nil {
		// Ordered before the update CAS: new is stamped by the hook before it
		// can ever be read out of a mutable field, so any later update whose
		// evidence (or search path) depends on this one necessarily stamps
		// after it. This is what makes the version ticks of the snapshot
		// layer monotone along structural dependencies, and what makes
		// "visible through a field" imply "already counted by the version
		// counter" (DESIGN.md, "Versioned snapshots").
		d.pool.OnCommit(d.fld, d.old, d.new)
	}
	sched.Point(sched.PointSCXUpdate)
	d.fld.CompareAndSwap(d.old, d.new)
	if pooled && d.pool.OnCommit != nil && d.pool.OnInstalled != nil {
		// Paired with the OnCommit call above: after this helper's CAS
		// attempt the new subtree is reachable (its own CAS landed, or an
		// earlier helper's did — the frozen records admit no other writer).
		d.pool.OnInstalled()
	}
	sched.Point(sched.PointSCXCommit)
	d.state.Store(stateCommitted)
	return true
}
