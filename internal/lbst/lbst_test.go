package lbst

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/epoch"
)

// intNode abbreviates the engine's node type at the test's instantiation.
type intNode = Node[int64, int64]

func intLess(a, b int64) bool { return a < b }

// nopPolicy is the minimal policy: no decoration, no violations.
type nopPolicy struct{}

func (nopPolicy) Name() string                                 { return "nop" }
func (nopPolicy) InternalDeco() int64                          { return 0 }
func (nopPolicy) CreatesViolation(_, _, _ *intNode) bool       { return false }
func (nopPolicy) Violation(*intNode) bool                      { return false }
func (nopPolicy) Rebalance(_ *epoch.Guard, _, _ *intNode) bool { return false }

// probePolicy records the engine's policy callbacks so the tests can verify
// the engine honours the contract: CreatesViolation is consulted after every
// structural change and a true return triggers a cleanup pass that consults
// Violation along the key's search path.
type probePolicy struct {
	created   atomic.Int64
	violation atomic.Int64
}

func (p *probePolicy) Name() string        { return "probe" }
func (p *probePolicy) InternalDeco() int64 { return 7 }
func (p *probePolicy) CreatesViolation(parent, oldChild, newChild *intNode) bool {
	p.created.Add(1)
	return true
}
func (p *probePolicy) Violation(n *intNode) bool {
	p.violation.Add(1)
	return false
}
func (p *probePolicy) Rebalance(_ *epoch.Guard, _, _ *intNode) bool { return false }

func TestEngineDictionarySemantics(t *testing.T) {
	tr := New[int64, int64](intLess, nopPolicy{})
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		key := rng.Int63n(250)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("op %d: Insert(%d) mismatch", i, key)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("op %d: Delete(%d) mismatch", i, key)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("op %d: Get(%d) mismatch", i, key)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	if err := tr.CheckStructure(); err != nil {
		t.Fatalf("CheckStructure: %v", err)
	}
}

func TestEnginePolicyHooks(t *testing.T) {
	pol := &probePolicy{}
	tr := New[int64, int64](intLess, pol)
	// A fresh insert is a structural change below the top sentinel: the
	// engine must consult CreatesViolation and, on true, run a cleanup pass.
	tr.Insert(10, 1)
	if pol.created.Load() != 1 {
		t.Fatalf("CreatesViolation calls after fresh insert = %d, want 1", pol.created.Load())
	}
	// A value-replacing insert is not a structural change.
	tr.Insert(10, 2)
	if pol.created.Load() != 1 {
		t.Fatalf("CreatesViolation consulted for a value-only insert")
	}
	// The internal node created by the insert below carries the policy
	// decoration.
	tr.Insert(20, 3)
	if pol.created.Load() != 2 {
		t.Fatalf("CreatesViolation calls after second insert = %d, want 2", pol.created.Load())
	}
	root := tr.Root()
	if root == nil || root.Deco != 7 {
		t.Fatalf("internal node decoration = %v, want 7", root)
	}
	if pol.violation.Load() == 0 {
		t.Fatal("cleanup pass never consulted Violation")
	}
	// Deleting one of two keys promotes the sibling; structural change again.
	before := pol.created.Load()
	tr.Delete(10)
	if pol.created.Load() != before+1 {
		t.Fatalf("CreatesViolation calls after delete = %d, want %d", pol.created.Load(), before+1)
	}
	// Deleting an absent key changes nothing.
	tr.Delete(99)
	if pol.created.Load() != before+1 {
		t.Fatalf("CreatesViolation consulted for a no-op delete")
	}
}

func TestEngineOrderedQueriesUnderConcurrency(t *testing.T) {
	tr := New[int64, int64](intLess, nopPolicy{})
	const keyRange = 512
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(keyRange)
				if rng.Intn(2) == 0 {
					tr.Insert(key, key)
				} else {
					tr.Delete(key)
				}
			}
		}(g)
	}
	// Ordered queries must always return keys consistent with their
	// contract even while the tree churns: Successor(k) > k, Predecessor(k)
	// < k, and returned values match the key (writers always store v = k).
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		key := rng.Int63n(keyRange)
		if k, v, ok := tr.Successor(key); ok {
			if k <= key || v != k {
				t.Fatalf("Successor(%d) = (%d,%d)", key, k, v)
			}
		}
		if k, v, ok := tr.Predecessor(key); ok {
			if k >= key || v != k {
				t.Fatalf("Predecessor(%d) = (%d,%d)", key, k, v)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := tr.CheckStructure(); err != nil {
		t.Fatalf("CheckStructure at quiescence: %v", err)
	}
}

// genPolicy is the trivial policy at an arbitrary instantiation, used by
// the construction tests below.
type genPolicy[K, V any] struct{}

func (genPolicy[K, V]) Name() string                                    { return "nop" }
func (genPolicy[K, V]) InternalDeco() int64                             { return 0 }
func (genPolicy[K, V]) CreatesViolation(_, _, _ *Node[K, V]) bool       { return false }
func (genPolicy[K, V]) Violation(*Node[K, V]) bool                      { return false }
func (genPolicy[K, V]) Rebalance(_ *epoch.Guard, _, _ *Node[K, V]) bool { return false }

// TestNewOrderedInstallsSpecializedSearch pins the constructor-time search
// selection: int64 trees get the generic cmp.Ordered specialization, string
// trees the concrete string one, and both must behave identically to the
// comparator-based loop.
func TestNewOrderedInstallsSpecializedSearch(t *testing.T) {
	if _, specialized := orderedSearchFor[string, int64](); !specialized {
		t.Fatal("orderedSearchFor[string, V] did not select searchString")
	}
	if _, specialized := orderedSearchFor[int64, int64](); specialized {
		t.Fatal("orderedSearchFor[int64, V] selected the string specialization")
	}
	// The specialized search must agree with the comparator-based loop.
	st := NewOrdered[string, int64](genPolicy[string, int64]{})
	lt := New[string, int64](func(a, b string) bool { return a < b }, genPolicy[string, int64]{})
	keys := []string{"b", "a", "c/long", "c", "aa", ""}
	for i, k := range keys {
		st.Insert(k, int64(i))
		lt.Insert(k, int64(i))
	}
	for _, k := range append(keys, "zz", "ab") {
		sv, sok := st.Get(k)
		lv, lok := lt.Get(k)
		if sv != lv || sok != lok {
			t.Fatalf("Get(%q): specialized (%d,%v), comparator (%d,%v)", k, sv, sok, lv, lok)
		}
	}
}
