package lbst

import (
	"repro/internal/core"
	"repro/internal/epoch"
	"repro/internal/llxscx"
)

// This file implements the ordered queries of Section 5.5 of the paper -
// Successor and Predecessor - generically, so that every leaf-oriented BST
// in the repository (the engine's own trees and the chromatic tree, whose
// update path stays hand-unrolled) shares one implementation, whatever its
// key and value types.
//
// Both queries perform an ordinary BST search using LLX to read child
// pointers; if the leaf reached already answers the query it is returned
// directly (it was linearized while on the search path), otherwise the
// neighbouring leaf is located and a VLX over the connecting path validates
// that the two leaves were adjacent in the tree at a single point in time.
// Min and Max walk to the outermost leaf with LLXs and validate the whole
// spine with one VLX, so no "smallest possible key" sentinel value is ever
// needed - which is what lets the queries work for arbitrary key types.

// View is the read-only shape a leaf-oriented BST node must expose to share
// the engine's traversal helpers. The node type remains free to lay out its
// fields however it likes (the chromatic tree keeps its weight field; the
// engine's Node carries the policy decoration).
type View[N, K, V any] interface {
	llxscx.DataRecord[N]
	// Key returns the routing key (internal nodes) or dictionary key
	// (leaves); ignored for sentinels.
	Key() K
	// Value returns the associated value (leaves only).
	Value() V
	// IsLeaf reports whether the node is a leaf.
	IsLeaf() bool
	// IsSentinel reports whether the node's key reads as +infinity.
	IsSentinel() bool
}

func viewLess[P View[N, K, V], N, K, V any](less func(K, K) bool, key K, n P) bool {
	return n.IsSentinel() || less(key, n.Key())
}

// genOf reads n's reclamation generation for the poisoning assertions.
// Compiled out unless -tags reclaimcheck; the type assertion tolerates node
// types without a generation counter.
func genOf[P View[N, K, V], N, K, V any](n P) uint64 {
	if !epoch.PoisonCheck {
		return 0
	}
	if gn, ok := any(n).(interface{ Gen() uint64 }); ok {
		return gn.Gen()
	}
	return 0
}

// assertGen panics if a node's generation changed while the (pinned) query
// held it: the reclamation layer recycled memory a reader could still reach,
// which the grace-period argument in DESIGN.md says must never happen.
func assertGen[P View[N, K, V], N, K, V any](n P, g0 uint64) {
	if epoch.PoisonCheck && genOf[P, N, K, V](n) != g0 {
		panic("lbst: node recycled under a pinned reader (reclaimcheck)")
	}
}

// pathBufCap is the capacity of the stack buffer each ordered query reuses
// for its validation path across retries and descent steps. It comfortably
// covers the height of a balanced tree with millions of keys; a deeper walk
// (possible only in the unbalanced EBST) falls back to append's heap growth
// instead of failing. Each query function allocates the buffer once on its
// own frame, so steady-state queries generate no garbage per retry.
const pathBufCap = 48

// Successor returns the smallest key strictly greater than key together
// with its value, or ok=false if no such key exists. entry must be the
// sentinel entry point of the tree and less its key comparator.
func Successor[P View[N, K, V], N, K, V any](entry P, less func(K, K) bool, key K) (k K, v V, ok bool) {
	var buf [pathBufCap]llxscx.Linked[N]
	path := buf[:0]
	// Every retry means an LLX or the VLX lost to a concurrent update on the
	// connecting path; back off (bounded, randomized, growing with the retry
	// count) before re-walking so queries make progress under heavy update
	// load instead of re-validating a path that keeps changing.
retry:
	for attempt := 0; ; attempt++ {
		core.BackoffWait(attempt)
		path = path[:0]
		var lkLastLeft llxscx.Linked[N]
		haveLastLeft := false

		var nilNode P
		l := entry
		for !l.IsLeaf() {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			if viewLess(less, key, l) {
				lkLastLeft = lk
				haveLastLeft = true
				path = path[:0]
				path = append(path, lk)
				l = lk.Child(0)
			} else {
				path = append(path, lk)
				l = lk.Child(1)
			}
			if l == nilNode {
				continue retry
			}
		}
		// The search for key always turns left at the sentinels, so lastLeft
		// exists; if it is the entry node itself the dictionary is empty.
		if !haveLastLeft || lkLastLeft.Node() == (*N)(entry) {
			return k, v, false
		}
		if viewLess(less, key, l) {
			// The leaf reached holds a key strictly greater than key, so it
			// is the successor (linearized while it was on the search path).
			if l.IsSentinel() {
				return k, v, false
			}
			g0 := genOf[P, N, K, V](l)
			k, v = l.Key(), l.Value()
			assertGen(l, g0)
			return k, v, true
		}
		// Otherwise the successor is the leftmost leaf of lastLeft's right
		// subtree. Walk down to it with LLXs and validate the whole
		// connecting path with a VLX.
		succ := P(lkLastLeft.Child(1))
		if succ == nilNode {
			continue retry
		}
		for !succ.IsLeaf() {
			lk, st := llxscx.LLX(succ)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			succ = lk.Child(0)
			if succ == nilNode {
				continue retry
			}
		}
		g0 := genOf[P, N, K, V](succ)
		if !llxscx.VLX(path) {
			continue retry
		}
		if succ.IsSentinel() {
			return k, v, false
		}
		k, v = succ.Key(), succ.Value()
		assertGen(succ, g0)
		return k, v, true
	}
}

// Predecessor returns the largest key strictly smaller than key together
// with its value, or ok=false if no such key exists. entry must be the
// sentinel entry point of the tree and less its key comparator.
func Predecessor[P View[N, K, V], N, K, V any](entry P, less func(K, K) bool, key K) (k K, v V, ok bool) {
	var buf [pathBufCap]llxscx.Linked[N]
	path := buf[:0]
retry:
	for attempt := 0; ; attempt++ {
		core.BackoffWait(attempt)
		path = path[:0]
		var lkLastRight llxscx.Linked[N]
		haveLastRight := false

		var nilNode P
		l := entry
		for !l.IsLeaf() {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			if viewLess(less, key, l) {
				path = append(path, lk)
				l = lk.Child(0)
			} else {
				lkLastRight = lk
				haveLastRight = true
				path = path[:0]
				path = append(path, lk)
				l = lk.Child(1)
			}
			if l == nilNode {
				continue retry
			}
		}
		if !l.IsSentinel() && less(l.Key(), key) {
			// The leaf reached holds a key strictly smaller than key, so it
			// is the predecessor.
			g0 := genOf[P, N, K, V](l)
			k, v = l.Key(), l.Value()
			assertGen(l, g0)
			return k, v, true
		}
		if !haveLastRight {
			// The search never turned right: every key in the dictionary is
			// greater than or equal to key.
			return k, v, false
		}
		// The predecessor is the rightmost leaf of lastRight's left subtree.
		pred := P(lkLastRight.Child(0))
		if pred == nilNode {
			continue retry
		}
		for !pred.IsLeaf() {
			lk, st := llxscx.LLX(pred)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			pred = lk.Child(1)
			if pred == nilNode {
				continue retry
			}
		}
		g0 := genOf[P, N, K, V](pred)
		if !llxscx.VLX(path) {
			continue retry
		}
		if pred.IsSentinel() {
			return k, v, false
		}
		k, v = pred.Key(), pred.Value()
		assertGen(pred, g0)
		return k, v, true
	}
}

// RangeScan calls fn for every key in [lo, hi] in ascending order, using a
// point probe for lo followed by repeated Successor queries. It returns the
// number of keys visited. If fn returns false the scan stops early. The
// scan is not atomic as a whole: each step is individually linearizable.
func RangeScan[P View[N, K, V], N, K, V any](entry P, less func(K, K) bool, lo, hi K, fn func(k K, v V) bool) int {
	count := 0
	// The first key in range is lo itself if present, else lo's successor;
	// no "lo - 1" arithmetic, so the scan works for any key type.
	k, v, ok := findLeaf(entry, less, lo)
	if !ok {
		k, v, ok = Successor(entry, less, lo)
	}
	for ok && !less(hi, k) {
		count++
		if !fn(k, v) {
			return count
		}
		k, v, ok = Successor(entry, less, k)
	}
	return count
}

// Ascend calls fn for every key in the dictionary in ascending order, using
// Min followed by repeated Successor queries. It returns the number of keys
// visited. If fn returns false the scan stops early. Each step is
// individually linearizable.
func Ascend[P View[N, K, V], N, K, V any](entry P, less func(K, K) bool, fn func(k K, v V) bool) int {
	count := 0
	k, v, ok := Min[P, N, K, V](entry)
	for ok {
		count++
		if !fn(k, v) {
			return count
		}
		k, v, ok = Successor(entry, less, k)
	}
	return count
}

// Min returns the smallest key in the dictionary and its value, or ok=false
// if the dictionary is empty. It walks to the leftmost leaf with LLXs and
// validates the spine with a VLX, so the result is linearizable. Because K
// and V only appear in the constraint and results, call sites must
// instantiate the type parameters explicitly.
func Min[P View[N, K, V], N, K, V any](entry P) (k K, v V, ok bool) {
	var buf [pathBufCap]llxscx.Linked[N]
	path := buf[:0]
retry:
	for attempt := 0; ; attempt++ {
		core.BackoffWait(attempt)
		path = path[:0]
		var nilNode P
		l := entry
		for !l.IsLeaf() {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			l = lk.Child(0)
			if l == nilNode {
				continue retry
			}
		}
		g0 := genOf[P, N, K, V](l)
		if !llxscx.VLX(path) {
			continue retry
		}
		if l.IsSentinel() {
			// The leftmost leaf is the sentinel leaf: the dictionary is empty.
			return k, v, false
		}
		k, v = l.Key(), l.Value()
		assertGen(l, g0)
		return k, v, true
	}
}

// Max returns the largest key in the dictionary and its value, or ok=false
// if the dictionary is empty. The rightmost spine of the entry structure
// ends at a sentinel leaf, so Max walks to the rightmost leaf of the tree
// proper (the left subtree below the top sentinel), which contains no
// sentinels. Like Min it validates the whole spine with a VLX and requires
// explicit instantiation.
func Max[P View[N, K, V], N, K, V any](entry P) (k K, v V, ok bool) {
	var buf [pathBufCap]llxscx.Linked[N]
	path := buf[:0]
retry:
	for attempt := 0; ; attempt++ {
		core.BackoffWait(attempt)
		path = path[:0]
		var nilNode P
		lkE, st := llxscx.LLX(entry)
		if st != llxscx.Snapshot {
			continue retry
		}
		path = append(path, lkE)
		top := P(lkE.Child(0))
		if top == nilNode {
			continue retry
		}
		if top.IsLeaf() {
			// Figure 10(a): the dictionary is empty.
			if !llxscx.VLX(path) {
				continue retry
			}
			return k, v, false
		}
		lkTop, st := llxscx.LLX(top)
		if st != llxscx.Snapshot {
			continue retry
		}
		path = append(path, lkTop)
		l := P(lkTop.Child(0))
		if l == nilNode {
			continue retry
		}
		for !l.IsLeaf() {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			l = lk.Child(1)
			if l == nilNode {
				continue retry
			}
		}
		g0 := genOf[P, N, K, V](l)
		if !llxscx.VLX(path) {
			continue retry
		}
		if l.IsSentinel() {
			continue retry
		}
		k, v = l.Key(), l.Value()
		assertGen(l, g0)
		return k, v, true
	}
}

// findLeaf performs a plain-read search for key and reports its value if a
// leaf holding exactly key is reached.
func findLeaf[P View[N, K, V], N, K, V any](entry P, less func(K, K) bool, key K) (k K, v V, ok bool) {
	var nilNode P
	l := entry
	for !l.IsLeaf() {
		var next P
		if viewLess(less, key, l) {
			next = P(l.Mutable(0).Load())
		} else {
			next = P(l.Mutable(1).Load())
		}
		if next == nilNode {
			return k, v, false
		}
		l = next
	}
	if !l.IsSentinel() && !less(key, l.Key()) && !less(l.Key(), key) {
		return l.Key(), l.Value(), true
	}
	return k, v, false
}
