package lbst

import "repro/internal/llxscx"

// This file implements the ordered queries of Section 5.5 of the paper -
// Successor and Predecessor - generically, so that every leaf-oriented BST
// in the repository (the engine's own trees and the chromatic tree, whose
// update path stays hand-unrolled) shares one implementation.
//
// Both queries perform an ordinary BST search using LLX to read child
// pointers; if the leaf reached already answers the query it is returned
// directly (it was linearized while on the search path), otherwise the
// neighbouring leaf is located and a VLX over the connecting path validates
// that the two leaves were adjacent in the tree at a single point in time.

// View is the read-only shape a leaf-oriented BST node must expose to share
// the engine's traversal helpers. The node type remains free to lay out its
// fields however it likes (the chromatic tree keeps its weight field; the
// engine's Node carries the policy decoration).
type View[N any] interface {
	llxscx.DataRecord[N]
	// Key returns the routing key (internal nodes) or dictionary key
	// (leaves); ignored for sentinels.
	Key() int64
	// Value returns the associated value (leaves only).
	Value() int64
	// IsLeaf reports whether the node is a leaf.
	IsLeaf() bool
	// IsSentinel reports whether the node's key reads as +infinity.
	IsSentinel() bool
}

func viewLess[P View[N], N any](key int64, n P) bool {
	return n.IsSentinel() || key < n.Key()
}

// Successor returns the smallest key strictly greater than key together
// with its value, or ok=false if no such key exists. entry must be the
// sentinel entry point of the tree.
func Successor[P View[N], N any](entry P, key int64) (k, v int64, ok bool) {
retry:
	for {
		var path []llxscx.Linked[N]
		var lkLastLeft llxscx.Linked[N]
		haveLastLeft := false

		var nilNode P
		l := entry
		for !l.IsLeaf() {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			if viewLess(key, l) {
				lkLastLeft = lk
				haveLastLeft = true
				path = path[:0]
				path = append(path, lk)
				l = lk.Child(0)
			} else {
				path = append(path, lk)
				l = lk.Child(1)
			}
			if l == nilNode {
				continue retry
			}
		}
		// The search for key always turns left at the sentinels, so lastLeft
		// exists; if it is the entry node itself the dictionary is empty.
		if !haveLastLeft || lkLastLeft.Node() == (*N)(entry) {
			return 0, 0, false
		}
		if viewLess(key, l) {
			// The leaf reached holds a key strictly greater than key, so it
			// is the successor (linearized while it was on the search path).
			if l.IsSentinel() {
				return 0, 0, false
			}
			return l.Key(), l.Value(), true
		}
		// Otherwise the successor is the leftmost leaf of lastLeft's right
		// subtree. Walk down to it with LLXs and validate the whole
		// connecting path with a VLX.
		succ := P(lkLastLeft.Child(1))
		if succ == nilNode {
			continue retry
		}
		for !succ.IsLeaf() {
			lk, st := llxscx.LLX(succ)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			succ = lk.Child(0)
			if succ == nilNode {
				continue retry
			}
		}
		if !llxscx.VLX(path) {
			continue retry
		}
		if succ.IsSentinel() {
			return 0, 0, false
		}
		return succ.Key(), succ.Value(), true
	}
}

// Predecessor returns the largest key strictly smaller than key together
// with its value, or ok=false if no such key exists. entry must be the
// sentinel entry point of the tree.
func Predecessor[P View[N], N any](entry P, key int64) (k, v int64, ok bool) {
retry:
	for {
		var path []llxscx.Linked[N]
		var lkLastRight llxscx.Linked[N]
		haveLastRight := false

		var nilNode P
		l := entry
		for !l.IsLeaf() {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			if viewLess(key, l) {
				path = append(path, lk)
				l = lk.Child(0)
			} else {
				lkLastRight = lk
				haveLastRight = true
				path = path[:0]
				path = append(path, lk)
				l = lk.Child(1)
			}
			if l == nilNode {
				continue retry
			}
		}
		if !l.IsSentinel() && l.Key() < key {
			// The leaf reached holds a key strictly smaller than key, so it
			// is the predecessor.
			return l.Key(), l.Value(), true
		}
		if !haveLastRight {
			// The search never turned right: every key in the dictionary is
			// greater than or equal to key.
			return 0, 0, false
		}
		// The predecessor is the rightmost leaf of lastRight's left subtree.
		pred := P(lkLastRight.Child(0))
		if pred == nilNode {
			continue retry
		}
		for !pred.IsLeaf() {
			lk, st := llxscx.LLX(pred)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			pred = lk.Child(1)
			if pred == nilNode {
				continue retry
			}
		}
		if !llxscx.VLX(path) {
			continue retry
		}
		if pred.IsSentinel() {
			return 0, 0, false
		}
		return pred.Key(), pred.Value(), true
	}
}

// RangeScan calls fn for every key in [lo, hi] in ascending order, using
// repeated Successor queries. It returns the number of keys visited. If fn
// returns false the scan stops early. The scan is not atomic as a whole:
// each step is individually linearizable.
func RangeScan[P View[N], N any](entry P, lo, hi int64, fn func(k, v int64) bool) int {
	count := 0
	k := lo - 1
	if lo == -1<<63 {
		// Avoid underflow: probe the minimum directly.
		if key, v, ok := Min(entry); ok && key <= hi {
			if !fn(key, v) {
				return 1
			}
			count++
			k = key
		} else {
			return 0
		}
	}
	for {
		key, v, ok := Successor(entry, k)
		if !ok || key > hi {
			return count
		}
		count++
		if !fn(key, v) {
			return count
		}
		k = key
	}
}

// Min returns the smallest key in the dictionary and its value, or ok=false
// if the dictionary is empty.
func Min[P View[N], N any](entry P) (k, v int64, ok bool) {
	return Successor(entry, -1<<63)
}

// Max returns the largest key in the dictionary and its value, or ok=false
// if the dictionary is empty. (Sentinel keys are treated as +infinity and
// are never returned.)
func Max[P View[N], N any](entry P) (k, v int64, ok bool) {
	// All real keys are strictly below the sentinels, so Predecessor of the
	// largest representable key finds the maximum unless that key itself is
	// stored; check it first.
	const top = 1<<63 - 1
	if key, value, found := findLeaf(entry, top); found {
		return key, value, true
	}
	return Predecessor(entry, top)
}

// findLeaf performs a plain-read search for key and reports its value if a
// leaf holding exactly key is reached.
func findLeaf[P View[N], N any](entry P, key int64) (int64, int64, bool) {
	var nilNode P
	l := entry
	for !l.IsLeaf() {
		var next P
		if viewLess(key, l) {
			next = P(l.Mutable(0).Load())
		} else {
			next = P(l.Mutable(1).Load())
		}
		if next == nilNode {
			return 0, 0, false
		}
		l = next
	}
	if !l.IsSentinel() && l.Key() == key {
		return l.Key(), l.Value(), true
	}
	return 0, 0, false
}
