package lbst

import (
	"errors"
	"fmt"
)

// CheckStructure verifies the structural invariants every tree built on the
// engine must satisfy, independent of its balancing policy:
//
//   - the sentinel structure at the top of the tree is intact;
//   - every internal node has exactly two children and every leaf none;
//   - leaves carry decoration 0 (the decoration is policy state for
//     internal nodes only);
//   - keys satisfy the leaf-oriented BST order under the tree's comparator
//     (left subtree strictly smaller than the routing key, right subtree
//     greater or equal);
//   - no reachable node has been finalized.
//
// It must only be called at quiescence. It returns nil if all invariants
// hold. Policy-specific balance invariants (for example the relaxed AVL's
// height bookkeeping) are checked by the concrete tree packages.
func (t *Tree[K, V]) CheckStructure() error {
	top := t.entry.left.Load()
	if top == nil {
		return errors.New("entry has no left child")
	}
	if !top.Inf {
		return fmt.Errorf("node below entry is not a sentinel (key %v)", top.K)
	}
	if t.entry.Marked() || top.Marked() {
		return errors.New("a sentinel node is finalized")
	}
	if top.Leaf {
		return nil // empty dictionary: Figure 10(a)
	}
	right := top.right.Load()
	if right == nil || !right.Leaf || !right.Inf {
		return errors.New("right child of the sentinel internal node is not the sentinel leaf")
	}
	root := top.left.Load()
	if root == nil {
		return errors.New("sentinel internal node has no left child")
	}
	type bound struct {
		lo, hi K
		hasLo  bool
		hasHi  bool
	}
	var walk func(parent, n *Node[K, V], b bound) error
	walk = func(parent, n *Node[K, V], b bound) error {
		if n == nil {
			return fmt.Errorf("internal node %v has a nil child", parent.K)
		}
		if n.Marked() {
			return fmt.Errorf("reachable node with key %v is finalized", n.K)
		}
		if n.Leaf {
			if n.left.Load() != nil || n.right.Load() != nil {
				return fmt.Errorf("leaf %v has children", n.K)
			}
			if n.Deco != 0 {
				return fmt.Errorf("leaf %v has decoration %d, want 0", n.K, n.Deco)
			}
			if !n.Inf {
				if b.hasLo && t.less(n.K, b.lo) {
					return fmt.Errorf("leaf key %v below lower bound %v", n.K, b.lo)
				}
				if b.hasHi && !t.less(n.K, b.hi) {
					return fmt.Errorf("leaf key %v not below upper bound %v", n.K, b.hi)
				}
			}
			return nil
		}
		if n.Inf {
			return errors.New("sentinel internal node found inside the tree proper")
		}
		if b.hasLo && t.less(n.K, b.lo) {
			return fmt.Errorf("routing key %v below lower bound %v", n.K, b.lo)
		}
		if b.hasHi && t.less(b.hi, n.K) {
			return fmt.Errorf("routing key %v above upper bound %v", n.K, b.hi)
		}
		lb := b
		lb.hi, lb.hasHi = n.K, true
		if err := walk(n, n.left.Load(), lb); err != nil {
			return err
		}
		rb := b
		rb.lo, rb.hasLo = n.K, true
		return walk(n, n.right.Load(), rb)
	}
	return walk(top, root, bound{})
}
