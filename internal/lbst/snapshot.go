package lbst

import (
	"sync/atomic"

	"repro/internal/dict"
	"repro/internal/epoch"
	"repro/internal/sched"
)

// This file implements O(1) versioned snapshots for the engine's trees (and,
// through the same generic walk, the chromatic tree): Snapshot captures a
// frozen point-in-time view in constant time, and scans over the view walk
// plain pointers with zero VLX validation, zero retries and zero per-node
// CASes. The full safety argument lives in DESIGN.md ("Versioned
// snapshots"); the mechanism in brief:
//
//   - every committed SCX stamps the subtree root it installs with a commit
//     tick drawn from the tree's gver counter, and records the displaced
//     value of the field in the new node's prev link. Both happen in the
//     descriptor pool's OnCommit hook, BEFORE the update CAS, so a node
//     readable out of a mutable field is always already stamped — which
//     makes ticks monotone along structural dependencies and a captured
//     gver value a consistent cut of the update history;
//   - a snapshot is the pair (entry, ver = gver at capture). A walk resolves
//     every child pointer it loads: a node stamped after ver is rewound
//     through its prev chain to the version the snapshot captured. Fresh
//     interior nodes of an update are never stamped (only the CASed-in root
//     is); they carry no prev link and are accepted as-is, which is sound
//     because they are reachable only through their update's accepted root;
//   - values stay frozen because Insert's in-place overwrite fast path is
//     disabled while any snapshot is live (the overwrite becomes a
//     leaf-replacement SCX, which the resolution walk rewinds like any other
//     update), and capture drains in-flight fast-path publishes before it
//     reads gver;
//   - memory stays valid because capture registers a long-lived epoch pin
//     (epoch.SnapPin) before reading gver: every node the snapshot can reach
//     that is later retired was retired after the pin registered, so its
//     grace period parks it behind the pin instead of recycling it.
//
// Under -tags noepoch the commit hook never runs and nothing is stamped;
// Snapshot degrades to a weakly consistent live view (Consistent reports
// false), matching the garbage-collected fallback semantics elsewhere.

// VersionedView is the shape a node must expose for frozen-version walks, on
// top of the traversal View: its commit tick and previous-version link.
type VersionedView[N, K, V any] interface {
	View[N, K, V]
	// SnapVer returns the node's commit tick; nodes never installed as an
	// update's subtree root report either 0 (pre-reclamation construction)
	// or the pending marker (fresh interiors), both handled by resolve.
	SnapVer() uint64
	// SnapPrev returns the value the field that installed this node held
	// immediately before, or nil.
	SnapPrev() *N
}

// resolve rewinds a just-loaded child pointer to the version a snapshot
// captured: nodes stamped after ver are stepped back through their prev
// chain. A node without a prev link is accepted as-is — it is either ancient
// (tick 0), or a fresh unstamped interior of an update whose root the walk
// already accepted. The epoch pin held by the snapshot guarantees every node
// on the chain is still valid memory (see the capture argument in DESIGN.md).
func resolve[P VersionedView[N, K, V], N, K, V any](c P, ver uint64) P {
	var nilNode P
	for c != nilNode {
		if c.SnapVer() <= ver {
			return c
		}
		p := P(c.SnapPrev())
		if p == nilNode {
			return c
		}
		c = p
	}
	return nilNode
}

// Snap is a frozen point-in-time view of a versioned tree. It implements
// dict.SnapshotView and dict.Differ. The zero value is not meaningful; views
// are produced by the trees' Snapshot methods.
type Snap[P VersionedView[N, K, V], N, K, V any] struct {
	entry P
	less  func(K, K) bool
	ver   uint64
	// pin is the long-lived epoch registration keeping reachable retired
	// nodes parked; nil under -tags noepoch.
	pin *epoch.SnapGuard
	// live points at the owning tree's live-snapshot counter, decremented on
	// Release to re-enable the in-place overwrite fast path.
	live     *atomic.Int64
	released atomic.Bool
}

// Version returns the capture's commit tick.
func (s *Snap[P, N, K, V]) Version() uint64 { return s.ver }

// Consistent reports whether the view is frozen: true except under
// -tags noepoch, where snapshots degrade to live views.
func (s *Snap[P, N, K, V]) Consistent() bool { return s.pin != nil }

// Release ends the view's lifetime: it re-enables the source tree's in-place
// overwrite fast path and unpins the epoch layer, letting parked retirees
// recycle. Idempotent.
func (s *Snap[P, N, K, V]) Release() {
	if s.released.Swap(true) {
		return
	}
	if s.live != nil {
		s.live.Add(-1)
	}
	s.pin.Release()
}

// Get returns the value associated with key in the snapshot. Plain reads
// plus resolution only: no validation, no retries.
func (s *Snap[P, N, K, V]) Get(key K) (V, bool) {
	var zero V
	var nilNode P
	l := s.entry
	for !l.IsLeaf() {
		var c P
		if viewLess[P, N, K, V](s.less, key, l) {
			c = P(l.Mutable(0).Load())
		} else {
			c = P(l.Mutable(1).Load())
		}
		c = resolve(c, s.ver)
		if c == nilNode {
			return zero, false
		}
		l = c
	}
	if !l.IsSentinel() && !s.less(key, l.Key()) && !s.less(l.Key(), key) {
		return l.Value(), true
	}
	return zero, false
}

// RangeScan calls fn for every key in [lo, hi] in ascending order and
// returns the number of keys visited; if fn returns false the scan stops
// early. The whole scan observes the single capture point: one in-order walk
// with per-child resolution, never retrying.
func (s *Snap[P, N, K, V]) RangeScan(lo, hi K, fn func(k K, v V) bool) int {
	n, _ := s.walk(s.entry, true, lo, true, hi, fn)
	return n
}

// Ascend calls fn for every key in ascending order and returns the number of
// keys visited; if fn returns false the scan stops early.
func (s *Snap[P, N, K, V]) Ascend(fn func(k K, v V) bool) int {
	var zero K
	n, _ := s.walk(s.entry, false, zero, false, zero, fn)
	return n
}

// walk is the bounded in-order traversal under resolution. Left subtrees
// hold keys strictly below the routing key, right subtrees the rest;
// sentinel internals route every real key left, so their right children
// (sentinel leaves, or the entry's nil right field) are pruned.
func (s *Snap[P, N, K, V]) walk(n P, useLo bool, lo K, useHi bool, hi K, fn func(k K, v V) bool) (int, bool) {
	var nilNode P
	if n == nilNode {
		return 0, true
	}
	if n.IsLeaf() {
		if n.IsSentinel() {
			return 0, true
		}
		k := n.Key()
		if (useLo && s.less(k, lo)) || (useHi && s.less(hi, k)) {
			return 0, true
		}
		if !fn(k, n.Value()) {
			return 1, false
		}
		return 1, true
	}
	count := 0
	if !useLo || n.IsSentinel() || s.less(lo, n.Key()) {
		c := resolve(P(n.Mutable(0).Load()), s.ver)
		cnt, cont := s.walk(c, useLo, lo, useHi, hi, fn)
		count += cnt
		if !cont {
			return count, false
		}
	}
	if !n.IsSentinel() && (!useHi || !s.less(hi, n.Key())) {
		c := resolve(P(n.Mutable(1).Load()), s.ver)
		cnt, cont := s.walk(c, useLo, lo, useHi, hi, fn)
		count += cnt
		if !cont {
			return count, false
		}
	}
	return count, true
}

// Diff implements dict.Differ: it calls fn for every key whose presence or
// value differs between s (the older view) and other, in ascending key
// order, and reports whether it handled the pair (false when other is not a
// view of the same tree, in which case dict.SnapshotDiff falls back to a
// scan merge). The walk descends the two versions in lockstep, pairing
// subtrees that span the same key interval: pointer-equal leaves are skipped
// without touching their values, pointer-equal internals and internals with
// equal routing keys descend pairwise, and only genuinely divergent regions
// are enumerated and merged. Exactness of the pointer-equal-leaf skip
// requires s to have been held live continuously since its capture (see
// dict.SnapshotDiff).
func (s *Snap[P, N, K, V]) Diff(other dict.SnapshotView[K, V], eq func(a, b V) bool, fn func(key K, oldV V, oldOK bool, newV V, newOK bool) bool) bool {
	o, ok := other.(*Snap[P, N, K, V])
	if !ok || o.entry != s.entry {
		return false
	}
	s.diffWalk(s.entry, o.entry, o, eq, fn)
	return true
}

type snapKV[K, V any] struct {
	k K
	v V
}

// diffWalk diffs two same-interval subtrees, a resolved under s.ver and b
// under o.ver. It returns false if fn stopped the diff.
func (s *Snap[P, N, K, V]) diffWalk(a, b P, o *Snap[P, N, K, V], eq func(V, V) bool, fn func(K, V, bool, V, bool) bool) bool {
	var nilNode P
	if a == b {
		if a == nilNode || a.IsLeaf() {
			// Pointer-equal leaves are value-equal: overwrites while either
			// snapshot was live went through leaf replacement.
			return true
		}
		lf, rf := a.Mutable(0), a.Mutable(1)
		if !s.diffWalk(resolve(P(lf.Load()), s.ver), resolve(P(lf.Load()), o.ver), o, eq, fn) {
			return false
		}
		return s.diffWalk(resolve(P(rf.Load()), s.ver), resolve(P(rf.Load()), o.ver), o, eq, fn)
	}
	if a != nilNode && b != nilNode && !a.IsLeaf() && !b.IsLeaf() && sameRouting(s.less, a, b) {
		if !s.diffWalk(resolve(P(a.Mutable(0).Load()), s.ver), resolve(P(b.Mutable(0).Load()), o.ver), o, eq, fn) {
			return false
		}
		return s.diffWalk(resolve(P(a.Mutable(1).Load()), s.ver), resolve(P(b.Mutable(1).Load()), o.ver), o, eq, fn)
	}
	// Divergent region: enumerate both sides and merge.
	var as, bs []snapKV[K, V]
	s.collect(a, s.ver, &as)
	s.collect(b, o.ver, &bs)
	i, j := 0, 0
	var zero V
	for i < len(as) || j < len(bs) {
		switch {
		case j == len(bs) || (i < len(as) && s.less(as[i].k, bs[j].k)):
			if !fn(as[i].k, as[i].v, true, zero, false) {
				return false
			}
			i++
		case i == len(as) || s.less(bs[j].k, as[i].k):
			if !fn(bs[j].k, zero, false, bs[j].v, true) {
				return false
			}
			j++
		default:
			if !eq(as[i].v, bs[j].v) {
				if !fn(as[i].k, as[i].v, true, bs[j].v, true) {
					return false
				}
			}
			i++
			j++
		}
	}
	return true
}

// sameRouting reports whether two internal nodes carry the same routing key
// (sentinels route identically by definition).
func sameRouting[P VersionedView[N, K, V], N, K, V any](less func(K, K) bool, a, b P) bool {
	if a.IsSentinel() || b.IsSentinel() {
		return a.IsSentinel() && b.IsSentinel()
	}
	return !less(a.Key(), b.Key()) && !less(b.Key(), a.Key())
}

// collect appends the (key, value) pairs of a resolved subtree in order.
func (s *Snap[P, N, K, V]) collect(n P, ver uint64, out *[]snapKV[K, V]) {
	var nilNode P
	if n == nilNode {
		return
	}
	if n.IsLeaf() {
		if !n.IsSentinel() {
			*out = append(*out, snapKV[K, V]{n.Key(), n.Value()})
		}
		return
	}
	s.collect(resolve(P(n.Mutable(0).Load()), ver), ver, out)
	if !n.IsSentinel() {
		s.collect(resolve(P(n.Mutable(1).Load()), ver), ver, out)
	}
}

// ---------------------------------------------------------------------------
// Tree-side capture.

// Snapshot captures the tree's current state in O(1) — independent of the
// dictionary's size — and returns its frozen view (one handle allocation).
// The view stays valid and unchanging under arbitrary concurrent updates
// until Release is called; holding it parks reclamation of the nodes it can
// reach (and disables the in-place overwrite fast path on this tree), so
// release views promptly. Under -tags noepoch the view degrades to a weakly
// consistent live view (Consistent reports false).
func (t *Tree[K, V]) Snapshot() dict.SnapshotView[K, V] {
	return t.snapshot()
}

// snapshot is Snapshot returning the concrete view type.
func (t *Tree[K, V]) snapshot() *Snap[*Node[K, V], Node[K, V], K, V] {
	return CaptureSnap[*Node[K, V], Node[K, V], K, V](t.entry, t.less, &t.gver, &t.snapLive, &t.fastWriters)
}

// CaptureSnap runs the capture protocol for any tree sharing the versioned
// walk (the engine's trees and the chromatic tree): entry and less identify
// the tree, gver its commit-tick counter, snapLive its live-snapshot count
// and fastWriters its in-flight fast-path overwrite count.
//
// Order matters. The pin registers first so every later retire parks behind
// it. snapLive rises next, the version is read, and only then do the
// in-flight publish windows drain. The drain-last order closes both races at
// once. Value cells: a fast-path overwrite that entered its bracket before
// snapLive rose has its Swap complete before the drain observes zero — i.e.
// before any read through the view — and every later overwrite sees
// snapLive != 0 and takes the leaf-replacement slow path, so captured values
// are frozen. Structure: a version tick at or below the captured gver was
// assigned inside a bracket opened before the gver read, so by the time the
// drain observes zero its update CAS has gone through — a covered node can
// never surface mid-capture and un-freeze the view. (Draining before the
// gver read has the opposite hole: a writer can open its bracket after the
// drain and still stamp at or below the version read afterwards.) Under
// -tags noepoch the returned view is a weakly consistent live view
// (Consistent reports false).
func CaptureSnap[P VersionedView[N, K, V], N, K, V any](entry P, less func(K, K) bool, gver *atomic.Uint64, snapLive, fastWriters *atomic.Int64) *Snap[P, N, K, V] {
	s := &Snap[P, N, K, V]{entry: entry, less: less}
	if !epoch.Enabled {
		s.ver = ^uint64(0) // accept every node: a live view
		return s
	}
	s.pin = epoch.SnapPin()
	snapLive.Add(1)
	s.live = snapLive
	sched.Point(sched.PointSnapPublish)
	s.ver = gver.Load()
	sched.WaitZero(sched.PointSnapDrain, fastWriters)
	return s
}

// Versions returns the commit ticks of the top-level subtree roots currently
// retained in the tree's bounded root forest, unordered. Observability and
// tests only: snapshot resolution does not consult the forest.
func (t *Tree[K, V]) Versions() []uint64 {
	var out []uint64
	for i := range t.roots {
		if n := t.roots[i].Load(); n != nil {
			out = append(out, n.snapVer.Load())
		}
	}
	return out
}
