// Package lbst is a reusable engine for non-blocking, leaf-oriented binary
// search trees built on the tree update template of internal/core.
//
// The engine owns everything that was previously duplicated between the
// unbalanced BST (internal/ebst) and the relaxed AVL tree (internal/ravl):
// the sentinel entry structure of Figure 10 of Brown, Ellen and Ruppert
// (PPoPP 2014), the leaf-oriented search loop, the construction of the
// insertion and deletion template updates (so postconditions PC1-PC9 are
// discharged once, here), the SCX-free in-place value overwrite for inserts
// on present keys (see Insert and the value-cell notes on Node and Copy),
// the post-update cleanup loop that drives rebalancing, and the ordered
// Successor/Predecessor queries with VLX validation (shared, in generic
// form, with internal/chromatic via query.go).
//
// The engine is generic over the key and value types. Only the search loop
// compares keys - exactly the paper's point about the template being
// key-type-agnostic - so a tree is ordered by a caller-supplied comparator
// less(a, b) reporting whether a is strictly ordered before b (see
// dict.Less). Keys a and b are equal exactly when !less(a, b) && !less(b, a).
//
// A concrete tree supplies a Policy: the meaning of the per-node balancing
// decoration, how to detect a violation of its balance condition, and a set
// of localized rebalancing steps (each itself a template update). The policy
// for the unbalanced BST is trivial - no decoration, no violations, no
// steps - which is exactly the paper's point about how little code a new
// template-based data structure needs. The relaxed AVL policy decorates
// nodes with heights and repairs violations with height fixes and rotations.
package lbst

import (
	"cmp"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/llxscx"
	"repro/internal/vcell"
)

// Node is a Data-record of a leaf-oriented BST: immutable key, leaf/sentinel
// flags and balancing decoration, plus the two mutable child pointers
// manipulated through LLX/SCX. Updates that need to change immutable data
// replace the node with a fresh copy, as the template requires.
//
// The value of a leaf is NOT part of the node's immutable data: it lives in
// a separately allocated vcell.Cell that sits outside the LLX snapshot
// evidence, so overwriting the value of a present key is a single atomic
// publish instead of a full SCX (see Insert). Every copy of a leaf - the
// deletion template promotes a copy of the sibling, and balancing policies
// copy nodes in their rebalancing steps - aliases the original's cell, which
// is what keeps a concurrent overwrite from being lost to a copy that
// captured the value just before the publish.
type Node[K, V any] struct {
	rec llxscx.Record[Node[K, V]]

	// K is the routing key (internal nodes) or dictionary key (leaves);
	// ignored when Inf is set.
	K K
	// val is the leaf's value cell, shared with every copy of the leaf; nil
	// on internal nodes and sentinel leaves (which read as the zero value).
	// The pointer itself is immutable; the cell's content is published
	// atomically. A fresh leaf points val at its own embedded cell (so the
	// common-case value load stays on the leaf's cache lines); a copy
	// points at the original's cell, leaving its own cell unused - the
	// original node is retained by the pointer, which is exactly the
	// GC-based reclamation the SCX protocol already relies on.
	val  *vcell.Cell[V]
	cell vcell.Cell[V]
	// Deco is the balancing decoration, owned by the policy (for example
	// the relaxed height in internal/ravl). Leaves always carry 0.
	Deco int64
	// Leaf marks dictionary leaves; their child pointers are always nil.
	Leaf bool
	// Inf marks sentinel nodes, whose key reads as +infinity.
	Inf bool

	left, right atomic.Pointer[Node[K, V]]
}

// LLXRecord implements llxscx.DataRecord.
func (n *Node[K, V]) LLXRecord() *llxscx.Record[Node[K, V]] { return &n.rec }

// NumMutable implements llxscx.DataRecord.
func (n *Node[K, V]) NumMutable() int { return 2 }

// Mutable implements llxscx.DataRecord.
func (n *Node[K, V]) Mutable(i int) *atomic.Pointer[Node[K, V]] {
	if i == 0 {
		return &n.left
	}
	return &n.right
}

// Key implements View for the shared query helpers.
func (n *Node[K, V]) Key() K { return n.K }

// Value implements View. It reads the leaf's value cell atomically; internal
// and sentinel nodes (nil cell) read as the zero value.
func (n *Node[K, V]) Value() V { return n.val.Load() }

// IsLeaf implements View.
func (n *Node[K, V]) IsLeaf() bool { return n.Leaf }

// IsSentinel implements View.
func (n *Node[K, V]) IsSentinel() bool { return n.Inf }

// Left returns the left child with a plain atomic read. It is intended for
// policies and quiescent inspection, not for lock-free traversals that need
// snapshot consistency (use LLX for those).
func (n *Node[K, V]) Left() *Node[K, V] { return n.left.Load() }

// Right returns the right child with a plain atomic read.
func (n *Node[K, V]) Right() *Node[K, V] { return n.right.Load() }

// Marked reports whether the node has been finalized (removed) by an SCX.
func (n *Node[K, V]) Marked() bool { return n.rec.Marked() }

// NewLeaf returns a fresh leaf holding key and value. Leaves always carry
// decoration 0. The leaf's value lives in its embedded cell (representation
// selected by vcell.Unboxed, so word-sized values are stored unboxed);
// copies of the leaf alias this cell via Copy.
func NewLeaf[K, V any](k K, v V) *Node[K, V] {
	n := &Node[K, V]{K: k, Leaf: true}
	n.cell.Init(vcell.Unboxed[V](), v)
	n.val = &n.cell
	return n
}

// NewInternal returns a fresh internal node with the given routing key,
// decoration, sentinel flag and children.
func NewInternal[K, V any](k K, deco int64, inf bool, left, right *Node[K, V]) *Node[K, V] {
	n := &Node[K, V]{K: k, Deco: deco, Inf: inf}
	n.left.Store(left)
	n.right.Store(right)
	return n
}

// Copy returns a fresh copy of the node captured by lk, carrying the given
// decoration and the children recorded in lk's snapshot. It is the standard
// building block of rebalancing steps: a removed node reappears in the new
// subtree only as a copy. The copy ALIASES the source's value cell rather
// than capturing the value: an in-place overwrite racing with the copying
// SCX stays visible through the copy, whichever of the two commits first
// (see the in-place overwrite protocol on Insert).
func Copy[K, V any](lk llxscx.Linked[Node[K, V]], deco int64) *Node[K, V] {
	src := lk.Node()
	n := &Node[K, V]{K: src.K, val: src.val, Deco: deco, Leaf: src.Leaf, Inf: src.Inf}
	n.left.Store(lk.Child(0))
	n.right.Store(lk.Child(1))
	return n
}

// FieldOf returns the mutable child field of the node captured by lk that
// pointed to child in its snapshot, or nil if child was not one of its
// children (meaning the tree changed under the caller, who must retry).
func FieldOf[K, V any](lk llxscx.Linked[Node[K, V]], child *Node[K, V]) *atomic.Pointer[Node[K, V]] {
	n := lk.Node()
	if lk.Child(0) == child {
		return &n.left
	}
	if lk.Child(1) == child {
		return &n.right
	}
	return nil
}

// SiblingOf returns the other child of the node captured by lk, or nil if
// child is not one of its snapshot children.
func SiblingOf[K, V any](lk llxscx.Linked[Node[K, V]], child *Node[K, V]) *Node[K, V] {
	if lk.Child(0) == child {
		return lk.Child(1)
	}
	if lk.Child(1) == child {
		return lk.Child(0)
	}
	return nil
}

// Policy parameterizes the engine with a balancing discipline. All methods
// must be safe for concurrent use; Violation and Rebalance are invoked from
// the engine's cleanup loop with plain-read path context and must express
// any structural change as a template update (LLXs followed by one SCX) so
// the combined data structure stays non-blocking and linearizable.
type Policy[K, V any] interface {
	// Name identifies the resulting data structure in benchmark reports.
	Name() string

	// InternalDeco is the decoration given to the fresh internal node that
	// an insertion places where the old leaf was (its two children are
	// leaves with decoration 0).
	InternalDeco() int64

	// CreatesViolation reports whether replacing oldChild by newChild below
	// parent may have violated the balance condition, in which case the
	// engine runs its cleanup loop. All three nodes are read-only context
	// (immutable fields only).
	CreatesViolation(parent, oldChild, newChild *Node[K, V]) bool

	// Violation reports, using plain reads, whether a rebalancing step is
	// needed at the internal non-sentinel node n.
	Violation(n *Node[K, V]) bool

	// Rebalance attempts one localized rebalancing step at n, whose parent
	// on the search path is u. It returns true if a step was applied; false
	// means the tree changed under it (or the violation vanished) and the
	// cleanup loop re-searches from the entry point.
	Rebalance(u, n *Node[K, V]) bool
}

// Tree is a non-blocking leaf-oriented BST over keys ordered by a comparator
// and balanced according to a Policy. It is safe for concurrent use. Use New
// or NewOrdered.
type Tree[K, V any] struct {
	entry *Node[K, V]
	less  func(a, b K) bool
	pol   Policy[K, V]

	// searchFn locates the grandparent, parent and leaf on the search path
	// for a key using plain reads. It is selected at construction: New
	// installs the comparator-based loop, NewOrdered a specialization that
	// compares with the native `<`, so ordered-key trees pay one indirect
	// call per search instead of one per node.
	searchFn func(t *Tree[K, V], key K) (gp, p, l *Node[K, V])
}

// New returns an empty tree whose keys are ordered by less and whose balance
// is governed by pol. The entry structure mirrors the chromatic tree's
// sentinels (Figure 10 of the paper) so every leaf always has a parent and,
// when the tree is non-empty, a grandparent.
func New[K, V any](less func(a, b K) bool, pol Policy[K, V]) *Tree[K, V] {
	var sentinelKey K
	return &Tree[K, V]{
		entry:    NewInternal(sentinelKey, 0, true, &Node[K, V]{Leaf: true, Inf: true}, nil),
		less:     less,
		pol:      pol,
		searchFn: searchLess[K, V],
	}
}

// NewOrdered returns an empty tree over a naturally ordered key type,
// balanced by pol. It behaves exactly like New with cmp.Less, but installs
// a search routine specialized to the native `<` operator, removing the
// indirect comparator call per node on the read path. String keys get a
// further specialization to the concrete string comparison (see
// searchString).
func NewOrdered[K cmp.Ordered, V any](pol Policy[K, V]) *Tree[K, V] {
	t := New(cmp.Less[K], pol)
	t.searchFn, _ = orderedSearchFor[K, V]()
	return t
}

// orderedSearchFor selects the search routine a NewOrdered tree installs:
// the concrete string specialization when K is string (the type assertion
// succeeds exactly then), the generic cmp.Ordered specialization otherwise.
// The boolean reports whether the string specialization was chosen; it
// exists for the construction tests, since the function values themselves
// are hidden behind instantiation wrappers.
func orderedSearchFor[K cmp.Ordered, V any]() (func(*Tree[K, V], K) (gp, p, l *Node[K, V]), bool) {
	if fn, ok := any(searchString[V]).(func(*Tree[K, V], K) (gp, p, l *Node[K, V])); ok {
		return fn, true
	}
	return searchOrdered[K, V], false
}

// Name identifies the data structure in benchmark reports.
func (t *Tree[K, V]) Name() string { return t.pol.Name() }

// Entry exposes the sentinel entry point for policies and quiescent
// inspection.
func (t *Tree[K, V]) Entry() *Node[K, V] { return t.entry }

// Less exposes the tree's key comparator.
func (t *Tree[K, V]) Less() func(a, b K) bool { return t.less }

// keyLess reports whether key is strictly smaller than n's key, treating
// sentinels as +infinity.
func (t *Tree[K, V]) keyLess(key K, n *Node[K, V]) bool { return n.Inf || t.less(key, n.K) }

// isKey reports whether the leaf l holds exactly key.
func (t *Tree[K, V]) isKey(key K, l *Node[K, V]) bool {
	return !l.Inf && !t.less(key, l.K) && !t.less(l.K, key)
}

// search returns the grandparent, parent and leaf on the search path for
// key, using plain reads (Figure 5 of the paper). gp is nil when the tree
// below the sentinels is a single leaf.
func (t *Tree[K, V]) search(key K) (gp, p, l *Node[K, V]) {
	return t.searchFn(t, key)
}

// searchLess is the comparator-based search loop installed by New.
func searchLess[K, V any](t *Tree[K, V], key K) (gp, p, l *Node[K, V]) {
	p = t.entry
	l = t.entry.left.Load()
	for !l.Leaf {
		gp, p = p, l
		if t.keyLess(key, l) {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
	}
	return gp, p, l
}

// searchOrdered is the devirtualized search loop installed by NewOrdered:
// identical to searchLess, but the per-node comparison is the native `<` of
// a cmp.Ordered key type instead of an indirect call through t.less.
func searchOrdered[K cmp.Ordered, V any](t *Tree[K, V], key K) (gp, p, l *Node[K, V]) {
	p = t.entry
	l = t.entry.left.Load()
	for !l.Leaf {
		gp, p = p, l
		if l.Inf || key < l.K {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
	}
	return gp, p, l
}

// searchString is searchOrdered instantiated at the concrete string type.
// Generic instantiations are compiled per GC shape, where the comparison and
// key loads go through the shape dictionary; pinning K to string lets the
// compiler emit the direct string-compare call. NewOrdered[string, V]
// installs it via the type assertion above, which succeeds exactly when K is
// string.
func searchString[V any](t *Tree[string, V], key string) (gp, p, l *Node[string, V]) {
	p = t.entry
	l = t.entry.left.Load()
	for !l.Leaf {
		gp, p = p, l
		if l.Inf || key < l.K {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
	}
	return gp, p, l
}

// Get returns the value associated with key, or the zero value and false if
// key is absent. It uses only plain reads and never blocks or retries.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	_, _, l := t.search(key)
	if t.isKey(key, l) {
		return l.val.Load(), true
	}
	var zero V
	return zero, false
}

// Insert associates value with key, returning the previous value and true
// if key was present.
//
// When the key is absent the update follows the tree update template: one
// LLX on the leaf's parent, one on the leaf, and one SCX that replaces the
// leaf with a fresh internal node above two leaves. The template is built
// once per call, outside the retry loop: its closures capture p, l and
// inserted by reference, so a failed attempt re-searches and re-runs the
// same template without re-allocating it, and each attempt's SCX evidence is
// staged in the Args value's inline arrays.
//
// When the key is present the overwrite is performed IN PLACE, without an
// SCX and (for unboxed value types) without allocating: the leaf's value
// cell sits outside the LLX snapshot evidence, so no freezing is needed to
// publish into it. The protocol is:
//
//  1. the search reaches the leaf l holding key;
//  2. the new value is published into l's cell with one atomic Swap, which
//     also yields the displaced value to return;
//  3. l's finalized flag is re-checked. If l was NOT finalized, the SCX
//     protocol guarantees l was still in the tree when the Swap took effect
//     (a committed SCX marks every removed record before it swings the child
//     pointer, and the atomic operations are totally ordered: Swap before
//     the unmarked read before the mark before the unlink), so the overwrite
//     linearizes at the Swap. If l WAS finalized the attempt is ambiguous -
//     the leaf may have been removed by a deletion (publish lost, key maybe
//     absent) or superseded by a copy that aliases the same cell (publish
//     visible) - and the operation retries from a fresh search, remembering
//     the cell it published into. A retry that reaches a leaf with the SAME
//     cell resolves the ambiguity: cells are never shared across distinct
//     logical leaves (a fresh leaf embeds its own cell; only copies alias),
//     so the key was continuously present, the earlier publish already took
//     effect through the copy, and the operation returns that attempt's
//     displaced value without publishing again. A retry that reaches a
//     different cell (or finds the key absent) means the published-into cell
//     was dead and the publish invisible.
//
// The re-check makes the overwrite safe against deletion of the key; the
// cell aliasing on Copy makes it safe against every SCX that replaces the
// leaf with a copy (the deletion template promoting the leaf as a sibling
// copy, and any policy rebalancing step that copies a leaf): whichever of
// the publish and the copying SCX commits first, the copy reads through the
// same cell, so the value cannot be lost. This is why the cell must stay
// aliased and must never be snapshotted into a fresh cell by a copy.
func (t *Tree[K, V]) Insert(key K, value V) (V, bool) {
	var p, l, inserted *Node[K, V]
	tmpl := core.Template[*Node[K, V], Node[K, V], struct{}]{
		// Two LLXs are always enough: the parent and the leaf.
		Condition: func(seq []llxscx.Linked[Node[K, V]]) bool { return len(seq) == 2 },
		NextNode:  func(seq []llxscx.Linked[Node[K, V]]) *Node[K, V] { return l },
		Args: func(seq []llxscx.Linked[Node[K, V]]) core.Args[Node[K, V], *Node[K, V]] {
			lkP, lkL := seq[0], seq[1]
			fld := FieldOf(lkP, l)
			// The key is absent (the overwrite fast path already handled a
			// present key; l's key is immutable, so the check holds for this
			// attempt): the old leaf is reused as the fringe of the new
			// subtree (PC6) - leaves carry no mutable balance bookkeeping,
			// so no copy is needed and nothing is finalized, exactly as in
			// the non-blocking BST of Ellen et al. l stays in V, so the SCX
			// fails if a concurrent update froze it.
			keyLeaf := NewLeaf(key, value)
			var repl *Node[K, V]
			if t.keyLess(key, l) {
				repl = NewInternal(l.K, t.pol.InternalDeco(), l.Inf, keyLeaf, l)
			} else {
				repl = NewInternal(key, t.pol.InternalDeco(), false, l, keyLeaf)
			}
			inserted = repl
			return core.Args[Node[K, V], *Node[K, V]]{
				V:   [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkP, lkL},
				NV:  2,
				Fld: fld,
				Old: l,
				New: repl,
			}
		},
		Result: func(seq []llxscx.Linked[Node[K, V]]) struct{} { return struct{}{} },
	}
	// A failed attempt means a concurrent update won the SCX in this
	// neighbourhood (or the leaf was finalized under an overwrite); back off
	// (bounded, randomized, growing with the failure count) before
	// re-searching so heavy contention on a small key range does not
	// degenerate into a storm of wasted re-searches.
	var prevCell *vcell.Cell[V]
	var prevOld V
	for fails := 0; ; {
		_, p, l = t.searchFn(t, key)
		if t.isKey(key, l) {
			if l.val == prevCell {
				// A previous attempt already published into this very cell:
				// the leaf was superseded by a copy, not deleted, so that
				// publish took effect (see the protocol above).
				return prevOld, true
			}
			// In-place overwrite: atomic publish, then finalization re-check
			// (see the protocol above).
			old := l.val.Swap(value)
			if !l.Marked() {
				return old, true
			}
			prevCell, prevOld = l.val, old
		} else {
			inserted = nil
			if _, ok := tmpl.Run(p); ok {
				if t.pol.CreatesViolation(p, l, inserted) {
					t.cleanup(key)
				}
				var zero V
				return zero, false
			}
		}
		fails++
		core.BackoffWait(fails)
	}
}

// Delete removes key, returning its value and true if it was present. The
// update performs LLXs on the grandparent, parent, leaf and sibling, and
// one SCX that swings the grandparent's child pointer to a copy of the
// sibling (Figure 6 of the paper).
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	var gp, p, l, promoted *Node[K, V]
	tmpl := core.Template[*Node[K, V], Node[K, V], V]{
		Condition: func(seq []llxscx.Linked[Node[K, V]]) bool { return len(seq) == 4 },
		NextNode: func(seq []llxscx.Linked[Node[K, V]]) *Node[K, V] {
			switch len(seq) {
			case 1:
				return p
			case 2:
				return l
			default:
				// The sibling, from the parent's snapshot.
				return SiblingOf(seq[1], l)
			}
		},
		Args: func(seq []llxscx.Linked[Node[K, V]]) core.Args[Node[K, V], *Node[K, V]] {
			lkGP, lkP, lkL, lkS := seq[0], seq[1], seq[2], seq[3]
			s := lkS.Node()
			// The promoted copy keeps the sibling's decoration: its own
			// subtree is unchanged, so its balance bookkeeping is too. It
			// must be a fresh copy, not s itself: the SCX protocol's
			// ABA-freedom rests on every value stored into a child field
			// being newly allocated (a stale helper retries its update CAS
			// unconditionally, and re-installing a pointer the field once
			// held would let that CAS resurrect a finalized subtree). Reuse
			// is only safe for nodes that become children of fresh nodes,
			// as in Insert.
			repl := Copy(lkS, s.Deco)
			promoted = repl
			a := core.Args[Node[K, V], *Node[K, V]]{
				NV:  4,
				NR:  3,
				Fld: FieldOf(lkGP, p),
				Old: p,
				New: repl,
			}
			// V and R are ordered by a breadth-first traversal (PC8):
			// the parent's children appear in left-to-right order.
			if lkP.Child(0) == l {
				a.V = [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkGP, lkP, lkL, lkS}
				a.R = [llxscx.MaxV]*Node[K, V]{p, l, s}
			} else {
				a.V = [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkGP, lkP, lkS, lkL}
				a.R = [llxscx.MaxV]*Node[K, V]{p, s, l}
			}
			return a
		},
		// The Result closure runs only after the SCX committed, so the cell
		// read happens after l was marked; an in-place overwrite that
		// linearized before this deletion (its Swap totally ordered before
		// the marking) is therefore visible in the returned value.
		Result: func(seq []llxscx.Linked[Node[K, V]]) V { return l.val.Load() },
	}
	for fails := 0; ; {
		gp, p, l = t.searchFn(t, key)
		if gp == nil || !t.isKey(key, l) {
			var zero V
			return zero, false
		}
		promoted = nil
		if v, ok := tmpl.Run(gp); ok {
			if t.pol.CreatesViolation(gp, p, promoted) {
				t.cleanup(key)
			}
			return v, true
		}
		fails++
		core.BackoffWait(fails)
	}
}

// cleanup repeatedly searches for key from the entry point and asks the
// policy to perform one rebalancing step at the first violation on the
// path, restarting from the entry point after every step, until it reaches
// a leaf without seeing a violation. This is the chromatic tree's Cleanup
// loop (Figure 5 of the paper) generalized over the balancing policy.
//
// Note that unlike the chromatic tree's VIOL property, a policy need not
// guarantee that every violation stays on the search path of the key that
// created it; cleanup then restores balance on this key's path and leaves
// any violation it pushed elsewhere to later operations (that is the
// "relaxed" in relaxed balancing).
func (t *Tree[K, V]) cleanup(key K) {
	for {
		u := t.entry
		n := t.entry.left.Load()
		for {
			if n == nil {
				break // tree changed under us; restart
			}
			if n.Leaf {
				return
			}
			if !n.Inf && t.pol.Violation(n) {
				t.pol.Rebalance(u, n)
				break // restart the search from the entry point
			}
			u = n
			if t.keyLess(key, n) {
				n = n.left.Load()
			} else {
				n = n.right.Load()
			}
		}
	}
}

// Cleanup exposes the rebalancing loop for policies that want to schedule
// extra cleanup passes (for example from a background rebalancer).
func (t *Tree[K, V]) Cleanup(key K) { t.cleanup(key) }

// Successor returns the smallest key strictly greater than key, with its
// value; ok is false if no such key exists. See the generic implementation
// in query.go.
func (t *Tree[K, V]) Successor(key K) (k K, v V, ok bool) {
	return Successor(t.entry, t.less, key)
}

// Predecessor returns the largest key strictly smaller than key, with its
// value; ok is false if no such key exists.
func (t *Tree[K, V]) Predecessor(key K) (k K, v V, ok bool) {
	return Predecessor(t.entry, t.less, key)
}

// RangeScan calls fn for every key in [lo, hi] in ascending order and
// returns the number of keys visited; each step is individually
// linearizable. If fn returns false the scan stops early.
func (t *Tree[K, V]) RangeScan(lo, hi K, fn func(k K, v V) bool) int {
	return RangeScan(t.entry, t.less, lo, hi, fn)
}

// Ascend calls fn for every key in the dictionary in ascending order and
// returns the number of keys visited; each step is individually
// linearizable. If fn returns false the scan stops early.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) int {
	return Ascend(t.entry, t.less, fn)
}

// Min returns the smallest key and its value, or ok=false if empty.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	return Min[*Node[K, V], Node[K, V], K, V](t.entry)
}

// Max returns the largest key and its value, or ok=false if empty.
func (t *Tree[K, V]) Max() (k K, v V, ok bool) {
	return Max[*Node[K, V], Node[K, V], K, V](t.entry)
}

// Size returns the number of keys stored. Quiescence only.
func (t *Tree[K, V]) Size() int {
	size := 0
	visitLeaves(t.entry.left.Load(), func(n *Node[K, V]) {
		if !n.Inf {
			size++
		}
	})
	return size
}

// Keys returns all keys in ascending order. Quiescence only.
func (t *Tree[K, V]) Keys() []K {
	var keys []K
	visitLeaves(t.entry.left.Load(), func(n *Node[K, V]) {
		if !n.Inf {
			keys = append(keys, n.K)
		}
	})
	return keys
}

// Height returns the number of nodes on the longest path from the tree's
// root (below the sentinels) to a leaf. Quiescence only.
func (t *Tree[K, V]) Height() int { return height(t.root()) }

// root returns the root of the tree proper (the leftmost grandchild of the
// entry node), or nil when the dictionary is empty.
func (t *Tree[K, V]) root() *Node[K, V] {
	top := t.entry.left.Load()
	if top == nil || top.Leaf {
		return nil
	}
	return top.left.Load()
}

// Root exposes the root of the tree proper for quiescent inspection by
// policies and tests; nil when the dictionary is empty.
func (t *Tree[K, V]) Root() *Node[K, V] { return t.root() }

func visitLeaves[K, V any](n *Node[K, V], fn func(*Node[K, V])) {
	if n == nil {
		return
	}
	if n.Leaf {
		fn(n)
		return
	}
	visitLeaves(n.left.Load(), fn)
	visitLeaves(n.right.Load(), fn)
}

func height[K, V any](n *Node[K, V]) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	l, r := height(n.left.Load()), height(n.right.Load())
	if l > r {
		return l + 1
	}
	return r + 1
}
