// Package lbst is a reusable engine for non-blocking, leaf-oriented binary
// search trees built on the tree update template of internal/core.
//
// The engine owns everything that was previously duplicated between the
// unbalanced BST (internal/ebst) and the relaxed AVL tree (internal/ravl):
// the sentinel entry structure of Figure 10 of Brown, Ellen and Ruppert
// (PPoPP 2014), the leaf-oriented search loop, the construction of the
// insertion and deletion template updates (so postconditions PC1-PC9 are
// discharged once, here), the SCX-free in-place value overwrite for inserts
// on present keys (see Insert and the value-cell notes on Node and Copy),
// the post-update cleanup loop that drives rebalancing, and the ordered
// Successor/Predecessor queries with VLX validation (shared, in generic
// form, with internal/chromatic via query.go).
//
// The engine is generic over the key and value types. Only the search loop
// compares keys - exactly the paper's point about the template being
// key-type-agnostic - so a tree is ordered by a caller-supplied comparator
// less(a, b) reporting whether a is strictly ordered before b (see
// dict.Less). Keys a and b are equal exactly when !less(a, b) && !less(b, a).
//
// A concrete tree supplies a Policy: the meaning of the per-node balancing
// decoration, how to detect a violation of its balance condition, and a set
// of localized rebalancing steps (each itself a template update). The policy
// for the unbalanced BST is trivial - no decoration, no violations, no
// steps - which is exactly the paper's point about how little code a new
// template-based data structure needs. The relaxed AVL policy decorates
// nodes with heights and repairs violations with height fixes and rotations.
//
// # Memory reclamation
//
// Every operation runs inside an epoch-reclamation pinned region
// (internal/epoch), and each tree recycles its nodes through a sync.Pool and
// its SCX descriptors through an llxscx.Pool: a node removed by a committed
// SCX is retired under the operation's guard and re-enters the pool only
// after a grace period, so steady-state churn allocates (almost) nothing.
// The safety argument - why a pinned operation can never observe a recycled
// node, and how the value-cell aliasing of Copy survives manual reclamation
// via the cell-owner reference count - is re-derived in DESIGN.md ("Epoch
// reclamation and the ABA re-derivation"). Build with -tags noepoch to fall
// back to garbage-collected reclamation.
package lbst

import (
	"cmp"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/epoch"
	"repro/internal/llxscx"
	"repro/internal/sched"
	"repro/internal/vcell"
)

// Node is a Data-record of a leaf-oriented BST: immutable key, leaf/sentinel
// flags and balancing decoration, plus the two mutable child pointers
// manipulated through LLX/SCX. Updates that need to change immutable data
// replace the node with a fresh copy, as the template requires.
//
// The value of a leaf is NOT part of the node's immutable data: it lives in
// a separately allocated vcell.Cell that sits outside the LLX snapshot
// evidence, so overwriting the value of a present key is a single atomic
// publish instead of a full SCX (see Insert). Every copy of a leaf - the
// deletion template promotes a copy of the sibling, and balancing policies
// copy nodes in their rebalancing steps - aliases the original's cell, which
// is what keeps a concurrent overwrite from being lost to a copy that
// captured the value just before the publish.
type Node[K, V any] struct {
	rec llxscx.Record[Node[K, V]]

	// K is the routing key (internal nodes) or dictionary key (leaves);
	// ignored when Inf is set.
	K K
	// val is the leaf's value cell, shared with every copy of the leaf; nil
	// on internal nodes and sentinel leaves (which read as the zero value).
	// The pointer itself is immutable; the cell's content is published
	// atomically. A fresh leaf points val at its own embedded cell (so the
	// common-case value load stays on the leaf's cache lines); a copy
	// points at the original's cell, leaving its own cell unused - under
	// garbage-collected reclamation the pointer itself retains the original
	// node, and under epoch reclamation the owner/crefs bookkeeping below
	// keeps the cell's embedding node out of the pool until the last
	// aliasing copy has been freed.
	val  *vcell.Cell[V]
	cell vcell.Cell[V]
	// Deco is the balancing decoration, owned by the policy (for example
	// the relaxed height in internal/ravl). Leaves always carry 0.
	Deco int64
	// Leaf marks dictionary leaves; their child pointers are always nil.
	Leaf bool
	// Inf marks sentinel nodes, whose key reads as +infinity.
	Inf bool

	left, right atomic.Pointer[Node[K, V]]

	// owner points at the node whose embedded cell this node's val aliases:
	// itself for a fresh value leaf, the original owner for copies
	// (flattened, so chains of copies share one owner), nil for internal
	// nodes and sentinel leaves. Immutable after construction.
	owner *Node[K, V]
	// crefs counts, on an owner node, the nodes whose val aliases its
	// embedded cell (itself included). A copy increments its owner's count
	// at creation; freeing a node decrements it, and only the decrement
	// that reaches zero may recycle the owner - an owner freed while copies
	// remain parks as a zombie until the last copy is freed.
	crefs atomic.Int32
	// gen counts how many times this node's memory has been recycled
	// through the pool. Plain field: it is only written during recycle
	// (after the grace period, which establishes a happens-before edge to
	// every earlier reader) and only read under -tags reclaimcheck by the
	// poisoning assertions.
	gen uint64

	// snapVer is the node's commit tick for the versioned-snapshot layer:
	// verPending from construction until the node is installed into a
	// mutable field by a committed SCX, at which point the tree's commit
	// hook stamps it (CAS, exactly once) with the tree's version counter —
	// BEFORE the update CAS, so a node readable out of a field is always
	// already stamped. Fresh interior nodes of an update that are not the
	// CASed-in subtree root stay verPending forever; the resolution rule
	// accepts them through their stamped ancestor (see snapshot.go and the
	// "Versioned snapshots" section of DESIGN.md).
	snapVer atomic.Uint64
	// prev is the value the field this node was CASed into held immediately
	// before — the previous version of this position. Written by the commit
	// hook together with the version stamp, before the update CAS (every
	// helper stores the same descriptor-recorded value, so the atomic is only
	// needed to keep the duplicate stores race-clean). Followed only by
	// snapshot resolution walks, whose epoch pin keeps the chain's retired
	// nodes from being recycled. nil for nodes that were never an update's
	// subtree root. Not maintained under -tags noepoch (the commit hook does
	// not run there, which also keeps the chain from leaking through the
	// garbage collector).
	prev atomic.Pointer[Node[K, V]]
}

// verPending marks a node whose installing update has not been stamped with
// a commit tick. It compares greater than every capture version.
const verPending = ^uint64(0)

// SnapVer implements VersionedView: the node's commit tick.
func (n *Node[K, V]) SnapVer() uint64 { return n.snapVer.Load() }

// SnapPrev implements VersionedView: the previous version of this node's
// position, or nil.
func (n *Node[K, V]) SnapPrev() *Node[K, V] { return n.prev.Load() }

// LLXRecord implements llxscx.DataRecord.
func (n *Node[K, V]) LLXRecord() *llxscx.Record[Node[K, V]] { return &n.rec }

// NumMutable implements llxscx.DataRecord.
func (n *Node[K, V]) NumMutable() int { return 2 }

// Mutable implements llxscx.DataRecord.
func (n *Node[K, V]) Mutable(i int) *atomic.Pointer[Node[K, V]] {
	if i == 0 {
		return &n.left
	}
	return &n.right
}

// Key implements View for the shared query helpers.
func (n *Node[K, V]) Key() K { return n.K }

// Value implements View. It reads the leaf's value cell atomically; internal
// and sentinel nodes (nil cell) read as the zero value.
func (n *Node[K, V]) Value() V { return n.val.Load() }

// IsLeaf implements View.
func (n *Node[K, V]) IsLeaf() bool { return n.Leaf }

// IsSentinel implements View.
func (n *Node[K, V]) IsSentinel() bool { return n.Inf }

// Gen returns the node's reclamation generation counter, bumped every time
// the node's memory is recycled through a pool. It only changes under -tags
// reclaimcheck, where the poisoning assertions in the read paths use it to
// prove that no node is ever recycled while a pinned operation can still
// reach it.
func (n *Node[K, V]) Gen() uint64 { return n.gen }

// Left returns the left child with a plain atomic read. It is intended for
// policies and quiescent inspection, not for lock-free traversals that need
// snapshot consistency (use LLX for those).
func (n *Node[K, V]) Left() *Node[K, V] { return n.left.Load() }

// Right returns the right child with a plain atomic read.
func (n *Node[K, V]) Right() *Node[K, V] { return n.right.Load() }

// Marked reports whether the node has been finalized (removed) by an SCX.
func (n *Node[K, V]) Marked() bool { return n.rec.Marked() }

// NewLeaf returns a fresh leaf holding key and value. Leaves always carry
// decoration 0. The leaf's value lives in its embedded cell (representation
// selected by vcell.Unboxed, so word-sized values are stored unboxed);
// copies of the leaf alias this cell via Copy. The leaf is heap-allocated;
// inside operations the trees use the pooled Tree.LeafNode instead.
func NewLeaf[K, V any](k K, v V) *Node[K, V] {
	n := &Node[K, V]{K: k, Leaf: true}
	n.cell.Init(vcell.Unboxed[V](), v)
	n.val = &n.cell
	n.owner = n
	n.crefs.Store(1)
	return n
}

// NewInternal returns a fresh internal node with the given routing key,
// decoration, sentinel flag and children.
func NewInternal[K, V any](k K, deco int64, inf bool, left, right *Node[K, V]) *Node[K, V] {
	n := &Node[K, V]{K: k, Deco: deco, Inf: inf}
	n.left.Store(left)
	n.right.Store(right)
	return n
}

// Copy returns a fresh copy of the node captured by lk, carrying the given
// decoration and the children recorded in lk's snapshot. It is the standard
// building block of rebalancing steps: a removed node reappears in the new
// subtree only as a copy. The copy ALIASES the source's value cell rather
// than capturing the value: an in-place overwrite racing with the copying
// SCX stays visible through the copy, whichever of the two commits first
// (see the in-place overwrite protocol on Insert). The copy takes a
// reference on the cell's owner, so the cell outlives every aliasing node
// under pooled reclamation.
func Copy[K, V any](lk llxscx.Linked[Node[K, V]], deco int64) *Node[K, V] {
	src := lk.Node()
	n := &Node[K, V]{K: src.K, val: src.val, Deco: deco, Leaf: src.Leaf, Inf: src.Inf}
	n.left.Store(lk.Child(0))
	n.right.Store(lk.Child(1))
	if own := src.owner; own != nil {
		// Safe to increment: src holds a reference on own (its own, if src
		// is the owner) and src is protected by the caller's pinned region,
		// so the count cannot reach zero concurrently.
		n.owner = own
		own.crefs.Add(1)
	}
	return n
}

// FieldOf returns the mutable child field of the node captured by lk that
// pointed to child in its snapshot, or nil if child was not one of its
// children (meaning the tree changed under the caller, who must retry).
func FieldOf[K, V any](lk llxscx.Linked[Node[K, V]], child *Node[K, V]) *atomic.Pointer[Node[K, V]] {
	n := lk.Node()
	if lk.Child(0) == child {
		return &n.left
	}
	if lk.Child(1) == child {
		return &n.right
	}
	return nil
}

// SiblingOf returns the other child of the node captured by lk, or nil if
// child is not one of its snapshot children.
func SiblingOf[K, V any](lk llxscx.Linked[Node[K, V]], child *Node[K, V]) *Node[K, V] {
	if lk.Child(0) == child {
		return lk.Child(1)
	}
	if lk.Child(1) == child {
		return lk.Child(0)
	}
	return nil
}

// Policy parameterizes the engine with a balancing discipline. All methods
// must be safe for concurrent use; Violation and Rebalance are invoked from
// the engine's cleanup loop with plain-read path context and must express
// any structural change as a template update (LLXs followed by one SCX) so
// the combined data structure stays non-blocking and linearizable.
type Policy[K, V any] interface {
	// Name identifies the resulting data structure in benchmark reports.
	Name() string

	// InternalDeco is the decoration given to the fresh internal node that
	// an insertion places where the old leaf was (its two children are
	// leaves with decoration 0).
	InternalDeco() int64

	// CreatesViolation reports whether replacing oldChild by newChild below
	// parent may have violated the balance condition, in which case the
	// engine runs its cleanup loop. All three nodes are read-only context
	// (immutable fields only).
	CreatesViolation(parent, oldChild, newChild *Node[K, V]) bool

	// Violation reports, using plain reads, whether a rebalancing step is
	// needed at the internal non-sentinel node n.
	Violation(n *Node[K, V]) bool

	// Rebalance attempts one localized rebalancing step at n, whose parent
	// on the search path is u. g is the invoking operation's pinned epoch
	// guard; the step's SCX must go through the tree's pooled reclamation
	// (Tree.RebalanceSCX or an equivalently wired core.Template), with
	// fresh nodes built by Tree.InternalNode/Tree.CopyNode and released
	// with Tree.ReleaseFresh when the SCX fails. It returns true if a step
	// was applied; false means the tree changed under it (or the violation
	// vanished) and the cleanup loop re-searches from the entry point.
	Rebalance(g *epoch.Guard, u, n *Node[K, V]) bool
}

// Tree is a non-blocking leaf-oriented BST over keys ordered by a comparator
// and balanced according to a Policy. It is safe for concurrent use. Use New
// or NewOrdered.
type Tree[K, V any] struct {
	entry *Node[K, V]
	less  func(a, b K) bool
	pol   Policy[K, V]

	// searchFn locates the grandparent, parent and leaf on the search path
	// for a key using plain reads. It is selected at construction: New
	// installs the comparator-based loop, NewOrdered a specialization that
	// compares with the native `<`, so ordered-key trees pay one indirect
	// call per search instead of one per node.
	searchFn func(t *Tree[K, V], key K) (gp, p, l *Node[K, V])

	// unboxed is vcell.Unboxed[V](), computed once so every pooled leaf
	// initializes its cell without re-deriving the representation.
	unboxed bool

	// nodePool recycles this tree's nodes; nodes enter it only through the
	// epoch layer's grace period (or ReleaseFresh, for nodes that were
	// never published). Per-tree, because the pool is generic over K and V.
	// Heap-allocated separately rather than embedded: a sync.Pool that has
	// ever been used registers itself with the runtime for the rest of the
	// process, and an embedded pool would pin the whole Tree — root and all
	// its nodes — as a GC root long after the tree is dropped.
	nodePool *sync.Pool
	// descPool recycles this tree's SCX descriptors (see llxscx.Pool).
	descPool *llxscx.Pool[Node[K, V]]
	// freeNodeFn is the epoch callback for retired nodes, built once at
	// construction so RetireNode never allocates a closure.
	freeNodeFn epoch.Func

	// spineDeep counts searches that walked at least spineCap nodes, and
	// spineMax records the deepest such walk: the cheap degenerate-spine
	// diagnostic for unbalanced instantiations (see SpineStats).
	spineDeep atomic.Int64
	spineMax  atomic.Int64

	// mitigating serializes degenerate-spine mitigation passes so a burst of
	// deep probes does not stampede the same spine (see mitigateSpine).
	mitigating atomic.Bool

	// gver is the tree's commit tick counter for versioned snapshots: the
	// commit hook stamps every CASed-in subtree root with gver+1 immediately
	// before the update CAS, and Snapshot captures gver as its version.
	gver atomic.Uint64
	// snapLive counts this tree's live snapshot handles. While nonzero,
	// Insert's in-place overwrite fast path is disabled so captured leaves
	// stay frozen (values included); see Insert and Snapshot.
	snapLive atomic.Int64
	// fastWriters counts in-flight publish windows of both kinds: the
	// in-place overwrite fast path brackets its value Swap, and the commit
	// hooks bracket the stamp→install window of every SCX (version tick
	// assigned, update CAS not yet through). Snapshot reads gver and THEN
	// drains this counter, which closes both races: a fast-path Swap cannot
	// land after the capture's first read, and a node stamped at or below
	// the captured version cannot still be waiting to be installed.
	fastWriters atomic.Int64
	// roots is the bounded multi-root forest: the commit hook publishes every
	// newly installed top-level subtree root here with one atomic store,
	// overwriting the oldest slot. Observability only — snapshot resolution
	// walks from the entry sentinel — see Versions.
	roots    [rootHistory]atomic.Pointer[Node[K, V]]
	rootsIdx atomic.Uint64
}

// rootHistory bounds the root forest: only the most recent rootHistory
// top-level roots are retained for Versions introspection.
const rootHistory = 8

// New returns an empty tree whose keys are ordered by less and whose balance
// is governed by pol. The entry structure mirrors the chromatic tree's
// sentinels (Figure 10 of the paper) so every leaf always has a parent and,
// when the tree is non-empty, a grandparent.
func New[K, V any](less func(a, b K) bool, pol Policy[K, V]) *Tree[K, V] {
	var sentinelKey K
	t := &Tree[K, V]{
		entry:    NewInternal(sentinelKey, 0, true, &Node[K, V]{Leaf: true, Inf: true}, nil),
		less:     less,
		pol:      pol,
		searchFn: searchLess[K, V],
		unboxed:  vcell.Unboxed[V](),
		descPool: llxscx.NewPool[Node[K, V]](),
	}
	t.nodePool = &sync.Pool{New: func() any { return new(Node[K, V]) }}
	t.freeNodeFn = func(g *epoch.Guard, obj any) bool {
		t.freeNode(obj.(*Node[K, V]))
		return true
	}
	// The commit hook stamps the freshly installed subtree root with the next
	// tick BEFORE the update CAS publishes it (see llxscx.Pool.OnCommit): a
	// node readable out of a mutable field is therefore always stamped, which
	// is what makes ticks monotone along structural dependencies and a
	// captured gver a consistent cut (DESIGN.md, "Versioned snapshots").
	// Every helper calls the hook, so the stamp CAS makes it idempotent; the
	// ring store is last-helper-wins, which is harmless for observability.
	t.descPool.OnCommit = func(fld *atomic.Pointer[Node[K, V]], old, new *Node[K, V]) {
		// Open the stamp→install bracket BEFORE the tick can be assigned;
		// OnInstalled closes it after the update CAS. Snapshot reads gver and
		// then drains fastWriters, so every node stamped at or below the
		// captured version is installed before the capture's first read —
		// without the bracket a node could carry a covered tick yet surface
		// mid-capture, un-freezing the view (caught by the sched enumeration
		// in sched_snapshot_test.go).
		t.fastWriters.Add(1)
		if new.snapVer.Load() == verPending {
			new.prev.Store(old)
			sched.Point(sched.PointVerStamp)
			new.snapVer.CompareAndSwap(verPending, t.gver.Add(1))
		}
		if fld == &t.entry.left {
			t.roots[t.rootsIdx.Add(1)%rootHistory].Store(new)
		}
	}
	t.descPool.OnInstalled = func() { t.fastWriters.Add(-1) }
	return t
}

// NewOrdered returns an empty tree over a naturally ordered key type,
// balanced by pol. It behaves exactly like New with cmp.Less, but installs
// a search routine specialized to the native `<` operator, removing the
// indirect comparator call per node on the read path. String keys get a
// further specialization to the concrete string comparison (see
// searchString).
func NewOrdered[K cmp.Ordered, V any](pol Policy[K, V]) *Tree[K, V] {
	t := New(cmp.Less[K], pol)
	t.searchFn, _ = orderedSearchFor[K, V]()
	return t
}

// orderedSearchFor selects the search routine a NewOrdered tree installs:
// the concrete string specialization when K is string (the type assertion
// succeeds exactly then), the generic cmp.Ordered specialization otherwise.
// The boolean reports whether the string specialization was chosen; it
// exists for the construction tests, since the function values themselves
// are hidden behind instantiation wrappers.
func orderedSearchFor[K cmp.Ordered, V any]() (func(*Tree[K, V], K) (gp, p, l *Node[K, V]), bool) {
	if fn, ok := any(searchString[V]).(func(*Tree[K, V], K) (gp, p, l *Node[K, V])); ok {
		return fn, true
	}
	return searchOrdered[K, V], false
}

// Name identifies the data structure in benchmark reports.
func (t *Tree[K, V]) Name() string { return t.pol.Name() }

// Entry exposes the sentinel entry point for policies and quiescent
// inspection.
func (t *Tree[K, V]) Entry() *Node[K, V] { return t.entry }

// Less exposes the tree's key comparator.
func (t *Tree[K, V]) Less() func(a, b K) bool { return t.less }

// DescPool exposes the tree's SCX descriptor pool. Policies that express
// their rebalancing steps through core.Template must install it (together
// with the operation's guard) on the template, so every SCX on the tree's
// records participates in the pooled reclamation protocol.
func (t *Tree[K, V]) DescPool() *llxscx.Pool[Node[K, V]] { return t.descPool }

// ---------------------------------------------------------------------------
// Pooled node lifecycle.

// LeafNode returns a leaf holding key and value, drawn from the tree's node
// pool (a fresh allocation under -tags noepoch). The leaf owns its embedded
// value cell.
func (t *Tree[K, V]) LeafNode(k K, v V) *Node[K, V] {
	if !epoch.Enabled {
		return NewLeaf(k, v)
	}
	n := t.nodePool.Get().(*Node[K, V])
	n.K = k
	n.Leaf = true
	n.cell.Init(t.unboxed, v)
	n.val = &n.cell
	n.owner = n
	n.crefs.Store(1)
	n.snapVer.Store(verPending)
	return n
}

// InternalNode returns an internal node drawn from the tree's node pool (a
// fresh allocation under -tags noepoch).
func (t *Tree[K, V]) InternalNode(k K, deco int64, inf bool, left, right *Node[K, V]) *Node[K, V] {
	if !epoch.Enabled {
		return NewInternal(k, deco, inf, left, right)
	}
	n := t.nodePool.Get().(*Node[K, V])
	n.K = k
	n.Deco = deco
	n.Inf = inf
	n.left.Store(left)
	n.right.Store(right)
	n.snapVer.Store(verPending)
	return n
}

// CopyNode is Copy drawing the copy from the tree's node pool (a fresh
// allocation under -tags noepoch). Like Copy it aliases the source's value
// cell and takes a reference on the cell's owner.
func (t *Tree[K, V]) CopyNode(lk llxscx.Linked[Node[K, V]], deco int64) *Node[K, V] {
	if !epoch.Enabled {
		return Copy(lk, deco)
	}
	src := lk.Node()
	n := t.nodePool.Get().(*Node[K, V])
	n.K = src.K
	n.val = src.val
	n.Deco = deco
	n.Leaf = src.Leaf
	n.Inf = src.Inf
	n.left.Store(lk.Child(0))
	n.right.Store(lk.Child(1))
	if own := src.owner; own != nil {
		n.owner = own
		own.crefs.Add(1)
	}
	n.snapVer.Store(verPending)
	return n
}

// RetireNode hands a node that a committed SCX removed from the tree to the
// reclamation layer under the operation's pinned guard: it re-enters the
// node pool after a grace period. A no-op under -tags noepoch (the garbage
// collector reclaims the node).
func (t *Tree[K, V]) RetireNode(g *epoch.Guard, n *Node[K, V]) {
	epoch.Retire(g, n, t.freeNodeFn)
}

// ReleaseFresh recycles a freshly built node whose SCX failed. Such a node
// was never published - no other operation can have seen it - so it re-enters
// the pool immediately, without a grace period. A no-op under -tags noepoch.
func (t *Tree[K, V]) ReleaseFresh(n *Node[K, V]) {
	if !epoch.Enabled {
		return
	}
	t.freeNode(n)
}

// RebalanceSCX performs a pooled SCX for a policy's rebalancing step and, on
// success, retires the removed nodes fin[:nf]. On failure the policy is
// responsible for releasing the fresh nodes it built (ReleaseFresh).
func (t *Tree[K, V]) RebalanceSCX(g *epoch.Guard, v *[llxscx.MaxV]llxscx.Linked[Node[K, V]], nv int, fin *[llxscx.MaxV]*Node[K, V], nf int, fld *atomic.Pointer[Node[K, V]], old, new *Node[K, V]) bool {
	if !llxscx.SCXP(g, t.descPool, v, nv, fin, nf, fld, old, new) {
		return false
	}
	for i := 0; i < nf; i++ {
		t.RetireNode(g, fin[i])
	}
	return true
}

// freeNode runs after a retired node's grace period (or immediately, for a
// never-published fresh node): no operation can reach n anymore, so its
// memory may be recycled - except that an owner node whose embedded cell is
// still aliased by live copies must park until the last copy is freed.
func (t *Tree[K, V]) freeNode(n *Node[K, V]) {
	own := n.owner
	switch {
	case own == nil:
		// Internal or sentinel node: no cell bookkeeping.
		t.recycle(n)
	case own != n:
		// A copy: its embedded cell was never used; drop its reference on
		// the owner, and recycle the owner too if this was the last alias
		// (the owner was freed earlier and parked as a zombie).
		t.recycle(n)
		if own.crefs.Add(-1) == 0 {
			t.recycle(own)
		}
	default:
		// The owner itself: recycle only if no copy aliases its cell;
		// otherwise park - the last copy's free recycles it via own above.
		if n.crefs.Add(-1) == 0 {
			t.recycle(n)
		}
	}
}

// recycle resets a node whose memory is provably unreachable and returns it
// to the pool. Releasing the record drops the node's reference on its last
// SCX descriptor, which is what lets committed descriptors of long-dead
// updates finally recycle too.
func (t *Tree[K, V]) recycle(n *Node[K, V]) {
	llxscx.ReleaseRecord(&n.rec)
	n.left.Store(nil)
	n.right.Store(nil)
	n.val = nil
	n.owner = nil
	n.crefs.Store(0)
	n.snapVer.Store(0)
	n.prev.Store(nil)
	n.cell.Reset()
	var zeroK K
	n.K = zeroK
	n.Deco = 0
	n.Leaf = false
	n.Inf = false
	if epoch.PoisonCheck {
		n.gen++
	}
	t.nodePool.Put(n)
}

// DrainReclaim flushes the tree's deferred descriptors and drains the epoch
// layer's retire lists, returning the number of objects still pending
// (process-wide). Meant for tests and quiescent shutdown; see epoch.Drain.
func (t *Tree[K, V]) DrainReclaim() int64 {
	if !epoch.Enabled {
		return 0
	}
	g := epoch.Pin()
	t.descPool.Flush(g)
	epoch.Unpin(g)
	return epoch.Drain()
}

// ---------------------------------------------------------------------------
// Searches.

// spineCap is the walk depth past which a search counts as degenerate: a
// balanced tree never gets near it (a few dozen nodes even at millions of
// keys), while the unbalanced EBST reaches it under sequential insertion
// orders. Crossing it is observable, not fatal - the walk completes and its
// final depth is recorded as a one-shot height probe of the searched spine
// (see SpineStats).
const spineCap = 128

// noteDeepSpine records a search that crossed spineCap: it bumps the
// degenerate-search counter and folds the walk's final depth into the
// maximum, which doubles as the height probe of the offending spine.
func (t *Tree[K, V]) noteDeepSpine(depth int) {
	t.spineDeep.Add(1)
	for {
		cur := t.spineMax.Load()
		if int64(depth) <= cur || t.spineMax.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// SpineStats reports the degenerate-spine diagnostic: how many searches
// walked at least spineCap nodes, and the deepest walk observed (a probe of
// the height of the degenerate subtree). Both are zero on balanced trees;
// nonzero values on an unbalanced instantiation flag a pathological insert
// order to the caller without making operations fail.
func (t *Tree[K, V]) SpineStats() (deepSearches, maxDepth int64) {
	return t.spineDeep.Load(), t.spineMax.Load()
}

// SpineMitigator is optionally implemented by policies that can repair a
// degenerate spine when a search reports one (via the SpineStats threshold):
// MitigateSpine is invoked — throttled to one pass at a time per tree — with
// the key whose search walked at least spineCap nodes. The policy performs a
// bounded number of localized template updates (each LLXs + one SCX through
// the tree's pooled reclamation) and returns; it must not call the tree's
// own search routine, which would re-trigger mitigation. See internal/ebst
// for the segment-compression implementation.
type SpineMitigator[K, V any] interface {
	MitigateSpine(t *Tree[K, V], key K)
}

// mitigateSpine runs one policy mitigation pass for a degenerate search,
// dropping the request if the policy has no mitigator or a pass is already
// running (deep probes arrive in bursts; one pass at a time is enough to
// make progress and keeps the stampede cost off the read path).
func (t *Tree[K, V]) mitigateSpine(key K) {
	m, ok := t.pol.(SpineMitigator[K, V])
	if !ok || !t.mitigating.CompareAndSwap(false, true) {
		return
	}
	m.MitigateSpine(t, key)
	t.mitigating.Store(false)
}

// keyLess reports whether key is strictly smaller than n's key, treating
// sentinels as +infinity.
func (t *Tree[K, V]) keyLess(key K, n *Node[K, V]) bool { return n.Inf || t.less(key, n.K) }

// isKey reports whether the leaf l holds exactly key.
func (t *Tree[K, V]) isKey(key K, l *Node[K, V]) bool {
	return !l.Inf && !t.less(key, l.K) && !t.less(l.K, key)
}

// search returns the grandparent, parent and leaf on the search path for
// key, using plain reads (Figure 5 of the paper). gp is nil when the tree
// below the sentinels is a single leaf.
func (t *Tree[K, V]) search(key K) (gp, p, l *Node[K, V]) {
	return t.searchFn(t, key)
}

// searchLess is the comparator-based search loop installed by New.
func searchLess[K, V any](t *Tree[K, V], key K) (gp, p, l *Node[K, V]) {
	p = t.entry
	l = t.entry.left.Load()
	depth := 0
	for !l.Leaf {
		gp, p = p, l
		if t.keyLess(key, l) {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		depth++
	}
	if depth >= spineCap {
		t.noteDeepSpine(depth)
		t.mitigateSpine(key)
	}
	return gp, p, l
}

// searchOrdered is the devirtualized search loop installed by NewOrdered:
// identical to searchLess, but the per-node comparison is the native `<` of
// a cmp.Ordered key type instead of an indirect call through t.less.
func searchOrdered[K cmp.Ordered, V any](t *Tree[K, V], key K) (gp, p, l *Node[K, V]) {
	p = t.entry
	l = t.entry.left.Load()
	depth := 0
	for !l.Leaf {
		gp, p = p, l
		if l.Inf || key < l.K {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		depth++
	}
	if depth >= spineCap {
		t.noteDeepSpine(depth)
		t.mitigateSpine(key)
	}
	return gp, p, l
}

// searchString is searchOrdered instantiated at the concrete string type.
// Generic instantiations are compiled per GC shape, where the comparison and
// key loads go through the shape dictionary; pinning K to string lets the
// compiler emit the direct string-compare call. NewOrdered[string, V]
// installs it via the type assertion above, which succeeds exactly when K is
// string.
func searchString[V any](t *Tree[string, V], key string) (gp, p, l *Node[string, V]) {
	p = t.entry
	l = t.entry.left.Load()
	depth := 0
	for !l.Leaf {
		gp, p = p, l
		if l.Inf || key < l.K {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		depth++
	}
	if depth >= spineCap {
		t.noteDeepSpine(depth)
		t.mitigateSpine(key)
	}
	return gp, p, l
}

// ---------------------------------------------------------------------------
// Dictionary operations.

// Get returns the value associated with key, or the zero value and false if
// key is absent. It uses only plain reads and never blocks or retries.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	g := epoch.Pin()
	_, _, l := t.search(key)
	if t.isKey(key, l) {
		var g0 uint64
		if epoch.PoisonCheck {
			g0 = l.gen
		}
		v := l.val.Load()
		if epoch.PoisonCheck && l.gen != g0 {
			panic("lbst: node recycled under a pinned reader (reclaimcheck)")
		}
		epoch.Unpin(g)
		return v, true
	}
	epoch.Unpin(g)
	var zero V
	return zero, false
}

// Insert associates value with key, returning the previous value and true
// if key was present.
//
// When the key is absent the update follows the tree update template,
// hand-unrolled in tryInsert: one LLX on the leaf's parent, one on the leaf,
// and one pooled SCX that replaces the leaf with a fresh internal node above
// two leaves.
//
// When the key is present the overwrite is performed IN PLACE, without an
// SCX and (for unboxed value types) without allocating: the leaf's value
// cell sits outside the LLX snapshot evidence, so no freezing is needed to
// publish into it. The protocol is:
//
//  1. the search reaches the leaf l holding key;
//  2. the cell's publish bracket is opened (vcell.BeginPublish - a counter
//     on the CELL, so the bracket follows the cell through every aliasing
//     copy of the leaf);
//  3. l's finalized flag is checked. If l is finalized the bracket is
//     closed WITHOUT publishing - the attempt failed, changed nothing, and
//     the operation re-searches. Otherwise the new value is published with
//     one atomic Swap (yielding the displaced value to return), the bracket
//     is closed, and the operation returns success.
//
// The overwrite linearizes at the Swap. The subtlety is an overwrite racing
// the SCX that finalizes l (a deletion of the key, or a leaf-replacing
// tryReplace): the finalizer must return the value the key held when it
// took effect, so it loads the cell after its SCX commits - and it must not
// miss a Swap ordered before that load, nor can a publisher be allowed to
// Swap after the load (a value nobody will ever observe, while the
// publisher reports success). The publish bracket closes both directions:
//
//   - after committing (which finalizes l), the finalizer DRAINS the cell's
//     bracket (vcell.DrainPublishers) before loading. A publisher that saw
//     l un-finalized at step 3 observed the flag before the finalizer's
//     commit, so its bracket was open before the drain began, so its Swap
//     is totally ordered before the finalizer's load: the publish is
//     visible in the finalizer's returned value, and reporting success is
//     correct even though the leaf is now dead.
//   - a publisher that saw l finalized never swaps at all, so there is
//     nothing to miss; it re-searches and the retry sees the world after
//     the finalizer (key absent, or a successor leaf with its own cell).
//
// The drain terminates: once l is finalized every new bracket fails step 3
// and closes immediately, so only the finitely many brackets already open
// are waited for, and a bracket is a handful of straight-line atomics (the
// chaos layer never parks or panics a worker inside one - the bracket's
// instrumentation points are excluded from those injections).
//
// The bracket lives on the cell, not the leaf, because cells alias: a
// rebalancing step or the deletion template's sibling promotion replaces a
// leaf with a copy sharing the SAME cell, and the finalizer of the COPY
// must drain publishers that entered through the original leaf (a publisher
// that saw the original un-finalized registered on the shared cell before
// the original's finalization, which precedes every SCX on the copy). Cell
// aliasing is also what makes the overwrite safe against those copying
// SCXs in the first place: whichever of the publish and the copying SCX
// commits first, the copy reads through the same cell, so the value cannot
// be lost. This is why the cell must stay aliased and must never be
// snapshotted into a fresh cell by a copy.
//
// Under pooled reclamation the whole operation runs inside ONE pinned
// region, so no leaf the operation reaches can be recycled (and its cell
// reset) before the operation returns.
func (t *Tree[K, V]) Insert(key K, value V) (V, bool) {
	old, existed, _ := t.InsertBounded(key, value, dict.Budget{})
	return old, existed
}

// InsertBounded is Insert under a per-operation budget (see dict.Budget):
// the retry loop gives up with ErrRetryBudget or ErrDeadline once the
// budget is exhausted. A budget failure is always effect-free: an insertion
// attempt either commits (SCX or in-place publish, and the loop returns
// success) or changed nothing. The uncontended path never consults the
// budget.
//
// The guard is released by defer, so a panic unwinding out of an attempt —
// chaos injection in the tests, or any future bug — releases the epoch slot
// instead of wedging reclamation for the whole process (the stall watchdog
// exists for holders that park without unwinding; see internal/epoch).
func (t *Tree[K, V]) InsertBounded(key K, value V, budget dict.Budget) (V, bool, error) {
	g := epoch.Pin()
	defer epoch.Unpin(g)
	for fails := 0; ; {
		if err := budget.Check(fails); err != nil {
			var zero V
			return zero, false, err
		}
		_, p, l := t.searchFn(t, key)
		if t.isKey(key, l) {
			if epoch.Enabled {
				// While a snapshot handle is live the in-place publish would
				// mutate a value the snapshot captured, so the overwrite
				// degrades to a leaf-replacement SCX (tryReplace) that leaves
				// the captured leaf frozen. fastWriters brackets the publish
				// so a concurrent capture can drain in-flight fast-path
				// writers before it reads the version counter (see Snapshot).
				t.fastWriters.Add(1)
				if t.snapLive.Load() != 0 {
					t.fastWriters.Add(-1)
					if old, done := t.tryReplace(g, key, value, p, l); done {
						return old, true, nil
					}
				} else {
					old, ok := tryPublish(l, value)
					t.fastWriters.Add(-1)
					if ok {
						return old, true, nil
					}
				}
			} else if old, ok := tryPublish(l, value); ok {
				return old, true, nil
			}
		} else if t.tryInsert(g, key, value, p, l) {
			var zero V
			return zero, false, nil
		}
		// A failed attempt means a concurrent update won the SCX in this
		// neighbourhood (or the leaf was finalized under an overwrite); back
		// off (bounded, randomized, growing with the failure count) before
		// re-searching so heavy contention on a small key range does not
		// degenerate into a storm of wasted re-searches.
		fails++
		core.BackoffWait(fails)
	}
}

// tryPublish is one attempt of the in-place overwrite (see the protocol in
// Insert's comment): open the cell's publish bracket, check the leaf is not
// finalized, and publish with one Swap. A finalized leaf fails the attempt
// with nothing published; the caller re-searches. The bracket is
// straight-line and park-free - its instrumentation points are excluded
// from chaos panic/abandon injection - so a finalizer's DrainPublishers
// always terminates.
func tryPublish[K, V any](l *Node[K, V], value V) (V, bool) {
	l.val.BeginPublish()
	sched.Point(sched.PointVCellRecheck)
	if l.Marked() {
		l.val.EndPublish()
		// Help the SCX that finalized the leaf before failing. LLX on a
		// marked record helps its in-progress descriptor to completion, so
		// the overwrite's retry finds the replacement subtree installed
		// instead of spinning against a stalled finalizer. Without this the
		// retry loop makes no progress on the blocker and the overwrite is
		// not lock-free (a single parked deleter could starve it forever).
		llxscx.LLX(l)
		var zero V
		return zero, false
	}
	old := l.val.Swap(value)
	l.val.EndPublish()
	return old, true
}

// tryInsert is one attempt of the insertion template update (hand-unrolled,
// so an attempt stages its SCX evidence entirely on this frame): LLX the
// parent and the leaf, build the replacement subtree from the pool, and
// publish it with one pooled SCX. The old leaf is reused as the fringe of
// the new subtree (PC6) - leaves carry no mutable balance bookkeeping, so no
// copy is needed and nothing is finalized, exactly as in the non-blocking
// BST of Ellen et al. The leaf stays in V, so the SCX fails if a concurrent
// update froze it.
func (t *Tree[K, V]) tryInsert(g *epoch.Guard, key K, value V, p, l *Node[K, V]) bool {
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return false
	}
	fld := FieldOf(lkP, l)
	if fld == nil {
		return false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return false
	}
	// The key is absent (the overwrite fast path already handled a present
	// key; l's key is immutable, so the check holds for this attempt).
	keyLeaf := t.LeafNode(key, value)
	var repl *Node[K, V]
	if t.keyLess(key, l) {
		repl = t.InternalNode(l.K, t.pol.InternalDeco(), l.Inf, keyLeaf, l)
	} else {
		repl = t.InternalNode(key, t.pol.InternalDeco(), false, l, keyLeaf)
	}
	v := [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkP, lkL}
	var fin [llxscx.MaxV]*Node[K, V]
	if !llxscx.SCXP(g, t.descPool, &v, 2, &fin, 0, fld, l, repl) {
		t.ReleaseFresh(keyLeaf)
		t.ReleaseFresh(repl)
		return false
	}
	if t.pol.CreatesViolation(p, l, repl) {
		t.cleanup(g, key)
	}
	return true
}

// tryReplace is one attempt of the snapshot-safe overwrite of a present key:
// instead of publishing into the (possibly captured) leaf's cell in place, it
// replaces the leaf with a fresh leaf owning a fresh cell, via an
// insertion-shaped pooled SCX that finalizes the old leaf. Live snapshots
// resolve past the replacement through its prev link and keep reading the
// frozen old cell. The displaced value is read from the old leaf's cell after
// the SCX commits, mirroring the deletion template's argument: the read
// happens after the leaf was finalized, so an in-place overwrite that
// linearized before this replacement is visible in the returned value.
func (t *Tree[K, V]) tryReplace(g *epoch.Guard, key K, value V, p, l *Node[K, V]) (V, bool) {
	var zero V
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return zero, false
	}
	fld := FieldOf(lkP, l)
	if fld == nil {
		return zero, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return zero, false
	}
	repl := t.LeafNode(key, value)
	v := [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkP, lkL}
	fin := [llxscx.MaxV]*Node[K, V]{l}
	if !llxscx.SCXP(g, t.descPool, &v, 2, &fin, 1, fld, l, repl) {
		t.ReleaseFresh(repl)
		return zero, false
	}
	// The SCX finalized l, so in-place publishers now fail their bracket
	// check; drain the brackets already open, then load - every publish that
	// will ever be visible is ordered before this read (see the overwrite
	// protocol in Insert's comment).
	l.val.DrainPublishers()
	old := l.val.Load()
	t.RetireNode(g, l)
	return old, true
}

// Delete removes key, returning its value and true if it was present. The
// update performs LLXs on the grandparent, parent, leaf and sibling, and
// one SCX that swings the grandparent's child pointer to a copy of the
// sibling (Figure 6 of the paper).
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	old, existed, _ := t.DeleteBounded(key, dict.Budget{})
	return old, existed
}

// DeleteBounded is Delete under a per-operation budget. A budget failure is
// always effect-free: a deletion attempt either commits its SCX (and the
// loop returns success) or changed nothing. The guard is released by defer
// for the same panic-safety as InsertBounded.
func (t *Tree[K, V]) DeleteBounded(key K, budget dict.Budget) (V, bool, error) {
	g := epoch.Pin()
	defer epoch.Unpin(g)
	for fails := 0; ; {
		if err := budget.Check(fails); err != nil {
			var zero V
			return zero, false, err
		}
		gp, p, l := t.searchFn(t, key)
		if gp == nil || !t.isKey(key, l) {
			var zero V
			return zero, false, nil
		}
		if v, ok := t.tryDelete(g, key, gp, p, l); ok {
			return v, true, nil
		}
		fails++
		core.BackoffWait(fails)
	}
}

// tryDelete is one attempt of the deletion template update (hand-unrolled):
// LLX the grandparent, parent, leaf and sibling, then one pooled SCX swings
// the grandparent's child pointer to a copy of the sibling and finalizes the
// parent, leaf and sibling, which are then retired to the node pool.
func (t *Tree[K, V]) tryDelete(g *epoch.Guard, key K, gp, p, l *Node[K, V]) (V, bool) {
	var zero V
	lkGP, st := llxscx.LLX(gp)
	if st != llxscx.Snapshot {
		return zero, false
	}
	fld := FieldOf(lkGP, p)
	if fld == nil {
		return zero, false
	}
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return zero, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return zero, false
	}
	s := SiblingOf(lkP, l)
	if s == nil {
		return zero, false
	}
	lkS, st := llxscx.LLX(s)
	if st != llxscx.Snapshot {
		return zero, false
	}
	// The promoted copy keeps the sibling's decoration: its own subtree is
	// unchanged, so its balance bookkeeping is too. It must be a fresh copy,
	// not s itself: the SCX protocol's ABA-freedom rests on every value
	// stored into a child field being newly obtained (a stale helper retries
	// its update CAS unconditionally, and re-installing a pointer the field
	// once held would let that CAS resurrect a finalized subtree). Reuse is
	// only safe for nodes that become children of fresh nodes, as in Insert.
	repl := t.CopyNode(lkS, s.Deco)
	// V and R are ordered by a breadth-first traversal (PC8): the parent's
	// children appear in left-to-right order.
	var v [llxscx.MaxV]llxscx.Linked[Node[K, V]]
	var fin [llxscx.MaxV]*Node[K, V]
	if lkP.Child(0) == l {
		v = [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkGP, lkP, lkL, lkS}
		fin = [llxscx.MaxV]*Node[K, V]{p, l, s}
	} else {
		v = [llxscx.MaxV]llxscx.Linked[Node[K, V]]{lkGP, lkP, lkS, lkL}
		fin = [llxscx.MaxV]*Node[K, V]{p, s, l}
	}
	if !llxscx.SCXP(g, t.descPool, &v, 4, &fin, 3, fld, p, repl) {
		t.ReleaseFresh(repl)
		return zero, false
	}
	// The SCX committed, so l is finalized and in-place publishers now fail
	// their bracket check; drain the brackets already open, then load. Every
	// overwrite that linearized before this deletion (its bracket observed l
	// un-finalized) has its Swap ordered before this read and is visible in
	// the returned value; no overwrite can land after it (see the overwrite
	// protocol in Insert's comment).
	l.val.DrainPublishers()
	val := l.val.Load()
	t.RetireNode(g, fin[0])
	t.RetireNode(g, fin[1])
	t.RetireNode(g, fin[2])
	if t.pol.CreatesViolation(gp, p, repl) {
		t.cleanup(g, key)
	}
	return val, true
}

// cleanup repeatedly searches for key from the entry point and asks the
// policy to perform one rebalancing step at the first violation on the
// path, restarting from the entry point after every step, until it reaches
// a leaf without seeing a violation. This is the chromatic tree's Cleanup
// loop (Figure 5 of the paper) generalized over the balancing policy. It
// runs under the invoking operation's pinned guard g.
//
// Note that unlike the chromatic tree's VIOL property, a policy need not
// guarantee that every violation stays on the search path of the key that
// created it; cleanup then restores balance on this key's path and leaves
// any violation it pushed elsewhere to later operations (that is the
// "relaxed" in relaxed balancing).
func (t *Tree[K, V]) cleanup(g *epoch.Guard, key K) {
	for {
		u := t.entry
		n := t.entry.left.Load()
		for {
			if n == nil {
				break // tree changed under us; restart
			}
			if n.Leaf {
				return
			}
			if !n.Inf && t.pol.Violation(n) {
				t.pol.Rebalance(g, u, n)
				break // restart the search from the entry point
			}
			u = n
			if t.keyLess(key, n) {
				n = n.left.Load()
			} else {
				n = n.right.Load()
			}
		}
	}
}

// Cleanup exposes the rebalancing loop for policies that want to schedule
// extra cleanup passes (for example from a background rebalancer). It pins
// its own reclamation guard.
func (t *Tree[K, V]) Cleanup(key K) {
	g := epoch.Pin()
	t.cleanup(g, key)
	epoch.Unpin(g)
}

// RebalanceStep runs one policy rebalancing step at n (whose search-path
// parent is u) under a fresh pinned guard. It exists for quiescent drains
// like ravl's RebalanceAll, which walk the tree themselves.
func (t *Tree[K, V]) RebalanceStep(u, n *Node[K, V]) bool {
	g := epoch.Pin()
	ok := t.pol.Rebalance(g, u, n)
	epoch.Unpin(g)
	return ok
}

// Successor returns the smallest key strictly greater than key, with its
// value; ok is false if no such key exists. See the generic implementation
// in query.go.
func (t *Tree[K, V]) Successor(key K) (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = Successor(t.entry, t.less, key)
	epoch.Unpin(g)
	return k, v, ok
}

// Predecessor returns the largest key strictly smaller than key, with its
// value; ok is false if no such key exists.
func (t *Tree[K, V]) Predecessor(key K) (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = Predecessor(t.entry, t.less, key)
	epoch.Unpin(g)
	return k, v, ok
}

// RangeScan calls fn for every key in [lo, hi] in ascending order and
// returns the number of keys visited; each step is individually
// linearizable. If fn returns false the scan stops early. The whole scan
// runs under one pinned guard; fn must not block indefinitely, since a
// pinned operation holds back memory reclamation.
func (t *Tree[K, V]) RangeScan(lo, hi K, fn func(k K, v V) bool) int {
	g := epoch.Pin()
	n := RangeScan(t.entry, t.less, lo, hi, fn)
	epoch.Unpin(g)
	return n
}

// Ascend calls fn for every key in the dictionary in ascending order and
// returns the number of keys visited; each step is individually
// linearizable. If fn returns false the scan stops early. Like RangeScan it
// runs under one pinned guard.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) int {
	g := epoch.Pin()
	n := Ascend(t.entry, t.less, fn)
	epoch.Unpin(g)
	return n
}

// Min returns the smallest key and its value, or ok=false if empty.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = Min[*Node[K, V], Node[K, V], K, V](t.entry)
	epoch.Unpin(g)
	return k, v, ok
}

// Max returns the largest key and its value, or ok=false if empty.
func (t *Tree[K, V]) Max() (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = Max[*Node[K, V], Node[K, V], K, V](t.entry)
	epoch.Unpin(g)
	return k, v, ok
}

// Size returns the number of keys stored. Quiescence only.
func (t *Tree[K, V]) Size() int {
	size := 0
	visitLeaves(t.entry.left.Load(), func(n *Node[K, V]) {
		if !n.Inf {
			size++
		}
	})
	return size
}

// Keys returns all keys in ascending order. Quiescence only.
func (t *Tree[K, V]) Keys() []K {
	var keys []K
	visitLeaves(t.entry.left.Load(), func(n *Node[K, V]) {
		if !n.Inf {
			keys = append(keys, n.K)
		}
	})
	return keys
}

// Height returns the number of nodes on the longest path from the tree's
// root (below the sentinels) to a leaf. Quiescence only.
func (t *Tree[K, V]) Height() int { return height(t.root()) }

// root returns the root of the tree proper (the leftmost grandchild of the
// entry node), or nil when the dictionary is empty.
func (t *Tree[K, V]) root() *Node[K, V] {
	top := t.entry.left.Load()
	if top == nil || top.Leaf {
		return nil
	}
	return top.left.Load()
}

// Root exposes the root of the tree proper for quiescent inspection by
// policies and tests; nil when the dictionary is empty.
func (t *Tree[K, V]) Root() *Node[K, V] { return t.root() }

func visitLeaves[K, V any](n *Node[K, V], fn func(*Node[K, V])) {
	if n == nil {
		return
	}
	if n.Leaf {
		fn(n)
		return
	}
	visitLeaves(n.left.Load(), fn)
	visitLeaves(n.right.Load(), fn)
}

func height[K, V any](n *Node[K, V]) int {
	if n == nil {
		return 0
	}
	if n.Leaf {
		return 1
	}
	l, r := height(n.left.Load()), height(n.right.Load())
	if l > r {
		return l + 1
	}
	return r + 1
}
