package chromatic

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDiagnoseContention is a watchdog-style test used while developing the
// concurrent algorithm: it runs a contended workload and fails with a
// progress report if throughput collapses, instead of hanging.
func TestDiagnoseContention(t *testing.T) {
	tr := New()
	const goroutines = 16
	const opsPerG = 10000
	const keyRange = 32
	var completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < opsPerG; i++ {
				key := rng.Int63n(keyRange)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					tr.Get(key)
				}
				completed.Add(1)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	deadline := time.After(20 * time.Second)
	tick := time.NewTicker(2 * time.Second)
	defer tick.Stop()
	last := int64(0)
	for {
		select {
		case <-done:
			if err := tr.CheckRedBlack(); err != nil {
				t.Fatalf("invariants: %v", err)
			}
			return
		case <-tick.C:
			cur := completed.Load()
			s := tr.Stats()
			t.Logf("progress: %d ops done (+%d), inserts=%d deletes=%d rebalance=%d rebalanceAttempts=%d rebalanceFails=%d",
				cur, cur-last, s.Insert1.Load()+s.Insert2.Load(), s.Delete.Load(),
				s.RebalanceTotal(), s.RebalanceAttempts.Load(), s.RebalanceFails.Load())
			last = cur
		case <-deadline:
			cur := completed.Load()
			s := tr.Stats()
			var dump strings.Builder
			for k := int64(0); k < keyRange; k++ {
				path := tr.DebugPath(k)
				if strings.Contains(path, "finalized=true") {
					fmt.Fprintf(&dump, "--- search path for key %d contains a finalized node:\n%s", k, path)
				}
			}
			t.Fatalf("stalled: %d/%d ops, rebalance=%d attempts=%d fails=%d violations=%d\n%s",
				cur, goroutines*opsPerG, s.RebalanceTotal(), s.RebalanceAttempts.Load(), s.RebalanceFails.Load(), tr.CountViolations(), dump.String())
		}
	}
}
