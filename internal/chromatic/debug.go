package chromatic

import (
	"fmt"
	"strings"
)

// DebugPath returns a human-readable description of the nodes on the search
// path for key, including each node's weight, leaf flag and whether it has
// been finalized. It is intended for debugging and test failure reports; it
// uses plain reads and is not linearizable.
func (t *Tree[K, V]) DebugPath(key K) string {
	var b strings.Builder
	n := t.entry
	depth := 0
	for n != nil {
		k := "inf"
		if !n.inf {
			k = fmt.Sprintf("%v", n.k)
		}
		fmt.Fprintf(&b, "depth=%d key=%s w=%d leaf=%v finalized=%v\n", depth, k, n.w, n.leaf, n.rec.Marked())
		if n.leaf {
			break
		}
		if t.keyLess(key, n) {
			n = n.left.Load()
		} else {
			n = n.right.Load()
		}
		depth++
	}
	return b.String()
}
