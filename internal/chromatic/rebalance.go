package chromatic

import (
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/llxscx"
)

// This file implements the 22 localized rebalancing steps of the chromatic
// tree (Boyar, Fagerberg and Larsen's steps, as adapted by Brown, Ellen and
// Ruppert in Figure 11 of the paper) and the decision procedure that selects
// which step to apply at a violation (Figures 14-16).
//
// Naming follows the paper: in each transformation u is the node whose child
// pointer is changed, ux is the child of u being replaced (the root of the
// removed subgraph), and deeper nodes append l/r for left/right (uxl, uxr,
// uxrl, ...). Nodes named n, nl, nr, nll, ... are freshly drawn from the
// tree's node pool. Each transformation preserves the binary search tree
// order and the equality of weighted path lengths, never increases the
// number of violations, and keeps any remaining violation on the search path
// of the key whose insertion or deletion created it (property VIOL of
// Section 5.2).
//
// Every step runs under the invoking operation's pinned epoch guard g: its
// SCX goes through the pooled t.scx (which retires the removed nodes on
// success), and on failure every fresh node is returned to the pool with
// releaseFresh - it was never published, so no grace period is needed.

// fieldFor returns the mutable field of u (according to lkU's snapshot) that
// pointed to child, or nil if child was not a child of u in that snapshot.
func fieldFor[K, V any](lkU llxscx.Linked[node[K, V]], child *node[K, V]) *atomic.Pointer[node[K, V]] {
	u := lkU.Node()
	if lkU.Child(0) == child {
		return &u.left
	}
	if lkU.Child(1) == child {
		return &u.right
	}
	return nil
}

// replacementWeight returns the weight of the node that replaces ux as a
// child of u: the computed weight w, or 1 when u is a sentinel so that the
// chromatic root always keeps weight one (the "blindly set the weight to
// one" rule discussed with Lemma 28 of the paper). Forcing weight one at the
// root is safe because the root lies on every path, so weighted path lengths
// remain equal.
func replacementWeight[K, V any](u *node[K, V], w int32) int32 {
	if u.inf {
		return 1
	}
	if w < 0 {
		return 0
	}
	return w
}

// tryRebalance attempts to apply one rebalancing step at the violation
// located at node l, whose ancestors on the search path are p (parent),
// gp (grandparent) and ggp (great-grandparent). It follows Figure 15 of the
// paper. A false return means no step was applied (the caller's Cleanup will
// search again from the entry point).
func (t *Tree[K, V]) tryRebalance(g *epoch.Guard, ggp, gp, p, l *node[K, V]) bool {
	t.stats.RebalanceAttempts.Add(1)
	ok := t.tryRebalanceOnce(g, ggp, gp, p, l)
	if !ok {
		t.stats.RebalanceFails.Add(1)
	}
	return ok
}

func (t *Tree[K, V]) tryRebalanceOnce(g *epoch.Guard, ggp, gp, p, l *node[K, V]) bool {
	r := ggp
	lkR, st := llxscx.LLX(r)
	if st != llxscx.Snapshot {
		return false
	}
	rl, rr := lkR.Child(0), lkR.Child(1)

	rx := gp
	if rx != rl && rx != rr {
		return false
	}
	lkRx, st := llxscx.LLX(rx)
	if st != llxscx.Snapshot {
		return false
	}
	rxl, rxr := lkRx.Child(0), lkRx.Child(1)

	rxx := p
	if rxx != rxl && rxx != rxr {
		return false
	}
	lkRxx, st := llxscx.LLX(rxx)
	if st != llxscx.Snapshot {
		return false
	}
	rxxl, rxxr := lkRxx.Child(0), lkRxx.Child(1)

	if l.w > 1 {
		// Overweight violation at l.
		switch l {
		case rxxl:
			lkRxxl, st := llxscx.LLX(rxxl)
			if st != llxscx.Snapshot {
				return false
			}
			return t.overweightLeft(g, lkR, lkRx, lkRxx, lkRxxl, rl, rr, rxl, rxr, rxxr)
		case rxxr:
			lkRxxr, st := llxscx.LLX(rxxr)
			if st != llxscx.Snapshot {
				return false
			}
			return t.overweightRight(g, lkR, lkRx, lkRxx, lkRxxr, rl, rr, rxl, rxr, rxxl)
		default:
			return false
		}
	}

	// Red-red violation at l (l.w == 0 and rxx.w == 0).
	if rxx == rxl {
		// The red parent is a left child.
		if rxr != nil && rxr.w == 0 {
			lkRxr, st := llxscx.LLX(rxr)
			if st != llxscx.Snapshot {
				return false
			}
			return t.doBLK(g, lkR, lkRx, lkRxx, lkRxr)
		}
		switch l {
		case rxxl:
			return t.doRB1(g, lkR, lkRx, lkRxx)
		case rxxr:
			lkRxxr, st := llxscx.LLX(rxxr)
			if st != llxscx.Snapshot {
				return false
			}
			return t.doRB2(g, lkR, lkRx, lkRxx, lkRxxr)
		default:
			return false
		}
	}
	// The red parent is a right child.
	if rxl != nil && rxl.w == 0 {
		lkRxl, st := llxscx.LLX(rxl)
		if st != llxscx.Snapshot {
			return false
		}
		return t.doBLK(g, lkR, lkRx, lkRxl, lkRxx)
	}
	switch l {
	case rxxr:
		return t.doRB1s(g, lkR, lkRx, lkRxx)
	case rxxl:
		lkRxxl, st := llxscx.LLX(rxxl)
		if st != llxscx.Snapshot {
			return false
		}
		return t.doRB2s(g, lkR, lkRx, lkRxx, lkRxxl)
	default:
		return false
	}
}

// overweightLeft selects and applies the rebalancing step for an overweight
// violation at rxxl, the left child of rxx (Figure 16 of the paper). The
// linked LLX evidence for r, rx, rxx and rxxl is supplied by the caller.
func (t *Tree[K, V]) overweightLeft(g *epoch.Guard, lkR, lkRx, lkRxx, lkRxxl llxscx.Linked[node[K, V]], rl, rr, rxl, rxr, rxxr *node[K, V]) bool {
	_ = rl
	_ = rr
	rxx := lkRxx.Node()
	if rxxr == nil {
		return false
	}
	switch {
	case rxxr.w == 0:
		if rxx.w == 0 {
			if rxx == rxl {
				if rxr == nil {
					return false
				}
				if rxr.w == 0 {
					lkRxr, st := llxscx.LLX(rxr)
					if st != llxscx.Snapshot {
						return false
					}
					return t.doBLK(g, lkR, lkRx, lkRxx, lkRxr)
				}
				lkRxxr, st := llxscx.LLX(rxxr)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doRB2(g, lkR, lkRx, lkRxx, lkRxxr)
			}
			// rxx == rxr
			if rxl == nil {
				return false
			}
			if rxl.w == 0 {
				lkRxl, st := llxscx.LLX(rxl)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doBLK(g, lkR, lkRx, lkRxl, lkRxx)
			}
			return t.doRB1s(g, lkR, lkRx, lkRxx)
		}
		// rxx.w > 0
		lkRxxr, st := llxscx.LLX(rxxr)
		if st != llxscx.Snapshot {
			return false
		}
		rxxrl := lkRxxr.Child(0)
		if rxxrl == nil {
			return false
		}
		lkRxxrl, st := llxscx.LLX(rxxrl)
		if st != llxscx.Snapshot {
			return false
		}
		switch {
		case rxxrl.w > 1:
			return t.doW1(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxrl)
		case rxxrl.w == 0:
			return t.doRB2s(g, lkRx, lkRxx, lkRxxr, lkRxxrl)
		default: // rxxrl.w == 1
			rxxrll, rxxrlr := lkRxxrl.Child(0), lkRxxrl.Child(1)
			if rxxrlr == nil {
				// A node we performed LLX on was modified concurrently.
				return false
			}
			if rxxrlr.w == 0 {
				lkRxxrlr, st := llxscx.LLX(rxxrlr)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doW4(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxrl, lkRxxrlr)
			}
			if rxxrll == nil {
				return false
			}
			if rxxrll.w == 0 {
				lkRxxrll, st := llxscx.LLX(rxxrll)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doW3(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxrl, lkRxxrll)
			}
			return t.doW2(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxrl)
		}
	case rxxr.w == 1:
		lkRxxr, st := llxscx.LLX(rxxr)
		if st != llxscx.Snapshot {
			return false
		}
		rxxrl, rxxrr := lkRxxr.Child(0), lkRxxr.Child(1)
		if rxxrr == nil {
			// A node we performed LLX on was modified concurrently.
			return false
		}
		if rxxrr.w == 0 {
			lkRxxrr, st := llxscx.LLX(rxxrr)
			if st != llxscx.Snapshot {
				return false
			}
			return t.doW5(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxrr)
		}
		if rxxrl == nil {
			return false
		}
		if rxxrl.w == 0 {
			lkRxxrl, st := llxscx.LLX(rxxrl)
			if st != llxscx.Snapshot {
				return false
			}
			return t.doW6(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxrl)
		}
		return t.doPUSH(g, lkRx, lkRxx, lkRxxl, lkRxxr)
	default: // rxxr.w > 1
		lkRxxr, st := llxscx.LLX(rxxr)
		if st != llxscx.Snapshot {
			return false
		}
		return t.doW7(g, lkRx, lkRxx, lkRxxl, lkRxxr)
	}
}

// overweightRight is the mirror image of overweightLeft: it handles an
// overweight violation at rxxr, the right child of rxx.
func (t *Tree[K, V]) overweightRight(g *epoch.Guard, lkR, lkRx, lkRxx, lkRxxr llxscx.Linked[node[K, V]], rl, rr, rxl, rxr, rxxl *node[K, V]) bool {
	_ = rl
	_ = rr
	rxx := lkRxx.Node()
	if rxxl == nil {
		return false
	}
	switch {
	case rxxl.w == 0:
		if rxx.w == 0 {
			if rxx == rxr {
				if rxl == nil {
					return false
				}
				if rxl.w == 0 {
					lkRxl, st := llxscx.LLX(rxl)
					if st != llxscx.Snapshot {
						return false
					}
					return t.doBLK(g, lkR, lkRx, lkRxl, lkRxx)
				}
				lkRxxl, st := llxscx.LLX(rxxl)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doRB2s(g, lkR, lkRx, lkRxx, lkRxxl)
			}
			// rxx == rxl
			if rxr == nil {
				return false
			}
			if rxr.w == 0 {
				lkRxr, st := llxscx.LLX(rxr)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doBLK(g, lkR, lkRx, lkRxx, lkRxr)
			}
			return t.doRB1(g, lkR, lkRx, lkRxx)
		}
		// rxx.w > 0
		lkRxxl, st := llxscx.LLX(rxxl)
		if st != llxscx.Snapshot {
			return false
		}
		rxxlr := lkRxxl.Child(1)
		if rxxlr == nil {
			return false
		}
		lkRxxlr, st := llxscx.LLX(rxxlr)
		if st != llxscx.Snapshot {
			return false
		}
		switch {
		case rxxlr.w > 1:
			return t.doW1s(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxlr)
		case rxxlr.w == 0:
			return t.doRB2(g, lkRx, lkRxx, lkRxxl, lkRxxlr)
		default: // rxxlr.w == 1
			rxxlrl, rxxlrr := lkRxxlr.Child(0), lkRxxlr.Child(1)
			if rxxlrl == nil {
				return false
			}
			if rxxlrl.w == 0 {
				lkRxxlrl, st := llxscx.LLX(rxxlrl)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doW4s(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxlr, lkRxxlrl)
			}
			if rxxlrr == nil {
				return false
			}
			if rxxlrr.w == 0 {
				lkRxxlrr, st := llxscx.LLX(rxxlrr)
				if st != llxscx.Snapshot {
					return false
				}
				return t.doW3s(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxlr, lkRxxlrr)
			}
			return t.doW2s(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxlr)
		}
	case rxxl.w == 1:
		lkRxxl, st := llxscx.LLX(rxxl)
		if st != llxscx.Snapshot {
			return false
		}
		rxxll, rxxlr := lkRxxl.Child(0), lkRxxl.Child(1)
		if rxxll == nil {
			return false
		}
		if rxxll.w == 0 {
			lkRxxll, st := llxscx.LLX(rxxll)
			if st != llxscx.Snapshot {
				return false
			}
			return t.doW5s(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxll)
		}
		if rxxlr == nil {
			return false
		}
		if rxxlr.w == 0 {
			lkRxxlr, st := llxscx.LLX(rxxlr)
			if st != llxscx.Snapshot {
				return false
			}
			return t.doW6s(g, lkRx, lkRxx, lkRxxl, lkRxxr, lkRxxlr)
		}
		return t.doPUSHs(g, lkRx, lkRxx, lkRxxl, lkRxxr)
	default: // rxxl.w > 1
		lkRxxl, st := llxscx.LLX(rxxl)
		if st != llxscx.Snapshot {
			return false
		}
		return t.doW7s(g, lkRx, lkRxx, lkRxxl, lkRxxr)
	}
}

// --- Red-red transformations -------------------------------------------

// doBLK recolours ux and its two red children: both children's copies get
// weight one and ux's copy loses one unit of weight (its own mirror image).
func (t *Tree[K, V]) doBLK(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	nl := t.copyNode(lkUXL, 1)
	nr := t.copyNode(lkUXR, 1)
	n := t.internalLike(ux, replacementWeight(u, ux.w-1), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR}
	r := [llxscx.MaxV]*node[K, V]{ux, lkUXL.Node(), lkUXR.Node()}
	if !t.scx(g, &v, 4, &r, 3, fld, ux, n) {
		t.releaseFresh(nl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.BLK.Add(1)
	return true
}

// doRB1 performs a single rotation fixing a red-red violation at the
// left-left grandchild of u.
func (t *Tree[K, V]) doRB1(g *epoch.Guard, lkU, lkUX, lkUXL llxscx.Linked[node[K, V]]) bool {
	u, ux, uxl := lkU.Node(), lkUX.Node(), lkUXL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxr := lkUX.Child(1)
	uxll, uxlr := lkUXL.Child(0), lkUXL.Child(1)
	nr := t.internalLike(ux, 0, uxlr, uxr)
	n := t.internalLike(uxl, replacementWeight(u, ux.w), uxll, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl}
	if !t.scx(g, &v, 3, &r, 2, fld, ux, n) {
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.RB1.Add(1)
	return true
}

// doRB1s is the mirror image of doRB1 (red-red violation at the right-right
// grandchild of u).
func (t *Tree[K, V]) doRB1s(g *epoch.Guard, lkU, lkUX, lkUXR llxscx.Linked[node[K, V]]) bool {
	u, ux, uxr := lkU.Node(), lkUX.Node(), lkUXR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxl := lkUX.Child(0)
	uxrl, uxrr := lkUXR.Child(0), lkUXR.Child(1)
	nl := t.internalLike(ux, 0, uxl, uxrl)
	n := t.internalLike(uxr, replacementWeight(u, ux.w), nl, uxrr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxr}
	if !t.scx(g, &v, 3, &r, 2, fld, ux, n) {
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorRB1.Add(1)
	return true
}

// doRB2 performs a double rotation fixing a red-red violation at the
// left-right grandchild of u (Figure 17 of the paper).
func (t *Tree[K, V]) doRB2(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXLR llxscx.Linked[node[K, V]]) bool {
	u, ux, uxl, uxlr := lkU.Node(), lkUX.Node(), lkUXL.Node(), lkUXLR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxr := lkUX.Child(1)
	uxll := lkUXL.Child(0)
	uxlrl, uxlrr := lkUXLR.Child(0), lkUXLR.Child(1)
	nl := t.internalLike(uxl, 0, uxll, uxlrl)
	nr := t.internalLike(ux, 0, uxlrr, uxr)
	n := t.internalLike(uxlr, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXLR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxlr}
	if !t.scx(g, &v, 4, &r, 3, fld, ux, n) {
		t.releaseFresh(nl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.RB2.Add(1)
	return true
}

// doRB2s is the mirror image of doRB2 (violation at the right-left
// grandchild of u).
func (t *Tree[K, V]) doRB2s(g *epoch.Guard, lkU, lkUX, lkUXR, lkUXRL llxscx.Linked[node[K, V]]) bool {
	u, ux, uxr, uxrl := lkU.Node(), lkUX.Node(), lkUXR.Node(), lkUXRL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxl := lkUX.Child(0)
	uxrr := lkUXR.Child(1)
	uxrll, uxrlr := lkUXRL.Child(0), lkUXRL.Child(1)
	nl := t.internalLike(ux, 0, uxl, uxrll)
	nr := t.internalLike(uxr, 0, uxrlr, uxrr)
	n := t.internalLike(uxrl, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXR, lkUXRL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxr, uxrl}
	if !t.scx(g, &v, 4, &r, 3, fld, ux, n) {
		t.releaseFresh(nl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorRB2.Add(1)
	return true
}

// --- Overweight transformations ------------------------------------------

// pushUp implements the construction shared by PUSH and W7: both children
// give up one unit of weight to their parent.
func (t *Tree[K, V]) pushUp(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR llxscx.Linked[node[K, V]], counter *atomic.Int64) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr := lkUXL.Node(), lkUXR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	nl := t.copyNode(lkUXL, uxl.w-1)
	nr := t.copyNode(lkUXR, uxr.w-1)
	n := t.internalLike(ux, replacementWeight(u, ux.w+1), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr}
	if !t.scx(g, &v, 4, &r, 3, fld, ux, n) {
		t.releaseFresh(nl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	counter.Add(1)
	return true
}

// doPUSH handles an overweight left child whose sibling has weight one and
// no red children.
func (t *Tree[K, V]) doPUSH(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR llxscx.Linked[node[K, V]]) bool {
	return t.pushUp(g, lkU, lkUX, lkUXL, lkUXR, &t.stats.PUSH)
}

// doPUSHs is the mirror image of doPUSH.
func (t *Tree[K, V]) doPUSHs(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR llxscx.Linked[node[K, V]]) bool {
	return t.pushUp(g, lkU, lkUX, lkUXL, lkUXR, &t.stats.MirrorPUSH)
}

// doW7 handles the case where both children of ux are overweight.
func (t *Tree[K, V]) doW7(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR llxscx.Linked[node[K, V]]) bool {
	return t.pushUp(g, lkU, lkUX, lkUXL, lkUXR, &t.stats.W7)
}

// doW7s is the mirror image of doW7.
func (t *Tree[K, V]) doW7s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR llxscx.Linked[node[K, V]]) bool {
	return t.pushUp(g, lkU, lkUX, lkUXL, lkUXR, &t.stats.MirrorW7)
}

// doW1 handles an overweight uxl whose sibling uxr is red and whose nephew
// uxrl is overweight as well.
func (t *Tree[K, V]) doW1(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXRL llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxrl := lkUXL.Node(), lkUXR.Node(), lkUXRL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxrr := lkUXR.Child(1)
	nll := t.copyNode(lkUXL, uxl.w-1)
	nlr := t.copyNode(lkUXRL, uxrl.w-1)
	nl := t.internalLike(ux, 1, nll, nlr)
	n := t.internalLike(uxr, replacementWeight(u, ux.w), nl, uxrr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXRL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxrl}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nll)
		t.releaseFresh(nlr)
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.W1.Add(1)
	return true
}

// doW1s is the mirror image of doW1.
func (t *Tree[K, V]) doW1s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXLR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxlr := lkUXL.Node(), lkUXR.Node(), lkUXLR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxll := lkUXL.Child(0)
	nrr := t.copyNode(lkUXR, uxr.w-1)
	nrl := t.copyNode(lkUXLR, uxlr.w-1)
	nr := t.internalLike(ux, 1, nrl, nrr)
	n := t.internalLike(uxl, replacementWeight(u, ux.w), uxll, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXLR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxlr}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nrr)
		t.releaseFresh(nrl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorW1.Add(1)
	return true
}

// doW2 handles an overweight uxl with a red sibling uxr whose left child has
// weight one and two non-red children.
func (t *Tree[K, V]) doW2(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXRL llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxrl := lkUXL.Node(), lkUXR.Node(), lkUXRL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxrr := lkUXR.Child(1)
	nll := t.copyNode(lkUXL, uxl.w-1)
	nlr := t.copyNode(lkUXRL, 0)
	nl := t.internalLike(ux, 1, nll, nlr)
	n := t.internalLike(uxr, replacementWeight(u, ux.w), nl, uxrr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXRL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxrl}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nll)
		t.releaseFresh(nlr)
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.W2.Add(1)
	return true
}

// doW2s is the mirror image of doW2.
func (t *Tree[K, V]) doW2s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXLR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxlr := lkUXL.Node(), lkUXR.Node(), lkUXLR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxll := lkUXL.Child(0)
	nrr := t.copyNode(lkUXR, uxr.w-1)
	nrl := t.copyNode(lkUXLR, 0)
	nr := t.internalLike(ux, 1, nrl, nrr)
	n := t.internalLike(uxl, replacementWeight(u, ux.w), uxll, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXLR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxlr}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nrr)
		t.releaseFresh(nrl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorW2.Add(1)
	return true
}

// doW3 handles an overweight uxl with red sibling uxr, where uxrl has weight
// one and a red left child uxrll.
func (t *Tree[K, V]) doW3(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXRL, lkUXRLL llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxrl, uxrll := lkUXL.Node(), lkUXR.Node(), lkUXRL.Node(), lkUXRLL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxrr := lkUXR.Child(1)
	uxrlr := lkUXRL.Child(1)
	uxrlll, uxrllr := lkUXRLL.Child(0), lkUXRLL.Child(1)
	nlll := t.copyNode(lkUXL, uxl.w-1)
	nll := t.internalLike(ux, 1, nlll, uxrlll)
	nlr := t.internalLike(uxrl, 1, uxrllr, uxrlr)
	nl := t.internalLike(uxrll, 0, nll, nlr)
	n := t.internalLike(uxr, replacementWeight(u, ux.w), nl, uxrr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXRL, lkUXRLL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxrl, uxrll}
	if !t.scx(g, &v, 6, &r, 5, fld, ux, n) {
		t.releaseFresh(nlll)
		t.releaseFresh(nll)
		t.releaseFresh(nlr)
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.W3.Add(1)
	return true
}

// doW3s is the mirror image of doW3.
func (t *Tree[K, V]) doW3s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXLR, lkUXLRR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxlr, uxlrr := lkUXL.Node(), lkUXR.Node(), lkUXLR.Node(), lkUXLRR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxll := lkUXL.Child(0)
	uxlrl := lkUXLR.Child(0)
	uxlrrl, uxlrrr := lkUXLRR.Child(0), lkUXLRR.Child(1)
	nrrr := t.copyNode(lkUXR, uxr.w-1)
	nrr := t.internalLike(ux, 1, uxlrrr, nrrr)
	nrl := t.internalLike(uxlr, 1, uxlrl, uxlrrl)
	nr := t.internalLike(uxlrr, 0, nrl, nrr)
	n := t.internalLike(uxl, replacementWeight(u, ux.w), uxll, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXLR, lkUXLRR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxlr, uxlrr}
	if !t.scx(g, &v, 6, &r, 5, fld, ux, n) {
		t.releaseFresh(nrrr)
		t.releaseFresh(nrr)
		t.releaseFresh(nrl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorW3.Add(1)
	return true
}

// doW4 handles an overweight uxl with red sibling uxr, where uxrl has weight
// one and a red right child uxrlr.
func (t *Tree[K, V]) doW4(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXRL, lkUXRLR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxrl, uxrlr := lkUXL.Node(), lkUXR.Node(), lkUXRL.Node(), lkUXRLR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxrr := lkUXR.Child(1)
	uxrll := lkUXRL.Child(0)
	nll := t.copyNode(lkUXL, uxl.w-1)
	nl := t.internalLike(ux, 1, nll, uxrll)
	nrl := t.copyNode(lkUXRLR, 1)
	nr := t.internalLike(uxr, 0, nrl, uxrr)
	n := t.internalLike(uxrl, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXRL, lkUXRLR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxrl, uxrlr}
	if !t.scx(g, &v, 6, &r, 5, fld, ux, n) {
		t.releaseFresh(nll)
		t.releaseFresh(nl)
		t.releaseFresh(nrl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.W4.Add(1)
	return true
}

// doW4s is the mirror image of doW4.
func (t *Tree[K, V]) doW4s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXLR, lkUXLRL llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxlr, uxlrl := lkUXL.Node(), lkUXR.Node(), lkUXLR.Node(), lkUXLRL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxll := lkUXL.Child(0)
	uxlrr := lkUXLR.Child(1)
	nrr := t.copyNode(lkUXR, uxr.w-1)
	nr := t.internalLike(ux, 1, uxlrr, nrr)
	nlr := t.copyNode(lkUXLRL, 1)
	nl := t.internalLike(uxl, 0, uxll, nlr)
	n := t.internalLike(uxlr, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXLR, lkUXLRL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxlr, uxlrl}
	if !t.scx(g, &v, 6, &r, 5, fld, ux, n) {
		t.releaseFresh(nrr)
		t.releaseFresh(nr)
		t.releaseFresh(nlr)
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorW4.Add(1)
	return true
}

// doW5 handles an overweight uxl whose sibling uxr has weight one and a red
// right child uxrr.
func (t *Tree[K, V]) doW5(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXRR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxrr := lkUXL.Node(), lkUXR.Node(), lkUXRR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxrl := lkUXR.Child(0)
	nll := t.copyNode(lkUXL, uxl.w-1)
	nl := t.internalLike(ux, 1, nll, uxrl)
	nr := t.copyNode(lkUXRR, 1)
	n := t.internalLike(uxr, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXRR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxrr}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nll)
		t.releaseFresh(nl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.W5.Add(1)
	return true
}

// doW5s is the mirror image of doW5.
func (t *Tree[K, V]) doW5s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXLL llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxll := lkUXL.Node(), lkUXR.Node(), lkUXLL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxlr := lkUXL.Child(1)
	nrr := t.copyNode(lkUXR, uxr.w-1)
	nr := t.internalLike(ux, 1, uxlr, nrr)
	nl := t.copyNode(lkUXLL, 1)
	n := t.internalLike(uxl, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXLL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxll}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nrr)
		t.releaseFresh(nr)
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorW5.Add(1)
	return true
}

// doW6 handles an overweight uxl whose sibling uxr has weight one and a red
// left child uxrl.
func (t *Tree[K, V]) doW6(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXRL llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxrl := lkUXL.Node(), lkUXR.Node(), lkUXRL.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxrr := lkUXR.Child(1)
	uxrll, uxrlr := lkUXRL.Child(0), lkUXRL.Child(1)
	nll := t.copyNode(lkUXL, uxl.w-1)
	nl := t.internalLike(ux, 1, nll, uxrll)
	nr := t.internalLike(uxr, 1, uxrlr, uxrr)
	n := t.internalLike(uxrl, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXRL}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxrl}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nll)
		t.releaseFresh(nl)
		t.releaseFresh(nr)
		t.releaseFresh(n)
		return false
	}
	t.stats.W6.Add(1)
	return true
}

// doW6s is the mirror image of doW6.
func (t *Tree[K, V]) doW6s(g *epoch.Guard, lkU, lkUX, lkUXL, lkUXR, lkUXLR llxscx.Linked[node[K, V]]) bool {
	u, ux := lkU.Node(), lkUX.Node()
	uxl, uxr, uxlr := lkUXL.Node(), lkUXR.Node(), lkUXLR.Node()
	fld := fieldFor(lkU, ux)
	if fld == nil {
		return false
	}
	uxll := lkUXL.Child(0)
	uxlrl, uxlrr := lkUXLR.Child(0), lkUXLR.Child(1)
	nrr := t.copyNode(lkUXR, uxr.w-1)
	nr := t.internalLike(ux, 1, uxlrr, nrr)
	nl := t.internalLike(uxl, 1, uxll, uxlrl)
	n := t.internalLike(uxlr, replacementWeight(u, ux.w), nl, nr)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkU, lkUX, lkUXL, lkUXR, lkUXLR}
	r := [llxscx.MaxV]*node[K, V]{ux, uxl, uxr, uxlr}
	if !t.scx(g, &v, 5, &r, 4, fld, ux, n) {
		t.releaseFresh(nrr)
		t.releaseFresh(nr)
		t.releaseFresh(nl)
		t.releaseFresh(n)
		return false
	}
	t.stats.MirrorW6.Add(1)
	return true
}
