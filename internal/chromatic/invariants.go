package chromatic

import (
	"errors"
	"fmt"

	"repro/internal/epoch"
)

// This file provides structural inspection utilities used by tests, the
// height-bound experiment and the benchmark harness. They traverse the tree
// with plain reads and are only meaningful when no updates are in progress
// (quiescence); they are not part of the concurrent public API. The one
// exception is CountViolations, which the height-bound experiment samples
// while updaters are running and which therefore pins the epoch layer for
// the duration of its walk.

// Size returns the number of keys currently stored. It runs in linear time
// and should only be used at quiescence.
func (t *Tree[K, V]) Size() int {
	size := 0
	t.visitLeaves(t.entry.left.Load(), func(n *node[K, V]) {
		if !n.inf {
			size++
		}
	})
	return size
}

// Keys returns all keys in ascending order. Quiescence only.
func (t *Tree[K, V]) Keys() []K {
	var keys []K
	t.visitLeaves(t.entry.left.Load(), func(n *node[K, V]) {
		if !n.inf {
			keys = append(keys, n.k)
		}
	})
	return keys
}

// Height returns the number of nodes on the longest path from the chromatic
// tree's root to a leaf (0 for an empty dictionary). Quiescence only.
func (t *Tree[K, V]) Height() int {
	return height(t.chromaticRoot())
}

// CountViolations returns the number of red-red and overweight violations
// currently present in the tree. Unlike the other inspectors it may be
// called while updates are running (the Section 5.3 height-bound experiment
// samples it mid-run): the walk pins an epoch slot so nodes retired by
// concurrent updates park instead of being recycled under it, and the
// fields it reads (weight, leaf flag, child pointers) are immutable after a
// node publishes. The count itself is still only exact at quiescence — a
// mid-run sample is a snapshot of a moving target, which is precisely what
// the experiment wants.
func (t *Tree[K, V]) CountViolations() int {
	g := epoch.Pin()
	defer epoch.Unpin(g)
	root := t.chromaticRoot()
	if root == nil {
		return 0
	}
	return countViolations(nil, root)
}

// chromaticRoot returns the root of the chromatic tree proper (the leftmost
// grandchild of the entry node), or nil when the dictionary is empty.
func (t *Tree[K, V]) chromaticRoot() *node[K, V] {
	top := t.entry.left.Load()
	if top == nil || top.leaf {
		return nil
	}
	return top.left.Load()
}

func (t *Tree[K, V]) visitLeaves(n *node[K, V], fn func(*node[K, V])) {
	if n == nil {
		return
	}
	if n.leaf {
		fn(n)
		return
	}
	t.visitLeaves(n.left.Load(), fn)
	t.visitLeaves(n.right.Load(), fn)
}

func height[K, V any](n *node[K, V]) int {
	if n == nil {
		return 0
	}
	if n.leaf {
		return 1
	}
	l, r := height(n.left.Load()), height(n.right.Load())
	if l > r {
		return l + 1
	}
	return r + 1
}

func countViolations[K, V any](parent, n *node[K, V]) int {
	if n == nil {
		return 0
	}
	c := 0
	if n.w > 1 {
		c += int(n.w) - 1
	}
	if parent != nil && parent.w == 0 && n.w == 0 {
		c++
	}
	if !n.leaf {
		c += countViolations(n, n.left.Load())
		c += countViolations(n, n.right.Load())
	}
	return c
}

// CheckInvariants verifies the structural invariants of the chromatic tree:
//
//   - the sentinel structure at the top of the tree is intact;
//   - every internal node has exactly two children and every leaf none;
//   - leaves have weight at least one and nodes never have negative weight;
//   - keys satisfy the leaf-oriented BST order under the tree's comparator
//     (left subtree strictly smaller than the routing key, right subtree
//     greater or equal);
//   - every root-to-leaf path in the chromatic tree has the same total
//     weight (the defining chromatic tree property);
//   - no reachable node has been finalized.
//
// It must only be called at quiescence. It returns nil if all invariants
// hold.
func (t *Tree[K, V]) CheckInvariants() error {
	top := t.entry.left.Load()
	if top == nil {
		return errors.New("entry has no left child")
	}
	if !top.inf || top.w != 1 {
		return fmt.Errorf("node below entry is not a weight-1 sentinel (inf=%v w=%d)", top.inf, top.w)
	}
	if t.entry.rec.Marked() || top.rec.Marked() {
		return errors.New("a sentinel node is finalized")
	}
	if top.leaf {
		return nil // empty dictionary: Figure 10(a)
	}
	right := top.right.Load()
	if right == nil || !right.leaf || !right.inf {
		return errors.New("right child of the sentinel internal node is not the sentinel leaf")
	}
	root := top.left.Load()
	if root == nil {
		return errors.New("sentinel internal node has no left child")
	}
	if root.w != 1 {
		return fmt.Errorf("chromatic root has weight %d, want 1", root.w)
	}
	type bound struct {
		lo, hi K
		hasLo  bool
		hasHi  bool
	}
	var walk func(parent, n *node[K, V], b bound) (int32, error)
	walk = func(parent, n *node[K, V], b bound) (int32, error) {
		if n == nil {
			return 0, fmt.Errorf("internal node %v has a nil child", parent.k)
		}
		if n.rec.Marked() {
			return 0, fmt.Errorf("reachable node with key %v is finalized", n.k)
		}
		if n.w < 0 {
			return 0, fmt.Errorf("node %v has negative weight %d", n.k, n.w)
		}
		if n.leaf {
			if n.left.Load() != nil || n.right.Load() != nil {
				return 0, fmt.Errorf("leaf %v has children", n.k)
			}
			if n.w < 1 {
				return 0, fmt.Errorf("leaf %v has weight %d, want >= 1", n.k, n.w)
			}
			if !n.inf {
				if b.hasLo && t.less(n.k, b.lo) {
					return 0, fmt.Errorf("leaf key %v below lower bound %v", n.k, b.lo)
				}
				if b.hasHi && !t.less(n.k, b.hi) {
					return 0, fmt.Errorf("leaf key %v not below upper bound %v", n.k, b.hi)
				}
			}
			return n.w, nil
		}
		if n.inf {
			return 0, fmt.Errorf("sentinel internal node with key infinity found inside the chromatic tree")
		}
		if b.hasLo && t.less(n.k, b.lo) {
			return 0, fmt.Errorf("routing key %v below lower bound %v", n.k, b.lo)
		}
		if b.hasHi && t.less(b.hi, n.k) {
			return 0, fmt.Errorf("routing key %v above upper bound %v", n.k, b.hi)
		}
		lb := b
		lb.hi, lb.hasHi = n.k, true
		lw, err := walk(n, n.left.Load(), lb)
		if err != nil {
			return 0, err
		}
		rb := b
		rb.lo, rb.hasLo = n.k, true
		rw, err := walk(n, n.right.Load(), rb)
		if err != nil {
			return 0, err
		}
		if lw != rw {
			return 0, fmt.Errorf("unequal weighted path lengths below key %v: left %d, right %d", n.k, lw, rw)
		}
		return lw + n.w, nil
	}
	_, err := walk(top, root, bound{})
	return err
}

// CheckRedBlack verifies that the tree currently satisfies the red-black
// properties, i.e. that it contains no violations: no node has weight
// greater than one and no red node has a red parent. After all insertions
// and deletions have completed (and, for the plain Chromatic configuration,
// after their cleanup phases), the tree must satisfy this. Quiescence only.
func (t *Tree[K, V]) CheckRedBlack() error {
	if err := t.CheckInvariants(); err != nil {
		return err
	}
	root := t.chromaticRoot()
	if root == nil {
		return nil
	}
	var walk func(parent, n *node[K, V]) error
	walk = func(parent, n *node[K, V]) error {
		if n == nil {
			return nil
		}
		if n.w > 1 {
			return fmt.Errorf("node %v is overweight (w=%d)", n.k, n.w)
		}
		if parent != nil && parent.w == 0 && n.w == 0 {
			return fmt.Errorf("red-red violation at node %v", n.k)
		}
		if n.leaf {
			return nil
		}
		if err := walk(n, n.left.Load()); err != nil {
			return err
		}
		return walk(n, n.right.Load())
	}
	return walk(nil, root)
}
