package chromatic

import (
	"repro/internal/dict"
	"repro/internal/epoch"
	"repro/internal/lbst"
)

// The ordered queries of Section 5.5 of the paper - Successor, Predecessor
// and the derived scans - are implemented once, generically, by the shared
// leaf-oriented BST engine (internal/lbst): an LLX-read BST search followed,
// when the neighbouring leaf must be located, by a VLX over the connecting
// path that validates the two leaves were adjacent in the tree at a single
// point in time. The chromatic tree's node type satisfies lbst.View, so
// these methods are thin wrappers; only the update path (chromatic.go,
// rebalance.go) stays hand-unrolled, exactly as the paper's pseudocode does.
//
// Each wrapper pins the epoch for the duration of the query so that nodes
// reached by the traversal cannot be recycled underneath it. RangeScan and
// Ascend hold a single pin across the whole scan: the scan is not atomic,
// but keeping one pin is cheaper than one per step, and reclamation only
// stalls for the scan's duration, not forever.

// Successor returns the smallest key strictly greater than key together with
// its value, or ok=false if no such key exists.
func (t *Tree[K, V]) Successor(key K) (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = lbst.Successor(t.entry, t.less, key)
	epoch.Unpin(g)
	return k, v, ok
}

// Predecessor returns the largest key strictly smaller than key together
// with its value, or ok=false if no such key exists.
func (t *Tree[K, V]) Predecessor(key K) (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = lbst.Predecessor(t.entry, t.less, key)
	epoch.Unpin(g)
	return k, v, ok
}

// RangeScan calls fn for every key in [lo, hi] in ascending order, using a
// point probe for lo followed by repeated Successor queries. It returns the
// number of keys visited. If fn returns false the scan stops early. The scan
// is not atomic as a whole: each step is individually linearizable.
func (t *Tree[K, V]) RangeScan(lo, hi K, fn func(k K, v V) bool) int {
	g := epoch.Pin()
	n := lbst.RangeScan(t.entry, t.less, lo, hi, fn)
	epoch.Unpin(g)
	return n
}

// Ascend calls fn for every key in the dictionary in ascending order and
// returns the number of keys visited. If fn returns false the scan stops
// early. Each step is individually linearizable.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) int {
	g := epoch.Pin()
	n := lbst.Ascend(t.entry, t.less, fn)
	epoch.Unpin(g)
	return n
}

// Snapshot captures the tree's current state in O(1) and returns its frozen
// view: scans over the view walk the captured version with plain reads —
// no VLX validation, no retries — and stay unchanged under arbitrary
// concurrent updates until Release. Holding a view parks reclamation of the
// nodes it can reach and disables this tree's in-place overwrite fast path;
// release views promptly. See internal/lbst/snapshot.go and DESIGN.md
// ("Versioned snapshots") for the protocol and its safety argument.
func (t *Tree[K, V]) Snapshot() dict.SnapshotView[K, V] {
	return lbst.CaptureSnap[*node[K, V], node[K, V], K, V](t.entry, t.less, &t.gver, &t.snapLive, &t.fastWriters)
}

// Versions returns the commit ticks of the top-level subtree roots currently
// retained in the tree's bounded root forest, unordered. Observability only.
func (t *Tree[K, V]) Versions() []uint64 {
	var out []uint64
	for i := range t.roots {
		if n := t.roots[i].Load(); n != nil {
			out = append(out, n.snapVer.Load())
		}
	}
	return out
}

// Min returns the smallest key in the dictionary and its value, or ok=false
// if the dictionary is empty.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = lbst.Min[*node[K, V], node[K, V], K, V](t.entry)
	epoch.Unpin(g)
	return k, v, ok
}

// Max returns the largest key in the dictionary and its value, or ok=false
// if the dictionary is empty. (Sentinel keys are treated as +infinity and
// are never returned.)
func (t *Tree[K, V]) Max() (k K, v V, ok bool) {
	g := epoch.Pin()
	k, v, ok = lbst.Max[*node[K, V], node[K, V], K, V](t.entry)
	epoch.Unpin(g)
	return k, v, ok
}
