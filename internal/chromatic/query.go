package chromatic

import "repro/internal/llxscx"

// This file implements the ordered queries of Section 5.5 of the paper:
// Successor and Predecessor. Both perform an ordinary BST search using LLX
// to read child pointers; if the leaf reached already answers the query it
// is returned directly (linearized while it was on the search path),
// otherwise the neighbouring leaf is located and a VLX over the connecting
// path validates that the two leaves were adjacent in the tree at a single
// point in time.

// Successor returns the smallest key strictly greater than key together with
// its value, or ok=false if no such key exists.
func (t *Tree) Successor(key int64) (k, v int64, ok bool) {
retry:
	for {
		var path []llxscx.Linked[node]
		var lkLastLeft llxscx.Linked[node]
		haveLastLeft := false

		l := t.entry
		for !l.leaf {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			if keyLess(key, l) {
				lkLastLeft = lk
				haveLastLeft = true
				path = path[:0]
				path = append(path, lk)
				l = lk.Child(0)
			} else {
				path = append(path, lk)
				l = lk.Child(1)
			}
			if l == nil {
				continue retry
			}
		}
		// The search for key always turns left at the sentinels, so lastLeft
		// exists; if it is the entry node itself the dictionary is empty.
		if !haveLastLeft || lkLastLeft.Node() == t.entry {
			return 0, 0, false
		}
		if keyLess(key, l) {
			// The leaf reached holds a key strictly greater than key, so it
			// is the successor (linearized while it was on the search path).
			if l.inf {
				return 0, 0, false
			}
			return l.k, l.v, true
		}
		// Otherwise the successor is the leftmost leaf of lastLeft's right
		// subtree. Walk down to it with LLXs and validate the whole
		// connecting path with a VLX.
		succ := lkLastLeft.Child(1)
		if succ == nil {
			continue retry
		}
		for !succ.leaf {
			lk, st := llxscx.LLX(succ)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			succ = lk.Child(0)
			if succ == nil {
				continue retry
			}
		}
		if !llxscx.VLX(path) {
			continue retry
		}
		if succ.inf {
			return 0, 0, false
		}
		return succ.k, succ.v, true
	}
}

// Predecessor returns the largest key strictly smaller than key together
// with its value, or ok=false if no such key exists.
func (t *Tree) Predecessor(key int64) (k, v int64, ok bool) {
retry:
	for {
		var path []llxscx.Linked[node]
		var lkLastRight llxscx.Linked[node]
		haveLastRight := false

		l := t.entry
		for !l.leaf {
			lk, st := llxscx.LLX(l)
			if st != llxscx.Snapshot {
				continue retry
			}
			if keyLess(key, l) {
				path = append(path, lk)
				l = lk.Child(0)
			} else {
				lkLastRight = lk
				haveLastRight = true
				path = path[:0]
				path = append(path, lk)
				l = lk.Child(1)
			}
			if l == nil {
				continue retry
			}
		}
		if !l.inf && l.k < key {
			// The leaf reached holds a key strictly smaller than key, so it
			// is the predecessor.
			return l.k, l.v, true
		}
		if !haveLastRight {
			// The search never turned right: every key in the dictionary is
			// greater than or equal to key.
			return 0, 0, false
		}
		// The predecessor is the rightmost leaf of lastRight's left subtree.
		pred := lkLastRight.Child(0)
		if pred == nil {
			continue retry
		}
		for !pred.leaf {
			lk, st := llxscx.LLX(pred)
			if st != llxscx.Snapshot {
				continue retry
			}
			path = append(path, lk)
			pred = lk.Child(1)
			if pred == nil {
				continue retry
			}
		}
		if !llxscx.VLX(path) {
			continue retry
		}
		if pred.inf {
			return 0, 0, false
		}
		return pred.k, pred.v, true
	}
}

// RangeScan calls fn for every key in [lo, hi] in ascending order, using
// repeated Successor queries. It returns the number of keys visited. If fn
// returns false the scan stops early. The scan is not atomic as a whole:
// each step is individually linearizable.
func (t *Tree) RangeScan(lo, hi int64, fn func(k, v int64) bool) int {
	count := 0
	k := lo - 1
	if lo == -1<<63 {
		// Avoid underflow: probe the minimum directly.
		if key, v, ok := t.Min(); ok && key <= hi {
			if !fn(key, v) {
				return 1
			}
			count++
			k = key
		} else {
			return 0
		}
	}
	for {
		key, v, ok := t.Successor(k)
		if !ok || key > hi {
			return count
		}
		count++
		if !fn(key, v) {
			return count
		}
		k = key
	}
}

// Min returns the smallest key in the dictionary and its value, or ok=false
// if the dictionary is empty.
func (t *Tree) Min() (k, v int64, ok bool) {
	return t.Successor(-1 << 63)
}

// Max returns the largest key in the dictionary and its value, or ok=false
// if the dictionary is empty. (Sentinel keys are treated as +infinity and
// are never returned.)
func (t *Tree) Max() (k, v int64, ok bool) {
	// All real keys are strictly below the sentinels, so Predecessor of the
	// largest representable key finds the maximum unless that key itself is
	// stored; check it first.
	const top = 1<<63 - 1
	if v, ok := t.Get(top); ok {
		return top, v, true
	}
	return t.Predecessor(top)
}
