package chromatic

import "repro/internal/lbst"

// The ordered queries of Section 5.5 of the paper - Successor, Predecessor
// and the derived scans - are implemented once, generically, by the shared
// leaf-oriented BST engine (internal/lbst): an LLX-read BST search followed,
// when the neighbouring leaf must be located, by a VLX over the connecting
// path that validates the two leaves were adjacent in the tree at a single
// point in time. The chromatic tree's node type satisfies lbst.View, so
// these methods are thin wrappers; only the update path (chromatic.go,
// rebalance.go) stays hand-unrolled, exactly as the paper's pseudocode does.

// Successor returns the smallest key strictly greater than key together with
// its value, or ok=false if no such key exists.
func (t *Tree[K, V]) Successor(key K) (k K, v V, ok bool) {
	return lbst.Successor(t.entry, t.less, key)
}

// Predecessor returns the largest key strictly smaller than key together
// with its value, or ok=false if no such key exists.
func (t *Tree[K, V]) Predecessor(key K) (k K, v V, ok bool) {
	return lbst.Predecessor(t.entry, t.less, key)
}

// RangeScan calls fn for every key in [lo, hi] in ascending order, using a
// point probe for lo followed by repeated Successor queries. It returns the
// number of keys visited. If fn returns false the scan stops early. The scan
// is not atomic as a whole: each step is individually linearizable.
func (t *Tree[K, V]) RangeScan(lo, hi K, fn func(k K, v V) bool) int {
	return lbst.RangeScan(t.entry, t.less, lo, hi, fn)
}

// Ascend calls fn for every key in the dictionary in ascending order and
// returns the number of keys visited. If fn returns false the scan stops
// early. Each step is individually linearizable.
func (t *Tree[K, V]) Ascend(fn func(k K, v V) bool) int {
	return lbst.Ascend(t.entry, t.less, fn)
}

// Min returns the smallest key in the dictionary and its value, or ok=false
// if the dictionary is empty.
func (t *Tree[K, V]) Min() (k K, v V, ok bool) {
	return lbst.Min[*node[K, V], node[K, V], K, V](t.entry)
}

// Max returns the largest key in the dictionary and its value, or ok=false
// if the dictionary is empty. (Sentinel keys are treated as +infinity and
// are never returned.)
func (t *Tree[K, V]) Max() (k K, v V, ok bool) {
	return lbst.Max[*node[K, V], node[K, V], K, V](t.entry)
}
