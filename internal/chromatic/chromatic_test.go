package chromatic

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants on empty tree: %v", err)
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete(5); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tr.Size())
	}
	if _, _, ok := tr.Successor(0); ok {
		t.Fatal("Successor on empty tree returned ok")
	}
	if _, _, ok := tr.Predecessor(0); ok {
		t.Fatal("Predecessor on empty tree returned ok")
	}
	if tr.Height() != 0 {
		t.Fatalf("Height = %d, want 0", tr.Height())
	}
}

func TestSingleInsertGetDelete(t *testing.T) {
	tr := New()
	if _, existed := tr.Insert(42, 100); existed {
		t.Fatal("Insert of new key reported existed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if v, ok := tr.Get(42); !ok || v != 100 {
		t.Fatalf("Get(42) = %d,%v want 100,true", v, ok)
	}
	if old, existed := tr.Insert(42, 200); !existed || old != 100 {
		t.Fatalf("re-Insert = %d,%v want 100,true", old, existed)
	}
	if v, ok := tr.Get(42); !ok || v != 200 {
		t.Fatalf("Get(42) after update = %d,%v want 200,true", v, ok)
	}
	if old, existed := tr.Delete(42); !existed || old != 200 {
		t.Fatalf("Delete(42) = %d,%v want 200,true", old, existed)
	}
	if _, ok := tr.Get(42); ok {
		t.Fatal("Get after Delete returned ok")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after delete: %v", err)
	}
	if tr.Size() != 0 {
		t.Fatalf("Size = %d, want 0", tr.Size())
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(1))
	const ops = 20000
	const keyRange = 500
	for i := 0; i < ops; i++ {
		key := rng.Int63n(keyRange)
		switch rng.Intn(3) {
		case 0: // insert
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("op %d: Insert(%d) = (%d,%v), model (%d,%v)", i, key, old, existed, mOld, mExisted)
			}
			model[key] = val
		case 1: // delete
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("op %d: Delete(%d) = (%d,%v), model (%d,%v)", i, key, old, existed, mOld, mExisted)
			}
			delete(model, key)
		case 2: // get
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("op %d: Get(%d) = (%d,%v), model (%d,%v)", i, key, v, ok, mV, mOk)
			}
		}
		if i%2000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("op %d: invariants: %v", i, err)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, model has %d keys", tr.Size(), len(model))
	}
	// Every model key must be present with the right value.
	for k, v := range model {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("final Get(%d) = (%d,%v), want (%d,true)", k, got, ok, v)
		}
	}
	// The in-order key sequence must match the sorted model keys.
	want := make([]int64, 0, len(model))
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := tr.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys()[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if err := tr.CheckRedBlack(); err != nil {
		t.Fatalf("tree is not a red-black tree at quiescence: %v", err)
	}
}

func TestAscendingAndDescendingInsertions(t *testing.T) {
	for _, tc := range []struct {
		name string
		gen  func(i int) int64
	}{
		{"ascending", func(i int) int64 { return int64(i) }},
		{"descending", func(i int) int64 { return int64(10000 - i) }},
		{"zigzag", func(i int) int64 {
			if i%2 == 0 {
				return int64(i)
			}
			return int64(20000 - i)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := New()
			const n = 4096
			for i := 0; i < n; i++ {
				tr.Insert(tc.gen(i), int64(i))
			}
			if tr.Size() != n {
				t.Fatalf("Size = %d, want %d", tr.Size(), n)
			}
			if err := tr.CheckRedBlack(); err != nil {
				t.Fatalf("not balanced after %s insertions: %v", tc.name, err)
			}
			// A red-black tree with n keys has height at most 2*log2(n+1)+1;
			// add the +1 slack for the leaf-oriented representation.
			maxHeight := 2*log2(n+1) + 2
			if h := tr.Height(); h > maxHeight {
				t.Fatalf("height %d exceeds red-black bound %d for %d keys", h, maxHeight, n)
			}
		})
	}
}

func log2(n int) int {
	h := 0
	for v := 1; v < n; v *= 2 {
		h++
	}
	return h
}

func TestRebalancingStepsAreExercised(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	const keyRange = 2000
	for i := 0; i < 200000; i++ {
		key := rng.Int63n(keyRange)
		if rng.Intn(2) == 0 {
			tr.Insert(key, key)
		} else {
			tr.Delete(key)
		}
	}
	s := tr.Stats()
	if s.RebalanceTotal() == 0 {
		t.Fatal("no rebalancing steps were performed")
	}
	// The common steps must all have fired in a workload of this size. (The
	// W3/W4 family needs specific weight patterns and may legitimately be
	// rare, so only warn about them.)
	mustFire := map[string]int64{
		"BLK":        s.BLK.Load(),
		"RB1":        s.RB1.Load(),
		"RB2":        s.RB2.Load(),
		"RB1s":       s.MirrorRB1.Load(),
		"RB2s":       s.MirrorRB2.Load(),
		"PUSH":       s.PUSH.Load(),
		"PUSHs":      s.MirrorPUSH.Load(),
		"W5":         s.W5.Load(),
		"W5s":        s.MirrorW5.Load(),
		"W6":         s.W6.Load(),
		"W6s":        s.MirrorW6.Load(),
		"Insert/Del": s.Insert1.Load() + s.Delete.Load(),
	}
	for name, count := range mustFire {
		if count == 0 {
			t.Errorf("rebalancing step %s never fired in a 200k-operation workload", name)
		}
	}
	rare := map[string]int64{
		"W1": s.W1.Load(), "W1s": s.MirrorW1.Load(),
		"W2": s.W2.Load(), "W2s": s.MirrorW2.Load(),
		"W3": s.W3.Load(), "W3s": s.MirrorW3.Load(),
		"W4": s.W4.Load(), "W4s": s.MirrorW4.Load(),
		"W7": s.W7.Load(), "W7s": s.MirrorW7.Load(),
	}
	for name, count := range rare {
		if count == 0 {
			t.Logf("note: rare rebalancing step %s did not fire in this workload", name)
		}
	}
	if err := tr.CheckRedBlack(); err != nil {
		t.Fatalf("tree not balanced at quiescence: %v", err)
	}
}

func TestChromatic6DefersRebalancing(t *testing.T) {
	plain := New()
	relaxed := NewChromatic6()
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	for i := 0; i < n; i++ {
		key := rng.Int63n(5000)
		plain.Insert(key, key)
		relaxed.Insert(key, key)
	}
	if err := plain.CheckRedBlack(); err != nil {
		t.Fatalf("plain chromatic tree unbalanced at quiescence: %v", err)
	}
	// Chromatic6 may retain violations, but the structural invariants must
	// hold and the number of violations is bounded by what its threshold
	// permits along each path.
	if err := relaxed.CheckInvariants(); err != nil {
		t.Fatalf("chromatic6 invariants: %v", err)
	}
	if plain.Size() != relaxed.Size() {
		t.Fatalf("sizes differ: %d vs %d", plain.Size(), relaxed.Size())
	}
	if relaxed.Stats().RebalanceTotal() > plain.Stats().RebalanceTotal() {
		t.Errorf("Chromatic6 performed more rebalancing (%d) than Chromatic (%d)",
			relaxed.Stats().RebalanceTotal(), plain.Stats().RebalanceTotal())
	}
}

func TestSuccessorPredecessorSequential(t *testing.T) {
	tr := New()
	keys := []int64{10, 20, 30, 40, 50, 60, 70}
	for _, k := range keys {
		tr.Insert(k, k*10)
	}
	for i, k := range keys {
		// Successor of k is keys[i+1].
		sk, sv, ok := tr.Successor(k)
		if i == len(keys)-1 {
			if ok {
				t.Fatalf("Successor(%d) = %d, want none", k, sk)
			}
		} else if !ok || sk != keys[i+1] || sv != keys[i+1]*10 {
			t.Fatalf("Successor(%d) = (%d,%d,%v), want (%d,%d,true)", k, sk, sv, ok, keys[i+1], keys[i+1]*10)
		}
		// Predecessor of k is keys[i-1].
		pk, pv, ok := tr.Predecessor(k)
		if i == 0 {
			if ok {
				t.Fatalf("Predecessor(%d) = %d, want none", k, pk)
			}
		} else if !ok || pk != keys[i-1] || pv != keys[i-1]*10 {
			t.Fatalf("Predecessor(%d) = (%d,%d,%v), want (%d,%d,true)", k, pk, pv, ok, keys[i-1], keys[i-1]*10)
		}
	}
	// Queries between stored keys.
	if sk, _, ok := tr.Successor(35); !ok || sk != 40 {
		t.Fatalf("Successor(35) = %d,%v want 40,true", sk, ok)
	}
	if pk, _, ok := tr.Predecessor(35); !ok || pk != 30 {
		t.Fatalf("Predecessor(35) = %d,%v want 30,true", pk, ok)
	}
	if sk, _, ok := tr.Successor(0); !ok || sk != 10 {
		t.Fatalf("Successor(0) = %d,%v want 10,true", sk, ok)
	}
	if pk, _, ok := tr.Predecessor(1000); !ok || pk != 70 {
		t.Fatalf("Predecessor(1000) = %d,%v want 70,true", pk, ok)
	}
	if k, v, ok := tr.Min(); !ok || k != 10 || v != 100 {
		t.Fatalf("Min = (%d,%d,%v), want (10,100,true)", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || k != 70 || v != 700 {
		t.Fatalf("Max = (%d,%d,%v), want (70,700,true)", k, v, ok)
	}
}

func TestRangeScan(t *testing.T) {
	tr := New()
	for k := int64(0); k < 100; k += 2 {
		tr.Insert(k, k)
	}
	var got []int64
	n := tr.RangeScan(10, 20, func(k, v int64) bool {
		got = append(got, k)
		return true
	})
	want := []int64{10, 12, 14, 16, 18, 20}
	if n != len(want) || len(got) != len(want) {
		t.Fatalf("RangeScan visited %d keys (%v), want %v", n, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RangeScan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early termination.
	count := 0
	tr.RangeScan(0, 98, func(k, v int64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early-terminated scan visited %d keys, want 3", count)
	}
}

func TestSuccessorAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		k := rng.Int63n(1000)
		tr.Insert(k, k)
		model[k] = k
	}
	sorted := make([]int64, 0, len(model))
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for probe := int64(-5); probe < 1005; probe++ {
		idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] > probe })
		sk, _, ok := tr.Successor(probe)
		if idx == len(sorted) {
			if ok {
				t.Fatalf("Successor(%d) = %d, want none", probe, sk)
			}
		} else if !ok || sk != sorted[idx] {
			t.Fatalf("Successor(%d) = (%d,%v), want %d", probe, sk, ok, sorted[idx])
		}
		pidx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= probe })
		pk, _, ok := tr.Predecessor(probe)
		if pidx == 0 {
			if ok {
				t.Fatalf("Predecessor(%d) = %d, want none", probe, pk)
			}
		} else if !ok || pk != sorted[pidx-1] {
			t.Fatalf("Predecessor(%d) = (%d,%v), want %d", probe, pk, ok, sorted[pidx-1])
		}
	}
}

// TestPropertyInsertDeleteRoundTrip is a testing/quick property: inserting a
// set of keys and then deleting a subset leaves exactly the complement, and
// the tree stays balanced.
func TestPropertyInsertDeleteRoundTrip(t *testing.T) {
	prop := func(keys []int16, deleteMask []bool) bool {
		tr := New()
		present := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(int64(k), int64(k))
			present[int64(k)] = true
		}
		for i, k := range keys {
			if i < len(deleteMask) && deleteMask[i] {
				tr.Delete(int64(k))
				delete(present, int64(k))
			}
		}
		if tr.Size() != len(present) {
			return false
		}
		for k := range present {
			if _, ok := tr.Get(k); !ok {
				return false
			}
		}
		return tr.CheckRedBlack() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKeysSorted is a testing/quick property: the in-order key
// sequence is always strictly increasing and matches the inserted set.
func TestPropertyKeysSorted(t *testing.T) {
	prop := func(keys []int32) bool {
		tr := New()
		set := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(int64(k), 0)
			set[int64(k)] = true
		}
		got := tr.Keys()
		if len(got) != len(set) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		for _, k := range got {
			if !set[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDistinctKeyInsertions(t *testing.T) {
	tr := New()
	const goroutines = 8
	const perG = 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := int64(g*perG + i)
				tr.Insert(key, key*2)
			}
		}(g)
	}
	wg.Wait()
	if got, want := tr.Size(), goroutines*perG; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	for k := int64(0); k < goroutines*perG; k++ {
		if v, ok := tr.Get(k); !ok || v != k*2 {
			t.Fatalf("Get(%d) = (%d,%v), want (%d,true)", k, v, ok, k*2)
		}
	}
	if err := tr.CheckRedBlack(); err != nil {
		t.Fatalf("invariants after concurrent inserts: %v", err)
	}
}

func TestConcurrentMixedWorkloadAgainstPerKeyLastWriter(t *testing.T) {
	// Each goroutine owns a disjoint set of keys, so the final state of every
	// key is determined by its owner's last operation. This checks
	// linearizability of the per-key effects without needing a full history
	// checker.
	tr := New()
	const goroutines = 8
	const keysPerG = 400
	const opsPerG = 20000
	finals := make([]map[int64]int64, goroutines) // -1 means deleted
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			final := map[int64]int64{}
			base := int64(g * keysPerG)
			for i := 0; i < opsPerG; i++ {
				key := base + rng.Int63n(keysPerG)
				if rng.Intn(2) == 0 {
					val := rng.Int63n(1 << 30)
					tr.Insert(key, val)
					final[key] = val
				} else {
					tr.Delete(key)
					final[key] = -1
				}
			}
			finals[g] = final
		}(g)
	}
	wg.Wait()
	for g, final := range finals {
		for key, want := range final {
			v, ok := tr.Get(key)
			if want == -1 {
				if ok {
					t.Fatalf("goroutine %d key %d: present with %d, want deleted", g, key, v)
				}
			} else if !ok || v != want {
				t.Fatalf("goroutine %d key %d: got (%d,%v), want (%d,true)", g, key, v, ok, want)
			}
		}
	}
	if err := tr.CheckRedBlack(); err != nil {
		t.Fatalf("invariants after concurrent mixed workload: %v", err)
	}
}

func TestConcurrentContendedSmallKeyRange(t *testing.T) {
	// High contention: every goroutine hammers the same tiny key range. The
	// final structure must still be a valid balanced chromatic tree.
	tr := New()
	const goroutines = 16
	const opsPerG = 10000
	const keyRange = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < opsPerG; i++ {
				key := rng.Int63n(keyRange)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				case 2:
					tr.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckRedBlack(); err != nil {
		t.Fatalf("invariants after contended workload: %v", err)
	}
	if s := tr.Size(); s > keyRange {
		t.Fatalf("Size = %d larger than key range %d", s, keyRange)
	}
}

func TestConcurrentReadersDuringUpdates(t *testing.T) {
	// Even keys are always present with value == key; writers churn odd keys
	// and rewrite even keys with the same value. Readers must therefore
	// always find even keys, and Successor results must be in range, no
	// matter how the tree is being restructured underneath them.
	tr := New()
	const keyRange = 1 << 12
	for k := int64(0); k < keyRange; k += 2 {
		tr.Insert(k, k)
	}
	stop := make(chan struct{})
	errs := make(chan error, 8)
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				key := rng.Int63n(keyRange)
				if key%2 == 1 {
					if rng.Intn(2) == 0 {
						tr.Insert(key, key)
					} else {
						tr.Delete(key)
					}
				} else {
					tr.Insert(key, key)
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 20000; i++ {
				key := rng.Int63n(keyRange/2) * 2
				if v, ok := tr.Get(key); !ok || v != key {
					errs <- fmt.Errorf("Get(%d) = (%d,%v) during updates, want (%d,true)", key, v, ok, key)
					return
				}
				probe := rng.Int63n(keyRange)
				if sk, _, ok := tr.Successor(probe); ok && (sk <= probe || sk >= keyRange) {
					errs <- fmt.Errorf("Successor(%d) = %d out of range", probe, sk)
					return
				}
			}
		}(r)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestNewOrderedInstallsSpecializedSearch pins the constructor-time search
// selection: string-keyed trees get the concrete string specialization,
// other cmp.Ordered keys the generic one, and the specialized search must
// agree with the comparator-based loop.
func TestNewOrderedInstallsSpecializedSearch(t *testing.T) {
	if _, specialized := orderedSearchFor[string, int64](); !specialized {
		t.Fatal("orderedSearchFor[string, V] did not select searchString")
	}
	if _, specialized := orderedSearchFor[int64, int64](); specialized {
		t.Fatal("orderedSearchFor[int64, V] selected the string specialization")
	}
	st := NewOrdered[string, int64]()
	lt := NewLess[string, int64](func(a, b string) bool { return a < b })
	keys := []string{"b", "a", "c/long", "c", "aa", ""}
	for i, k := range keys {
		st.Insert(k, int64(i))
		lt.Insert(k, int64(i))
	}
	for _, k := range append(keys, "zz", "ab") {
		sv, sok := st.Get(k)
		lv, lok := lt.Get(k)
		if sv != lv || sok != lok {
			t.Fatalf("Get(%q): specialized (%d,%v), comparator (%d,%v)", k, sv, sok, lv, lok)
		}
	}
}
