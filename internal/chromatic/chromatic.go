// Package chromatic implements the non-blocking chromatic tree of Brown,
// Ellen and Ruppert, "A General Technique for Non-blocking Trees"
// (PPoPP 2014), Section 5 and Appendix C.
//
// A chromatic tree is a leaf-oriented binary search tree that relaxes the
// balance conditions of a red-black tree: node colours are replaced by
// non-negative integer weights (0 = red, 1 = black, >1 = overweight) and the
// red-black properties may be violated transiently. Dictionary keys are
// stored only in leaves; internal nodes carry routing keys. Insertions and
// deletions are decoupled from rebalancing: each is a small localized update
// that follows the tree update template (LLX on a handful of nodes followed
// by one SCX), and a separate set of 22 localized rebalancing steps (Boyar,
// Fagerberg and Larsen) restores balance. Every operation is non-blocking
// and linearizable, and the height of the tree is O(c + log n) where c is
// the number of insertions and deletions in progress.
//
// Tree (the exported type) supports Get, Insert, Delete, Successor and
// Predecessor. The Chromatic6 variant of the paper — which postpones
// rebalancing until more than six violations accumulate on a search path —
// is obtained with WithAllowedViolations(6).
package chromatic

import (
	"sync/atomic"

	"repro/internal/llxscx"
)

// node is a Data-record of the chromatic tree. Its two child pointers are
// the only mutable fields; key, value, weight and the leaf/sentinel flags
// are immutable, exactly as the tree update template requires. Updates that
// need to change immutable data replace the node with a fresh copy.
type node struct {
	rec  llxscx.Record[node]
	k    int64 // routing key (internal) or dictionary key (leaf); ignored if inf
	v    int64 // associated value (leaves only)
	w    int32 // weight: 0 = red, 1 = black, >1 = overweight
	leaf bool  // true for leaves; leaves' child pointers are always nil
	inf  bool  // true for sentinel nodes, whose key is +infinity

	left, right atomic.Pointer[node]
}

// LLXRecord implements llxscx.DataRecord.
func (n *node) LLXRecord() *llxscx.Record[node] { return &n.rec }

// NumMutable implements llxscx.DataRecord.
func (n *node) NumMutable() int { return 2 }

// Mutable implements llxscx.DataRecord.
func (n *node) Mutable(i int) *atomic.Pointer[node] {
	if i == 0 {
		return &n.left
	}
	return &n.right
}

// Key implements lbst.View, so the chromatic tree shares the engine's
// ordered-query helpers (see query.go).
func (n *node) Key() int64 { return n.k }

// Value implements lbst.View.
func (n *node) Value() int64 { return n.v }

// IsLeaf implements lbst.View.
func (n *node) IsLeaf() bool { return n.leaf }

// IsSentinel implements lbst.View.
func (n *node) IsSentinel() bool { return n.inf }

// keyLess reports whether key is strictly smaller than n's key, treating
// sentinel nodes as holding +infinity.
func keyLess(key int64, n *node) bool {
	return n.inf || key < n.k
}

func newLeaf(k, v int64, w int32) *node {
	return &node{k: k, v: v, w: w, leaf: true}
}

func newSentinelLeaf() *node {
	return &node{w: 1, leaf: true, inf: true}
}

func newInternal(k int64, w int32, inf bool, left, right *node) *node {
	n := &node{k: k, w: w, inf: inf}
	n.left.Store(left)
	n.right.Store(right)
	return n
}

// copyWithWeight returns a fresh copy of the node captured by lk, with the
// given weight and with the children recorded in lk's snapshot.
func copyWithWeight(lk llxscx.Linked[node], w int32) *node {
	src := lk.Node()
	n := &node{k: src.k, v: src.v, w: w, leaf: src.leaf, inf: src.inf}
	n.left.Store(lk.Child(0))
	n.right.Store(lk.Child(1))
	return n
}

// Stats counts the number of successful updates of each kind performed on a
// tree. It is intended for tests and experiments; counts are monotone and
// only approximately ordered with respect to concurrent operations.
type Stats struct {
	Insert1, Insert2, Delete          atomic.Int64
	BLK, RB1, RB2, PUSH, W7           atomic.Int64
	W1, W2, W3, W4, W5, W6            atomic.Int64
	MirrorRB1, MirrorRB2, MirrorPUSH  atomic.Int64
	MirrorW1, MirrorW2, MirrorW3      atomic.Int64
	MirrorW4, MirrorW5, MirrorW6      atomic.Int64
	MirrorW7                          atomic.Int64
	RebalanceAttempts, RebalanceFails atomic.Int64
}

// RebalanceTotal returns the total number of successful rebalancing steps.
func (s *Stats) RebalanceTotal() int64 {
	return s.BLK.Load() + s.RB1.Load() + s.RB2.Load() + s.PUSH.Load() + s.W7.Load() +
		s.W1.Load() + s.W2.Load() + s.W3.Load() + s.W4.Load() + s.W5.Load() + s.W6.Load() +
		s.MirrorRB1.Load() + s.MirrorRB2.Load() + s.MirrorPUSH.Load() + s.MirrorW7.Load() +
		s.MirrorW1.Load() + s.MirrorW2.Load() + s.MirrorW3.Load() + s.MirrorW4.Load() +
		s.MirrorW5.Load() + s.MirrorW6.Load()
}

// Tree is a non-blocking chromatic tree implementing an ordered dictionary
// with int64 keys and values. It is safe for concurrent use by any number of
// goroutines. The zero value is not usable; call New.
type Tree struct {
	// entry is the sentinel entry point (Figure 10 of the paper). It is
	// never removed. entry.left is the root of the structure: a sentinel
	// leaf when the dictionary is empty, or a sentinel internal node whose
	// left subtree is the chromatic tree proper and whose right child is a
	// sentinel leaf.
	entry *node

	// allowed is the number of violations tolerated on a search path before
	// an insertion or deletion that created a violation triggers Cleanup.
	// 0 reproduces the paper's Chromatic, 6 reproduces Chromatic6.
	allowed int

	stats Stats
}

// Option configures a Tree.
type Option func(*Tree)

// WithAllowedViolations sets the number of violations tolerated on a search
// path before rebalancing is triggered (Section 5.6 of the paper). k = 0 is
// the plain chromatic tree; k = 6 is the paper's Chromatic6 variant.
func WithAllowedViolations(k int) Option {
	if k < 0 {
		k = 0
	}
	return func(t *Tree) { t.allowed = k }
}

// New returns an empty chromatic tree.
func New(opts ...Option) *Tree {
	t := &Tree{
		entry: newInternal(0, 1, true, newSentinelLeaf(), nil),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

// NewChromatic6 returns an empty chromatic tree configured as the paper's
// Chromatic6 variant (rebalancing deferred until a search path carries more
// than six violations).
func NewChromatic6() *Tree { return New(WithAllowedViolations(6)) }

// Name identifies the configuration for benchmark reports.
func (t *Tree) Name() string {
	if t.allowed == 0 {
		return "Chromatic"
	}
	if t.allowed == 6 {
		return "Chromatic6"
	}
	return "Chromatic" + itoa(t.allowed)
}

// Stats returns the tree's operation counters.
func (t *Tree) Stats() *Stats { return &t.stats }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// search performs an ordinary BST search for key using plain reads of child
// pointers, exactly as Figure 5 of the paper. It returns the grandparent,
// parent and leaf reached (the grandparent is nil when the chromatic tree is
// empty) together with the number of violations observed on the path, which
// the Chromatic6 variant uses to decide whether to rebalance.
func (t *Tree) search(key int64) (gp, p, l *node, violations int) {
	gp = nil
	p = t.entry
	l = t.entry.left.Load()
	if violationAt(p, l) {
		violations++
	}
	for !l.leaf {
		gp = p
		p = l
		if keyLess(key, l) {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		if violationAt(p, l) {
			violations++
		}
	}
	return gp, p, l, violations
}

// violationAt reports whether a violation (overweight or red-red) occurs at
// child given its parent.
func violationAt(parent, child *node) bool {
	if child == nil {
		return false
	}
	if child.w > 1 {
		return true
	}
	return parent != nil && parent.w == 0 && child.w == 0
}

// Get returns the value associated with key, or (0, false) if key is absent.
// Get uses only plain reads and never blocks or retries (property C3 of the
// paper makes such searches linearizable).
func (t *Tree) Get(key int64) (int64, bool) {
	_, _, l, _ := t.search(key)
	if !l.inf && l.k == key {
		return l.v, true
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *Tree) Contains(key int64) bool {
	_, _, ok := t.get(key)
	return ok
}

func (t *Tree) get(key int64) (int64, int64, bool) {
	_, _, l, _ := t.search(key)
	if !l.inf && l.k == key {
		return l.k, l.v, true
	}
	return 0, 0, false
}

// insertResult carries the outcome of a successful tryInsert or tryDelete.
type updateResult struct {
	old              int64
	existed          bool
	createdViolation bool
}

// Insert associates value with key and returns the previously associated
// value (with true) if key was already present, or (0, false) otherwise.
func (t *Tree) Insert(key, value int64) (int64, bool) {
	for {
		_, p, l, viol := t.search(key)
		res, ok := t.tryInsert(p, l, key, value)
		if !ok {
			continue
		}
		if res.createdViolation && viol+1 > t.allowed {
			t.cleanup(key)
		}
		return res.old, res.existed
	}
}

// Delete removes key and returns the value that was associated with it (with
// true), or (0, false) if key was not present.
func (t *Tree) Delete(key int64) (int64, bool) {
	for {
		gp, p, l, viol := t.search(key)
		res, ok := t.tryDelete(gp, p, l, key)
		if !ok {
			continue
		}
		if res.createdViolation && viol+1 > t.allowed {
			t.cleanup(key)
		}
		return res.old, res.existed
	}
}

// tryInsert performs one attempt of the insertion update at leaf l with
// parent p, following the tree update template (Figure 12 of the paper and
// the Insert transformations of Figure 11). It returns ok=false if the
// attempt must be retried from a fresh search.
func (t *Tree) tryInsert(p, l *node, key, value int64) (updateResult, bool) {
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return updateResult{}, false
	}
	var fld *atomic.Pointer[node]
	switch {
	case lkP.Child(0) == l:
		fld = &p.left
	case lkP.Child(1) == l:
		fld = &p.right
	default:
		return updateResult{}, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return updateResult{}, false
	}

	var res updateResult
	var repl *node
	if !l.inf && l.k == key {
		// Insert2: the key is present; replace the leaf with a fresh copy
		// carrying the new value (and the same weight).
		res.old, res.existed = l.v, true
		repl = newLeaf(key, value, l.w)
	} else {
		// Insert1: the key is absent; replace the leaf with an internal node
		// whose children are a new leaf holding the key and a copy of l. A
		// node placed directly below a sentinel (in particular the chromatic
		// root) always gets weight one, which keeps every violation strictly
		// below the root; elsewhere the internal node absorbs one unit of
		// the old leaf's weight so weighted path lengths are unchanged.
		var newWeight int32 = 1
		if !l.inf && !p.inf {
			newWeight = l.w - 1
		}
		newKeyLeaf := newLeaf(key, value, 1)
		oldLeafCopy := &node{k: l.k, v: l.v, w: 1, leaf: true, inf: l.inf}
		if keyLess(key, l) {
			repl = newInternal(l.k, newWeight, l.inf, newKeyLeaf, oldLeafCopy)
		} else {
			repl = newInternal(key, newWeight, false, oldLeafCopy, newKeyLeaf)
		}
	}

	v := []llxscx.Linked[node]{lkP, lkL}
	r := []*node{l}
	if !llxscx.SCX(v, r, fld, l, repl) {
		return updateResult{}, false
	}
	if res.existed {
		t.stats.Insert2.Add(1)
	} else {
		t.stats.Insert1.Add(1)
	}
	res.createdViolation = repl.w == 0 && p.w == 0
	return res, true
}

// tryDelete performs one attempt of the deletion update at leaf l with
// parent p and grandparent gp, following Figure 6 of the paper. It returns
// ok=false if the attempt must be retried from a fresh search.
func (t *Tree) tryDelete(gp, p, l *node, key int64) (updateResult, bool) {
	// Special case: the chromatic tree is empty (the leaf reached is the
	// sentinel leaf directly below entry), so key is certainly absent.
	if gp == nil {
		return updateResult{existed: false}, true
	}
	// Special case: key is not in the dictionary.
	if l.inf || l.k != key {
		return updateResult{existed: false}, true
	}

	lkGP, st := llxscx.LLX(gp)
	if st != llxscx.Snapshot {
		return updateResult{}, false
	}
	var fld *atomic.Pointer[node]
	switch {
	case lkGP.Child(0) == p:
		fld = &gp.left
	case lkGP.Child(1) == p:
		fld = &gp.right
	default:
		return updateResult{}, false
	}
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return updateResult{}, false
	}
	// Identify the sibling of l from p's snapshot.
	var s *node
	var lIsLeft bool
	switch {
	case lkP.Child(0) == l:
		s, lIsLeft = lkP.Child(1), true
	case lkP.Child(1) == l:
		s, lIsLeft = lkP.Child(0), false
	default:
		return updateResult{}, false
	}
	if s == nil {
		return updateResult{}, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return updateResult{}, false
	}
	lkS, st := llxscx.LLX(s)
	if st != llxscx.Snapshot {
		return updateResult{}, false
	}

	// The sibling is promoted into p's place; its weight absorbs p's weight
	// so that weighted path lengths are preserved (Figure 7), except that a
	// node placed directly below a sentinel always gets weight one.
	var newWeight int32
	if p.inf || gp.inf {
		newWeight = 1
	} else {
		newWeight = p.w + s.w
	}
	repl := copyWithWeight(lkS, newWeight)

	// V and R are ordered by a breadth-first traversal (postcondition PC8):
	// the parent's children appear in left-to-right order.
	var v []llxscx.Linked[node]
	var r []*node
	if lIsLeft {
		v = []llxscx.Linked[node]{lkGP, lkP, lkL, lkS}
		r = []*node{p, l, s}
	} else {
		v = []llxscx.Linked[node]{lkGP, lkP, lkS, lkL}
		r = []*node{p, s, l}
	}
	if !llxscx.SCX(v, r, fld, p, repl) {
		return updateResult{}, false
	}
	t.stats.Delete.Add(1)
	return updateResult{
		old:              l.v,
		existed:          true,
		createdViolation: newWeight > 1,
	}, true
}

// cleanup repeatedly searches for key from the entry point and performs one
// rebalancing step at the first violation it encounters, until it reaches a
// leaf without seeing any violation (Figure 5 of the paper). Because every
// rebalancing step keeps a violation on the search path of the key whose
// insertion or deletion created it (property VIOL), this guarantees the
// violation created by the caller has been eliminated when cleanup returns.
func (t *Tree) cleanup(key int64) {
	for {
		var ggp, gp *node
		p := t.entry
		l := t.entry.left.Load()
		for {
			if violationAt(p, l) {
				// Violations can only occur strictly below the chromatic
				// root (nodes placed directly below sentinels always have
				// weight one), so the great-grandparent always exists here;
				// the guard only protects against giving up cleanup would be
				// wrong, so bail out rather than loop forever.
				if ggp == nil || gp == nil {
					return
				}
				t.tryRebalance(ggp, gp, p, l)
				break // restart the search from the entry point
			}
			if l.leaf {
				return
			}
			ggp, gp, p = gp, p, l
			if keyLess(key, l) {
				l = l.left.Load()
			} else {
				l = l.right.Load()
			}
		}
	}
}
