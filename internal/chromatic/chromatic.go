// Package chromatic implements the non-blocking chromatic tree of Brown,
// Ellen and Ruppert, "A General Technique for Non-blocking Trees"
// (PPoPP 2014), Section 5 and Appendix C.
//
// A chromatic tree is a leaf-oriented binary search tree that relaxes the
// balance conditions of a red-black tree: node colours are replaced by
// non-negative integer weights (0 = red, 1 = black, >1 = overweight) and the
// red-black properties may be violated transiently. Dictionary keys are
// stored only in leaves; internal nodes carry routing keys. Insertions and
// deletions are decoupled from rebalancing: each is a small localized update
// that follows the tree update template (LLX on a handful of nodes followed
// by one SCX), and a separate set of 22 localized rebalancing steps (Boyar,
// Fagerberg and Larsen) restores balance. Every operation is non-blocking
// and linearizable, and the height of the tree is O(c + log n) where c is
// the number of insertions and deletions in progress.
//
// Tree (the exported type) is generic over the key and value types - only
// the search routine compares keys, exactly as the paper's template
// promises - and supports Get, Insert, LoadOrStore, Delete, Successor,
// Predecessor and the derived ordered scans. NewOrdered builds a tree over
// any cmp.Ordered key type, NewLess accepts an arbitrary comparator (see
// dict.Less for the contract), and New keeps the historical int64
// instantiation. The Chromatic6 variant of the paper — which postpones
// rebalancing until more than six violations accumulate on a search path —
// is obtained with WithAllowedViolations(6) or NewChromatic6.
//
// Every operation runs inside an epoch-reclamation pinned region
// (internal/epoch), and each tree recycles its nodes through a sync.Pool and
// its SCX descriptors through an llxscx.Pool, exactly as the shared engine in
// internal/lbst does: a node removed by a committed SCX is retired under the
// operation's guard and re-enters the pool only after a grace period. The
// safety argument is re-derived in DESIGN.md ("Epoch reclamation and the ABA
// re-derivation"). Build with -tags noepoch to fall back to garbage-collected
// reclamation.
package chromatic

import (
	"cmp"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dict"
	"repro/internal/epoch"
	"repro/internal/llxscx"
	"repro/internal/sched"
	"repro/internal/vcell"
)

// node is a Data-record of the chromatic tree. Its two child pointers are
// the only mutable fields; key, weight and the leaf/sentinel flags are
// immutable, exactly as the tree update template requires. Updates that
// need to change immutable data replace the node with a fresh copy.
//
// A leaf's value is NOT immutable data: it lives in a vcell.Cell outside the
// LLX snapshot evidence, so overwriting the value of a present key (the
// paper's Insert2 case) is a single atomic publish instead of a full SCX. A
// fresh leaf points val at its own embedded cell (keeping the common-case
// value load on the leaf's cache lines); every copy of a leaf aliases the
// original's cell (see copyWithWeight), which keeps a racing overwrite
// visible through whichever copy wins. The cell pointer itself is immutable.
type node[K, V any] struct {
	rec  llxscx.Record[node[K, V]]
	k    K              // routing key (internal) or dictionary key (leaf); ignored if inf
	val  *vcell.Cell[V] // value cell (leaves only; nil on internal/sentinel nodes)
	cell vcell.Cell[V]  // a fresh leaf's own cell; unused on copies and non-leaves
	w    int32          // weight: 0 = red, 1 = black, >1 = overweight
	leaf bool           // true for leaves; leaves' child pointers are always nil
	inf  bool           // true for sentinel nodes, whose key is +infinity

	left, right atomic.Pointer[node[K, V]]

	// owner points at the node whose embedded cell this node's val aliases:
	// itself for a fresh value leaf, the original owner for copies
	// (flattened, so chains of copies share one owner), nil for internal and
	// sentinel nodes. Immutable after construction.
	owner *node[K, V]
	// crefs counts, on an owner node, the nodes whose val aliases its
	// embedded cell (itself included); see the cell-owner protocol in
	// internal/lbst, which this package follows verbatim.
	crefs atomic.Int32
	// gen counts how many times this node's memory has been recycled through
	// the pool. Plain field: written only during recycle (after the grace
	// period, which establishes a happens-before edge to every earlier
	// reader) and read only under -tags reclaimcheck.
	gen uint64

	// snapVer and prev are the versioned-snapshot bookkeeping, maintained by
	// the descriptor pool's commit hook exactly as on lbst.Node: snapVer is
	// the commit tick stamped (from pending) immediately before the update
	// CAS that installs the node, prev the value the installing field held
	// before. See internal/lbst/snapshot.go and DESIGN.md ("Versioned
	// snapshots").
	snapVer atomic.Uint64
	prev    atomic.Pointer[node[K, V]]
}

// verPending marks a node whose installing update has not been stamped with
// a commit tick; it compares greater than every capture version.
const verPending = ^uint64(0)

// SnapVer implements lbst.VersionedView.
func (n *node[K, V]) SnapVer() uint64 { return n.snapVer.Load() }

// SnapPrev implements lbst.VersionedView.
func (n *node[K, V]) SnapPrev() *node[K, V] { return n.prev.Load() }

// LLXRecord implements llxscx.DataRecord.
func (n *node[K, V]) LLXRecord() *llxscx.Record[node[K, V]] { return &n.rec }

// NumMutable implements llxscx.DataRecord.
func (n *node[K, V]) NumMutable() int { return 2 }

// Mutable implements llxscx.DataRecord.
func (n *node[K, V]) Mutable(i int) *atomic.Pointer[node[K, V]] {
	if i == 0 {
		return &n.left
	}
	return &n.right
}

// Key implements lbst.View, so the chromatic tree shares the engine's
// ordered-query helpers (see query.go).
func (n *node[K, V]) Key() K { return n.k }

// Value implements lbst.View. It reads the leaf's value cell atomically;
// internal and sentinel nodes (nil cell) read as the zero value.
func (n *node[K, V]) Value() V { return n.val.Load() }

// IsLeaf implements lbst.View.
func (n *node[K, V]) IsLeaf() bool { return n.leaf }

// IsSentinel implements lbst.View.
func (n *node[K, V]) IsSentinel() bool { return n.inf }

// Gen returns the node's reclamation generation counter, bumped every time
// the node's memory is recycled through the pool. It only changes under
// -tags reclaimcheck, where the shared query helpers use it to assert that
// no node is recycled while a pinned reader can still reach it.
func (n *node[K, V]) Gen() uint64 { return n.gen }

func newLeaf[K, V any](k K, v V, w int32) *node[K, V] {
	n := &node[K, V]{k: k, w: w, leaf: true}
	n.cell.Init(vcell.Unboxed[V](), v)
	n.val = &n.cell
	n.owner = n
	n.crefs.Store(1)
	return n
}

func newSentinelLeaf[K, V any]() *node[K, V] {
	return &node[K, V]{w: 1, leaf: true, inf: true}
}

func newInternal[K, V any](k K, w int32, inf bool, left, right *node[K, V]) *node[K, V] {
	n := &node[K, V]{k: k, w: w, inf: inf}
	n.left.Store(left)
	n.right.Store(right)
	return n
}

// copyWithWeight returns a fresh copy of the node captured by lk, with the
// given weight and with the children recorded in lk's snapshot. The copy
// ALIASES the source's value cell rather than capturing the value, so an
// in-place overwrite racing with the copying SCX stays visible through the
// copy whichever commits first (see Insert's overwrite protocol). The copy
// takes a reference on the cell's owner, so the cell outlives every aliasing
// node under pooled reclamation.
func copyWithWeight[K, V any](lk llxscx.Linked[node[K, V]], w int32) *node[K, V] {
	src := lk.Node()
	n := &node[K, V]{k: src.k, val: src.val, w: w, leaf: src.leaf, inf: src.inf}
	n.left.Store(lk.Child(0))
	n.right.Store(lk.Child(1))
	if own := src.owner; own != nil {
		// Safe to increment: src holds a reference on own and src is
		// protected by the caller's pinned region, so the count cannot
		// reach zero concurrently.
		n.owner = own
		own.crefs.Add(1)
	}
	return n
}

// Stats counts the number of successful updates of each kind performed on a
// tree. It is intended for tests and experiments; counts are monotone and
// only approximately ordered with respect to concurrent operations.
type Stats struct {
	Insert1, Insert2, Delete          atomic.Int64
	BLK, RB1, RB2, PUSH, W7           atomic.Int64
	W1, W2, W3, W4, W5, W6            atomic.Int64
	MirrorRB1, MirrorRB2, MirrorPUSH  atomic.Int64
	MirrorW1, MirrorW2, MirrorW3      atomic.Int64
	MirrorW4, MirrorW5, MirrorW6      atomic.Int64
	MirrorW7                          atomic.Int64
	RebalanceAttempts, RebalanceFails atomic.Int64
}

// RebalanceTotal returns the total number of successful rebalancing steps.
func (s *Stats) RebalanceTotal() int64 {
	return s.BLK.Load() + s.RB1.Load() + s.RB2.Load() + s.PUSH.Load() + s.W7.Load() +
		s.W1.Load() + s.W2.Load() + s.W3.Load() + s.W4.Load() + s.W5.Load() + s.W6.Load() +
		s.MirrorRB1.Load() + s.MirrorRB2.Load() + s.MirrorPUSH.Load() + s.MirrorW7.Load() +
		s.MirrorW1.Load() + s.MirrorW2.Load() + s.MirrorW3.Load() + s.MirrorW4.Load() +
		s.MirrorW5.Load() + s.MirrorW6.Load()
}

// Tree is a non-blocking chromatic tree implementing an ordered dictionary
// with keys ordered by a comparator. It is safe for concurrent use by any
// number of goroutines. The zero value is not usable; call New, NewOrdered
// or NewLess.
type Tree[K, V any] struct {
	// entry is the sentinel entry point (Figure 10 of the paper). It is
	// never removed. entry.left is the root of the structure: a sentinel
	// leaf when the dictionary is empty, or a sentinel internal node whose
	// left subtree is the chromatic tree proper and whose right child is a
	// sentinel leaf.
	entry *node[K, V]

	// less orders the keys; sentinels compare greater than every key.
	less func(a, b K) bool

	// allowed is the number of violations tolerated on a search path before
	// an insertion or deletion that created a violation triggers Cleanup.
	// 0 reproduces the paper's Chromatic, 6 reproduces Chromatic6.
	allowed int

	// searchFn performs the plain-read BST search of Figure 5. It is
	// selected at construction: NewLess installs the comparator-based loop,
	// NewOrdered a specialization that compares with the native `<`, so
	// ordered-key trees pay one indirect call per search instead of one per
	// node.
	searchFn func(t *Tree[K, V], key K) (gp, p, l *node[K, V], violations int)

	// unboxed is vcell.Unboxed[V](), computed once so every pooled leaf
	// initializes its cell without re-deriving the representation.
	unboxed bool

	// nodePool recycles this tree's nodes; nodes enter it only through the
	// epoch layer's grace period (or releaseFresh, for nodes that were
	// never published). Per-tree, because the pool is generic over K and V.
	// Heap-allocated separately rather than embedded: a sync.Pool that has
	// ever been used registers itself with the runtime for the rest of the
	// process, and an embedded pool would pin the whole Tree — root and all
	// its nodes — as a GC root long after the tree is dropped.
	nodePool *sync.Pool
	// descPool recycles this tree's SCX descriptors (see llxscx.Pool).
	descPool *llxscx.Pool[node[K, V]]
	// freeNodeFn is the epoch callback for retired nodes, built once at
	// construction so retireNode never allocates a closure.
	freeNodeFn epoch.Func

	// gver, snapLive, fastWriters and the root forest mirror the
	// versioned-snapshot state of lbst.Tree; see internal/lbst/snapshot.go.
	gver        atomic.Uint64
	snapLive    atomic.Int64
	fastWriters atomic.Int64
	roots       [rootHistory]atomic.Pointer[node[K, V]]
	rootsIdx    atomic.Uint64

	stats Stats
}

// rootHistory bounds the retained root forest, as in internal/lbst.
const rootHistory = 8

// config collects the option-controlled settings, so one Option type serves
// every key/value instantiation of Tree.
type config struct {
	allowed int
}

// Option configures a Tree at construction time.
type Option func(*config)

// WithAllowedViolations sets the number of violations tolerated on a search
// path before rebalancing is triggered (Section 5.6 of the paper). k = 0 is
// the plain chromatic tree; k = 6 is the paper's Chromatic6 variant.
func WithAllowedViolations(k int) Option {
	if k < 0 {
		k = 0
	}
	return func(c *config) { c.allowed = k }
}

// NewLess returns an empty chromatic tree whose keys are ordered by less.
func NewLess[K, V any](less func(a, b K) bool, opts ...Option) *Tree[K, V] {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	var sentinelKey K
	t := &Tree[K, V]{
		entry:    newInternal(sentinelKey, 1, true, newSentinelLeaf[K, V](), nil),
		less:     less,
		allowed:  cfg.allowed,
		searchFn: searchLess[K, V],
		unboxed:  vcell.Unboxed[V](),
		descPool: llxscx.NewPool[node[K, V]](),
	}
	t.nodePool = &sync.Pool{New: func() any { return new(node[K, V]) }}
	t.freeNodeFn = func(g *epoch.Guard, obj any) bool {
		t.freeNode(obj.(*node[K, V]))
		return true
	}
	// Commit hook of the versioned-snapshot layer: stamp the installed
	// subtree root and its prev link before the update CAS publishes it, and
	// publish top-level roots into the bounded forest. Idempotent, as every
	// helper invokes it; see internal/lbst for the full argument.
	t.descPool.OnCommit = func(fld *atomic.Pointer[node[K, V]], old, new *node[K, V]) {
		// Stamp→install bracket, closed by OnInstalled after the update CAS;
		// Snapshot reads the version counter and then drains fastWriters.
		// See the lbst commit hook for the full ordering argument.
		t.fastWriters.Add(1)
		if new.snapVer.Load() == verPending {
			new.prev.Store(old)
			sched.Point(sched.PointVerStamp)
			new.snapVer.CompareAndSwap(verPending, t.gver.Add(1))
		}
		if fld == &t.entry.left {
			t.roots[t.rootsIdx.Add(1)%rootHistory].Store(new)
		}
	}
	t.descPool.OnInstalled = func() { t.fastWriters.Add(-1) }
	return t
}

// NewOrdered returns an empty chromatic tree over a naturally ordered key
// type. It behaves exactly like NewLess with cmp.Less, but installs a search
// routine specialized to the native `<` operator, removing the indirect
// comparator call per node on the read path.
func NewOrdered[K cmp.Ordered, V any](opts ...Option) *Tree[K, V] {
	t := NewLess[K, V](cmp.Less[K], opts...)
	t.searchFn, _ = orderedSearchFor[K, V]()
	return t
}

// orderedSearchFor selects the search routine a NewOrdered tree installs:
// the concrete string specialization when K is string (the type assertion
// succeeds exactly then), the generic cmp.Ordered specialization otherwise.
// The boolean reports whether the string specialization was chosen; it
// exists for the construction tests, since the function values themselves
// are hidden behind instantiation wrappers.
func orderedSearchFor[K cmp.Ordered, V any]() (func(*Tree[K, V], K) (gp, p, l *node[K, V], violations int), bool) {
	if fn, ok := any(searchString[V]).(func(*Tree[K, V], K) (gp, p, l *node[K, V], violations int)); ok {
		return fn, true
	}
	return searchOrdered[K, V], false
}

// New returns an empty chromatic tree with int64 keys and values, the
// instantiation the benchmark registry and the paper's figures use.
func New(opts ...Option) *Tree[int64, int64] {
	return NewOrdered[int64, int64](opts...)
}

// NewChromatic6 returns an empty int64-keyed chromatic tree configured as
// the paper's Chromatic6 variant (rebalancing deferred until a search path
// carries more than six violations).
func NewChromatic6() *Tree[int64, int64] { return New(WithAllowedViolations(6)) }

// Name identifies the configuration for benchmark reports.
func (t *Tree[K, V]) Name() string {
	if t.allowed == 0 {
		return "Chromatic"
	}
	if t.allowed == 6 {
		return "Chromatic6"
	}
	return "Chromatic" + itoa(t.allowed)
}

// Stats returns the tree's operation counters.
func (t *Tree[K, V]) Stats() *Stats { return &t.stats }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ---------------------------------------------------------------------------
// Pooled node lifecycle. The protocol is shared with internal/lbst (see its
// package comment and DESIGN.md for the safety argument); it is instantiated
// here a second time because the chromatic tree keeps its own hand-unrolled
// node type, exactly as the paper keeps its pseudocode concrete.

// leafNode returns a leaf holding key and value, drawn from the tree's node
// pool (a fresh allocation under -tags noepoch). The leaf owns its embedded
// value cell.
func (t *Tree[K, V]) leafNode(k K, v V, w int32) *node[K, V] {
	if !epoch.Enabled {
		return newLeaf[K, V](k, v, w)
	}
	n := t.nodePool.Get().(*node[K, V])
	n.k = k
	n.w = w
	n.leaf = true
	n.cell.Init(t.unboxed, v)
	n.val = &n.cell
	n.owner = n
	n.crefs.Store(1)
	n.snapVer.Store(verPending)
	return n
}

// internalNode returns an internal node drawn from the tree's node pool (a
// fresh allocation under -tags noepoch).
func (t *Tree[K, V]) internalNode(k K, w int32, inf bool, left, right *node[K, V]) *node[K, V] {
	if !epoch.Enabled {
		return newInternal(k, w, inf, left, right)
	}
	n := t.nodePool.Get().(*node[K, V])
	n.k = k
	n.w = w
	n.inf = inf
	n.left.Store(left)
	n.right.Store(right)
	n.snapVer.Store(verPending)
	return n
}

// copyNode is copyWithWeight drawing the copy from the tree's node pool (a
// fresh allocation under -tags noepoch). Like it, the copy aliases the
// source's value cell and takes a reference on the cell's owner.
func (t *Tree[K, V]) copyNode(lk llxscx.Linked[node[K, V]], w int32) *node[K, V] {
	if !epoch.Enabled {
		return copyWithWeight(lk, w)
	}
	src := lk.Node()
	n := t.nodePool.Get().(*node[K, V])
	n.k = src.k
	n.val = src.val
	n.w = w
	n.leaf = src.leaf
	n.inf = src.inf
	n.left.Store(lk.Child(0))
	n.right.Store(lk.Child(1))
	if own := src.owner; own != nil {
		n.owner = own
		own.crefs.Add(1)
	}
	n.snapVer.Store(verPending)
	return n
}

// internalLike creates a fresh internal node carrying src's routing key and
// sentinel flag, with the given weight and children.
func (t *Tree[K, V]) internalLike(src *node[K, V], w int32, left, right *node[K, V]) *node[K, V] {
	return t.internalNode(src.k, w, src.inf, left, right)
}

// retireNode hands a node that a committed SCX removed from the tree to the
// reclamation layer under the operation's pinned guard: it re-enters the
// node pool after a grace period. A no-op under -tags noepoch (the garbage
// collector reclaims the node).
func (t *Tree[K, V]) retireNode(g *epoch.Guard, n *node[K, V]) {
	epoch.Retire(g, n, t.freeNodeFn)
}

// releaseFresh recycles a freshly built node whose SCX failed. Such a node
// was never published - no other operation can have seen it - so it
// re-enters the pool immediately, without a grace period. A no-op under
// -tags noepoch.
func (t *Tree[K, V]) releaseFresh(n *node[K, V]) {
	if !epoch.Enabled {
		return
	}
	t.freeNode(n)
}

// scx performs one pooled SCX and, on success, retires the removed nodes
// r[:nr]. On failure the caller is responsible for releasing the fresh
// nodes it built (releaseFresh). Reading fields of a retired node afterwards
// is still safe inside the invoking operation's pinned region: the node
// cannot be recycled before the guard is released plus a grace period.
func (t *Tree[K, V]) scx(g *epoch.Guard, v *[llxscx.MaxV]llxscx.Linked[node[K, V]], nv int, r *[llxscx.MaxV]*node[K, V], nr int, fld *atomic.Pointer[node[K, V]], old, new *node[K, V]) bool {
	if !llxscx.SCXP(g, t.descPool, v, nv, r, nr, fld, old, new) {
		return false
	}
	for i := 0; i < nr; i++ {
		t.retireNode(g, r[i])
	}
	return true
}

// freeNode runs after a retired node's grace period (or immediately, for a
// never-published fresh node): no operation can reach n anymore, so its
// memory may be recycled - except that an owner node whose embedded cell is
// still aliased by live copies must park until the last copy is freed.
func (t *Tree[K, V]) freeNode(n *node[K, V]) {
	own := n.owner
	switch {
	case own == nil:
		// Internal or sentinel node: no cell bookkeeping.
		t.recycle(n)
	case own != n:
		// A copy: its embedded cell was never used; drop its reference on
		// the owner, and recycle the owner too if this was the last alias
		// (the owner was freed earlier and parked as a zombie).
		t.recycle(n)
		if own.crefs.Add(-1) == 0 {
			t.recycle(own)
		}
	default:
		// The owner itself: recycle only if no copy aliases its cell;
		// otherwise park - the last copy's free recycles it via own above.
		if n.crefs.Add(-1) == 0 {
			t.recycle(n)
		}
	}
}

// recycle resets a node whose memory is provably unreachable and returns it
// to the pool. Releasing the record drops the node's reference on its last
// SCX descriptor, which is what lets committed descriptors of long-dead
// updates finally recycle too.
func (t *Tree[K, V]) recycle(n *node[K, V]) {
	llxscx.ReleaseRecord(&n.rec)
	n.left.Store(nil)
	n.right.Store(nil)
	n.val = nil
	n.owner = nil
	n.crefs.Store(0)
	n.snapVer.Store(0)
	n.prev.Store(nil)
	n.cell.Reset()
	var zeroK K
	n.k = zeroK
	n.w = 0
	n.leaf = false
	n.inf = false
	if epoch.PoisonCheck {
		n.gen++
	}
	t.nodePool.Put(n)
}

// DrainReclaim flushes the tree's deferred descriptors and drains the epoch
// layer's retire lists, returning the number of objects still pending
// (process-wide). Meant for tests and quiescent shutdown; see epoch.Drain.
func (t *Tree[K, V]) DrainReclaim() int64 {
	if !epoch.Enabled {
		return 0
	}
	g := epoch.Pin()
	t.descPool.Flush(g)
	epoch.Unpin(g)
	return epoch.Drain()
}

// ---------------------------------------------------------------------------

// keyLess reports whether key is strictly smaller than n's key, treating
// sentinel nodes as holding +infinity.
func (t *Tree[K, V]) keyLess(key K, n *node[K, V]) bool {
	return n.inf || t.less(key, n.k)
}

// isKey reports whether the leaf l holds exactly key (two comparator calls,
// since keys are equal exactly when neither orders before the other).
func (t *Tree[K, V]) isKey(key K, l *node[K, V]) bool {
	return !l.inf && !t.less(key, l.k) && !t.less(l.k, key)
}

// search performs an ordinary BST search for key using plain reads of child
// pointers, exactly as Figure 5 of the paper. It returns the grandparent,
// parent and leaf reached (the grandparent is nil when the chromatic tree is
// empty) together with the number of violations observed on the path, which
// the Chromatic6 variant uses to decide whether to rebalance.
func (t *Tree[K, V]) search(key K) (gp, p, l *node[K, V], violations int) {
	return t.searchFn(t, key)
}

// searchLess is the comparator-based search loop installed by NewLess.
func searchLess[K, V any](t *Tree[K, V], key K) (gp, p, l *node[K, V], violations int) {
	gp = nil
	p = t.entry
	l = t.entry.left.Load()
	if violationAt(p, l) {
		violations++
	}
	for !l.leaf {
		gp = p
		p = l
		if t.keyLess(key, l) {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		if violationAt(p, l) {
			violations++
		}
	}
	return gp, p, l, violations
}

// searchOrdered is the devirtualized search loop installed by NewOrdered:
// identical to searchLess, but the per-node comparison is the native `<` of
// a cmp.Ordered key type instead of an indirect call through t.less.
func searchOrdered[K cmp.Ordered, V any](t *Tree[K, V], key K) (gp, p, l *node[K, V], violations int) {
	gp = nil
	p = t.entry
	l = t.entry.left.Load()
	if violationAt(p, l) {
		violations++
	}
	for !l.leaf {
		gp = p
		p = l
		if l.inf || key < l.k {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		if violationAt(p, l) {
			violations++
		}
	}
	return gp, p, l, violations
}

// searchString is searchOrdered instantiated at the concrete string type.
// Generic instantiations are compiled per GC shape, where the comparison and
// key loads go through the shape dictionary; pinning K to string lets the
// compiler emit the direct string-compare call. NewOrdered[string, V]
// installs it via the type assertion above, which succeeds exactly when K is
// string.
func searchString[V any](t *Tree[string, V], key string) (gp, p, l *node[string, V], violations int) {
	gp = nil
	p = t.entry
	l = t.entry.left.Load()
	if violationAt(p, l) {
		violations++
	}
	for !l.leaf {
		gp = p
		p = l
		if l.inf || key < l.k {
			l = l.left.Load()
		} else {
			l = l.right.Load()
		}
		if violationAt(p, l) {
			violations++
		}
	}
	return gp, p, l, violations
}

// violationAt reports whether a violation (overweight or red-red) occurs at
// child given its parent.
func violationAt[K, V any](parent, child *node[K, V]) bool {
	if child == nil {
		return false
	}
	if child.w > 1 {
		return true
	}
	return parent != nil && parent.w == 0 && child.w == 0
}

// Get returns the value associated with key, or the zero value and false if
// key is absent. Get uses only plain reads and never blocks or retries
// (property C3 of the paper makes such searches linearizable).
func (t *Tree[K, V]) Get(key K) (V, bool) {
	g := epoch.Pin()
	_, _, l, _ := t.search(key)
	if t.isKey(key, l) {
		var g0 uint64
		if epoch.PoisonCheck {
			g0 = l.gen
		}
		v := l.val.Load()
		if epoch.PoisonCheck && l.gen != g0 {
			panic("chromatic: node recycled under a pinned reader (reclaimcheck)")
		}
		epoch.Unpin(g)
		return v, true
	}
	epoch.Unpin(g)
	var zero V
	return zero, false
}

// Contains reports whether key is present.
func (t *Tree[K, V]) Contains(key K) bool {
	g := epoch.Pin()
	_, _, l, _ := t.search(key)
	ok := t.isKey(key, l)
	epoch.Unpin(g)
	return ok
}

// updateResult carries the outcome of a successful tryInsert or tryDelete.
type updateResult[V any] struct {
	old              V
	existed          bool
	createdViolation bool
}

// Insert associates value with key and returns the previously associated
// value (with true) if key was already present, or the zero value and false
// otherwise.
//
// When key is present (the paper's Insert2 transformation) the overwrite is
// performed IN PLACE, without an SCX and (for unboxed value types) without
// allocating: the cell's publish bracket is opened (vcell.BeginPublish),
// the leaf's finalized flag is checked, and if the leaf is live the new
// value is published with one atomic Swap before the bracket closes. A
// finalized leaf fails the attempt with nothing published and the
// operation re-searches. The overwrite linearizes at the Swap even if the
// leaf is finalized immediately after: a finalizer that must report the
// displaced value (tryDelete, tryReplace) drains the cell's bracket after
// its SCX commits and before it loads the cell, so a publish whose bracket
// saw the leaf un-finalized is totally ordered before the finalizer's load
// and cannot be missed - and no publish can land after it. See the full
// protocol argument in internal/lbst (Insert's comment); this engine
// mirrors it exactly. Copies alias the leaf's cell (copyWithWeight,
// tryInsert's overweight-leaf copy) and the bracket lives on the cell, so
// both the published value and the bracket follow the cell through every
// copy - a racing copy can never lose either.
//
// Under pooled reclamation the whole operation runs inside ONE pinned
// region, so no leaf the operation reaches can be recycled (and its cell
// reset) before the operation returns.
func (t *Tree[K, V]) Insert(key K, value V) (V, bool) {
	old, existed, _ := t.InsertBounded(key, value, dict.Budget{})
	return old, existed
}

// InsertBounded is Insert under a per-operation budget (dict.Budget),
// mirroring the lbst engine's contract: the retry loop gives up with
// ErrRetryBudget/ErrDeadline, a budget failure is always effect-free (a
// failed in-place attempt publishes nothing; see the bracket protocol in
// Insert's comment), the uncontended path never consults the budget, and
// the guard is released by defer so a panicking attempt cannot wedge the
// epoch.
func (t *Tree[K, V]) InsertBounded(key K, value V, budget dict.Budget) (V, bool, error) {
	// A failed attempt means a concurrent update won the SCX in this
	// neighbourhood (or the leaf was finalized under an overwrite); back off
	// (bounded, randomized, growing with the failure count) before
	// re-searching so heavy contention on a small key range does not
	// degenerate into a storm of wasted re-searches.
	g := epoch.Pin()
	defer epoch.Unpin(g)
	for fails := 0; ; {
		if err := budget.Check(fails); err != nil {
			var zero V
			return zero, false, err
		}
		_, p, l, viol := t.search(key)
		if t.isKey(key, l) {
			if epoch.Enabled {
				// While a snapshot handle is live the in-place publish would
				// mutate a value the snapshot captured, so the overwrite
				// degrades to a leaf-replacement SCX; fastWriters brackets the
				// publish so a concurrent capture can drain in-flight writers.
				// See Snapshot and internal/lbst/snapshot.go.
				t.fastWriters.Add(1)
				if t.snapLive.Load() != 0 {
					t.fastWriters.Add(-1)
					if old, done := t.tryReplace(g, key, value, p, l); done {
						t.stats.Insert2.Add(1)
						return old, true, nil
					}
				} else {
					old, ok := tryPublish(l, value)
					t.fastWriters.Add(-1)
					if ok {
						t.stats.Insert2.Add(1)
						return old, true, nil
					}
				}
			} else if old, ok := tryPublish(l, value); ok {
				t.stats.Insert2.Add(1)
				return old, true, nil
			}
			fails++
			core.BackoffWait(fails)
			continue
		}
		res, ok := t.tryInsert(g, p, l, key, value)
		if !ok {
			fails++
			core.BackoffWait(fails)
			continue
		}
		if res.createdViolation && viol+1 > t.allowed {
			t.cleanup(g, key)
		}
		return res.old, res.existed, nil
	}
}

// tryPublish is one attempt of the in-place overwrite (see the protocol in
// Insert's comment): open the cell's publish bracket, check the leaf is not
// finalized, and publish with one Swap. A finalized leaf fails the attempt
// with nothing published; the caller re-searches. The bracket is
// straight-line and park-free - its instrumentation points are excluded
// from chaos panic/abandon injection - so a finalizer's DrainPublishers
// always terminates.
func tryPublish[K, V any](l *node[K, V], value V) (V, bool) {
	l.val.BeginPublish()
	sched.Point(sched.PointVCellRecheck)
	if l.rec.Marked() {
		l.val.EndPublish()
		// Help the SCX that finalized the leaf before failing. LLX on a
		// marked record helps its in-progress descriptor to completion, so
		// the overwrite's retry finds the replacement subtree installed
		// instead of spinning against a stalled finalizer. Without this the
		// retry loop makes no progress on the blocker and the overwrite is
		// not lock-free (a single parked deleter could starve it forever).
		llxscx.LLX(l)
		var zero V
		return zero, false
	}
	old := l.val.Swap(value)
	l.val.EndPublish()
	return old, true
}

// LoadOrStore returns the value already associated with key (with
// loaded=true) if key is present; otherwise it inserts value and returns it
// (with loaded=false). Unlike a Get-then-Insert pair, a LoadOrStore race
// between two goroutines guarantees exactly one of them stores, which makes
// it the right primitive for sharing per-key state (for example a counter)
// between concurrent writers.
func (t *Tree[K, V]) LoadOrStore(key K, value V) (actual V, loaded bool) {
	// The guard is released by defer (panic-safety, as in InsertBounded).
	g := epoch.Pin()
	defer epoch.Unpin(g)
	for fails := 0; ; {
		_, p, l, viol := t.search(key)
		if t.isKey(key, l) {
			// The key was present while l was on the search path; linearize
			// there, exactly as Get does.
			return l.val.Load(), true
		}
		res, ok := t.tryInsert(g, p, l, key, value)
		if !ok {
			fails++
			core.BackoffWait(fails)
			continue
		}
		if res.createdViolation && viol+1 > t.allowed {
			t.cleanup(g, key)
		}
		return value, false
	}
}

// Delete removes key and returns the value that was associated with it (with
// true), or the zero value and false if key was not present.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	old, existed, _ := t.DeleteBounded(key, dict.Budget{})
	return old, existed
}

// DeleteBounded is Delete under a per-operation budget; a budget failure is
// always effect-free (an attempt either commits its SCX or changed
// nothing). The guard is released by defer for the same panic-safety as
// InsertBounded.
func (t *Tree[K, V]) DeleteBounded(key K, budget dict.Budget) (V, bool, error) {
	g := epoch.Pin()
	defer epoch.Unpin(g)
	for fails := 0; ; {
		if err := budget.Check(fails); err != nil {
			var zero V
			return zero, false, err
		}
		gp, p, l, viol := t.search(key)
		res, ok := t.tryDelete(g, gp, p, l, key)
		if !ok {
			fails++
			core.BackoffWait(fails)
			continue
		}
		if res.createdViolation && viol+1 > t.allowed {
			t.cleanup(g, key)
		}
		return res.old, res.existed, nil
	}
}

// tryInsert performs one attempt of the insertion update at leaf l with
// parent p, following the tree update template (Figure 12 of the paper and
// the Insert transformations of Figure 11). It returns ok=false if the
// attempt must be retried from a fresh search. It runs under the invoking
// operation's pinned guard g.
func (t *Tree[K, V]) tryInsert(g *epoch.Guard, p, l *node[K, V], key K, value V) (updateResult[V], bool) {
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return updateResult[V]{}, false
	}
	var fld *atomic.Pointer[node[K, V]]
	switch {
	case lkP.Child(0) == l:
		fld = &p.left
	case lkP.Child(1) == l:
		fld = &p.right
	default:
		return updateResult[V]{}, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return updateResult[V]{}, false
	}

	// Insert1: the key is absent (Insert routes a present key to the in-place
	// overwrite, and l's key is immutable, so the caller's check holds for
	// this attempt); replace the leaf with an internal node whose children
	// are a new leaf holding the key and the old leaf. A node placed directly
	// below a sentinel (in particular the chromatic root) always gets weight
	// one, which keeps every violation strictly below the root; elsewhere the
	// internal node absorbs one unit of the old leaf's weight so weighted
	// path lengths are unchanged.
	//
	// When the old leaf already has weight one - the weight its copy would
	// carry - the leaf itself is reused as the fringe of the new subtree and
	// nothing is finalized (R is empty, postcondition PC6), exactly as in the
	// non-blocking BST of Ellen et al. that the template generalizes. l is
	// still in V, so the SCX fails if any concurrent update froze it. Only an
	// overweight leaf must be replaced by a weight-one copy (and finalized,
	// PC9); the copy aliases l's value cell so a racing in-place overwrite of
	// l's key stays visible through it.
	var res updateResult[V]
	var repl *node[K, V]
	nr := 1
	var newWeight int32 = 1
	if !l.inf && !p.inf {
		newWeight = l.w - 1
	}
	newKeyLeaf := t.leafNode(key, value, 1)
	oldLeaf := l
	if l.w != 1 {
		oldLeaf = t.copyNode(lkL, 1)
	} else {
		nr = 0
	}
	if t.keyLess(key, l) {
		repl = t.internalNode(l.k, newWeight, l.inf, newKeyLeaf, oldLeaf)
	} else {
		repl = t.internalNode(key, newWeight, false, oldLeaf, newKeyLeaf)
	}

	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkP, lkL}
	r := [llxscx.MaxV]*node[K, V]{l}
	if !t.scx(g, &v, 2, &r, nr, fld, l, repl) {
		t.releaseFresh(newKeyLeaf)
		if oldLeaf != l {
			t.releaseFresh(oldLeaf)
		}
		t.releaseFresh(repl)
		return updateResult[V]{}, false
	}
	t.stats.Insert1.Add(1)
	res.createdViolation = repl.w == 0 && p.w == 0
	return res, true
}

// tryReplace is one attempt of the snapshot-safe overwrite of a present key:
// it replaces the leaf with a fresh leaf of the same weight owning a fresh
// cell, via an insertion-shaped pooled SCX that finalizes the old leaf, so
// live snapshots keep reading the old leaf's frozen cell through the
// replacement's prev link. Weighted path lengths are unchanged, so no
// violation can be created. The displaced value is read from the old leaf's
// cell after the SCX commits, as in tryDelete.
func (t *Tree[K, V]) tryReplace(g *epoch.Guard, key K, value V, p, l *node[K, V]) (V, bool) {
	var zero V
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return zero, false
	}
	var fld *atomic.Pointer[node[K, V]]
	switch {
	case lkP.Child(0) == l:
		fld = &p.left
	case lkP.Child(1) == l:
		fld = &p.right
	default:
		return zero, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return zero, false
	}
	repl := t.leafNode(key, value, l.w)
	v := [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkP, lkL}
	r := [llxscx.MaxV]*node[K, V]{l}
	if !t.scx(g, &v, 2, &r, 1, fld, l, repl) {
		t.releaseFresh(repl)
		return zero, false
	}
	// The SCX finalized l, so in-place publishers now fail their bracket
	// check; drain the brackets already open, then load (see Insert's
	// comment and the protocol argument in internal/lbst).
	l.val.DrainPublishers()
	return l.val.Load(), true
}

// tryDelete performs one attempt of the deletion update at leaf l with
// parent p and grandparent gp, following Figure 6 of the paper. It returns
// ok=false if the attempt must be retried from a fresh search. It runs under
// the invoking operation's pinned guard g.
func (t *Tree[K, V]) tryDelete(g *epoch.Guard, gp, p, l *node[K, V], key K) (updateResult[V], bool) {
	// Special case: the chromatic tree is empty (the leaf reached is the
	// sentinel leaf directly below entry), so key is certainly absent.
	if gp == nil {
		return updateResult[V]{existed: false}, true
	}
	// Special case: key is not in the dictionary.
	if !t.isKey(key, l) {
		return updateResult[V]{existed: false}, true
	}

	lkGP, st := llxscx.LLX(gp)
	if st != llxscx.Snapshot {
		return updateResult[V]{}, false
	}
	var fld *atomic.Pointer[node[K, V]]
	switch {
	case lkGP.Child(0) == p:
		fld = &gp.left
	case lkGP.Child(1) == p:
		fld = &gp.right
	default:
		return updateResult[V]{}, false
	}
	lkP, st := llxscx.LLX(p)
	if st != llxscx.Snapshot {
		return updateResult[V]{}, false
	}
	// Identify the sibling of l from p's snapshot.
	var s *node[K, V]
	var lIsLeft bool
	switch {
	case lkP.Child(0) == l:
		s, lIsLeft = lkP.Child(1), true
	case lkP.Child(1) == l:
		s, lIsLeft = lkP.Child(0), false
	default:
		return updateResult[V]{}, false
	}
	if s == nil {
		return updateResult[V]{}, false
	}
	lkL, st := llxscx.LLX(l)
	if st != llxscx.Snapshot {
		return updateResult[V]{}, false
	}
	lkS, st := llxscx.LLX(s)
	if st != llxscx.Snapshot {
		return updateResult[V]{}, false
	}

	// The sibling is promoted into p's place; its weight absorbs p's weight
	// so that weighted path lengths are preserved (Figure 7), except that a
	// node placed directly below a sentinel always gets weight one.
	//
	// The promoted node must be a fresh copy even when the absorbed weight
	// happens to equal the sibling's: the SCX protocol's ABA-freedom rests
	// on every value stored into a child field being newly obtained (a
	// stale helper of an earlier SCX on the same field retries its update
	// CAS unconditionally, and re-installing a pointer the field once held
	// would let that CAS resurrect a finalized subtree). Reuse is only safe
	// for nodes that become children of fresh nodes, as in tryInsert.
	var newWeight int32
	if p.inf || gp.inf {
		newWeight = 1
	} else {
		newWeight = p.w + s.w
	}
	repl := t.copyNode(lkS, newWeight)

	// V and R are ordered by a breadth-first traversal (postcondition PC8):
	// the parent's children appear in left-to-right order. The evidence is
	// staged in stack arrays.
	var v [llxscx.MaxV]llxscx.Linked[node[K, V]]
	var r [llxscx.MaxV]*node[K, V]
	if lIsLeft {
		v = [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkGP, lkP, lkL, lkS}
		r = [llxscx.MaxV]*node[K, V]{p, l, s}
	} else {
		v = [llxscx.MaxV]llxscx.Linked[node[K, V]]{lkGP, lkP, lkS, lkL}
		r = [llxscx.MaxV]*node[K, V]{p, s, l}
	}
	if !t.scx(g, &v, 4, &r, 3, fld, p, repl) {
		t.releaseFresh(repl)
		return updateResult[V]{}, false
	}
	t.stats.Delete.Add(1)
	// The SCX committed, so l is finalized and in-place publishers now fail
	// their bracket check; drain the brackets already open, then load. Every
	// overwrite whose bracket observed l un-finalized has its Swap ordered
	// before this read and is visible in the returned value; no overwrite
	// can land after it (see Insert's comment and the protocol argument in
	// internal/lbst). The read is safe even though l is already retired: the
	// operation is still pinned, so the grace period cannot have elapsed.
	l.val.DrainPublishers()
	return updateResult[V]{
		old:              l.val.Load(),
		existed:          true,
		createdViolation: newWeight > 1,
	}, true
}

// cleanup repeatedly searches for key from the entry point and performs one
// rebalancing step at the first violation it encounters, until it reaches a
// leaf without seeing any violation (Figure 5 of the paper). Because every
// rebalancing step keeps a violation on the search path of the key whose
// insertion or deletion created it (property VIOL), this guarantees the
// violation created by the caller has been eliminated when cleanup returns.
// It runs under the invoking operation's pinned guard g.
func (t *Tree[K, V]) cleanup(g *epoch.Guard, key K) {
	for {
		var ggp, gp *node[K, V]
		p := t.entry
		l := t.entry.left.Load()
		for {
			if violationAt(p, l) {
				// Violations can only occur strictly below the chromatic
				// root (nodes placed directly below sentinels always have
				// weight one), so the great-grandparent always exists here;
				// the guard only protects against giving up cleanup would be
				// wrong, so bail out rather than loop forever.
				if ggp == nil || gp == nil {
					return
				}
				t.tryRebalance(g, ggp, gp, p, l)
				break // restart the search from the entry point
			}
			if l.leaf {
				return
			}
			ggp, gp, p = gp, p, l
			if t.keyLess(key, l) {
				l = l.left.Load()
			} else {
				l = l.right.Load()
			}
		}
	}
}
