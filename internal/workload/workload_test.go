package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/lockavl"
	"repro/internal/seqrbt"
)

func TestMixString(t *testing.T) {
	cases := map[string]Mix{
		"50i-50d":   Mix50i50d,
		"20i-10d":   Mix20i10d,
		"0i-0d":     Mix0i0d,
		"5i-5d-50s": Mix5i5d50s,
	}
	for want, mix := range cases {
		if got := mix.String(); got != want {
			t.Errorf("Mix.String() = %q, want %q", got, want)
		}
		if !mix.Valid() {
			t.Errorf("mix %v reported invalid", mix)
		}
	}
	if (Mix{InsertPct: 80, DeletePct: 30}).Valid() {
		t.Error("mix summing over 100%% reported valid")
	}
	if (Mix{InsertPct: 40, DeletePct: 40, ScanPct: 30}).Valid() {
		t.Error("mix with scans summing over 100%% reported valid")
	}
	if (Mix{InsertPct: -1}).Valid() {
		t.Error("negative mix reported valid")
	}
}

func TestParseMixRoundTrip(t *testing.T) {
	for _, mix := range []Mix{Mix50i50d, Mix20i10d, Mix0i0d, Mix5i5d50s,
		{InsertPct: 1, DeletePct: 2, ScanPct: 3}} {
		got, err := ParseMix(mix.String())
		if err != nil {
			t.Errorf("ParseMix(%q): %v", mix.String(), err)
			continue
		}
		if got != mix {
			t.Errorf("ParseMix(%q) = %+v, want %+v", mix.String(), got, mix)
		}
	}
	for _, bad := range []string{"", "50i", "50i-50d-10s-1x", "xi-yd", "50i-60d", "10x-10d"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted a malformed mix", bad)
		}
	}
}

func TestParseDist(t *testing.T) {
	for s, want := range map[string]Dist{"": DistUniform, "uniform": DistUniform, "zipf": DistZipf} {
		got, err := ParseDist(s)
		if err != nil || got != want {
			t.Errorf("ParseDist(%q) = (%v,%v), want (%v,nil)", s, got, err, want)
		}
	}
	if _, err := ParseDist("gaussian"); err == nil {
		t.Error("ParseDist accepted an unknown distribution")
	}
	if DistUniform.String() != "uniform" || DistZipf.String() != "zipf" {
		t.Error("Dist.String names changed; flags and JSON snapshots depend on them")
	}
}

func TestExpectedSizeMatchesPaper(t *testing.T) {
	// Section 6: 50i-50d settles at half the key range, 20i-10d at two
	// thirds, and the read-only workload is prefilled to half.
	if got := Mix50i50d.ExpectedSize(1000); got != 500 {
		t.Errorf("50i-50d expected size = %d, want 500", got)
	}
	if got := Mix20i10d.ExpectedSize(900); got != 600 {
		t.Errorf("20i-10d expected size = %d, want 600", got)
	}
	if got := Mix0i0d.ExpectedSize(1000); got != 500 {
		t.Errorf("0i-0d expected size = %d, want 500", got)
	}
	if got := (Mix{InsertPct: 10, DeletePct: 0}).ExpectedSize(1000); got != 1000 {
		t.Errorf("insert-only expected size = %d, want 1000", got)
	}
}

func TestGeneratorRespectsMix(t *testing.T) {
	gen := NewGenerator(Mix20i10d, 1000, 7)
	counts := map[Op]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op, key := gen.Next()
		if key < 0 || key >= 1000 {
			t.Fatalf("key %d out of range", key)
		}
		counts[op]++
	}
	insFrac := float64(counts[OpInsert]) / n
	delFrac := float64(counts[OpDelete]) / n
	getFrac := float64(counts[OpGet]) / n
	if insFrac < 0.18 || insFrac > 0.22 {
		t.Errorf("insert fraction = %.3f, want ~0.20", insFrac)
	}
	if delFrac < 0.08 || delFrac > 0.12 {
		t.Errorf("delete fraction = %.3f, want ~0.10", delFrac)
	}
	if getFrac < 0.68 || getFrac > 0.72 {
		t.Errorf("get fraction = %.3f, want ~0.70", getFrac)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Mix50i50d, 100, 5)
	b := NewGenerator(Mix50i50d, 100, 5)
	for i := 0; i < 1000; i++ {
		opA, keyA := a.Next()
		opB, keyB := b.Next()
		if opA != opB || keyA != keyB {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
}

func TestPrefillReachesSteadyStateSize(t *testing.T) {
	for _, mix := range []Mix{Mix50i50d, Mix20i10d, Mix0i0d} {
		d := seqrbt.New()
		const keyRange = 2000
		size := Prefill(d, mix, keyRange, 0.05, 3)
		want := mix.ExpectedSize(keyRange)
		lo := int(float64(want) * 0.94)
		hi := int(float64(want) * 1.06)
		if size < lo || size > hi {
			t.Errorf("mix %s: prefilled size %d outside [%d,%d]", mix, size, lo, hi)
		}
		if d.Size() != size {
			t.Errorf("mix %s: reported size %d != actual size %d", mix, size, d.Size())
		}
	}
}

func TestPrefillExact(t *testing.T) {
	d := seqrbt.New()
	if got := PrefillExact(d, 10000, 1234, 9); got != 1234 {
		t.Fatalf("PrefillExact returned %d, want 1234", got)
	}
	if d.Size() != 1234 {
		t.Fatalf("Size = %d, want 1234", d.Size())
	}
}

func TestApply(t *testing.T) {
	d := seqrbt.New()
	Apply(d, OpInsert, 5, DefaultScanSpan)
	if _, ok := d.Get(5); !ok {
		t.Fatal("Apply(OpInsert) did not insert")
	}
	Apply(d, OpGet, 5, DefaultScanSpan)
	Apply(d, OpDelete, 5, DefaultScanSpan)
	if _, ok := d.Get(5); ok {
		t.Fatal("Apply(OpDelete) did not delete")
	}
}

// TestApplyScan drives OpScan through both scan paths: the native
// dict.Ranger range scan (chromatic tree) and the Successor-walk fallback
// (lock-based AVL tree, which exposes no RangeScan).
func TestApplyScan(t *testing.T) {
	targets := []dict.IntMap{chromatic.New(), lockavl.New()}
	if _, ok := targets[0].(dict.IntRanger); !ok {
		t.Fatal("chromatic tree no longer implements dict.Ranger; the native scan path is untested")
	}
	if _, ok := targets[1].(dict.IntRanger); ok {
		t.Fatal("lockavl implements dict.Ranger; pick another fallback target")
	}
	for _, d := range targets {
		for i := int64(0); i < 64; i++ {
			d.Insert(i, i)
		}
		// The scan has no externally visible result; it must simply complete
		// (and is exercised for linearizability by the conformance suites).
		Apply(d, OpScan, 10, 20)
		Apply(d, OpScan, 60, 20) // window past the last key
		Apply(d, OpScan, 100, 5) // empty window
	}
}

// TestZipfGeneratorDeterministic pins the reproducibility contract: two
// zipfian generators with the same seed produce identical operation streams.
func TestZipfGeneratorDeterministic(t *testing.T) {
	a := NewGeneratorDist(Mix5i5d50s, 10_000, DistZipf, 12345)
	b := NewGeneratorDist(Mix5i5d50s, 10_000, DistZipf, 12345)
	c := NewGeneratorDist(Mix5i5d50s, 10_000, DistZipf, 54321)
	diverged := false
	for i := 0; i < 5000; i++ {
		opA, keyA := a.Next()
		opB, keyB := b.Next()
		if opA != opB || keyA != keyB {
			t.Fatalf("zipf generators with the same seed diverged at step %d", i)
		}
		opC, keyC := c.Next()
		if opA != opC || keyA != keyC {
			diverged = true
		}
	}
	if !diverged {
		t.Error("zipf generators with different seeds produced identical streams")
	}
}

// TestZipfDistributionMatchesTheory draws a large sample and checks the
// empirical frequency of the hottest keys against the zipf law the generator
// promises: P(k) proportional to (1+k)^-ZipfS over [0, keyRange).
func TestZipfDistributionMatchesTheory(t *testing.T) {
	const keyRange = 1000
	const samples = 400_000
	gen := NewGeneratorDist(Mix0i0d, keyRange, DistZipf, 7)
	counts := make([]int, keyRange)
	for i := 0; i < samples; i++ {
		_, key := gen.Next()
		if key < 0 || key >= keyRange {
			t.Fatalf("zipf key %d out of range [0,%d)", key, keyRange)
		}
		counts[key]++
	}
	// Normalization constant of P(k) = (1+k)^-s / H.
	h := 0.0
	for k := 0; k < keyRange; k++ {
		h += math.Pow(1+float64(k), -ZipfS)
	}
	for _, k := range []int{0, 1, 2, 10} {
		want := math.Pow(1+float64(k), -ZipfS) / h
		got := float64(counts[k]) / samples
		if got < want*0.85 || got > want*1.15 {
			t.Errorf("key %d frequency = %.4f, theory %.4f (±15%%)", k, got, want)
		}
	}
	// The distribution must actually be skewed: the hottest key must appear
	// far more often than a uniform draw would produce.
	if counts[0] < 10*samples/keyRange {
		t.Errorf("hottest key drawn %d times; expected a strong hot spot", counts[0])
	}
	// Monotone head: frequencies must not increase with rank.
	if counts[0] < counts[1] || counts[1] < counts[2] {
		t.Errorf("head frequencies not monotone: %d, %d, %d", counts[0], counts[1], counts[2])
	}
}

// TestScanMixGeneratesScans checks the scan share of the operation stream.
func TestScanMixGeneratesScans(t *testing.T) {
	gen := NewGenerator(Mix5i5d50s, 1000, 11)
	if gen.ScanSpan() != DefaultScanSpan {
		t.Fatalf("default scan span = %d, want %d", gen.ScanSpan(), DefaultScanSpan)
	}
	gen.SetScanSpan(25)
	if gen.ScanSpan() != 25 {
		t.Fatalf("SetScanSpan did not take effect")
	}
	counts := map[Op]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op, _ := gen.Next()
		counts[op]++
	}
	scanFrac := float64(counts[OpScan]) / n
	if scanFrac < 0.48 || scanFrac > 0.52 {
		t.Errorf("scan fraction = %.3f, want ~0.50", scanFrac)
	}
	getFrac := float64(counts[OpGet]) / n
	if getFrac < 0.38 || getFrac > 0.42 {
		t.Errorf("get fraction = %.3f, want ~0.40", getFrac)
	}
}

func TestParseScanMode(t *testing.T) {
	for s, want := range map[string]ScanMode{"": ScanLive, "live": ScanLive, "snapshot": ScanSnapshot} {
		got, err := ParseScanMode(s)
		if err != nil || got != want {
			t.Errorf("ParseScanMode(%q) = (%v,%v), want (%v,nil)", s, got, err, want)
		}
	}
	if _, err := ParseScanMode("frozen"); err == nil {
		t.Error("ParseScanMode accepted an unknown mode")
	}
	if ScanLive.String() != "live" || ScanSnapshot.String() != "snapshot" {
		t.Error("ScanMode.String names changed; flags and JSON snapshots depend on them")
	}
}

// TestApplierScanModes drives OpScan through the applier in both modes, on a
// structure with native snapshots (chromatic) and on one that gets them via
// the AdaptSnapshot fallback (lockavl, ordered but snapshot-free). Point
// operations must reach the live structure regardless of mode.
func TestApplierScanModes(t *testing.T) {
	for _, target := range []struct {
		name string
		d    dict.IntMap
	}{
		{"native", chromatic.New()},
		{"adapted", lockavl.New()},
	} {
		for _, mode := range []ScanMode{ScanLive, ScanSnapshot} {
			a := NewApplier(target.d, mode)
			if mode == ScanSnapshot && a.snap == nil {
				t.Fatalf("%s: snapshot-mode applier found no snapshot path", target.name)
			}
			a.Apply(OpInsert, 5, DefaultScanSpan)
			if _, ok := target.d.Get(5); !ok {
				t.Fatalf("%s/%s: applier insert did not reach the live structure", target.name, mode)
			}
			a.Apply(OpScan, 0, 20)
			a.Apply(OpScan, 100, 5) // empty window
			a.Apply(OpDelete, 5, DefaultScanSpan)
			if _, ok := target.d.Get(5); ok {
				t.Fatalf("%s/%s: applier delete did not reach the live structure", target.name, mode)
			}
		}
	}
}

// TestPropertyGeneratorKeysInRange checks with testing/quick that generated
// keys always fall inside the configured key range, for arbitrary ranges and
// seeds.
func TestPropertyGeneratorKeysInRange(t *testing.T) {
	prop := func(rangeSeed uint16, seed int64) bool {
		keyRange := int64(rangeSeed)%5000 + 1
		gen := NewGenerator(Mix20i10d, keyRange, seed)
		for i := 0; i < 200; i++ {
			_, key := gen.Next()
			if key < 0 || key >= keyRange {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

var _ dict.IntMap = (*seqrbt.Tree[int64, int64])(nil)
