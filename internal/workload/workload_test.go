package workload

import (
	"testing"
	"testing/quick"

	"repro/internal/dict"
	"repro/internal/seqrbt"
)

func TestMixString(t *testing.T) {
	cases := map[string]Mix{
		"50i-50d": Mix50i50d,
		"20i-10d": Mix20i10d,
		"0i-0d":   Mix0i0d,
	}
	for want, mix := range cases {
		if got := mix.String(); got != want {
			t.Errorf("Mix.String() = %q, want %q", got, want)
		}
		if !mix.Valid() {
			t.Errorf("mix %v reported invalid", mix)
		}
	}
	if (Mix{InsertPct: 80, DeletePct: 30}).Valid() {
		t.Error("mix summing over 100%% reported valid")
	}
	if (Mix{InsertPct: -1}).Valid() {
		t.Error("negative mix reported valid")
	}
}

func TestExpectedSizeMatchesPaper(t *testing.T) {
	// Section 6: 50i-50d settles at half the key range, 20i-10d at two
	// thirds, and the read-only workload is prefilled to half.
	if got := Mix50i50d.ExpectedSize(1000); got != 500 {
		t.Errorf("50i-50d expected size = %d, want 500", got)
	}
	if got := Mix20i10d.ExpectedSize(900); got != 600 {
		t.Errorf("20i-10d expected size = %d, want 600", got)
	}
	if got := Mix0i0d.ExpectedSize(1000); got != 500 {
		t.Errorf("0i-0d expected size = %d, want 500", got)
	}
	if got := (Mix{InsertPct: 10, DeletePct: 0}).ExpectedSize(1000); got != 1000 {
		t.Errorf("insert-only expected size = %d, want 1000", got)
	}
}

func TestGeneratorRespectsMix(t *testing.T) {
	gen := NewGenerator(Mix20i10d, 1000, 7)
	counts := map[Op]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		op, key := gen.Next()
		if key < 0 || key >= 1000 {
			t.Fatalf("key %d out of range", key)
		}
		counts[op]++
	}
	insFrac := float64(counts[OpInsert]) / n
	delFrac := float64(counts[OpDelete]) / n
	getFrac := float64(counts[OpGet]) / n
	if insFrac < 0.18 || insFrac > 0.22 {
		t.Errorf("insert fraction = %.3f, want ~0.20", insFrac)
	}
	if delFrac < 0.08 || delFrac > 0.12 {
		t.Errorf("delete fraction = %.3f, want ~0.10", delFrac)
	}
	if getFrac < 0.68 || getFrac > 0.72 {
		t.Errorf("get fraction = %.3f, want ~0.70", getFrac)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Mix50i50d, 100, 5)
	b := NewGenerator(Mix50i50d, 100, 5)
	for i := 0; i < 1000; i++ {
		opA, keyA := a.Next()
		opB, keyB := b.Next()
		if opA != opB || keyA != keyB {
			t.Fatalf("generators with the same seed diverged at step %d", i)
		}
	}
}

func TestPrefillReachesSteadyStateSize(t *testing.T) {
	for _, mix := range []Mix{Mix50i50d, Mix20i10d, Mix0i0d} {
		d := seqrbt.New()
		const keyRange = 2000
		size := Prefill(d, mix, keyRange, 0.05, 3)
		want := mix.ExpectedSize(keyRange)
		lo := int(float64(want) * 0.94)
		hi := int(float64(want) * 1.06)
		if size < lo || size > hi {
			t.Errorf("mix %s: prefilled size %d outside [%d,%d]", mix, size, lo, hi)
		}
		if d.Size() != size {
			t.Errorf("mix %s: reported size %d != actual size %d", mix, size, d.Size())
		}
	}
}

func TestPrefillExact(t *testing.T) {
	d := seqrbt.New()
	if got := PrefillExact(d, 10000, 1234, 9); got != 1234 {
		t.Fatalf("PrefillExact returned %d, want 1234", got)
	}
	if d.Size() != 1234 {
		t.Fatalf("Size = %d, want 1234", d.Size())
	}
}

func TestApply(t *testing.T) {
	d := seqrbt.New()
	Apply(d, OpInsert, 5)
	if _, ok := d.Get(5); !ok {
		t.Fatal("Apply(OpInsert) did not insert")
	}
	Apply(d, OpGet, 5)
	Apply(d, OpDelete, 5)
	if _, ok := d.Get(5); ok {
		t.Fatal("Apply(OpDelete) did not delete")
	}
}

// TestPropertyGeneratorKeysInRange checks with testing/quick that generated
// keys always fall inside the configured key range, for arbitrary ranges and
// seeds.
func TestPropertyGeneratorKeysInRange(t *testing.T) {
	prop := func(rangeSeed uint16, seed int64) bool {
		keyRange := int64(rangeSeed)%5000 + 1
		gen := NewGenerator(Mix20i10d, keyRange, seed)
		for i := 0; i < 200; i++ {
			_, key := gen.Next()
			if key < 0 || key >= keyRange {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

var _ dict.IntMap = (*seqrbt.Tree[int64, int64])(nil)
