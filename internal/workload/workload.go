// Package workload generates the synthetic workloads used in the paper's
// evaluation (Section 6): operation mixes written "xi-yd" (x% Inserts, y%
// Deletes, the rest Gets) over uniformly random keys drawn from a key range,
// together with the prefilling procedure that brings a dictionary to its
// expected steady-state size before measurement.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/dict"
)

// Mix is an operation mix: InsertPct percent of operations are Inserts,
// DeletePct percent are Deletes and the remainder are Gets.
type Mix struct {
	InsertPct int
	DeletePct int
}

// The three operation mixes of Figure 8.
var (
	// Mix50i50d is the update-only workload (50% Insert, 50% Delete).
	Mix50i50d = Mix{InsertPct: 50, DeletePct: 50}
	// Mix20i10d is the mixed workload (20% Insert, 10% Delete, 70% Get).
	Mix20i10d = Mix{InsertPct: 20, DeletePct: 10}
	// Mix0i0d is the read-only workload (100% Get).
	Mix0i0d = Mix{InsertPct: 0, DeletePct: 0}
)

// String formats the mix the way the paper names it, e.g. "50i-50d".
func (m Mix) String() string {
	return fmt.Sprintf("%di-%dd", m.InsertPct, m.DeletePct)
}

// Valid reports whether the percentages are sane.
func (m Mix) Valid() bool {
	return m.InsertPct >= 0 && m.DeletePct >= 0 && m.InsertPct+m.DeletePct <= 100
}

// ExpectedSize returns the expected steady-state dictionary size for this mix
// over the given key range, following the reasoning in Section 6 of the
// paper: under 50i-50d each key is present with probability 1/2; under
// 20i-10d with probability 2/3 (insertions are twice as likely as
// deletions); for a read-only mix the paper prefills to half the key range.
func (m Mix) ExpectedSize(keyRange int64) int {
	switch {
	case m.InsertPct == 0 && m.DeletePct == 0:
		return int(keyRange / 2)
	case m.DeletePct == 0:
		return int(keyRange)
	default:
		num := int64(m.InsertPct)
		den := int64(m.InsertPct + m.DeletePct)
		return int(keyRange * num / den)
	}
}

// Op identifies one dictionary operation kind.
type Op int

// Operation kinds produced by a Generator.
const (
	OpGet Op = iota
	OpInsert
	OpDelete
)

// Generator produces a deterministic stream of operations for one worker
// goroutine. It is not safe for concurrent use; create one per goroutine.
type Generator struct {
	mix      Mix
	keyRange int64
	rng      *rand.Rand
}

// NewGenerator returns a generator for the given mix and key range, seeded
// deterministically from seed.
func NewGenerator(mix Mix, keyRange int64, seed int64) *Generator {
	return &Generator{mix: mix, keyRange: keyRange, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the next operation and its key. The value for inserts is the
// key itself (the benchmarks never inspect values).
func (g *Generator) Next() (Op, int64) {
	key := g.rng.Int63n(g.keyRange)
	p := g.rng.Intn(100)
	switch {
	case p < g.mix.InsertPct:
		return OpInsert, key
	case p < g.mix.InsertPct+g.mix.DeletePct:
		return OpDelete, key
	default:
		return OpGet, key
	}
}

// Apply performs one generated operation against d.
func Apply(d dict.IntMap, op Op, key int64) {
	switch op {
	case OpInsert:
		d.Insert(key, key)
	case OpDelete:
		d.Delete(key)
	default:
		d.Get(key)
	}
}

// Prefill brings d to within tolerance (a fraction, e.g. 0.05) of the mix's
// expected steady-state size by running the update portion of the mix, as
// the paper's methodology prescribes. It returns the final size. Prefilling
// is single-threaded and deterministic for a given seed.
func Prefill(d dict.IntMap, mix Mix, keyRange int64, tolerance float64, seed int64) int {
	target := mix.ExpectedSize(keyRange)
	if target == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	insPct, delPct := mix.InsertPct, mix.DeletePct
	if insPct == 0 && delPct == 0 {
		// Read-only mix: prefill with pure insertions of distinct keys.
		insPct, delPct = 100, 0
	}
	size := sizeOf(d)
	// Run update operations until the size settles inside the tolerance
	// band. The loop bounds the work so a pathological dictionary cannot
	// hang the harness.
	maxOps := 400 * keyRange
	if maxOps < 1_000_000 {
		maxOps = 1_000_000
	}
	for ops := int64(0); ops < maxOps; ops++ {
		if withinTolerance(size, target, tolerance) && ops%64 == 0 {
			break
		}
		key := rng.Int63n(keyRange)
		p := rng.Intn(insPct + delPct)
		if p < insPct {
			if _, existed := d.Insert(key, key); !existed {
				size++
			}
		} else {
			if _, existed := d.Delete(key); existed {
				size--
			}
		}
	}
	return size
}

// PrefillExact inserts exactly n distinct keys spread uniformly over the key
// range. It is used by the read-only workload and by tests that need a known
// size.
func PrefillExact(d dict.IntMap, keyRange int64, n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	inserted := 0
	for inserted < n {
		key := rng.Int63n(keyRange)
		if _, existed := d.Insert(key, key); !existed {
			inserted++
		}
	}
	return inserted
}

func withinTolerance(size, target int, tolerance float64) bool {
	diff := size - target
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= tolerance*float64(target)
}

func sizeOf(d dict.IntMap) int {
	if s, ok := d.(dict.Sized); ok {
		return s.Size()
	}
	return 0
}
