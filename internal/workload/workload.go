// Package workload generates the synthetic workloads used in the paper's
// evaluation (Section 6) and the extensions this repository adds on top of
// them: operation mixes written "xi-yd" (x% Inserts, y% Deletes, the rest
// Gets) optionally extended with a range-scan share ("xi-yd-zs"), keys drawn
// either uniformly at random or from a zipfian (hot-key) distribution, and
// the prefilling procedure that brings a dictionary to its expected
// steady-state size before measurement.
//
// The zipfian distribution exists to expose the cost of value overwrites:
// under a skewed 50i-50d workload most inserts hit a key that is already
// present, so a structure that turns Insert-on-present into an in-place
// atomic publish (see internal/vcell and the trees' overwrite protocol)
// separates sharply from one that pays a full removal-and-replace update for
// every overwrite.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/dict"
)

// Mix is an operation mix: InsertPct percent of operations are Inserts,
// DeletePct percent are Deletes, ScanPct percent are range scans and the
// remainder are Gets.
type Mix struct {
	InsertPct int
	DeletePct int
	// ScanPct is the percentage of range-scan operations, each visiting the
	// keys in a window of ScanSpan keys starting at the drawn key. The
	// paper's own mixes carry no scans; the scan share is this repository's
	// extension for the scan-heavy grid cells.
	ScanPct int
}

// The three operation mixes of Figure 8, plus the scan-heavy extension.
var (
	// Mix50i50d is the update-only workload (50% Insert, 50% Delete).
	Mix50i50d = Mix{InsertPct: 50, DeletePct: 50}
	// Mix20i10d is the mixed workload (20% Insert, 10% Delete, 70% Get).
	Mix20i10d = Mix{InsertPct: 20, DeletePct: 10}
	// Mix0i0d is the read-only workload (100% Get).
	Mix0i0d = Mix{InsertPct: 0, DeletePct: 0}
	// Mix5i5d50s is the scan-heavy workload (5% Insert, 5% Delete, 50%
	// RangeScan, 40% Get): enough updates to keep scans racing with
	// structural changes, with scans dominating the instruction mix.
	Mix5i5d50s = Mix{InsertPct: 5, DeletePct: 5, ScanPct: 50}
)

// String formats the mix the way the paper names it, e.g. "50i-50d"; a
// scan share is appended as e.g. "5i-5d-50s".
func (m Mix) String() string {
	if m.ScanPct > 0 {
		return fmt.Sprintf("%di-%dd-%ds", m.InsertPct, m.DeletePct, m.ScanPct)
	}
	return fmt.Sprintf("%di-%dd", m.InsertPct, m.DeletePct)
}

// ParseMix parses the String representation: "20i-10d" or "5i-5d-50s".
func ParseMix(s string) (Mix, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 2 && len(parts) != 3 {
		return Mix{}, fmt.Errorf("workload: malformed mix %q (want e.g. 20i-10d or 5i-5d-50s)", s)
	}
	var m Mix
	for i, suffix := range []string{"i", "d", "s"}[:len(parts)] {
		p := parts[i]
		if !strings.HasSuffix(p, suffix) {
			return Mix{}, fmt.Errorf("workload: malformed mix %q: part %q lacks %q suffix", s, p, suffix)
		}
		v, err := strconv.Atoi(strings.TrimSuffix(p, suffix))
		if err != nil {
			return Mix{}, fmt.Errorf("workload: malformed mix %q: %v", s, err)
		}
		switch i {
		case 0:
			m.InsertPct = v
		case 1:
			m.DeletePct = v
		case 2:
			m.ScanPct = v
		}
	}
	if !m.Valid() {
		return Mix{}, fmt.Errorf("workload: mix %q percentages out of range", s)
	}
	return m, nil
}

// Valid reports whether the percentages are sane.
func (m Mix) Valid() bool {
	return m.InsertPct >= 0 && m.DeletePct >= 0 && m.ScanPct >= 0 &&
		m.InsertPct+m.DeletePct+m.ScanPct <= 100
}

// ExpectedSize returns the expected steady-state dictionary size for this mix
// over the given key range, following the reasoning in Section 6 of the
// paper: under 50i-50d each key is present with probability 1/2; under
// 20i-10d with probability 2/3 (insertions are twice as likely as
// deletions); for a mix with no updates the paper prefills to half the key
// range. The per-key presence probability depends only on the insert/delete
// ratio, so it is the same whether keys are drawn uniformly or zipfian -
// skew changes how fast each key mixes, not where it settles.
func (m Mix) ExpectedSize(keyRange int64) int {
	switch {
	case m.InsertPct == 0 && m.DeletePct == 0:
		return int(keyRange / 2)
	case m.DeletePct == 0:
		return int(keyRange)
	default:
		num := int64(m.InsertPct)
		den := int64(m.InsertPct + m.DeletePct)
		return int(keyRange * num / den)
	}
}

// Dist selects the key distribution of a Generator.
type Dist int

const (
	// DistUniform draws keys uniformly from the key range (the paper's
	// evaluation).
	DistUniform Dist = iota
	// DistZipf draws keys from a zipfian distribution over the key range:
	// key k is drawn with probability proportional to (1+k)^-ZipfS, so key 0
	// is the hottest. Skewed access concentrates updates on present keys,
	// which is the workload that rewards the SCX-free in-place overwrite.
	DistZipf
)

// ZipfS is the zipfian exponent (the s parameter of rand.NewZipf, which
// requires s > 1). 1.2 concentrates roughly a third of the draws on the
// hottest dozen keys of a 10^4 key range without making the tail
// negligible.
const ZipfS = 1.2

// zipfV is the v parameter of rand.NewZipf (probability proportional to
// ((v+k)/v)^-s); 1 gives the classical zipf shape.
const zipfV = 1.0

// String returns the name used in tables, flags and JSON snapshots.
func (d Dist) String() string {
	if d == DistZipf {
		return "zipf"
	}
	return "uniform"
}

// ParseDist parses a Dist name as printed by String. The empty string parses
// as DistUniform, so JSON snapshots written before the distribution
// dimension existed read back correctly.
func ParseDist(s string) (Dist, error) {
	switch s {
	case "", "uniform":
		return DistUniform, nil
	case "zipf":
		return DistZipf, nil
	default:
		return DistUniform, fmt.Errorf("workload: unknown distribution %q (want uniform or zipf)", s)
	}
}

// DefaultScanSpan is the width of the key window a scan operation visits
// when the harness does not override it.
const DefaultScanSpan = 100

// Op identifies one dictionary operation kind.
type Op int

// Operation kinds produced by a Generator.
const (
	OpGet Op = iota
	OpInsert
	OpDelete
	// OpScan is a range scan over [key, key+span-1], where span is the
	// generator's scan span.
	OpScan
)

// Generator produces a deterministic stream of operations for one worker
// goroutine. It is not safe for concurrent use; create one per goroutine.
type Generator struct {
	mix      Mix
	keyRange int64
	rng      *rand.Rand
	zipf     *rand.Zipf // nil for DistUniform
	scanSpan int64
}

// NewGenerator returns a generator for the given mix and key range with
// uniformly distributed keys, seeded deterministically from seed.
func NewGenerator(mix Mix, keyRange int64, seed int64) *Generator {
	return NewGeneratorDist(mix, keyRange, DistUniform, seed)
}

// NewGeneratorDist returns a generator drawing keys from the given
// distribution, seeded deterministically from seed. The scan span defaults
// to DefaultScanSpan; override it with SetScanSpan.
func NewGeneratorDist(mix Mix, keyRange int64, dist Dist, seed int64) *Generator {
	g := &Generator{
		mix:      mix,
		keyRange: keyRange,
		rng:      rand.New(rand.NewSource(seed)),
		scanSpan: DefaultScanSpan,
	}
	if dist == DistZipf {
		g.zipf = rand.NewZipf(g.rng, ZipfS, zipfV, uint64(keyRange-1))
	}
	return g
}

// SetScanSpan overrides the width of the key window OpScan operations cover.
func (g *Generator) SetScanSpan(span int64) {
	if span > 0 {
		g.scanSpan = span
	}
}

// ScanSpan returns the width of the key window OpScan operations cover.
func (g *Generator) ScanSpan() int64 { return g.scanSpan }

// Next returns the next operation and its key. The value for inserts is the
// key itself (the benchmarks never inspect values). For zipfian generators
// the key's rank is its identity: key 0 is the hottest.
func (g *Generator) Next() (Op, int64) {
	var key int64
	if g.zipf != nil {
		key = int64(g.zipf.Uint64())
	} else {
		key = g.rng.Int63n(g.keyRange)
	}
	p := g.rng.Intn(100)
	switch {
	case p < g.mix.InsertPct:
		return OpInsert, key
	case p < g.mix.InsertPct+g.mix.DeletePct:
		return OpDelete, key
	case p < g.mix.InsertPct+g.mix.DeletePct+g.mix.ScanPct:
		return OpScan, key
	default:
		return OpGet, key
	}
}

// Apply performs one generated operation against d. scanSpan is the width of
// the key window an OpScan covers (the generator's ScanSpan); it is ignored
// for the other operation kinds.
func Apply(d dict.IntMap, op Op, key int64, scanSpan int64) {
	switch op {
	case OpInsert:
		d.Insert(key, key)
	case OpDelete:
		d.Delete(key)
	case OpScan:
		scan(d, key, key+scanSpan-1)
	default:
		d.Get(key)
	}
}

// scan visits every key of d in [lo, hi]: natively through dict.Ranger when
// the structure provides a range scan, by repeated Successor queries when it
// is merely ordered, and degraded to a point Get otherwise.
func scan(d dict.IntMap, lo, hi int64) {
	if r, ok := d.(dict.IntRanger); ok {
		r.RangeScan(lo, hi, visitAll)
		return
	}
	om, ok := d.(dict.IntOrderedMap)
	if !ok {
		d.Get(lo)
		return
	}
	d.Get(lo)
	for k := lo; ; {
		nk, _, ok := om.Successor(k)
		if !ok || nk > hi {
			return
		}
		k = nk
	}
}

// visitAll is the no-op scan body, a package-level value so driving a native
// RangeScan allocates no closure per operation.
func visitAll(int64, int64) bool { return true }

// Prefill brings d to within tolerance (a fraction, e.g. 0.05) of the mix's
// expected steady-state size by running the update portion of the mix, as
// the paper's methodology prescribes. It returns the final size. Prefilling
// is single-threaded and deterministic for a given seed, and always uses
// uniform keys: the steady-state per-key presence probability is the same
// under zipfian draws (see ExpectedSize), and a uniform prefill reaches it
// across the whole key range instead of only at the hot end.
func Prefill(d dict.IntMap, mix Mix, keyRange int64, tolerance float64, seed int64) int {
	target := mix.ExpectedSize(keyRange)
	if target == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	insPct, delPct := mix.InsertPct, mix.DeletePct
	if insPct == 0 && delPct == 0 {
		// No-update mix: prefill with pure insertions of distinct keys.
		insPct, delPct = 100, 0
	}
	size := sizeOf(d)
	// Run update operations until the size settles inside the tolerance
	// band. The loop bounds the work so a pathological dictionary cannot
	// hang the harness.
	maxOps := 400 * keyRange
	if maxOps < 1_000_000 {
		maxOps = 1_000_000
	}
	for ops := int64(0); ops < maxOps; ops++ {
		if withinTolerance(size, target, tolerance) && ops%64 == 0 {
			break
		}
		key := rng.Int63n(keyRange)
		p := rng.Intn(insPct + delPct)
		if p < insPct {
			if _, existed := d.Insert(key, key); !existed {
				size++
			}
		} else {
			if _, existed := d.Delete(key); existed {
				size--
			}
		}
	}
	return size
}

// PrefillExact inserts exactly n distinct keys spread uniformly over the key
// range. It is used by the read-only workload and by tests that need a known
// size.
func PrefillExact(d dict.IntMap, keyRange int64, n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	inserted := 0
	for inserted < n {
		key := rng.Int63n(keyRange)
		if _, existed := d.Insert(key, key); !existed {
			inserted++
		}
	}
	return inserted
}

func withinTolerance(size, target int, tolerance float64) bool {
	diff := size - target
	if diff < 0 {
		diff = -diff
	}
	return float64(diff) <= tolerance*float64(target)
}

func sizeOf(d dict.IntMap) int {
	if s, ok := d.(dict.Sized); ok {
		return s.Size()
	}
	return 0
}
