package workload

import (
	"fmt"

	"repro/internal/dict"
)

// ScanMode selects how OpScan operations read the dictionary: directly
// against the live structure (the validate-and-retry RangeScan path), or
// through a freshly captured snapshot view per scan (the O(1) versioned
// snapshot path, which walks a frozen version with no validation and no
// retries). The two modes answer the same queries; the snapshot-scan grid
// cells exist to measure what the retry-free walk buys under concurrent
// updates — and what the per-scan capture costs when it buys nothing.
type ScanMode int

const (
	// ScanLive scans the live structure (the default, and the only mode the
	// paper's evaluation has).
	ScanLive ScanMode = iota
	// ScanSnapshot captures a snapshot per scan operation, scans the frozen
	// view and releases it. Structures without native snapshots run through
	// the AdaptSnapshot fallback, whose views are live — for them the mode
	// measures only the adapter's dispatch overhead.
	ScanSnapshot
)

// String returns the name used in tables, flags and JSON snapshots.
func (m ScanMode) String() string {
	if m == ScanSnapshot {
		return "snapshot"
	}
	return "live"
}

// ParseScanMode parses a ScanMode name as printed by String. The empty
// string parses as ScanLive, so JSON rows written before the scan-mode
// dimension existed read back correctly.
func ParseScanMode(s string) (ScanMode, error) {
	switch s {
	case "", "live":
		return ScanLive, nil
	case "snapshot":
		return ScanSnapshot, nil
	default:
		return ScanLive, fmt.Errorf("workload: unknown scan mode %q (want live or snapshot)", s)
	}
}

// An Applier executes generated operations against one dictionary with a
// fixed scan mode. It is cheap state, not a lock: create one per worker
// goroutine next to its Generator (the Applier itself is safe to share, but
// sharing buys nothing). Point operations always go straight to the live
// dictionary; only OpScan dispatches on the mode.
type Applier struct {
	d dict.IntMap
	// snap is non-nil exactly in snapshot mode: the structure's own
	// Snapshotter when it has one, the AdaptSnapshot fallback when it is
	// merely ordered, nil (degrade to live scanning) when it is neither.
	snap dict.IntSnapshotter
}

// NewApplier returns an applier driving d in the given scan mode.
func NewApplier(d dict.IntMap, mode ScanMode) *Applier {
	a := &Applier{d: d}
	if mode == ScanSnapshot {
		if sn, ok := d.(dict.IntSnapshotter); ok {
			a.snap = sn
		} else if om, ok := d.(dict.IntOrderedMap); ok {
			a.snap = dict.AdaptSnapshot[int64, int64](om, intLess)
		}
	}
	return a
}

func intLess(a, b int64) bool { return a < b }

// Apply performs one generated operation, like the package-level Apply, with
// scans routed through the applier's scan mode.
func (a *Applier) Apply(op Op, key int64, scanSpan int64) {
	if op == OpScan && a.snap != nil {
		v := a.snap.Snapshot()
		v.RangeScan(key, key+scanSpan-1, visitAll)
		v.Release()
		return
	}
	Apply(a.d, op, key, scanSpan)
}
