//go:build sched

package sched

import (
	"bytes"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// Enabled reports whether the deterministic scheduler and fault knobs are
// compiled in.
const Enabled = true

// active counts controllers currently inside Run. It is the fast path of
// Point: when no controller is running, a point is one atomic load.
var active atomic.Int32

// dropFreeze and prematureFree are the seeded protocol mutations used by
// the checker self-tests. They are process-global: tests that arm them must
// not run in parallel with other tests (Explore already serializes itself).
var (
	dropFreeze    atomic.Bool
	prematureFree atomic.Bool
)

// SetDropFreeze arms or disarms the dropped-freeze mutation: while armed,
// help() skips the freezing CAS on the first record of every SCX's V
// sequence. The caller must disarm it (defer SetDropFreeze(false)) before
// any other test runs.
func SetDropFreeze(on bool) { dropFreeze.Store(on) }

// DropFreeze reports whether the dropped-freeze mutation is armed.
func DropFreeze() bool { return dropFreeze.Load() }

// SetPrematureFree arms or disarms the premature-free mutation: while
// armed, epoch reclamation frees objects after one epoch advance instead of
// two (the E+1 bug the grace-period argument in DESIGN.md rules out).
func SetPrematureFree(on bool) { prematureFree.Store(on) }

// PrematureFree reports whether the premature-free mutation is armed.
func PrematureFree() bool { return prematureFree.Load() }

// SetChaosHooks is a no-op in the sched build: runtime chaos injection
// (internal/chaos) targets the default build, where the deterministic
// controller is compiled out. The two exploration modes are deliberately
// exclusive — a controller-parked worker must never also be chaos-delayed.
func SetChaosHooks(func(PointID), func() bool) {}

// ArmChaos is a no-op in the sched build (see SetChaosHooks).
func ArmChaos(bool) {}

// ChaosArmed reports whether runtime chaos injection is armed: never, in
// the sched build.
func ChaosArmed() bool { return false }

// ChaosDropHelp reports whether the caller should skip an optional helping
// step: never, in the sched build.
func ChaosDropHelp() bool { return false }

// registry maps goroutine ids of controller-managed workers to their
// worker records. Goroutines not in the map (the test harness itself,
// runtime goroutines, workers of a finished controller) pass through
// Point untouched.
var registry sync.Map // goid int64 -> *worker

// goid returns the calling goroutine's id, parsed from the first line of
// its stack trace ("goroutine 123 [running]:"). This is test-only
// machinery behind the sched build tag; the few microseconds per call are
// irrelevant next to the schedule enumeration around it.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	s = bytes.TrimPrefix(s, []byte("goroutine "))
	if i := bytes.IndexByte(s, ' '); i >= 0 {
		s = s[:i]
	}
	id, err := strconv.ParseInt(string(s), 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// Point is a potential preemption point. If the calling goroutine is a
// worker of a running Controller and the controller's point filter admits
// id, the goroutine parks here until the controller schedules it again.
// Otherwise Point returns immediately.
func Point(id PointID) {
	if active.Load() == 0 {
		return
	}
	v, ok := registry.Load(goid())
	if !ok {
		return
	}
	w := v.(*worker)
	if w.c.filter != nil && !w.c.filter(id) {
		return
	}
	w.park(id)
}

// WaitZero waits until the counter drains to zero. For a goroutine owned by
// a running controller this is NOT a free spin — one worker runs at a time,
// so spinning against a counter held by a parked sibling would hang the
// whole enumeration. Instead the worker parks as wait-blocked: the
// controller excludes it from the runnable set until the counter is zero,
// which forces the schedule to run the counter's holder first. The wait is
// not a scheduling decision of its own (the controller has no choice to
// make about a blocked worker), so it does not blow up the schedule space.
// Unmanaged goroutines (and workers of an abandoned run, which execute
// concurrently) fall back to the production yield loop.
func WaitZero(id PointID, v *atomic.Int64) {
	if v.Load() == 0 {
		return
	}
	if active.Load() != 0 {
		if rec, ok := registry.Load(goid()); ok {
			w := rec.(*worker)
			if !w.c.abandoned.Load() {
				w.ready = func() bool { return v.Load() == 0 }
				w.park(id)
				w.ready = nil
				if v.Load() != 0 {
					// Rescheduled with the counter still held: only possible
					// when the run was abandoned mid-wait.
					for v.Load() != 0 {
						runtime.Gosched()
					}
				}
				return
			}
		}
	}
	for v.Load() != 0 {
		runtime.Gosched()
	}
}
