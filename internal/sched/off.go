//go:build !sched

package sched

import (
	"runtime"
	"sync/atomic"
)

// Enabled reports whether the deterministic scheduler and fault knobs are
// compiled in. In the default build everything in this file is a constant
// or an empty function, so the instrumentation in the protocol layers folds
// away entirely.
const Enabled = false

// chaosArmed gates the runtime chaos hook (internal/chaos). It is the only
// cost a protocol layer pays at an instrumentation point when chaos is not
// running: one atomic load feeding a never-taken branch.
var chaosArmed atomic.Bool

// chaosPointHook and chaosDropHelpHook are installed once by internal/chaos
// before the first ArmChaos(true) and never replaced while armed; the
// armed-flag Store/Load pair orders the writes against every reader.
var (
	chaosPointHook    func(PointID)
	chaosDropHelpHook func() bool
)

// SetChaosHooks installs the chaos layer's callbacks. It must be called
// while chaos is disarmed (ArmChaos(false), no concurrent Point callers can
// observe the armed flag set); internal/chaos installs its hooks exactly
// once, before the first arm.
func SetChaosHooks(point func(PointID), dropHelp func() bool) {
	chaosPointHook = point
	chaosDropHelpHook = dropHelp
}

// ArmChaos enables or disables runtime chaos injection at the
// instrumentation points. Arming publishes the hooks installed by
// SetChaosHooks; disarming returns every point to its single-load fast
// path (the hooks stay installed, so a straggling reader that saw the flag
// set races with nothing).
func ArmChaos(on bool) { chaosArmed.Store(on) }

// ChaosArmed reports whether runtime chaos injection is armed.
func ChaosArmed() bool { return chaosArmed.Load() }

// Point is a potential preemption point. In the default build it reduces to
// one predictable branch on the chaos-armed flag; with chaos armed it gives
// the fault-injection layer (internal/chaos) a chance to perturb the caller.
func Point(id PointID) {
	if chaosArmed.Load() {
		chaosPointHook(id)
	}
}

// ChaosDropHelp reports whether the calling goroutine should skip one
// optional helping step (LLX's help-on-failure). The protocol layers query
// it only at steps whose omission is progress-neutral — helping there is an
// optimization, and lock-freedom is preserved because the failed operation
// retries and helps on its next attempt. Always false unless chaos is armed.
func ChaosDropHelp() bool {
	if chaosArmed.Load() {
		return chaosDropHelpHook()
	}
	return false
}

// WaitZero spins until the counter drains to zero. Protocol code must use it
// (never a bare spin) for any wait whose progress depends on another thread
// passing an instrumentation point: in the default build it is the obvious
// yield loop, while the sched build turns it into a controller-visible wait
// so the deterministic scheduler can run the counter's holder instead of
// spinning forever against a parked goroutine.
func WaitZero(_ PointID, v *atomic.Int64) {
	for v.Load() != 0 {
		runtime.Gosched()
	}
}

// DropFreeze reports whether the dropped-freeze protocol mutation is armed.
// Always false in the default build; the compiler removes the mutation
// branches that test it.
func DropFreeze() bool { return false }

// PrematureFree reports whether the premature-epoch-free mutation is armed.
// Always false in the default build.
func PrematureFree() bool { return false }
