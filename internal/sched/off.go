//go:build !sched

package sched

import (
	"runtime"
	"sync/atomic"
)

// Enabled reports whether the deterministic scheduler and fault knobs are
// compiled in. In the default build everything in this file is a constant
// or an empty function, so the instrumentation in the protocol layers folds
// away entirely.
const Enabled = false

// Point is a potential preemption point. In the default build it is an
// empty inlined function.
func Point(PointID) {}

// WaitZero spins until the counter drains to zero. Protocol code must use it
// (never a bare spin) for any wait whose progress depends on another thread
// passing an instrumentation point: in the default build it is the obvious
// yield loop, while the sched build turns it into a controller-visible wait
// so the deterministic scheduler can run the counter's holder instead of
// spinning forever against a parked goroutine.
func WaitZero(_ PointID, v *atomic.Int64) {
	for v.Load() != 0 {
		runtime.Gosched()
	}
}

// DropFreeze reports whether the dropped-freeze protocol mutation is armed.
// Always false in the default build; the compiler removes the mutation
// branches that test it.
func DropFreeze() bool { return false }

// PrematureFree reports whether the premature-epoch-free mutation is armed.
// Always false in the default build.
func PrematureFree() bool { return false }
