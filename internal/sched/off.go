//go:build !sched

package sched

// Enabled reports whether the deterministic scheduler and fault knobs are
// compiled in. In the default build everything in this file is a constant
// or an empty function, so the instrumentation in the protocol layers folds
// away entirely.
const Enabled = false

// Point is a potential preemption point. In the default build it is an
// empty inlined function.
func Point(PointID) {}

// DropFreeze reports whether the dropped-freeze protocol mutation is armed.
// Always false in the default build; the compiler removes the mutation
// branches that test it.
func DropFreeze() bool { return false }

// PrematureFree reports whether the premature-epoch-free mutation is armed.
// Always false in the default build.
func PrematureFree() bool { return false }
