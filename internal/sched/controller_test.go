//go:build sched

package sched

import (
	"errors"
	"fmt"
	"slices"
	"testing"
)

// TestPointOutsideControllerIsPassThrough: an unmanaged goroutine must not
// block at a point even while a controller is conceptually in scope.
func TestPointOutsideControllerIsPassThrough(t *testing.T) {
	Point(PointLLX) // no controller at all
	var c Controller
	c.Go("noop", func() {})
	done := make(chan struct{})
	c.Go("harness-check", func() {
		close(done)
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	<-done
	Point(PointSCXCommit) // still pass-through after Run
}

// TestExploreEnumeratesLostUpdateWindow drives the canonical two-worker
// racy counter: each worker reads a shared variable, crosses one point, and
// writes back the increment. The schedule space is the 6 interleavings of
// two 2-segment workers; exactly the 4 schedules where both reads precede
// both writes lose an update. This pins down both the enumeration count and
// the violation count, i.e. that Explore visits each interleaving once.
func TestExploreEnumeratesLostUpdateWindow(t *testing.T) {
	lost := errors.New("lost update")
	schedules, violations := Explore(Options{}, func(c *Controller) error {
		x := 0
		for w := 0; w < 2; w++ {
			c.Go(fmt.Sprintf("inc%d", w), func() {
				tmp := x
				Point(PointLLX)
				x = tmp + 1
			})
		}
		if err := c.Run(); err != nil {
			return err
		}
		if x != 2 {
			return lost
		}
		return nil
	})
	if schedules != 6 {
		t.Fatalf("explored %d schedules, want 6", schedules)
	}
	if len(violations) != 4 {
		t.Fatalf("found %d violations, want 4", len(violations))
	}
	for _, v := range violations {
		if !errors.Is(v.Err, lost) {
			t.Fatalf("unexpected violation error: %v", v.Err)
		}
		if len(v.Trace) == 0 || len(v.Schedule) == 0 {
			t.Fatalf("violation missing schedule/trace: %+v", v)
		}
	}
}

// TestExploreIsDeterministic: re-running the same enumeration must visit
// the same schedules and find the same violations.
func TestExploreIsDeterministic(t *testing.T) {
	run := func() (int, int) {
		s, v := Explore(Options{}, func(c *Controller) error {
			x := 0
			for w := 0; w < 3; w++ {
				c.Go(fmt.Sprintf("w%d", w), func() {
					tmp := x
					Point(PointSCXFreeze)
					x = tmp + 1
				})
			}
			if err := c.Run(); err != nil {
				return err
			}
			if x != 3 {
				return fmt.Errorf("x = %d", x)
			}
			return nil
		})
		return s, len(v)
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1 != s2 || v1 != v2 {
		t.Fatalf("enumeration not deterministic: (%d,%d) vs (%d,%d)", s1, v1, s2, v2)
	}
	// Three 2-segment workers: 6!/(2!2!2!) = 90 interleavings.
	if s1 != 90 {
		t.Fatalf("explored %d schedules, want 90", s1)
	}
}

// TestPointFilterPrunesDecisions: filtering the point set must shrink the
// schedule space to the interleavings of the admitted points only.
func TestPointFilterPrunesDecisions(t *testing.T) {
	only := func(p PointID) bool { return p == PointSCXCommit }
	schedules, violations := Explore(Options{Points: only}, func(c *Controller) error {
		for w := 0; w < 2; w++ {
			c.Go(fmt.Sprintf("w%d", w), func() {
				Point(PointLLX)     // filtered: runs through
				Point(PointSCXMark) // filtered: runs through
				Point(PointSCXCommit)
			})
		}
		return c.Run()
	})
	if len(violations) != 0 {
		t.Fatalf("unexpected violations: %v", violations)
	}
	if schedules != 6 {
		t.Fatalf("explored %d schedules, want 6 (two 2-segment workers)", schedules)
	}
}

// TestStepBoundAbandonsRun: a worker with more points than MaxSteps trips
// the bound; Run must report it and still drain the workers rather than
// leak them blocked.
func TestStepBoundAbandonsRun(t *testing.T) {
	c := Controller{maxSteps: 10}
	ran := 0
	c.Go("spinner", func() {
		for i := 0; i < 64; i++ {
			Point(PointLLX)
			ran++
		}
	})
	err := c.Run()
	if err == nil {
		t.Fatal("step bound not reported")
	}
	t.Logf("got expected error: %v", err)
	if ran != 64 {
		t.Fatalf("worker did not run to completion after abandon: %d/64", ran)
	}
}

// TestStepBoundConfigured exercises Options.MaxSteps through Explore.
func TestStepBoundConfigured(t *testing.T) {
	schedules, violations := Explore(Options{MaxSteps: 8, MaxSchedules: 4}, func(c *Controller) error {
		c.Go("spinner", func() {
			for i := 0; i < 64; i++ {
				Point(PointLLX)
			}
		})
		return c.Run()
	})
	if schedules == 0 || len(violations) != schedules {
		t.Fatalf("every schedule should trip the bound: %d schedules, %d violations", schedules, len(violations))
	}
}

// TestWorkerPanicReported: a panicking worker must surface as an error, not
// crash the process or hang the run.
func TestWorkerPanicReported(t *testing.T) {
	var c Controller
	c.Go("bomb", func() { panic("boom") })
	err := c.Run()
	if err == nil {
		t.Fatal("panic not reported")
	}
}

// TestNextPrefix pins the DFS successor function.
func TestNextPrefix(t *testing.T) {
	cases := []struct {
		taken, branches, want []int
	}{
		{[]int{0, 0}, []int{2, 2}, []int{0, 1}},
		{[]int{0, 1}, []int{2, 2}, []int{1}},
		{[]int{1, 1}, []int{2, 2}, nil},
		{[]int{0, 0, 0}, []int{1, 3, 1}, []int{0, 1}},
		{nil, nil, nil},
	}
	for _, tc := range cases {
		got := nextPrefix(tc.taken, tc.branches)
		if !slices.Equal(got, tc.want) {
			t.Fatalf("nextPrefix(%v, %v) = %v, want %v", tc.taken, tc.branches, got, tc.want)
		}
	}
}

// TestKnobsRoundTrip: the mutation knobs must arm and disarm.
func TestKnobsRoundTrip(t *testing.T) {
	SetDropFreeze(true)
	if !DropFreeze() {
		t.Fatal("DropFreeze did not arm")
	}
	SetDropFreeze(false)
	if DropFreeze() {
		t.Fatal("DropFreeze did not disarm")
	}
	SetPrematureFree(true)
	if !PrematureFree() {
		t.Fatal("PrematureFree did not arm")
	}
	SetPrematureFree(false)
	if PrematureFree() {
		t.Fatal("PrematureFree did not disarm")
	}
}
