//go:build sched

package sched

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
)

// defaultMaxSteps bounds the scheduling decisions of one run so a mutation
// that destroys lock-freedom (operations retrying forever) surfaces as an
// error instead of a hang.
const defaultMaxSteps = 100000

// A Controller runs a set of operations one at a time, deciding at every
// instrumented point (Point) which operation runs next. A zero Controller
// is not usable; Explore constructs controllers, one per schedule.
//
// The decision sequence is deterministic: at each step the runnable workers
// form an ordered list (registration order, finished workers removed), and
// the controller picks the index given by its replay prefix, defaulting to
// 0 past the prefix's end. Recording the branching factor at each step lets
// Explore enumerate all schedules depth-first.
type Controller struct {
	filter   func(PointID) bool
	maxSteps int

	prefix   []int // decisions to replay
	taken    []int // decisions actually made this run
	branches []int // runnable-worker count at each decision
	trace    []string

	workers   []*worker
	events    chan event
	abandoned atomic.Bool
	ran       bool
}

type worker struct {
	c      *Controller
	name   string
	resume chan struct{}
	// ready, when non-nil, marks the worker wait-blocked (parked in
	// WaitZero): the controller keeps it out of the runnable set until the
	// predicate reports true. Written by the worker goroutine strictly
	// before it parks and read by the controller goroutine strictly after
	// it receives the park event, so no lock is needed.
	ready func() bool
}

type event struct {
	w        *worker
	parked   bool // else finished
	point    PointID
	panicked any
}

// Go registers fn as a scheduled operation. The goroutine starts parked; it
// does not run until Run schedules it. All Go calls must precede Run.
func (c *Controller) Go(name string, fn func()) {
	if c.ran {
		panic("sched: Controller.Go after Run")
	}
	w := &worker{c: c, name: name, resume: make(chan struct{})}
	c.workers = append(c.workers, w)
	go func() {
		<-w.resume
		id := goid()
		registry.Store(id, w)
		defer registry.Delete(id)
		var panicked any
		func() {
			defer func() { panicked = recover() }()
			fn()
		}()
		c.events <- event{w: w, panicked: panicked}
	}()
}

// park suspends the calling worker at point id until the controller
// schedules it again. Called from Point.
func (w *worker) park(id PointID) {
	if w.c.abandoned.Load() {
		return
	}
	w.c.events <- event{w: w, parked: true, point: id}
	<-w.resume
}

// Run executes every registered operation to completion under the
// controller's schedule and returns an error if a worker panicked or the
// step bound was exceeded. It must be called exactly once, after all Go
// calls.
func (c *Controller) Run() error {
	if c.ran {
		panic("sched: Controller.Run called twice")
	}
	c.ran = true
	c.events = make(chan event, len(c.workers))
	active.Add(1)
	defer active.Add(-1)

	maxSteps := c.maxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	runnable := slices.Clone(c.workers)
	eligible := make([]int, 0, len(runnable))
	var err error
	for len(runnable) > 0 {
		if len(c.taken) >= maxSteps {
			err = fmt.Errorf("sched: schedule exceeded %d steps (livelock under this interleaving?)", maxSteps)
			c.abandon(runnable)
			break
		}
		// Wait-blocked workers (parked in WaitZero with a false predicate)
		// are not schedulable: the decision is made among the eligible ones.
		// The predicates read only state the schedule determines, so replay
		// sees the same eligible sets and stays deterministic.
		eligible := eligible[:0]
		for i, w := range runnable {
			if w.ready == nil || w.ready() {
				eligible = append(eligible, i)
			}
		}
		if len(eligible) == 0 {
			err = fmt.Errorf("sched: all %d remaining workers wait-blocked (deadlock under this interleaving)", len(runnable))
			c.abandon(runnable)
			break
		}
		n := len(eligible)
		choice := 0
		if d := len(c.taken); d < len(c.prefix) {
			choice = c.prefix[d]
			if choice >= n {
				// The run diverged from the recorded one (benign
				// nondeterminism, e.g. sync.Pool); clamp and continue.
				choice = n - 1
			}
		}
		c.taken = append(c.taken, choice)
		c.branches = append(c.branches, n)
		idx := eligible[choice]
		w := runnable[idx]
		w.resume <- struct{}{}
		ev := <-c.events
		if ev.parked {
			c.trace = append(c.trace, fmt.Sprintf("%s parked at %s", ev.w.name, ev.point))
			continue
		}
		c.trace = append(c.trace, fmt.Sprintf("%s finished", ev.w.name))
		runnable = slices.Delete(runnable, idx, idx+1)
		if ev.panicked != nil && err == nil {
			err = fmt.Errorf("sched: worker %s panicked: %v", ev.w.name, ev.panicked)
		}
	}
	return err
}

// abandon releases every still-parked worker and lets them run freely (and
// concurrently) to completion: subsequent Points are pass-throughs. Used
// when a run trips the step bound; determinism is already lost, the goal is
// only not to leak blocked goroutines.
func (c *Controller) abandon(runnable []*worker) {
	c.abandoned.Store(true)
	for _, w := range runnable {
		w.resume <- struct{}{}
	}
	for left := len(runnable); left > 0; {
		if ev := <-c.events; !ev.parked {
			left--
		}
	}
}

// Schedule returns the decision sequence of the completed run.
func (c *Controller) Schedule() []int { return slices.Clone(c.taken) }

// Trace returns a human-readable step log of the completed run.
func (c *Controller) Trace() []string { return slices.Clone(c.trace) }

// Options configures Explore.
type Options struct {
	// Points restricts which instrumented steps become scheduling
	// decisions; nil admits all of them. Restricting the set is the main
	// lever for keeping an enumeration's schedule count tractable.
	Points func(PointID) bool
	// MaxSchedules bounds the number of schedules explored (0 = no bound).
	MaxSchedules int
	// MaxSteps bounds the decisions of a single run (0 = a large default).
	MaxSteps int
	// StopOnViolation stops the enumeration at the first violating
	// schedule instead of collecting all of them.
	StopOnViolation bool
}

// A Violation is one schedule under which the body reported an error.
type Violation struct {
	Schedule []int
	Trace    []string
	Err      error
}

// exploreMu serializes explorations process-wide: the registry, the active
// counter and the fault knobs are global, so two concurrent enumerations
// would corrupt each other's schedules.
var exploreMu sync.Mutex

// Explore enumerates schedules of the operation set constructed by body.
// body is called once per schedule with a fresh Controller; it must
// register its operations with Go, call Run, check whatever invariants it
// cares about (typically by running the recorded history through
// internal/linearize) and return nil or a violation error. Explore performs
// a depth-first search over the scheduling decisions: the first run takes
// the all-zeros schedule, and each next run replays the longest prefix that
// still has an untried alternative. It returns the number of schedules run
// and the violations found.
//
// body must construct a fresh instance of the data under test on every
// call: schedules replay from scratch, not from snapshots.
func Explore(opts Options, body func(c *Controller) error) (schedules int, violations []Violation) {
	exploreMu.Lock()
	defer exploreMu.Unlock()
	var prefix []int
	for {
		c := &Controller{filter: opts.Points, maxSteps: opts.MaxSteps, prefix: prefix}
		err := body(c)
		schedules++
		if err != nil {
			violations = append(violations, Violation{
				Schedule: c.Schedule(),
				Trace:    c.Trace(),
				Err:      err,
			})
			if opts.StopOnViolation {
				return schedules, violations
			}
		}
		if opts.MaxSchedules > 0 && schedules >= opts.MaxSchedules {
			return schedules, violations
		}
		prefix = nextPrefix(c.taken, c.branches)
		if prefix == nil {
			return schedules, violations
		}
	}
}

// nextPrefix computes the depth-first successor of a completed run's
// decision sequence: the longest prefix whose last decision still has an
// untried alternative, with that decision incremented.
func nextPrefix(taken, branches []int) []int {
	for i := len(taken) - 1; i >= 0; i-- {
		if taken[i]+1 < branches[i] {
			out := slices.Clone(taken[:i])
			return append(out, taken[i]+1)
		}
	}
	return nil
}
