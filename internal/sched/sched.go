// Package sched provides deterministic schedule exploration and fault
// injection for the LLX/SCX stack's concurrency tests.
//
// The protocol layers (internal/llxscx, internal/epoch, internal/vcell and
// the trees' overwrite paths) call Point at the steps where interleaving
// matters: before a freezing CAS, before marking, before the update CAS and
// the commit store, inside a vcell publish bracket and before the publish
// itself, and at epoch retire/advance boundaries. In the default build
// these calls compile to empty inlined functions — the production binaries
// and the ordinary test suites pay nothing for them. Building with
//
//	go test -tags sched
//
// turns each Point into a potential preemption: a test hands a set of
// operations to a Controller, which runs exactly one of them at a time and
// decides, at every reached point, which operation runs next. Explore then
// enumerates every schedule of a bounded conflict window by depth-first
// search over those decisions, replaying the operations from scratch for
// each one. Because the structures under test are lock-free (a stalled SCX
// is completed by whoever trips over it), running a single operation at a
// time can never deadlock the system: helping substitutes for the parked
// goroutine.
//
// The same build tag arms the fault knobs (SetDropFreeze, SetPrematureFree)
// that the self-tests use to seed protocol mutations — skipping the first
// freezing CAS of an SCX, or freeing epoch-retired memory one epoch early —
// and prove that the linearizability checker and the reclamation tests
// actually catch them. The tag mirrors the existing noepoch/reclaimcheck
// convention (see internal/epoch).
package sched

// PointID identifies one instrumented protocol step. The constants below
// are the complete set of yield/fault points compiled into the stack; a
// Controller can restrict scheduling decisions to a subset via
// Options.Points so the schedule space of an enumeration stays bounded.
type PointID int

const (
	// PointLLX fires at the top of LLX, before the record's info/state/marked
	// words are read.
	PointLLX PointID = iota
	// PointSCXFreeze fires in help() immediately before each freezing CAS.
	PointSCXFreeze
	// PointSCXMark fires in help() after all records are frozen, before the
	// finalized records are marked.
	PointSCXMark
	// PointSCXUpdate fires in help() immediately before the update CAS on
	// the mutable field.
	PointSCXUpdate
	// PointSCXCommit fires in help() immediately before the Committed state
	// store.
	PointSCXCommit
	// PointVCellPublish fires at the top of vcell.(*Cell).Swap, before the
	// value is published.
	PointVCellPublish
	// PointVCellRecheck fires in the overwrite paths' publish brackets,
	// between BeginPublish and the finalized/marked check that decides
	// whether the publish may proceed.
	PointVCellRecheck
	// PointEpochRetire fires at the top of epoch.Retire.
	PointEpochRetire
	// PointEpochAdvance fires immediately before an epoch-advance attempt.
	PointEpochAdvance
	// PointVerStamp fires in the trees' commit hooks immediately before the
	// version-stamp CAS that orders a committed SCX against snapshot capture
	// (the hook — and therefore the stamp — runs after the finalize marks and
	// before the update CAS publishes the new subtree; see the "Versioned
	// snapshots" section of DESIGN.md).
	PointVerStamp
	// PointSnapPublish fires in Snapshot() between the live-snapshot
	// registration (which closes the in-place overwrite fast path) and the
	// version read that linearizes the capture.
	PointSnapPublish
	// PointSnapDrain identifies Snapshot()'s post-version-read wait for the
	// in-flight publish windows (fast-path value publishes and stamp→install
	// brackets) to drain. It is a WaitZero site, not a Point: in the sched
	// build the capture parks here until the counter's holders have run.
	PointSnapDrain
	// PointVCellDrain identifies a finalizer's post-commit wait for a
	// cell's publish brackets to drain before it loads the displaced value
	// (vcell.(*Cell).DrainPublishers). Like PointSnapDrain it is a WaitZero
	// site, not a Point.
	PointVCellDrain

	numPoints
)

// NumPoints is the number of defined instrumentation points. Layers that
// keep per-point state (internal/chaos's policy and counter tables) size
// their arrays with it.
const NumPoints = int(numPoints)

// String returns the point's name for traces and failure reports.
func (p PointID) String() string {
	switch p {
	case PointLLX:
		return "llx"
	case PointSCXFreeze:
		return "scx-freeze"
	case PointSCXMark:
		return "scx-mark"
	case PointSCXUpdate:
		return "scx-update"
	case PointSCXCommit:
		return "scx-commit"
	case PointVCellPublish:
		return "vcell-publish"
	case PointVCellRecheck:
		return "vcell-recheck"
	case PointEpochRetire:
		return "epoch-retire"
	case PointEpochAdvance:
		return "epoch-advance"
	case PointVerStamp:
		return "ver-stamp"
	case PointSnapPublish:
		return "snap-publish"
	case PointSnapDrain:
		return "snap-drain"
	case PointVCellDrain:
		return "vcell-drain"
	default:
		return "unknown"
	}
}
