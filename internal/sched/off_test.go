//go:build !sched

package sched

import "testing"

// TestDisabledBuildIsInert pins the default-build contract the protocol
// layers rely on: points are no-ops and both fault knobs read false, so the
// instrumentation folds away.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true without the sched build tag")
	}
	for p := PointID(0); p < numPoints; p++ {
		Point(p) // must not block or panic
	}
	if DropFreeze() {
		t.Fatal("DropFreeze() = true in the default build")
	}
	if PrematureFree() {
		t.Fatal("PrematureFree() = true in the default build")
	}
	if ChaosArmed() {
		t.Fatal("ChaosArmed() = true before any ArmChaos")
	}
	if ChaosDropHelp() {
		t.Fatal("ChaosDropHelp() = true with chaos disarmed")
	}
}

// TestChaosHooksFire pins the arming contract: with hooks installed and
// chaos armed, every Point call reaches the hook with its own id, and
// disarming restores the inert fast path without unhooking.
func TestChaosHooksFire(t *testing.T) {
	var hits [NumPoints]int
	drops := 0
	SetChaosHooks(func(id PointID) { hits[id]++ }, func() bool { drops++; return true })
	defer SetChaosHooks(nil, nil)
	ArmChaos(true)
	for p := PointID(0); p < numPoints; p++ {
		Point(p)
	}
	if !ChaosDropHelp() {
		t.Fatal("ChaosDropHelp() = false with a true-returning hook armed")
	}
	ArmChaos(false)
	Point(PointLLX)
	if ChaosDropHelp() {
		t.Fatal("ChaosDropHelp() = true after disarm")
	}
	for p, n := range hits {
		if n != 1 {
			t.Fatalf("point %v reached hook %d times, want 1", PointID(p), n)
		}
	}
	if drops != 1 {
		t.Fatalf("drop-help hook ran %d times, want 1", drops)
	}
}
