//go:build !sched

package sched

import "testing"

// TestDisabledBuildIsInert pins the default-build contract the protocol
// layers rely on: points are no-ops and both fault knobs read false, so the
// instrumentation folds away.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled = true without the sched build tag")
	}
	for p := PointID(0); p < numPoints; p++ {
		Point(p) // must not block or panic
	}
	if DropFreeze() {
		t.Fatal("DropFreeze() = true in the default build")
	}
	if PrematureFree() {
		t.Fatal("PrematureFree() = true in the default build")
	}
}
