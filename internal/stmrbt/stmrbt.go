// Package stmrbt implements a red-black tree on top of the software
// transactional memory of internal/stm: every Get, Insert and Delete runs as
// one coarse transaction that may touch an entire root-to-leaf path (plus
// rebalancing), exactly like the STM-based red-black tree ("RBSTM") used as
// a baseline in the paper's evaluation. The point of this baseline is the
// programming model, not the performance: conflicts between large
// transactions limit concurrency severely, which is what Figure 8 shows.
package stmrbt

import "repro/internal/stm"

const (
	red   = false
	black = true
)

type node struct {
	k      *stm.Var[int64]
	v      *stm.Var[int64]
	colour *stm.Var[bool]
	left   *stm.Var[*node]
	right  *stm.Var[*node]
	parent *stm.Var[*node]
}

func newNode(k, v int64, parent *node) *node {
	return &node{
		k:      stm.NewVar(k),
		v:      stm.NewVar(v),
		colour: stm.NewVar(red),
		left:   stm.NewVar[*node](nil),
		right:  stm.NewVar[*node](nil),
		parent: stm.NewVar(parent),
	}
}

// Tree is a transactional red-black tree implementing an ordered dictionary
// with int64 keys and values. It is safe for concurrent use; every operation
// executes as a single STM transaction.
type Tree struct {
	root *stm.Var[*node]
	size *stm.Var[int64]
}

// New returns an empty transactional red-black tree.
func New() *Tree {
	return &Tree{root: stm.NewVar[*node](nil), size: stm.NewVar[int64](0)}
}

// Name identifies the data structure in benchmark reports.
func (t *Tree) Name() string { return "RBSTM" }

// Size returns the number of keys stored.
func (t *Tree) Size() int {
	return int(stm.Atomically(func(tx *stm.Txn) int64 { return stm.Read(tx, t.size) }))
}

// Get returns the value associated with key, or (0, false) if absent.
func (t *Tree) Get(key int64) (int64, bool) {
	type result struct {
		v  int64
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		n := stm.Read(tx, t.root)
		for n != nil {
			switch k := stm.Read(tx, n.k); {
			case key < k:
				n = stm.Read(tx, n.left)
			case key > k:
				n = stm.Read(tx, n.right)
			default:
				return result{stm.Read(tx, n.v), true}
			}
		}
		return result{}
	})
	return r.v, r.ok
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (t *Tree) Insert(key, value int64) (int64, bool) {
	type result struct {
		old     int64
		existed bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var parent *node
		n := stm.Read(tx, t.root)
		for n != nil {
			parent = n
			switch k := stm.Read(tx, n.k); {
			case key < k:
				n = stm.Read(tx, n.left)
			case key > k:
				n = stm.Read(tx, n.right)
			default:
				old := stm.Read(tx, n.v)
				stm.Write(tx, n.v, value)
				return result{old, true}
			}
		}
		fresh := newNode(key, value, parent)
		switch {
		case parent == nil:
			stm.Write(tx, t.root, fresh)
		case key < stm.Read(tx, parent.k):
			stm.Write(tx, parent.left, fresh)
		default:
			stm.Write(tx, parent.right, fresh)
		}
		stm.Write(tx, t.size, stm.Read(tx, t.size)+1)
		t.fixAfterInsert(tx, fresh)
		return result{}
	})
	return r.old, r.existed
}

// Delete removes key, returning its value and true if it was present.
func (t *Tree) Delete(key int64) (int64, bool) {
	type result struct {
		old     int64
		existed bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		n := stm.Read(tx, t.root)
		for n != nil && stm.Read(tx, n.k) != key {
			if key < stm.Read(tx, n.k) {
				n = stm.Read(tx, n.left)
			} else {
				n = stm.Read(tx, n.right)
			}
		}
		if n == nil {
			return result{}
		}
		old := stm.Read(tx, n.v)
		stm.Write(tx, t.size, stm.Read(tx, t.size)-1)
		t.deleteNode(tx, n)
		return result{old, true}
	})
	return r.old, r.existed
}

// Successor returns the smallest key strictly greater than key.
func (t *Tree) Successor(key int64) (int64, int64, bool) {
	type result struct {
		k, v int64
		ok   bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var best *node
		n := stm.Read(tx, t.root)
		for n != nil {
			if k := stm.Read(tx, n.k); k > key {
				best = n
				n = stm.Read(tx, n.left)
			} else {
				n = stm.Read(tx, n.right)
			}
		}
		if best == nil {
			return result{}
		}
		return result{stm.Read(tx, best.k), stm.Read(tx, best.v), true}
	})
	return r.k, r.v, r.ok
}

// Predecessor returns the largest key strictly smaller than key.
func (t *Tree) Predecessor(key int64) (int64, int64, bool) {
	type result struct {
		k, v int64
		ok   bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var best *node
		n := stm.Read(tx, t.root)
		for n != nil {
			if k := stm.Read(tx, n.k); k < key {
				best = n
				n = stm.Read(tx, n.right)
			} else {
				n = stm.Read(tx, n.left)
			}
		}
		if best == nil {
			return result{}
		}
		return result{stm.Read(tx, best.k), stm.Read(tx, best.v), true}
	})
	return r.k, r.v, r.ok
}

// --- transactional red-black machinery -----------------------------------

// deleteNode removes n from the tree, handling the two-children case the way
// java.util.TreeMap does: the successor's key and value are copied into n
// and the successor node is unlinked instead.
func (t *Tree) deleteNode(tx *stm.Txn, n *node) {
	if stm.Read(tx, n.left) != nil && stm.Read(tx, n.right) != nil {
		s := stm.Read(tx, n.right)
		for stm.Read(tx, s.left) != nil {
			s = stm.Read(tx, s.left)
		}
		stm.Write(tx, n.k, stm.Read(tx, s.k))
		stm.Write(tx, n.v, stm.Read(tx, s.v))
		n = s
	}
	// n now has at most one child.
	child := stm.Read(tx, n.left)
	if child == nil {
		child = stm.Read(tx, n.right)
	}
	parent := stm.Read(tx, n.parent)
	if child != nil {
		stm.Write(tx, child.parent, parent)
		t.replaceChild(tx, parent, n, child)
		if stm.Read(tx, n.colour) == black {
			t.fixAfterDelete(tx, child)
		}
	} else if parent == nil {
		stm.Write(tx, t.root, nil)
	} else {
		if stm.Read(tx, n.colour) == black {
			t.fixAfterDelete(tx, n)
		}
		parent = stm.Read(tx, n.parent)
		if parent != nil {
			t.replaceChild(tx, parent, n, nil)
			stm.Write(tx, n.parent, nil)
		}
	}
}

func (t *Tree) replaceChild(tx *stm.Txn, parent, old, new *node) {
	switch {
	case parent == nil:
		stm.Write(tx, t.root, new)
	case stm.Read(tx, parent.left) == old:
		stm.Write(tx, parent.left, new)
	default:
		stm.Write(tx, parent.right, new)
	}
}

func colourOf(tx *stm.Txn, n *node) bool {
	if n == nil {
		return black
	}
	return stm.Read(tx, n.colour)
}

func parentOf(tx *stm.Txn, n *node) *node {
	if n == nil {
		return nil
	}
	return stm.Read(tx, n.parent)
}

func leftOf(tx *stm.Txn, n *node) *node {
	if n == nil {
		return nil
	}
	return stm.Read(tx, n.left)
}

func rightOf(tx *stm.Txn, n *node) *node {
	if n == nil {
		return nil
	}
	return stm.Read(tx, n.right)
}

func setColour(tx *stm.Txn, n *node, c bool) {
	if n != nil {
		stm.Write(tx, n.colour, c)
	}
}

func (t *Tree) rotateLeft(tx *stm.Txn, n *node) {
	if n == nil {
		return
	}
	r := stm.Read(tx, n.right)
	stm.Write(tx, n.right, stm.Read(tx, r.left))
	if l := stm.Read(tx, r.left); l != nil {
		stm.Write(tx, l.parent, n)
	}
	p := stm.Read(tx, n.parent)
	stm.Write(tx, r.parent, p)
	switch {
	case p == nil:
		stm.Write(tx, t.root, r)
	case stm.Read(tx, p.left) == n:
		stm.Write(tx, p.left, r)
	default:
		stm.Write(tx, p.right, r)
	}
	stm.Write(tx, r.left, n)
	stm.Write(tx, n.parent, r)
}

func (t *Tree) rotateRight(tx *stm.Txn, n *node) {
	if n == nil {
		return
	}
	l := stm.Read(tx, n.left)
	stm.Write(tx, n.left, stm.Read(tx, l.right))
	if r := stm.Read(tx, l.right); r != nil {
		stm.Write(tx, r.parent, n)
	}
	p := stm.Read(tx, n.parent)
	stm.Write(tx, l.parent, p)
	switch {
	case p == nil:
		stm.Write(tx, t.root, l)
	case stm.Read(tx, p.right) == n:
		stm.Write(tx, p.right, l)
	default:
		stm.Write(tx, p.left, l)
	}
	stm.Write(tx, l.right, n)
	stm.Write(tx, n.parent, l)
}

func (t *Tree) fixAfterInsert(tx *stm.Txn, x *node) {
	setColour(tx, x, red)
	for x != nil && stm.Read(tx, t.root) != x && colourOf(tx, parentOf(tx, x)) == red {
		if parentOf(tx, x) == leftOf(tx, parentOf(tx, parentOf(tx, x))) {
			y := rightOf(tx, parentOf(tx, parentOf(tx, x)))
			if colourOf(tx, y) == red {
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, y, black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				x = parentOf(tx, parentOf(tx, x))
			} else {
				if x == rightOf(tx, parentOf(tx, x)) {
					x = parentOf(tx, x)
					t.rotateLeft(tx, x)
				}
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				t.rotateRight(tx, parentOf(tx, parentOf(tx, x)))
			}
		} else {
			y := leftOf(tx, parentOf(tx, parentOf(tx, x)))
			if colourOf(tx, y) == red {
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, y, black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				x = parentOf(tx, parentOf(tx, x))
			} else {
				if x == leftOf(tx, parentOf(tx, x)) {
					x = parentOf(tx, x)
					t.rotateRight(tx, x)
				}
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				t.rotateLeft(tx, parentOf(tx, parentOf(tx, x)))
			}
		}
	}
	setColour(tx, stm.Read(tx, t.root), black)
}

func (t *Tree) fixAfterDelete(tx *stm.Txn, x *node) {
	for stm.Read(tx, t.root) != x && colourOf(tx, x) == black {
		if x == leftOf(tx, parentOf(tx, x)) {
			sib := rightOf(tx, parentOf(tx, x))
			if colourOf(tx, sib) == red {
				setColour(tx, sib, black)
				setColour(tx, parentOf(tx, x), red)
				t.rotateLeft(tx, parentOf(tx, x))
				sib = rightOf(tx, parentOf(tx, x))
			}
			if colourOf(tx, leftOf(tx, sib)) == black && colourOf(tx, rightOf(tx, sib)) == black {
				setColour(tx, sib, red)
				x = parentOf(tx, x)
			} else {
				if colourOf(tx, rightOf(tx, sib)) == black {
					setColour(tx, leftOf(tx, sib), black)
					setColour(tx, sib, red)
					t.rotateRight(tx, sib)
					sib = rightOf(tx, parentOf(tx, x))
				}
				setColour(tx, sib, colourOf(tx, parentOf(tx, x)))
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, rightOf(tx, sib), black)
				t.rotateLeft(tx, parentOf(tx, x))
				x = stm.Read(tx, t.root)
			}
		} else {
			sib := leftOf(tx, parentOf(tx, x))
			if colourOf(tx, sib) == red {
				setColour(tx, sib, black)
				setColour(tx, parentOf(tx, x), red)
				t.rotateRight(tx, parentOf(tx, x))
				sib = leftOf(tx, parentOf(tx, x))
			}
			if colourOf(tx, rightOf(tx, sib)) == black && colourOf(tx, leftOf(tx, sib)) == black {
				setColour(tx, sib, red)
				x = parentOf(tx, x)
			} else {
				if colourOf(tx, leftOf(tx, sib)) == black {
					setColour(tx, rightOf(tx, sib), black)
					setColour(tx, sib, red)
					t.rotateLeft(tx, sib)
					sib = leftOf(tx, parentOf(tx, x))
				}
				setColour(tx, sib, colourOf(tx, parentOf(tx, x)))
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, leftOf(tx, sib), black)
				t.rotateRight(tx, parentOf(tx, x))
				x = stm.Read(tx, t.root)
			}
		}
	}
	setColour(tx, x, black)
}

// CheckInvariants verifies the red-black properties and the BST order. It
// runs in one transaction and is intended for tests at quiescence.
func (t *Tree) CheckInvariants() error {
	ok := stm.Atomically(func(tx *stm.Txn) bool {
		root := stm.Read(tx, t.root)
		if root == nil {
			return true
		}
		if stm.Read(tx, root.colour) != black {
			return false
		}
		valid := true
		var check func(n *node, lo, hi *int64) int
		check = func(n *node, lo, hi *int64) int {
			if n == nil || !valid {
				return 1
			}
			k := stm.Read(tx, n.k)
			if (lo != nil && k <= *lo) || (hi != nil && k >= *hi) {
				valid = false
				return 0
			}
			if stm.Read(tx, n.colour) == red &&
				(colourOf(tx, stm.Read(tx, n.left)) == red || colourOf(tx, stm.Read(tx, n.right)) == red) {
				valid = false
				return 0
			}
			lh := check(stm.Read(tx, n.left), lo, &k)
			rh := check(stm.Read(tx, n.right), &k, hi)
			if lh != rh {
				valid = false
				return 0
			}
			if stm.Read(tx, n.colour) == black {
				lh++
			}
			return lh
		}
		check(root, nil, nil)
		return valid
	})
	if !ok {
		return errInvariant
	}
	return nil
}

type rbError string

func (e rbError) Error() string { return string(e) }

const errInvariant = rbError("stmrbt: red-black invariant violated")

// Keys returns all keys in ascending order, read in one transaction.
func (t *Tree) Keys() []int64 {
	return stm.Atomically(func(tx *stm.Txn) []int64 {
		var keys []int64
		var walk func(n *node)
		walk = func(n *node) {
			if n == nil {
				return
			}
			walk(stm.Read(tx, n.left))
			keys = append(keys, stm.Read(tx, n.k))
			walk(stm.Read(tx, n.right))
		}
		walk(stm.Read(tx, t.root))
		return keys
	})
}
