// Package stmrbt implements a red-black tree on top of the software
// transactional memory of internal/stm: every Get, Insert and Delete runs as
// one coarse transaction that may touch an entire root-to-leaf path (plus
// rebalancing), exactly like the STM-based red-black tree ("RBSTM") used as
// a baseline in the paper's evaluation. The point of this baseline is the
// programming model, not the performance: conflicts between large
// transactions limit concurrency severely, which is what Figure 8 shows.
//
// The tree is generic over the key and value types and implements
// dict.OrderedMap[K, V]: NewOrdered builds a tree over any cmp.Ordered key
// type (installing a transactional search devirtualized to the native `<`
// operator), NewLess accepts an arbitrary comparator (see dict.Less for the
// contract), and New keeps the historical int64 instantiation used by the
// benchmark registry.
package stmrbt

import (
	"cmp"

	"repro/internal/stm"
)

const (
	red   = false
	black = true
)

type node[K, V any] struct {
	k      *stm.Var[K]
	v      *stm.Var[V]
	colour *stm.Var[bool]
	left   *stm.Var[*node[K, V]]
	right  *stm.Var[*node[K, V]]
	parent *stm.Var[*node[K, V]]
}

func newNode[K, V any](k K, v V, parent *node[K, V]) *node[K, V] {
	return &node[K, V]{
		k:      stm.NewVar(k),
		v:      stm.NewVar(v),
		colour: stm.NewVar(red),
		left:   stm.NewVar[*node[K, V]](nil),
		right:  stm.NewVar[*node[K, V]](nil),
		parent: stm.NewVar(parent),
	}
}

// Tree is a transactional red-black tree implementing an ordered dictionary.
// It is safe for concurrent use; every operation executes as a single STM
// transaction. Use New, NewOrdered or NewLess to create one.
type Tree[K, V any] struct {
	root *stm.Var[*node[K, V]]
	size *stm.Var[int64]
	less func(a, b K) bool

	// lookupFn is the transactional search walk, selected at construction:
	// NewLess installs the comparator-based loop, NewOrdered a
	// specialization comparing with the native `<`, so ordered-key trees pay
	// one indirect call per search instead of one per node (on top of the
	// unavoidable per-node stm.Read).
	lookupFn func(t *Tree[K, V], tx *stm.Txn, key K) *node[K, V]
}

// NewLess returns an empty transactional red-black tree whose keys are
// ordered by less.
func NewLess[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{
		root:     stm.NewVar[*node[K, V]](nil),
		size:     stm.NewVar[int64](0),
		less:     less,
		lookupFn: lookupLess[K, V],
	}
}

// NewOrdered returns an empty transactional red-black tree over a naturally
// ordered key type, with the search loop devirtualized to the native `<`.
func NewOrdered[K cmp.Ordered, V any]() *Tree[K, V] {
	t := NewLess[K, V](cmp.Less[K])
	t.lookupFn = lookupOrdered[K, V]
	return t
}

// New returns an empty transactional red-black tree with int64 keys and
// values, the instantiation the benchmark registry and the paper's figures
// use.
func New() *Tree[int64, int64] { return NewOrdered[int64, int64]() }

// IntTree is the historical int64 instantiation used by the benchmark
// registry.
type IntTree = Tree[int64, int64]

// Name identifies the data structure in benchmark reports.
func (t *Tree[K, V]) Name() string { return "RBSTM" }

// Size returns the number of keys stored.
func (t *Tree[K, V]) Size() int {
	return int(stm.Atomically(func(tx *stm.Txn) int64 { return stm.Read(tx, t.size) }))
}

// lookupLess is the comparator-based transactional search installed by
// NewLess: it returns the node holding key, or nil, all reads within tx.
func lookupLess[K, V any](t *Tree[K, V], tx *stm.Txn, key K) *node[K, V] {
	n := stm.Read(tx, t.root)
	for n != nil {
		switch k := stm.Read(tx, n.k); {
		case t.less(key, k):
			n = stm.Read(tx, n.left)
		case t.less(k, key):
			n = stm.Read(tx, n.right)
		default:
			return n
		}
	}
	return nil
}

// lookupOrdered is the devirtualized transactional search installed by
// NewOrdered.
func lookupOrdered[K cmp.Ordered, V any](t *Tree[K, V], tx *stm.Txn, key K) *node[K, V] {
	n := stm.Read(tx, t.root)
	for n != nil {
		switch k := stm.Read(tx, n.k); {
		case key < k:
			n = stm.Read(tx, n.left)
		case k < key:
			n = stm.Read(tx, n.right)
		default:
			return n
		}
	}
	return nil
}

// Get returns the value associated with key, or the zero value and false if
// absent.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	type result struct {
		v  V
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		if n := t.lookupFn(t, tx, key); n != nil {
			return result{stm.Read(tx, n.v), true}
		}
		return result{}
	})
	return r.v, r.ok
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (t *Tree[K, V]) Insert(key K, value V) (V, bool) {
	type result struct {
		old     V
		existed bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var parent *node[K, V]
		n := stm.Read(tx, t.root)
		for n != nil {
			parent = n
			switch k := stm.Read(tx, n.k); {
			case t.less(key, k):
				n = stm.Read(tx, n.left)
			case t.less(k, key):
				n = stm.Read(tx, n.right)
			default:
				old := stm.Read(tx, n.v)
				stm.Write(tx, n.v, value)
				return result{old, true}
			}
		}
		fresh := newNode(key, value, parent)
		switch {
		case parent == nil:
			stm.Write(tx, t.root, fresh)
		case t.less(key, stm.Read(tx, parent.k)):
			stm.Write(tx, parent.left, fresh)
		default:
			stm.Write(tx, parent.right, fresh)
		}
		stm.Write(tx, t.size, stm.Read(tx, t.size)+1)
		t.fixAfterInsert(tx, fresh)
		return result{}
	})
	return r.old, r.existed
}

// Delete removes key, returning its value and true if it was present.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	type result struct {
		old     V
		existed bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		n := t.lookupFn(t, tx, key)
		if n == nil {
			return result{}
		}
		old := stm.Read(tx, n.v)
		stm.Write(tx, t.size, stm.Read(tx, t.size)-1)
		t.deleteNode(tx, n)
		return result{old, true}
	})
	return r.old, r.existed
}

// Successor returns the smallest key strictly greater than key.
func (t *Tree[K, V]) Successor(key K) (K, V, bool) {
	type result struct {
		k  K
		v  V
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var best *node[K, V]
		n := stm.Read(tx, t.root)
		for n != nil {
			if k := stm.Read(tx, n.k); t.less(key, k) {
				best = n
				n = stm.Read(tx, n.left)
			} else {
				n = stm.Read(tx, n.right)
			}
		}
		if best == nil {
			return result{}
		}
		return result{stm.Read(tx, best.k), stm.Read(tx, best.v), true}
	})
	return r.k, r.v, r.ok
}

// Predecessor returns the largest key strictly smaller than key.
func (t *Tree[K, V]) Predecessor(key K) (K, V, bool) {
	type result struct {
		k  K
		v  V
		ok bool
	}
	r := stm.Atomically(func(tx *stm.Txn) result {
		var best *node[K, V]
		n := stm.Read(tx, t.root)
		for n != nil {
			if k := stm.Read(tx, n.k); t.less(k, key) {
				best = n
				n = stm.Read(tx, n.right)
			} else {
				n = stm.Read(tx, n.left)
			}
		}
		if best == nil {
			return result{}
		}
		return result{stm.Read(tx, best.k), stm.Read(tx, best.v), true}
	})
	return r.k, r.v, r.ok
}

// --- transactional red-black machinery -----------------------------------

// deleteNode removes n from the tree, handling the two-children case the way
// java.util.TreeMap does: the successor's key and value are copied into n
// and the successor node is unlinked instead.
func (t *Tree[K, V]) deleteNode(tx *stm.Txn, n *node[K, V]) {
	if stm.Read(tx, n.left) != nil && stm.Read(tx, n.right) != nil {
		s := stm.Read(tx, n.right)
		for stm.Read(tx, s.left) != nil {
			s = stm.Read(tx, s.left)
		}
		stm.Write(tx, n.k, stm.Read(tx, s.k))
		stm.Write(tx, n.v, stm.Read(tx, s.v))
		n = s
	}
	// n now has at most one child.
	child := stm.Read(tx, n.left)
	if child == nil {
		child = stm.Read(tx, n.right)
	}
	parent := stm.Read(tx, n.parent)
	if child != nil {
		stm.Write(tx, child.parent, parent)
		t.replaceChild(tx, parent, n, child)
		if stm.Read(tx, n.colour) == black {
			t.fixAfterDelete(tx, child)
		}
	} else if parent == nil {
		stm.Write(tx, t.root, nil)
	} else {
		if stm.Read(tx, n.colour) == black {
			t.fixAfterDelete(tx, n)
		}
		parent = stm.Read(tx, n.parent)
		if parent != nil {
			t.replaceChild(tx, parent, n, nil)
			stm.Write(tx, n.parent, nil)
		}
	}
}

func (t *Tree[K, V]) replaceChild(tx *stm.Txn, parent, old, new *node[K, V]) {
	switch {
	case parent == nil:
		stm.Write(tx, t.root, new)
	case stm.Read(tx, parent.left) == old:
		stm.Write(tx, parent.left, new)
	default:
		stm.Write(tx, parent.right, new)
	}
}

func colourOf[K, V any](tx *stm.Txn, n *node[K, V]) bool {
	if n == nil {
		return black
	}
	return stm.Read(tx, n.colour)
}

func parentOf[K, V any](tx *stm.Txn, n *node[K, V]) *node[K, V] {
	if n == nil {
		return nil
	}
	return stm.Read(tx, n.parent)
}

func leftOf[K, V any](tx *stm.Txn, n *node[K, V]) *node[K, V] {
	if n == nil {
		return nil
	}
	return stm.Read(tx, n.left)
}

func rightOf[K, V any](tx *stm.Txn, n *node[K, V]) *node[K, V] {
	if n == nil {
		return nil
	}
	return stm.Read(tx, n.right)
}

func setColour[K, V any](tx *stm.Txn, n *node[K, V], c bool) {
	if n != nil {
		stm.Write(tx, n.colour, c)
	}
}

func (t *Tree[K, V]) rotateLeft(tx *stm.Txn, n *node[K, V]) {
	if n == nil {
		return
	}
	r := stm.Read(tx, n.right)
	stm.Write(tx, n.right, stm.Read(tx, r.left))
	if l := stm.Read(tx, r.left); l != nil {
		stm.Write(tx, l.parent, n)
	}
	p := stm.Read(tx, n.parent)
	stm.Write(tx, r.parent, p)
	switch {
	case p == nil:
		stm.Write(tx, t.root, r)
	case stm.Read(tx, p.left) == n:
		stm.Write(tx, p.left, r)
	default:
		stm.Write(tx, p.right, r)
	}
	stm.Write(tx, r.left, n)
	stm.Write(tx, n.parent, r)
}

func (t *Tree[K, V]) rotateRight(tx *stm.Txn, n *node[K, V]) {
	if n == nil {
		return
	}
	l := stm.Read(tx, n.left)
	stm.Write(tx, n.left, stm.Read(tx, l.right))
	if r := stm.Read(tx, l.right); r != nil {
		stm.Write(tx, r.parent, n)
	}
	p := stm.Read(tx, n.parent)
	stm.Write(tx, l.parent, p)
	switch {
	case p == nil:
		stm.Write(tx, t.root, l)
	case stm.Read(tx, p.right) == n:
		stm.Write(tx, p.right, l)
	default:
		stm.Write(tx, p.left, l)
	}
	stm.Write(tx, l.right, n)
	stm.Write(tx, n.parent, l)
}

func (t *Tree[K, V]) fixAfterInsert(tx *stm.Txn, x *node[K, V]) {
	setColour(tx, x, red)
	for x != nil && stm.Read(tx, t.root) != x && colourOf(tx, parentOf(tx, x)) == red {
		if parentOf(tx, x) == leftOf(tx, parentOf(tx, parentOf(tx, x))) {
			y := rightOf(tx, parentOf(tx, parentOf(tx, x)))
			if colourOf(tx, y) == red {
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, y, black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				x = parentOf(tx, parentOf(tx, x))
			} else {
				if x == rightOf(tx, parentOf(tx, x)) {
					x = parentOf(tx, x)
					t.rotateLeft(tx, x)
				}
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				t.rotateRight(tx, parentOf(tx, parentOf(tx, x)))
			}
		} else {
			y := leftOf(tx, parentOf(tx, parentOf(tx, x)))
			if colourOf(tx, y) == red {
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, y, black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				x = parentOf(tx, parentOf(tx, x))
			} else {
				if x == leftOf(tx, parentOf(tx, x)) {
					x = parentOf(tx, x)
					t.rotateRight(tx, x)
				}
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, parentOf(tx, parentOf(tx, x)), red)
				t.rotateLeft(tx, parentOf(tx, parentOf(tx, x)))
			}
		}
	}
	setColour(tx, stm.Read(tx, t.root), black)
}

func (t *Tree[K, V]) fixAfterDelete(tx *stm.Txn, x *node[K, V]) {
	for stm.Read(tx, t.root) != x && colourOf(tx, x) == black {
		if x == leftOf(tx, parentOf(tx, x)) {
			sib := rightOf(tx, parentOf(tx, x))
			if colourOf(tx, sib) == red {
				setColour(tx, sib, black)
				setColour(tx, parentOf(tx, x), red)
				t.rotateLeft(tx, parentOf(tx, x))
				sib = rightOf(tx, parentOf(tx, x))
			}
			if colourOf(tx, leftOf(tx, sib)) == black && colourOf(tx, rightOf(tx, sib)) == black {
				setColour(tx, sib, red)
				x = parentOf(tx, x)
			} else {
				if colourOf(tx, rightOf(tx, sib)) == black {
					setColour(tx, leftOf(tx, sib), black)
					setColour(tx, sib, red)
					t.rotateRight(tx, sib)
					sib = rightOf(tx, parentOf(tx, x))
				}
				setColour(tx, sib, colourOf(tx, parentOf(tx, x)))
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, rightOf(tx, sib), black)
				t.rotateLeft(tx, parentOf(tx, x))
				x = stm.Read(tx, t.root)
			}
		} else {
			sib := leftOf(tx, parentOf(tx, x))
			if colourOf(tx, sib) == red {
				setColour(tx, sib, black)
				setColour(tx, parentOf(tx, x), red)
				t.rotateRight(tx, parentOf(tx, x))
				sib = leftOf(tx, parentOf(tx, x))
			}
			if colourOf(tx, rightOf(tx, sib)) == black && colourOf(tx, leftOf(tx, sib)) == black {
				setColour(tx, sib, red)
				x = parentOf(tx, x)
			} else {
				if colourOf(tx, leftOf(tx, sib)) == black {
					setColour(tx, rightOf(tx, sib), black)
					setColour(tx, sib, red)
					t.rotateLeft(tx, sib)
					sib = leftOf(tx, parentOf(tx, x))
				}
				setColour(tx, sib, colourOf(tx, parentOf(tx, x)))
				setColour(tx, parentOf(tx, x), black)
				setColour(tx, leftOf(tx, sib), black)
				t.rotateRight(tx, parentOf(tx, x))
				x = stm.Read(tx, t.root)
			}
		}
	}
	setColour(tx, x, black)
}

// CheckInvariants verifies the red-black properties and the BST order. It
// runs in one transaction and is intended for tests at quiescence.
func (t *Tree[K, V]) CheckInvariants() error {
	ok := stm.Atomically(func(tx *stm.Txn) bool {
		root := stm.Read(tx, t.root)
		if root == nil {
			return true
		}
		if stm.Read(tx, root.colour) != black {
			return false
		}
		valid := true
		var check func(n *node[K, V], lo, hi *K) int
		check = func(n *node[K, V], lo, hi *K) int {
			if n == nil || !valid {
				return 1
			}
			k := stm.Read(tx, n.k)
			if (lo != nil && !t.less(*lo, k)) || (hi != nil && !t.less(k, *hi)) {
				valid = false
				return 0
			}
			if stm.Read(tx, n.colour) == red &&
				(colourOf(tx, stm.Read(tx, n.left)) == red || colourOf(tx, stm.Read(tx, n.right)) == red) {
				valid = false
				return 0
			}
			lh := check(stm.Read(tx, n.left), lo, &k)
			rh := check(stm.Read(tx, n.right), &k, hi)
			if lh != rh {
				valid = false
				return 0
			}
			if stm.Read(tx, n.colour) == black {
				lh++
			}
			return lh
		}
		check(root, nil, nil)
		return valid
	})
	if !ok {
		return errInvariant
	}
	return nil
}

type rbError string

func (e rbError) Error() string { return string(e) }

const errInvariant = rbError("stmrbt: red-black invariant violated")

// Keys returns all keys in ascending order, read in one transaction.
func (t *Tree[K, V]) Keys() []K {
	return stm.Atomically(func(tx *stm.Txn) []K {
		var keys []K
		var walk func(n *node[K, V])
		walk = func(n *node[K, V]) {
			if n == nil {
				return
			}
			walk(stm.Read(tx, n.left))
			keys = append(keys, stm.Read(tx, n.k))
			walk(stm.Read(tx, n.right))
		}
		walk(stm.Read(tx, t.root))
		return keys
	})
}
