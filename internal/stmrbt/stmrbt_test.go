package stmrbt

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dict"
	"repro/internal/dict/dicttest"
)

// target is the shared-suite target for the int64 instantiation: the
// model-based conformance, fuzz and stress logic lives in
// internal/dict/dicttest; this package only supplies the constructor and the
// quiescent invariant check.
func target() dicttest.Target {
	return dicttest.Target{
		Name: "RBSTM",
		New:  func() dict.IntMap { return New() },
		Check: func(d dict.IntMap) error {
			return d.(*Tree[int64, int64]).CheckInvariants()
		},
	}
}

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(4); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, existed := tr.Insert(4, 40); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(4); !ok || v != 40 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := tr.Insert(4, 41); !existed || old != 40 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := tr.Delete(4); !existed || old != 41 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, existed := tr.Delete(4); existed {
		t.Fatal("double delete reported existed")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialConformance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dicttest.SequentialConformance(t, target(), 6000, 600, seed)
	}
	// A tiny key range maximizes rotation churn per key.
	dicttest.SequentialConformance(t, target(), 3000, 8, 99)
}

// TestComparatorPath runs the same conformance suite against a NewLess tree
// with a reversed ordering, so the comparator-based search is exercised
// rather than the devirtualized one New installs.
func TestComparatorPath(t *testing.T) {
	desc := func(a, b int64) bool { return a > b }
	tgt := dicttest.TargetOf[int64, int64]{
		Name: "RBSTM/desc",
		New:  func() dict.Map[int64, int64] { return NewLess[int64, int64](desc) },
		Less: desc,
		Check: func(d dict.Map[int64, int64]) error {
			return d.(*Tree[int64, int64]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 5000,
		func(u uint64) int64 { return int64(u % 300) },
		func(u uint64) int64 { return int64(u % (1 << 30)) },
		7)
}

// TestStringKeys runs the conformance suite over the string-keyed
// instantiation, exercising NewOrdered's generic construction path.
func TestStringKeys(t *testing.T) {
	tgt := dicttest.TargetOf[string, string]{
		Name: "RBSTM/string",
		New:  func() dict.Map[string, string] { return NewOrdered[string, string]() },
		Less: func(a, b string) bool { return a < b },
		Check: func(d dict.Map[string, string]) error {
			return d.(*Tree[string, string]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 5000,
		func(u uint64) string { return fmt.Sprintf("k%03d", u%200) },
		func(u uint64) string { return fmt.Sprintf("v%d", u%1024) },
		5)
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for k := int64(0); k < 100; k += 10 {
		tr.Insert(k, k)
	}
	if k, _, ok := tr.Successor(45); !ok || k != 50 {
		t.Fatalf("Successor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := tr.Successor(90); ok {
		t.Fatalf("Successor(90) = (%d,%v), want none", k, ok)
	}
	if k, _, ok := tr.Predecessor(45); !ok || k != 40 {
		t.Fatalf("Predecessor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := tr.Predecessor(0); ok {
		t.Fatalf("Predecessor(0) = (%d,%v), want none", k, ok)
	}
}

func TestConcurrentStress(t *testing.T) {
	dicttest.ConcurrentStress(t, target(), 8, 1500, 150)
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				key := rng.Int63n(48)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	keys := tr.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("keys out of order: %d >= %d", keys[i-1], keys[i])
		}
	}
}
