package stmrbt

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicOperations(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, existed := tr.Insert(1, 10); existed {
		t.Fatal("fresh insert reported existed")
	}
	if v, ok := tr.Get(1); !ok || v != 10 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := tr.Insert(1, 11); !existed || old != 10 {
		t.Fatalf("overwrite = (%d,%v)", old, existed)
	}
	if old, existed := tr.Delete(1); !existed || old != 11 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(1); ok {
		t.Fatal("present after delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20000; i++ {
		key := rng.Int63n(500)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch at op %d", key, i)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch at op %d", key, i)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch at op %d", key, i)
			}
		}
		if i%5000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants at op %d: %v", i, err)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for k := int64(0); k < 50; k += 5 {
		tr.Insert(k, k)
	}
	if k, _, ok := tr.Successor(12); !ok || k != 15 {
		t.Fatalf("Successor(12) = (%d,%v)", k, ok)
	}
	if _, _, ok := tr.Successor(45); ok {
		t.Fatal("Successor(45) should not exist")
	}
	if k, _, ok := tr.Predecessor(12); !ok || k != 10 {
		t.Fatalf("Predecessor(12) = (%d,%v)", k, ok)
	}
	if _, _, ok := tr.Predecessor(0); ok {
		t.Fatal("Predecessor(0) should not exist")
	}
}

func TestPropertyInvariantsHold(t *testing.T) {
	prop := func(ins []int16, del []int16) bool {
		tr := New()
		for _, k := range ins {
			tr.Insert(int64(k), int64(k))
		}
		for _, k := range del {
			tr.Delete(int64(k))
		}
		keys := tr.Keys()
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) &&
			tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	tr := New()
	const goroutines = 8
	const keysPerG = 100
	const opsPerG = 2000
	finals := make([]map[int64]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			final := map[int64]int64{}
			base := int64(g * keysPerG)
			for i := 0; i < opsPerG; i++ {
				key := base + rng.Int63n(keysPerG)
				if rng.Intn(2) == 0 {
					val := rng.Int63n(1 << 20)
					tr.Insert(key, val)
					final[key] = val
				} else {
					tr.Delete(key)
					final[key] = -1
				}
			}
			finals[g] = final
		}(g)
	}
	wg.Wait()
	for g, final := range finals {
		for key, want := range final {
			v, ok := tr.Get(key)
			if want == -1 {
				if ok {
					t.Fatalf("goroutine %d key %d: present, want deleted", g, key)
				}
			} else if !ok || v != want {
				t.Fatalf("goroutine %d key %d: got (%d,%v), want (%d,true)", g, key, v, ok, want)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent workload: %v", err)
	}
}

func TestConcurrentContention(t *testing.T) {
	tr := New()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 77)))
			for i := 0; i < 1500; i++ {
				key := rng.Int63n(40)
				switch rng.Intn(3) {
				case 0:
					tr.Insert(key, key)
				case 1:
					tr.Delete(key)
				default:
					if v, ok := tr.Get(key); ok && v != key {
						t.Errorf("Get(%d) = %d", key, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants after contention: %v", err)
	}
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
}
