package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// free builds a Func that records how many times the object was freed.
func countingFree(n *atomic.Int64) Func {
	return func(_ *Guard, _ any) bool {
		n.Add(1)
		return true
	}
}

func TestPinReturnsGuardAndUnpinReleases(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	g := Pin()
	if g == nil {
		t.Fatal("Pin returned nil with reclamation enabled")
	}
	if g.state.Load() == 0 {
		t.Fatal("pinned guard has a free state word")
	}
	Unpin(g)
	if g.state.Load() != 0 {
		t.Fatal("Unpin did not release the slot")
	}
}

func TestRetireFreesOnlyAfterGracePeriod(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain() // start from a clean slate

	var freed atomic.Int64
	g := Pin()
	obj := new(int)
	Retire(g, obj, countingFree(&freed))

	// While the retiring operation itself is still pinned, the object's
	// grace period cannot complete: the pinned slot blocks the second epoch
	// advance. Drain from another goroutine (Drain skips claimed slots).
	var blocked sync.WaitGroup
	blocked.Add(1)
	go func() {
		defer blocked.Done()
		Drain()
	}()
	blocked.Wait()
	if freed.Load() != 0 {
		t.Fatal("object freed while its retirer was still pinned")
	}

	Unpin(g)
	Drain()
	if got := freed.Load(); got != 1 {
		t.Fatalf("object freed %d times after unpin+drain, want 1", got)
	}
}

func TestRetireBlockedByConcurrentPin(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	// A reader pins and stays pinned: it may still hold references to
	// anything retired from now on, so nothing retired after its pin may be
	// freed until it unpins.
	pinned := make(chan *Guard)
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		g := Pin()
		pinned <- g
		<-release
		Unpin(g)
	}()
	reader := <-pinned
	_ = reader

	var freed atomic.Int64
	g := Pin()
	Retire(g, new(int), countingFree(&freed))
	Unpin(g)

	Drain()
	if freed.Load() != 0 {
		t.Fatal("object freed while a concurrent operation was still pinned")
	}

	close(release)
	<-done
	Drain()
	if got := freed.Load(); got != 1 {
		t.Fatalf("object freed %d times after the reader unpinned, want 1", got)
	}
}

func TestRefusedFreeIsRequeued(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	// Refuse the first two attempts: the object must stay pending, take a
	// fresh grace period each time, and be freed exactly once in the end.
	var attempts, freed atomic.Int64
	park := func(_ *Guard, _ any) bool {
		if attempts.Add(1) <= 2 {
			return false
		}
		freed.Add(1)
		return true
	}
	g := Pin()
	Retire(g, new(int), park)
	Unpin(g)

	if Drain() != 0 {
		// The refusals may straddle Drain's internal rounds; one more drain
		// must settle it.
		Drain()
	}
	if got := freed.Load(); got != 1 {
		t.Fatalf("object freed %d times, want 1 (attempts %d)", got, attempts.Load())
	}
	if Pending() != 0 {
		t.Fatalf("Pending() = %d after everything freed, want 0", Pending())
	}
}

func TestPendingTracksRetiredObjects(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()
	base := Pending()

	g := Pin()
	const n = 10
	var freed atomic.Int64
	for i := 0; i < n; i++ {
		Retire(g, new(int), countingFree(&freed))
	}
	if got := Pending(); got != base+n {
		t.Fatalf("Pending() = %d after %d retires, want %d", got, n, base+n)
	}
	Unpin(g)
	Drain()
	if got := Pending(); got != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", got)
	}
	if freed.Load() != n {
		t.Fatalf("freed %d objects, want %d", freed.Load(), n)
	}
}

// TestRefusedFreeKeepsRetireOrder retires a batch of objects whose
// callbacks refuse their first attempt: re-queuing must preserve the retire
// order, each object must wait out a fresh grace period per refusal, and
// every object must be freed exactly once in the end.
func TestRefusedFreeKeepsRetireOrder(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	const n = 5
	var mu sync.Mutex
	var order []int
	attempts := make([]int, n)
	g := Pin()
	for i := 0; i < n; i++ {
		i := i
		Retire(g, new(int), func(_ *Guard, _ any) bool {
			mu.Lock()
			defer mu.Unlock()
			attempts[i]++
			if attempts[i] == 1 {
				return false // refuse once, take a fresh grace period
			}
			order = append(order, i)
			return true
		})
	}
	Unpin(g)
	for round := 0; Pending() != 0 && round < 10; round++ {
		Drain()
	}
	if len(order) != n {
		t.Fatalf("freed %d objects, want %d (attempts %v)", len(order), n, attempts)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("free order %v does not preserve retire order", order)
		}
	}
	for i, a := range attempts {
		if a != 2 {
			t.Fatalf("object %d freed after %d attempts, want exactly 2", i, a)
		}
	}
}

// TestDiscardAllSkipsPinnedSlots: DiscardAll must drop the retire lists of
// quiescent slots without running their callbacks, but leave a pinned
// slot's list untouched — the pinned operation may still reach its retired
// objects, and dropping them would also silently zero the slot's pending
// accounting under it.
func TestDiscardAllSkipsPinnedSlots(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	// The reader pins first and stays pinned; its own retired object must
	// survive DiscardAll.
	var pinnedFreed, idleFreed atomic.Int64
	reader := Pin()
	Retire(reader, new(int), countingFree(&pinnedFreed))

	// A second slot retires and unpins: quiescent, so DiscardAll drops its
	// entries without freeing them. (The two Pins hold distinct slots
	// because both are claimed simultaneously.)
	idle := Pin()
	Retire(idle, new(int), countingFree(&idleFreed))
	Unpin(idle)

	DiscardAll()
	if idleFreed.Load() != 0 {
		t.Fatal("DiscardAll ran a free callback (it must drop, not free)")
	}
	if pinnedFreed.Load() != 0 {
		t.Fatal("DiscardAll freed an object retired by a still-pinned slot")
	}
	if got := Pending(); got != 1 {
		t.Fatalf("Pending() = %d after DiscardAll with one pinned slot, want 1", got)
	}

	Unpin(reader)
	Drain()
	if pinnedFreed.Load() != 1 {
		t.Fatalf("pinned slot's object freed %d times after unpin+drain, want 1", pinnedFreed.Load())
	}
	if got := Pending(); got != 0 {
		t.Fatalf("Pending() = %d at quiescence, want 0", got)
	}
}

// TestPinBlocksWhenSlotsExhausted claims every slot, verifies that one more
// Pin spins rather than returning a bogus guard, and that it completes as
// soon as a slot frees up. This is the documented behavior for workloads
// with more goroutines than the 128 padded slots.
func TestPinBlocksWhenSlotsExhausted(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	guards := make([]*Guard, numSlots)
	for i := range guards {
		guards[i] = Pin()
	}
	seen := make(map[*Guard]bool, numSlots)
	for _, g := range guards {
		if seen[g] {
			t.Fatal("Pin returned the same slot twice while both claims were live")
		}
		seen[g] = true
	}

	got := make(chan *Guard)
	go func() { got <- Pin() }()
	select {
	case g := <-got:
		t.Fatalf("Pin returned %p with every slot claimed", g)
	case <-time.After(50 * time.Millisecond):
		// Expected: the caller is spinning for a free slot.
	}

	Unpin(guards[numSlots/2])
	var late *Guard
	select {
	case late = <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("Pin did not complete after a slot was released")
	}
	if late != guards[numSlots/2] {
		t.Fatalf("blocked Pin got %p, want the released slot %p", late, guards[numSlots/2])
	}
	Unpin(late)
	for i, g := range guards {
		if i != numSlots/2 {
			Unpin(g)
		}
	}
	Drain()
}

// TestConcurrentPinRetireUnpin hammers the slot array from many goroutines
// (more than there are CPUs) so claims collide, epochs advance concurrently
// with retires, and slots are handed between goroutines. Every retired
// object must be freed exactly once. Run under -race in CI.
func TestConcurrentPinRetireUnpin(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	const goroutines = 16
	const opsPerG = 2000
	var freed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				g := Pin()
				if i%3 == 0 {
					Retire(g, new(int), countingFree(&freed))
				}
				Unpin(g)
			}
		}()
	}
	wg.Wait()
	Drain()
	want := int64(goroutines * ((opsPerG + 2) / 3))
	if got := freed.Load(); got != want {
		t.Fatalf("freed %d objects, want %d", got, want)
	}
	if Pending() != 0 {
		t.Fatalf("Pending() = %d at quiescence, want 0", Pending())
	}
}
