//go:build !reclaimcheck

package epoch

// PoisonCheck gates the recycled-node poisoning assertions in the trees: a
// node's generation counter is bumped every time it is recycled through a
// pool, and with -tags reclaimcheck readers assert that the generation of a
// node they are holding never changes mid-snapshot — which would mean the
// reclamation layer freed a node while a pinned reader could still reach
// it. Off by default; the checks compile away entirely.
const PoisonCheck = false
