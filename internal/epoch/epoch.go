// Package epoch implements quiescent-state-based reclamation (QSBR) for the
// LLX/SCX dictionary stack: retired nodes and SCX descriptors are handed to
// a per-slot retire list and freed only after every concurrently pinned
// operation has provably finished, at which point the memory can be recycled
// through a sync.Pool instead of going back to the garbage collector.
//
// The paper's Java implementation leans on the JVM's collector for exactly
// this guarantee ("a node is never recycled while any process can still
// reach it"), which is what rules out ABA on the protocol's CAS steps. This
// package supplies the same guarantee manually so that the trees can pool
// their nodes and descriptors; the precise re-derivation of the ABA safety
// argument lives in DESIGN.md ("Epoch reclamation and the ABA
// re-derivation").
//
// # Model
//
// A fixed array of padded slots holds the per-operation state. Every
// dictionary operation claims a free slot with one CAS (Pin), stamping it
// with the current global epoch, and releases it with one store (Unpin).
// The global epoch advances when every claimed slot has been observed at
// the current epoch; an object retired at epoch E becomes freeable once the
// global epoch reaches E+2, because any operation that could still hold a
// reference was pinned before the retire and would have held the epoch back.
//
// Retired objects carry a callback (Func) that performs the actual free —
// typically resetting the object and returning it to a pool. The callback
// may refuse (return false), in which case the object is re-queued into the
// current epoch's bucket and retried after a fresh grace period; the
// descriptor pool uses this to park objects that have been resurrected by a
// late helper.
//
// Build with -tags noepoch to compile the whole layer away (Enabled is
// false, Pin returns nil, Retire drops the object for the garbage collector
// to reclaim): the escape hatch restores the PR 5 GC-reclamation semantics.
// Build with -tags reclaimcheck to additionally enable the recycled-node
// poisoning assertions in the trees (PoisonCheck).
package epoch

import (
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/sched"
)

const (
	// numSlots bounds the number of concurrently pinned operations. It is a
	// power of two so probing can wrap with a mask. 128 is far above any
	// goroutine count the stress suites or the Figure-8 harness use; a Pin
	// finding every slot claimed yields and retries.
	numSlots = 128
	slotMask = numSlots - 1

	// advanceEvery is the number of retires a slot accepts between attempts
	// to advance the global epoch. Advancing scans all slots, so the
	// interval amortizes the scan to a fraction of a retire.
	advanceEvery = 64

	// bucketEpochs is the number of retire buckets per slot: an object
	// retired at epoch E is freeable at E+2, so by the time a bucket index
	// repeats (E+3) its previous contents are always eligible.
	bucketEpochs = 3

	// yieldPending is the per-slot backlog above which a failed epoch
	// advance makes Retire yield the processor. On an oversubscribed
	// scheduler (more workers than CPUs) a goroutine can be preempted in
	// the middle of a pinned operation and sit on the run queue for a whole
	// timeslice; every retire in the meantime piles up behind its stale
	// epoch. Yielding hands the CPU to the blocker so it can finish its
	// (short) operation and unpin, which bounds the retire backlog — and
	// with it the burst-free latency and the GC mark work on the lists —
	// at roughly this value instead of a full timeslice's worth of garbage.
	yieldPending = 512
)

// Func frees one retired object, typically by resetting it and returning it
// to a pool. It runs on the goroutine that drains the retire list, always
// inside a pinned region (g is that region's guard). Returning false
// re-queues the object into the current epoch's bucket for a fresh grace
// period.
type Func func(g *Guard, obj any) bool

// entry is one retired object awaiting its grace period.
type entry struct {
	obj  any
	free Func
}

// bucket collects the objects retired during one epoch.
type bucket struct {
	epoch uint64
	items []entry
}

// Guard is one pinned-operation slot. The state word is the only field
// touched by other goroutines (the epoch advancer reads it; Pin claims it
// with CAS); everything below the padding is owned by the claim holder.
// Slots are padded so neighbouring state words never share a cache line.
type Guard struct {
	// state is 0 when the slot is free, else the global epoch observed at
	// Pin time. While claimed it is always within one of the current global
	// epoch (Pin re-validates after claiming; see the advance argument in
	// DESIGN.md).
	state atomic.Uint64
	_     [56]byte

	buckets [bucketEpochs]bucket

	// retires counts retires since the last epoch-advance attempt.
	retires int

	// pending counts entries sitting in this slot's buckets. It is atomic
	// only so Pending/Drain can read it without claiming the slot.
	pending atomic.Int64

	_ [24]byte
}

// stalledState is the watchdog's eviction sentinel. A slot whose holder has
// been pinned pathologically long (stuck, leaked, or parked mid-operation)
// is moved from its recorded epoch to this value so tryAdvance stops
// counting it; the safety that normally came from blocking the advance is
// re-established by degraded mode (see runFree and DESIGN.md, "Chaos,
// stalls, and bounded degradation"). The sentinel is never a valid epoch —
// epochs count up from 1 — and never claimable: Pin's CAS only fires on 0.
const stalledState = ^uint64(0)

var (
	// globalEpoch starts at 1 so a state word of 0 can mean "free".
	globalEpoch atomic.Uint64

	slots [numSlots]Guard

	// degradedPins counts slots currently evicted by the watchdog. While it
	// is nonzero the layer is in degraded mode: every eligible retiree is
	// dropped to the garbage collector instead of being recycled through its
	// free callback, because an evicted slot's holder may still hold
	// references into anything retired since it pinned. The watchdog
	// increments it BEFORE the eviction CAS so no advance enabled by the
	// eviction can complete a grace period ahead of the mode switch.
	degradedPins atomic.Int64

	// Cumulative diagnostics, surfaced by Stats.
	advanceFails  atomic.Int64 // epoch advances blocked by a lagging slot
	freeRefusals  atomic.Int64 // free callbacks that refused (zombie retirees)
	degradedDrops atomic.Int64 // retirees dropped to GC in degraded mode
	evictions     atomic.Int64 // watchdog evictions performed
	recoveries    atomic.Int64 // evicted slots whose holder later resumed
)

func init() { globalEpoch.Store(1) }

// slotHint derives a probe start from the goroutine's stack address: the
// same goroutine lands on the same slot across operations (keeping the slot
// line warm), different goroutines scatter. The pointer never escapes — it
// is converted to uintptr immediately — so the local does not heap-allocate.
func slotHint() uint64 {
	var b byte
	return uint64(uintptr(unsafe.Pointer(&b)) >> 10)
}

// Pin claims a reclamation slot for the calling operation and returns its
// guard. Every dictionary operation that reads or writes shared nodes must
// run between Pin and Unpin; Retire may only be called with a guard that is
// currently pinned. With -tags noepoch Pin returns nil (and every other
// entry point ignores its guard).
func Pin() *Guard {
	if !Enabled {
		return nil
	}
	e := globalEpoch.Load()
	h := slotHint()
	for tries := 0; ; tries++ {
		g := &slots[(h+uint64(tries))&slotMask]
		if g.state.Load() == 0 && g.state.CompareAndSwap(0, e) {
			// Re-validate: if the global epoch advanced between the load and
			// the claim, re-stamp so the recorded epoch is never more than
			// one behind the global epoch (the advance-blocking invariant).
			if e2 := globalEpoch.Load(); e2 != e {
				g.state.Store(e2)
			}
			if g.pending.Load() != 0 {
				// Adopt garbage parked by a previous owner of this slot.
				g.drain(globalEpoch.Load())
			}
			return g
		}
		if tries&slotMask == slotMask {
			runtime.Gosched()
			e = globalEpoch.Load()
		}
	}
}

// Unpin releases a guard obtained from Pin. The caller must not use the
// guard, or any pointer it was protecting, afterwards.
func Unpin(g *Guard) {
	if !Enabled {
		return
	}
	g.state.Store(0)
}

// Retire hands obj to the reclamation layer: free(g', obj) will be called
// once no operation pinned at retire time can still hold a reference —
// concretely, once the global epoch has advanced twice past the current
// one. g must be the caller's pinned guard. With -tags noepoch the object
// is simply dropped for the garbage collector.
func Retire(g *Guard, obj any, free Func) {
	if !Enabled {
		return
	}
	sched.Point(sched.PointEpochRetire)
	e := globalEpoch.Load()
	b := &g.buckets[e%bucketEpochs]
	if b.epoch != e {
		// The bucket holds leftovers from epoch e-3 or older; they are past
		// their grace period, so clear them out before reusing the bucket.
		g.drain(e)
	}
	b.items = append(b.items, entry{obj, free})
	g.pending.Add(1)
	g.retires++
	if g.retires >= advanceEvery {
		g.retires = 0
		if !tryAdvance() && g.pending.Load() >= yieldPending {
			// Blocked by a slot that has not re-observed the epoch —
			// usually a goroutine parked mid-operation by the scheduler.
			// Give it the CPU; it only needs to finish one operation to
			// unblock the advance.
			runtime.Gosched()
			tryAdvance()
		}
		g.drain(globalEpoch.Load())
	}
}

// drain frees every eligible entry in g's buckets. An entry retired at
// epoch E is eligible once now >= E+2. Entries whose callback refuses are
// re-queued into the bucket of epoch now for a fresh grace period. The
// caller must own the slot (hold it pinned or have claimed it in Drain).
func (g *Guard) drain(now uint64) {
	// Normalize the current bucket first so survivors of the loop below can
	// be re-stamped into it without being freed prematurely.
	cur := &g.buckets[now%bucketEpochs]
	if cur.epoch != now {
		oldEpoch := cur.epoch
		items := cur.items
		cur.items = items[:0]
		cur.epoch = now
		if snapCount.Load() != 0 && snapHeld(oldEpoch) {
			// A live snapshot pinned at or below the bucket's epoch may still
			// reach these objects: defer them behind the pin instead of
			// freeing (see snap.go).
			park(oldEpoch, items)
			g.pending.Add(int64(-len(items)))
			clear(items)
		} else {
			g.runFree(cur, items)
			// Refusals were re-appended over the front of the same backing
			// array (they never outnumber what was read, so no reallocation);
			// the tail beyond them still holds references to freed objects,
			// which would keep them reachable through the bucket's spare
			// capacity. Clear it.
			clear(items[len(cur.items):])
		}
	}
	// An object retired at epoch E is eligible once now >= E+grace with
	// grace = 2: one advance proves the retiring operation finished, the
	// second proves every operation that was pinned concurrently with the
	// retire finished too. The premature-free mutation (armed only under
	// -tags sched by the reclamation self-test) shortens the grace period
	// to 1 — the E+1 bug DESIGN.md's grace-period argument rules out.
	grace := uint64(2)
	if sched.PrematureFree() {
		grace = 1
	}
	for k := 0; k < bucketEpochs; k++ {
		b := &g.buckets[k]
		if b == cur || len(b.items) == 0 || b.epoch+grace > now {
			continue
		}
		items := b.items
		b.items = items[:0]
		if snapCount.Load() != 0 && snapHeld(b.epoch) {
			park(b.epoch, items)
			g.pending.Add(int64(-len(items)))
			clear(items)
			continue
		}
		g.runFree(cur, items)
		clear(items) // refusals went to cur, the whole array is stale
	}
}

// runFree invokes the free callback on each entry, re-queuing refusals into
// requeue (the normalized current bucket). In degraded mode (a watchdog
// eviction is active) the callbacks are skipped and the whole batch is
// dropped for the garbage collector: the evicted slot's holder may still
// reference any of these objects, and the GC — unlike the pools — can see
// that holder's stack as a root, so dropping is always safe where recycling
// would re-introduce the ABA hazard the epoch scheme exists to prevent.
func (g *Guard) runFree(requeue *bucket, items []entry) {
	if degradedPins.Load() != 0 {
		degradedDrops.Add(int64(len(items)))
		g.pending.Add(int64(-len(items)))
		return
	}
	for _, it := range items {
		if it.free(g, it.obj) {
			g.pending.Add(-1)
		} else {
			freeRefusals.Add(1)
			requeue.items = append(requeue.items, it)
		}
	}
}

// tryAdvance advances the global epoch by one if every claimed slot has
// observed the current epoch. It returns whether it advanced. Slots evicted
// by the watchdog (stalledState) are skipped: their safety obligation has
// been transferred to degraded mode, which was entered before the sentinel
// became observable.
func tryAdvance() bool {
	sched.Point(sched.PointEpochAdvance)
	g := globalEpoch.Load()
	for i := range slots {
		if s := slots[i].state.Load(); s != 0 && s != g && s != stalledState {
			advanceFails.Add(1)
			return false
		}
	}
	return globalEpoch.CompareAndSwap(g, g+1)
}

// DiscardAll empties every retire list without running the free callbacks,
// dropping the entries to the garbage collector. This is only sound at full
// quiescence when every structure that has retired through the layer is
// itself garbage: the point is to sever the references that otherwise keep
// a dropped structure reachable — a parked descriptor or zombie owner whose
// count can never drop (its aliasing copies died inside the dropped tree)
// pins the tree's pools, and through them the whole tree, as a permanent GC
// root. The benchmark harness calls this between trials so a long run's
// dead structures do not accumulate as mark-phase work for later trials.
func DiscardAll() {
	if !Enabled {
		return
	}
	now := globalEpoch.Load()
	for i := range slots {
		g := &slots[i]
		if g.pending.Load() == 0 {
			continue
		}
		if !g.state.CompareAndSwap(0, now) {
			continue
		}
		for k := range g.buckets {
			b := &g.buckets[k]
			clear(b.items)
			b.items = b.items[:0]
		}
		g.pending.Store(0)
		g.state.Store(0)
	}
	discardParked()
}

// Pending returns the total number of retired objects whose grace period
// has not yet completed (or whose free callback keeps refusing). Test and
// diagnostic use.
func Pending() int64 {
	var n int64
	for i := range slots {
		n += slots[i].pending.Load()
	}
	return n + parkedCount.Load()
}

// Drain advances the epoch and frees everything eligible, repeatedly, and
// returns Pending afterwards. It is meant for quiescent moments (tests,
// shutdown): slots still pinned by live operations are skipped, and the
// epoch cannot advance past them, so calling it during activity merely does
// less. Free callbacks that keep refusing (parked descriptors) remain
// pending.
func Drain() int64 {
	if !Enabled {
		return 0
	}
	for round := 0; round < 3*bucketEpochs; round++ {
		tryAdvance()
		now := globalEpoch.Load()
		for i := range slots {
			g := &slots[i]
			if g.pending.Load() == 0 {
				continue
			}
			if !g.state.CompareAndSwap(0, now) {
				continue
			}
			g.drain(globalEpoch.Load())
			g.state.Store(0)
		}
		unparkEligible()
	}
	return Pending()
}
