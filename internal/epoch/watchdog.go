package epoch

import (
	"time"
)

// Watchdog detects operation slots that have been pinned pathologically
// long — a goroutine stuck, parked, leaked, or killed mid-operation — and
// degrades gracefully around them instead of letting one lost holder block
// reclamation for the whole process.
//
// Detection is observational: a slot whose state word holds the same
// non-zero epoch across StallAfter of wall time is declared stalled. That
// test can false-positive (the slot may have been released and re-claimed
// at the same epoch between scans, or the holder may simply be slow), so
// eviction is engineered to be safe even against a live holder: the
// watchdog first enters degraded mode (degradedPins), under which every
// eligible retiree anywhere is dropped to the garbage collector rather than
// recycled, and only then CASes the slot's state to the stalledState
// sentinel that tryAdvance skips. Advancing past a live pin therefore never
// frees memory the pin protects — the GC keeps anything the stalled
// goroutine's stack still references alive — it merely stops recycling,
// trading a leak bounded by the stall's duration for the unbounded growth
// of every retire list in the process. The full argument is in DESIGN.md
// ("Chaos, stalls, and bounded degradation").
//
// The watchdog also owns the eviction lifecycle: each scan it re-checks
// evicted slots, and when a holder has resumed and released (the state is
// no longer the sentinel) it exits degraded mode for that slot and counts a
// recovery. Unpin itself cannot do this — between its load and its store a
// concurrent eviction could slip in and the decrement would be lost — so
// recovery lags by at most one scan interval, which only extends degraded
// mode conservatively.
type Watchdog struct {
	interval   time.Duration
	stallAfter time.Duration
	stop       chan struct{}
	done       chan struct{}
}

// evictedSlot records one eviction so the holder's resumption can be
// detected and, on Stop, the original epoch restored.
type evictedSlot struct {
	idx  int
	orig uint64
}

// StartWatchdog launches a watchdog goroutine that scans the slot array
// every interval and evicts any slot continuously pinned at one epoch for
// at least stallAfter. While any eviction is active it also drives
// reclamation (Drain) so the backlog the stall accumulated actually
// shrinks. Stop the returned watchdog exactly once. With -tags noepoch the
// watchdog is inert.
func StartWatchdog(interval, stallAfter time.Duration) *Watchdog {
	w := &Watchdog{
		interval:   interval,
		stallAfter: stallAfter,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if !Enabled {
		close(w.done)
		return w
	}
	go w.run()
	return w
}

// Stop halts the scan loop and blocks until it exits. Slots still evicted
// at that point are restored to their original epoch — re-establishing the
// conservative pre-eviction behavior (the slot blocks the advance again
// until its holder, if any, unpins) — so degraded mode never outlives the
// watchdog that entered it.
func (w *Watchdog) Stop() {
	close(w.stop)
	<-w.done
}

func (w *Watchdog) run() {
	defer close(w.done)
	var (
		lastVal [numSlots]uint64
		since   [numSlots]time.Time
		evicted []evictedSlot
	)
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			for _, ev := range evicted {
				// Either the sentinel is still in place (restore the original
				// epoch: the holder has not resumed, and with the watchdog
				// gone nobody may skip this slot) or the holder resumed and
				// released; both ways this eviction — and its degraded-mode
				// share — is over.
				slots[ev.idx].state.CompareAndSwap(stalledState, ev.orig)
				degradedPins.Add(-1)
			}
			return
		case now := <-ticker.C:
			// Recovery pass: an evicted slot whose state is no longer the
			// sentinel was released by its resuming holder (Unpin stores 0
			// regardless of the sentinel).
			kept := evicted[:0]
			for _, ev := range evicted {
				if slots[ev.idx].state.Load() != stalledState {
					degradedPins.Add(-1)
					recoveries.Add(1)
					continue
				}
				kept = append(kept, ev)
			}
			evicted = kept

			// Detection pass.
			for i := range slots {
				s := slots[i].state.Load()
				if s == 0 || s == stalledState {
					lastVal[i] = s
					continue
				}
				if s != lastVal[i] {
					lastVal[i] = s
					since[i] = now
					continue
				}
				if now.Sub(since[i]) < w.stallAfter {
					continue
				}
				// Degrade first, then evict: any advance the sentinel enables
				// must already observe degraded mode (see the type comment).
				degradedPins.Add(1)
				if slots[i].state.CompareAndSwap(s, stalledState) {
					evictions.Add(1)
					evicted = append(evicted, evictedSlot{idx: i, orig: s})
					lastVal[i] = stalledState
				} else {
					// The holder moved between our load and the CAS — not
					// stalled after all.
					degradedPins.Add(-1)
					lastVal[i] = slots[i].state.Load()
					since[i] = now
				}
			}

			if len(evicted) != 0 {
				// An eviction unblocked the advance; drain so the stalled
				// backlog is actually dropped (to GC, in degraded mode)
				// instead of waiting for organic Retire traffic.
				Drain()
			} else {
				tryAdvance()
			}
		}
	}
}
