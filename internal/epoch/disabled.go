//go:build noepoch

package epoch

// Enabled is false under -tags noepoch: Pin returns nil, Retire drops its
// argument for the garbage collector, and the trees allocate every node and
// descriptor fresh, exactly as before the reclamation layer existed.
const Enabled = false
