//go:build !noepoch

package epoch

// Enabled reports whether epoch-based reclamation is compiled in. With the
// default build it is true: operations pin slots, Retire queues objects and
// the trees recycle nodes and descriptors through their pools. Building
// with -tags noepoch turns the whole layer into no-ops and restores pure
// GC-based reclamation (the escape hatch, and the baseline the bench-smoke
// job compares against).
const Enabled = true
