package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file extends the epoch layer with long-lived snapshot pins. A regular
// Guard must stay pinned for the duration of one dictionary operation: a slot
// that stays claimed blocks the global epoch, and with it every retire list
// in the process. A snapshot handle lives as long as its holder wants — often
// across many operations — so it needs a pin with different mechanics:
//
//   - the epoch keeps advancing while snapshot pins are held, so ordinary
//     reclamation of objects the snapshot cannot reach proceeds at full rate;
//   - an object whose grace period completes while a snapshot pinned at an
//     epoch at or below its retire epoch is live is PARKED instead of freed
//     (any node a snapshot can still reach was, by the capture argument in
//     DESIGN.md, retired after the snapshot registered, hence at an epoch at
//     or above the pin);
//   - releasing the last covering pin un-parks the deferred retirees by
//     re-retiring them under a fresh guard, so they take one more grace
//     period and then recycle normally.
//
// The registry is a fixed array of padded slots claimed by CAS, exactly like
// the operation slots, so SnapPin allocates nothing.

const numSnapSlots = 64

// SnapGuard is one long-lived snapshot pin. It is a slot in a fixed registry;
// holders obtain one from SnapPin and must call Release exactly once.
type SnapGuard struct {
	// epoch is 0 when the slot is free, else the global epoch recorded when
	// the snapshot registered. Recording a stale (smaller) epoch is safe: it
	// only parks more.
	epoch atomic.Uint64
	_     [56]byte
}

var (
	snapSlots [numSnapSlots]SnapGuard

	// snapCount is the number of live snapshot pins; the retire path loads it
	// once per drain to skip the held-bucket scan entirely when no snapshots
	// exist.
	snapCount atomic.Int64

	// parked holds retirees whose grace period completed under a live
	// snapshot pin. parkedCount mirrors len-in-entries for Pending.
	parkedMu    sync.Mutex
	parked      []parkedEntry
	parkedCount atomic.Int64
)

type parkedEntry struct {
	obj   any
	free  Func
	epoch uint64
}

// SnapPin registers a long-lived snapshot pin at the current global epoch and
// returns its guard. Objects retired from this moment on will not be freed
// until the pin (and every other pin at or below their retire epoch) is
// released; the global epoch itself keeps advancing. Returns nil when the
// epoch layer is compiled out (-tags noepoch), which callers must treat as
// "snapshots cannot pin memory".
func SnapPin() *SnapGuard {
	if !Enabled {
		return nil
	}
	e := globalEpoch.Load()
	for tries := 0; ; tries++ {
		s := &snapSlots[tries%numSnapSlots]
		if s.epoch.Load() == 0 && s.epoch.CompareAndSwap(0, e) {
			snapCount.Add(1)
			return s
		}
		if tries%numSnapSlots == numSnapSlots-1 {
			runtime.Gosched()
			e = globalEpoch.Load()
		}
	}
}

// Release frees the pin. Deferred retirees that no remaining pin covers are
// re-retired under a fresh guard, taking one more grace period before they
// recycle. Safe to call from any goroutine, but exactly once per SnapPin.
func (s *SnapGuard) Release() {
	if s == nil {
		return
	}
	s.epoch.Store(0)
	snapCount.Add(-1)
	unparkEligible()
}

// minSnapEpoch returns the smallest epoch among live snapshot pins, and
// whether any pin is live.
func minSnapEpoch() (uint64, bool) {
	min, any := uint64(0), false
	for i := range snapSlots {
		if e := snapSlots[i].epoch.Load(); e != 0 && (!any || e < min) {
			min, any = e, true
		}
	}
	return min, any
}

// snapHeld reports whether a bucket retired at epoch be must be parked
// instead of freed: some live snapshot pin registered at or below be, so the
// snapshot may still reach objects in the bucket. Callers should gate on
// snapCount first; this re-scans the registry.
func snapHeld(be uint64) bool {
	min, any := minSnapEpoch()
	return any && be >= min
}

// park moves a drained-but-held batch onto the global parked list.
func park(be uint64, items []entry) {
	parkedMu.Lock()
	for _, it := range items {
		parked = append(parked, parkedEntry{it.obj, it.free, be})
	}
	parkedMu.Unlock()
	parkedCount.Add(int64(len(items)))
}

// unparkEligible re-retires every parked object that no live snapshot pin
// covers anymore. Each takes a fresh grace period under the re-retiring
// guard, which also re-checks any pins registered in the meantime.
func unparkEligible() {
	if parkedCount.Load() == 0 {
		return
	}
	min, any := minSnapEpoch()
	parkedMu.Lock()
	var out []parkedEntry
	kept := parked[:0]
	for _, pe := range parked {
		if any && pe.epoch >= min {
			kept = append(kept, pe)
		} else {
			out = append(out, pe)
		}
	}
	clear(parked[len(kept):])
	parked = kept
	parkedMu.Unlock()
	if len(out) == 0 {
		return
	}
	parkedCount.Add(int64(-len(out)))
	g := Pin()
	for _, pe := range out {
		Retire(g, pe.obj, pe.free)
	}
	Unpin(g)
}

// SnapPinned returns the number of live snapshot pins. Test and diagnostic
// use.
func SnapPinned() int64 { return snapCount.Load() }

// ParkedCount returns the number of retirees deferred behind snapshot pins.
// Test and diagnostic use.
func ParkedCount() int64 { return parkedCount.Load() }

// discardParked drops every parked retiree to the garbage collector; part of
// DiscardAll's full-quiescence reset.
func discardParked() {
	parkedMu.Lock()
	clear(parked)
	parked = parked[:0]
	parkedMu.Unlock()
	parkedCount.Store(0)
}
