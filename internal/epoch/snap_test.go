package epoch

import (
	"sync/atomic"
	"testing"
)

// TestSnapPinParksAndReleaseFrees is the core lifecycle: an object retired
// while a snapshot pin is live must be parked (not freed) for as long as the
// pin is held, and must take one more grace period and recycle after the last
// covering pin is released.
func TestSnapPinParksAndReleaseFrees(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()
	discardParked()

	s := SnapPin()
	if s == nil {
		t.Fatal("SnapPin returned nil with reclamation enabled")
	}
	if got := SnapPinned(); got != 1 {
		t.Fatalf("SnapPinned() = %d with one pin live, want 1", got)
	}

	var freed atomic.Int64
	g := Pin()
	obj := new(int)
	Retire(g, obj, countingFree(&freed))
	Unpin(g)

	// The grace period completes under the live pin: the object must be
	// parked, not freed, no matter how often the epoch is drained.
	for i := 0; i < 4; i++ {
		Drain()
	}
	if freed.Load() != 0 {
		t.Fatal("object freed while a snapshot pin covering its retire epoch was live")
	}
	if ParkedCount() == 0 {
		t.Fatal("object neither freed nor parked after drain under a live pin")
	}
	if p := Pending(); p == 0 {
		t.Fatal("Pending() does not account for parked retirees")
	}

	s.Release()
	if got := SnapPinned(); got != 0 {
		t.Fatalf("SnapPinned() = %d after release, want 0", got)
	}
	// Release re-retires the parked object; one more grace period frees it.
	Drain()
	if got := freed.Load(); got != 1 {
		t.Fatalf("object freed %d times after release+drain, want 1", got)
	}
	if ParkedCount() != 0 {
		t.Fatalf("ParkedCount() = %d after release+drain, want 0", ParkedCount())
	}
}

// TestOverlappingSnapPins checks that parked retirees stay parked until the
// LAST covering pin is released, regardless of release order.
func TestOverlappingSnapPins(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()
	discardParked()

	s1 := SnapPin()
	s2 := SnapPin()
	var freed atomic.Int64
	g := Pin()
	Retire(g, new(int), countingFree(&freed))
	Unpin(g)
	for i := 0; i < 4; i++ {
		Drain()
	}
	if freed.Load() != 0 || ParkedCount() == 0 {
		t.Fatalf("object not parked under two live pins (freed=%d parked=%d)", freed.Load(), ParkedCount())
	}

	s1.Release()
	Drain()
	if freed.Load() != 0 {
		t.Fatal("object freed while the second covering pin was still live")
	}

	s2.Release()
	Drain()
	if got := freed.Load(); got != 1 {
		t.Fatalf("object freed %d times after both pins released, want 1", got)
	}
}

// TestRetireeBelowPinEpochIsNotParked: a snapshot pin only holds objects that
// were retired at or after its registration epoch - ordinary reclamation of
// everything older (which the snapshot cannot reach) proceeds at full rate
// while the pin is held.
func TestRetireeBelowPinEpochIsNotParked(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()
	discardParked()

	// Retire first, then advance the epoch once so the pin registers at a
	// strictly later epoch than the retiree's bucket, then pin and drain.
	var freed atomic.Int64
	g := Pin()
	Retire(g, new(int), countingFree(&freed))
	Unpin(g)
	tryAdvance()

	s := SnapPin()
	defer s.Release()
	Drain()
	if got := freed.Load(); got != 1 {
		t.Fatalf("object retired before the pin freed %d times under it, want 1 (parked=%d)", got, ParkedCount())
	}
}

// TestSnapReleaseNilSafe pins the noepoch contract: SnapPin returns nil when
// the layer is compiled out and Release on a nil guard must be a no-op.
func TestSnapReleaseNilSafe(t *testing.T) {
	var s *SnapGuard
	s.Release() // must not panic
}

// TestSnapSlotReuse cycles far more pins than there are slots: every release
// must return its slot, so sequential pin/release never exhausts the
// registry.
func TestSnapSlotReuse(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	for i := 0; i < 4*numSnapSlots; i++ {
		s := SnapPin()
		if s == nil {
			t.Fatalf("SnapPin returned nil on cycle %d", i)
		}
		s.Release()
	}
	if got := SnapPinned(); got != 0 {
		t.Fatalf("SnapPinned() = %d after cycling, want 0", got)
	}
}

// TestDiscardAllDropsParked: the full-quiescence reset abandons parked
// retirees to the garbage collector instead of freeing them through their
// callbacks.
func TestDiscardAllDropsParked(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()
	discardParked()

	s := SnapPin()
	var freed atomic.Int64
	g := Pin()
	Retire(g, new(int), countingFree(&freed))
	Unpin(g)
	for i := 0; i < 4; i++ {
		Drain()
	}
	if ParkedCount() == 0 {
		t.Fatal("object not parked under the live pin")
	}
	DiscardAll()
	if ParkedCount() != 0 {
		t.Fatalf("ParkedCount() = %d after DiscardAll, want 0", ParkedCount())
	}
	if freed.Load() != 0 {
		t.Fatal("DiscardAll ran free callbacks on parked retirees")
	}
	s.Release()
}
