package epoch

// Report is a point-in-time health summary of the reclamation layer,
// returned by Stats. Until PR 10 the only visibility was Pending(); the
// watchdog and the bench harness's -v mode both want to know *why* memory
// is pending, not just how much.
type Report struct {
	// Epoch is the current global epoch.
	Epoch uint64
	// PinnedSlots is the number of operation slots currently claimed
	// (excluding evicted ones).
	PinnedSlots int
	// StalledSlots is the number of slots currently evicted by the
	// watchdog; nonzero means the layer is running degraded.
	StalledSlots int
	// SnapPins is the number of live long-lived snapshot pins.
	SnapPins int64
	// Pending is the total retirees whose grace period has not completed,
	// including snapshot-parked ones (same quantity as Pending()).
	Pending int64
	// Parked is the subset of Pending deferred behind snapshot pins.
	Parked int64
	// PendingByAge buckets the pending retirees of quiescent slots by how
	// many epochs ago they were retired (index min(now-retireEpoch, 2)).
	// Slots claimed by live operations cannot be scanned without racing
	// their owner; their share is reported in PendingUnscanned instead.
	PendingByAge [bucketEpochs]int64
	// PendingUnscanned is the pending count held by slots that were busy
	// during the scan.
	PendingUnscanned int64
	// AdvanceFails counts epoch-advance attempts (cumulative) that were
	// blocked by a slot still observing an older epoch.
	AdvanceFails int64
	// Refusals counts free callbacks (cumulative) that refused and were
	// re-queued for another grace period — "zombie" retirees such as
	// descriptors resurrected by a late helper.
	Refusals int64
	// DegradedDrops counts retirees (cumulative) dropped to the garbage
	// collector instead of recycled because a watchdog eviction was active.
	DegradedDrops int64
	// Evictions and Recovered count watchdog slot evictions and the subset
	// whose holder later resumed and released the slot (cumulative).
	Evictions int64
	Recovered int64
}

// Stats returns a health report for the reclamation layer. The per-bucket
// ages are gathered by briefly claiming each quiescent slot with the same
// CAS Drain uses, so the scan never races a slot owner; busy slots
// contribute only their atomic pending total. With -tags noepoch it returns
// the zero Report.
func Stats() Report {
	var r Report
	if !Enabled {
		return r
	}
	now := globalEpoch.Load()
	r.Epoch = now
	r.SnapPins = snapCount.Load()
	r.Parked = parkedCount.Load()
	r.AdvanceFails = advanceFails.Load()
	r.Refusals = freeRefusals.Load()
	r.DegradedDrops = degradedDrops.Load()
	r.Evictions = evictions.Load()
	r.Recovered = recoveries.Load()
	for i := range slots {
		g := &slots[i]
		pending := g.pending.Load()
		r.Pending += pending
		switch s := g.state.Load(); {
		case s == stalledState:
			r.StalledSlots++
			r.PendingUnscanned += pending
		case s != 0:
			r.PinnedSlots++
			r.PendingUnscanned += pending
		case pending == 0:
			// Free and empty; nothing to scan.
		case g.state.CompareAndSwap(0, now):
			// Claimed like Drain does, so the bucket fields are ours to read.
			for k := range g.buckets {
				b := &g.buckets[k]
				if len(b.items) == 0 {
					continue
				}
				age := now - b.epoch
				if age >= bucketEpochs {
					age = bucketEpochs - 1
				}
				r.PendingByAge[age] += int64(len(b.items))
			}
			g.state.Store(0)
		default:
			// Lost the claim to a racing Pin; count it like a busy slot.
			r.PendingUnscanned += pending
		}
	}
	r.Pending += r.Parked
	return r
}
