//go:build reclaimcheck

package epoch

// PoisonCheck is true under -tags reclaimcheck: readers verify that nodes
// they hold are never recycled mid-snapshot. See poison_off.go.
const PoisonCheck = true
