package epoch

import (
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond (yielding) until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s (stats: %+v)", what, Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWatchdogEvictsStalledPinAndRecovers is the end-to-end degradation
// story: a goroutine parks while pinned, every retire in the process backs
// up behind its stale epoch, the watchdog evicts the slot and drains the
// backlog (to the GC, not the pools), and when the holder finally resumes
// the eviction is recovered and normal recycling returns.
func TestWatchdogEvictsStalledPinAndRecovers(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()
	baseDrops := degradedDrops.Load()

	// The stalled holder: pins and parks until released.
	stalled := Pin()
	release := make(chan struct{})
	resumed := make(chan struct{})
	go func() {
		<-release
		Unpin(stalled)
		close(resumed)
	}()

	// Independent traffic retires objects; the stalled pin blocks their
	// grace periods, so none of them free.
	var freed atomic.Int64
	g := Pin()
	for i := 0; i < 200; i++ {
		Retire(g, new(int), countingFree(&freed))
	}
	Unpin(g)
	if Drain() == 0 {
		t.Fatal("pending drained to zero despite a live stale pin")
	}
	if freed.Load() != 0 {
		t.Fatal("objects freed under a live stale pin before any eviction")
	}

	w := StartWatchdog(2*time.Millisecond, 10*time.Millisecond)
	defer w.Stop()

	// The watchdog must evict the stalled slot and drive Pending to zero by
	// dropping the backlog to the GC; the free callbacks must NOT run.
	waitFor(t, 5*time.Second, "eviction + drained backlog", func() bool {
		s := Stats()
		return s.Evictions >= 1 && s.Pending == 0
	})
	if freed.Load() != 0 {
		t.Fatalf("%d free callbacks ran in degraded mode (must drop to GC)", freed.Load())
	}
	if degradedDrops.Load() == baseDrops {
		t.Fatal("no degraded drops recorded while draining an evicted backlog")
	}
	if s := Stats(); s.StalledSlots != 1 {
		t.Fatalf("StalledSlots = %d, want 1 (stats: %+v)", s.StalledSlots, s)
	}

	// Holder resumes: the watchdog's next scan must count a recovery, leave
	// degraded mode, and let new retirees recycle through their callbacks
	// again.
	close(release)
	<-resumed
	waitFor(t, 5*time.Second, "recovery", func() bool {
		s := Stats()
		return s.Recovered >= 1 && s.StalledSlots == 0
	})
	waitFor(t, 5*time.Second, "degraded mode exit", func() bool {
		return degradedPins.Load() == 0
	})

	g = Pin()
	Retire(g, new(int), countingFree(&freed))
	Unpin(g)
	waitFor(t, 5*time.Second, "post-recovery recycling", func() bool {
		Drain()
		return freed.Load() == 1
	})
}

// TestWatchdogStopRestoresBlockedSlot: stopping the watchdog while a slot
// is still evicted must restore the slot's original epoch, so the advance
// is conservatively blocked again rather than skipping a pin nobody is
// accounting for.
func TestWatchdogStopRestoresBlockedSlot(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	stalled := Pin()
	orig := stalled.state.Load()
	w := StartWatchdog(2*time.Millisecond, 10*time.Millisecond)
	waitFor(t, 5*time.Second, "eviction", func() bool {
		return stalled.state.Load() == stalledState
	})
	w.Stop()
	if got := stalled.state.Load(); got != orig {
		t.Fatalf("state after Stop = %#x, want restored epoch %#x", got, orig)
	}
	if n := degradedPins.Load(); n != 0 {
		t.Fatalf("degradedPins = %d after Stop", n)
	}

	// Restored semantics: the stale pin blocks the advance again.
	e := globalEpoch.Load()
	tryAdvance()
	tryAdvance()
	if globalEpoch.Load() > e+1 {
		t.Fatal("epoch advanced twice past a restored stale pin")
	}
	Unpin(stalled)
	Drain()
}

// TestWatchdogFalseEvictionIsSafe: evicting a slot whose holder is alive
// (just slow) must not run free callbacks for objects retired during the
// eviction window — the degraded-mode drop is what makes the watchdog's
// observational stall test safe against false positives.
func TestWatchdogFalseEvictionIsSafe(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	holder := Pin() // "slow", not stuck: we release it mid-test
	w := StartWatchdog(2*time.Millisecond, 10*time.Millisecond)
	defer w.Stop()
	waitFor(t, 5*time.Second, "eviction", func() bool {
		return holder.state.Load() == stalledState
	})

	// With the eviction active, retires from other slots must drop, not
	// recycle: the evicted holder may (here: does) still hold references.
	var freed atomic.Int64
	g := Pin()
	for i := 0; i < 50; i++ {
		Retire(g, new(int), countingFree(&freed))
	}
	Unpin(g)
	waitFor(t, 5*time.Second, "degraded drain", func() bool {
		Drain()
		return Pending() == 0
	})
	if freed.Load() != 0 {
		t.Fatalf("%d callbacks recycled objects during a live (false) eviction", freed.Load())
	}

	Unpin(holder) // the "slow" holder finally finishes
	waitFor(t, 5*time.Second, "recovery", func() bool {
		return degradedPins.Load() == 0
	})
}

// TestStatsReportsShape: the Report's instantaneous fields track pins and
// pending retirees without claiming busy slots.
func TestStatsReportsShape(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}
	Drain()

	g := Pin()
	s := Stats()
	if s.PinnedSlots < 1 {
		t.Fatalf("PinnedSlots = %d with a live pin", s.PinnedSlots)
	}
	if s.Epoch == 0 {
		t.Fatal("Epoch = 0")
	}
	var freed atomic.Int64
	Retire(g, new(int), countingFree(&freed))
	s = Stats()
	if s.Pending < 1 {
		t.Fatalf("Pending = %d after a retire", s.Pending)
	}
	// The retiring slot is busy, so its retiree shows up as unscanned.
	if s.PendingUnscanned < 1 {
		t.Fatalf("PendingUnscanned = %d with a busy retiring slot", s.PendingUnscanned)
	}
	Unpin(g)

	// Quiescent now: the same retiree must be scannable by age.
	s = Stats()
	var byAge int64
	for _, n := range s.PendingByAge {
		byAge += n
	}
	if byAge < 1 {
		t.Fatalf("PendingByAge sums to %d with a quiescent pending retiree (stats: %+v)", byAge, s)
	}
	Drain()
}
