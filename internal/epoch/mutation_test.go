//go:build sched

package epoch

import (
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// TestPrematureFreeMutationCaught is the reclamation half of the seeded-
// mutation self-tests (the dropped-freeze half drives the linearizability
// checker; see the root sched tests): it constructs the exact configuration
// the E+2 grace period exists for and proves that shortening it to E+1 —
// the PrematureFree fault knob — frees an object while a reader that can
// still hold it is pinned. The same configuration under the correct rule
// must keep the object alive, so the test both validates the rule and
// demonstrates the check has teeth.
//
// The configuration: a reader pins at epoch e. A writer pins, retires an
// object into bucket e, and unpins. The epoch can now advance to e+1 — the
// reader's stamp matches e, so it does not block that one advance — but no
// further, because the reader never re-observes. At now = e+1 the correct
// rule (eligible once E+2 <= now) keeps the bucket; the mutated rule
// (E+1 <= now) frees it while the reader is still pinned.
func TestPrematureFreeMutationCaught(t *testing.T) {
	if !Enabled {
		t.Skip("epoch reclamation disabled (noepoch build)")
	}

	scenario := func(t *testing.T) (freedWhilePinned bool) {
		Drain()
		reader := Pin()
		writer := Pin()
		var freed atomic.Bool
		Retire(writer, new(int), func(_ *Guard, _ any) bool {
			freed.Store(true)
			return true
		})
		Unpin(writer)

		Drain() // advances e -> e+1, then drains every quiescent slot
		freedWhilePinned = freed.Load()

		Unpin(reader)
		Drain()
		if !freed.Load() {
			t.Fatal("object never freed even after the reader unpinned")
		}
		return freedWhilePinned
	}

	t.Run("correct-grace-period", func(t *testing.T) {
		if scenario(t) {
			t.Fatal("object freed while a pinned reader could still hold it (E+2 rule violated)")
		}
	})

	t.Run("mutated-grace-period", func(t *testing.T) {
		sched.SetPrematureFree(true)
		defer sched.SetPrematureFree(false)
		if !scenario(t) {
			t.Fatal("premature-free mutation not caught: the E+1 rule did not free early, so this check has no teeth")
		}
	})
}
