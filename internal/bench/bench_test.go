package bench

import (
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/dict"
	"repro/internal/workload"
)

func TestRegistryCoversPaperStructures(t *testing.T) {
	want := []string{"Chromatic", "Chromatic6", "SkipList", "LockAVL", "EBST", "RBSTM", "SkipListSTM", "RBGlobal"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry is missing %q", w)
		}
	}
	for _, name := range names {
		f, ok := Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		d := f.New()
		if d == nil {
			t.Fatalf("factory %q returned nil", name)
		}
		// Smoke-test the dictionary contract.
		if _, existed := d.Insert(1, 10); existed {
			t.Errorf("%s: fresh insert reported existed", name)
		}
		if v, ok := d.Get(1); !ok || v != 10 {
			t.Errorf("%s: Get(1) = (%d,%v), want (10,true)", name, v, ok)
		}
		if _, existed := d.Delete(1); !existed {
			t.Errorf("%s: Delete(1) reported missing", name)
		}
	}
	if _, ok := Lookup("NoSuchStructure"); ok {
		t.Error("Lookup of unknown structure succeeded")
	}
}

func TestRunProducesThroughput(t *testing.T) {
	factory, _ := Lookup("Chromatic")
	res := Run(Config{
		Factory:  factory,
		Mix:      workload.Mix20i10d,
		KeyRange: 1000,
		Threads:  2,
		Duration: 50 * time.Millisecond,
		Trials:   2,
		Seed:     1,
	})
	if res.Ops <= 0 {
		t.Fatal("no operations performed")
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.Mops() <= 0 {
		t.Fatal("Mops not positive")
	}
	want := workload.Mix20i10d.ExpectedSize(1000)
	if res.PrefillLen < want/2 || res.PrefillLen > 2*want {
		t.Fatalf("prefill size %d wildly off expected %d", res.PrefillLen, want)
	}
}

func TestRunSkipPrefill(t *testing.T) {
	factory, _ := Lookup("SkipList")
	res := Run(Config{
		Factory:     factory,
		Mix:         workload.Mix50i50d,
		KeyRange:    100,
		Threads:     1,
		Duration:    20 * time.Millisecond,
		SkipPrefill: true,
	})
	if res.PrefillLen != 0 {
		t.Fatalf("PrefillLen = %d, want 0 with SkipPrefill", res.PrefillLen)
	}
	if res.Ops == 0 {
		t.Fatal("no operations performed")
	}
}

func TestTableFormattingAndQueries(t *testing.T) {
	table := NewTable(Cell{Mix: workload.Mix50i50d, KeyRange: 100}, []int{1, 2}, []string{"A", "B"})
	table.Add("A", 1, 1.5)
	table.Add("A", 2, 2.5)
	table.Add("B", 1, 1.0)
	table.Add("B", 2, 5.0)
	out := table.String()
	if !strings.Contains(out, "50i-50d") || !strings.Contains(out, "key range [0,100)") {
		t.Errorf("table header missing cell description:\n%s", out)
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Errorf("table missing structure columns:\n%s", out)
	}
	if w, v := table.Winner(2); w != "B" || v != 5.0 {
		t.Errorf("Winner(2) = (%s,%f), want (B,5.0)", w, v)
	}
	if s := table.Speedup("B", "A", 2); s != 2.0 {
		t.Errorf("Speedup(B,A,2) = %f, want 2.0", s)
	}
	if s := table.Speedup("B", "missing", 2); s != 0 {
		t.Errorf("Speedup vs missing structure = %f, want 0", s)
	}
	// Adding an unknown structure extends the table.
	table.Add("C", 1, 0.5)
	if _, ok := table.Mops["C"]; !ok {
		t.Error("Add of new structure did not extend the table")
	}
}

func TestDefaultThreadCounts(t *testing.T) {
	counts := DefaultThreadCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("DefaultThreadCounts = %v, want leading 1", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("thread counts not strictly increasing: %v", counts)
		}
	}
	if got := PaperThreadCounts(); len(got) != 5 || got[4] != 128 {
		t.Fatalf("PaperThreadCounts = %v", got)
	}
	if got := PaperKeyRanges(); len(got) != 3 || got[2] != 1_000_000 {
		t.Fatalf("PaperKeyRanges = %v", got)
	}
	if got := PaperMixes(); len(got) != 3 {
		t.Fatalf("PaperMixes = %v", got)
	}
	if got := Figure8Mixes(); len(got) != 4 || got[3] != workload.Mix5i5d50s {
		t.Fatalf("Figure8Mixes = %v, want the paper's mixes plus %v", got, workload.Mix5i5d50s)
	}
	if got := Figure8Dists(); len(got) != 2 || got[0] != workload.DistUniform || got[1] != workload.DistZipf {
		t.Fatalf("Figure8Dists = %v, want [uniform zipf]", got)
	}
}

// TestFigure8SkewAndScanCells runs the extended grid - the zipfian key
// distribution and the scan-heavy mix - at a small scale and checks that
// every requested cell produces throughput and is labelled with its
// distribution.
func TestFigure8SkewAndScanCells(t *testing.T) {
	var sb strings.Builder
	opts := Options{
		Duration:   25 * time.Millisecond,
		KeyRanges:  []int64{256},
		Mixes:      []workload.Mix{workload.Mix50i50d, workload.Mix5i5d50s},
		Dists:      Figure8Dists(),
		Structures: []string{"Chromatic", "SkipList"},
		Threads:    []int{2},
	}
	var observed []Result
	opts.Observe = func(r Result) { observed = append(observed, r) }
	tables := Figure8(&sb, opts)
	if len(tables) != 4 { // 2 mixes x 1 key range x 2 dists
		t.Fatalf("Figure8 returned %d tables, want 4", len(tables))
	}
	dists := map[workload.Dist]int{}
	for _, table := range tables {
		dists[table.Cell.Dist]++
		for _, s := range opts.Structures {
			if v, ok := table.Mops[s][2]; !ok || v <= 0 {
				t.Fatalf("cell %s/%s/%s missing or zero", table.Cell.Mix, table.Cell.Dist, s)
			}
		}
	}
	if dists[workload.DistUniform] != 2 || dists[workload.DistZipf] != 2 {
		t.Fatalf("distribution coverage = %v, want 2 uniform + 2 zipf tables", dists)
	}
	for _, r := range observed {
		if r.Config.Mix.ScanPct > 0 && r.Ops == 0 {
			t.Fatalf("scan-heavy cell %+v performed no operations", r.Config)
		}
	}
	if !strings.Contains(sb.String(), "zipf keys") || !strings.Contains(sb.String(), "5i-5d-50s") {
		t.Errorf("Figure8 output missing the skew/scan cell headers:\n%s", sb.String())
	}
}

// TestLatencyHistQuantiles pins the log-bucket histogram arithmetic the
// scan-latency columns rest on.
func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	if h.quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile not zero")
	}
	// 90 observations near 1us, 10 near 1ms: the median lands in the 1us
	// bucket, the p99 in the 1ms bucket.
	for i := 0; i < 90; i++ {
		h.observe(1 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(1 * time.Millisecond)
	}
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 < 512*time.Nanosecond || p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want within the 1us bucket", p50)
	}
	if p99 < 512*time.Microsecond || p99 > 2*time.Millisecond {
		t.Fatalf("p99 = %v, want within the 1ms bucket", p99)
	}
	var other latencyHist
	other.observe(1 * time.Millisecond)
	h.merge(&other)
	var n uint64
	for _, c := range h {
		n += c
	}
	if n != 101 {
		t.Fatalf("merged count = %d, want 101", n)
	}
}

// TestRunMeasuresScanLatency checks that a scanning mix yields per-scan
// latency quantiles in both scan modes and that a scan-free mix yields none.
func TestRunMeasuresScanLatency(t *testing.T) {
	factory, _ := Lookup("Chromatic")
	for _, mode := range []workload.ScanMode{workload.ScanLive, workload.ScanSnapshot} {
		res := Run(Config{
			Factory:  factory,
			Mix:      workload.Mix5i5d50s,
			KeyRange: 1024,
			Threads:  2,
			Duration: 50 * time.Millisecond,
			ScanMode: mode,
			Seed:     1,
		})
		if res.ScanP50 <= 0 || res.ScanP99 <= 0 {
			t.Fatalf("%s: scan quantiles (%v, %v) not positive", mode, res.ScanP50, res.ScanP99)
		}
		if res.ScanP99 < res.ScanP50 {
			t.Fatalf("%s: p99 %v below p50 %v", mode, res.ScanP99, res.ScanP50)
		}
	}
	res := Run(Config{
		Factory:  factory,
		Mix:      workload.Mix50i50d,
		KeyRange: 1024,
		Threads:  1,
		Duration: 20 * time.Millisecond,
		Seed:     1,
	})
	if res.ScanP50 != 0 || res.ScanP99 != 0 {
		t.Fatalf("scan-free mix reported scan quantiles (%v, %v)", res.ScanP50, res.ScanP99)
	}
}

// TestFigure8ScanModeCells checks the scan-mode dimension of the grid: the
// snapshot sweep covers exactly the mixes that scan, its tables are labelled,
// and the live tables' headers are unchanged.
func TestFigure8ScanModeCells(t *testing.T) {
	var sb strings.Builder
	opts := Options{
		Duration:   25 * time.Millisecond,
		KeyRanges:  []int64{256},
		Mixes:      []workload.Mix{workload.Mix50i50d, workload.Mix5i5d50s},
		ScanModes:  []workload.ScanMode{workload.ScanLive, workload.ScanSnapshot},
		Structures: []string{"Chromatic", "EBST"},
		Threads:    []int{2},
	}
	var observed []Result
	opts.Observe = func(r Result) { observed = append(observed, r) }
	tables := Figure8(&sb, opts)
	if len(tables) != 3 { // live: both mixes; snapshot: only the scanning mix
		t.Fatalf("Figure8 returned %d tables, want 3", len(tables))
	}
	modes := map[workload.ScanMode]int{}
	for _, table := range tables {
		modes[table.Cell.ScanMode]++
		if table.Cell.ScanMode == workload.ScanSnapshot && table.Cell.Mix.ScanPct == 0 {
			t.Fatalf("snapshot sweep measured the scan-free mix %s", table.Cell.Mix)
		}
		for _, s := range opts.Structures {
			if v, ok := table.Mops[s][2]; !ok || v <= 0 {
				t.Fatalf("cell %s/%s/%s missing or zero", table.Cell.Mix, table.Cell.ScanMode, s)
			}
		}
	}
	if modes[workload.ScanLive] != 2 || modes[workload.ScanSnapshot] != 1 {
		t.Fatalf("scan-mode coverage = %v, want 2 live + 1 snapshot tables", modes)
	}
	for _, r := range observed {
		if r.Config.Mix.ScanPct > 0 && (r.ScanP50 <= 0 || r.ScanP99 <= 0) {
			t.Fatalf("scanning cell %s/%s has no scan latency quantiles", r.Config.Mix, r.Config.ScanMode)
		}
	}
	out := sb.String()
	if !strings.Contains(out, "snapshot scans") {
		t.Errorf("snapshot table header missing the scan-mode label:\n%s", out)
	}
	if strings.Contains(out, "live scans") {
		t.Errorf("live table headers must stay byte-identical to the pre-scan-mode format:\n%s", out)
	}
}

func TestHeightExperimentReportsBalancedTree(t *testing.T) {
	rep := HeightExperiment(io.Discard, 4096, 4, 200*time.Millisecond)
	if rep.Keys == 0 {
		t.Fatal("height experiment ran on an empty tree")
	}
	if !rep.IsRedBlackAfter {
		t.Fatal("tree is not a red-black tree at quiescence")
	}
	if rep.ViolationsAfter != 0 {
		t.Fatalf("violations at quiescence = %d, want 0", rep.ViolationsAfter)
	}
	if rep.Height > rep.RedBlackBound {
		t.Fatalf("height %d exceeds red-black bound %d", rep.Height, rep.RedBlackBound)
	}
}

func TestViolationThresholdAblationRuns(t *testing.T) {
	opts := Options{
		Duration:  30 * time.Millisecond,
		Threads:   []int{2},
		KeyRanges: []int64{100, 1000},
	}
	rows := ViolationThresholdAblation(io.Discard, opts, []int{0, 6})
	if len(rows) != 2 {
		t.Fatalf("ablation returned %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Mops <= 0 {
			t.Fatalf("ablation row %+v has no throughput", r)
		}
	}
	if rows[0].Allowed != 0 || rows[1].Allowed != 6 {
		t.Fatalf("ablation rows out of order: %+v", rows)
	}
}

func TestFigure9SmallScale(t *testing.T) {
	opts := Options{
		Duration:   30 * time.Millisecond,
		KeyRanges:  []int64{512},
		Structures: []string{"Chromatic", "Chromatic6", "RBGlobal"},
		Threads:    []int{1},
	}
	rows := Figure9(io.Discard, opts)
	if len(rows) != 9 { // 3 mixes x 3 structures
		t.Fatalf("Figure9 returned %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Relative <= 0 {
			t.Fatalf("row %+v has non-positive relative throughput", r)
		}
	}
}

func TestFigure8SmallScale(t *testing.T) {
	var sb strings.Builder
	opts := Options{
		Duration:   25 * time.Millisecond,
		KeyRanges:  []int64{256},
		Structures: []string{"Chromatic6", "SkipList"},
		Threads:    []int{1, 2},
	}
	tables := Figure8(&sb, opts)
	if len(tables) != 3 { // 3 mixes x 1 key range
		t.Fatalf("Figure8 returned %d tables, want 3", len(tables))
	}
	for _, table := range tables {
		for _, s := range []string{"Chromatic6", "SkipList"} {
			for _, th := range []int{1, 2} {
				if v, ok := table.Mops[s][th]; !ok || v <= 0 {
					t.Fatalf("cell %s/%s/%d threads missing or zero", table.Cell.Mix, s, th)
				}
			}
		}
	}
	if !strings.Contains(sb.String(), "key range [0,256)") {
		t.Error("Figure8 output missing key range header")
	}
}

var _ dict.IntFactory = Registry()[0]
