package bench

import (
	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/ebst"
	"repro/internal/lockavl"
	"repro/internal/ravl"
	"repro/internal/seqrbt"
	"repro/internal/skiplist"
	"repro/internal/stmrbt"
	"repro/internal/stmskip"
)

// Registry returns factories for every dictionary implementation in the
// repository, keyed by the names used in the paper's figures. The order
// matches the order of the series in Figure 8: the paper's own algorithms
// first, then hand-crafted competitors, then the coarse-grained baselines.
func Registry() []dict.IntFactory {
	return []dict.IntFactory{
		{Name: "Chromatic", New: func() dict.IntMap { return chromatic.New() }},
		{Name: "Chromatic6", New: func() dict.IntMap { return chromatic.NewChromatic6() }},
		{Name: "RAVL", New: func() dict.IntMap { return ravl.New() }},
		{Name: "SkipList", New: func() dict.IntMap { return skiplist.New() }},
		{Name: "LockAVL", New: func() dict.IntMap { return lockavl.New() }},
		{Name: "EBST", New: func() dict.IntMap { return ebst.New() }},
		{Name: "RBSTM", New: func() dict.IntMap { return stmrbt.New() }},
		{Name: "SkipListSTM", New: func() dict.IntMap { return stmskip.New() }},
		{Name: "RBGlobal", New: func() dict.IntMap { return seqrbt.NewGlobal() }},
	}
}

// Lookup returns the factory with the given name (case-sensitive) and true,
// or a zero factory and false.
func Lookup(name string) (dict.IntFactory, bool) {
	for _, f := range Registry() {
		if f.Name == name {
			return f, true
		}
	}
	return dict.IntFactory{}, false
}

// Names returns the registry names in order.
func Names() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, f := range reg {
		names[i] = f.Name
	}
	return names
}

// Figure8Structures returns the structure list every Figure-8-style grid
// runs over when Options.Structures is empty: exactly the registry, in
// registry order. It exists (rather than experiments calling Names
// directly) so the "every experiment covers every structure" contract has a
// name that tests can pin against the registry — see
// TestRegistryAndFigure8StayInSync at the module root.
func Figure8Structures() []string { return Names() }

// SequentialRBTFactory returns the factory for the purely sequential
// red-black tree used as the reference line of Figure 9. It is not part of
// Registry because it is not safe for concurrent use.
func SequentialRBTFactory() dict.IntFactory {
	return dict.IntFactory{Name: "SeqRBT", New: func() dict.IntMap { return seqrbt.New() }}
}
