// Package bench is the throughput harness that regenerates the paper's
// evaluation (Section 6): timed trials in which a fixed number of worker
// goroutines apply a given operation mix over a given key range to one
// dictionary implementation, reporting operations per second. It also
// provides the table formatting used by cmd/chromatic-bench to print
// Figure 8, Figure 9, the headline ratios, the height experiment and the
// Chromatic6 threshold ablation.
package bench

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/dict"
	"repro/internal/epoch"
	"repro/internal/workload"
)

// Config describes one benchmark cell: a data structure, an operation mix, a
// key distribution, a key range, a worker count and a trial duration.
type Config struct {
	Factory  dict.IntFactory
	Mix      workload.Mix
	KeyRange int64
	Threads  int
	Duration time.Duration
	// Dist is the key distribution (uniform by default; DistZipf for the
	// skewed grid cells).
	Dist workload.Dist
	// ScanSpan is the key-window width of the mix's scan operations;
	// 0 means workload.DefaultScanSpan.
	ScanSpan int64
	// ScanMode routes the mix's scan operations: against the live structure
	// (default) or each through a freshly captured snapshot view.
	ScanMode workload.ScanMode
	// Trials is the number of timed trials to run (each on a fresh,
	// re-prefilled structure); the mean is reported. Defaults to 1.
	Trials int
	// Seed makes the workload deterministic for a given configuration.
	Seed int64
	// SkipPrefill starts measurements from an empty structure.
	SkipPrefill bool
	// HangTimeout bounds how long a trial may take to join its workers
	// after the stop broadcast. Zero picks a generous default (several
	// trial durations plus slack). A trial that exceeds it is wedged — a
	// worker stuck in a retry loop or parked by fault injection — and the
	// harness crashes the process with a full goroutine dump instead of
	// hanging a batch run silently.
	HangTimeout time.Duration
}

// Result is the outcome of the trials for one configuration.
type Result struct {
	Config     Config
	Ops        int64         // total operations across all trials
	Elapsed    time.Duration // total per-worker measured time (mean window per trial, summed over trials)
	Throughput float64       // operations per second (mean across trials)
	PrefillLen int           // dictionary size after prefilling
	// ScanP50 and ScanP99 are per-scan-operation latency quantiles across
	// all trials, measured only when the mix carries a scan share (zero
	// otherwise). Throughput alone hides what the scan modes trade: a
	// snapshot scan pays a fixed capture up front for a validation-free
	// walk, which shows up as a tighter tail (p99) long before it moves the
	// mean.
	ScanP50 time.Duration
	ScanP99 time.Duration
}

// Mops returns the throughput in millions of operations per second, the unit
// used on the y-axes of Figure 8.
func (r Result) Mops() float64 { return r.Throughput / 1e6 }

// Run executes the configured trials and returns the aggregated result.
func Run(cfg Config) Result {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	var total Result
	total.Config = cfg
	var sumThroughput float64
	var scans latencyHist
	for trial := 0; trial < cfg.Trials; trial++ {
		ops, elapsed, throughput, prefilled, h := runTrial(cfg, int64(trial))
		total.Ops += ops
		total.Elapsed += elapsed
		total.PrefillLen = prefilled
		sumThroughput += throughput
		scans.merge(h)
	}
	total.Throughput = sumThroughput / float64(cfg.Trials)
	total.ScanP50 = scans.quantile(0.50)
	total.ScanP99 = scans.quantile(0.99)
	return total
}

// latencyHist is a log-bucketed latency histogram: bucket i counts
// observations whose nanosecond duration has bit length i, i.e. durations in
// [2^(i-1), 2^i). Recording is one increment with no allocation and no
// locking (each worker owns a histogram and they are merged after the
// trial), which is what lets the harness time every scan operation without
// perturbing the measurement it is taking.
type latencyHist [65]uint64

// observe records one duration.
func (h *latencyHist) observe(d time.Duration) {
	h[bits.Len64(uint64(d))]++
}

// merge adds o's counts into h.
func (h *latencyHist) merge(o *latencyHist) {
	for i, c := range o {
		h[i] += c
	}
}

// quantile returns the latency at quantile q (0 < q < 1) as the geometric
// midpoint of the bucket holding that rank, or 0 when the histogram is
// empty. Log buckets bound the relative error at sqrt(2); plenty for the
// "which mode has the shorter tail" question the harness asks.
func (h *latencyHist) quantile(q float64) time.Duration {
	var total uint64
	for _, c := range h {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total-1))
	var seen uint64
	for i, c := range h {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			lo := uint64(1) << (i - 1)
			return time.Duration(lo + lo/2)
		}
	}
	return 0
}

// workerResult is one worker's contribution to a trial: how many operations
// it completed, over which wall-clock window it completed them, and the
// latencies of its scan operations (populated only when the mix has a scan
// share).
type workerResult struct {
	ops     int64
	elapsed time.Duration
	scans   latencyHist
}

// runTrial runs one timed trial and returns the operation count, the mean
// per-worker measured window, the trial throughput and the prefilled size.
//
// Each worker times its own window, from the start broadcast until it has
// drained its final batch after observing stop. Measuring a single window
// around wg.Wait() would count every worker's operations against the
// slowest worker's window: the tail batches finish after stop closes, so
// the shared window is longer than cfg.Duration and the reported throughput
// is skewed low (the more workers, the worse). With per-worker windows the
// trial throughput is the sum of each worker's own rate, which is exact no
// matter how the tails straggle.
func runTrial(cfg Config, trial int64) (int64, time.Duration, float64, int, *latencyHist) {
	d := cfg.Factory.New()
	prefilled := 0
	if !cfg.SkipPrefill {
		prefilled = workload.Prefill(d, cfg.Mix, cfg.KeyRange, 0.05, cfg.Seed+trial*7919)
	}

	results := make([]workerResult, cfg.Threads)
	stop := make(chan struct{})
	var ready, wg sync.WaitGroup
	ready.Add(cfg.Threads)
	wg.Add(cfg.Threads)
	start := make(chan struct{})
	for w := 0; w < cfg.Threads; w++ {
		go func(worker int) {
			defer wg.Done()
			// Register with the chaos layer so a chaos-enabled run (the
			// chromatic-bench -chaos flag, robustness experiments) injects
			// into bench workers too. A no-op when chaos is disabled, which
			// is the default for every measurement run.
			cw := chaos.Register(worker)
			defer cw.Close()
			gen := workload.NewGeneratorDist(cfg.Mix, cfg.KeyRange, cfg.Dist,
				cfg.Seed^(trial*1_000_003)^int64(worker)*2_654_435_761)
			gen.SetScanSpan(cfg.ScanSpan)
			span := gen.ScanSpan()
			a := workload.NewApplier(d, cfg.ScanMode)
			timeScans := cfg.Mix.ScanPct > 0
			// scans stays on the worker's own stack during the hot loop and is
			// copied out once at stop, so recording a latency never touches the
			// shared results slice.
			var scans latencyHist
			ready.Done()
			<-start
			begin := time.Now()
			local := int64(0)
			for {
				select {
				case <-stop:
					results[worker] = workerResult{ops: local, elapsed: time.Since(begin), scans: scans}
					return
				default:
				}
				// Run a small batch between stop checks to keep the
				// measurement overhead negligible.
				for i := 0; i < 64; i++ {
					op, key := gen.Next()
					if timeScans && op == workload.OpScan {
						t0 := time.Now()
						a.Apply(op, key, span)
						scans.observe(time.Since(t0))
						continue
					}
					a.Apply(op, key, span)
				}
				local += 64
			}
		}(w)
	}
	ready.Wait()
	close(start)
	time.Sleep(cfg.Duration)
	close(stop)
	// Join the workers under a deadline. This wait is the trial's hang
	// point: a worker wedged in a retry loop (or parked by fault injection
	// that never released it) would otherwise hang the whole batch run with
	// no diagnostics. Crashing with a full goroutine dump names the wedge
	// site instead.
	joined := make(chan struct{})
	go func() {
		wg.Wait()
		close(joined)
	}()
	guard := cfg.HangTimeout
	if guard <= 0 {
		guard = 4*cfg.Duration + 30*time.Second
	}
	select {
	case <-joined:
	case <-time.After(guard):
		buf := make([]byte, 1<<22)
		n := runtime.Stack(buf, true)
		panic(fmt.Sprintf("bench: trial did not join its workers within %v; goroutine dump:\n%s", guard, buf[:n]))
	}
	// Quiesce the reclamation layer before the structure is dropped: a trial
	// ends with retired-but-unfreed nodes sitting in the global epoch retire
	// lists, and those lists are GC roots — without draining them here every
	// later trial in the same process pays GC mark costs for dead trees,
	// which measurably taxes even the structures that never touch the epoch
	// layer. Two passes, as in TestReclaimNoLeak: the first can re-queue
	// parked descriptors, the second settles them.
	if dr, ok := d.(interface{ DrainReclaim() int64 }); ok {
		dr.DrainReclaim()
		dr.DrainReclaim()
		// What the drains cannot free — parked descriptors and zombie
		// owners whose counts can never drop now that the structure is
		// garbage — would pin the dead structure as a GC root forever.
		// Everything retired through the layer in this process belongs to
		// this trial's structure, so dropping the leftovers to the garbage
		// collector is sound and severs the retention.
		epoch.DiscardAll()
	}
	runtime.KeepAlive(d)
	var ops int64
	var sumElapsed time.Duration
	var throughput float64
	var scans latencyHist
	for i := range results {
		r := &results[i]
		ops += r.ops
		sumElapsed += r.elapsed
		throughput += float64(r.ops) / r.elapsed.Seconds()
		scans.merge(&r.scans)
	}
	return ops, sumElapsed / time.Duration(cfg.Threads), throughput, prefilled, &scans
}

// Cell identifies one cell of the Figure 8 grid. Dist and ScanMode extend
// the paper's (mix, key range) plane with the key-distribution and scan-mode
// dimensions; the zero values (uniform, live) reproduce the paper's cells.
type Cell struct {
	Mix      workload.Mix
	KeyRange int64
	Dist     workload.Dist
	ScanMode workload.ScanMode
}

// Table accumulates results for one (mix, key range) cell of Figure 8:
// throughput for every (structure, thread count) pair.
type Table struct {
	Cell       Cell
	Threads    []int
	Structures []string
	// Mops[structure][threads] in millions of operations per second.
	Mops map[string]map[int]float64
}

// NewTable creates an empty table for a cell.
func NewTable(cell Cell, threads []int, structures []string) *Table {
	m := make(map[string]map[int]float64, len(structures))
	for _, s := range structures {
		m[s] = make(map[int]float64, len(threads))
	}
	return &Table{Cell: cell, Threads: threads, Structures: structures, Mops: m}
}

// Add records one measurement.
func (t *Table) Add(structure string, threads int, mops float64) {
	if _, ok := t.Mops[structure]; !ok {
		t.Mops[structure] = make(map[int]float64)
		t.Structures = append(t.Structures, structure)
	}
	t.Mops[structure][threads] = mops
}

// String renders the table in the layout of one Figure 8 panel: one row per
// thread count, one column per data structure, cells in Mops/s.
func (t *Table) String() string {
	var b strings.Builder
	// The scan mode is named only when it is not the default, so the live
	// grid's headers stay byte-identical to what they were before the
	// dimension existed.
	scanMode := ""
	if t.Cell.ScanMode != workload.ScanLive {
		scanMode = fmt.Sprintf(", %s scans", t.Cell.ScanMode)
	}
	fmt.Fprintf(&b, "workload %s, %s keys%s, key range [0,%d)  (millions of operations per second)\n",
		t.Cell.Mix, t.Cell.Dist, scanMode, t.Cell.KeyRange)
	fmt.Fprintf(&b, "%8s", "threads")
	for _, s := range t.Structures {
		fmt.Fprintf(&b, " %12s", s)
	}
	b.WriteByte('\n')
	for _, th := range t.Threads {
		fmt.Fprintf(&b, "%8d", th)
		for _, s := range t.Structures {
			if v, ok := t.Mops[s][th]; ok {
				fmt.Fprintf(&b, " %12.3f", v)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Winner returns the structure with the highest throughput at the given
// thread count.
func (t *Table) Winner(threads int) (string, float64) {
	best := ""
	bestV := -1.0
	names := append([]string(nil), t.Structures...)
	sort.Strings(names)
	for _, s := range names {
		if v, ok := t.Mops[s][threads]; ok && v > bestV {
			best, bestV = s, v
		}
	}
	return best, bestV
}

// Speedup returns how many times faster a is than b at the given thread
// count (0 if either is missing).
func (t *Table) Speedup(a, b string, threads int) float64 {
	va, okA := t.Mops[a][threads]
	vb, okB := t.Mops[b][threads]
	if !okA || !okB || vb == 0 {
		return 0
	}
	return va / vb
}

// DefaultThreadCounts returns the thread counts to sweep: 1, 2, 4, ... up to
// twice the number of CPUs (the paper sweeps 1..128 hardware threads on its
// SPARC machine; on an arbitrary host we scale to the available
// parallelism and include one oversubscribed point).
func DefaultThreadCounts() []int {
	max := runtime.GOMAXPROCS(0)
	counts := []int{1}
	for c := 2; c < max; c *= 2 {
		counts = append(counts, c)
	}
	if max > 1 {
		counts = append(counts, max)
	}
	counts = append(counts, 2*max)
	return counts
}

// PaperThreadCounts returns the thread counts used in Figure 8 of the paper.
func PaperThreadCounts() []int { return []int{1, 32, 64, 96, 128} }

// PaperKeyRanges returns the key ranges used in Figure 8 of the paper.
func PaperKeyRanges() []int64 { return []int64{100, 10_000, 1_000_000} }

// PaperMixes returns the operation mixes used in Figure 8 of the paper.
func PaperMixes() []workload.Mix {
	return []workload.Mix{workload.Mix50i50d, workload.Mix20i10d, workload.Mix0i0d}
}

// Figure8Mixes returns the operation mixes of the extended Figure-8 grid:
// the paper's three mixes plus the scan-heavy mix, which exercises
// RangeScan under concurrent updates.
func Figure8Mixes() []workload.Mix {
	return append(PaperMixes(), workload.Mix5i5d50s)
}

// Figure8Dists returns the key distributions of the extended Figure-8 grid:
// the paper's uniform draws plus the zipfian (hot-key) distribution, which
// turns most of an update-heavy mix into overwrites of present keys and so
// exposes the cost of Insert-on-present.
func Figure8Dists() []workload.Dist {
	return []workload.Dist{workload.DistUniform, workload.DistZipf}
}
