package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/ravl"
	"repro/internal/workload"
)

// Options controls how the experiment drivers scale the paper's evaluation
// to the machine they run on.
type Options struct {
	// Duration of each timed trial.
	Duration time.Duration
	// Trials per configuration.
	Trials int
	// Threads to sweep; defaults to DefaultThreadCounts().
	Threads []int
	// KeyRanges to sweep; defaults to PaperKeyRanges().
	KeyRanges []int64
	// Mixes to sweep in the Figure-8 grid; defaults to PaperMixes(). Pass
	// Figure8Mixes() to add the scan-heavy mix.
	Mixes []workload.Mix
	// Dists are the key distributions to sweep in the Figure-8 grid;
	// defaults to uniform only (the paper's evaluation). Pass Figure8Dists()
	// to add the zipfian cells.
	Dists []workload.Dist
	// ScanSpan is the key-window width of scan operations; 0 means
	// workload.DefaultScanSpan.
	ScanSpan int64
	// ScanModes are the scan modes to sweep in the Figure-8 grid; defaults
	// to live only (the paper's evaluation). The snapshot mode is measured
	// only for mixes that actually scan — a snapshot-mode sweep over a
	// scan-free mix would duplicate the live cells exactly, so those cells
	// are skipped rather than re-measured.
	ScanModes []workload.ScanMode
	// Structures to include (names from Registry); defaults to all.
	Structures []string
	// Seed for deterministic workloads.
	Seed int64
	// Observe, if non-nil, is called with every Result the experiment
	// drivers measure (cmd/chromatic-bench uses it to collect the rows of
	// its -json output). It is called from the measuring goroutine, between
	// trials, never concurrently.
	Observe func(Result)
}

// observe forwards a measurement to the Observe hook if one is installed.
func (o Options) observe(r Result) {
	if o.Observe != nil {
		o.Observe(r)
	}
}

func (o Options) withDefaults() Options {
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Trials <= 0 {
		o.Trials = 1
	}
	if len(o.Threads) == 0 {
		o.Threads = DefaultThreadCounts()
	}
	if len(o.KeyRanges) == 0 {
		o.KeyRanges = PaperKeyRanges()
	}
	if len(o.Mixes) == 0 {
		o.Mixes = PaperMixes()
	}
	if len(o.Dists) == 0 {
		o.Dists = []workload.Dist{workload.DistUniform}
	}
	if len(o.ScanModes) == 0 {
		o.ScanModes = []workload.ScanMode{workload.ScanLive}
	}
	if len(o.Structures) == 0 {
		o.Structures = Figure8Structures()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Figure8 runs the grid of the paper's Figure 8 (operation mix x key range,
// throughput versus thread count for every data structure), extended by the
// key-distribution dimension when Options.Dists lists more than the uniform
// default, and writes one table per cell to w. It returns the tables for
// further inspection (e.g. by the EXPERIMENTS.md generator and tests).
func Figure8(w io.Writer, opts Options) []*Table {
	opts = opts.withDefaults()
	var tables []*Table
	for _, scanMode := range opts.ScanModes {
		for _, dist := range opts.Dists {
			for _, mix := range opts.Mixes {
				if scanMode == workload.ScanSnapshot && mix.ScanPct == 0 {
					// Without scans the mode never dispatches, so these
					// cells would be byte-for-byte repeats of the live grid.
					continue
				}
				for _, keyRange := range opts.KeyRanges {
					table := NewTable(Cell{Mix: mix, KeyRange: keyRange, Dist: dist, ScanMode: scanMode}, opts.Threads, opts.Structures)
					for _, name := range opts.Structures {
						factory, ok := Lookup(name)
						if !ok {
							continue
						}
						for _, threads := range opts.Threads {
							res := Run(Config{
								Factory:  factory,
								Mix:      mix,
								KeyRange: keyRange,
								Threads:  threads,
								Duration: opts.Duration,
								Dist:     dist,
								ScanSpan: opts.ScanSpan,
								ScanMode: scanMode,
								Trials:   opts.Trials,
								Seed:     opts.Seed,
							})
							opts.observe(res)
							table.Add(name, threads, res.Mops())
						}
					}
					fmt.Fprintln(w, table.String())
					tables = append(tables, table)
				}
			}
		}
	}
	return tables
}

// Figure9Row is one bar of Figure 9: a structure's single-threaded
// throughput relative to the sequential red-black tree.
type Figure9Row struct {
	Structure string
	Mix       workload.Mix
	Relative  float64
}

// Figure9 reproduces Figure 9 of the paper: single-threaded throughput of
// every concurrent dictionary relative to the sequential red-black tree
// (java.util.TreeMap in the paper), for each operation mix, on the largest
// key range.
func Figure9(w io.Writer, opts Options) []Figure9Row {
	opts = opts.withDefaults()
	keyRange := opts.KeyRanges[len(opts.KeyRanges)-1]
	var rows []Figure9Row
	fmt.Fprintf(w, "single-threaded throughput relative to the sequential red-black tree, key range [0,%d)\n", keyRange)
	for _, mix := range PaperMixes() {
		base := Run(Config{
			Factory:  SequentialRBTFactory(),
			Mix:      mix,
			KeyRange: keyRange,
			Threads:  1,
			Duration: opts.Duration,
			Trials:   opts.Trials,
			Seed:     opts.Seed,
		})
		opts.observe(base)
		fmt.Fprintf(w, "workload %s (sequential RBT: %.3f Mops/s)\n", mix, base.Mops())
		for _, name := range opts.Structures {
			factory, ok := Lookup(name)
			if !ok {
				continue
			}
			res := Run(Config{
				Factory:  factory,
				Mix:      mix,
				KeyRange: keyRange,
				Threads:  1,
				Duration: opts.Duration,
				Trials:   opts.Trials,
				Seed:     opts.Seed,
			})
			opts.observe(res)
			rel := 0.0
			if base.Throughput > 0 {
				rel = res.Throughput / base.Throughput
			}
			rows = append(rows, Figure9Row{Structure: name, Mix: mix, Relative: rel})
			fmt.Fprintf(w, "  %-12s %6.2fx of sequential RBT (%.3f Mops/s)\n", name, rel, res.Mops())
		}
	}
	return rows
}

// Ratio is one of the headline comparisons from the paper's introduction:
// Chromatic6 versus a competitor at the highest thread count.
type Ratio struct {
	Competitor string
	Mix        workload.Mix
	KeyRange   int64
	Speedup    float64 // Chromatic6 throughput / competitor throughput
}

// HeadlineRatios reproduces the claims of Section 1/6: at the maximum thread
// count, Chromatic6 outperforms the skip list by 13%-156%, the lock-based
// AVL tree by 63%-224% and the STM red-black tree by 13x-134x. It runs
// Chromatic6 against those three competitors on every (mix, key range) cell
// and reports the min/max speedups per competitor.
func HeadlineRatios(w io.Writer, opts Options) []Ratio {
	opts = opts.withDefaults()
	threads := opts.Threads[len(opts.Threads)-1]
	competitors := []string{"SkipList", "LockAVL", "RBSTM"}
	var ratios []Ratio
	for _, mix := range PaperMixes() {
		for _, keyRange := range opts.KeyRanges {
			run := func(name string) Result {
				factory, _ := Lookup(name)
				res := Run(Config{
					Factory:  factory,
					Mix:      mix,
					KeyRange: keyRange,
					Threads:  threads,
					Duration: opts.Duration,
					Trials:   opts.Trials,
					Seed:     opts.Seed,
				})
				opts.observe(res)
				return res
			}
			chro := run("Chromatic6")
			for _, comp := range competitors {
				if keyRange >= 1_000_000 && strings.HasSuffix(comp, "STM") {
					// The paper omits the STM structures on the largest key
					// range because prefilling them takes too long; do the
					// same.
					continue
				}
				r := run(comp)
				speedup := math.Inf(1)
				if r.Throughput > 0 {
					speedup = chro.Throughput / r.Throughput
				}
				ratios = append(ratios, Ratio{Competitor: comp, Mix: mix, KeyRange: keyRange, Speedup: speedup})
				fmt.Fprintf(w, "%-10s %8s key range %-9d Chromatic6/%-10s = %6.2fx\n",
					mix.String(), fmt.Sprintf("%d thr", threads), keyRange, comp, speedup)
			}
		}
	}
	// Summarize min/max per competitor, the form the paper states them in.
	fmt.Fprintln(w)
	for _, comp := range competitors {
		min, max := math.Inf(1), math.Inf(-1)
		for _, r := range ratios {
			if r.Competitor != comp {
				continue
			}
			if r.Speedup < min {
				min = r.Speedup
			}
			if r.Speedup > max {
				max = r.Speedup
			}
		}
		if !math.IsInf(min, 1) {
			fmt.Fprintf(w, "Chromatic6 vs %-12s: %.2fx to %.2fx\n", comp, min, max)
		}
	}
	return ratios
}

// TemplateTreeSeries returns the registry names of the trees built on the
// tree update template, in the order the comparison experiment reports
// them: the paper's chromatic trees, the new relaxed AVL tree and the
// unbalanced BST reference point.
func TemplateTreeSeries() []string {
	return []string{"Chromatic", "Chromatic6", "RAVL", "EBST"}
}

// RAVLReport summarizes the relaxed AVL tree's balance behaviour after the
// comparison workload: how much rebalancing the updates performed, how much
// deferred work was left at quiescence, and how the final height compares
// with the exact AVL bound.
type RAVLReport struct {
	Keys               int
	Height             int
	AVLBound           int
	LeftoverViolations int
	DrainSteps         int
	Cleanups           int64
	HeightFixes        int64
	SingleRotations    int64
	DoubleRotations    int64
}

// RAVLComparison is the Figure-8-style experiment for the relaxed AVL tree:
// it runs the paper's operation mixes and key ranges over the template-based
// trees only (TemplateTreeSeries), so the new tree is compared like-for-like
// with the chromatic trees and the unbalanced BST, and then characterizes
// the relaxed balancing itself with RAVLBalanceReport.
func RAVLComparison(w io.Writer, opts Options) ([]*Table, RAVLReport) {
	opts = opts.withDefaults()
	series := make([]string, 0, len(TemplateTreeSeries()))
	for _, name := range TemplateTreeSeries() {
		if _, ok := Lookup(name); ok {
			series = append(series, name)
		}
	}
	opts.Structures = series
	tables := Figure8(w, opts)
	return tables, RAVLBalanceReport(w, opts)
}

// RAVLBalanceReport characterizes the relaxed balancing on its own: an
// update-heavy run followed by a quiescent drain (RebalanceAll) whose
// result must be an exact AVL tree. The "all" experiment of
// cmd/chromatic-bench uses this directly, since it has already measured the
// Figure-8 grid over every structure.
func RAVLBalanceReport(w io.Writer, opts Options) RAVLReport {
	opts = opts.withDefaults()
	keyRange := opts.KeyRanges[0]
	if len(opts.KeyRanges) > 1 {
		keyRange = opts.KeyRanges[1]
	}
	threads := opts.Threads[len(opts.Threads)-1]
	var tree *ravl.Tree[int64, int64]
	factory := dict.IntFactory{
		Name: "RAVL",
		New: func() dict.IntMap {
			tree = ravl.New()
			return tree
		},
	}
	opts.observe(Run(Config{
		Factory:  factory,
		Mix:      workload.Mix50i50d,
		KeyRange: keyRange,
		Threads:  threads,
		Duration: opts.Duration,
		Trials:   1,
		Seed:     opts.Seed,
	}))
	report := RAVLReport{}
	if tree != nil {
		report.Keys = tree.Size()
		report.LeftoverViolations = tree.CountViolations()
		steps, err := tree.RebalanceAll(ravl.DrainCap(report.Keys))
		report.DrainSteps = steps
		if err != nil {
			fmt.Fprintf(w, "RAVL drain error: %v\n", err)
		}
		report.Height = tree.Height()
		report.AVLBound = ravl.HeightBound(report.Keys)
		s := tree.Stats()
		report.Cleanups = s.Cleanups.Load()
		report.HeightFixes = s.HeightFixes.Load()
		report.SingleRotations = s.SingleRotations.Load()
		report.DoubleRotations = s.DoubleRotations.Load()
		fmt.Fprintf(w, "RAVL balance report: %s, key range [0,%d), %d threads\n",
			workload.Mix50i50d, keyRange, threads)
		fmt.Fprintf(w, "  n=%d leftover violations at quiescence=%d drained in %d steps\n",
			report.Keys, report.LeftoverViolations, report.DrainSteps)
		fmt.Fprintf(w, "  height after drain=%d (AVL bound %d)\n", report.Height, report.AVLBound)
		fmt.Fprintf(w, "  cleanups=%d height fixes=%d single rotations=%d double rotations=%d\n",
			report.Cleanups, report.HeightFixes, report.SingleRotations, report.DoubleRotations)
	}
	return report
}

// HeightReport is the outcome of the height-bound experiment of Section 5.3.
type HeightReport struct {
	Keys             int
	Height           int
	RedBlackBound    int
	ViolationsDuring int
	ViolationsAfter  int
	IsRedBlackAfter  bool
}

// HeightExperiment validates the O(c + log n) height bound: it runs an
// update-heavy concurrent workload, samples the number of violations while c
// updates are in flight, and then verifies that at quiescence the tree
// contains no violations and its height is within the red-black bound
// 2*log2(n+1) (+2 for the leaf-oriented representation).
func HeightExperiment(w io.Writer, keyRange int64, threads int, duration time.Duration) HeightReport {
	tree := chromatic.New()
	workload.Prefill(tree, workload.Mix50i50d, keyRange, 0.05, 42)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			gen := workload.NewGenerator(workload.Mix50i50d, keyRange, seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				op, key := gen.Next()
				workload.Apply(tree, op, key, gen.ScanSpan())
			}
		}(int64(i) + 1)
	}
	// Sample violations while updates are in flight.
	during := 0
	samples := 0
	deadline := time.After(duration)
sample:
	for {
		select {
		case <-deadline:
			break sample
		default:
		}
		during += tree.CountViolations()
		samples++
		time.Sleep(duration / 20)
	}
	close(stop)
	wg.Wait()
	if samples > 0 {
		during /= samples
	}

	report := HeightReport{
		Keys:             tree.Size(),
		Height:           tree.Height(),
		ViolationsDuring: during,
		ViolationsAfter:  tree.CountViolations(),
		IsRedBlackAfter:  tree.CheckRedBlack() == nil,
	}
	report.RedBlackBound = 2*ceilLog2(report.Keys+1) + 2
	fmt.Fprintf(w, "height experiment: n=%d height=%d red-black bound=%d\n",
		report.Keys, report.Height, report.RedBlackBound)
	fmt.Fprintf(w, "  mean violations while %d updaters were running: %d\n", threads, report.ViolationsDuring)
	fmt.Fprintf(w, "  violations at quiescence: %d (red-black tree: %v)\n",
		report.ViolationsAfter, report.IsRedBlackAfter)
	return report
}

// AblationRow is one row of the Chromatic6 threshold ablation (Section 5.6).
type AblationRow struct {
	Allowed int
	Mops    float64
	Rebal   int64
}

// ViolationThresholdAblation sweeps the number of violations tolerated on a
// search path before rebalancing (the "6" in Chromatic6) and reports
// throughput and the number of rebalancing steps performed on an
// update-heavy workload.
func ViolationThresholdAblation(w io.Writer, opts Options, thresholds []int) []AblationRow {
	opts = opts.withDefaults()
	if len(thresholds) == 0 {
		thresholds = []int{0, 1, 2, 4, 6, 8, 16}
	}
	threads := opts.Threads[len(opts.Threads)-1]
	keyRange := opts.KeyRanges[0]
	if len(opts.KeyRanges) > 1 {
		keyRange = opts.KeyRanges[1]
	}
	var rows []AblationRow
	fmt.Fprintf(w, "Chromatic violation-threshold ablation: %s, key range [0,%d), %d threads\n",
		workload.Mix50i50d, keyRange, threads)
	for _, k := range thresholds {
		k := k
		var tree *chromatic.Tree[int64, int64]
		factory := dict.IntFactory{
			Name: fmt.Sprintf("Chromatic%d", k),
			New: func() dict.IntMap {
				tree = chromatic.New(chromatic.WithAllowedViolations(k))
				return tree
			},
		}
		res := Run(Config{
			Factory:  factory,
			Mix:      workload.Mix50i50d,
			KeyRange: keyRange,
			Threads:  threads,
			Duration: opts.Duration,
			Trials:   1,
			Seed:     opts.Seed,
		})
		opts.observe(res)
		row := AblationRow{Allowed: k, Mops: res.Mops()}
		if tree != nil {
			row.Rebal = tree.Stats().RebalanceTotal()
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "  allowed=%2d  %8.3f Mops/s  rebalancing steps=%d\n", k, row.Mops, row.Rebal)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Allowed < rows[j].Allowed })
	return rows
}

func ceilLog2(n int) int {
	h := 0
	for v := 1; v < n; v *= 2 {
		h++
	}
	return h
}
