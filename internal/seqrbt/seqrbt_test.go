package seqrbt

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has nonzero size or height")
	}
}

func TestInsertGetDeleteBasic(t *testing.T) {
	tr := New()
	if _, existed := tr.Insert(10, 1); existed {
		t.Fatal("fresh insert reported existed")
	}
	if old, existed := tr.Insert(10, 2); !existed || old != 1 {
		t.Fatalf("second insert = (%d,%v)", old, existed)
	}
	if v, ok := tr.Get(10); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := tr.Delete(10); !existed || old != 2 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(10); ok {
		t.Fatal("key present after delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAgainstModel(t *testing.T) {
	tr := New()
	model := map[int64]int64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 50000; i++ {
		key := rng.Int63n(2000)
		switch rng.Intn(3) {
		case 0:
			val := rng.Int63()
			old, existed := tr.Insert(key, val)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Insert(%d) mismatch at op %d", key, i)
			}
			model[key] = val
		case 1:
			old, existed := tr.Delete(key)
			mOld, mExisted := model[key]
			if existed != mExisted || (existed && old != mOld) {
				t.Fatalf("Delete(%d) mismatch at op %d", key, i)
			}
			delete(model, key)
		default:
			v, ok := tr.Get(key)
			mV, mOk := model[key]
			if ok != mOk || (ok && v != mV) {
				t.Fatalf("Get(%d) mismatch at op %d", key, i)
			}
		}
		if i%10000 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants at op %d: %v", i, err)
			}
		}
	}
	if tr.Size() != len(model) {
		t.Fatalf("Size = %d, want %d", tr.Size(), len(model))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	keys := tr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("keys not sorted")
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i)) // worst case for naive BSTs
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	maxHeight := 0
	for v := 1; v < n+1; v *= 2 {
		maxHeight++
	}
	maxHeight = 2*maxHeight + 2
	if h := tr.Height(); h > maxHeight {
		t.Fatalf("height %d exceeds red-black bound %d", h, maxHeight)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for k := int64(0); k < 100; k += 10 {
		tr.Insert(k, k)
	}
	if k, _, ok := tr.Successor(45); !ok || k != 50 {
		t.Fatalf("Successor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := tr.Successor(90); ok {
		t.Fatalf("Successor(90) = (%d,%v), want none", k, ok)
	}
	if k, _, ok := tr.Predecessor(45); !ok || k != 40 {
		t.Fatalf("Predecessor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := tr.Predecessor(0); ok {
		t.Fatalf("Predecessor(0) = (%d,%v), want none", k, ok)
	}
}

// TestPropertyRedBlackInvariants uses testing/quick to check that arbitrary
// insert/delete sequences preserve the red-black properties.
func TestPropertyRedBlackInvariants(t *testing.T) {
	prop := func(insert []int16, del []int16) bool {
		tr := New()
		for _, k := range insert {
			tr.Insert(int64(k), int64(k))
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for _, k := range del {
			tr.Delete(int64(k))
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeleteAllLeavesEmpty(t *testing.T) {
	prop := func(keys []int32) bool {
		tr := New()
		set := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(int64(k), 0)
			set[int64(k)] = true
		}
		for k := range set {
			if _, ok := tr.Delete(k); !ok {
				return false
			}
		}
		return tr.Size() == 0 && tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalWrapperConcurrent(t *testing.T) {
	g := NewGlobal()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := int64(id * perG)
			for k := int64(0); k < perG; k++ {
				g.Insert(base+k, k)
			}
			for k := int64(0); k < perG; k += 2 {
				g.Delete(base + k)
			}
		}(i)
	}
	wg.Wait()
	if got, want := g.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if _, _, ok := g.Successor(0); !ok {
		t.Fatal("Successor failed on populated map")
	}
	if _, _, ok := g.Predecessor(int64(goroutines * perG)); !ok {
		t.Fatal("Predecessor failed on populated map")
	}
}
