package seqrbt

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/dict"
	"repro/internal/dict/dicttest"
)

// target is the shared-suite target for the int64 instantiation of the
// sequential tree: the model-based conformance logic lives in
// internal/dict/dicttest; this package only supplies the constructor and the
// quiescent invariant check. The sequential tree never runs the concurrent
// suite — Global does (see globalTarget).
func target() dicttest.Target {
	return dicttest.Target{
		Name: "SeqRBT",
		New:  func() dict.IntMap { return New() },
		Check: func(d dict.IntMap) error {
			return d.(*Tree[int64, int64]).CheckInvariants()
		},
	}
}

// globalTarget is the shared-suite target for the mutex-wrapped RBGlobal
// baseline, the only concurrency-safe form of this package.
func globalTarget() dicttest.Target {
	return dicttest.Target{
		Name: "RBGlobal",
		New:  func() dict.IntMap { return NewGlobal() },
		Check: func(d dict.IntMap) error {
			return d.(*Global[int64, int64]).CheckInvariants()
		},
	}
}

func TestEmpty(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(1); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if _, ok := tr.Delete(1); ok {
		t.Fatal("Delete on empty tree returned ok")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Fatal("empty tree has nonzero size or height")
	}
}

func TestInsertGetDeleteBasic(t *testing.T) {
	tr := New()
	if _, existed := tr.Insert(10, 1); existed {
		t.Fatal("fresh insert reported existed")
	}
	if old, existed := tr.Insert(10, 2); !existed || old != 1 {
		t.Fatalf("second insert = (%d,%v)", old, existed)
	}
	if v, ok := tr.Get(10); !ok || v != 2 {
		t.Fatalf("Get = (%d,%v)", v, ok)
	}
	if old, existed := tr.Delete(10); !existed || old != 2 {
		t.Fatalf("Delete = (%d,%v)", old, existed)
	}
	if _, ok := tr.Get(10); ok {
		t.Fatal("key present after delete")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialConformance(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		dicttest.SequentialConformance(t, target(), 10000, 2000, seed)
	}
	// A tiny key range maximizes rotation churn per key.
	dicttest.SequentialConformance(t, target(), 4000, 8, 99)
}

// TestComparatorPath runs the same conformance suite against a NewLess tree
// with a reversed ordering, so the comparator-based search is exercised
// rather than the devirtualized one New installs.
func TestComparatorPath(t *testing.T) {
	desc := func(a, b int64) bool { return a > b }
	tgt := dicttest.TargetOf[int64, int64]{
		Name: "SeqRBT/desc",
		New:  func() dict.Map[int64, int64] { return NewLess[int64, int64](desc) },
		Less: desc,
		Check: func(d dict.Map[int64, int64]) error {
			return d.(*Tree[int64, int64]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 6000,
		func(u uint64) int64 { return int64(u % 300) },
		func(u uint64) int64 { return int64(u % (1 << 30)) },
		7)
}

// TestStringKeys runs the conformance suite over the string-keyed
// instantiation, exercising NewOrdered's generic construction path.
func TestStringKeys(t *testing.T) {
	tgt := dicttest.TargetOf[string, string]{
		Name: "SeqRBT/string",
		New:  func() dict.Map[string, string] { return NewOrdered[string, string]() },
		Less: func(a, b string) bool { return a < b },
		Check: func(d dict.Map[string, string]) error {
			return d.(*Tree[string, string]).CheckInvariants()
		},
	}
	dicttest.SequentialConformanceKV(t, tgt, 6000,
		func(u uint64) string { return fmt.Sprintf("k%03d", u%200) },
		func(u uint64) string { return fmt.Sprintf("v%d", u%1024) },
		5)
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New()
	const n = 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i)) // worst case for naive BSTs
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	maxHeight := 0
	for v := 1; v < n+1; v *= 2 {
		maxHeight++
	}
	maxHeight = 2*maxHeight + 2
	if h := tr.Height(); h > maxHeight {
		t.Fatalf("height %d exceeds red-black bound %d", h, maxHeight)
	}
}

func TestSuccessorPredecessor(t *testing.T) {
	tr := New()
	for k := int64(0); k < 100; k += 10 {
		tr.Insert(k, k)
	}
	if k, _, ok := tr.Successor(45); !ok || k != 50 {
		t.Fatalf("Successor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := tr.Successor(90); ok {
		t.Fatalf("Successor(90) = (%d,%v), want none", k, ok)
	}
	if k, _, ok := tr.Predecessor(45); !ok || k != 40 {
		t.Fatalf("Predecessor(45) = (%d,%v)", k, ok)
	}
	if k, _, ok := tr.Predecessor(0); ok {
		t.Fatalf("Predecessor(0) = (%d,%v), want none", k, ok)
	}
}

// TestPropertyRedBlackInvariants uses testing/quick to check that arbitrary
// insert/delete sequences preserve the red-black properties.
func TestPropertyRedBlackInvariants(t *testing.T) {
	prop := func(insert []int16, del []int16) bool {
		tr := New()
		for _, k := range insert {
			tr.Insert(int64(k), int64(k))
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		for _, k := range del {
			tr.Delete(int64(k))
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeleteAllLeavesEmpty(t *testing.T) {
	prop := func(keys []int32) bool {
		tr := New()
		set := map[int64]bool{}
		for _, k := range keys {
			tr.Insert(int64(k), 0)
			set[int64(k)] = true
		}
		for k := range set {
			if _, ok := tr.Delete(k); !ok {
				return false
			}
		}
		return tr.Size() == 0 && tr.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalConcurrentStress(t *testing.T) {
	dicttest.ConcurrentStress(t, globalTarget(), 8, 3000, 250)
}

// TestGlobalStringKeys exercises the generic Global constructors.
func TestGlobalStringKeys(t *testing.T) {
	tgt := dicttest.TargetOf[string, string]{
		Name: "RBGlobal/string",
		New:  func() dict.Map[string, string] { return NewGlobalOrdered[string, string]() },
		Less: func(a, b string) bool { return a < b },
		Check: func(d dict.Map[string, string]) error {
			return d.(*Global[string, string]).CheckInvariants()
		},
	}
	dicttest.ConcurrentStressKV(t, tgt, 4, 2000,
		func(g int, u uint64) string { return fmt.Sprintf("g%d/%03d", g, u%150) },
		func(u uint64) string { return fmt.Sprintf("v%d", u%1024) })
}

func TestGlobalWrapperConcurrent(t *testing.T) {
	g := NewGlobal()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := int64(id * perG)
			for k := int64(0); k < perG; k++ {
				g.Insert(base+k, k)
			}
			for k := int64(0); k < perG; k += 2 {
				g.Delete(base + k)
			}
		}(i)
	}
	wg.Wait()
	if got, want := g.Size(), goroutines*perG/2; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	if _, _, ok := g.Successor(0); !ok {
		t.Fatal("Successor failed on populated map")
	}
	if _, _, ok := g.Predecessor(int64(goroutines * perG)); !ok {
		t.Fatal("Predecessor failed on populated map")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
