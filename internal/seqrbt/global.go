package seqrbt

import "sync"

// Global wraps a sequential red-black tree with a single mutex, reproducing
// the "RBGlobal" baseline of the paper's evaluation (java.util.TreeMap with
// every operation protected by a global lock). It is safe for concurrent use
// but serializes every operation, including queries.
type Global struct {
	mu   sync.Mutex
	tree *Tree
}

// NewGlobal returns an empty globally locked red-black tree.
func NewGlobal() *Global { return &Global{tree: New()} }

// Name identifies the data structure in benchmark reports.
func (g *Global) Name() string { return "RBGlobal" }

// Get returns the value associated with key, or (0, false) if absent.
func (g *Global) Get(key int64) (int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Get(key)
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (g *Global) Insert(key, value int64) (int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Insert(key, value)
}

// Delete removes key, returning its value and true if it was present.
func (g *Global) Delete(key int64) (int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Delete(key)
}

// Successor returns the smallest key strictly greater than key.
func (g *Global) Successor(key int64) (int64, int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Successor(key)
}

// Predecessor returns the largest key strictly smaller than key.
func (g *Global) Predecessor(key int64) (int64, int64, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Predecessor(key)
}

// Size returns the number of keys stored.
func (g *Global) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Size()
}
