package seqrbt

import (
	"cmp"
	"sync"
)

// Global wraps a sequential red-black tree with a single mutex, reproducing
// the "RBGlobal" baseline of the paper's evaluation (java.util.TreeMap with
// every operation protected by a global lock). It is safe for concurrent use
// but serializes every operation, including queries. Like the tree it wraps
// it is generic: use NewGlobal, NewGlobalOrdered or NewGlobalLess.
type Global[K, V any] struct {
	mu   sync.Mutex
	tree *Tree[K, V]
}

// NewGlobalLess returns an empty globally locked red-black tree whose keys
// are ordered by less.
func NewGlobalLess[K, V any](less func(a, b K) bool) *Global[K, V] {
	return &Global[K, V]{tree: NewLess[K, V](less)}
}

// NewGlobalOrdered returns an empty globally locked red-black tree over a
// naturally ordered key type.
func NewGlobalOrdered[K cmp.Ordered, V any]() *Global[K, V] {
	return &Global[K, V]{tree: NewOrdered[K, V]()}
}

// NewGlobal returns an empty globally locked red-black tree with int64 keys
// and values, the instantiation the benchmark registry uses.
func NewGlobal() *Global[int64, int64] { return NewGlobalOrdered[int64, int64]() }

// IntGlobal is the historical int64 instantiation used by the benchmark
// registry.
type IntGlobal = Global[int64, int64]

// Name identifies the data structure in benchmark reports.
func (g *Global[K, V]) Name() string { return "RBGlobal" }

// Get returns the value associated with key, or the zero value and false if
// absent.
func (g *Global[K, V]) Get(key K) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Get(key)
}

// Insert associates value with key, returning the previous value and true if
// key was present.
func (g *Global[K, V]) Insert(key K, value V) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Insert(key, value)
}

// Delete removes key, returning its value and true if it was present.
func (g *Global[K, V]) Delete(key K) (V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Delete(key)
}

// Successor returns the smallest key strictly greater than key.
func (g *Global[K, V]) Successor(key K) (K, V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Successor(key)
}

// Predecessor returns the largest key strictly smaller than key.
func (g *Global[K, V]) Predecessor(key K) (K, V, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Predecessor(key)
}

// Size returns the number of keys stored.
func (g *Global[K, V]) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.Size()
}

// CheckInvariants verifies the wrapped tree's red-black properties under the
// global lock.
func (g *Global[K, V]) CheckInvariants() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tree.CheckInvariants()
}
