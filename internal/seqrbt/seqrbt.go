// Package seqrbt implements a classic sequential red-black tree, analogous
// to java.util.TreeMap, which the paper uses in two roles: as the reference
// point for single-threaded overhead (Figure 9) and, wrapped in a single
// global mutex, as the coarse-grained "RBGlobal" baseline of Figure 8.
//
// Tree itself is NOT safe for concurrent use; Global (in this package) wraps
// it with a mutex to obtain the RBGlobal baseline.
package seqrbt

const (
	red   = false
	black = true
)

type node struct {
	k, v        int64
	colour      bool
	left, right *node
	parent      *node
}

// Tree is a sequential red-black tree mapping int64 keys to int64 values.
// The zero value is an empty tree ready for use.
type Tree struct {
	root *node
	size int
}

// New returns an empty sequential red-black tree.
func New() *Tree { return &Tree{} }

// Name identifies the data structure in benchmark reports.
func (t *Tree) Name() string { return "SeqRBT" }

// Size returns the number of keys stored.
func (t *Tree) Size() int { return t.size }

// Get returns the value associated with key, or (0, false) if absent.
func (t *Tree) Get(key int64) (int64, bool) {
	n := t.root
	for n != nil {
		switch {
		case key < n.k:
			n = n.left
		case key > n.k:
			n = n.right
		default:
			return n.v, true
		}
	}
	return 0, false
}

// Insert associates value with key. It returns the previous value and true
// if key was already present.
func (t *Tree) Insert(key, value int64) (int64, bool) {
	var parent *node
	n := t.root
	for n != nil {
		parent = n
		switch {
		case key < n.k:
			n = n.left
		case key > n.k:
			n = n.right
		default:
			old := n.v
			n.v = value
			return old, true
		}
	}
	fresh := &node{k: key, v: value, colour: red, parent: parent}
	switch {
	case parent == nil:
		t.root = fresh
	case key < parent.k:
		parent.left = fresh
	default:
		parent.right = fresh
	}
	t.size++
	t.fixAfterInsert(fresh)
	return 0, false
}

// Delete removes key, returning its value and true if it was present.
func (t *Tree) Delete(key int64) (int64, bool) {
	n := t.root
	for n != nil && n.k != key {
		if key < n.k {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return 0, false
	}
	old := n.v
	t.size--

	// If n has two children, replace its contents with its successor's and
	// delete the successor instead.
	if n.left != nil && n.right != nil {
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.k, n.v = s.k, s.v
		n = s
	}
	// n now has at most one child.
	child := n.left
	if child == nil {
		child = n.right
	}
	if child != nil {
		child.parent = n.parent
		switch {
		case n.parent == nil:
			t.root = child
		case n == n.parent.left:
			n.parent.left = child
		default:
			n.parent.right = child
		}
		if n.colour == black {
			t.fixAfterDelete(child)
		}
	} else if n.parent == nil {
		t.root = nil
	} else {
		if n.colour == black {
			t.fixAfterDelete(n)
		}
		if n.parent != nil {
			if n == n.parent.left {
				n.parent.left = nil
			} else {
				n.parent.right = nil
			}
			n.parent = nil
		}
	}
	return old, true
}

// Successor returns the smallest key strictly greater than key.
func (t *Tree) Successor(key int64) (k, v int64, ok bool) {
	var best *node
	n := t.root
	for n != nil {
		if n.k > key {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return best.k, best.v, true
}

// Predecessor returns the largest key strictly smaller than key.
func (t *Tree) Predecessor(key int64) (k, v int64, ok bool) {
	var best *node
	n := t.root
	for n != nil {
		if n.k < key {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return best.k, best.v, true
}

// Keys returns all keys in ascending order.
func (t *Tree) Keys() []int64 {
	keys := make([]int64, 0, t.size)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		keys = append(keys, n.k)
		walk(n.right)
	}
	walk(t.root)
	return keys
}

// Height returns the number of nodes on the longest root-to-leaf path.
func (t *Tree) Height() int {
	var h func(n *node) int
	h = func(n *node) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

func colourOf(n *node) bool {
	if n == nil {
		return black
	}
	return n.colour
}

func parentOf(n *node) *node {
	if n == nil {
		return nil
	}
	return n.parent
}

func leftOf(n *node) *node {
	if n == nil {
		return nil
	}
	return n.left
}

func rightOf(n *node) *node {
	if n == nil {
		return nil
	}
	return n.right
}

func setColour(n *node, c bool) {
	if n != nil {
		n.colour = c
	}
}

func (t *Tree) rotateLeft(n *node) {
	if n == nil {
		return
	}
	r := n.right
	n.right = r.left
	if r.left != nil {
		r.left.parent = n
	}
	r.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = r
	case n.parent.left == n:
		n.parent.left = r
	default:
		n.parent.right = r
	}
	r.left = n
	n.parent = r
}

func (t *Tree) rotateRight(n *node) {
	if n == nil {
		return
	}
	l := n.left
	n.left = l.right
	if l.right != nil {
		l.right.parent = n
	}
	l.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = l
	case n.parent.right == n:
		n.parent.right = l
	default:
		n.parent.left = l
	}
	l.right = n
	n.parent = l
}

func (t *Tree) fixAfterInsert(x *node) {
	x.colour = red
	for x != nil && x != t.root && colourOf(parentOf(x)) == red {
		if parentOf(x) == leftOf(parentOf(parentOf(x))) {
			y := rightOf(parentOf(parentOf(x)))
			if colourOf(y) == red {
				setColour(parentOf(x), black)
				setColour(y, black)
				setColour(parentOf(parentOf(x)), red)
				x = parentOf(parentOf(x))
			} else {
				if x == rightOf(parentOf(x)) {
					x = parentOf(x)
					t.rotateLeft(x)
				}
				setColour(parentOf(x), black)
				setColour(parentOf(parentOf(x)), red)
				t.rotateRight(parentOf(parentOf(x)))
			}
		} else {
			y := leftOf(parentOf(parentOf(x)))
			if colourOf(y) == red {
				setColour(parentOf(x), black)
				setColour(y, black)
				setColour(parentOf(parentOf(x)), red)
				x = parentOf(parentOf(x))
			} else {
				if x == leftOf(parentOf(x)) {
					x = parentOf(x)
					t.rotateRight(x)
				}
				setColour(parentOf(x), black)
				setColour(parentOf(parentOf(x)), red)
				t.rotateLeft(parentOf(parentOf(x)))
			}
		}
	}
	t.root.colour = black
}

func (t *Tree) fixAfterDelete(x *node) {
	for x != t.root && colourOf(x) == black {
		if x == leftOf(parentOf(x)) {
			sib := rightOf(parentOf(x))
			if colourOf(sib) == red {
				setColour(sib, black)
				setColour(parentOf(x), red)
				t.rotateLeft(parentOf(x))
				sib = rightOf(parentOf(x))
			}
			if colourOf(leftOf(sib)) == black && colourOf(rightOf(sib)) == black {
				setColour(sib, red)
				x = parentOf(x)
			} else {
				if colourOf(rightOf(sib)) == black {
					setColour(leftOf(sib), black)
					setColour(sib, red)
					t.rotateRight(sib)
					sib = rightOf(parentOf(x))
				}
				setColour(sib, colourOf(parentOf(x)))
				setColour(parentOf(x), black)
				setColour(rightOf(sib), black)
				t.rotateLeft(parentOf(x))
				x = t.root
			}
		} else {
			sib := leftOf(parentOf(x))
			if colourOf(sib) == red {
				setColour(sib, black)
				setColour(parentOf(x), red)
				t.rotateRight(parentOf(x))
				sib = leftOf(parentOf(x))
			}
			if colourOf(rightOf(sib)) == black && colourOf(leftOf(sib)) == black {
				setColour(sib, red)
				x = parentOf(x)
			} else {
				if colourOf(leftOf(sib)) == black {
					setColour(rightOf(sib), black)
					setColour(sib, red)
					t.rotateLeft(sib)
					sib = leftOf(parentOf(x))
				}
				setColour(sib, colourOf(parentOf(x)))
				setColour(parentOf(x), black)
				setColour(leftOf(sib), black)
				t.rotateRight(parentOf(x))
				x = t.root
			}
		}
	}
	setColour(x, black)
}

// CheckInvariants verifies the red-black tree properties: binary search
// order, no red node with a red parent, and equal black heights on every
// root-to-leaf path. It returns nil if all hold.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return nil
	}
	if t.root.colour != black {
		return errRootNotBlack
	}
	_, err := checkNode(t.root, nil, nil)
	return err
}

type rbError string

func (e rbError) Error() string { return string(e) }

const (
	errRootNotBlack  = rbError("root is not black")
	errOrder         = rbError("keys out of order")
	errRedRed        = rbError("red node with red child")
	errBlackHeight   = rbError("unequal black heights")
	errParentPointer = rbError("bad parent pointer")
)

func checkNode(n *node, lo, hi *int64) (int, error) {
	if n == nil {
		return 1, nil
	}
	if lo != nil && n.k <= *lo {
		return 0, errOrder
	}
	if hi != nil && n.k >= *hi {
		return 0, errOrder
	}
	if n.colour == red && (colourOf(n.left) == red || colourOf(n.right) == red) {
		return 0, errRedRed
	}
	if n.left != nil && n.left.parent != n {
		return 0, errParentPointer
	}
	if n.right != nil && n.right.parent != n {
		return 0, errParentPointer
	}
	lh, err := checkNode(n.left, lo, &n.k)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(n.right, &n.k, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackHeight
	}
	if n.colour == black {
		lh++
	}
	return lh, nil
}
