// Package seqrbt implements a classic sequential red-black tree, analogous
// to java.util.TreeMap, which the paper uses in two roles: as the reference
// point for single-threaded overhead (Figure 9) and, wrapped in a single
// global mutex, as the coarse-grained "RBGlobal" baseline of Figure 8.
//
// Tree itself is NOT safe for concurrent use; Global (in this package) wraps
// it with a mutex to obtain the RBGlobal baseline.
//
// Both are generic over the key and value types and implement
// dict.OrderedMap[K, V]: NewOrdered builds a tree over any cmp.Ordered key
// type (installing a search walk devirtualized to the native `<` operator),
// NewLess accepts an arbitrary comparator (see dict.Less for the contract),
// and New keeps the historical int64 instantiation used by the benchmark
// registry.
package seqrbt

import "cmp"

const (
	red   = false
	black = true
)

type node[K, V any] struct {
	k           K
	v           V
	colour      bool
	left, right *node[K, V]
	parent      *node[K, V]
}

// Tree is a sequential red-black tree. It is not safe for concurrent use.
// Use New, NewOrdered or NewLess to create one.
type Tree[K, V any] struct {
	root *node[K, V]
	size int
	less func(a, b K) bool

	// lookupFn is the search walk used by Get and Delete, selected at
	// construction: NewLess installs the comparator-based loop, NewOrdered a
	// specialization comparing with the native `<`.
	lookupFn func(t *Tree[K, V], key K) *node[K, V]
}

// NewLess returns an empty sequential red-black tree whose keys are ordered
// by less.
func NewLess[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less, lookupFn: lookupLess[K, V]}
}

// NewOrdered returns an empty sequential red-black tree over a naturally
// ordered key type, with the search loop devirtualized to the native `<`.
func NewOrdered[K cmp.Ordered, V any]() *Tree[K, V] {
	t := NewLess[K, V](cmp.Less[K])
	t.lookupFn = lookupOrdered[K, V]
	return t
}

// New returns an empty sequential red-black tree with int64 keys and values,
// the instantiation the benchmark registry and the paper's figures use.
func New() *Tree[int64, int64] { return NewOrdered[int64, int64]() }

// IntTree is the historical int64 instantiation used by the benchmark
// registry.
type IntTree = Tree[int64, int64]

// Name identifies the data structure in benchmark reports.
func (t *Tree[K, V]) Name() string { return "SeqRBT" }

// Size returns the number of keys stored.
func (t *Tree[K, V]) Size() int { return t.size }

// lookupLess is the comparator-based search installed by NewLess.
func lookupLess[K, V any](t *Tree[K, V], key K) *node[K, V] {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.k):
			n = n.left
		case t.less(n.k, key):
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// lookupOrdered is the devirtualized search installed by NewOrdered.
func lookupOrdered[K cmp.Ordered, V any](t *Tree[K, V], key K) *node[K, V] {
	n := t.root
	for n != nil {
		switch {
		case key < n.k:
			n = n.left
		case n.k < key:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// Get returns the value associated with key, or the zero value and false if
// absent.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	if n := t.lookupFn(t, key); n != nil {
		return n.v, true
	}
	var zero V
	return zero, false
}

// Insert associates value with key. It returns the previous value and true
// if key was already present.
func (t *Tree[K, V]) Insert(key K, value V) (V, bool) {
	var parent *node[K, V]
	n := t.root
	for n != nil {
		parent = n
		switch {
		case t.less(key, n.k):
			n = n.left
		case t.less(n.k, key):
			n = n.right
		default:
			old := n.v
			n.v = value
			return old, true
		}
	}
	fresh := &node[K, V]{k: key, v: value, colour: red, parent: parent}
	switch {
	case parent == nil:
		t.root = fresh
	case t.less(key, parent.k):
		parent.left = fresh
	default:
		parent.right = fresh
	}
	t.size++
	t.fixAfterInsert(fresh)
	var zero V
	return zero, false
}

// Delete removes key, returning its value and true if it was present.
func (t *Tree[K, V]) Delete(key K) (V, bool) {
	n := t.lookupFn(t, key)
	if n == nil {
		var zero V
		return zero, false
	}
	old := n.v
	t.size--

	// If n has two children, replace its contents with its successor's and
	// delete the successor instead.
	if n.left != nil && n.right != nil {
		s := n.right
		for s.left != nil {
			s = s.left
		}
		n.k, n.v = s.k, s.v
		n = s
	}
	// n now has at most one child.
	child := n.left
	if child == nil {
		child = n.right
	}
	if child != nil {
		child.parent = n.parent
		switch {
		case n.parent == nil:
			t.root = child
		case n == n.parent.left:
			n.parent.left = child
		default:
			n.parent.right = child
		}
		if n.colour == black {
			t.fixAfterDelete(child)
		}
	} else if n.parent == nil {
		t.root = nil
	} else {
		if n.colour == black {
			t.fixAfterDelete(n)
		}
		if n.parent != nil {
			if n == n.parent.left {
				n.parent.left = nil
			} else {
				n.parent.right = nil
			}
			n.parent = nil
		}
	}
	return old, true
}

// Successor returns the smallest key strictly greater than key.
func (t *Tree[K, V]) Successor(key K) (k K, v V, ok bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(key, n.k) {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return k, v, false
	}
	return best.k, best.v, true
}

// Predecessor returns the largest key strictly smaller than key.
func (t *Tree[K, V]) Predecessor(key K) (k K, v V, ok bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(n.k, key) {
			best = n
			n = n.right
		} else {
			n = n.left
		}
	}
	if best == nil {
		return k, v, false
	}
	return best.k, best.v, true
}

// Keys returns all keys in ascending order.
func (t *Tree[K, V]) Keys() []K {
	keys := make([]K, 0, t.size)
	var walk func(n *node[K, V])
	walk = func(n *node[K, V]) {
		if n == nil {
			return
		}
		walk(n.left)
		keys = append(keys, n.k)
		walk(n.right)
	}
	walk(t.root)
	return keys
}

// Height returns the number of nodes on the longest root-to-leaf path.
func (t *Tree[K, V]) Height() int {
	var h func(n *node[K, V]) int
	h = func(n *node[K, V]) int {
		if n == nil {
			return 0
		}
		l, r := h(n.left), h(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return h(t.root)
}

func colourOf[K, V any](n *node[K, V]) bool {
	if n == nil {
		return black
	}
	return n.colour
}

func parentOf[K, V any](n *node[K, V]) *node[K, V] {
	if n == nil {
		return nil
	}
	return n.parent
}

func leftOf[K, V any](n *node[K, V]) *node[K, V] {
	if n == nil {
		return nil
	}
	return n.left
}

func rightOf[K, V any](n *node[K, V]) *node[K, V] {
	if n == nil {
		return nil
	}
	return n.right
}

func setColour[K, V any](n *node[K, V], c bool) {
	if n != nil {
		n.colour = c
	}
}

func (t *Tree[K, V]) rotateLeft(n *node[K, V]) {
	if n == nil {
		return
	}
	r := n.right
	n.right = r.left
	if r.left != nil {
		r.left.parent = n
	}
	r.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = r
	case n.parent.left == n:
		n.parent.left = r
	default:
		n.parent.right = r
	}
	r.left = n
	n.parent = r
}

func (t *Tree[K, V]) rotateRight(n *node[K, V]) {
	if n == nil {
		return
	}
	l := n.left
	n.left = l.right
	if l.right != nil {
		l.right.parent = n
	}
	l.parent = n.parent
	switch {
	case n.parent == nil:
		t.root = l
	case n.parent.right == n:
		n.parent.right = l
	default:
		n.parent.left = l
	}
	l.right = n
	n.parent = l
}

func (t *Tree[K, V]) fixAfterInsert(x *node[K, V]) {
	x.colour = red
	for x != nil && x != t.root && colourOf(parentOf(x)) == red {
		if parentOf(x) == leftOf(parentOf(parentOf(x))) {
			y := rightOf(parentOf(parentOf(x)))
			if colourOf(y) == red {
				setColour(parentOf(x), black)
				setColour(y, black)
				setColour(parentOf(parentOf(x)), red)
				x = parentOf(parentOf(x))
			} else {
				if x == rightOf(parentOf(x)) {
					x = parentOf(x)
					t.rotateLeft(x)
				}
				setColour(parentOf(x), black)
				setColour(parentOf(parentOf(x)), red)
				t.rotateRight(parentOf(parentOf(x)))
			}
		} else {
			y := leftOf(parentOf(parentOf(x)))
			if colourOf(y) == red {
				setColour(parentOf(x), black)
				setColour(y, black)
				setColour(parentOf(parentOf(x)), red)
				x = parentOf(parentOf(x))
			} else {
				if x == leftOf(parentOf(x)) {
					x = parentOf(x)
					t.rotateRight(x)
				}
				setColour(parentOf(x), black)
				setColour(parentOf(parentOf(x)), red)
				t.rotateLeft(parentOf(parentOf(x)))
			}
		}
	}
	t.root.colour = black
}

func (t *Tree[K, V]) fixAfterDelete(x *node[K, V]) {
	for x != t.root && colourOf(x) == black {
		if x == leftOf(parentOf(x)) {
			sib := rightOf(parentOf(x))
			if colourOf(sib) == red {
				setColour(sib, black)
				setColour(parentOf(x), red)
				t.rotateLeft(parentOf(x))
				sib = rightOf(parentOf(x))
			}
			if colourOf(leftOf(sib)) == black && colourOf(rightOf(sib)) == black {
				setColour(sib, red)
				x = parentOf(x)
			} else {
				if colourOf(rightOf(sib)) == black {
					setColour(leftOf(sib), black)
					setColour(sib, red)
					t.rotateRight(sib)
					sib = rightOf(parentOf(x))
				}
				setColour(sib, colourOf(parentOf(x)))
				setColour(parentOf(x), black)
				setColour(rightOf(sib), black)
				t.rotateLeft(parentOf(x))
				x = t.root
			}
		} else {
			sib := leftOf(parentOf(x))
			if colourOf(sib) == red {
				setColour(sib, black)
				setColour(parentOf(x), red)
				t.rotateRight(parentOf(x))
				sib = leftOf(parentOf(x))
			}
			if colourOf(rightOf(sib)) == black && colourOf(leftOf(sib)) == black {
				setColour(sib, red)
				x = parentOf(x)
			} else {
				if colourOf(leftOf(sib)) == black {
					setColour(rightOf(sib), black)
					setColour(sib, red)
					t.rotateLeft(sib)
					sib = leftOf(parentOf(x))
				}
				setColour(sib, colourOf(parentOf(x)))
				setColour(parentOf(x), black)
				setColour(leftOf(sib), black)
				t.rotateRight(parentOf(x))
				x = t.root
			}
		}
	}
	setColour(x, black)
}

// CheckInvariants verifies the red-black tree properties: binary search
// order, no red node with a red parent, and equal black heights on every
// root-to-leaf path. It returns nil if all hold.
func (t *Tree[K, V]) CheckInvariants() error {
	if t.root == nil {
		return nil
	}
	if t.root.colour != black {
		return errRootNotBlack
	}
	_, err := checkNode(t, t.root, nil, nil)
	return err
}

type rbError string

func (e rbError) Error() string { return string(e) }

const (
	errRootNotBlack  = rbError("root is not black")
	errOrder         = rbError("keys out of order")
	errRedRed        = rbError("red node with red child")
	errBlackHeight   = rbError("unequal black heights")
	errParentPointer = rbError("bad parent pointer")
)

func checkNode[K, V any](t *Tree[K, V], n *node[K, V], lo, hi *K) (int, error) {
	if n == nil {
		return 1, nil
	}
	if lo != nil && !t.less(*lo, n.k) {
		return 0, errOrder
	}
	if hi != nil && !t.less(n.k, *hi) {
		return 0, errOrder
	}
	if n.colour == red && (colourOf(n.left) == red || colourOf(n.right) == red) {
		return 0, errRedRed
	}
	if n.left != nil && n.left.parent != n {
		return 0, errParentPointer
	}
	if n.right != nil && n.right.parent != n {
		return 0, errParentPointer
	}
	lh, err := checkNode(t, n.left, lo, &n.k)
	if err != nil {
		return 0, err
	}
	rh, err := checkNode(t, n.right, &n.k, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, errBlackHeight
	}
	if n.colour == black {
		lh++
	}
	return lh, nil
}
