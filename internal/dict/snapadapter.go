package dict

// AdaptSnapshot wraps any ordered dictionary into a Snapshotter whose views
// are weakly consistent LIVE views, not frozen captures: each view operation
// reads the current state of m, so a scan may observe some concurrent updates
// and miss others (every visited key was present at some point during the
// scan, exactly the Ranger contract). It exists so harness code can drive the
// snapshot-scan workload mode uniformly across structures without native
// snapshots; Consistent reports false so callers can tell the two apart.
// Views are free: capture allocates one handle, Release is a no-op, and no
// memory is pinned.
func AdaptSnapshot[K, V any](m OrderedMap[K, V], less Less[K]) Snapshotter[K, V] {
	return &snapAdapter[K, V]{m: m, less: less}
}

type snapAdapter[K, V any] struct {
	m    OrderedMap[K, V]
	less Less[K]
}

func (a *snapAdapter[K, V]) Snapshot() SnapshotView[K, V] {
	return &adapterView[K, V]{m: a.m, less: a.less}
}

type adapterView[K, V any] struct {
	m    OrderedMap[K, V]
	less Less[K]
}

func (v *adapterView[K, V]) Get(key K) (V, bool) { return v.m.Get(key) }

func (v *adapterView[K, V]) RangeScan(lo, hi K, fn func(k K, val V) bool) int {
	if r, ok := v.m.(Ranger[K, V]); ok {
		return r.RangeScan(lo, hi, fn)
	}
	// Successor walk: check lo itself (Successor is strict), then advance.
	n := 0
	if val, ok := v.m.Get(lo); ok {
		n++
		if !fn(lo, val) {
			return n
		}
	}
	for k := lo; ; {
		nk, nv, ok := v.m.Successor(k)
		if !ok || v.less(hi, nk) {
			return n
		}
		n++
		if !fn(nk, nv) {
			return n
		}
		k = nk
	}
}

func (v *adapterView[K, V]) Ascend(fn func(k K, val V) bool) int {
	// Find an anchor for the Successor walk: a native Min if the structure
	// has one, otherwise the smallest of a Keys() sweep (every structure in
	// the repository provides one of the two). The walk itself re-reads the
	// live structure, so the anchor only needs to be at-or-below the current
	// minimum, which a momentarily stale Min/Keys result still is.
	var k K
	var val V
	var ok bool
	switch m := v.m.(type) {
	case interface{ Min() (K, V, bool) }:
		k, val, ok = m.Min()
	case interface{ Keys() []K }:
		keys := m.Keys()
		if len(keys) > 0 {
			k = keys[0]
			val, ok = v.m.Get(k)
			if !ok {
				// Anchor deleted since the sweep: step forward from it.
				k, val, ok = v.m.Successor(k)
			}
		}
	}
	if !ok {
		return 0
	}
	n := 1
	if !fn(k, val) {
		return n
	}
	for {
		nk, nv, ok := v.m.Successor(k)
		if !ok {
			return n
		}
		n++
		if !fn(nk, nv) {
			return n
		}
		k = nk
	}
}

func (v *adapterView[K, V]) Version() uint64  { return 0 }
func (v *adapterView[K, V]) Consistent() bool { return false }
func (v *adapterView[K, V]) Release()         {}
