package dict

import (
	"errors"
	"time"
)

// This file defines the bounded-operation surface: per-operation retry
// budgets and deadlines for the lock-free structures' retry loops. The
// LLX/SCX trees are lock-free, not wait-free — an individual Insert or
// Delete can in principle retry forever while the rest of the system makes
// progress — and a service built on them (the ROADMAP's kvserver
// direction) needs per-request bounds rather than unbounded patience. A
// Budget is checked only on the contention path (after a failed attempt),
// so the uncontended fast path pays nothing.

// ErrRetryBudget is returned when an operation exhausts Budget.Retries
// failed attempts. The operation had no effect.
var ErrRetryBudget = errors.New("dict: operation retry budget exhausted")

// ErrDeadline is returned when an operation observes Budget.Deadline in the
// past between attempts. The operation had no effect.
var ErrDeadline = errors.New("dict: operation deadline exceeded")

// Budget bounds one operation. The zero Budget is unlimited.
type Budget struct {
	// Retries caps the number of *failed* attempts (an operation that
	// succeeds on its first try never consults the budget). 0 means
	// unlimited.
	Retries int
	// Deadline, when non-zero, fails the operation at its next retry
	// boundary after the instant passes. It is only inspected between
	// attempts — a single attempt is never interrupted — so overrun is
	// bounded by one attempt's duration.
	Deadline time.Time
}

// Check reports whether the budget still permits another attempt after
// fails failed ones: nil to continue, ErrRetryBudget or ErrDeadline to give
// up. Structures call it at the top of each retry iteration, skipping
// fails == 0.
func (b Budget) Check(fails int) error {
	if fails == 0 {
		return nil
	}
	if b.Retries > 0 && fails >= b.Retries {
		return ErrRetryBudget
	}
	if !b.Deadline.IsZero() && time.Now().After(b.Deadline) {
		return ErrDeadline
	}
	return nil
}

// BoundedMap is implemented by structures whose update retry loops accept a
// Budget (the lbst-engine trees and the chromatic tree). A failed bounded
// operation returns the zero displaced value, existed == false, and the
// budget error; it is guaranteed to have had no effect on the map.
type BoundedMap[K, V any] interface {
	Map[K, V]
	InsertBounded(key K, value V, b Budget) (old V, existed bool, err error)
	DeleteBounded(key K, b Budget) (old V, existed bool, err error)
}

// Bounded wraps a Map, applying one default Budget to every update. Updates
// on maps that implement BoundedMap enforce the budget inside their retry
// loops; for any other map the budget is unenforceable (the wrapped calls
// always return a nil error), which Enforced reports so callers can tell
// the difference. Reads are never bounded — the structures' reads don't
// retry.
type Bounded[K, V any] struct {
	m      Map[K, V]
	bm     BoundedMap[K, V] // nil when m has no bounded surface
	budget Budget
}

// NewBounded wraps m with a per-operation budget. A Deadline in the budget
// is almost always wrong here (it would apply the same absolute instant to
// every future operation); use Retries in the default and per-call
// deadlines via InsertBounded/DeleteBounded.
func NewBounded[K, V any](m Map[K, V], budget Budget) *Bounded[K, V] {
	b := &Bounded[K, V]{m: m, budget: budget}
	if bm, ok := m.(BoundedMap[K, V]); ok {
		b.bm = bm
	}
	return b
}

// Enforced reports whether the wrapped map actually enforces budgets.
func (b *Bounded[K, V]) Enforced() bool { return b.bm != nil }

// Get passes through to the wrapped map.
func (b *Bounded[K, V]) Get(key K) (V, bool) { return b.m.Get(key) }

// Insert upserts under the wrapper's default budget.
func (b *Bounded[K, V]) Insert(key K, value V) (V, bool, error) {
	return b.InsertBounded(key, value, b.budget)
}

// Delete removes under the wrapper's default budget.
func (b *Bounded[K, V]) Delete(key K) (V, bool, error) {
	return b.DeleteBounded(key, b.budget)
}

// InsertBounded upserts under an explicit budget.
func (b *Bounded[K, V]) InsertBounded(key K, value V, budget Budget) (V, bool, error) {
	if b.bm != nil {
		return b.bm.InsertBounded(key, value, budget)
	}
	old, existed := b.m.Insert(key, value)
	return old, existed, nil
}

// DeleteBounded removes under an explicit budget.
func (b *Bounded[K, V]) DeleteBounded(key K, budget Budget) (V, bool, error) {
	if b.bm != nil {
		return b.bm.DeleteBounded(key, budget)
	}
	old, existed := b.m.Delete(key)
	return old, existed, nil
}
