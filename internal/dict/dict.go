// Package dict defines the ordered-dictionary abstraction shared by every
// data structure in this repository, together with helpers used by tests and
// the benchmark harness.
//
// The interface mirrors the abstract data type of Section 5 of Brown, Ellen
// and Ruppert (PPoPP 2014): Get, Insert, Delete, Successor and Predecessor,
// with the value ⊥ represented by the boolean "ok" result. The paper's trees
// are key-type-agnostic - only the search routine compares keys - so the
// canonical interfaces are generic: Map[K, V] and OrderedMap[K, V] are
// parameterized by the key and value types, and implementations order keys
// with a caller-supplied comparator of type Less[K] (constructors for
// cmp.Ordered key types install the natural `<` ordering). The historical
// int64 instantiations survive as the IntMap, IntOrderedMap and IntFactory
// aliases, which the benchmark harness and the paper's figures still use.
package dict

import "cmp"

// Less is the key comparator contract: it reports whether a is strictly
// ordered before b. It must define a strict weak ordering (irreflexive,
// transitive, with transitive incomparability); two keys a and b are
// considered equal exactly when !Less(a, b) && !Less(b, a). Comparators must
// be pure and safe for concurrent use: the trees call them from many
// goroutines with no synchronization.
type Less[K any] func(a, b K) bool

// Ordered returns the natural `<` comparator for any cmp.Ordered key type.
// It is a convenience for callers that need an explicit Less value (for
// example to store alongside other configuration, or to hand to a tree's
// NewLess constructor); the trees' NewOrdered constructors install the same
// ordering themselves.
func Ordered[K cmp.Ordered]() Less[K] {
	return func(a, b K) bool { return a < b }
}

// Map is a dictionary with totally ordered keys of type K and values of
// type V.
//
// All methods must be safe for concurrent use by multiple goroutines unless
// the concrete implementation documents otherwise (for example the purely
// sequential red-black tree in internal/seqrbt).
type Map[K, V any] interface {
	// Get returns the value associated with key and true, or the zero value
	// and false if key is not present.
	Get(key K) (value V, ok bool)
	// Insert associates value with key. It returns the previously associated
	// value and true if key was present, or the zero value and false if it
	// was not.
	Insert(key K, value V) (old V, existed bool)
	// Delete removes key. It returns the value that was associated with key
	// and true, or the zero value and false if key was not present.
	Delete(key K) (old V, existed bool)
}

// OrderedMap additionally supports ordered traversal queries.
type OrderedMap[K, V any] interface {
	Map[K, V]
	// Successor returns the smallest key strictly greater than key, with its
	// value. ok is false if no such key exists.
	Successor(key K) (k K, v V, ok bool)
	// Predecessor returns the largest key strictly smaller than key, with its
	// value. ok is false if no such key exists.
	Predecessor(key K) (k K, v V, ok bool)
}

// Ranger is implemented by dictionaries with a native range scan. RangeScan
// calls fn for every key in [lo, hi] in ascending order and returns the
// number of keys visited; if fn returns false the scan stops early. The scan
// need not be atomic as a whole, but every visited key must have been
// present at some point during the scan. The workload generator's scan
// operations use it when available and fall back to repeated Successor
// queries otherwise.
type Ranger[K, V any] interface {
	RangeScan(lo, hi K, fn func(k K, v V) bool) int
}

// Factory constructs empty dictionary instances of one implementation. The
// benchmark harness uses factories so that every trial starts from a fresh
// structure.
type Factory[K, V any] struct {
	// Name identifies the data structure in reports (e.g. "Chromatic6").
	Name string
	// New creates an empty dictionary.
	New func() Map[K, V]
}

// IntMap is the historical int64-keyed instantiation of Map used by the
// benchmark registry, the workload generator and the paper's figures.
type IntMap = Map[int64, int64]

// IntOrderedMap is the int64-keyed instantiation of OrderedMap.
type IntOrderedMap = OrderedMap[int64, int64]

// IntFactory is the int64-keyed instantiation of Factory.
type IntFactory = Factory[int64, int64]

// IntRanger is the int64-keyed instantiation of Ranger.
type IntRanger = Ranger[int64, int64]

// Sized is implemented by dictionaries that can report the number of keys
// they currently store. Size may run in linear time and need not be
// linearizable; it is intended for tests and prefilling.
type Sized interface {
	Size() int
}

// Named is implemented by dictionaries that expose a human-readable name for
// benchmark reports.
type Named interface {
	Name() string
}
