// Package dict defines the ordered-dictionary abstraction shared by every
// data structure in this repository, together with helpers used by tests and
// the benchmark harness.
//
// The interface mirrors the abstract data type of Section 5 of Brown, Ellen
// and Ruppert (PPoPP 2014): Get, Insert, Delete, Successor and Predecessor
// over integer keys with integer values. Keys are int64 and the value ⊥ is
// represented by the boolean "ok" result.
package dict

// Map is an ordered dictionary with totally ordered int64 keys.
//
// All methods must be safe for concurrent use by multiple goroutines unless
// the concrete implementation documents otherwise (for example the purely
// sequential red-black tree in internal/seqrbt).
type Map interface {
	// Get returns the value associated with key and true, or 0 and false if
	// key is not present.
	Get(key int64) (value int64, ok bool)
	// Insert associates value with key. It returns the previously associated
	// value and true if key was present, or 0 and false if it was not.
	Insert(key, value int64) (old int64, existed bool)
	// Delete removes key. It returns the value that was associated with key
	// and true, or 0 and false if key was not present.
	Delete(key int64) (old int64, existed bool)
}

// OrderedMap additionally supports ordered traversal queries.
type OrderedMap interface {
	Map
	// Successor returns the smallest key strictly greater than key, with its
	// value. ok is false if no such key exists.
	Successor(key int64) (k, v int64, ok bool)
	// Predecessor returns the largest key strictly smaller than key, with its
	// value. ok is false if no such key exists.
	Predecessor(key int64) (k, v int64, ok bool)
}

// Sized is implemented by dictionaries that can report the number of keys
// they currently store. Size may run in linear time and need not be
// linearizable; it is intended for tests and prefilling.
type Sized interface {
	Size() int
}

// Named is implemented by dictionaries that expose a human-readable name for
// benchmark reports.
type Named interface {
	Name() string
}

// Factory constructs an empty dictionary instance. The benchmark harness uses
// factories so that every trial starts from a fresh structure.
type Factory struct {
	// Name identifies the data structure in reports (e.g. "Chromatic6").
	Name string
	// New creates an empty dictionary.
	New func() Map
}
