// Package dict defines the ordered-dictionary abstraction shared by every
// data structure in this repository, together with helpers used by tests and
// the benchmark harness.
//
// The interface mirrors the abstract data type of Section 5 of Brown, Ellen
// and Ruppert (PPoPP 2014): Get, Insert, Delete, Successor and Predecessor,
// with the value ⊥ represented by the boolean "ok" result. The paper's trees
// are key-type-agnostic - only the search routine compares keys - so the
// canonical interfaces are generic: Map[K, V] and OrderedMap[K, V] are
// parameterized by the key and value types, and implementations order keys
// with a caller-supplied comparator of type Less[K] (constructors for
// cmp.Ordered key types install the natural `<` ordering). The historical
// int64 instantiations survive as the IntMap, IntOrderedMap and IntFactory
// aliases, which the benchmark harness and the paper's figures still use.
package dict

import "cmp"

// Less is the key comparator contract: it reports whether a is strictly
// ordered before b. It must define a strict weak ordering (irreflexive,
// transitive, with transitive incomparability); two keys a and b are
// considered equal exactly when !Less(a, b) && !Less(b, a). Comparators must
// be pure and safe for concurrent use: the trees call them from many
// goroutines with no synchronization.
type Less[K any] func(a, b K) bool

// Ordered returns the natural `<` comparator for any cmp.Ordered key type.
// It is a convenience for callers that need an explicit Less value (for
// example to store alongside other configuration, or to hand to a tree's
// NewLess constructor); the trees' NewOrdered constructors install the same
// ordering themselves.
func Ordered[K cmp.Ordered]() Less[K] {
	return func(a, b K) bool { return a < b }
}

// Map is a dictionary with totally ordered keys of type K and values of
// type V.
//
// All methods must be safe for concurrent use by multiple goroutines unless
// the concrete implementation documents otherwise (for example the purely
// sequential red-black tree in internal/seqrbt).
type Map[K, V any] interface {
	// Get returns the value associated with key and true, or the zero value
	// and false if key is not present.
	Get(key K) (value V, ok bool)
	// Insert associates value with key. It returns the previously associated
	// value and true if key was present, or the zero value and false if it
	// was not.
	Insert(key K, value V) (old V, existed bool)
	// Delete removes key. It returns the value that was associated with key
	// and true, or the zero value and false if key was not present.
	Delete(key K) (old V, existed bool)
}

// OrderedMap additionally supports ordered traversal queries.
type OrderedMap[K, V any] interface {
	Map[K, V]
	// Successor returns the smallest key strictly greater than key, with its
	// value. ok is false if no such key exists.
	Successor(key K) (k K, v V, ok bool)
	// Predecessor returns the largest key strictly smaller than key, with its
	// value. ok is false if no such key exists.
	Predecessor(key K) (k K, v V, ok bool)
}

// Ranger is implemented by dictionaries with a native range scan. RangeScan
// calls fn for every key in [lo, hi] in ascending order and returns the
// number of keys visited; if fn returns false the scan stops early. The scan
// need not be atomic as a whole, but every visited key must have been
// present at some point during the scan. The workload generator's scan
// operations use it when available and fall back to repeated Successor
// queries otherwise.
type Ranger[K, V any] interface {
	RangeScan(lo, hi K, fn func(k K, v V) bool) int
}

// Factory constructs empty dictionary instances of one implementation. The
// benchmark harness uses factories so that every trial starts from a fresh
// structure.
type Factory[K, V any] struct {
	// Name identifies the data structure in reports (e.g. "Chromatic6").
	Name string
	// New creates an empty dictionary.
	New func() Map[K, V]
}

// IntMap is the historical int64-keyed instantiation of Map used by the
// benchmark registry, the workload generator and the paper's figures.
type IntMap = Map[int64, int64]

// IntOrderedMap is the int64-keyed instantiation of OrderedMap.
type IntOrderedMap = OrderedMap[int64, int64]

// IntFactory is the int64-keyed instantiation of Factory.
type IntFactory = Factory[int64, int64]

// IntRanger is the int64-keyed instantiation of Ranger.
type IntRanger = Ranger[int64, int64]

// SnapshotView is a read-only, point-in-time view of a dictionary returned
// by a Snapshotter. On native implementations (the LLX/SCX trees) the view is
// frozen: every operation observes exactly the state at the capture's
// linearization point, never blocks, never retries, and performs no
// per-node validation; the view stays valid under arbitrary concurrent
// updates to the source dictionary until Release is called. Holding a view
// pins memory reclamation for the nodes it can reach, so views should be
// released promptly. Release must be called exactly once; using a view after
// Release is undefined.
//
// The fallback adapter (AdaptSnapshot) satisfies the same interface with a
// weakly consistent live view, for implementations without native snapshots;
// Consistent reports which semantics a view provides.
type SnapshotView[K, V any] interface {
	// Get returns the value associated with key in the snapshot.
	Get(key K) (value V, ok bool)
	// RangeScan calls fn for every key in [lo, hi] in ascending order and
	// returns the number of keys visited; if fn returns false the scan stops
	// early.
	RangeScan(lo, hi K, fn func(k K, v V) bool) int
	// Ascend calls fn for every key in ascending order and returns the number
	// of keys visited; if fn returns false the scan stops early.
	Ascend(fn func(k K, v V) bool) int
	// Version is the capture's commit tick: snapshots of the same dictionary
	// are ordered by it. Adapter views report 0.
	Version() uint64
	// Consistent reports whether the view is frozen (true) or a weakly
	// consistent live fallback (false).
	Consistent() bool
	// Release ends the view's lifetime and unpins memory reclamation.
	Release()
}

// Snapshotter is implemented by dictionaries with O(1) versioned snapshots.
type Snapshotter[K, V any] interface {
	// Snapshot captures the current state and returns its view. On native
	// implementations it is O(1) and allocation-lean regardless of the
	// dictionary's size.
	Snapshot() SnapshotView[K, V]
}

// IntSnapshotter is the int64-keyed instantiation of Snapshotter.
type IntSnapshotter = Snapshotter[int64, int64]

// IntSnapshotView is the int64-keyed instantiation of SnapshotView.
type IntSnapshotView = SnapshotView[int64, int64]

// Differ is optionally implemented by SnapshotView values that can compute a
// structural diff against another view of the same dictionary. Diff reports
// false (and emits nothing) when other is not a compatible view, in which
// case the caller falls back to a merge of two scans (see SnapshotDiff).
type Differ[K, V any] interface {
	Diff(other SnapshotView[K, V], eq func(a, b V) bool, fn func(key K, oldV V, oldOK bool, newV V, newOK bool) bool) bool
}

// SnapshotDiff calls fn for every key whose presence or value differs between
// the two views, in ascending key order: oldOK/newOK report presence in each
// view and eq decides value equality for keys present in both. If fn returns
// false the diff stops early. When old implements Differ (both views come
// from the same native tree) the diff walks the two versions' shared
// structure and skips unchanged regions cheaply; otherwise it merges two full
// scans, materializing the old view's contents.
//
// For the structural fast path to be exact the old view must have been
// captured before new and held live continuously since (the usual case:
// diffing two snapshots the caller holds). A view released and re-taken in
// between may share leaves whose values were overwritten in place while no
// snapshot was live; only the merge fallback detects those.
func SnapshotDiff[K, V any](less Less[K], eq func(a, b V) bool, old, new SnapshotView[K, V], fn func(key K, oldV V, oldOK bool, newV V, newOK bool) bool) {
	if d, ok := old.(Differ[K, V]); ok && d.Diff(new, eq, fn) {
		return
	}
	type kv struct {
		k K
		v V
	}
	var olds []kv
	var zero V
	old.Ascend(func(k K, v V) bool {
		olds = append(olds, kv{k, v})
		return true
	})
	i, stopped := 0, false
	new.Ascend(func(k K, v V) bool {
		for i < len(olds) && less(olds[i].k, k) {
			if !fn(olds[i].k, olds[i].v, true, zero, false) {
				stopped = true
				return false
			}
			i++
		}
		if i < len(olds) && !less(k, olds[i].k) {
			ov := olds[i].v
			i++
			if !eq(ov, v) {
				if !fn(k, ov, true, v, true) {
					stopped = true
					return false
				}
			}
			return true
		}
		if !fn(k, zero, false, v, true) {
			stopped = true
			return false
		}
		return true
	})
	if stopped {
		return
	}
	for ; i < len(olds); i++ {
		if !fn(olds[i].k, olds[i].v, true, zero, false) {
			return
		}
	}
}

// Sized is implemented by dictionaries that can report the number of keys
// they currently store. Size may run in linear time and need not be
// linearizable; it is intended for tests and prefilling.
type Sized interface {
	Size() int
}

// Named is implemented by dictionaries that expose a human-readable name for
// benchmark reports.
type Named interface {
	Name() string
}
