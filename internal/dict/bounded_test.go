package dict

import (
	"testing"
	"time"
)

func TestBudgetCheckUnlimited(t *testing.T) {
	var b Budget
	for _, fails := range []int{0, 1, 1000000} {
		if err := b.Check(fails); err != nil {
			t.Fatalf("zero Budget.Check(%d) = %v, want nil", fails, err)
		}
	}
}

func TestBudgetCheckFirstAttemptIsFree(t *testing.T) {
	// fails == 0 must never consult the budget, even an expired one: the
	// uncontended fast path pays nothing and is never spuriously failed.
	b := Budget{Retries: 1, Deadline: time.Now().Add(-time.Hour)}
	if err := b.Check(0); err != nil {
		t.Fatalf("Check(0) = %v, want nil", err)
	}
}

func TestBudgetCheckRetries(t *testing.T) {
	b := Budget{Retries: 3}
	for fails := 1; fails < 3; fails++ {
		if err := b.Check(fails); err != nil {
			t.Fatalf("Check(%d) = %v under Retries=3, want nil", fails, err)
		}
	}
	if err := b.Check(3); err != ErrRetryBudget {
		t.Fatalf("Check(3) = %v under Retries=3, want ErrRetryBudget", err)
	}
	if err := b.Check(10); err != ErrRetryBudget {
		t.Fatalf("Check(10) = %v under Retries=3, want ErrRetryBudget", err)
	}
}

func TestBudgetCheckDeadline(t *testing.T) {
	past := Budget{Deadline: time.Now().Add(-time.Second)}
	if err := past.Check(1); err != ErrDeadline {
		t.Fatalf("Check(1) past deadline = %v, want ErrDeadline", err)
	}
	future := Budget{Deadline: time.Now().Add(time.Hour)}
	if err := future.Check(1); err != nil {
		t.Fatalf("Check(1) before deadline = %v, want nil", err)
	}
	// Retries exhaustion is reported ahead of the deadline when both apply.
	both := Budget{Retries: 2, Deadline: time.Now().Add(-time.Second)}
	if err := both.Check(5); err != ErrRetryBudget {
		t.Fatalf("Check(5) with both exhausted = %v, want ErrRetryBudget", err)
	}
}

func TestBoundedWrapperUnenforced(t *testing.T) {
	// A map without the bounded surface still works through the wrapper;
	// Enforced() tells the caller the budget is advisory there.
	m := plainMap{}
	b := NewBounded[int, int](m, Budget{Retries: 1})
	if b.Enforced() {
		t.Fatal("Enforced() = true for a map without InsertBounded/DeleteBounded")
	}
	if _, _, err := b.Insert(1, 10); err != nil {
		t.Fatalf("unenforced Insert returned %v", err)
	}
	if v, ok := b.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = (%d, %v) after Insert", v, ok)
	}
	if old, existed, err := b.Delete(1); err != nil || !existed || old != 10 {
		t.Fatalf("unenforced Delete = (%d, %v, %v)", old, existed, err)
	}
}

// plainMap is a minimal unbounded Map for wrapper tests.
type plainMap map[int]int

func (m plainMap) Get(k int) (int, bool) { v, ok := m[k]; return v, ok }
func (m plainMap) Insert(k, v int) (int, bool) {
	old, ok := m[k]
	m[k] = v
	return old, ok
}
func (m plainMap) Delete(k int) (int, bool) {
	old, ok := m[k]
	delete(m, k)
	return old, ok
}
