package dicttest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/dict"
	"repro/internal/epoch"
	"repro/internal/linearize"
	"repro/internal/sched"
)

// This file holds the chaos-mode stress suites: the same shared-window
// churn workloads as ChurnStressKV, but run with runtime fault injection
// armed (internal/chaos) and every operation recorded for linearizability
// checking. Two suites cover the two failure families the robustness work
// targets:
//
//   - ChaosChurnStressKV: delays, preemption, dropped optional helping and
//     abandoned (indefinitely parked) workers. Operations must all complete
//     once parked workers are released, the history must linearize, and the
//     epoch watchdog must keep reclamation from wedging behind a parked
//     worker's stale pin.
//
//   - ChaosCrashStressKV: injected panics mid-operation. The panic unwinds
//     through an operation's deferred epoch unpin, so a crashed worker must
//     not wedge reclamation; the structure must remain fully usable and its
//     invariants intact afterwards.
//
// Both suites skip under -tags sched: the deterministic controller owns the
// instrumentation points there, and chaos arming is deliberately inert.

// chaosSkip skips suites that need the probabilistic hooks when the
// deterministic scheduler build owns the points instead.
func chaosSkip(t *testing.T) {
	t.Helper()
	if sched.Enabled {
		t.Skip("chaos injection is inert under -tags sched (deterministic controller owns the points)")
	}
}

// drainPending drives the epoch layer's pending count to zero, failing if
// it sticks. After a chaos run every worker has unpinned (or been released
// and then unpinned), so with the watchdog's help nothing may keep a
// retiree's grace period open forever.
func drainPending(t *testing.T, d time.Duration) {
	t.Helper()
	if !epoch.Enabled {
		return
	}
	deadline := time.Now().Add(d)
	for epoch.Drain() != 0 {
		if time.Now().After(deadline) {
			t.Errorf("epoch pending stuck at %d after chaos run (stats: %+v)", epoch.Pending(), epoch.Stats())
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// ChaosChurnStressKV hammers a shared key window with writers while chaos
// injection delays, preempts, abandons and de-helps them, with one scanning
// reader mixed in. Every operation goes through a linearizability recorder.
// A background releaser periodically wakes abandoned workers (the epoch
// watchdog covers the interval where a parked worker's pin stalls
// reclamation), so the workload always terminates; afterwards the suite
// asserts completion, linearizability, structure invariants, and that
// epoch pending returns to zero.
func ChaosChurnStressKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], writers, opsPerWriter int, window []K, val func(writer, i int) V) {
	t.Helper()
	chaosSkip(t)
	checkGoroutineLeaks(t)
	seed := stressSeed(t)
	defer hangGuard(t, 2*time.Minute)()

	d := tgt.New()
	rec := linearize.NewRecorder(d)

	if epoch.Enabled {
		w := epoch.StartWatchdog(2*time.Millisecond, 10*time.Millisecond)
		defer w.Stop()
	}
	if err := chaos.Enable(chaos.Config{
		Seed:         int64(seed),
		Default:      chaos.PointPolicy{Delay: 20000, Preempt: 20000, Abandon: 1500},
		DropHelp:     100000,
		MaxAbandoned: 2,
		DelaySpins:   128,
	}); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	// Releaser: abandoned workers park until woken; waking them every tick
	// keeps the workload finite while still leaving parks long enough
	// (relative to the watchdog's stall threshold) to force evictions and
	// recoveries of pinned parked workers.
	relStop := make(chan struct{})
	var relWG sync.WaitGroup
	relWG.Add(1)
	go func() {
		defer relWG.Done()
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-relStop:
				return
			case <-tick.C:
				chaos.ReleaseAbandoned()
			}
		}
	}()

	var completed atomic.Int64
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			cw := chaos.Register(w)
			defer cw.Close()
			p := rec.Proc()
			state := seed + uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsPerWriter; i++ {
				k := window[lcg(&state)%uint64(len(window))]
				switch lcg(&state) % 4 {
				case 0, 1:
					p.Insert(k, val(w, i))
				case 2:
					p.Delete(k)
				default:
					p.Get(k)
				}
				completed.Add(1)
			}
		}(w)
	}

	// Scanning reader: its ScanSteps join the per-key histories, so a scan
	// observing a half-applied update would fail the linearizability check.
	// Passes are capped to keep the recorded history (and the checker's
	// search) bounded regardless of how long the writers take.
	scanStop := make(chan struct{})
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		cw := chaos.Register(writers)
		defer cw.Close()
		p := rec.Proc()
		lo, hi := window[0], window[len(window)-1]
		for pass := 0; pass < 400; pass++ {
			select {
			case <-scanStop:
				return
			default:
				p.Scan(lo, hi, tgt.Less)
			}
		}
		<-scanStop
	}()

	writerWG.Wait()
	close(scanStop)
	scanWG.Wait()
	close(relStop)
	relWG.Wait()

	st := chaos.ReadStats() // before Disable: stats belong to the active run
	chaos.Disable()
	t.Logf("chaos stats: %+v", st)
	if st.Delays+st.Preempts == 0 {
		t.Error("no delays or preemptions injected; chaos run was inert")
	}
	if st.Abandons == 0 {
		t.Error("no workers abandoned; the parked-worker path was not exercised")
	}
	if got, want := completed.Load(), int64(writers*opsPerWriter); got != want {
		t.Errorf("completed %d of %d operations", got, want)
	}

	if res := linearize.Check(rec.History()); !res.OK() {
		t.Errorf("history not linearizable under chaos:\n%s", res.Report())
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Errorf("invariant check after chaos churn: %v", err)
		}
	}
	drainPending(t, 10*time.Second)
}

// ChaosChurnStress is the int64 wrapper: a 16-key window in a sparse
// region, values unique per (writer, op).
func ChaosChurnStress(t *testing.T, tgt Target, writers, opsPerWriter int) {
	t.Helper()
	window := make([]int64, 16)
	for i := range window {
		window[i] = int64(1<<21 + i*3)
	}
	ChaosChurnStressKV(t, tgt.generic(), writers, opsPerWriter, window,
		func(w, i int) int64 { return int64(w)<<32 + int64(i) + 1 })
}

// ChaosCrashStressKV runs the shared-window churn with panic injection
// armed: workers crash at random instrumentation points mid-operation and
// recover, relying on the operations' deferred epoch unpins to release
// their pins during unwinding. Afterwards the structure must be fully
// usable (a sequential model-checked pass over the window), its invariants
// must hold, and epoch pending must drain to zero.
func ChaosCrashStressKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], workers, opsPerWorker int, window []K, val func(worker, i int) V) {
	t.Helper()
	chaosSkip(t)
	checkGoroutineLeaks(t)
	seed := stressSeed(t)
	defer hangGuard(t, 2*time.Minute)()

	d := tgt.New()

	if epoch.Enabled {
		w := epoch.StartWatchdog(2*time.Millisecond, 10*time.Millisecond)
		defer w.Stop()
	}
	if err := chaos.Enable(chaos.Config{
		Seed:       int64(seed),
		Default:    chaos.PointPolicy{Delay: 10000, Preempt: 10000, Panic: 2000},
		DropHelp:   50000,
		DelaySpins: 128,
	}); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	var crashes atomic.Int64
	var badPanic atomic.Pointer[any]
	// survive runs one operation, absorbing an injected panic. Any other
	// panic value is a real bug and is re-raised on the test goroutine.
	survive := func(fn func()) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(chaos.Panic); !ok {
					badPanic.CompareAndSwap(nil, &r)
					return
				}
				crashes.Add(1)
			}
		}()
		fn()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cw := chaos.Register(w)
			defer cw.Close()
			state := seed + uint64(w)*0x9e3779b97f4a7c15 + 1
			for i := 0; i < opsPerWorker; i++ {
				k := window[lcg(&state)%uint64(len(window))]
				switch lcg(&state) % 4 {
				case 0, 1:
					survive(func() { d.Insert(k, val(w, i)) })
				case 2:
					survive(func() { d.Delete(k) })
				default:
					survive(func() { d.Get(k) })
				}
			}
		}(w)
	}
	wg.Wait()

	st := chaos.ReadStats()
	chaos.Disable()
	t.Logf("chaos stats: %+v (recovered crashes: %d)", st, crashes.Load())
	if p := badPanic.Load(); p != nil {
		t.Fatalf("worker panicked with a non-injected value: %v", *p)
	}
	if st.Panics == 0 {
		t.Error("no panics injected; the crash path was not exercised")
	}

	// Quiesce before model checking: a worker that panicked mid-SCX leaves
	// its SCX frozen in flight, and that crashed operation is PENDING in
	// history terms — its effect legitimately materializes whenever a later
	// operation helps it to completion. A model that snapshots the structure
	// now would be invalidated by that deferred effect (a crashed delete
	// completing under the model pass silently consumes a fresh overwrite).
	// Deleting every window key LLXes each leaf's neighborhood, which helps
	// any stalled SCX to completion, so the model pass below starts from a
	// quiesced structure with no pending operations left to materialize.
	for _, k := range window {
		d.Delete(k)
	}

	// Post-crash usability: with injection off, the survivors of the crash
	// storm must behave like a healthy dictionary. Run a deterministic
	// model-checked pass over the same window the crashes hit.
	md := newModel[K, V](tgt.Less)
	for _, k := range window {
		if v, ok := d.Get(k); ok {
			md.insert(k, v)
		}
	}
	for i, k := range window {
		v := val(workers, i) // worker id past every real worker: fresh values
		d.Insert(k, v)
		md.insert(k, v)
	}
	for i, k := range window {
		if i%2 == 0 {
			wantOld, wantEx := md.delete(k)
			gotOld, gotEx := d.Delete(k)
			if gotOld != wantOld || gotEx != wantEx {
				t.Fatalf("post-crash Delete(%v) = (%v, %v), model says (%v, %v)", k, gotOld, gotEx, wantOld, wantEx)
			}
		}
	}
	for _, k := range window {
		wantV, wantOK := md.get(k)
		gotV, gotOK := d.Get(k)
		if gotV != wantV || gotOK != wantOK {
			t.Fatalf("post-crash Get(%v) = (%v, %v), model says (%v, %v)", k, gotV, gotOK, wantV, wantOK)
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Errorf("invariant check after crash storm: %v", err)
		}
	}
	drainPending(t, 10*time.Second)
}

// ChaosCrashStress is the int64 wrapper for ChaosCrashStressKV.
func ChaosCrashStress(t *testing.T, tgt Target, workers, opsPerWorker int) {
	t.Helper()
	window := make([]int64, 16)
	for i := range window {
		window[i] = int64(1<<22 + i*3)
	}
	ChaosCrashStressKV(t, tgt.generic(), workers, opsPerWorker, window,
		func(w, i int) int64 { return int64(w)<<32 + int64(i) + 1 })
}

// ChaosBoundedStressKV exercises the bounded-operation surface under chaos
// contention: workers on disjoint keyspaces issue InsertBounded and
// DeleteBounded with tight retry budgets while chaos delays and preemption
// inflate contention from neighboring keyspaces. Because each worker owns
// its keys, its operations are sequential per key, so a per-worker model
// tracks the exact expected state: a budget failure must be effect-free and
// a success must land exactly. The target must implement dict.BoundedMap.
func ChaosBoundedStressKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], goroutines, opsPerG int, key func(g int, u uint64) K, val func(uint64) V) {
	t.Helper()
	chaosSkip(t)
	checkGoroutineLeaks(t)
	seed := stressSeed(t)
	defer hangGuard(t, 2*time.Minute)()

	d := tgt.New()
	bm, ok := d.(dict.BoundedMap[K, V])
	if !ok {
		t.Fatalf("%s does not implement dict.BoundedMap", tgt.Name)
	}

	if epoch.Enabled {
		w := epoch.StartWatchdog(2*time.Millisecond, 10*time.Millisecond)
		defer w.Stop()
	}
	if err := chaos.Enable(chaos.Config{
		Seed:       int64(seed),
		Default:    chaos.PointPolicy{Delay: 50000, Preempt: 50000},
		DelaySpins: 256,
	}); err != nil {
		t.Fatal(err)
	}
	defer chaos.Disable()

	var budgetFails atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cw := chaos.Register(g)
			defer cw.Close()
			md := newModel[K, V](tgt.Less)
			state := seed + uint64(g)*0x9e3779b97f4a7c15 + 1
			budget := dict.Budget{Retries: 2}
			for i := 0; i < opsPerG; i++ {
				k := key(g, lcg(&state))
				if lcg(&state)%3 != 2 {
					v := val(lcg(&state))
					old, existed, err := bm.InsertBounded(k, v, budget)
					if err != nil {
						// Effect-free by contract: the model is untouched.
						if err != dict.ErrRetryBudget && err != dict.ErrDeadline {
							errs <- err
							return
						}
						budgetFails.Add(1)
						continue
					}
					wantOld, wantEx := md.insert(k, v)
					if old != wantOld || existed != wantEx {
						errs <- errMismatch("InsertBounded", k, old, existed, wantOld, wantEx)
						return
					}
				} else {
					old, existed, err := bm.DeleteBounded(k, budget)
					if err != nil {
						if err != dict.ErrRetryBudget && err != dict.ErrDeadline {
							errs <- err
							return
						}
						budgetFails.Add(1)
						continue
					}
					wantOld, wantEx := md.delete(k)
					if old != wantOld || existed != wantEx {
						errs <- errMismatch("DeleteBounded", k, old, existed, wantOld, wantEx)
						return
					}
				}
			}
			// Final sweep: the structure's view of this worker's keyspace
			// must match the model exactly — a "failed" operation that
			// actually published would show up here.
			for _, k := range md.sortedKeys() {
				wantV, _ := md.get(k)
				gotV, gotOK := d.Get(k)
				if !gotOK || gotV != wantV {
					errs <- errMismatch("final Get", k, gotV, gotOK, wantV, true)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	st := chaos.ReadStats()
	chaos.Disable()
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("chaos stats: %+v, budget failures: %d", st, budgetFails.Load())
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Errorf("invariant check after bounded stress: %v", err)
		}
	}
	drainPending(t, 10*time.Second)
}

// ChaosBoundedStress is the int64 wrapper: goroutine g owns the packed
// keyspace [g*keysPerG, (g+1)*keysPerG), so budget pressure comes from
// structural contention with the neighbors, never from data races on keys.
func ChaosBoundedStress(t *testing.T, tgt Target, goroutines, opsPerG int, keysPerG int64) {
	t.Helper()
	gt := tgt.generic()
	ChaosBoundedStressKV(t, gt, goroutines, opsPerG,
		func(g int, u uint64) int64 { return int64(g)*keysPerG + int64(u%uint64(keysPerG)) },
		func(u uint64) int64 { return int64(u%(1<<30)) + 1 })
}

func errMismatch(op string, key, got, gotOK, want, wantOK any) error {
	return fmt.Errorf("%s(%v) = (%v, %v), sequential model says (%v, %v)", op, key, got, gotOK, want, wantOK)
}
