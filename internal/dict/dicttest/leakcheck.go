package dicttest

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/epoch"
)

// checkGoroutineLeaks snapshots the live goroutine count when a stress
// harness starts and, at test cleanup, verifies the count settles back to
// it. The epoch layer is drained first so nothing is waiting on a grace
// period, and the comparison retries with a settle delay because goroutines
// that have returned can linger briefly in the scheduler's accounting. A
// persistent excess means a harness (or a chaos run) leaked a worker — the
// failure includes a full goroutine dump to name the culprit.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		if epoch.Enabled {
			epoch.Drain()
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d live after the suite, %d at its start; dump:\n%s",
					runtime.NumGoroutine(), base, buf[:n])
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

// hangGuard arms a wall-clock deadline for one stress suite. A wedged
// suite (a worker parked forever, a retry loop that stopped making
// progress) would otherwise hang the whole `go test` invocation with no
// diagnostics; the guard instead crashes the process with a full goroutine
// dump so the wedge site is visible. The returned func disarms it.
func hangGuard(t *testing.T, d time.Duration) func() {
	name := t.Name()
	timer := time.AfterFunc(d, func() {
		buf := make([]byte, 1<<22)
		n := runtime.Stack(buf, true)
		panic(name + " made no progress for " + d.String() + "; goroutine dump:\n" + string(buf[:n]))
	})
	return func() { timer.Stop() }
}
