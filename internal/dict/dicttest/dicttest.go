// Package dicttest provides a reusable conformance, fuzz and stress suite
// for dict.Map / dict.OrderedMap implementations, in the spirit of the
// fuzz-vs-model testing used for classic balanced-tree libraries: every
// operation is mirrored against a plain Go map (plus keys sorted by the
// target's comparator for the ordered queries), and a structure-specific
// invariant checker runs once the structure is quiescent.
//
// The suite is generic over the key and value types (TargetOf and the *KV
// functions); the historical int64 entry points (Target,
// SequentialConformance, FuzzOps, ConcurrentStress) are thin wrappers kept
// for the repository-level tests that predate the generic dictionary stack.
// Keys and values are produced by caller-supplied derivation functions from
// the suite's deterministic pseudo-random stream, so the same machinery
// drives int64, string or composite-key targets.
//
// The repository-level tests (conformance_test.go at the module root) run
// this suite against every tree built on the LLX/SCX template - EBST, RAVL,
// Chromatic and Chromatic6 - through the benchmark registry, and against
// string-keyed instantiations of the generic trees directly.
package dicttest

import (
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/dict"
)

// TargetOf bundles a dictionary factory with its key comparator and an
// optional quiescent invariant check (for example the chromatic tree's
// weight invariants or the relaxed AVL tree's height bookkeeping).
type TargetOf[K comparable, V comparable] struct {
	// Name labels subtests.
	Name string
	// New creates an empty dictionary.
	New func() dict.Map[K, V]
	// Less orders keys; it must match the comparator the dictionary itself
	// was built with, since the model's ordered queries use it.
	Less func(a, b K) bool
	// Check, if non-nil, verifies structure-specific invariants. It is only
	// called when no operations are in flight.
	Check func(dict.Map[K, V]) error
}

// Target is the historical int64 form of TargetOf, used by tests written
// against the pre-generic dictionary stack.
type Target struct {
	// Name labels subtests.
	Name string
	// New creates an empty dictionary.
	New func() dict.IntMap
	// Check, if non-nil, verifies structure-specific invariants. It is only
	// called when no operations are in flight.
	Check func(dict.IntMap) error
}

// generic converts an int64 Target to the generic form with the natural
// ordering.
func (tgt Target) generic() TargetOf[int64, int64] {
	return TargetOf[int64, int64]{
		Name:  tgt.Name,
		New:   tgt.New,
		Less:  func(a, b int64) bool { return a < b },
		Check: tgt.Check,
	}
}

// model is the reference implementation: a Go map plus comparator-sorted
// queries.
type model[K comparable, V comparable] struct {
	m    map[K]V
	less func(a, b K) bool
}

func newModel[K comparable, V comparable](less func(a, b K) bool) *model[K, V] {
	return &model[K, V]{m: map[K]V{}, less: less}
}

func (md *model[K, V]) insert(k K, v V) (V, bool) {
	old, ok := md.m[k]
	md.m[k] = v
	return old, ok
}

func (md *model[K, V]) delete(k K) (V, bool) {
	old, ok := md.m[k]
	delete(md.m, k)
	return old, ok
}

func (md *model[K, V]) get(k K) (V, bool) {
	v, ok := md.m[k]
	return v, ok
}

func (md *model[K, V]) successor(k K) (K, V, bool) {
	var best K
	found := false
	for key := range md.m {
		if md.less(k, key) && (!found || md.less(key, best)) {
			best, found = key, true
		}
	}
	if !found {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best, md.m[best], true
}

func (md *model[K, V]) predecessor(k K) (K, V, bool) {
	var best K
	found := false
	for key := range md.m {
		if md.less(key, k) && (!found || md.less(best, key)) {
			best, found = key, true
		}
	}
	if !found {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best, md.m[best], true
}

func (md *model[K, V]) sortedKeys() []K {
	keys := make([]K, 0, len(md.m))
	for k := range md.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return md.less(keys[i], keys[j]) })
	return keys
}

// applyChecked performs one operation against both the dictionary and the
// model and fails the test on any divergence. op is interpreted modulo 5.
func applyChecked[K comparable, V comparable](t *testing.T, name string, d dict.Map[K, V], md *model[K, V], step int, op int, key K, val V) {
	t.Helper()
	om, ordered := d.(dict.OrderedMap[K, V])
	switch op % 5 {
	case 0:
		old, existed := d.Insert(key, val)
		mOld, mExisted := md.insert(key, val)
		if existed != mExisted || (existed && old != mOld) {
			t.Fatalf("%s step %d: Insert(%v,%v) = (%v,%v), model (%v,%v)", name, step, key, val, old, existed, mOld, mExisted)
		}
	case 1:
		old, existed := d.Delete(key)
		mOld, mExisted := md.delete(key)
		if existed != mExisted || (existed && old != mOld) {
			t.Fatalf("%s step %d: Delete(%v) = (%v,%v), model (%v,%v)", name, step, key, old, existed, mOld, mExisted)
		}
	case 2:
		v, ok := d.Get(key)
		mV, mOk := md.get(key)
		if ok != mOk || (ok && v != mV) {
			t.Fatalf("%s step %d: Get(%v) = (%v,%v), model (%v,%v)", name, step, key, v, ok, mV, mOk)
		}
	case 3:
		if !ordered {
			return
		}
		k, v, ok := om.Successor(key)
		mK, mV, mOk := md.successor(key)
		if ok != mOk || (ok && (k != mK || v != mV)) {
			t.Fatalf("%s step %d: Successor(%v) = (%v,%v,%v), model (%v,%v,%v)", name, step, key, k, v, ok, mK, mV, mOk)
		}
	default:
		if !ordered {
			return
		}
		k, v, ok := om.Predecessor(key)
		mK, mV, mOk := md.predecessor(key)
		if ok != mOk || (ok && (k != mK || v != mV)) {
			t.Fatalf("%s step %d: Predecessor(%v) = (%v,%v,%v), model (%v,%v,%v)", name, step, key, k, v, ok, mK, mV, mOk)
		}
	}
}

// finalCheck sweeps the model's final state, the Size report and the
// target's invariant checker.
func finalCheck[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], d dict.Map[K, V], md *model[K, V]) {
	t.Helper()
	for _, k := range md.sortedKeys() {
		want := md.m[k]
		if got, ok := d.Get(k); !ok || got != want {
			t.Fatalf("%s: final Get(%v) = (%v,%v), want (%v,true)", tgt.Name, k, got, ok, want)
		}
	}
	if s, ok := d.(dict.Sized); ok {
		if s.Size() != len(md.m) {
			t.Fatalf("%s: Size() = %d, want %d", tgt.Name, s.Size(), len(md.m))
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check: %v", tgt.Name, err)
		}
	}
}

// lcg advances the suite's deterministic pseudo-random stream (a simple LCG
// so the suite does not depend on math/rand stability across Go releases).
func lcg(state *uint64) uint64 {
	*state = *state*2862933555777941757 + 3037000493
	return *state >> 11
}

// stressSeed returns the base seed a concurrent harness mixes into its
// per-goroutine random streams: the value of the DICTTEST_SEED environment
// variable if set (decimal, or hex with an 0x prefix), otherwise a
// run-unique value derived from the wall clock. When the test fails, the
// seed is logged so the failing run's operation streams can be replayed
// exactly with DICTTEST_SEED=<seed>. (Replay reproduces the streams, not
// the goroutine interleaving; for exhaustive interleaving control see
// internal/sched.)
func stressSeed(t *testing.T) uint64 {
	t.Helper()
	seed := uint64(time.Now().UnixNano())
	if env := os.Getenv("DICTTEST_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("invalid DICTTEST_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("replay this run's operation streams with DICTTEST_SEED=%d", seed)
		}
	})
	return seed
}

// SequentialConformanceKV runs a deterministic pseudo-random operation
// sequence (including ordered queries when supported) against the model.
// key and val derive the operation's key and value from the suite's random
// stream; key controls the effective key-space density.
func SequentialConformanceKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], ops int, key func(uint64) K, val func(uint64) V, seed int64) {
	t.Helper()
	d := tgt.New()
	md := newModel[K, V](tgt.Less)
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := 0; i < ops; i++ {
		op := int(lcg(&state) % 5)
		k := key(lcg(&state))
		v := val(lcg(&state))
		applyChecked(t, tgt.Name, d, md, i, op, k, v)
	}
	finalCheck(t, tgt, d, md)
}

// SequentialConformance is the int64 wrapper around SequentialConformanceKV
// with keys drawn uniformly from [0, keyRange).
func SequentialConformance(t *testing.T, tgt Target, ops int, keyRange int64, seed int64) {
	t.Helper()
	SequentialConformanceKV(t, tgt.generic(), ops,
		func(u uint64) int64 { return int64(u % uint64(keyRange)) },
		func(u uint64) int64 { return int64(u % (1 << 30)) },
		seed)
}

// FuzzOpsKV interprets data as an operation stream - three bytes per
// operation: opcode, key selector, value selector - and checks every result
// against the model. It is intended to be driven by go test's fuzzing
// engine.
func FuzzOpsKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], key func(uint64) K, val func(uint64) V, data []byte) {
	t.Helper()
	d := tgt.New()
	md := newModel[K, V](tgt.Less)
	for i := 0; i+2 < len(data); i += 3 {
		op := int(data[i])
		k := key(uint64(data[i+1]))
		v := val(uint64(data[i+2]))
		applyChecked(t, tgt.Name, d, md, i/3, op, k, v)
	}
	finalCheck(t, tgt, d, md)
}

// FuzzOps is the int64 wrapper around FuzzOpsKV: keys and values are the
// raw selector bytes.
func FuzzOps(t *testing.T, tgt Target, data []byte) {
	t.Helper()
	FuzzOpsKV(t, tgt.generic(),
		func(u uint64) int64 { return int64(u) },
		func(u uint64) int64 { return int64(u) },
		data)
}

// ConcurrentStressKV applies a mixed workload from several goroutines over
// per-goroutine disjoint key spaces (so the final per-key state is known
// regardless of interleaving), sprinkles in ordered queries whose results
// must satisfy their contract, and runs the invariant checker at
// quiescence. key derives goroutine g's keys from the random stream and
// must return disjoint key sets for distinct g.
func ConcurrentStressKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], goroutines, opsPerG int, key func(g int, u uint64) K, val func(uint64) V) {
	t.Helper()
	checkGoroutineLeaks(t)
	seed := stressSeed(t)
	d := tgt.New()
	om, ordered := d.(dict.OrderedMap[K, V])
	type final = map[K]V
	finals := make([]final, goroutines)
	deleted := make([]map[K]bool, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- g }()
			state := seed + uint64(g)*0x9e3779b97f4a7c15 + 1
			f := final{}
			dead := map[K]bool{}
			for i := 0; i < opsPerG; i++ {
				k := key(g, lcg(&state))
				switch lcg(&state) % 4 {
				case 0, 1:
					v := val(lcg(&state))
					d.Insert(k, v)
					f[k] = v
					delete(dead, k)
				case 2:
					d.Delete(k)
					delete(f, k)
					dead[k] = true
				default:
					if ordered {
						if sk, _, ok := om.Successor(k); ok && !tgt.Less(k, sk) {
							t.Errorf("%s: Successor(%v) returned %v", tgt.Name, k, sk)
							return
						}
					} else {
						d.Get(k)
					}
				}
			}
			finals[g] = f
			deleted[g] = dead
		}(g)
	}
	for range goroutines {
		<-done
	}
	if t.Failed() {
		return
	}
	for g := range finals {
		for k, want := range finals[g] {
			v, ok := d.Get(k)
			if !ok || v != want {
				t.Fatalf("%s: goroutine %d key %v = (%v,%v), want (%v,true)", tgt.Name, g, k, v, ok, want)
			}
		}
		for k := range deleted[g] {
			if v, ok := d.Get(k); ok {
				t.Fatalf("%s: goroutine %d key %v present with %v, want deleted", tgt.Name, g, k, v)
			}
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check at quiescence: %v", tgt.Name, err)
		}
	}
}

// ConcurrentStress is the int64 wrapper around ConcurrentStressKV: goroutine
// g owns the key range [g*keysPerG, (g+1)*keysPerG).
func ConcurrentStress(t *testing.T, tgt Target, goroutines, opsPerG int, keysPerG int64) {
	t.Helper()
	ConcurrentStressKV(t, tgt.generic(), goroutines, opsPerG,
		func(g int, u uint64) int64 { return int64(g)*keysPerG + int64(u%uint64(keysPerG)) },
		func(u uint64) int64 { return int64(u % (1 << 20)) })
}

// HotKeyStressKV hammers ONE key: writers overwrite it (Insert on a present
// key), a churn goroutine concurrently inserts and deletes that same key,
// and a neighbour goroutine inserts and deletes the keys around it (which,
// in the template trees, forces the hot leaf through sibling-promotion
// copies and rebalancing copies - exactly the machinery an in-place
// overwrite must survive). It asserts:
//
//   - every value ever observed for the hot key (by a Get, or as the
//     previous value returned by an overwrite or delete) is one that some
//     writer actually published - no torn, recycled or out-of-thin-air
//     values;
//   - no lost finalization: after the workload quiesces and a final
//     drain-delete of the hot key succeeds, the key stays absent - an
//     overwrite that raced with a concurrent delete must never resurrect
//     the value;
//   - the structure's invariant checker passes at quiescence.
//
// val must return a distinct value for every (writer, i) pair and must not
// collide with churnVal; both are "published" values. writer indices 0..
// writers-1 are the overwriters.
func HotKeyStressKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], writers, overwritesPerWriter int, hot K, neighbors []K, val func(writer, i int) V, churnVal V) {
	t.Helper()
	checkGoroutineLeaks(t)
	d := tgt.New()

	// The set of values that may legitimately be associated with the hot key
	// at any point, fixed before the workload starts.
	allowed := map[V]bool{churnVal: true}
	for w := 0; w < writers; w++ {
		for i := 0; i < overwritesPerWriter; i++ {
			v := val(w, i)
			if allowed[v] {
				t.Fatalf("val(%d,%d) collides with an earlier published value", w, i)
			}
			allowed[v] = true
		}
	}

	d.Insert(hot, churnVal)
	checkObserved := func(who string, v V, ok bool) {
		if ok && !allowed[v] {
			t.Errorf("%s: observed value %v for the hot key that no writer published", who, v)
		}
	}

	var overwriters, churners sync.WaitGroup
	stop := make(chan struct{})
	// Overwriters: Insert on the (usually) present hot key.
	for w := 0; w < writers; w++ {
		overwriters.Add(1)
		go func(w int) {
			defer overwriters.Done()
			for i := 0; i < overwritesPerWriter; i++ {
				old, existed := d.Insert(hot, val(w, i))
				checkObserved("overwriter", old, existed)
				if i%16 == 0 {
					v, ok := d.Get(hot)
					checkObserved("reader", v, ok)
				}
			}
		}(w)
	}
	// Churn: insert and delete the hot key itself, so overwrites race with
	// the key's finalization. Runs until the overwriters are done.
	churners.Add(1)
	go func() {
		defer churners.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				old, existed := d.Delete(hot)
				checkObserved("deleter", old, existed)
			} else {
				old, existed := d.Insert(hot, churnVal)
				checkObserved("churn-inserter", old, existed)
			}
		}
	}()
	// Neighbours: churn the keys around the hot key, forcing the hot leaf
	// through copies (sibling promotion on delete, rebalancing steps).
	churners.Add(1)
	go func() {
		defer churners.Done()
		var zero V
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := neighbors[i%len(neighbors)]
			if (i/len(neighbors))%2 == 0 {
				d.Insert(k, zero)
			} else {
				d.Delete(k)
			}
		}
	}()

	overwriters.Wait()
	close(stop)
	churners.Wait()

	// Quiescent drain: delete the hot key until it reports absent. Each
	// successful delete must return a published value; after the drain the
	// key must stay absent - a resurrected value here means an overwrite
	// re-linked a finalized leaf.
	for {
		old, existed := d.Delete(hot)
		if !existed {
			break
		}
		checkObserved("drain-deleter", old, existed)
	}
	// At quiescence one Get would do; the repeats are deliberate cheap
	// paranoia against a delayed re-link surfacing on a later read path
	// (they cost microseconds against a structure this size).
	for i := 0; i < 100; i++ {
		if v, ok := d.Get(hot); ok {
			t.Fatalf("hot key resurrected after a successful quiescent delete: value %v", v)
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check at quiescence: %v", tgt.Name, err)
		}
	}
}

// HotKeyStress is the int64 wrapper around HotKeyStressKV: the hot key sits
// in the middle of a small neighbourhood, writer w's i'th value is
// w*2^32 + i + 1 and the churn value is -1 (distinct from every writer
// value).
func HotKeyStress(t *testing.T, tgt Target, writers, overwritesPerWriter int) {
	t.Helper()
	const hot = int64(1 << 20)
	neighbors := []int64{hot - 4, hot - 3, hot - 2, hot - 1, hot + 1, hot + 2, hot + 3, hot + 4}
	HotKeyStressKV(t, tgt.generic(), writers, overwritesPerWriter, hot, neighbors,
		func(w, i int) int64 { return int64(w)<<32 + int64(i) + 1 },
		int64(-1))
}

// ChurnStressKV is the reclamation torture test: writers insert and delete
// keys from ONE shared window as fast as possible - so every node backing
// those keys is retired and recycled over and over - while reader goroutines
// continuously walk the window with Successor chains and RangeScan. The
// dictionary contains only window keys, which gives the readers sharp
// assertions against use-after-recycle bugs:
//
//   - every key a walk or scan returns must be a window key (a foreign key
//     means a reader followed a recycled node into a different part of some
//     tree's lifetime);
//   - every value returned for a window key must be one some writer actually
//     published (a stale or torn value means a node was reused while the
//     reader still held it);
//   - Successor results must move strictly forward and RangeScan must yield
//     strictly ascending keys (a cycle or regression means a reader's
//     traversal crossed a recycled pointer).
//
// Under the reclaimcheck build tag the template trees additionally poison
// recycled nodes with a generation counter and the read paths assert that no
// node changes generation mid-snapshot, converting "reader held a recycled
// node" from a probabilistic value-corruption signal into a deterministic
// panic. Run the test under -race as well: the epoch grace period is what
// makes recycling a node's fields race-free, so any hole in it surfaces as a
// race report here.
//
// window must be sorted ascending by tgt.Less and contain no duplicates. val
// must return a distinct value for every (writer, i) pair.
func ChurnStressKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], writers, opsPerWriter, readers int, window []K, val func(writer, i int) V) {
	t.Helper()
	checkGoroutineLeaks(t)
	seed := stressSeed(t)
	d := tgt.New()
	om, ordered := d.(dict.OrderedMap[K, V])
	rng, ranged := d.(dict.Ranger[K, V])

	allowed := make(map[V]bool, writers*opsPerWriter)
	for w := 0; w < writers; w++ {
		for i := 0; i < opsPerWriter; i++ {
			v := val(w, i)
			if allowed[v] {
				t.Fatalf("val(%d,%d) collides with an earlier published value", w, i)
			}
			allowed[v] = true
		}
	}
	inWindow := make(map[K]bool, len(window))
	for i, k := range window {
		if i > 0 && !tgt.Less(window[i-1], k) {
			t.Fatalf("window must be sorted ascending without duplicates (index %d)", i)
		}
		inWindow[k] = true
	}
	lo, hi := window[0], window[len(window)-1]

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Writers: all hammer the same window, so a key's leaf is deleted by one
	// goroutine while another re-inserts it and a third walks past it.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			state := seed + uint64(w)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
			for i := 0; i < opsPerWriter; i++ {
				k := window[lcg(&state)%uint64(len(window))]
				if lcg(&state)&1 == 0 {
					d.Insert(k, val(w, i))
				} else {
					d.Delete(k)
				}
			}
		}(w)
	}
	// Readers: walk the window end to end, over and over, until the writers
	// finish. Each full pass revisits memory the writers have recycled many
	// times since the pass began.
	checkEntry := func(who string, k K, v V) bool {
		if !inWindow[k] {
			t.Errorf("%s: returned key %v outside the churn window", who, k)
			return false
		}
		if !allowed[v] {
			t.Errorf("%s: observed value %v for key %v that no writer published", who, v, k)
			return false
		}
		return true
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Point probes on the window ends keep plain Get in the mix.
				for _, k := range [2]K{lo, hi} {
					if v, ok := d.Get(k); ok && !checkEntry("get", k, v) {
						return
					}
				}
				if ordered {
					// Successor chain across the window, starting from its
					// smallest key. Each step must move strictly forward and
					// stay inside the window until it leaves the top end.
					prev := lo
					for steps := 0; steps <= len(window); steps++ {
						k, v, ok := om.Successor(prev)
						if !ok || tgt.Less(hi, k) {
							break
						}
						if !tgt.Less(prev, k) {
							t.Errorf("successor walk: Successor(%v) returned %v, not strictly greater", prev, k)
							return
						}
						if !checkEntry("successor walk", k, v) {
							return
						}
						prev = k
					}
				}
				if ranged {
					first := true
					var last K
					rng.RangeScan(lo, hi, func(k K, v V) bool {
						if !first && !tgt.Less(last, k) {
							t.Errorf("range scan: key %v after %v, not strictly ascending", k, last)
							return false
						}
						first, last = false, k
						return checkEntry("range scan", k, v)
					})
				}
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if t.Failed() {
		return
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check at quiescence: %v", tgt.Name, err)
		}
	}
}

// ChurnStress is the int64 wrapper around ChurnStressKV: a 64-key window of
// consecutive keys (consecutive so leaves in the window are siblings and
// deletes constantly promote and retire each other's nodes), writer w's i'th
// value is w*2^32 + i + 1.
func ChurnStress(t *testing.T, tgt Target, writers, opsPerWriter int) {
	t.Helper()
	const base = int64(1 << 20)
	window := make([]int64, 64)
	for i := range window {
		window[i] = base + int64(i)
	}
	ChurnStressKV(t, tgt.generic(), writers, opsPerWriter, 2, window,
		func(w, i int) int64 { return int64(w)<<32 + int64(i) + 1 })
}
