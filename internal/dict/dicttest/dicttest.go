// Package dicttest provides a reusable conformance, fuzz and stress suite
// for dict.Map / dict.OrderedMap implementations, in the spirit of the
// fuzz-vs-model testing used for classic balanced-tree libraries: every
// operation is mirrored against a plain Go map (plus sorted keys for the
// ordered queries), and a structure-specific invariant checker runs once
// the structure is quiescent.
//
// The repository-level tests (conformance_test.go at the module root) run
// this suite against every tree built on the LLX/SCX template - EBST, RAVL,
// Chromatic and Chromatic6 - through the benchmark registry.
package dicttest

import (
	"sort"
	"testing"

	"repro/internal/dict"
)

// Target bundles a dictionary factory with an optional quiescent invariant
// check (for example the chromatic tree's weight invariants or the relaxed
// AVL tree's height bookkeeping).
type Target struct {
	// Name labels subtests.
	Name string
	// New creates an empty dictionary.
	New func() dict.Map
	// Check, if non-nil, verifies structure-specific invariants. It is only
	// called when no operations are in flight.
	Check func(dict.Map) error
}

// model is the reference implementation: a Go map plus sorted-key queries.
type model struct {
	m map[int64]int64
}

func newModel() *model { return &model{m: map[int64]int64{}} }

func (md *model) insert(k, v int64) (int64, bool) {
	old, ok := md.m[k]
	md.m[k] = v
	return old, ok
}

func (md *model) delete(k int64) (int64, bool) {
	old, ok := md.m[k]
	delete(md.m, k)
	return old, ok
}

func (md *model) get(k int64) (int64, bool) {
	v, ok := md.m[k]
	return v, ok
}

func (md *model) successor(k int64) (int64, int64, bool) {
	best, found := int64(0), false
	for key := range md.m {
		if key > k && (!found || key < best) {
			best, found = key, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return best, md.m[best], true
}

func (md *model) predecessor(k int64) (int64, int64, bool) {
	best, found := int64(0), false
	for key := range md.m {
		if key < k && (!found || key > best) {
			best, found = key, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return best, md.m[best], true
}

func (md *model) sortedKeys() []int64 {
	keys := make([]int64, 0, len(md.m))
	for k := range md.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// applyChecked performs one operation against both the dictionary and the
// model and fails the test on any divergence. op is interpreted modulo 5.
func applyChecked(t *testing.T, name string, d dict.Map, md *model, step int, op int, key, val int64) {
	t.Helper()
	om, ordered := d.(dict.OrderedMap)
	switch op % 5 {
	case 0:
		old, existed := d.Insert(key, val)
		mOld, mExisted := md.insert(key, val)
		if existed != mExisted || (existed && old != mOld) {
			t.Fatalf("%s step %d: Insert(%d,%d) = (%d,%v), model (%d,%v)", name, step, key, val, old, existed, mOld, mExisted)
		}
	case 1:
		old, existed := d.Delete(key)
		mOld, mExisted := md.delete(key)
		if existed != mExisted || (existed && old != mOld) {
			t.Fatalf("%s step %d: Delete(%d) = (%d,%v), model (%d,%v)", name, step, key, old, existed, mOld, mExisted)
		}
	case 2:
		v, ok := d.Get(key)
		mV, mOk := md.get(key)
		if ok != mOk || (ok && v != mV) {
			t.Fatalf("%s step %d: Get(%d) = (%d,%v), model (%d,%v)", name, step, key, v, ok, mV, mOk)
		}
	case 3:
		if !ordered {
			return
		}
		k, v, ok := om.Successor(key)
		mK, mV, mOk := md.successor(key)
		if ok != mOk || (ok && (k != mK || v != mV)) {
			t.Fatalf("%s step %d: Successor(%d) = (%d,%d,%v), model (%d,%d,%v)", name, step, key, k, v, ok, mK, mV, mOk)
		}
	default:
		if !ordered {
			return
		}
		k, v, ok := om.Predecessor(key)
		mK, mV, mOk := md.predecessor(key)
		if ok != mOk || (ok && (k != mK || v != mV)) {
			t.Fatalf("%s step %d: Predecessor(%d) = (%d,%d,%v), model (%d,%d,%v)", name, step, key, k, v, ok, mK, mV, mOk)
		}
	}
}

// finalCheck sweeps the model's final state, the Size report and the
// target's invariant checker.
func finalCheck(t *testing.T, tgt Target, d dict.Map, md *model) {
	t.Helper()
	for _, k := range md.sortedKeys() {
		want := md.m[k]
		if got, ok := d.Get(k); !ok || got != want {
			t.Fatalf("%s: final Get(%d) = (%d,%v), want (%d,true)", tgt.Name, k, got, ok, want)
		}
	}
	if s, ok := d.(dict.Sized); ok {
		if s.Size() != len(md.m) {
			t.Fatalf("%s: Size() = %d, want %d", tgt.Name, s.Size(), len(md.m))
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check: %v", tgt.Name, err)
		}
	}
}

// SequentialConformance runs a deterministic pseudo-random operation
// sequence (including ordered queries when supported) against the model.
func SequentialConformance(t *testing.T, tgt Target, ops int, keyRange int64, seed int64) {
	t.Helper()
	d := tgt.New()
	md := newModel()
	// Simple deterministic LCG so the suite does not depend on math/rand
	// stability across Go releases.
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func() uint64 {
		state = state*2862933555777941757 + 3037000493
		return state >> 11
	}
	for i := 0; i < ops; i++ {
		op := int(next() % 5)
		key := int64(next() % uint64(keyRange))
		val := int64(next() % (1 << 30))
		applyChecked(t, tgt.Name, d, md, i, op, key, val)
	}
	finalCheck(t, tgt, d, md)
}

// FuzzOps interprets data as an operation stream - three bytes per
// operation: opcode, key, value - and checks every result against the
// model. It is intended to be driven by go test's fuzzing engine.
func FuzzOps(t *testing.T, tgt Target, data []byte) {
	t.Helper()
	d := tgt.New()
	md := newModel()
	for i := 0; i+2 < len(data); i += 3 {
		op := int(data[i])
		key := int64(data[i+1])
		val := int64(data[i+2])
		applyChecked(t, tgt.Name, d, md, i/3, op, key, val)
	}
	finalCheck(t, tgt, d, md)
}

// ConcurrentStress applies a mixed workload from several goroutines over
// per-goroutine disjoint key ranges (so the final per-key state is known
// regardless of interleaving), sprinkles in ordered queries whose results
// must satisfy their contract, and runs the invariant checker at
// quiescence.
func ConcurrentStress(t *testing.T, tgt Target, goroutines, opsPerG int, keysPerG int64) {
	t.Helper()
	d := tgt.New()
	om, ordered := d.(dict.OrderedMap)
	type final = map[int64]int64
	finals := make([]final, goroutines)
	done := make(chan int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- g }()
			state := uint64(g)*0x9e3779b97f4a7c15 + 1
			next := func() uint64 {
				state = state*2862933555777941757 + 3037000493
				return state >> 11
			}
			f := final{}
			base := int64(g) * keysPerG
			for i := 0; i < opsPerG; i++ {
				key := base + int64(next()%uint64(keysPerG))
				switch next() % 4 {
				case 0, 1:
					val := int64(next() % (1 << 20))
					d.Insert(key, val)
					f[key] = val
				case 2:
					d.Delete(key)
					f[key] = -1
				default:
					if ordered {
						if k, _, ok := om.Successor(key); ok && k <= key {
							t.Errorf("%s: Successor(%d) returned %d", tgt.Name, key, k)
							return
						}
					} else {
						d.Get(key)
					}
				}
			}
			finals[g] = f
		}(g)
	}
	for range goroutines {
		<-done
	}
	if t.Failed() {
		return
	}
	for g, f := range finals {
		for key, want := range f {
			v, ok := d.Get(key)
			if want == -1 {
				if ok {
					t.Fatalf("%s: goroutine %d key %d present, want deleted", tgt.Name, g, key)
				}
			} else if !ok || v != want {
				t.Fatalf("%s: goroutine %d key %d = (%d,%v), want (%d,true)", tgt.Name, g, key, v, ok, want)
			}
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check at quiescence: %v", tgt.Name, err)
		}
	}
}
