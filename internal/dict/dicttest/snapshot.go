package dicttest

import (
	"sync"
	"testing"

	"repro/internal/dict"
	"repro/internal/epoch"
)

// SnapshotSuiteKV is the conformance suite for dict.Snapshotter
// implementations. It skips (not fails) when the target does not implement
// Snapshotter, and gates the frozen-view assertions on the view reporting
// Consistent() — an adapter or a noepoch build legitimately serves weakly
// consistent live views, for which only the self-consistency checks apply.
//
// Three properties are exercised:
//
//  1. Frozen views never observe post-snapshot updates: a snapshot taken
//     between two heavy mutation rounds (inserts, deletes and in-place
//     overwrites, the last being the path a snapshot must disable) must keep
//     reporting exactly the pre-mutation model through Get, Ascend and
//     RangeScan, no matter how often it is re-read.
//  2. Snapshots are consistent cuts under concurrent churn: each writer
//     inserts its keys in a fixed order and then deletes them in that order,
//     so any consistent cut shows a contiguous run of each writer's keys;
//     a gap proves the view mixed states. Overwrite frozenness is checked by
//     re-reading a captured key while a writer keeps overwriting it.
//  3. SnapshotDiff (and the structural Differ fast path under the hood)
//     reports exactly the keys whose presence or value changed between two
//     snapshots, in ascending order.
func SnapshotSuiteKV[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], key func(uint64) K, val func(uint64) V) {
	t.Helper()
	if _, ok := tgt.New().(dict.Snapshotter[K, V]); !ok {
		t.Skipf("%s does not implement dict.Snapshotter", tgt.Name)
	}
	t.Run("Frozen", func(t *testing.T) { snapshotFrozen(t, tgt, key, val) })
	t.Run("ConsistentCut", func(t *testing.T) { snapshotConsistentCut(t, tgt, key, val) })
	t.Run("Diff", func(t *testing.T) { snapshotDiff(t, tgt, key, val) })
	t.Run("HoldChurnStress", func(t *testing.T) { snapshotHoldChurn(t, tgt, key, val) })
}

// snapshotHoldChurn is the reclamation side of the snapshot contract: while
// a snapshot is held, every node it can reach must be PARKED when retired,
// never recycled - so a frozen walk stays bit-exact no matter how hard
// concurrent churn recycles the live tree's memory. Under -tags reclaimcheck
// the trees poison recycled nodes with generation counters, which turns "a
// reachable node was recycled under the snapshot" from a probabilistic
// wrong-value signal into a deterministic panic; under -race the same walk
// catches the recycle as a data race. After the churn quiesces, draining
// reclamation with the snapshot still held must leave retirees parked, and
// releasing the snapshot must let them recycle.
func snapshotHoldChurn[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], key func(uint64) K, val func(uint64) V) {
	t.Helper()
	d := tgt.New()
	sn := d.(dict.Snapshotter[K, V])
	md := newModel[K, V](tgt.Less)
	const window = 512
	for i := 0; i < window; i++ {
		k := key(uint64(i))
		v := val(uint64(i))
		d.Insert(k, v)
		md.insert(k, v)
	}
	snap := sn.Snapshot()
	defer snap.Release()
	if !snap.Consistent() {
		t.Skipf("%s serves weakly consistent views; hold-churn assertions do not apply", tgt.Name)
	}

	// Writers churn the captured window flat out: every delete retires the
	// key's leaf (and internal nodes around it), all of which the snapshot
	// still reaches.
	const writers = 4
	const opsPerWriter = 15000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			state := uint64(w)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
			for i := 0; i < opsPerWriter; i++ {
				k := key(lcg(&state) % window)
				if lcg(&state)&1 == 0 {
					d.Delete(k)
				} else {
					d.Insert(k, val(lcg(&state)))
				}
			}
		}(w)
	}
	// Meanwhile, walk the held snapshot end to end, repeatedly: every key,
	// every value, exactly as captured.
	churnDone := make(chan struct{})
	go func() { wg.Wait(); close(churnDone) }()
	for {
		viewEqualsModel(t, tgt.Name, snap, md)
		select {
		case <-churnDone:
		default:
			continue
		}
		break
	}
	// One more full pass at quiescence.
	viewEqualsModel(t, tgt.Name, snap, md)

	// With the snapshot still held, draining reclamation must park the
	// retirees it covers instead of recycling them...
	if dr, ok := d.(interface{ DrainReclaim() int64 }); ok && epoch.Enabled {
		dr.DrainReclaim()
		dr.DrainReclaim()
		if epoch.ParkedCount() == 0 {
			t.Errorf("%s: no retirees parked while a snapshot covering heavy churn was held", tgt.Name)
		}
		// ...and releasing it must let them through.
		snap.Release()
		dr.DrainReclaim()
		dr.DrainReclaim()
		if p := epoch.ParkedCount(); p != 0 {
			t.Errorf("%s: %d retirees still parked after the snapshot released", tgt.Name, p)
		}
	}
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check at quiescence: %v", tgt.Name, err)
		}
	}
}

// viewEqualsModel checks that the view reports exactly the model's contents
// through Get, Ascend and a full-range RangeScan.
func viewEqualsModel[K comparable, V comparable](t *testing.T, name string, view dict.SnapshotView[K, V], md *model[K, V]) {
	t.Helper()
	for _, k := range md.sortedKeys() {
		want := md.m[k]
		if got, ok := view.Get(k); !ok || got != want {
			t.Fatalf("%s: snapshot Get(%v) = (%v,%v), want (%v,true)", name, k, got, ok, want)
		}
	}
	wantKeys := md.sortedKeys()
	i := 0
	n := view.Ascend(func(k K, v V) bool {
		if i >= len(wantKeys) {
			t.Fatalf("%s: snapshot Ascend yielded extra key %v", name, k)
		}
		if k != wantKeys[i] || v != md.m[k] {
			t.Fatalf("%s: snapshot Ascend[%d] = (%v,%v), want (%v,%v)", name, i, k, v, wantKeys[i], md.m[wantKeys[i]])
		}
		i++
		return true
	})
	if n != len(wantKeys) || i != len(wantKeys) {
		t.Fatalf("%s: snapshot Ascend visited %d keys, want %d", name, n, len(wantKeys))
	}
	if len(wantKeys) > 0 {
		lo, hi := wantKeys[0], wantKeys[len(wantKeys)-1]
		i = 0
		view.RangeScan(lo, hi, func(k K, v V) bool {
			if i >= len(wantKeys) || k != wantKeys[i] {
				t.Fatalf("%s: snapshot RangeScan diverged at index %d (got key %v)", name, i, k)
			}
			i++
			return true
		})
		if i != len(wantKeys) {
			t.Fatalf("%s: snapshot RangeScan visited %d keys, want %d", name, i, len(wantKeys))
		}
	}
}

func snapshotFrozen[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], key func(uint64) K, val func(uint64) V) {
	t.Helper()
	d := tgt.New()
	sn := d.(dict.Snapshotter[K, V])
	md := newModel[K, V](tgt.Less)
	state := uint64(0x5eed)
	for i := 0; i < 2000; i++ {
		k := key(lcg(&state))
		v := val(lcg(&state))
		d.Insert(k, v)
		md.insert(k, v)
	}
	snap := sn.Snapshot()
	defer snap.Release()
	if !snap.Consistent() {
		t.Skipf("%s serves weakly consistent views; frozen assertions do not apply", tgt.Name)
	}
	// Mutate hard: overwrite every captured key (exercising the disabled
	// in-place fast path), delete half of them, and insert fresh keys.
	for i, k := range md.sortedKeys() {
		if i%2 == 0 {
			d.Insert(k, val(lcg(&state)))
		} else {
			d.Delete(k)
		}
	}
	for i := 0; i < 2000; i++ {
		d.Insert(key(lcg(&state)), val(lcg(&state)))
	}
	// Re-read the frozen view several times: it must keep answering with the
	// pre-mutation model, bit for bit.
	for round := 0; round < 3; round++ {
		viewEqualsModel(t, tgt.Name, snap, md)
	}
	// A snapshot taken now sees the mutated state, not the frozen one.
	after := sn.Snapshot()
	defer after.Release()
	if after.Version() <= snap.Version() {
		t.Fatalf("%s: later snapshot version %d not greater than %d", tgt.Name, after.Version(), snap.Version())
	}
}

func snapshotConsistentCut[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], key func(uint64) K, val func(uint64) V) {
	t.Helper()
	d := tgt.New()
	sn := d.(dict.Snapshotter[K, V])
	const writers = 4
	const keysPerWriter = 256
	// Writer g owns keys key(g*keysPerWriter + i); it inserts them in order
	// i = 0..keysPerWriter-1, then deletes them in the same order. Any
	// consistent cut therefore shows writer g holding exactly the contiguous
	// run [deleted_g, inserted_g).
	keyOf := func(g, i int) K { return key(uint64(g*keysPerWriter + i)) }
	// The hot key is overwritten continuously; a frozen view must pin one
	// published value for it. Values are derived from a reserved selector
	// range so they never collide with writer values.
	hot := key(uint64(writers*keysPerWriter + 1))
	d.Insert(hot, val(0))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keysPerWriter; i++ {
				d.Insert(keyOf(g, i), val(uint64(i)))
			}
			for i := 0; i < keysPerWriter; i++ {
				d.Delete(keyOf(g, i))
			}
		}(g)
	}
	// The overwriter publishes a BOUNDED number of values: a frozen view's
	// read of the hot key walks the version chain the overwrites build behind
	// it, so an unbounded overwriter racing a held snapshot makes each probe
	// walk an ever-longer chain (the standard MVCC hold-snapshots-briefly
	// caveat) and the test never finishes under -race.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(1); i <= 20000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d.Insert(hot, val(i))
		}
	}()

	for round := 0; round < 50; round++ {
		snap := sn.Snapshot()
		if !snap.Consistent() {
			snap.Release()
			break
		}
		// Contiguity: for each writer, the set of its keys present in the
		// snapshot must be one contiguous run of the insertion order.
		for g := 0; g < writers; g++ {
			present := make([]bool, keysPerWriter)
			for i := 0; i < keysPerWriter; i++ {
				_, present[i] = snap.Get(keyOf(g, i))
			}
			first, last := -1, -1
			for i, p := range present {
				if p {
					if first < 0 {
						first = i
					}
					last = i
				}
			}
			for i := first; first >= 0 && i <= last; i++ {
				if !present[i] {
					t.Fatalf("%s: snapshot is not a consistent cut: writer %d key %d absent inside present run [%d,%d]", tgt.Name, g, i, first, last)
				}
			}
		}
		// Overwrite frozenness: the hot key's captured value must not move
		// while the overwriter keeps publishing new ones.
		v0, ok0 := snap.Get(hot)
		for probe := 0; probe < 20; probe++ {
			if v, ok := snap.Get(hot); ok != ok0 || v != v0 {
				t.Fatalf("%s: frozen view's hot key moved: (%v,%v) then (%v,%v)", tgt.Name, v0, ok0, v, ok)
			}
		}
		snap.Release()
	}
	close(stop)
	wg.Wait()
	if tgt.Check != nil {
		if err := tgt.Check(d); err != nil {
			t.Fatalf("%s: invariant check at quiescence: %v", tgt.Name, err)
		}
	}
}

func snapshotDiff[K comparable, V comparable](t *testing.T, tgt TargetOf[K, V], key func(uint64) K, val func(uint64) V) {
	t.Helper()
	d := tgt.New()
	sn := d.(dict.Snapshotter[K, V])
	md := newModel[K, V](tgt.Less)
	state := uint64(0xd1ff)
	for i := 0; i < 1500; i++ {
		k := key(lcg(&state))
		v := val(lcg(&state))
		d.Insert(k, v)
		md.insert(k, v)
	}
	oldSnap := sn.Snapshot()
	defer oldSnap.Release()
	if !oldSnap.Consistent() {
		t.Skipf("%s serves weakly consistent views; diff assertions do not apply", tgt.Name)
	}
	oldModel := map[K]V{}
	for k, v := range md.m {
		oldModel[k] = v
	}
	// Mutate: some deletes, some overwrites (with a guaranteed-different
	// value), some fresh inserts.
	for i, k := range md.sortedKeys() {
		switch i % 3 {
		case 0:
			d.Delete(k)
			md.delete(k)
		case 1:
			nv := val(lcg(&state))
			if nv == oldModel[k] {
				continue
			}
			d.Insert(k, nv)
			md.insert(k, nv)
		}
	}
	for i := 0; i < 1500; i++ {
		k := key(lcg(&state))
		v := val(lcg(&state))
		d.Insert(k, v)
		md.insert(k, v)
	}
	newSnap := sn.Snapshot()
	defer newSnap.Release()

	// The expected diff, from the two model states.
	type change struct {
		oldV, newV   V
		oldOK, newOK bool
	}
	want := map[K]change{}
	for k, v := range oldModel {
		nv, ok := md.m[k]
		if !ok {
			want[k] = change{oldV: v, oldOK: true}
		} else if nv != v {
			want[k] = change{oldV: v, oldOK: true, newV: nv, newOK: true}
		}
	}
	for k, v := range md.m {
		if _, ok := oldModel[k]; !ok {
			want[k] = change{newV: v, newOK: true}
		}
	}

	eq := func(a, b V) bool { return a == b }
	got := map[K]change{}
	var prev K
	first := true
	dict.SnapshotDiff(tgt.Less, eq, oldSnap, newSnap, func(k K, oldV V, oldOK bool, newV V, newOK bool) bool {
		if !first && !tgt.Less(prev, k) {
			t.Fatalf("%s: diff keys not strictly ascending: %v after %v", tgt.Name, k, prev)
		}
		first, prev = false, k
		if _, dup := got[k]; dup {
			t.Fatalf("%s: diff reported key %v twice", tgt.Name, k)
		}
		got[k] = change{oldV: oldV, newV: newV, oldOK: oldOK, newOK: newOK}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("%s: diff reported %d changes, want %d", tgt.Name, len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok || g != w {
			t.Fatalf("%s: diff for key %v = %+v (reported %v), want %+v", tgt.Name, k, g, ok, w)
		}
	}
}

// SnapshotSuite is the int64 wrapper around SnapshotSuiteKV with keys drawn
// from a moderate range (dense enough to exercise overwrites) and distinct
// values.
func SnapshotSuite(t *testing.T, tgt Target) {
	t.Helper()
	SnapshotSuiteKV(t, tgt.generic(),
		func(u uint64) int64 { return int64(u % (1 << 14)) },
		func(u uint64) int64 { return int64(u) })
}
