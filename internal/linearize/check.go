package linearize

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// register is the sequential state of a single key: the model every per-key
// subhistory is checked against (the per-key projection of the sequential
// map semantics; see the package comment for the compositionality argument
// and the seqrbt cross-validation).
type register[V comparable] struct {
	present bool
	val     V
}

// step applies op to the state. It returns the successor state and whether
// the op's recorded output is what the sequential specification produces
// from st.
func step[K comparable, V comparable](st register[V], op Op[K, V]) (register[V], bool) {
	switch op.Kind {
	case KindGet:
		return st, outputOK(st, op.Out, op.OutOK)
	case KindScanStep:
		// A scan step asserts the pair was current at its linearization
		// point: key present, value as observed.
		return st, st.present && op.Out == st.val
	case KindInsert:
		if !outputOK(st, op.Out, op.OutOK) {
			return st, false
		}
		return register[V]{present: true, val: op.Val}, true
	case KindDelete:
		if !outputOK(st, op.Out, op.OutOK) {
			return st, false
		}
		return register[V]{}, true
	default:
		return st, false
	}
}

// outputOK checks a (value, present) result against the state: present keys
// return their value, absent keys return (zero, false) — the dict contract.
func outputOK[V comparable](st register[V], out V, ok bool) bool {
	if ok != st.present {
		return false
	}
	if st.present {
		return out == st.val
	}
	var zero V
	return out == zero
}

// expect describes the output the specification requires from st, for
// counterexample reports.
func expect[V comparable](st register[V], kind Kind) string {
	switch kind {
	case KindScanStep:
		if !st.present {
			return "key absent: a scan step must observe a present pair"
		}
		return fmt.Sprintf("value %v (the current value)", st.val)
	default:
		if !st.present {
			return "(zero, false): key absent"
		}
		return fmt.Sprintf("(%v, true): key present", st.val)
	}
}

// Counterexample is one non-linearizable per-key subhistory, minimized and
// formatted for humans.
type Counterexample[K comparable, V comparable] struct {
	// Key is the key whose subhistory has no linearization.
	Key K
	// Ops is the minimal failing core: the subhistory cut at the earliest
	// response stamp at which the outputs became unexplainable. Operations
	// invoked before the cut but still running at it are included as
	// pending (see Completed) — a pending update may take effect with an
	// as-yet-unconstrained result, so the core never blames a response
	// that an omitted overlapping operation would explain.
	Ops []Op[K, V]
	// Completed[i] reports whether Ops[i] had returned at the cut. A false
	// entry is a pending update: the search may linearize its effect but
	// does not hold it to its (later) recorded output.
	Completed []bool
	// Best is the longest linearizable ordering the search found, as
	// indices into Ops.
	Best []int
	// Report is the human-readable explanation.
	Report string
}

// Result is the outcome of Check.
type Result[K comparable, V comparable] struct {
	// Violations holds one counterexample per key whose subhistory is not
	// linearizable. Empty means the history is linearizable.
	Violations []Counterexample[K, V]
}

// OK reports whether the history was linearizable.
func (r Result[K, V]) OK() bool { return len(r.Violations) == 0 }

// Report concatenates the violations' reports ("linearizable" if none).
func (r Result[K, V]) Report() string {
	if r.OK() {
		return "linearizable"
	}
	parts := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		parts[i] = v.Report
	}
	return strings.Join(parts, "\n")
}

// Check searches for a linearization of h against the sequential map
// specification, decomposed per key (see the package comment). It returns a
// result carrying one minimized counterexample for every key that has no
// linearization.
func Check[K comparable, V comparable](h History[K, V]) Result[K, V] {
	byKey := make(map[K][]Op[K, V])
	for _, op := range h.Ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	var res Result[K, V]
	for key, ops := range byKey {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Call < ops[j].Call })
		if ok, _ := linearizable(ops); ok {
			continue
		}
		res.Violations = append(res.Violations, counterexample(key, ops))
	}
	// Map iteration order is random; make reports deterministic.
	sort.Slice(res.Violations, func(i, j int) bool {
		return res.Violations[i].Ops[0].Call < res.Violations[j].Ops[0].Call
	})
	return res
}

// linearizable runs the Wing & Gong search over one key's complete
// operations (which must be sorted by Call). It returns whether a
// linearization exists and the longest linearizable ordering found (indices
// into ops).
func linearizable[K comparable, V comparable](ops []Op[K, V]) (bool, []int) {
	completed := make([]bool, len(ops))
	for i := range completed {
		completed[i] = true
	}
	return linearizableCut(ops, completed)
}

// pendingEffect is the state transition of an operation that was invoked
// but had not returned at the cut under consideration: its effect may be
// linearized, but its recorded (later) output does not constrain it.
func pendingEffect[K comparable, V comparable](st register[V], op Op[K, V]) register[V] {
	switch op.Kind {
	case KindInsert:
		return register[V]{present: true, val: op.Val}
	case KindDelete:
		return register[V]{}
	default:
		return st
	}
}

// linearizableCut is the search over a subhistory cut at some stamp:
// completed[i] marks the operations that had returned by the cut. Completed
// operations must all be linearized with exactly their recorded outputs;
// pending ones (invoked but still running at the cut) may optionally be
// linearized via pendingEffect, and do not impose real-time bounds on
// others. It returns whether the cut is explainable and the longest
// ordering found (indices into ops).
//
// The search state is compressed Lowe-style: the set of linearized
// operations is stored as (f, extras) — every operation before index f is
// linearized, plus the sorted indices in extras — and configurations
// (set, register state) that already failed are memoized, which keeps the
// search near-linear on the almost-sequential histories real runs record.
func linearizableCut[K comparable, V comparable](ops []Op[K, V], completed []bool) (bool, []int) {
	n := len(ops)
	requiredLeft := 0
	for _, c := range completed {
		if c {
			requiredLeft++
		}
	}
	if requiredLeft == 0 {
		return true, nil
	}

	st := register[V]{}
	marked := make([]bool, n)
	f := 0
	var extras []int
	var seq []int
	var best []int
	memo := map[string]struct{}{}

	memoKey := func() string {
		var b strings.Builder
		fmt.Fprintf(&b, "%d;%v;%t;%v", f, extras, st.present, st.val)
		return b.String()
	}
	// candidates returns the operations that may linearize next from the
	// current configuration: unlinearized, and invoked before every other
	// unlinearized completed operation's return (pending operations have
	// no response yet, so they bound nothing). Only operations invoked
	// earlier can impose the real-time constraint, so one forward scan
	// suffices.
	candidates := func() []int {
		var cand []int
		minRet := int64(1) << 62
		for j := f; j < n; j++ {
			if marked[j] {
				continue
			}
			if ops[j].Call >= minRet {
				break
			}
			cand = append(cand, j)
			if completed[j] && ops[j].Ret < minRet {
				minRet = ops[j].Ret
			}
		}
		return cand
	}

	type frame struct {
		cand []int
		next int
		// Edge that led to this frame, for backtracking (chosen < 0 at the
		// root).
		chosen     int
		prevSt     register[V]
		prevF      int
		prevExtras []int
	}
	apply := func(i int, newSt register[V]) *frame {
		fr := &frame{chosen: i, prevSt: st, prevF: f, prevExtras: slices.Clone(extras)}
		st = newSt
		marked[i] = true
		if i == f {
			f++
			for len(extras) > 0 && extras[0] == f {
				extras = extras[1:]
				f++
			}
		} else {
			at, _ := slices.BinarySearch(extras, i)
			extras = slices.Insert(extras, at, i)
		}
		seq = append(seq, i)
		if len(seq) > len(best) {
			best = slices.Clone(seq)
		}
		return fr
	}
	undo := func(fr *frame) {
		marked[fr.chosen] = false
		st = fr.prevSt
		f = fr.prevF
		extras = fr.prevExtras
		seq = seq[:len(seq)-1]
	}

	stack := []*frame{{cand: candidates(), chosen: -1}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		advanced := false
		for fr.next < len(fr.cand) {
			i := fr.cand[fr.next]
			fr.next++
			var newSt register[V]
			if completed[i] {
				var ok bool
				if newSt, ok = step(st, ops[i]); !ok {
					continue
				}
			} else {
				newSt = pendingEffect(st, ops[i])
			}
			edge := apply(i, newSt)
			if completed[i] {
				requiredLeft--
			}
			if requiredLeft == 0 {
				return true, slices.Clone(seq)
			}
			k := memoKey()
			if _, dup := memo[k]; dup {
				if completed[i] {
					requiredLeft++
				}
				undo(edge)
				continue
			}
			memo[k] = struct{}{}
			edge.cand = candidates()
			stack = append(stack, edge)
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
			if fr.chosen >= 0 {
				if completed[fr.chosen] {
					requiredLeft++
				}
				undo(fr)
			}
		}
	}
	return false, best
}

// counterexample minimizes a non-linearizable per-key subhistory and
// formats the report.
func counterexample[K comparable, V comparable](key K, ops []Op[K, V]) Counterexample[K, V] {
	core, completed := minimalFailingCore(ops)
	_, best := linearizableCut(core, completed)
	c := Counterexample[K, V]{Key: key, Ops: core, Completed: completed, Best: best}
	c.Report = formatReport(c, len(ops))
	return c
}

// cutAt builds the subhistory visible at stamp t: every operation invoked
// by t, marking those that had also returned as completed. Reads still
// running at t are dropped — pending reads have no effect, so they can
// neither explain nor contradict anything.
func cutAt[K comparable, V comparable](ops []Op[K, V], t int64) ([]Op[K, V], []bool) {
	var core []Op[K, V]
	var completed []bool
	for _, op := range ops {
		if op.Call > t {
			continue
		}
		done := op.Ret <= t
		if !done && (op.Kind == KindGet || op.Kind == KindScanStep) {
			continue
		}
		core = append(core, op)
		completed = append(completed, done)
	}
	return core, completed
}

// minimalFailingCore cuts the subhistory at the earliest response stamp at
// which it stops being explainable: the first response that cannot be
// accounted for even granting every still-running update an arbitrary
// effect. Overlapping updates are retained as pending operations, so the
// core always contains the racing operation, not just the response it
// contradicts. The full subhistory fails (every operation completed), so a
// failing cut exists. A galloping probe bounds the number of search runs on
// long histories.
func minimalFailingCore[K comparable, V comparable](ops []Op[K, V]) ([]Op[K, V], []bool) {
	rets := make([]int64, len(ops))
	for i, op := range ops {
		rets[i] = op.Ret
	}
	slices.Sort(rets)
	fails := func(m int) bool {
		core, completed := cutAt(ops, rets[m-1])
		ok, _ := linearizableCut(core, completed)
		return !ok
	}
	lastOK := 0
	for m := 8; m < len(rets); m *= 2 {
		if fails(m) {
			break
		}
		lastOK = m
	}
	for m := lastOK + 1; m <= len(rets); m++ {
		if fails(m) {
			return cutAt(ops, rets[m-1])
		}
	}
	return cutAt(ops, rets[len(rets)-1])
}

// formatOp renders one operation for a report.
func formatOp[K comparable, V comparable](op Op[K, V]) string {
	var call string
	switch op.Kind {
	case KindGet:
		call = fmt.Sprintf("Get(%v)", op.Key)
	case KindInsert:
		call = fmt.Sprintf("Insert(%v, %v)", op.Key, op.Val)
	case KindDelete:
		call = fmt.Sprintf("Delete(%v)", op.Key)
	case KindScanStep:
		call = fmt.Sprintf("ScanStep(%v)", op.Key)
	}
	return fmt.Sprintf("[p%d] %s = (%v, %t) @[%d,%d]", op.Proc, call, op.Out, op.OutOK, op.Call, op.Ret)
}

// formatReport builds the human-readable explanation: the minimized
// operations, the longest linearizable order found, and why each remaining
// operation cannot come next.
func formatReport[K comparable, V comparable](c Counterexample[K, V], total int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "linearizability violation on key %v:\n", c.Key)
	fmt.Fprintf(&b, "  minimal failing core: %d ops (of %d recorded on this key); no linearization exists\n", len(c.Ops), total)
	annotate := func(i int) string {
		if c.Completed[i] {
			return formatOp(c.Ops[i])
		}
		return formatOp(c.Ops[i]) + " (still running at the cut: may take effect, result unconstrained)"
	}
	for i := range c.Ops {
		fmt.Fprintf(&b, "    %s\n", annotate(i))
	}

	// Replay the best ordering to recover the stuck state.
	st := register[V]{}
	inBest := make([]bool, len(c.Ops))
	for _, i := range c.Best {
		if c.Completed[i] {
			st, _ = step(st, c.Ops[i])
		} else {
			st = pendingEffect(st, c.Ops[i])
		}
		inBest[i] = true
	}
	fmt.Fprintf(&b, "  longest linearizable order found (%d of %d ops):\n", len(c.Best), len(c.Ops))
	const tail = 8
	start := 0
	if len(c.Best) > tail {
		start = len(c.Best) - tail
		fmt.Fprintf(&b, "    ... %d earlier ops elided ...\n", start)
	}
	for _, i := range c.Best[start:] {
		fmt.Fprintf(&b, "    %s\n", annotate(i))
	}

	stKey := "absent"
	if st.present {
		stKey = fmt.Sprintf("present, value %v", st.val)
	}
	fmt.Fprintf(&b, "  state after that order: %s; every continuation fails:\n", stKey)
	minRet := int64(1) << 62
	for i, op := range c.Ops {
		if !inBest[i] && c.Completed[i] && op.Ret < minRet {
			minRet = op.Ret
		}
	}
	for i, op := range c.Ops {
		if inBest[i] || !c.Completed[i] {
			continue
		}
		if op.Call >= minRet {
			fmt.Fprintf(&b, "    %s: blocked by real time (another pending op returned at %d, before this was invoked)\n", formatOp(op), minRet)
			continue
		}
		if _, ok := step(st, op); !ok {
			fmt.Fprintf(&b, "    %s: output contradicts state — expected %s\n", formatOp(op), expect[V](st, op.Kind))
		} else {
			fmt.Fprintf(&b, "    %s: applies here, but every continuation dead-ends\n", formatOp(op))
		}
	}
	return strings.TrimRight(b.String(), "\n")
}
