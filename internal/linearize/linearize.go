// Package linearize records concurrent dictionary histories and checks them
// for linearizability, in the style of Wing & Gong's algorithm with Lowe's
// refinements (the approach popularized by the porcupine checker).
//
// A test wraps the dictionary under test in a Recorder, hands one Proc to
// each goroutine, and runs its workload through the Proc's Get/Insert/
// Delete/Scan methods. Each call is logged with invocation and response
// stamps drawn from a shared atomic counter, giving a total order on the
// interval endpoints. After the goroutines join, Check searches for a
// linearization: a sequential ordering of all operations that (a) respects
// real time — an operation that returned before another was invoked comes
// first — and (b) produces exactly the outputs that were observed, according
// to the sequential dictionary specification.
//
// # The sequential model and per-key decomposition
//
// The reference model is the sequential map semantics implemented by
// internal/seqrbt (Get/Insert/Delete returning the displaced value and a
// presence flag); the package's tests cross-validate the checker's
// transition function against an actual seqrbt tree on random sequential
// histories. Because every recorded operation touches exactly one key, the
// map decomposes into independent registers, and linearizability is
// compositional (Herlihy & Wing's locality theorem): a history is
// linearizable against the map specification if and only if each per-key
// subhistory is linearizable against the single-key specification. Check
// exploits this by partitioning the history by key and searching each
// partition separately, which turns an exponential search over the whole
// history into many small ones.
//
// Range scans are recorded per visited key as ScanStep operations: each
// asserts its pair was current at some instant inside the step's interval.
// For a native RangeScan the interval runs from the scan's invocation to
// the step's emission, which is sound both for snapshot-based scans (every
// pair was current at the capture instant, just after the invocation) and
// for per-step-linearizable walks. Successor/Predecessor walks used as a
// scan fallback use the enclosing read as the interval. Whole-scan
// atomicity is deliberately not asserted.
//
// On violation, Check shrinks the offending per-key subhistory to a small
// core that still has no linearization and formats a human-readable
// counterexample: the operations involved, the longest linearizable prefix,
// and, for each remaining operation, why it cannot be linearized next.
package linearize

import (
	"sync"
	"sync/atomic"

	"repro/internal/dict"
)

// Kind is the operation type of a recorded Op.
type Kind uint8

const (
	// KindGet is a point lookup: Out/OutOK are the returned value and
	// presence flag.
	KindGet Kind = iota
	// KindInsert is an upsert: Val is the argument, Out/OutOK the displaced
	// value and presence flag.
	KindInsert
	// KindDelete is a removal: Out/OutOK are the removed value and presence
	// flag.
	KindDelete
	// KindScanStep is one visited pair of a range scan (or an ordered-walk
	// step): Out is the value observed for Key, and the step asserts the
	// pair was current at some instant inside [Call, Ret].
	KindScanStep
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindGet:
		return "Get"
	case KindInsert:
		return "Insert"
	case KindDelete:
		return "Delete"
	case KindScanStep:
		return "ScanStep"
	default:
		return "?"
	}
}

// Op is one recorded operation. Call and Ret are stamps from the recorder's
// shared counter: Call was taken before the operation was invoked and Ret
// after it returned, so Ret(a) < Call(b) proves a preceded b in real time.
type Op[K comparable, V comparable] struct {
	Proc  int  // recording goroutine
	Kind  Kind // operation type
	Key   K
	Val   V    // Insert argument (zero otherwise)
	Out   V    // returned value
	OutOK bool // returned presence flag
	Call  int64
	Ret   int64
}

// History is a complete recorded run: the operations of all procs.
type History[K comparable, V comparable] struct {
	Ops []Op[K, V]
}

// Recorder wraps a dictionary and hands out per-goroutine Procs that log
// every operation. The recorder itself is safe for concurrent use; each
// Proc must be used by a single goroutine.
type Recorder[K comparable, V comparable] struct {
	m     dict.Map[K, V]
	clock atomic.Int64

	mu    sync.Mutex
	procs []*Proc[K, V]
}

// NewRecorder returns a recorder wrapping m.
func NewRecorder[K comparable, V comparable](m dict.Map[K, V]) *Recorder[K, V] {
	return &Recorder[K, V]{m: m}
}

// Proc allocates a new recording proxy for one goroutine.
func (r *Recorder[K, V]) Proc() *Proc[K, V] {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := &Proc[K, V]{r: r, id: len(r.procs)}
	r.procs = append(r.procs, p)
	return p
}

// History collects every proc's log into one history. It must only be
// called after all recording goroutines have finished.
func (r *Recorder[K, V]) History() History[K, V] {
	r.mu.Lock()
	defer r.mu.Unlock()
	var h History[K, V]
	for _, p := range r.procs {
		h.Ops = append(h.Ops, p.ops...)
	}
	return h
}

// Proc is a single-goroutine recording proxy for the wrapped dictionary.
type Proc[K comparable, V comparable] struct {
	r   *Recorder[K, V]
	id  int
	ops []Op[K, V]
}

func (p *Proc[K, V]) record(op Op[K, V]) { p.ops = append(p.ops, op) }

// Get performs and records a lookup.
func (p *Proc[K, V]) Get(key K) (V, bool) {
	call := p.r.clock.Add(1)
	v, ok := p.r.m.Get(key)
	ret := p.r.clock.Add(1)
	p.record(Op[K, V]{Proc: p.id, Kind: KindGet, Key: key, Out: v, OutOK: ok, Call: call, Ret: ret})
	return v, ok
}

// Insert performs and records an upsert.
func (p *Proc[K, V]) Insert(key K, value V) (V, bool) {
	call := p.r.clock.Add(1)
	old, existed := p.r.m.Insert(key, value)
	ret := p.r.clock.Add(1)
	p.record(Op[K, V]{Proc: p.id, Kind: KindInsert, Key: key, Val: value, Out: old, OutOK: existed, Call: call, Ret: ret})
	return old, existed
}

// Delete performs and records a removal.
func (p *Proc[K, V]) Delete(key K) (V, bool) {
	call := p.r.clock.Add(1)
	old, existed := p.r.m.Delete(key)
	ret := p.r.clock.Add(1)
	p.record(Op[K, V]{Proc: p.id, Kind: KindDelete, Key: key, Out: old, OutOK: existed, Call: call, Ret: ret})
	return old, existed
}

// Scan performs a range scan over [lo, hi], recording one ScanStep per
// visited key, and returns the number of keys visited. It uses the
// dictionary's native RangeScan when implemented and falls back to a
// Successor walk otherwise (which requires the wrapped map to be a
// dict.OrderedMap; a map with neither capability records nothing and
// returns 0). Each step's interval brackets the read that produced it: the
// step's pair was current somewhere inside it.
func (p *Proc[K, V]) Scan(lo, hi K, less dict.Less[K]) int {
	if rg, ok := p.r.m.(dict.Ranger[K, V]); ok {
		// Every step's interval starts at the scan's invocation, not at the
		// previous step: a snapshot-based RangeScan observes all its pairs at
		// one capture instant shortly after the call, so a later step's pair
		// need not be current between the two steps' emissions - but it was
		// current somewhere in [call, step-return], which is what each
		// ScanStep asserts. (For a hand-over-hand scan the claim is merely
		// looser than the truth, so it stays sound for either kind.)
		call := p.r.clock.Add(1)
		n := 0
		rg.RangeScan(lo, hi, func(k K, v V) bool {
			now := p.r.clock.Add(1)
			p.record(Op[K, V]{Proc: p.id, Kind: KindScanStep, Key: k, Out: v, OutOK: true, Call: call, Ret: now})
			n++
			return true
		})
		return n
	}
	om, ok := p.r.m.(dict.OrderedMap[K, V])
	if !ok {
		return 0
	}
	n := 0
	// Visit lo itself if present, then walk successors up to hi.
	if call := p.r.clock.Add(1); true {
		if v, present := om.Get(lo); present {
			ret := p.r.clock.Add(1)
			p.record(Op[K, V]{Proc: p.id, Kind: KindScanStep, Key: lo, Out: v, OutOK: true, Call: call, Ret: ret})
			n++
		}
	}
	for k := lo; ; {
		call := p.r.clock.Add(1)
		nk, v, ok := om.Successor(k)
		ret := p.r.clock.Add(1)
		if !ok || less(hi, nk) {
			break
		}
		p.record(Op[K, V]{Proc: p.id, Kind: KindScanStep, Key: nk, Out: v, OutOK: true, Call: call, Ret: ret})
		n++
		k = nk
	}
	return n
}
