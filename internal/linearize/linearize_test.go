package linearize

import (
	"strings"
	"testing"

	"repro/internal/seqrbt"
)

// lcg mirrors the dicttest suite's deterministic stream.
func lcg(state *uint64) uint64 {
	*state = *state*2862933555777941757 + 3037000493
	return *state >> 11
}

// TestRegisterModelMatchesSeqRBT cross-validates the checker's per-key
// transition function against the sequential reference tree: on random
// sequential op sequences, the outputs seqrbt produces must be exactly the
// outputs the register model accepts, step by step. This is what grounds
// the claim that Check verifies histories "against the seqrbt model" while
// searching per key.
func TestRegisterModelMatchesSeqRBT(t *testing.T) {
	tree := seqrbt.NewOrdered[int64, int64]()
	states := map[int64]register[int64]{}
	state := uint64(42)
	for i := 0; i < 20000; i++ {
		key := int64(lcg(&state) % 8) // tiny key space: lots of hits
		val := int64(lcg(&state) % 100)
		var op Op[int64, int64]
		switch lcg(&state) % 3 {
		case 0:
			v, ok := tree.Get(key)
			op = Op[int64, int64]{Kind: KindGet, Key: key, Out: v, OutOK: ok}
		case 1:
			old, existed := tree.Insert(key, val)
			op = Op[int64, int64]{Kind: KindInsert, Key: key, Val: val, Out: old, OutOK: existed}
		default:
			old, existed := tree.Delete(key)
			op = Op[int64, int64]{Kind: KindDelete, Key: key, Out: old, OutOK: existed}
		}
		next, ok := step(states[key], op)
		if !ok {
			t.Fatalf("op %d: register model rejects seqrbt's output for %s", i, formatOp(op))
		}
		states[key] = next
	}
}

// TestSequentialRecordedHistoryLinearizable records a single-proc run over
// the reference tree and checks it.
func TestSequentialRecordedHistoryLinearizable(t *testing.T) {
	r := NewRecorder[int64, int64](seqrbt.NewOrdered[int64, int64]())
	p := r.Proc()
	state := uint64(7)
	for i := 0; i < 5000; i++ {
		key := int64(lcg(&state) % 16)
		switch lcg(&state) % 3 {
		case 0:
			p.Get(key)
		case 1:
			p.Insert(key, int64(lcg(&state)%1000))
		default:
			p.Delete(key)
		}
	}
	if res := Check(r.History()); !res.OK() {
		t.Fatalf("sequential history reported non-linearizable:\n%s", res.Report())
	}
}

// mkOp builds a hand-crafted operation for the checker tests.
func mkOp(proc int, kind Kind, key, val, out int64, ok bool, call, ret int64) Op[int64, int64] {
	return Op[int64, int64]{Proc: proc, Kind: kind, Key: key, Val: val, Out: out, OutOK: ok, Call: call, Ret: ret}
}

// TestOverlappingHistoryNeedsReordering exercises the search beyond
// invocation order: the Get overlaps both writers and observes the second
// writer's value, so the only linearization orders the writers against
// invocation order.
func TestOverlappingHistoryNeedsReordering(t *testing.T) {
	h := History[int64, int64]{Ops: []Op[int64, int64]{
		// p0: Insert(1, 10) over a long interval; returns (20, true): it
		// displaced p1's value, so p1's insert linearized first despite
		// being invoked later.
		mkOp(0, KindInsert, 1, 10, 20, true, 1, 10),
		// p1: Insert(1, 20) = (0, false).
		mkOp(1, KindInsert, 1, 20, 0, false, 2, 9),
		// p2: Get(1) = (20, true), concurrent with both.
		mkOp(2, KindGet, 1, 0, 20, true, 3, 8),
		// p2 after everything: Get(1) = (10, true).
		mkOp(2, KindGet, 1, 0, 10, true, 11, 12),
	}}
	if res := Check(h); !res.OK() {
		t.Fatalf("linearizable overlapping history rejected:\n%s", res.Report())
	}
}

// TestViolationDetectedAndReported feeds a history with a lost update — an
// insert acknowledged as new (existed=false) that a later read never
// observes — and checks both the verdict and the report contents.
func TestViolationDetectedAndReported(t *testing.T) {
	h := History[int64, int64]{Ops: []Op[int64, int64]{
		// Unrelated linearizable traffic on another key: must not appear in
		// the violation report.
		mkOp(0, KindInsert, 5, 1, 0, false, 1, 2),
		mkOp(0, KindGet, 5, 0, 1, true, 3, 4),
		// Key 9: insert committed, then a strictly-later Get misses it.
		mkOp(1, KindInsert, 9, 77, 0, false, 5, 6),
		mkOp(2, KindGet, 9, 0, 0, false, 7, 8),
		// Later ops on key 9 that the minimal prefix should exclude.
		mkOp(1, KindInsert, 9, 78, 77, true, 9, 10),
		mkOp(2, KindGet, 9, 0, 78, true, 11, 12),
	}}
	res := Check(h)
	if res.OK() {
		t.Fatal("lost-update history reported linearizable")
	}
	if len(res.Violations) != 1 {
		t.Fatalf("got %d violations, want 1:\n%s", len(res.Violations), res.Report())
	}
	v := res.Violations[0]
	if v.Key != 9 {
		t.Fatalf("violation on key %d, want 9", v.Key)
	}
	if len(v.Ops) != 2 {
		t.Fatalf("minimal failing prefix has %d ops, want 2 (insert + missing get):\n%s", len(v.Ops), v.Report)
	}
	for _, want := range []string{"key 9", "Insert(9, 77)", "Get(9)", "no linearization exists"} {
		if !strings.Contains(v.Report, want) {
			t.Fatalf("report missing %q:\n%s", want, v.Report)
		}
	}
	if strings.Contains(v.Report, "key 5") {
		t.Fatalf("report mentions unrelated key:\n%s", v.Report)
	}
}

// TestRealTimeOrderEnforced checks that the checker refuses an order that a
// pure state search would accept: the read returns a value whose writer was
// invoked strictly after the read returned.
func TestRealTimeOrderEnforced(t *testing.T) {
	h := History[int64, int64]{Ops: []Op[int64, int64]{
		mkOp(0, KindGet, 1, 0, 10, true, 1, 2),
		mkOp(1, KindInsert, 1, 10, 0, false, 3, 4),
	}}
	if res := Check(h); res.OK() {
		t.Fatal("future-read history reported linearizable")
	}
}

// TestScanStepSemantics: a scan step asserting a pair that was never
// current must fail; one bracketing the write must pass.
func TestScanStepSemantics(t *testing.T) {
	ok := History[int64, int64]{Ops: []Op[int64, int64]{
		mkOp(0, KindInsert, 3, 30, 0, false, 1, 4),
		mkOp(1, KindScanStep, 3, 0, 30, true, 2, 6),
	}}
	if res := Check(ok); !res.OK() {
		t.Fatalf("valid scan step rejected:\n%s", res.Report())
	}
	bad := History[int64, int64]{Ops: []Op[int64, int64]{
		mkOp(0, KindInsert, 3, 30, 0, false, 1, 2),
		mkOp(1, KindScanStep, 3, 0, 31, true, 3, 4),
	}}
	if res := Check(bad); res.OK() {
		t.Fatal("scan step with never-published value accepted")
	}
}

// TestDeleteReturnsDisplacedValue: delete's output must match the value the
// linearization order implies.
func TestDeleteReturnsDisplacedValue(t *testing.T) {
	h := History[int64, int64]{Ops: []Op[int64, int64]{
		mkOp(0, KindInsert, 2, 5, 0, false, 1, 2),
		mkOp(1, KindInsert, 2, 6, 5, true, 3, 4),
		mkOp(0, KindDelete, 2, 0, 5, false /* wrong: existed=false */, 5, 6),
	}}
	if res := Check(h); res.OK() {
		t.Fatal("delete with contradictory output accepted")
	}
}

// TestRecorderScanFallback records a Successor-walk scan over the ordered
// reference tree and checks the per-step ops land in a linearizable
// history.
func TestRecorderScanFallback(t *testing.T) {
	tree := seqrbt.NewOrdered[int64, int64]()
	r := NewRecorder[int64, int64](tree)
	p := r.Proc()
	for k := int64(0); k < 20; k += 2 {
		p.Insert(k, k*100)
	}
	n := p.Scan(4, 12, func(a, b int64) bool { return a < b })
	if n != 5 {
		t.Fatalf("Scan visited %d keys, want 5", n)
	}
	if res := Check(r.History()); !res.OK() {
		t.Fatalf("scan history rejected:\n%s", res.Report())
	}
}

// TestMinimalCoreIncludesRacingDelete pins the pending-operation cut
// semantics of the minimizer. The history is the shape the SCX-free
// overwrite protocol's documented window produces: an overwrite re-executed
// as a fresh insert (returning existed=false) because a concurrent delete
// unlinked its leaf, while the delete returns the overwritten value. An
// invocation-order prefix would cut the delete away and blame the insert
// alone — the insert's (0, false) response is only unexplainable GIVEN that
// the overlapping delete's output is held to its recorded value, so the
// core must include the delete.
func TestMinimalCoreIncludesRacingDelete(t *testing.T) {
	h := History[int64, int64]{Ops: []Op[int64, int64]{
		mkOp(0, KindInsert, 20, -20, 0, false, 3, 4),
		mkOp(1, KindInsert, 20, 42, 0, false, 7, 9),
		mkOp(2, KindDelete, 20, 0, 42, true, 8, 10),
		mkOp(3, KindGet, 20, 0, 42, true, 14, 15),
	}}
	res := Check(h)
	if res.OK() {
		t.Fatal("documented-window-shaped history reported linearizable")
	}
	v := res.Violations[0]
	if len(v.Ops) != 3 {
		t.Fatalf("minimal core has %d ops, want 3 (setup, insert, delete):\n%s", len(v.Ops), v.Report)
	}
	var hasDelete bool
	for _, op := range v.Ops {
		hasDelete = hasDelete || op.Kind == KindDelete
	}
	if !hasDelete {
		t.Fatalf("racing delete cut out of the minimal core:\n%s", v.Report)
	}
	for i := range v.Ops {
		if !v.Completed[i] {
			t.Fatalf("core op %d still pending at the final cut:\n%s", i, v.Report)
		}
	}
}

// TestPendingUpdateExplainsResponse: a cut that retains a still-running
// delete must accept a response the delete's effect explains — the whole
// history here is linearizable, and the spurious-core regression would have
// flagged the insert alone.
func TestPendingUpdateExplainsResponse(t *testing.T) {
	h := History[int64, int64]{Ops: []Op[int64, int64]{
		mkOp(0, KindInsert, 20, -20, 0, false, 3, 4),
		mkOp(1, KindInsert, 20, 42, 0, false, 7, 9),
		mkOp(2, KindDelete, 20, 0, -20, true, 8, 10),
		mkOp(3, KindGet, 20, 0, 42, true, 14, 15),
	}}
	if res := Check(h); !res.OK() {
		t.Fatalf("linearizable delete-then-reinsert history rejected:\n%s", res.Report())
	}
}
