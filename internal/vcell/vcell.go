// Package vcell provides the atomically publishable value cell shared by
// every concurrent dictionary in the repository. A cell decouples a node's
// value from the node's synchronization evidence: the trees built on the
// LLX/SCX template keep the cell outside the LLX snapshot (so an overwrite
// of a present key is a plain atomic publish, not a full SCX), and the
// skip-list and lock-based AVL baselines use it to store values without the
// one-box-per-store cost of atomic.Pointer[V].
//
// A cell has two representations, fixed at initialization:
//
//   - unboxed: the value is packed into a single machine word and published
//     with plain uint64 atomics. Available exactly for the word-sized scalar
//     types enumerated by Unboxed (the int64 values of the benchmark
//     registry among them); a Store or Swap allocates nothing.
//   - boxed: the value lives behind an atomic.Pointer[V]; every Store or
//     Swap allocates one box. This is the fallback for every other type
//     (strings, structs, pointers to caller-owned state, ...).
//
// The representation is selected by the data structure's constructor
// (mirroring how the constructors select devirtualized search routines): a
// structure computes Unboxed[V]() once and passes it to Init for every cell
// it creates, so the per-access cost of the choice is a single predictable
// branch rather than a type assertion or an indirect call.
//
// Cells may be shared: the template trees alias one cell between a leaf and
// every copy of that leaf made by rebalancing or deletion, which is what
// makes the SCX-free overwrite safe (see the package comment of
// internal/lbst and the in-place overwrite section of DESIGN.md).
package vcell

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/sched"
)

// Cell is an atomically publishable value slot. The zero Cell is not ready
// for use: call Init (or create cells with New) before the cell is shared,
// so the representation flag is fixed before any concurrent access.
type Cell[V any] struct {
	// unboxed selects the representation. It is written once by Init, before
	// the cell is published, and never changes.
	unboxed bool

	word atomic.Uint64
	ptr  atomic.Pointer[V]

	// pubs counts in-flight publish brackets (BeginPublish..EndPublish). It
	// lives on the cell - not on any node embedding it - because copies alias
	// the cell: a consumer that finalized one leaf must drain publishers that
	// entered through ANY aliasing leaf, however stale. See the overwrite
	// protocol in internal/lbst.
	pubs atomic.Int64
}

// Unboxed reports whether values of type V qualify for the unboxed (packed
// word) representation: V must be one of the fixed-size scalar types below,
// which all fit in a machine word and contain no pointers the garbage
// collector would need to see. Named types do not match even if their
// underlying type does; they take the boxed fallback, which is always
// correct.
func Unboxed[V any]() bool {
	switch any((*V)(nil)).(type) {
	case *int64, *uint64, *int, *uint, *uintptr,
		*int32, *uint32, *int16, *uint16, *int8, *uint8,
		*float64, *float32, *bool:
		return true
	}
	return false
}

// toWord packs a word-sized value into a uint64. It must only be reached
// when Unboxed[V]() is true (sizeof(V) <= 8 and V is pointer-free); the
// boxed representation never calls it.
func toWord[V any](v V) uint64 {
	var w uint64
	*(*V)(unsafe.Pointer(&w)) = v
	return w
}

// fromWord unpacks a value packed by toWord.
func fromWord[V any](w uint64) V {
	return *(*V)(unsafe.Pointer(&w))
}

// New returns a fresh cell holding v, selecting the representation from
// Unboxed[V](). It is the constructor for callers that allocate one cell per
// key (the template trees); structures that embed cells in their nodes use
// Init with a constructor-computed flag instead.
func New[V any](v V) *Cell[V] {
	c := &Cell[V]{}
	c.Init(Unboxed[V](), v)
	return c
}

// Init fixes the cell's representation and stores the initial value. unboxed
// must be Unboxed[V]() (structures compute it once at construction); Init
// must complete before the cell becomes reachable by other goroutines.
func (c *Cell[V]) Init(unboxed bool, v V) {
	c.unboxed = unboxed
	if unboxed {
		c.word.Store(toWord(v))
		return
	}
	// The box is bound on the boxed-only path (not to the parameter) so
	// escape analysis keeps the unboxed path free of the heap copy.
	box := v
	c.ptr.Store(&box)
}

// Load returns the current value. A nil cell reads as the zero value, which
// lets tree nodes without a value (internal and sentinel nodes) share the
// leaf node layout with a nil cell pointer.
func (c *Cell[V]) Load() V {
	if c == nil {
		var zero V
		return zero
	}
	if c.unboxed {
		return fromWord[V](c.word.Load())
	}
	return *c.ptr.Load()
}

// Store atomically publishes v. In the unboxed representation it allocates
// nothing; in the boxed representation it allocates v's box.
func (c *Cell[V]) Store(v V) {
	if c.unboxed {
		c.word.Store(toWord(v))
		return
	}
	box := v
	c.ptr.Store(&box)
}

// Reset clears the cell for reuse by a node pool: the boxed representation
// drops its box so a recycled node does not pin the last value of a dead key
// for the garbage collector. The caller must guarantee the cell is no longer
// shared (the reclamation layer's grace period plus the cell-owner reference
// count in the trees). The representation flag is left to the next Init.
func (c *Cell[V]) Reset() {
	c.word.Store(0)
	c.ptr.Store(nil)
	c.pubs.Store(0)
}

// BeginPublish registers an intent to Swap a value into the cell. The
// bracket it opens (closed by EndPublish) lets a consumer that has
// finalized the cell's owner wait out every writer that might still land a
// Swap, so the consumer's subsequent Load is ordered after all publishes
// that will ever be visible (see DrainPublishers). The bracket must be
// short and straight-line: register, check the owner's finalized flag,
// Swap, unregister - nothing inside may block, park, or panic.
func (c *Cell[V]) BeginPublish() {
	c.pubs.Add(1)
}

// EndPublish closes the bracket opened by BeginPublish.
func (c *Cell[V]) EndPublish() {
	c.pubs.Add(-1)
}

// DrainPublishers waits until no publish bracket is open. A consumer calls
// it after finalizing the cell's owning leaf and before loading the
// displaced value: once the owner is finalized every NEW bracket observes
// the finalized flag and backs off without swapping, so only the
// (finitely many, short) brackets already open are waited for, and the
// wait terminates. After the drain, any publish whose bracket saw the
// owner un-finalized is totally ordered before the consumer's Load - that
// is the ordering fact that makes the in-place overwrite linearizable
// against deletion (see internal/lbst's overwrite protocol).
//
// The wait goes through sched.WaitZero so the deterministic enumeration
// build parks the consumer until the bracket holders have run, instead of
// spinning against goroutines the controller has suspended.
func (c *Cell[V]) DrainPublishers() {
	sched.WaitZero(sched.PointVCellDrain, &c.pubs)
}

// Swap atomically publishes v and returns the value the cell held
// immediately before: the atomic read-modify-write that makes an in-place
// overwrite linearizable (the returned value is exactly the one displaced,
// however many writers race). Allocation profile as Store.
func (c *Cell[V]) Swap(v V) V {
	sched.Point(sched.PointVCellPublish)
	if c.unboxed {
		return fromWord[V](c.word.Swap(toWord(v)))
	}
	box := v
	return *c.ptr.Swap(&box)
}
