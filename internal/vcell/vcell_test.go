package vcell

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestUnboxedSelection(t *testing.T) {
	if !Unboxed[int64]() || !Unboxed[uint64]() || !Unboxed[int]() ||
		!Unboxed[float64]() || !Unboxed[bool]() || !Unboxed[uint8]() {
		t.Error("word-sized scalar type not selected for unboxed storage")
	}
	if Unboxed[string]() || Unboxed[*int64]() || Unboxed[[]byte]() ||
		Unboxed[struct{ a, b int64 }]() || Unboxed[any]() {
		t.Error("pointer-carrying or oversized type selected for unboxed storage")
	}
	// Named types fall back to boxed storage even when the underlying type
	// qualifies: the conservative choice is always correct.
	type myInt int64
	if Unboxed[myInt]() {
		t.Error("named type selected for unboxed storage")
	}
}

func TestCellRoundTripUnboxed(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 1 << 62, -(1 << 62)} {
		c := New(v)
		if got := c.Load(); got != v {
			t.Fatalf("Load = %d, want %d", got, v)
		}
		if old := c.Swap(v + 7); old != v {
			t.Fatalf("Swap returned %d, want %d", old, v)
		}
		if got := c.Load(); got != v+7 {
			t.Fatalf("Load after Swap = %d, want %d", got, v+7)
		}
		c.Store(42)
		if got := c.Load(); got != 42 {
			t.Fatalf("Load after Store = %d, want 42", got)
		}
	}
	// Narrow scalars round-trip through the padded word.
	cb := New(true)
	if !cb.Load() || cb.Swap(false) != true || cb.Load() {
		t.Error("bool cell round trip failed")
	}
	cf := New(3.5)
	if cf.Load() != 3.5 {
		t.Error("float64 cell round trip failed")
	}
}

func TestCellRoundTripBoxed(t *testing.T) {
	c := New("alpha")
	if got := c.Load(); got != "alpha" {
		t.Fatalf("Load = %q, want alpha", got)
	}
	if old := c.Swap("beta"); old != "alpha" {
		t.Fatalf("Swap returned %q, want alpha", old)
	}
	c.Store("gamma")
	if got := c.Load(); got != "gamma" {
		t.Fatalf("Load = %q, want gamma", got)
	}
}

func TestNilCellLoadsZero(t *testing.T) {
	var c *Cell[int64]
	if got := c.Load(); got != 0 {
		t.Fatalf("nil cell Load = %d, want 0", got)
	}
	var s *Cell[string]
	if got := s.Load(); got != "" {
		t.Fatalf("nil cell Load = %q, want empty", got)
	}
}

// TestSwapIsAtomicUnderContention hammers one unboxed cell from many
// goroutines; every displaced value must be observed exactly once (each
// writer publishes distinct values), which fails for any torn or lost
// read-modify-write.
func TestSwapIsAtomicUnderContention(t *testing.T) {
	const writers = 8
	const perWriter = 20000
	c := New(int64(-1))
	var seen [writers * perWriter]atomic.Int32
	var dupes atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				old := c.Swap(int64(w*perWriter + i))
				if old >= 0 {
					if seen[old].Add(1) != 1 {
						dupes.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if last := c.Load(); last >= 0 {
		seen[last].Add(1)
	}
	if dupes.Load() != 0 {
		t.Fatalf("%d values displaced more than once", dupes.Load())
	}
	total := 0
	for i := range seen {
		if n := seen[i].Load(); n == 1 {
			total++
		} else if n > 1 {
			t.Fatalf("value %d observed %d times", i, n)
		}
	}
	if total != writers*perWriter {
		t.Fatalf("observed %d distinct values, want %d", total, writers*perWriter)
	}
}

func TestAllocationProfile(t *testing.T) {
	word := New(int64(1))
	if allocs := testing.AllocsPerRun(1000, func() { word.Store(7) }); allocs != 0 {
		t.Errorf("unboxed Store allocates %.1f allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() { word.Swap(9) }); allocs != 0 {
		t.Errorf("unboxed Swap allocates %.1f allocs/op, want 0", allocs)
	}
	boxed := New("x")
	if allocs := testing.AllocsPerRun(1000, func() { boxed.Store("y") }); allocs < 1 {
		t.Errorf("boxed Store allocates %.1f allocs/op, expected the box", allocs)
	}
}
