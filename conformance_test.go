package repro

// Shared OrderedMap conformance, fuzz and stress suite (internal/dict/
// dicttest) applied to EVERY dictionary in the repository - the trees built
// on the LLX/SCX tree update template and the evaluation's baseline
// competitors alike - resolved through the benchmark registry so the tests
// exercise exactly what the harness benchmarks. Each target carries its own
// quiescent invariant checker: the engine's structural check for EBST, the
// full height/balance bookkeeping for RAVL (after draining the relaxed
// violations), the weight invariants for the chromatic trees, BST-order and
// parent-pointer checks for the lock-based AVL tree, level-ordering checks
// for the two skip lists and the red-black properties for the sequential
// and STM red-black trees.
//
// The same suite also runs against string-keyed instantiations of every
// structure (see stringTargets), which exercises the comparator path end to
// end: no part of the stack may assume integer keys.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/dict/dicttest"
	"repro/internal/ebst"
	"repro/internal/lockavl"
	"repro/internal/ravl"
	"repro/internal/seqrbt"
	"repro/internal/skiplist"
	"repro/internal/stmrbt"
	"repro/internal/stmskip"
)

// templateTreeTargets returns the dicttest targets for the template-based
// trees, with structure-specific invariant checkers.
func templateTreeTargets(tb testing.TB) []dicttest.Target {
	lookup := func(name string) func() dict.IntMap {
		f, ok := bench.Lookup(name)
		if !ok {
			tb.Fatalf("structure %q not in bench registry", name)
		}
		return f.New
	}
	return []dicttest.Target{
		{
			Name: "EBST",
			New:  lookup("EBST"),
			Check: func(d dict.IntMap) error {
				return d.(*ebst.Tree[int64, int64]).CheckStructure()
			},
		},
		{
			Name: "RAVL",
			New:  lookup("RAVL"),
			Check: func(d dict.IntMap) error {
				tr := d.(*ravl.Tree[int64, int64])
				if err := tr.CheckStructure(); err != nil {
					return err
				}
				if _, err := tr.RebalanceAll(ravl.DrainCap(tr.Size())); err != nil {
					return err
				}
				return tr.CheckAVL()
			},
		},
		{
			Name: "Chromatic",
			New:  lookup("Chromatic"),
			Check: func(d dict.IntMap) error {
				// The plain chromatic tree rebalances eagerly: at quiescence
				// it must satisfy the full red-black conditions.
				return d.(*chromatic.Tree[int64, int64]).CheckRedBlack()
			},
		},
		{
			Name: "Chromatic6",
			New:  lookup("Chromatic6"),
			Check: func(d dict.IntMap) error {
				// Chromatic6 may retain up to six violations per search path,
				// so only the structural and weight invariants must hold.
				return d.(*chromatic.Tree[int64, int64]).CheckInvariants()
			},
		},
	}
}

// baselineTargets returns the dicttest targets for the evaluation's baseline
// competitors, again resolved through the registry so the suite tests the
// exact factories the harness benchmarks.
func baselineTargets(tb testing.TB) []dicttest.Target {
	lookup := func(name string) func() dict.IntMap {
		f, ok := bench.Lookup(name)
		if !ok {
			tb.Fatalf("structure %q not in bench registry", name)
		}
		return f.New
	}
	return []dicttest.Target{
		{
			Name: "SkipList",
			New:  lookup("SkipList"),
			Check: func(d dict.IntMap) error {
				return d.(*skiplist.List[int64, int64]).CheckInvariants()
			},
		},
		{
			Name: "LockAVL",
			New:  lookup("LockAVL"),
			Check: func(d dict.IntMap) error {
				return d.(*lockavl.Tree[int64, int64]).CheckInvariants()
			},
		},
		{
			Name: "RBSTM",
			New:  lookup("RBSTM"),
			Check: func(d dict.IntMap) error {
				return d.(*stmrbt.Tree[int64, int64]).CheckInvariants()
			},
		},
		{
			Name: "SkipListSTM",
			New:  lookup("SkipListSTM"),
			Check: func(d dict.IntMap) error {
				return d.(*stmskip.List[int64, int64]).CheckInvariants()
			},
		},
		{
			Name: "RBGlobal",
			New:  lookup("RBGlobal"),
			Check: func(d dict.IntMap) error {
				return d.(*seqrbt.Global[int64, int64]).CheckInvariants()
			},
		},
	}
}

// seqRBTTarget is the purely sequential red-black tree (the Figure 9
// reference point). It is not in the registry because it is not safe for
// concurrent use; it runs the sequential and fuzz suites only.
func seqRBTTarget() dicttest.Target {
	return dicttest.Target{
		Name: "SeqRBT",
		New:  func() dict.IntMap { return seqrbt.New() },
		Check: func(d dict.IntMap) error {
			return d.(*seqrbt.Tree[int64, int64]).CheckInvariants()
		},
	}
}

// allConcurrentTargets is every concurrency-safe structure in the registry:
// the template trees and the baselines, under one suite.
func allConcurrentTargets(tb testing.TB) []dicttest.Target {
	return append(templateTreeTargets(tb), baselineTargets(tb)...)
}

// allSequentialTargets additionally includes the sequential red-black tree.
func allSequentialTargets(tb testing.TB) []dicttest.Target {
	return append(allConcurrentTargets(tb), seqRBTTarget())
}

// stringTreeTargets instantiates the generic template trees with string keys
// and values: EBST and RAVL through NewOrdered (natural string ordering),
// Chromatic through NewLess with an explicit comparator, so both
// construction paths are exercised.
func stringTreeTargets() []dicttest.TargetOf[string, string] {
	stringLess := func(a, b string) bool { return a < b }
	return []dicttest.TargetOf[string, string]{
		{
			Name: "EBST/string",
			New:  func() dict.Map[string, string] { return ebst.NewOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*ebst.Tree[string, string]).CheckStructure()
			},
		},
		{
			Name: "RAVL/string",
			New:  func() dict.Map[string, string] { return ravl.NewOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				tr := d.(*ravl.Tree[string, string])
				if err := tr.CheckStructure(); err != nil {
					return err
				}
				if _, err := tr.RebalanceAll(ravl.DrainCap(tr.Size())); err != nil {
					return err
				}
				return tr.CheckAVL()
			},
		},
		{
			Name: "Chromatic/string",
			New: func() dict.Map[string, string] {
				return chromatic.NewLess[string, string](stringLess)
			},
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*chromatic.Tree[string, string]).CheckRedBlack()
			},
		},
		{
			Name: "Chromatic6/string",
			New: func() dict.Map[string, string] {
				return chromatic.NewLess[string, string](stringLess, chromatic.WithAllowedViolations(6))
			},
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*chromatic.Tree[string, string]).CheckInvariants()
			},
		},
	}
}

// stringBaselineTargets instantiates the five baseline structures with
// string keys and values, mixing the NewOrdered and NewLess construction
// paths so both the devirtualized and the comparator-based walks run.
func stringBaselineTargets() []dicttest.TargetOf[string, string] {
	stringLess := func(a, b string) bool { return a < b }
	return []dicttest.TargetOf[string, string]{
		{
			Name: "SkipList/string",
			New:  func() dict.Map[string, string] { return skiplist.NewOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*skiplist.List[string, string]).CheckInvariants()
			},
		},
		{
			Name: "LockAVL/string",
			New:  func() dict.Map[string, string] { return lockavl.NewLess[string, string](stringLess) },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*lockavl.Tree[string, string]).CheckInvariants()
			},
		},
		{
			Name: "RBSTM/string",
			New:  func() dict.Map[string, string] { return stmrbt.NewOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*stmrbt.Tree[string, string]).CheckInvariants()
			},
		},
		{
			Name: "SkipListSTM/string",
			New:  func() dict.Map[string, string] { return stmskip.NewLess[string, string](stringLess) },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*stmskip.List[string, string]).CheckInvariants()
			},
		},
		{
			Name: "RBGlobal/string",
			New:  func() dict.Map[string, string] { return seqrbt.NewGlobalOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*seqrbt.Global[string, string]).CheckInvariants()
			},
		},
	}
}

// stringSeqRBTTarget is the string-keyed sequential tree (sequential and
// fuzz suites only).
func stringSeqRBTTarget() dicttest.TargetOf[string, string] {
	stringLess := func(a, b string) bool { return a < b }
	return dicttest.TargetOf[string, string]{
		Name: "SeqRBT/string",
		New:  func() dict.Map[string, string] { return seqrbt.NewLess[string, string](stringLess) },
		Less: stringLess,
		Check: func(d dict.Map[string, string]) error {
			return d.(*seqrbt.Tree[string, string]).CheckInvariants()
		},
	}
}

func allStringConcurrentTargets() []dicttest.TargetOf[string, string] {
	return append(stringTreeTargets(), stringBaselineTargets()...)
}

func allStringSequentialTargets() []dicttest.TargetOf[string, string] {
	return append(allStringConcurrentTargets(), stringSeqRBTTarget())
}

// stringKey derives a compact string key from the suite's random stream.
// The space mixes short and long keys sharing prefixes, which stresses the
// comparator path more than fixed-width keys would.
func stringKey(u uint64) string {
	base := fmt.Sprintf("k%02d", u%97)
	if u%3 == 0 {
		return base + "/long-suffix"
	}
	return base
}

func stringVal(u uint64) string { return fmt.Sprintf("v%d", u%1024) }

// TestOrderedMapConformance runs the shared sequential suite - every
// operation, including Successor and Predecessor, mirrored against a model
// map - over every structure in the registry plus the sequential red-black
// tree.
func TestOrderedMapConformance(t *testing.T) {
	for _, tgt := range allSequentialTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				dicttest.SequentialConformance(t, tgt, 6000, 200, seed)
			}
			// A tiny key range maximizes structural churn per key.
			dicttest.SequentialConformance(t, tgt, 4000, 8, 99)
		})
	}
}

// TestStringKeyedConformance runs the same sequential suite over the
// string-keyed instantiations of every structure.
func TestStringKeyedConformance(t *testing.T) {
	for _, tgt := range allStringSequentialTargets() {
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				dicttest.SequentialConformanceKV(t, tgt, 6000, stringKey, stringVal, seed)
			}
			// A tiny key space maximizes structural churn per key.
			dicttest.SequentialConformanceKV(t, tgt, 4000,
				func(u uint64) string { return fmt.Sprintf("k%d", u%8) }, stringVal, 99)
		})
	}
}

// TestStringKeyedConcurrentStress runs the shared concurrent suite over the
// string-keyed instantiations of every concurrency-safe structure, with
// per-goroutine disjoint key prefixes.
func TestStringKeyedConcurrentStress(t *testing.T) {
	for _, tgt := range allStringConcurrentTargets() {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ConcurrentStressKV(t, tgt, 4, 4000,
				func(g int, u uint64) string { return fmt.Sprintf("g%d/%03d", g, u%150) },
				stringVal)
		})
	}
}

// TestOrderedMapConcurrentStress runs the shared concurrent suite with the
// per-structure invariant checks at quiescence over every concurrency-safe
// structure in the registry.
func TestOrderedMapConcurrentStress(t *testing.T) {
	for _, tgt := range allConcurrentTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ConcurrentStress(t, tgt, 4, 4000, 150)
		})
	}
}

// TestHotKeyOverwriteStress hammers one key with concurrent overwrites while
// the same key (and its neighbours) are inserted and deleted, over every
// concurrency-safe structure in the registry. This is the targeted stress
// for the SCX-free in-place overwrite: values observed for the hot key must
// always be ones a writer actually published, and a successful delete at
// quiescence must never be undone by a racing overwrite (no lost
// finalization / resurrection). It runs under -race in CI (the race job's
// test pattern matches "Stress").
func TestHotKeyOverwriteStress(t *testing.T) {
	for _, tgt := range allConcurrentTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.HotKeyStress(t, tgt, 4, 6000)
		})
	}
}

// TestReclamationChurnStress is the epoch-reclamation torture test: several
// writers insert and delete the SAME small key window flat out - so every
// leaf and internal node backing the window is retired, passes through the
// grace period and is recycled continuously - while readers walk the window
// with Get, Successor chains and RangeScan. Readers assert that every key
// and value they observe is one the workload could legitimately contain; a
// recycled-too-early node surfaces as a foreign key, an unpublished value, a
// non-monotonic walk, or (under -tags reclaimcheck, which CI also runs) a
// deterministic generation-check panic in the read path. It runs under -race
// in CI (the race job's test pattern matches "Stress").
func TestReclamationChurnStress(t *testing.T) {
	for _, tgt := range allConcurrentTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ChurnStress(t, tgt, 4, 8000)
		})
	}
}

// TestHotKeyOverwriteStressBoxedValues repeats the hot-key stress with
// string values on the template trees and the two rewritten baselines, so
// the boxed (pointer) representation of the value cells - the fallback for
// non-word-sized value types - goes through the same overwrite races as the
// unboxed one.
func TestHotKeyOverwriteStressBoxedValues(t *testing.T) {
	targets := []dicttest.TargetOf[int64, string]{
		{
			Name: "Chromatic/boxed",
			New:  func() dict.Map[int64, string] { return chromatic.NewOrdered[int64, string]() },
			Less: func(a, b int64) bool { return a < b },
		},
		{
			Name: "EBST/boxed",
			New:  func() dict.Map[int64, string] { return ebst.NewOrdered[int64, string]() },
			Less: func(a, b int64) bool { return a < b },
		},
		{
			Name: "SkipList/boxed",
			New:  func() dict.Map[int64, string] { return skiplist.NewOrdered[int64, string]() },
			Less: func(a, b int64) bool { return a < b },
		},
		{
			Name: "LockAVL/boxed",
			New:  func() dict.Map[int64, string] { return lockavl.NewOrdered[int64, string]() },
			Less: func(a, b int64) bool { return a < b },
		},
	}
	const hot = int64(1 << 20)
	neighbors := []int64{hot - 2, hot - 1, hot + 1, hot + 2}
	for _, tgt := range targets {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.HotKeyStressKV(t, tgt, 4, 4000, hot, neighbors,
				func(w, i int) string { return fmt.Sprintf("w%d/%d", w, i) },
				"churn")
		})
	}
}

// FuzzOrderedMapAgainstModel feeds an arbitrary byte stream, decoded as
// (opcode, key, value) triples, to every structure - template trees and
// baselines, both the int64 registry instantiations and the string-keyed
// generic ones - and compares each result with the model map; the invariant
// checkers run at the end of every input. Run with
// `go test -fuzz=FuzzOrderedMapAgainstModel .` for continuous fuzzing; the
// seed corpus below runs as part of `go test`.
func FuzzOrderedMapAgainstModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 5, 1, 0, 5, 2, 1, 5, 0})
	f.Add([]byte{0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 1, 2, 0, 3, 1, 0, 4, 9, 0})
	// An ascending then descending churn that forces rebalancing.
	var churn []byte
	for i := byte(0); i < 60; i++ {
		churn = append(churn, 0, i, i)
	}
	for i := byte(0); i < 60; i += 2 {
		churn = append(churn, 1, i, 0)
	}
	for i := byte(60); i > 0; i-- {
		churn = append(churn, 3, i, 0, 4, i, 0)
	}
	f.Add(churn)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*5000 {
			t.Skip("input larger than the op budget")
		}
		for _, tgt := range allSequentialTargets(t) {
			dicttest.FuzzOps(t, tgt, data)
		}
		for _, tgt := range allStringSequentialTargets() {
			dicttest.FuzzOpsKV(t, tgt, stringKey, stringVal, data)
		}
	})
}

// TestRegistryCoversAllStructures pins the registry contents the harness
// and the figures rely on - the paper's own algorithms (chromatic trees),
// the engine-based trees (EBST, RAVL) and the competitors - and requires
// every one of them to be an ordered map: since the generic unification,
// Successor/Predecessor are part of every structure's contract.
func TestRegistryCoversAllStructures(t *testing.T) {
	for _, name := range []string{"Chromatic", "Chromatic6", "RAVL", "EBST", "SkipList", "LockAVL", "RBSTM", "SkipListSTM", "RBGlobal"} {
		f, ok := bench.Lookup(name)
		if !ok {
			t.Errorf("registry is missing %q", name)
			continue
		}
		if _, ok := f.New().(dict.IntOrderedMap); !ok {
			t.Errorf("%s does not implement dict.OrderedMap", name)
		}
	}
	if err := quickSmoke(); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryAndFigure8StayInSync is the parity test between the benchmark
// registry and the Figure-8 structure list: every experiment's default grid
// must cover exactly the registered structures, every listed name must
// resolve through Lookup, and every factory must construct a structure that
// reports the name it is registered under.
func TestRegistryAndFigure8StayInSync(t *testing.T) {
	if !reflect.DeepEqual(bench.Figure8Structures(), bench.Names()) {
		t.Fatalf("Figure8Structures() = %v, registry Names() = %v",
			bench.Figure8Structures(), bench.Names())
	}
	for _, name := range bench.Figure8Structures() {
		f, ok := bench.Lookup(name)
		if !ok {
			t.Errorf("Figure-8 structure %q does not resolve through Lookup", name)
			continue
		}
		d := f.New()
		named, ok := d.(dict.Named)
		if !ok {
			t.Errorf("%s does not implement dict.Named", name)
			continue
		}
		if got := named.Name(); got != name {
			t.Errorf("factory %q constructs a structure reporting Name() = %q", name, got)
		}
	}
	// The sequential reference factory stays out of the concurrent grid.
	seq := bench.SequentialRBTFactory()
	for _, name := range bench.Figure8Structures() {
		if name == seq.Name {
			t.Errorf("sequential-only %q must not be in the Figure-8 grid", seq.Name)
		}
	}
}

// TestSnapshotConformance runs the shared snapshot suite - frozen views that
// never observe post-snapshot updates (including in-place overwrites),
// consistent-cut checks under concurrent churn, and SnapshotDiff against the
// model diff - over every structure in the registry. Structures without O(1)
// snapshots (the baselines) are skipped by the suite itself, so this test
// also documents exactly which structures are Snapshotters.
func TestSnapshotConformance(t *testing.T) {
	for _, tgt := range allConcurrentTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.SnapshotSuite(t, tgt)
		})
	}
}

// TestStringKeyedSnapshotConformance runs the snapshot suite over the
// string-keyed instantiations of the template trees: the frozen walk and the
// structural diff must not assume integer keys. The key derivation is
// injective (unlike stringKey) because the consistent-cut check needs
// per-writer disjoint keys.
func TestStringKeyedSnapshotConformance(t *testing.T) {
	snapKey := func(u uint64) string { return fmt.Sprintf("s%06d", u%100000) }
	for _, tgt := range allStringConcurrentTargets() {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.SnapshotSuiteKV(t, tgt, snapKey, stringVal)
		})
	}
}

// TestSnapshotAdapterFallback pins the semantics of dict.AdaptSnapshot, the
// weakly consistent fallback for structures without native snapshots: views
// must report Consistent() == false and Version() == 0, delegate Get to the
// live map, and produce ordered scans.
func TestSnapshotAdapterFallback(t *testing.T) {
	l := skiplist.NewOrdered[int64, int64]()
	for i := int64(0); i < 100; i++ {
		l.Insert(i*2, i)
	}
	sn := dict.AdaptSnapshot[int64, int64](l, func(a, b int64) bool { return a < b })
	view := sn.Snapshot()
	defer view.Release()
	if view.Consistent() {
		t.Fatal("adapter view claims to be consistent")
	}
	if view.Version() != 0 {
		t.Fatalf("adapter view Version() = %d, want 0", view.Version())
	}
	if v, ok := view.Get(10); !ok || v != 5 {
		t.Fatalf("adapter Get(10) = (%d,%v), want (5,true)", v, ok)
	}
	var keys []int64
	n := view.Ascend(func(k, v int64) bool {
		keys = append(keys, k)
		return true
	})
	if n != 100 || len(keys) != 100 {
		t.Fatalf("adapter Ascend visited %d keys, want 100", n)
	}
	for i, k := range keys {
		if k != int64(i*2) {
			t.Fatalf("adapter Ascend[%d] = %d, want %d", i, k, i*2)
		}
	}
	count := 0
	view.RangeScan(10, 20, func(k, v int64) bool {
		count++
		return true
	})
	if count != 6 {
		t.Fatalf("adapter RangeScan(10,20) visited %d keys, want 6", count)
	}
	// Adapter views are live: they see later updates (weak consistency).
	l.Insert(1, 999)
	if v, ok := view.Get(1); !ok || v != 999 {
		t.Fatalf("adapter view missed a live update: (%d,%v)", v, ok)
	}
}

// TestChromaticLoadOrStore pins the semantics of the insert-if-absent
// primitive the generic stack added for shared per-key state (see
// examples/wordindex): exactly one of the racing stores wins and every
// later call observes the winner.
func TestChromaticLoadOrStore(t *testing.T) {
	tr := chromatic.NewOrdered[string, int64]()
	if v, loaded := tr.LoadOrStore("a", 1); loaded || v != 1 {
		t.Fatalf("first LoadOrStore = (%d,%v), want (1,false)", v, loaded)
	}
	if v, loaded := tr.LoadOrStore("a", 2); !loaded || v != 1 {
		t.Fatalf("second LoadOrStore = (%d,%v), want (1,true)", v, loaded)
	}
	done := make(chan int64, 8)
	for g := 0; g < 8; g++ {
		go func(g int64) {
			v, _ := tr.LoadOrStore("contended", g)
			done <- v
		}(int64(g))
	}
	first := <-done
	for i := 0; i < 7; i++ {
		if v := <-done; v != first {
			t.Fatalf("racing LoadOrStore observed both %d and %d", first, v)
		}
	}
	if v, ok := tr.Get("contended"); !ok || v != first {
		t.Fatalf("Get after racing LoadOrStore = (%d,%v), want (%d,true)", v, ok, first)
	}
}

// quickSmoke double-checks that factories return independent instances.
func quickSmoke() error {
	f, _ := bench.Lookup("RAVL")
	a, b := f.New(), f.New()
	a.Insert(1, 1)
	if _, ok := b.Get(1); ok {
		return fmt.Errorf("factories share state")
	}
	return nil
}
