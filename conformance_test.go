package repro

// Shared OrderedMap conformance, fuzz and stress suite (internal/dict/
// dicttest) applied to every tree built on the LLX/SCX tree update
// template, resolved through the benchmark registry so the tests exercise
// exactly what the harness benchmarks. Each target carries its own
// quiescent invariant checker: the engine's structural check for EBST, the
// full height/balance bookkeeping for RAVL (after draining the relaxed
// violations), and the weight invariants for the chromatic trees.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/dict/dicttest"
	"repro/internal/ebst"
	"repro/internal/ravl"
)

// templateTreeTargets returns the dicttest targets for the template-based
// trees, with structure-specific invariant checkers.
func templateTreeTargets(tb testing.TB) []dicttest.Target {
	lookup := func(name string) func() dict.Map {
		f, ok := bench.Lookup(name)
		if !ok {
			tb.Fatalf("structure %q not in bench registry", name)
		}
		return f.New
	}
	return []dicttest.Target{
		{
			Name: "EBST",
			New:  lookup("EBST"),
			Check: func(d dict.Map) error {
				return d.(*ebst.Tree).CheckStructure()
			},
		},
		{
			Name: "RAVL",
			New:  lookup("RAVL"),
			Check: func(d dict.Map) error {
				tr := d.(*ravl.Tree)
				if err := tr.CheckStructure(); err != nil {
					return err
				}
				if _, err := tr.RebalanceAll(ravl.DrainCap(tr.Size())); err != nil {
					return err
				}
				return tr.CheckAVL()
			},
		},
		{
			Name: "Chromatic",
			New:  lookup("Chromatic"),
			Check: func(d dict.Map) error {
				// The plain chromatic tree rebalances eagerly: at quiescence
				// it must satisfy the full red-black conditions.
				return d.(*chromatic.Tree).CheckRedBlack()
			},
		},
		{
			Name: "Chromatic6",
			New:  lookup("Chromatic6"),
			Check: func(d dict.Map) error {
				// Chromatic6 may retain up to six violations per search path,
				// so only the structural and weight invariants must hold.
				return d.(*chromatic.Tree).CheckInvariants()
			},
		},
	}
}

// TestOrderedMapConformance runs the shared sequential suite - every
// operation, including Successor and Predecessor, mirrored against a model
// map - over each template-based tree.
func TestOrderedMapConformance(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				dicttest.SequentialConformance(t, tgt, 6000, 200, seed)
			}
			// A tiny key range maximizes structural churn per key.
			dicttest.SequentialConformance(t, tgt, 4000, 8, 99)
		})
	}
}

// TestOrderedMapConcurrentStress runs the shared concurrent suite with the
// per-structure invariant checks at quiescence.
func TestOrderedMapConcurrentStress(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ConcurrentStress(t, tgt, 4, 4000, 150)
		})
	}
}

// FuzzOrderedMapAgainstModel feeds an arbitrary byte stream, decoded as
// (opcode, key, value) triples, to every template-based tree and compares
// each result with the model map; the invariant checkers run at the end of
// every input. Run with `go test -fuzz=FuzzOrderedMapAgainstModel .` for
// continuous fuzzing; the seed corpus below runs as part of `go test`.
func FuzzOrderedMapAgainstModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 5, 1, 0, 5, 2, 1, 5, 0})
	f.Add([]byte{0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 1, 2, 0, 3, 1, 0, 4, 9, 0})
	// An ascending then descending churn that forces rebalancing.
	var churn []byte
	for i := byte(0); i < 60; i++ {
		churn = append(churn, 0, i, i)
	}
	for i := byte(0); i < 60; i += 2 {
		churn = append(churn, 1, i, 0)
	}
	for i := byte(60); i > 0; i-- {
		churn = append(churn, 3, i, 0, 4, i, 0)
	}
	f.Add(churn)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*5000 {
			t.Skip("input larger than the op budget")
		}
		for _, tgt := range templateTreeTargets(t) {
			dicttest.FuzzOps(t, tgt, data)
		}
	})
}

// TestRegistryCoversTemplateTrees pins the registry contents the harness
// and the figures rely on: the paper's own algorithms (chromatic trees),
// the engine-based trees (EBST, RAVL) and the competitors.
func TestRegistryCoversTemplateTrees(t *testing.T) {
	for _, name := range []string{"Chromatic", "Chromatic6", "RAVL", "EBST", "SkipList", "LockAVL", "RBSTM", "SkipListSTM", "RBGlobal"} {
		if _, ok := bench.Lookup(name); !ok {
			t.Errorf("registry is missing %q", name)
		}
	}
	// Every ordered structure the registry exposes must satisfy OrderedMap
	// through the shared engine or its own query layer.
	for _, name := range []string{"Chromatic", "Chromatic6", "RAVL", "EBST"} {
		f, _ := bench.Lookup(name)
		if _, ok := f.New().(dict.OrderedMap); !ok {
			t.Errorf("%s does not implement dict.OrderedMap", name)
		}
	}
	if err := quickSmoke(); err != nil {
		t.Fatal(err)
	}
}

// quickSmoke double-checks that factories return independent instances.
func quickSmoke() error {
	f, _ := bench.Lookup("RAVL")
	a, b := f.New(), f.New()
	a.Insert(1, 1)
	if _, ok := b.Get(1); ok {
		return fmt.Errorf("factories share state")
	}
	return nil
}
