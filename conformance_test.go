package repro

// Shared OrderedMap conformance, fuzz and stress suite (internal/dict/
// dicttest) applied to every tree built on the LLX/SCX tree update
// template, resolved through the benchmark registry so the tests exercise
// exactly what the harness benchmarks. Each target carries its own
// quiescent invariant checker: the engine's structural check for EBST, the
// full height/balance bookkeeping for RAVL (after draining the relaxed
// violations), and the weight invariants for the chromatic trees.
//
// The same suite also runs against string-keyed instantiations of the
// generic trees (see stringTreeTargets), which exercises the comparator
// path end to end: no part of the stack may assume integer keys.

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/dict/dicttest"
	"repro/internal/ebst"
	"repro/internal/ravl"
)

// templateTreeTargets returns the dicttest targets for the template-based
// trees, with structure-specific invariant checkers.
func templateTreeTargets(tb testing.TB) []dicttest.Target {
	lookup := func(name string) func() dict.IntMap {
		f, ok := bench.Lookup(name)
		if !ok {
			tb.Fatalf("structure %q not in bench registry", name)
		}
		return f.New
	}
	return []dicttest.Target{
		{
			Name: "EBST",
			New:  lookup("EBST"),
			Check: func(d dict.IntMap) error {
				return d.(*ebst.Tree[int64, int64]).CheckStructure()
			},
		},
		{
			Name: "RAVL",
			New:  lookup("RAVL"),
			Check: func(d dict.IntMap) error {
				tr := d.(*ravl.Tree[int64, int64])
				if err := tr.CheckStructure(); err != nil {
					return err
				}
				if _, err := tr.RebalanceAll(ravl.DrainCap(tr.Size())); err != nil {
					return err
				}
				return tr.CheckAVL()
			},
		},
		{
			Name: "Chromatic",
			New:  lookup("Chromatic"),
			Check: func(d dict.IntMap) error {
				// The plain chromatic tree rebalances eagerly: at quiescence
				// it must satisfy the full red-black conditions.
				return d.(*chromatic.Tree[int64, int64]).CheckRedBlack()
			},
		},
		{
			Name: "Chromatic6",
			New:  lookup("Chromatic6"),
			Check: func(d dict.IntMap) error {
				// Chromatic6 may retain up to six violations per search path,
				// so only the structural and weight invariants must hold.
				return d.(*chromatic.Tree[int64, int64]).CheckInvariants()
			},
		},
	}
}

// stringTreeTargets instantiates the generic trees with string keys and
// values: EBST and RAVL through NewOrdered (natural string ordering),
// Chromatic through NewLess with an explicit comparator, so both
// construction paths are exercised.
func stringTreeTargets() []dicttest.TargetOf[string, string] {
	stringLess := func(a, b string) bool { return a < b }
	return []dicttest.TargetOf[string, string]{
		{
			Name: "EBST/string",
			New:  func() dict.Map[string, string] { return ebst.NewOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*ebst.Tree[string, string]).CheckStructure()
			},
		},
		{
			Name: "RAVL/string",
			New:  func() dict.Map[string, string] { return ravl.NewOrdered[string, string]() },
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				tr := d.(*ravl.Tree[string, string])
				if err := tr.CheckStructure(); err != nil {
					return err
				}
				if _, err := tr.RebalanceAll(ravl.DrainCap(tr.Size())); err != nil {
					return err
				}
				return tr.CheckAVL()
			},
		},
		{
			Name: "Chromatic/string",
			New: func() dict.Map[string, string] {
				return chromatic.NewLess[string, string](stringLess)
			},
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*chromatic.Tree[string, string]).CheckRedBlack()
			},
		},
		{
			Name: "Chromatic6/string",
			New: func() dict.Map[string, string] {
				return chromatic.NewLess[string, string](stringLess, chromatic.WithAllowedViolations(6))
			},
			Less: stringLess,
			Check: func(d dict.Map[string, string]) error {
				return d.(*chromatic.Tree[string, string]).CheckInvariants()
			},
		},
	}
}

// stringKey derives a compact string key from the suite's random stream.
// The space mixes short and long keys sharing prefixes, which stresses the
// comparator path more than fixed-width keys would.
func stringKey(u uint64) string {
	base := fmt.Sprintf("k%02d", u%97)
	if u%3 == 0 {
		return base + "/long-suffix"
	}
	return base
}

func stringVal(u uint64) string { return fmt.Sprintf("v%d", u%1024) }

// TestOrderedMapConformance runs the shared sequential suite - every
// operation, including Successor and Predecessor, mirrored against a model
// map - over each template-based tree.
func TestOrderedMapConformance(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				dicttest.SequentialConformance(t, tgt, 6000, 200, seed)
			}
			// A tiny key range maximizes structural churn per key.
			dicttest.SequentialConformance(t, tgt, 4000, 8, 99)
		})
	}
}

// TestStringKeyedConformance runs the same sequential suite over the
// string-keyed instantiations of the generic trees.
func TestStringKeyedConformance(t *testing.T) {
	for _, tgt := range stringTreeTargets() {
		t.Run(tgt.Name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 3; seed++ {
				dicttest.SequentialConformanceKV(t, tgt, 6000, stringKey, stringVal, seed)
			}
			// A tiny key space maximizes structural churn per key.
			dicttest.SequentialConformanceKV(t, tgt, 4000,
				func(u uint64) string { return fmt.Sprintf("k%d", u%8) }, stringVal, 99)
		})
	}
}

// TestStringKeyedConcurrentStress runs the shared concurrent suite over the
// string-keyed trees, with per-goroutine disjoint key prefixes.
func TestStringKeyedConcurrentStress(t *testing.T) {
	for _, tgt := range stringTreeTargets() {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ConcurrentStressKV(t, tgt, 4, 4000,
				func(g int, u uint64) string { return fmt.Sprintf("g%d/%03d", g, u%150) },
				stringVal)
		})
	}
}

// TestOrderedMapConcurrentStress runs the shared concurrent suite with the
// per-structure invariant checks at quiescence.
func TestOrderedMapConcurrentStress(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ConcurrentStress(t, tgt, 4, 4000, 150)
		})
	}
}

// FuzzOrderedMapAgainstModel feeds an arbitrary byte stream, decoded as
// (opcode, key, value) triples, to every template-based tree - both the
// int64 registry instantiations and the string-keyed generic ones - and
// compares each result with the model map; the invariant checkers run at
// the end of every input. Run with `go test -fuzz=FuzzOrderedMapAgainstModel .`
// for continuous fuzzing; the seed corpus below runs as part of `go test`.
func FuzzOrderedMapAgainstModel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{0, 5, 1, 0, 5, 2, 1, 5, 0})
	f.Add([]byte{0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 1, 2, 0, 3, 1, 0, 4, 9, 0})
	// An ascending then descending churn that forces rebalancing.
	var churn []byte
	for i := byte(0); i < 60; i++ {
		churn = append(churn, 0, i, i)
	}
	for i := byte(0); i < 60; i += 2 {
		churn = append(churn, 1, i, 0)
	}
	for i := byte(60); i > 0; i-- {
		churn = append(churn, 3, i, 0, 4, i, 0)
	}
	f.Add(churn)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 3*5000 {
			t.Skip("input larger than the op budget")
		}
		for _, tgt := range templateTreeTargets(t) {
			dicttest.FuzzOps(t, tgt, data)
		}
		for _, tgt := range stringTreeTargets() {
			dicttest.FuzzOpsKV(t, tgt, stringKey, stringVal, data)
		}
	})
}

// TestRegistryCoversTemplateTrees pins the registry contents the harness
// and the figures rely on: the paper's own algorithms (chromatic trees),
// the engine-based trees (EBST, RAVL) and the competitors.
func TestRegistryCoversTemplateTrees(t *testing.T) {
	for _, name := range []string{"Chromatic", "Chromatic6", "RAVL", "EBST", "SkipList", "LockAVL", "RBSTM", "SkipListSTM", "RBGlobal"} {
		if _, ok := bench.Lookup(name); !ok {
			t.Errorf("registry is missing %q", name)
		}
	}
	// Every ordered structure the registry exposes must satisfy OrderedMap
	// through the shared engine or its own query layer.
	for _, name := range []string{"Chromatic", "Chromatic6", "RAVL", "EBST"} {
		f, _ := bench.Lookup(name)
		if _, ok := f.New().(dict.IntOrderedMap); !ok {
			t.Errorf("%s does not implement dict.OrderedMap", name)
		}
	}
	if err := quickSmoke(); err != nil {
		t.Fatal(err)
	}
}

// TestChromaticLoadOrStore pins the semantics of the insert-if-absent
// primitive the generic stack added for shared per-key state (see
// examples/wordindex): exactly one of the racing stores wins and every
// later call observes the winner.
func TestChromaticLoadOrStore(t *testing.T) {
	tr := chromatic.NewOrdered[string, int64]()
	if v, loaded := tr.LoadOrStore("a", 1); loaded || v != 1 {
		t.Fatalf("first LoadOrStore = (%d,%v), want (1,false)", v, loaded)
	}
	if v, loaded := tr.LoadOrStore("a", 2); !loaded || v != 1 {
		t.Fatalf("second LoadOrStore = (%d,%v), want (1,true)", v, loaded)
	}
	done := make(chan int64, 8)
	for g := 0; g < 8; g++ {
		go func(g int64) {
			v, _ := tr.LoadOrStore("contended", g)
			done <- v
		}(int64(g))
	}
	first := <-done
	for i := 0; i < 7; i++ {
		if v := <-done; v != first {
			t.Fatalf("racing LoadOrStore observed both %d and %d", first, v)
		}
	}
	if v, ok := tr.Get("contended"); !ok || v != first {
		t.Fatalf("Get after racing LoadOrStore = (%d,%v), want (%d,true)", v, ok, first)
	}
}

// quickSmoke double-checks that factories return independent instances.
func quickSmoke() error {
	f, _ := bench.Lookup("RAVL")
	a, b := f.New(), f.New()
	a.Insert(1, 1)
	if _, ok := b.Get(1); ok {
		return fmt.Errorf("factories share state")
	}
	return nil
}
