package repro

// Repository-level benchmarks: one benchmark family per table/figure of the
// paper's evaluation (Section 6). These are deliberately scaled down so that
// `go test -bench=. -benchmem` finishes in minutes on a laptop; the full
// parameter sweep (the paper's exact thread counts, key ranges and five
// second trials) is produced by cmd/chromatic-bench.
//
//	BenchmarkFigure8*   throughput for each operation mix x key range x
//	                    data structure (Figure 8); parallelism comes from
//	                    b.RunParallel, so use -cpu to sweep thread counts.
//	BenchmarkFigure9*   single-threaded overhead relative to the sequential
//	                    red-black tree (Figure 9).
//	BenchmarkHeightBound    the Section 5.3 height experiment.
//	BenchmarkViolationThreshold  the Section 5.6 Chromatic6 ablation.
//	BenchmarkPrimitives     LLX/SCX microbenchmarks (Section 3 overhead).

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/workload"
)

// figure8Structures are the concurrent dictionaries included in the Figure 8
// benchmarks. The STM-based structures are restricted to the small key range
// (as in the paper, which omits them from the largest range because even
// prefilling them takes too long).
var figure8Structures = []string{
	"Chromatic", "Chromatic6", "RAVL", "SkipList", "LockAVL", "EBST", "RBGlobal",
}

var figure8STMStructures = []string{"RBSTM", "SkipListSTM"}

func benchmarkDictionary(b *testing.B, factory dict.IntFactory, mix workload.Mix, keyRange int64) {
	d := factory.New()
	workload.Prefill(d, mix, keyRange, 0.05, 1)
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen := workload.NewGenerator(mix, keyRange, 1000+worker.Add(1))
		span := gen.ScanSpan()
		for pb.Next() {
			op, key := gen.Next()
			workload.Apply(d, op, key, span)
		}
	})
}

func benchmarkFigure8(b *testing.B, mix workload.Mix) {
	for _, keyRange := range []int64{100, 10_000} {
		structures := figure8Structures
		if keyRange <= 100 {
			structures = append(append([]string{}, figure8Structures...), figure8STMStructures...)
		}
		for _, name := range structures {
			factory, ok := bench.Lookup(name)
			if !ok {
				b.Fatalf("unknown structure %q", name)
			}
			b.Run(fmt.Sprintf("range=%d/%s", keyRange, name), func(b *testing.B) {
				benchmarkDictionary(b, factory, mix, keyRange)
			})
		}
	}
}

// BenchmarkFigure8Mix50i50d is the update-only row of Figure 8.
func BenchmarkFigure8Mix50i50d(b *testing.B) { benchmarkFigure8(b, workload.Mix50i50d) }

// BenchmarkFigure8Mix20i10d is the mixed row of Figure 8.
func BenchmarkFigure8Mix20i10d(b *testing.B) { benchmarkFigure8(b, workload.Mix20i10d) }

// BenchmarkFigure8Mix0i0d is the read-only row of Figure 8.
func BenchmarkFigure8Mix0i0d(b *testing.B) { benchmarkFigure8(b, workload.Mix0i0d) }

// BenchmarkFigure8LargeKeyRange covers the paper's third column (key range
// 10^6) for the two headline structures and the skip list, on the mixed
// workload, so the low-contention regime is exercised without making the
// default benchmark run take tens of minutes.
func BenchmarkFigure8LargeKeyRange(b *testing.B) {
	for _, name := range []string{"Chromatic", "Chromatic6", "RAVL", "SkipList"} {
		factory, _ := bench.Lookup(name)
		b.Run(name, func(b *testing.B) {
			benchmarkDictionary(b, factory, workload.Mix20i10d, 1_000_000)
		})
	}
}

// BenchmarkFigure9 measures single-threaded throughput of every structure
// and of the sequential red-black tree baseline on the same workload; the
// ratio of the reported ns/op values is the height of the bars in Figure 9.
func BenchmarkFigure9(b *testing.B) {
	const keyRange = 100_000
	factories := append([]dict.IntFactory{bench.SequentialRBTFactory()}, bench.Registry()...)
	for _, mix := range []workload.Mix{workload.Mix50i50d, workload.Mix20i10d, workload.Mix0i0d} {
		for _, factory := range factories {
			if factory.Name == "RBSTM" || factory.Name == "SkipListSTM" {
				// Prefilling the STM structures at this key range dominates
				// the benchmark; the paper omits them here for that reason.
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", mix, factory.Name), func(b *testing.B) {
				d := factory.New()
				workload.Prefill(d, mix, keyRange, 0.05, 1)
				gen := workload.NewGenerator(mix, keyRange, 99)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op, key := gen.Next()
					workload.Apply(d, op, key, gen.ScanSpan())
				}
			})
		}
	}
}

// BenchmarkHeightBound measures update throughput while also verifying, per
// iteration batch, that the chromatic tree height stays within the
// O(c + log n) bound of Section 5.3 (checked at quiescence after the timer
// stops).
func BenchmarkHeightBound(b *testing.B) {
	const keyRange = 1 << 16
	tree := chromatic.New()
	workload.Prefill(tree, workload.Mix50i50d, keyRange, 0.05, 1)
	var worker atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		gen := workload.NewGenerator(workload.Mix50i50d, keyRange, worker.Add(1))
		for pb.Next() {
			op, key := gen.Next()
			workload.Apply(tree, op, key, gen.ScanSpan())
		}
	})
	b.StopTimer()
	n := tree.Size()
	bound := 2*ceilLog2(n+1) + 2
	if h := tree.Height(); h > bound {
		b.Fatalf("height %d exceeds red-black bound %d for %d keys", h, bound, n)
	}
	if err := tree.CheckRedBlack(); err != nil {
		b.Fatalf("tree not balanced at quiescence: %v", err)
	}
	b.ReportMetric(float64(tree.Height()), "height")
	b.ReportMetric(float64(n), "keys")
}

// BenchmarkViolationThreshold is the Section 5.6 ablation: the same
// update-heavy workload against chromatic trees that tolerate different
// numbers of violations per search path before rebalancing.
func BenchmarkViolationThreshold(b *testing.B) {
	const keyRange = 10_000
	for _, allowed := range []int{0, 1, 2, 4, 6, 8, 16} {
		b.Run(fmt.Sprintf("allowed=%d", allowed), func(b *testing.B) {
			tree := chromatic.New(chromatic.WithAllowedViolations(allowed))
			workload.Prefill(tree, workload.Mix50i50d, keyRange, 0.05, 1)
			var worker atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				gen := workload.NewGenerator(workload.Mix50i50d, keyRange, worker.Add(1))
				for pb.Next() {
					op, key := gen.Next()
					workload.Apply(tree, op, key, gen.ScanSpan())
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(tree.Stats().RebalanceTotal())/float64(b.N), "rebalance/op")
		})
	}
}

// BenchmarkPrimitives measures the building blocks: the chromatic tree's
// three dictionary operations individually, which bound the cost of the
// LLX/SCX machinery on real updates.
func BenchmarkPrimitives(b *testing.B) {
	const keyRange = 1 << 16
	b.Run("Get", func(b *testing.B) {
		tree := chromatic.New()
		workload.PrefillExact(tree, keyRange, keyRange/2, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Get(int64(i) % keyRange)
		}
	})
	b.Run("InsertDelete", func(b *testing.B) {
		tree := chromatic.New()
		workload.PrefillExact(tree, keyRange, keyRange/2, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := int64(i) % keyRange
			if i%2 == 0 {
				tree.Insert(key, key)
			} else {
				tree.Delete(key)
			}
		}
	})
	b.Run("Successor", func(b *testing.B) {
		tree := chromatic.New()
		workload.PrefillExact(tree, keyRange, keyRange/2, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.Successor(int64(i) % keyRange)
		}
	})
}

func ceilLog2(n int) int {
	h := 0
	for v := 1; v < n; v *= 2 {
		h++
	}
	return h
}
