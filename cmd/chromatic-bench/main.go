// Command chromatic-bench regenerates the evaluation of Brown, Ellen and
// Ruppert, "A General Technique for Non-blocking Trees" (PPoPP 2014), on the
// local machine.
//
// Experiments:
//
//	figure8   throughput vs thread count for every data structure, for the
//	          3 operation mixes x 3 key ranges of Figure 8 extended by a
//	          scan-heavy mix (5i-5d-50s), a zipfian (hot-key) variant of
//	          every cell, and a snapshot-scan variant of every scanning cell
//	          (each scan captures an O(1) versioned snapshot and walks the
//	          frozen view retry-free); narrow with -mixes/-dists/-scanmode
//	          (with -paper the grid is exactly the paper's: its three mixes,
//	          uniform keys, live scans)
//	figure9   single-threaded throughput relative to the sequential
//	          red-black tree (Figure 9)
//	ratios    the headline Chromatic6-vs-competitor speedups quoted in the
//	          paper's introduction
//	height    the O(c + log n) height bound experiment (Section 5.3)
//	ablation  sweep of the Chromatic6 violation threshold (Section 5.6)
//	ravl      the Figure-8-style series restricted to the template-based
//	          trees (Chromatic, Chromatic6, RAVL, EBST) plus the relaxed
//	          AVL balance report
//	all       every experiment above, in order
//
// Example:
//
//	chromatic-bench -experiment figure8 -duration 2s -keyranges 100,10000,1000000
//	chromatic-bench -experiment figure8 -mixes 50i-50d,5i-5d-50s -dists zipf
//
// The defaults are scaled down so the full run finishes in a few minutes on
// a laptop; pass -paper to use the paper's exact thread counts and key
// ranges (which assume a large multiprocessor and a long run).
//
// Snapshots written with -json can be diffed across commits:
//
//	chromatic-bench -compare BENCH_pr3.json BENCH_pr4.json
//
// prints every cell present in both snapshots with its throughput delta and
// exits non-zero if any cell regressed by more than -threshold (a fraction;
// default 0.25, generous because short smoke trials are noisy). Since every
// structure in the registry — the LLX/SCX trees and the five baselines —
// is benchmarked from the same Figure-8 structure list
// (bench.Figure8Structures), a figure8 smoke run snapshots them all.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/epoch"
	"repro/internal/workload"
)

// jsonRow is one measurement in the machine-readable output produced by
// -json: every timed trial cell any experiment runs, in the order it ran.
// The schema is kept deliberately flat so successive BENCH_*.json snapshots
// can be diffed and plotted across PRs. Dist is omitted for uniform keys and
// ScanMode for live scans, so snapshots written before either dimension
// existed compare cell-for-cell with current default cells. ScanP50Ns and
// ScanP99Ns carry the per-scan-operation latency quantiles for cells whose
// mix scans (0 and omitted otherwise); they are informational in -compare,
// which gates on throughput only.
type jsonRow struct {
	Structure string  `json:"structure"`
	Mix       string  `json:"mix"`
	KeyRange  int64   `json:"keyrange"`
	Threads   int     `json:"threads"`
	Dist      string  `json:"dist,omitempty"`
	ScanMode  string  `json:"scanmode,omitempty"`
	Mops      float64 `json:"mops"`
	ScanP50Ns int64   `json:"scan_p50_ns,omitempty"`
	ScanP99Ns int64   `json:"scan_p99_ns,omitempty"`
}

// distName renders a workload.Dist for jsonRow: empty for uniform (see
// above), the Dist name otherwise.
func distName(d workload.Dist) string {
	if d == workload.DistUniform {
		return ""
	}
	return d.String()
}

// scanModeName renders a workload.ScanMode for jsonRow: empty for live (see
// above), the mode name otherwise.
func scanModeName(m workload.ScanMode) string {
	if m == workload.ScanLive {
		return ""
	}
	return m.String()
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run: figure8, figure9, ratios, height, ablation, ravl or all")
		duration   = flag.Duration("duration", 1*time.Second, "duration of each timed trial")
		trials     = flag.Int("trials", 1, "trials per configuration (mean is reported)")
		threads    = flag.String("threads", "", "comma-separated thread counts (default: scaled to this machine)")
		keyRanges  = flag.String("keyranges", "", "comma-separated key ranges (default: 100,10000,1000000)")
		mixes      = flag.String("mixes", "", "comma-separated operation mixes for figure8, e.g. 50i-50d,5i-5d-50s (default: the paper's three mixes plus the scan-heavy mix)")
		dists      = flag.String("dists", "", "comma-separated key distributions for figure8: uniform,zipf (default: both)")
		scanSpan   = flag.Int64("scanspan", workload.DefaultScanSpan, "key-window width of each range-scan operation")
		scanModes  = flag.String("scanmode", "", "comma-separated scan modes for figure8: live,snapshot (default: both; snapshot cells run only for mixes that scan)")
		structs    = flag.String("structures", "", "comma-separated structure names (default: all registered)")
		seed       = flag.Int64("seed", 1, "workload seed")
		paper      = flag.Bool("paper", false, "use the paper's thread counts (1,32,64,96,128) and key ranges")
		listOnly   = flag.Bool("list", false, "list the registered data structures and exit")
		jsonPath   = flag.String("json", "", "also write every measured cell as JSON rows to this file")
		compare    = flag.Bool("compare", false, "compare two -json snapshots (old.json new.json) instead of running experiments")
		threshold  = flag.Float64("threshold", 0.25, "with -compare, the fractional throughput regression tolerated per cell")
		chaosPPM   = flag.Int("chaos", 0, "parts-per-million delay and preemption injection at every instrumentation point (0 disables; robustness runs, not measurements)")
		chaosSeed  = flag.Int64("chaosseed", 1, "seed for -chaos injection decisions")
		verbose    = flag.Bool("v", false, "after the experiments, print the reclamation layer's health report (and the injection counters under -chaos)")
	)
	flag.Parse()

	if *listOnly {
		for _, name := range bench.Names() {
			fmt.Println(name)
		}
		return
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: chromatic-bench -compare [-threshold 0.25] old.json new.json")
			os.Exit(2)
		}
		regressed, err := compareSnapshots(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compare: %v\n", err)
			os.Exit(2)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}

	if *chaosPPM > 0 {
		// Delay and preemption only: the bench workers have no panic
		// recovery and must all run to completion, so the crashy knobs
		// (Panic, Abandon) stay off. The trees stay correct either way -
		// this mode exists to measure throughput under degraded scheduling
		// and to soak the stack outside the test harnesses.
		err := chaos.Enable(chaos.Config{
			Seed:       *chaosSeed,
			Default:    chaos.PointPolicy{Delay: uint32(*chaosPPM), Preempt: uint32(*chaosPPM)},
			DelaySpins: 128,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		defer chaos.Disable()
	}

	opts := bench.Options{
		Duration: *duration,
		Trials:   *trials,
		Seed:     *seed,
		// The command's figure8 grid defaults to the extended presets: the
		// paper's mixes plus the scan-heavy mix, over uniform and zipfian
		// keys, with scanning cells measured in both scan modes.
		// -mixes/-dists/-scanmode narrow it back down (the library default,
		// used by the other experiments, stays the paper's uniform live grid).
		Mixes:     bench.Figure8Mixes(),
		Dists:     bench.Figure8Dists(),
		ScanSpan:  *scanSpan,
		ScanModes: []workload.ScanMode{workload.ScanLive, workload.ScanSnapshot},
	}
	var rows []jsonRow
	if *jsonPath != "" {
		opts.Observe = func(r bench.Result) {
			rows = append(rows, jsonRow{
				Structure: r.Config.Factory.Name,
				Mix:       r.Config.Mix.String(),
				KeyRange:  r.Config.KeyRange,
				Threads:   r.Config.Threads,
				Dist:      distName(r.Config.Dist),
				ScanMode:  scanModeName(r.Config.ScanMode),
				Mops:      r.Mops(),
				ScanP50Ns: r.ScanP50.Nanoseconds(),
				ScanP99Ns: r.ScanP99.Nanoseconds(),
			})
		}
	}
	if *paper {
		opts.Threads = bench.PaperThreadCounts()
		opts.KeyRanges = bench.PaperKeyRanges()
		opts.Mixes = bench.PaperMixes()
		opts.Dists = nil     // uniform only, as in the paper
		opts.ScanModes = nil // live only, as in the paper
	}
	if *threads != "" {
		opts.Threads = parseInts(*threads)
	}
	if *keyRanges != "" {
		opts.KeyRanges = parseInt64s(*keyRanges)
	}
	if *mixes != "" {
		opts.Mixes = parseMixes(*mixes)
	}
	if *dists != "" {
		opts.Dists = parseDists(*dists)
	}
	if *scanModes != "" {
		opts.ScanModes = parseScanModes(*scanModes)
	}
	if *structs != "" {
		opts.Structures = strings.Split(*structs, ",")
		for _, s := range opts.Structures {
			if _, ok := bench.Lookup(s); !ok {
				fmt.Fprintf(os.Stderr, "unknown data structure %q; use -list to see the registry\n", s)
				os.Exit(2)
			}
		}
	}

	out := os.Stdout
	run := func(name string) {
		switch name {
		case "figure8":
			fmt.Fprintln(out, "=== Figure 8: throughput vs thread count ===")
			bench.Figure8(out, opts)
		case "figure9":
			fmt.Fprintln(out, "=== Figure 9: single-threaded throughput relative to the sequential RBT ===")
			bench.Figure9(out, opts)
		case "ratios":
			fmt.Fprintln(out, "=== Headline ratios (Chromatic6 vs competitors at max threads) ===")
			bench.HeadlineRatios(out, opts)
		case "height":
			fmt.Fprintln(out, "=== Height bound experiment (Section 5.3) ===")
			keyRange := int64(100_000)
			if len(opts.KeyRanges) > 0 {
				keyRange = opts.KeyRanges[len(opts.KeyRanges)-1]
			}
			threads := 8
			if len(opts.Threads) > 0 {
				threads = opts.Threads[len(opts.Threads)-1]
			}
			bench.HeightExperiment(out, keyRange, threads, *duration)
		case "ablation":
			fmt.Fprintln(out, "=== Chromatic6 violation-threshold ablation (Section 5.6) ===")
			bench.ViolationThresholdAblation(out, opts, nil)
		case "ravl":
			fmt.Fprintln(out, "=== Relaxed AVL vs the other template-based trees ===")
			bench.RAVLComparison(out, opts)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Fprintln(out)
	}

	if *experiment == "all" {
		for _, name := range []string{"figure8", "figure9", "ratios", "height", "ablation"} {
			run(name)
		}
		// figure8 above already measured every structure's throughput grid,
		// so finish with just the relaxed AVL balance characterization.
		fmt.Fprintln(out, "=== Relaxed AVL balance report ===")
		bench.RAVLBalanceReport(out, opts)
		fmt.Fprintln(out)
	} else {
		run(*experiment)
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, rows); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "wrote %d measurements to %s\n", len(rows), *jsonPath)
	}

	if *verbose {
		printHealth(out, *chaosPPM > 0)
	}
}

// printHealth prints the reclamation layer's health report — and, when
// chaos injection was armed, its counters (read before Disable tears the
// run down). The epoch numbers answer "did the trials leave anything
// pending, and why"; after every trial's DrainReclaim the expectation is a
// report of zeros.
func printHealth(out *os.File, chaosOn bool) {
	r := epoch.Stats()
	fmt.Fprintln(out, "=== reclamation layer health (epoch.Stats) ===")
	fmt.Fprintf(out, "epoch %d: %d pinned slots, %d stalled slots, %d snapshot pins\n",
		r.Epoch, r.PinnedSlots, r.StalledSlots, r.SnapPins)
	fmt.Fprintf(out, "pending %d (parked %d, unscanned %d, by age %v)\n",
		r.Pending, r.Parked, r.PendingUnscanned, r.PendingByAge)
	fmt.Fprintf(out, "advance fails %d, free refusals %d, degraded drops %d, evictions %d (recovered %d)\n",
		r.AdvanceFails, r.Refusals, r.DegradedDrops, r.Evictions, r.Recovered)
	if chaosOn {
		st := chaos.ReadStats()
		fmt.Fprintf(out, "chaos: %+v\n", st)
	}
}

// cellKey identifies one measured configuration across snapshots. Dist is
// empty for uniform keys and ScanMode for live scans (matching rows written
// before either dimension existed).
type cellKey struct {
	Structure string
	Mix       string
	KeyRange  int64
	Threads   int
	Dist      string
	ScanMode  string
}

// readSnapshot loads a -json snapshot and averages duplicate cells (an
// experiment that measures the same configuration twice - for example
// figure8 followed by ravl - emits one row per measurement).
func readSnapshot(path string) (map[cellKey]float64, []cellKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rows []jsonRow
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	sums := make(map[cellKey]float64)
	counts := make(map[cellKey]int)
	var order []cellKey
	for _, r := range rows {
		dist := r.Dist
		if dist == "uniform" {
			dist = "" // normalize: pre-dist snapshots wrote no dist field
		}
		scanMode := r.ScanMode
		if scanMode == "live" {
			scanMode = "" // normalize: pre-scan-mode snapshots wrote no scanmode field
		}
		k := cellKey{r.Structure, r.Mix, r.KeyRange, r.Threads, dist, scanMode}
		if counts[k] == 0 {
			order = append(order, k)
		}
		sums[k] += r.Mops
		counts[k]++
	}
	for k := range sums {
		sums[k] /= float64(counts[k])
	}
	return sums, order, nil
}

// compareSnapshots diffs two -json snapshots cell by cell, printing every
// cell present in both with its relative throughput change, and reports
// whether any cell regressed by more than threshold. Cells present in only
// one snapshot are listed but never count as regressions (structures and
// experiments legitimately come and go between PRs).
func compareSnapshots(out *os.File, oldPath, newPath string, threshold float64) (regressed bool, err error) {
	oldCells, order, err := readSnapshot(oldPath)
	if err != nil {
		return false, err
	}
	newCells, newOrder, err := readSnapshot(newPath)
	if err != nil {
		return false, err
	}
	fmt.Fprintf(out, "%-12s %-10s %-8s %-8s %9s %8s %10s %10s %8s\n",
		"structure", "mix", "dist", "scans", "keyrange", "threads", "old Mops", "new Mops", "delta")
	distCol := func(k cellKey) string {
		if k.Dist == "" {
			return "uniform"
		}
		return k.Dist
	}
	scanCol := func(k cellKey) string {
		if k.ScanMode == "" {
			return "live"
		}
		return k.ScanMode
	}
	var nRegressed, nCompared int
	for _, k := range order {
		oldMops, ok := oldCells[k]
		if !ok {
			continue
		}
		newMops, ok := newCells[k]
		if !ok {
			fmt.Fprintf(out, "%-12s %-10s %-8s %-8s %9d %8d %10.3f %10s %8s\n",
				k.Structure, k.Mix, distCol(k), scanCol(k), k.KeyRange, k.Threads, oldMops, "-", "gone")
			continue
		}
		nCompared++
		delta := 0.0
		if oldMops > 0 {
			delta = newMops/oldMops - 1
		}
		flag := ""
		if delta < -threshold {
			flag = "  REGRESSION"
			nRegressed++
		}
		fmt.Fprintf(out, "%-12s %-10s %-8s %-8s %9d %8d %10.3f %10.3f %+7.1f%%%s\n",
			k.Structure, k.Mix, distCol(k), scanCol(k), k.KeyRange, k.Threads, oldMops, newMops, delta*100, flag)
	}
	for _, k := range newOrder {
		if _, ok := oldCells[k]; !ok {
			fmt.Fprintf(out, "%-12s %-10s %-8s %-8s %9d %8d %10s %10.3f %8s\n",
				k.Structure, k.Mix, distCol(k), scanCol(k), k.KeyRange, k.Threads, "-", newCells[k], "new")
		}
	}
	fmt.Fprintf(out, "\n%d cells compared, %d regressed beyond %.0f%%\n",
		nCompared, nRegressed, threshold*100)
	return nRegressed > 0, nil
}

// writeJSON writes the collected measurements as an indented JSON array, one
// row per measured cell.
func writeJSON(path string, rows []jsonRow) error {
	if rows == nil {
		rows = []jsonRow{} // an experiment with no timed cells still emits a valid array
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseMixes(s string) []workload.Mix {
	var out []workload.Mix
	for _, part := range strings.Split(s, ",") {
		m, err := workload.ParseMix(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out = append(out, m)
	}
	return out
}

func parseScanModes(s string) []workload.ScanMode {
	var out []workload.ScanMode
	for _, part := range strings.Split(s, ",") {
		m, err := workload.ParseScanMode(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out = append(out, m)
	}
	return out
}

func parseDists(s string) []workload.Dist {
	var out []workload.Dist
	for _, part := range strings.Split(s, ",") {
		d, err := workload.ParseDist(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		out = append(out, d)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "invalid integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

func parseInt64s(s string) []int64 {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "invalid integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}
