// Command quickstart demonstrates basic use of the non-blocking chromatic
// tree as a concurrent ordered map: concurrent insertions, lookups,
// deletions and ordered queries from many goroutines, followed by a check of
// the balance invariants.
package main

import (
	"fmt"
	"sync"

	"repro/internal/chromatic"
)

func main() {
	tree := chromatic.New() // use chromatic.NewChromatic6() for the relaxed variant

	// Populate the dictionary from several goroutines at once. Every
	// operation is linearizable and non-blocking, so no external locking is
	// needed.
	var wg sync.WaitGroup
	const workers = 4
	const perWorker = 10_000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64(w*perWorker + i)
				tree.Insert(key, key*key)
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("inserted %d keys, height %d, balanced: %v\n",
		tree.Size(), tree.Height(), tree.CheckRedBlack() == nil)

	// Point lookups.
	if v, ok := tree.Get(12345); ok {
		fmt.Printf("Get(12345) = %d\n", v)
	}

	// Ordered queries: successor, predecessor and a small range scan.
	if k, v, ok := tree.Successor(99); ok {
		fmt.Printf("Successor(99) = %d -> %d\n", k, v)
	}
	if k, _, ok := tree.Predecessor(100); ok {
		fmt.Printf("Predecessor(100) = %d\n", k)
	}
	fmt.Print("keys in [10, 15]:")
	tree.RangeScan(10, 15, func(k, v int64) bool {
		fmt.Printf(" %d", k)
		return true
	})
	fmt.Println()

	// Concurrent deletions of the even keys.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i += 2 {
				tree.Delete(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("after deleting even keys: %d keys remain, still balanced: %v\n",
		tree.Size(), tree.CheckRedBlack() == nil)

	// Update statistics show how much rebalancing the tree performed.
	s := tree.Stats()
	fmt.Printf("rebalancing steps performed: %d\n", s.RebalanceTotal())
}
