// Command orderedindex uses the chromatic tree as a concurrent time-series
// index: writer goroutines append timestamped samples while reader
// goroutines run windowed range queries (via Successor) and point lookups
// over the most recent data — the classic "index under a write-heavy feed"
// workload that motivates concurrent balanced search trees.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chromatic"
)

const (
	writers       = 3
	readers       = 3
	samplesPerSec = 50_000
	runFor        = 2 * time.Second
	windowSize    = 1_000 // logical time units per window query
)

func main() {
	index := chromatic.NewChromatic6()
	var clock atomic.Int64 // logical timestamp generator
	var wrote, scanned atomic.Int64

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: each sample is keyed by a unique logical timestamp; the value
	// encodes the sensor reading.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ts := clock.Add(1)
				reading := rng.Int63n(1000)
				index.Insert(ts, reading)
				wrote.Add(1)
			}
		}(w)
	}

	// Readers: scan the most recent window and compute an aggregate, and
	// occasionally evict everything older than ten windows to keep the
	// index bounded (a retention policy).
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := clock.Load()
				lo := now - windowSize
				if lo < 0 {
					lo = 0
				}
				var sum, count int64
				index.RangeScan(lo, now, func(k, v int64) bool {
					sum += v
					count++
					return true
				})
				scanned.Add(count)
				if r == 0 && now > 10*windowSize {
					// Retention: delete a batch of the oldest samples.
					cutoff := now - 10*windowSize
					k, _, ok := index.Min()
					for ok && k < cutoff {
						index.Delete(k)
						k, _, ok = index.Successor(k)
					}
				}
			}
		}(r)
	}

	time.Sleep(runFor)
	close(stop)
	wg.Wait()

	fmt.Printf("ingested %d samples, scanned %d samples in window queries\n", wrote.Load(), scanned.Load())
	fmt.Printf("index now holds %d samples, height %d\n", index.Size(), index.Height())
	if err := index.CheckInvariants(); err != nil {
		fmt.Printf("invariant violation: %v\n", err)
		return
	}
	min, _, _ := index.Min()
	max, _, _ := index.Max()
	fmt.Printf("retained window: [%d, %d]\n", min, max)
}
