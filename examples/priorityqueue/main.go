// Command priorityqueue builds a concurrent priority scheduler on top of the
// chromatic tree's ordered-dictionary interface: producers enqueue jobs with
// integer priorities and consumers repeatedly extract the minimum-priority
// job using Min + Delete. This is exactly the priority-queue application the
// chromatic tree literature (Boyar, Fagerberg and Larsen) motivates for
// relaxed-balance search trees.
package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

import "repro/internal/chromatic"

const (
	producers     = 3
	consumers     = 3
	jobsPerSource = 20_000
)

// jobKey packs (priority, sequence) into one int64 key so that jobs with
// equal priority remain distinct and FIFO-ordered within a priority class.
func jobKey(priority int64, seq int64) int64 {
	return priority<<32 | (seq & 0xffffffff)
}

func priorityOf(key int64) int64 { return key >> 32 }

func main() {
	queue := chromatic.NewChromatic6()
	var seq atomic.Int64
	var produced, consumed atomic.Int64
	var priorityInversions atomic.Int64

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Producers enqueue jobs with random priorities (lower = more urgent).
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for i := 0; i < jobsPerSource; i++ {
				prio := rng.Int63n(100)
				key := jobKey(prio, seq.Add(1))
				queue.Insert(key, int64(p)) // value records the producer
				produced.Add(1)
			}
		}(p)
	}

	// Consumers repeatedly extract the globally smallest key. A Min/Delete
	// pair can race with another consumer, in which case Delete reports the
	// job as already taken and the consumer simply retries.
	var consumerWG sync.WaitGroup
	for c := 0; c < consumers; c++ {
		consumerWG.Add(1)
		go func(c int) {
			defer consumerWG.Done()
			var lastPrio int64 = -1
			for {
				key, _, ok := queue.Min()
				if !ok {
					select {
					case <-done:
						return
					default:
						continue // queue momentarily empty; producers still running
					}
				}
				if _, won := queue.Delete(key); !won {
					continue // another consumer took this job first
				}
				consumed.Add(1)
				prio := priorityOf(key)
				// Priorities extracted by one consumer should mostly be
				// non-decreasing; count the exceptions caused by late
				// arrivals of urgent jobs (expected while producers run).
				if prio < lastPrio {
					priorityInversions.Add(1)
				}
				lastPrio = prio
			}
		}(c)
	}

	wg.Wait()   // producers done
	close(done) // let consumers drain and exit
	consumerWG.Wait()

	// Drain anything the consumers left behind after the done signal.
	for {
		key, _, ok := queue.Min()
		if !ok {
			break
		}
		if _, won := queue.Delete(key); won {
			consumed.Add(1)
		}
	}

	fmt.Printf("produced %d jobs, consumed %d jobs, queue now holds %d\n",
		produced.Load(), consumed.Load(), queue.Size())
	fmt.Printf("priority inversions observed by consumers (due to late urgent arrivals): %d\n",
		priorityInversions.Load())
	if produced.Load() != consumed.Load() {
		fmt.Println("ERROR: some jobs were lost or double-consumed")
	} else {
		fmt.Println("all jobs consumed exactly once")
	}
	if err := queue.CheckInvariants(); err != nil {
		fmt.Printf("ERROR: queue invariants violated: %v\n", err)
	}
}
