// Command wordindex builds a concurrent term-frequency index over a corpus
// of synthetic documents. Each worker tokenizes documents and maintains
// per-term counters in a single chromatic tree using striped keys (one
// stripe per worker, so counter updates never conflict), then the main
// goroutine aggregates the stripes with an ordered scan to report the most
// common terms. It demonstrates a write-heavy indexing workload plus ordered
// iteration at quiescence.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/chromatic"
)

// vocabulary is the term universe; term ids are indexes into this slice.
var vocabulary = []string{
	"tree", "node", "leaf", "root", "rotation", "weight", "violation",
	"insert", "delete", "search", "lock", "free", "atomic", "snapshot",
	"linearizable", "balance", "chromatic", "red", "black", "template",
	"llx", "scx", "vlx", "cas", "thread", "process", "wait", "help",
	"path", "height", "key", "value", "pointer", "child", "parent",
}

const (
	documents  = 2_000
	docLength  = 200
	numWorkers = 4
)

// stripeKey maps a (term, worker) pair to a dictionary key so each worker
// owns a private counter per term. Aggregation walks the numWorkers
// consecutive keys of each term.
func stripeKey(termID, worker int) int64 {
	return int64(termID*numWorkers + worker)
}

func main() {
	index := chromatic.New()

	// Generate the corpus: each document is a Zipf-distributed bag of words.
	docs := make([][]int, documents)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(len(vocabulary)-1))
	for d := range docs {
		words := make([]int, docLength)
		for i := range words {
			words[i] = int(zipf.Uint64())
		}
		docs[d] = words
	}

	// Index the corpus in parallel. Workers pull documents from a channel
	// and bump their own stripe of each term's counter; the chromatic tree
	// handles the concurrent inserts on nearby keys.
	work := make(chan []int, numWorkers)
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for doc := range work {
				for _, termID := range doc {
					key := stripeKey(termID, worker)
					cur, _ := index.Get(key)
					index.Insert(key, cur+1)
				}
			}
		}(w)
	}
	for _, doc := range docs {
		work <- doc
	}
	close(work)
	wg.Wait()

	// Aggregate the stripes with one ordered scan and report the top terms.
	counts := make([]int64, len(vocabulary))
	index.RangeScan(0, int64(len(vocabulary)*numWorkers), func(k, v int64) bool {
		counts[int(k)/numWorkers] += v
		return true
	})
	type entry struct {
		term  string
		count int64
	}
	var entries []entry
	var total int64
	for id, c := range counts {
		if c > 0 {
			entries = append(entries, entry{term: vocabulary[id], count: c})
			total += c
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].count > entries[j].count })

	fmt.Printf("indexed %d documents, %d tokens, %d distinct terms, index size %d\n",
		documents, total, len(entries), index.Size())
	fmt.Println("top terms:")
	for i, e := range entries {
		if i >= 10 {
			break
		}
		bar := strings.Repeat("#", int(e.count*40/entries[0].count))
		fmt.Printf("  %-14s %8d %s\n", e.term, e.count, bar)
	}
	if total != int64(documents*docLength) {
		fmt.Printf("ERROR: token count mismatch: %d != %d\n", total, documents*docLength)
	} else {
		fmt.Println("token count verified: no updates were lost")
	}
	if err := index.CheckRedBlack(); err != nil {
		fmt.Printf("ERROR: index not balanced at quiescence: %v\n", err)
	}
}
