// Command wordindex builds a concurrent term-frequency index over a corpus
// of synthetic documents, demonstrating the generic chromatic tree with
// string keys. Each worker tokenizes documents and bumps a shared per-term
// counter stored directly under the term itself: LoadOrStore guarantees
// exactly one counter per term no matter how many workers race on its first
// occurrence, and the counter is an atomic so increments never conflict.
// (Before the dictionary stack was generic this example had to encode terms
// as striped int64 keys, one stripe per worker, and merge the stripes
// afterwards.) The main goroutine then reports the most common terms from a
// single ordered traversal - terms come out in lexicographic order straight
// from the tree.
package main

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/chromatic"
)

// vocabulary is the term universe; documents draw from it Zipf-distributed.
var vocabulary = []string{
	"tree", "node", "leaf", "root", "rotation", "weight", "violation",
	"insert", "delete", "search", "lock", "free", "atomic", "snapshot",
	"linearizable", "balance", "chromatic", "red", "black", "template",
	"llx", "scx", "vlx", "cas", "thread", "process", "wait", "help",
	"path", "height", "key", "value", "pointer", "child", "parent",
}

const (
	documents  = 2_000
	docLength  = 200
	numWorkers = 4
)

func main() {
	// A chromatic tree over string terms; each term's value is a shared
	// atomic counter.
	index := chromatic.NewOrdered[string, *atomic.Int64]()

	// Generate the corpus: each document is a Zipf-distributed bag of words.
	docs := make([][]string, documents)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(len(vocabulary)-1))
	for d := range docs {
		words := make([]string, docLength)
		for i := range words {
			words[i] = vocabulary[zipf.Uint64()]
		}
		docs[d] = words
	}

	// Index the corpus in parallel. Workers pull documents from a channel
	// and increment the term's counter; the first worker to see a term
	// installs its counter, every later one loads it.
	work := make(chan []string, numWorkers)
	var wg sync.WaitGroup
	for w := 0; w < numWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for doc := range work {
				for _, term := range doc {
					ctr, ok := index.Get(term)
					if !ok {
						ctr, _ = index.LoadOrStore(term, new(atomic.Int64))
					}
					ctr.Add(1)
				}
			}
		}()
	}
	for _, doc := range docs {
		work <- doc
	}
	close(work)
	wg.Wait()

	// Report the top terms from one ordered traversal of the index.
	type entry struct {
		term  string
		count int64
	}
	var entries []entry
	var total int64
	prev := ""
	ordered := true
	index.Ascend(func(term string, ctr *atomic.Int64) bool {
		if prev != "" && term <= prev {
			ordered = false
		}
		prev = term
		c := ctr.Load()
		entries = append(entries, entry{term: term, count: c})
		total += c
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].count > entries[j].count })

	fmt.Printf("indexed %d documents, %d tokens, %d distinct terms, index size %d\n",
		documents, total, len(entries), index.Size())
	fmt.Println("top terms:")
	for i, e := range entries {
		if i >= 10 {
			break
		}
		bar := strings.Repeat("#", int(e.count*40/entries[0].count))
		fmt.Printf("  %-14s %8d %s\n", e.term, e.count, bar)
	}
	if total != int64(documents*docLength) {
		fmt.Printf("ERROR: token count mismatch: %d != %d\n", total, documents*docLength)
	} else {
		fmt.Println("token count verified: no updates were lost")
	}
	if !ordered {
		fmt.Println("ERROR: ordered traversal returned terms out of lexicographic order")
	}
	if err := index.CheckRedBlack(); err != nil {
		fmt.Printf("ERROR: index not balanced at quiescence: %v\n", err)
	}
}
