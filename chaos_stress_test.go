package repro

import (
	"testing"

	"repro/internal/chromatic"
	"repro/internal/dict"
	"repro/internal/dict/dicttest"
	"repro/internal/ebst"
	"repro/internal/lbst"
	"repro/internal/ravl"
)

// Every LLX/SCX template tree exposes the bounded-operation surface.
var (
	_ dict.BoundedMap[int64, int64] = (*lbst.Tree[int64, int64])(nil)
	_ dict.BoundedMap[int64, int64] = (*ebst.Tree[int64, int64])(nil)
	_ dict.BoundedMap[int64, int64] = (*ravl.Tree[int64, int64])(nil)
	_ dict.BoundedMap[int64, int64] = (*chromatic.Tree[int64, int64])(nil)
)

// These tests run the chaos-mode stress suites (internal/dict/dicttest's
// chaos.go) over every LLX/SCX template tree in the benchmark registry.
// Unlike the sched-build enumerations, which explore adversarial
// interleavings deterministically at a handful of points, chaos injection
// perturbs the DEFAULT build probabilistically — delays, preemption,
// dropped optional helping, workers parked indefinitely mid-operation, and
// injected panics — so the whole stack (trees, LLX/SCX, epochs, watchdog)
// is exercised under sustained degraded conditions rather than a scripted
// schedule. All suites skip themselves under -tags sched.
//
// The suites run under -race in CI (the chaos-stress job), with
// DICTTEST_SEED echoed on failure for replay.

// TestChaosChurnStress: shared-window churn with delays, preemption,
// dropped helping and abandoned workers; histories must linearize, every
// operation must complete once parked workers are released, and the epoch
// watchdog must drain reclamation past the parked workers' stale pins.
func TestChaosChurnStress(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ChaosChurnStress(t, tgt, 4, 600)
		})
	}
}

// TestChaosCrashStress: workers panic at random instrumentation points
// mid-operation; the deferred epoch unpins must release their pins during
// unwinding, the structure must stay fully usable, invariants must hold,
// and pending reclamation must drain to zero.
func TestChaosCrashStress(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ChaosCrashStress(t, tgt, 4, 800)
		})
	}
}

// TestChaosBoundedStress: tight per-operation retry budgets under injected
// contention. Budget failures must be effect-free and successes exact — a
// per-worker model over disjoint keyspaces verifies both.
func TestChaosBoundedStress(t *testing.T) {
	for _, tgt := range templateTreeTargets(t) {
		t.Run(tgt.Name, func(t *testing.T) {
			dicttest.ChaosBoundedStress(t, tgt, 4, 1500, 64)
		})
	}
}
