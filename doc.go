// Package repro is a from-scratch Go reproduction of Brown, Ellen and
// Ruppert, "A General Technique for Non-blocking Trees" (PPoPP 2014).
//
// The implementation lives under internal/: the LLX/SCX/VLX primitives
// (internal/llxscx), the tree update template (internal/core), the shared
// leaf-oriented BST engine built on the template (internal/lbst) with its
// two instantiations - the unbalanced BST (internal/ebst) and the relaxed
// AVL tree (internal/ravl) - the non-blocking chromatic tree
// (internal/chromatic), the epoch-based reclamation layer they share
// (internal/epoch), and every data structure the paper's evaluation
// compares against, plus the workload generator and throughput harness that
// regenerate the paper's figures. The dictionary stack is generic end to
// end: dict.Map[K, V] / dict.OrderedMap[K, V] are the canonical interfaces,
// and every structure - the LLX/SCX trees and the five baselines (lock-free
// skip list, lock-based AVL, STM red-black tree and skip list, sequential
// red-black tree) alike - is parameterized by a key comparator with
// NewOrdered fast paths for cmp.Ordered keys (plus a concrete string-key
// specialization in the trees). The historical int64 instantiations survive
// as the dict.IntMap / dict.IntOrderedMap / dict.IntFactory aliases the
// benchmark registry uses, and every registered structure is an ordered
// map, so one conformance/fuzz/stress suite and one Figure-8 grid cover
// them all.
//
// The update hot path is allocation-lean, matching the compact SCX records
// of the paper's Java implementation: an SCX-record stores its evidence in
// inline arrays bounded by llxscx.MaxV (6, the chromatic W3/W4 steps), so
// each SCX allocates exactly one descriptor; updates stage their V/R
// sequences in stack arrays via the slice-free SCXFixed/VLXFixed entry
// points; inserts reuse the old leaf as a child of the fresh internal node
// where the template's postconditions allow (values stored into child
// fields must stay freshly allocated, so deletes still promote a copy); and
// NewOrdered trees install a
// search routine specialized to the native `<` of the key type. Overwriting
// a present key's value needs no SCX at all: leaf values live in atomically
// published cells (internal/vcell, unboxed single-word storage for
// word-sized value types) that sit outside the LLX snapshot evidence and
// are aliased by every copy of a leaf, so Insert-on-present is one atomic
// publish plus a finalization re-check - zero allocations for the int64
// registry, on the trees and the skip-list/lock-AVL baselines alike.
// Descriptor
// and node reclamation is manual: internal/epoch implements
// quiescent-state-based reclamation (every operation pins an epoch slot on
// entry; retired memory is freed two epoch advances later, once no pinned
// operation can still reach it), and the trees recycle their nodes and SCX
// descriptors through sync.Pool-backed freelists layered on that grace
// period - the ABA-freedom the paper gets from its Java runtime's garbage
// collector is re-derived for manual reclamation in DESIGN.md. Steady-state
// updates (delete + re-insert) run at zero allocations per operation; build
// with -tags noepoch to fall back to GC reclamation, and -tags reclaimcheck
// to poison recycled nodes with generation checks. BenchmarkAlloc,
// TestChromaticAllocBudget, TestChromaticChurnAllocBudget,
// TestOverwriteAllocBudget and TestReclaimNoLeak (alloc_bench_test.go) pin
// the resulting allocation profile in CI.
//
// The LLX/SCX trees additionally serve O(1) versioned snapshots
// (dict.Snapshotter): every committed SCX stamps the subtree root it
// installs with a commit tick and links the displaced version, Snapshot
// captures (entry, tick) in constant time behind a long-lived epoch pin,
// and the returned frozen view answers Get/RangeScan/Ascend by rewinding
// newer nodes through their version chains - no validation, no retries, no
// CASes on the read path. SnapshotDiff enumerates the changes between two
// captures, skipping unchanged subtrees by pointer equality. The capture
// protocol (stamp-before-install bracketing, read-version-then-drain) is
// exhaustively schedule-enumerated under -tags sched and argued in
// DESIGN.md ("Versioned snapshots").
//
// The workload generator covers the paper's uniform operation mixes plus a
// zipfian (hot-key) key distribution, a range-scan mix share and a
// scan-mode dimension (live validate-and-retry scans versus per-scan
// frozen snapshots); the Figure-8 grid and cmd/chromatic-bench sweep all
// of them (-mixes, -dists, -scanspan, -scanmode), with per-scan p50/p99
// latency quantiles reported for scanning cells.
//
// The root package only hosts the repository-level benchmarks
// (bench_test.go, alloc_bench_test.go) and the cross-implementation
// conformance, fuzz and stress suites (integration_test.go,
// conformance_test.go); see README.md and DESIGN.md for the full map.
package repro
