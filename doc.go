// Package repro is a from-scratch Go reproduction of Brown, Ellen and
// Ruppert, "A General Technique for Non-blocking Trees" (PPoPP 2014).
//
// The implementation lives under internal/: the LLX/SCX/VLX primitives
// (internal/llxscx), the tree update template (internal/core), the shared
// leaf-oriented BST engine built on the template (internal/lbst) with its
// two instantiations - the unbalanced BST (internal/ebst) and the relaxed
// AVL tree (internal/ravl) - the non-blocking chromatic tree
// (internal/chromatic), and every data structure the paper's evaluation
// compares against, plus the workload generator and throughput harness that
// regenerate the paper's figures. The dictionary stack is generic end to
// end: dict.Map[K, V] / dict.OrderedMap[K, V] are the canonical interfaces,
// the trees are parameterized by a key comparator (with NewOrdered fast
// paths for cmp.Ordered keys), and the historical int64 instantiations
// survive as the dict.IntMap / dict.IntOrderedMap / dict.IntFactory aliases
// the benchmark registry uses. The root package only hosts the
// repository-level benchmarks (bench_test.go) and the cross-implementation
// conformance, fuzz and stress suites (integration_test.go,
// conformance_test.go); see README.md and DESIGN.md for the full map.
package repro
